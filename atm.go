// Package atm is the public API of the Active Timing Margin (ATM)
// fine-tuning library: a faithful software reproduction of "Fine-Tuning
// the Active Timing Margin (ATM) Control Loop for Maximizing Multi-Core
// Efficiency on an IBM POWER Server" (HPCA 2019).
//
// The library models a two-socket POWER7+-class server whose cores each
// carry programmable Critical Path Monitors (CPMs) and a per-core DPLL
// frequency control loop, and implements the paper's contribution on
// top of that platform:
//
//   - fine-tuning the per-core control loop by reducing CPM inserted
//     delay (Machine.ProgramCPM);
//   - the characterization methodology that finds each core's operating
//     limits under idle, micro-benchmark, and realistic workloads
//     (Characterize);
//   - the test-time stress-test deployment procedure (Deploy);
//   - the management layer — Eq. 1 frequency predictor, per-application
//     performance predictor, governors and the scheduler/throttler —
//     that turns the exposed variability into predictable performance
//     (NewManager);
//   - the full experiment suite regenerating every table and figure of
//     the paper's evaluation (NewSuite).
//
// Quick start:
//
//	machine := atm.NewReferenceMachine()
//	dep, err := atm.Deploy(machine, atm.DeployOptions{})
//	...
//	mgr, err := atm.NewManager(machine, dep, nil)
//	ev, err := mgr.Evaluate(atm.ScenarioManagedMax, pair, 0.10)
//
// See examples/ for runnable programs and DESIGN.md for the model and
// its calibration against the paper's published measurements.
package atm

import (
	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/lifetime"
	"repro/internal/manage"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/silicon"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Re-exported platform types. The heavy lifting lives in internal
// packages; these aliases are the supported public surface.
type (
	// Machine is the simulated server: chips, cores, CPMs, control
	// loops, power delivery and thermal state.
	Machine = chip.Machine
	// Core is one core's runtime state (mode, p-state, workload, CPM
	// configuration).
	Core = chip.Core
	// OperatingPoint is a solved steady state of the whole machine.
	OperatingPoint = chip.State
	// UndervoltResult is the off-chip voltage controller's power-saving
	// operating point (Machine.SolveUndervolt) — the third ATM
	// component, which the paper's experiments disable.
	UndervoltResult = chip.UndervoltResult
	// CapResult is the EnergyScale power-capping controller's operating
	// point (Machine.SolveCapped).
	CapResult = chip.CapResult
	// SiliconProfile describes a server's manufactured silicon.
	SiliconProfile = silicon.ServerProfile
	// GenerateOptions controls the Monte-Carlo silicon generator.
	GenerateOptions = silicon.GenerateOptions

	// Workload is a behavioural workload profile.
	Workload = workload.Profile
	// Stressmark is a test-time worst-case generator.
	Stressmark = workload.Stressmark

	// CharactOptions tunes the characterization methodology.
	CharactOptions = charact.Options
	// CharactReport is the methodology's full output (Table I data,
	// Fig. 7–10 distributions).
	CharactReport = charact.Report

	// DeployOptions tunes the test-time stress-test deployment.
	DeployOptions = tuning.Options
	// Deployment is a server's deployed fine-tuned configuration.
	Deployment = tuning.Deployment

	// FaultProfile describes deterministic fault injection: per-layer
	// rates for CPM upsets, telemetry errors, transport loss, and
	// harness failures.
	FaultProfile = fault.Profile
	// FaultInjector arms a FaultProfile on a machine and controller.
	FaultInjector = fault.Injector

	// MetricsRegistry collects deterministic counters, gauges, and
	// histograms from every instrumented layer; a nil registry disables
	// collection at ~zero cost.
	MetricsRegistry = obs.Registry
	// Tracer records simulated-time spans in Chrome trace_event JSON
	// (openable in Perfetto); a nil tracer disables tracing.
	Tracer = obs.Tracer

	// FleetJob is one self-contained experiment spec of a fleet
	// campaign (characterize / tune / Monte-Carlo deployment over a
	// generated or reference server).
	FleetJob = fleet.Job
	// FleetCampaign is an ordered set of independent fleet jobs; the
	// job order is the canonical merge order of the results.
	FleetCampaign = fleet.Campaign
	// FleetOptions configures a campaign run: worker-pool bound,
	// content-addressed cache directory, checkpoint resume, and obs
	// plane wiring.
	FleetOptions = fleet.Options
	// FleetResult is the merged campaign outcome in canonical job
	// order — byte-identical for every worker count.
	FleetResult = fleet.CampaignResult

	// PlatformSpec names a simulated server completely: silicon seed
	// (0 = the paper-calibrated reference), chip/core counts, fault
	// profile. Identical specs build identical servers.
	PlatformSpec = platform.Spec
	// PlatformServer is one materialized machine with its provenance.
	PlatformServer = platform.Server
	// ProvisionOptions tunes the datacenter intake pass.
	ProvisionOptions = platform.ProvisionOptions
	// Provision is a server's datacenter-intake record: deployed
	// configs, Eq. 1 predictor fits, power envelope.
	Provision = platform.Provision

	// DCOptions configures a datacenter campaign: topology, worker
	// pool, budget caps, tenants, faults, cache.
	DCOptions = dc.Options
	// DCResult is the campaign's canonical outcome — byte-identical
	// across worker counts and across fresh, cached and resumed runs.
	DCResult = dc.Result

	// LifetimeOptions configures a lifetime drift simulation: horizon,
	// seed, drift parameters, sentinel calibration, control arm.
	LifetimeOptions = lifetime.Options
	// LifetimeResult is a lifetime simulation's outcome: the safety
	// verdict, intervention counts, per-core journeys and the timeline.
	LifetimeResult = lifetime.Result
	// LifetimeEvent is one timeline entry of a lifetime simulation.
	LifetimeEvent = lifetime.Event
	// DriftParams shapes the NBTI/HCI aging and ambient model.
	DriftParams = lifetime.Params

	// Manager is the managed-ATM scheduler.
	Manager = manage.Manager
	// Governor selects the CPM configuration policy.
	Governor = manage.Governor
	// Scenario is one of the evaluation's system configurations.
	Scenario = manage.Scenario
	// Pair is a ⟨critical : background⟩ co-location.
	Pair = manage.Pair
	// Evaluation is a measured scenario outcome.
	Evaluation = manage.Evaluation

	// Suite regenerates the paper's tables and figures.
	Suite = core.Suite
	// SuiteOptions configures the experiment suite.
	SuiteOptions = core.SuiteOptions

	// JobSimulator is the discrete-event OS-level scheduler running
	// dynamic job traces under the management policies.
	JobSimulator = sched.Simulator
	// Job is one unit of scheduled work.
	Job = sched.Job
	// SchedOptions configures a scheduling run and its trace.
	SchedOptions = sched.Options
	// SchedResult aggregates a scheduling run.
	SchedResult = sched.Result
	// SchedPolicy selects placement/clocking for the job simulator.
	SchedPolicy = sched.Policy
)

// Scenarios (Fig. 14).
const (
	ScenarioStaticMargin       = manage.ScenarioStaticMargin
	ScenarioDefaultATM         = manage.ScenarioDefaultATM
	ScenarioFineTunedUnmanaged = manage.ScenarioFineTunedUnmanaged
	ScenarioManagedMax         = manage.ScenarioManagedMax
	ScenarioManagedBalanced    = manage.ScenarioManagedBalanced
)

// Governors (Fig. 13 policy knob).
const (
	GovernorDefault      = manage.GovernorDefault
	GovernorConservative = manage.GovernorConservative
	GovernorAggressive   = manage.GovernorAggressive
)

// Fleet job kinds (internal/fleet).
const (
	FleetCharacterize = fleet.KindCharacterize
	FleetTune         = fleet.KindTune
	FleetMonteCarlo   = fleet.KindMonteCarlo
	FleetLifetime     = fleet.KindLifetime
	FleetDCProvision  = fleet.KindDCProvision
)

// Lifetime timeline event kinds (internal/lifetime).
const (
	LifetimeEventFailure    = lifetime.EventFailure
	LifetimeEventStepBack   = lifetime.EventStepBack
	LifetimeEventRetune     = lifetime.EventRetune
	LifetimeEventStatic     = lifetime.EventStatic
	LifetimeEventQuarantine = lifetime.EventQuarantine
)

// Dynamic scheduling policies (internal/sched).
const (
	SchedStatic    = sched.PolicyStatic
	SchedOndemand  = sched.PolicyOndemand
	SchedUnmanaged = sched.PolicyUnmanaged
	SchedManaged   = sched.PolicyManaged
)

// NewReferenceMachine returns the machine calibrated to the paper's two
// POWER7+ chips: running the characterization methodology against it
// rediscovers the published Table I.
func NewReferenceMachine() *Machine { return chip.NewReference() }

// NewMachine builds a machine over an explicit silicon profile.
func NewMachine(profile *SiliconProfile) (*Machine, error) {
	return chip.New(profile, chip.Options{})
}

// ReferenceSilicon returns the paper-calibrated silicon profile.
func ReferenceSilicon() *SiliconProfile { return silicon.Reference() }

// GenerateSilicon manufactures a fresh server from the forward
// process-variation model — the method generalizes beyond the paper's
// two chips.
func GenerateSilicon(seed uint64, opts GenerateOptions) (*SiliconProfile, error) {
	return silicon.Generate(seed, opts)
}

// Characterize runs the paper's Sec. III-B methodology over every core:
// idle limits, uBench limits, and per-application rollback, producing
// the Table I / Fig. 7–10 data.
func Characterize(m *Machine, opts CharactOptions) (*CharactReport, error) {
	return charact.Characterize(m, opts)
}

// Deploy runs the Sec. VII-A test-time stress-test procedure and
// programs the machine with each core's fine-tuned configuration.
func Deploy(m *Machine, opts DeployOptions) (*Deployment, error) {
	return tuning.Deploy(m, opts)
}

// NewManager wires the Sec. VII management layer over a deployed
// machine: it calibrates the per-core Eq. 1 frequency predictors and the
// per-application performance predictors, then schedules and throttles
// to meet QoS. rep may be nil when only the default governor is used.
func NewManager(m *Machine, dep *Deployment, rep *CharactReport) (*Manager, error) {
	return manage.NewManager(m, dep, rep)
}

// NewSuite builds the experiment pipeline that regenerates every table
// and figure of the paper (see cmd/atmfigures).
func NewSuite(opts SuiteOptions) (*Suite, error) { return core.NewSuite(opts) }

// NewReferenceSuite is NewSuite over the reference silicon.
func NewReferenceSuite() (*Suite, error) { return core.NewReferenceSuite() }

// WorkloadByName looks up a workload profile (SPEC CPU 2017, PARSEC 3.0,
// DNN inference, uBench) by its benchmark name.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Workloads returns the full workload library.
func Workloads() []Workload { return workload.All() }

// CriticalWorkloads returns the latency-sensitive Table II applications.
func CriticalWorkloads() []Workload { return workload.Critical() }

// BackgroundWorkloads returns the throttle-tolerant Table II
// applications.
func BackgroundWorkloads() []Workload { return workload.Background() }

// VoltageVirus returns the paper's test-time di/dt + power stressmark.
func VoltageVirus() Stressmark { return workload.VoltageVirus() }

// Fig14Pairs returns the evaluation's ⟨critical : background⟩ pairs.
func Fig14Pairs() []Pair { return manage.Fig14Pairs() }

// NewJobSimulator builds the dynamic job scheduler over a deployed
// machine.
func NewJobSimulator(m *Machine, dep *Deployment, chipLabel string) (*JobSimulator, error) {
	return sched.NewSimulator(m, dep, chipLabel)
}

// GenerateJobTrace draws a reproducible Poisson job trace.
func GenerateJobTrace(o SchedOptions, seed uint64) []Job {
	return sched.GenerateTrace(o, rng.New(seed))
}

// ParseFaultProfile builds a fault profile from a spec string: a preset
// name ("test-floor", "flaky-fsp", "noisy-cpm", "broken-core", "none"),
// a key=value list ("trial-err=0.1,broken=1"), or a preset with
// overrides ("test-floor,drop=0.3").
func ParseFaultProfile(spec string) (FaultProfile, error) { return fault.ParseProfile(spec) }

// FaultPresetNames lists the named fault profiles in sorted order.
func FaultPresetNames() []string { return fault.PresetNames() }

// NewFaultInjector builds an injector whose every fault replays
// bit-for-bit from (profile, seed).
func NewFaultInjector(p FaultProfile, seed uint64) *FaultInjector { return fault.New(p, seed) }

// NewMetricsRegistry builds an empty metrics registry. Pass it through
// CharactOptions/DeployOptions (and FaultInjector.Observe) to collect,
// then export with WriteProm or SnapshotJSON — byte-identical across
// identically-seeded runs.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds an empty span tracer keyed on simulated/logical time
// (never the wall clock). Export with WriteJSON.
func NewTracer() *Tracer { return obs.NewTracer() }

// RunCampaign fans a campaign of independent experiment jobs across a
// bounded worker pool and merges the results in canonical job order.
// The merged output — and every obs export — is byte-identical
// regardless of Workers; with a cache directory, completed jobs are
// content-addressed on disk so re-runs skip them and a killed campaign
// resumes from its checkpoint.
func RunCampaign(c *FleetCampaign, o FleetOptions) (*FleetResult, error) {
	return fleet.Run(c, o)
}

// MonteCarloCampaign builds the Monte-Carlo population campaign: n
// servers manufactured from silicon seeds start..start+n-1, each
// stress-test deployed.
func MonteCarloCampaign(n int, start uint64) *FleetCampaign { return fleet.MonteCarlo(n, start) }

// TuneCampaign builds a deployment sweep over n generated servers,
// optionally under a deterministic fault profile whose per-job streams
// are independent rng splits of faultSeed.
func TuneCampaign(n int, start uint64, rollback int, faultProfile string, faultSeed uint64) *FleetCampaign {
	return fleet.TuneSweep(n, start, rollback, faultProfile, faultSeed)
}

// CharacterizeCampaign builds a characterization sweep over n generated
// servers (trials 0 = the methodology default).
func CharacterizeCampaign(n int, start uint64, trials int, faultProfile string, faultSeed uint64) *FleetCampaign {
	return fleet.CharacterizeSweep(n, start, trials, faultProfile, faultSeed)
}

// LifetimeCampaign builds a lifetime drift sweep over n servers
// (silicon seed 0 = the reference server; years 0 = three).
func LifetimeCampaign(n int, start uint64, years int, sentinelOff bool) *FleetCampaign {
	return fleet.LifetimeSweep(n, start, years, sentinelOff)
}

// SimulateLifetime ages a fine-tuned server through years of simulated
// field operation: seeded NBTI/HCI drift erodes the tuned margins while
// the closed-loop margin sentinel (unless disabled) watches CPM slack
// telemetry and walks its escalation ladder — step-back, bounded online
// re-tune, static fallback, quarantine — to keep the configuration
// safe. The result is a pure function of (profile, options).
func SimulateLifetime(profile *SiliconProfile, o LifetimeOptions) (*LifetimeResult, error) {
	return lifetime.Run(profile, o)
}

// BuildServer materializes a server spec through the shared platform
// recipe: silicon (reference or generated), machine, and optional
// deterministic fault arming. Fleet jobs, the CLIs and the datacenter
// plane all construct servers through this one path.
func BuildServer(spec PlatformSpec) (*PlatformServer, error) { return platform.Build(spec) }

// ArmFaults parses a fault profile spec and arms it on a machine
// through the shared platform recipe: nil injector for an empty or
// "none" spec (fault-free runs keep their exact pre-fault code path),
// seed 0 normalized to the injector default of 1.
func ArmFaults(m *Machine, profileSpec string, seed uint64) (*FaultInjector, error) {
	return platform.Arm(m, profileSpec, seed)
}

// ProvisionServer runs the datacenter intake pass on a built server:
// stress-test deployment, per-core Eq. 1 predictor calibration, and
// the idle/loaded power envelope per chip.
func ProvisionServer(srv *PlatformServer, o ProvisionOptions) (*Provision, error) {
	return platform.ProvisionServer(srv, o)
}

// RunDatacenter executes a rack-scale campaign: every node provisioned
// through the fleet (sharded, cached, resumable), then the
// hierarchical power budget and the Eq. 1 predictor-driven scheduler
// simulated over a seeded tenant stream. The canonical result is
// byte-identical at every worker count.
func RunDatacenter(o DCOptions) (*DCResult, error) { return dc.Run(o) }

// DatacenterCampaign builds the intake fleet campaign for a topology
// without running it — one single-chip dcprovision job per node.
func DatacenterCampaign(o DCOptions) *FleetCampaign { return dc.Campaign(o) }

// ReferenceTableIRow returns the paper's published Table I limits for a
// reference core label, for comparing regenerated results against the
// paper.
func ReferenceTableIRow(core string) (idle, uBench, normal, worst int, ok bool) {
	return silicon.ReferenceTableI(core)
}
