// Command atmlint runs the repository's domain-specific static
// analyzers (internal/lint) over the module: determinism (detrand,
// maporder), unit safety (unitsafety), float comparison hygiene
// (floatcmp) and error hygiene (errdrop).
//
// Usage:
//
//	atmlint [-json] [-rules] [package-dir | ./...]
//
// With no argument (or "./...") the whole module containing the
// current directory is linted; with a package directory, just that
// package. Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Suppress an individual finding with an annotation on the same line
// or the line directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("atmlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listRules := fs.Bool("rules", false, "list rule IDs and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: atmlint [-json] [-rules] [package-dir | ./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %-5s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}
	wholeModule := true
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		if arg := fs.Arg(0); arg != "./..." {
			dir, wholeModule = arg, false
		}
	default:
		fs.Usage()
		return 2
	}

	runner := lint.Run
	if !wholeModule {
		runner = lint.RunDir
	}
	findings, err := runner(dir, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmlint:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.RenderJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
	} else {
		if err := lint.Render(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "atmlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
