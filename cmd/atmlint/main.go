// Command atmlint runs the repository's domain-specific static
// analyzers (internal/lint) over the module: per-package determinism
// (detrand, maporder), unit safety (unitsafety), float comparison
// hygiene (floatcmp), error hygiene (errdrop), hot-path allocation
// discipline (hotpath), nil-safe-handle contracts (nilsafe), and the
// whole-program determinism-taint rule (detflow).
//
// Usage:
//
//	atmlint [-json] [-list] [-rules r1,r2] [-changed [-ref REF]] [package-dir | ./...]
//
// With no argument (or "./...") the whole module containing the
// current directory is linted; with a package directory, just that
// package. -rules restricts the run to a comma-separated rule subset
// (the CI gate runs `-rules detflow,hotpath,nilsafe ./...` alongside
// the full set). -changed lints only the packages whose Go files
// differ from the git ref (-ref, default HEAD) — the pre-commit fast
// path; whole-module completeness checks (stale detflow baseline
// entries) run only on full walks. Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
//
// Suppress an individual finding with an annotation on the same line,
// the line directly above it, or the opening line of the multi-line
// statement containing it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("atmlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listRules := fs.Bool("list", false, "list rule IDs and exit")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	changed := fs.Bool("changed", false, "lint only packages with Go files differing from -ref")
	ref := fs.String("ref", "HEAD", "git ref -changed diffs against")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: atmlint [-json] [-list] [-rules r1,r2] [-changed [-ref REF]] [package-dir | ./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %-5s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.SelectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmlint:", err)
		return 2
	}
	wholeModule := true
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		if arg := fs.Arg(0); arg != "./..." {
			dir, wholeModule = arg, false
		}
	default:
		fs.Usage()
		return 2
	}

	var findings []lint.Finding
	switch {
	case *changed:
		if !wholeModule {
			fmt.Fprintln(os.Stderr, "atmlint: -changed takes no package argument (it discovers its own)")
			return 2
		}
		root, err := lint.ModuleRoot(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
		dirs, err := lint.ChangedDirs(root, *ref)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
		if len(dirs) == 0 {
			fmt.Fprintf(os.Stderr, "atmlint: no Go changes against %s\n", *ref)
		}
		findings, err = lint.RunDirs(dirs, lint.DefaultConfig(), analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
	case wholeModule:
		findings, err = lint.RunRules(dir, lint.DefaultConfig(), analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
	default:
		findings, err = lint.RunDirs([]string{dir}, lint.DefaultConfig(), analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
	}
	if *jsonOut {
		if err := lint.RenderJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
	} else {
		if err := lint.Render(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "atmlint:", err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "atmlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
