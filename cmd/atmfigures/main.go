// Command atmfigures regenerates the paper's tables and figures from
// the simulated POWER7+ platform.
//
// Usage:
//
//	atmfigures                 # regenerate everything, text format
//	atmfigures -id fig7        # one artifact
//	atmfigures -csv            # CSV output
//	atmfigures -list           # list artifact IDs
//	atmfigures -generated 42   # run on Monte-Carlo silicon (seed 42)
//	atmfigures -workers 8      # fleet worker pool for the Monte-Carlo
//	                           # extension study (output is identical
//	                           # for every worker count)
package main

import (
	"flag"
	"fmt"
	"os"

	atm "repro"
	"repro/internal/report"
)

func main() {
	var (
		id        = flag.String("id", "", "regenerate a single artifact (e.g. table1, fig7)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list artifact IDs and exit")
		generated = flag.Uint64("generated", 0, "run on generated silicon with this seed instead of the paper-calibrated reference")
		ext       = flag.Bool("ext", false, "also regenerate the extension studies (undervolt, Monte-Carlo, ablations)")
		workers   = flag.Int("workers", 0, "fleet workers for the Monte-Carlo population study (0 = default; any value emits identical bytes)")
	)
	flag.Parse()

	opts := atm.SuiteOptions{FleetWorkers: *workers}
	if *generated != 0 {
		profile, err := atm.GenerateSilicon(*generated, atm.GenerateOptions{})
		if err != nil {
			fatal(err)
		}
		opts.Profile = profile
	}
	suite, err := atm.NewSuite(opts)
	if err != nil {
		fatal(err)
	}

	experiments := suite.Experiments()
	if *ext {
		experiments = append(experiments, suite.ExtensionExperiments()...)
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-22s %s\n", e.ID, e.Caption)
		}
		return
	}

	emit := func(a *report.Artifact) {
		var err error
		if *csv {
			err = a.RenderCSV(os.Stdout)
		} else {
			err = a.Render(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	}

	if *id != "" {
		a, err := suite.RunExperiment(*id)
		if err != nil {
			fatal(err)
		}
		emit(a)
		return
	}
	for _, e := range experiments {
		a, err := e.Run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		emit(a)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atmfigures:", err)
	os.Exit(1)
}
