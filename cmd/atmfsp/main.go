// Command atmfsp serves the service-processor operator protocol on
// stdio, so the fine-tuning procedures can be driven by a shell script
// exactly as they would be on the test floor:
//
//	$ printf 'cpm P0C3 6\nfreq P0C3\nchip P0\nquit\n' | atmfsp
//	ok
//	ok 4905 MHz
//	ok power=55.9W supply=1250mV temp=40.7C budget=1
//	ok bye
//
// Run with -generated <seed> to control Monte-Carlo silicon instead of
// the paper-calibrated reference server, or with -listen <addr> to serve
// the protocol over TCP (one shared machine, sessions serialized):
//
//	atmfsp -listen 127.0.0.1:7077 &
//	printf 'freq P0C3\nquit\n' | nc 127.0.0.1 7077
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	atm "repro"
	"repro/internal/fsp"
)

// wallMicros is the latency clock for live serving: the per-verb
// fsp_session_latency histograms (read back via the "stats" verb)
// count wall-clock microseconds.
func wallMicros() int64 { return time.Now().UnixMicro() }

func main() {
	seed := flag.Uint64("generated", 0, "use Monte-Carlo silicon with this seed (0 = paper reference)")
	listen := flag.String("listen", "", "serve the protocol on this TCP address instead of stdio")
	maxSessions := flag.Int("max-sessions", 0,
		"bound concurrently served sessions; surplus connections get an in-band 'err busy' (0 = unbounded)")
	acceptBurst := flag.Int64("accept-burst", 0,
		"token-bucket burst capacity on session admission; storms beyond it are shed in-band (0 = disabled)")
	garbage := flag.Int("garbage-threshold", 0,
		"consecutive protocol-garbage lines before a session's circuit breaker trips open (0 = disabled)")
	flag.Parse()

	var m *atm.Machine
	if *seed == 0 {
		m = atm.NewReferenceMachine()
	} else {
		profile, err := atm.GenerateSilicon(*seed, atm.GenerateOptions{})
		if err != nil {
			fatal(err)
		}
		mm, err := atm.NewMachine(profile)
		if err != nil {
			fatal(err)
		}
		m = mm
	}
	ctl := fsp.NewController(m)
	reg := atm.NewMetricsRegistry()
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "atmfsp: serving on", l.Addr())
		srv := fsp.NewServer(ctl)
		srv.Observe(reg)
		srv.SetClock(wallMicros)
		srv.Guard(fsp.GuardOptions{
			MaxSessions:      *maxSessions,
			AcceptCapacity:   *acceptBurst,
			GarbageThreshold: *garbage,
		})
		if err := srv.Serve(l); err != nil {
			fatal(err)
		}
		return
	}
	sess := fsp.NewSession(ctl)
	sess.Observe(reg)
	sess.SetClock(wallMicros)
	if err := sess.Serve(os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atmfsp:", err)
	os.Exit(1)
}
