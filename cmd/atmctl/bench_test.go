package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/perf"
)

// silenceStdout routes subcommand rendering to /dev/null for the test
// duration; diagnostics still reach os.Stderr.
func silenceStdout(t *testing.T) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	stdout := os.Stdout
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = stdout
		//lint:ignore errdrop test teardown of the /dev/null handle
		devnull.Close()
	})
}

func TestBenchEmitsArtifactAndProfiles(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_core.json")
	cpu := filepath.Join(dir, "cpu.pb.gz")

	if got := run([]string{"bench", "-set", "kernel", "-quick",
		"-out", out, "-cpuprofile", cpu, "-top", "5"}); got != 0 {
		t.Fatalf("bench exit = %d, want 0", got)
	}

	doc, err := perf.ReadDoc(out)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "core" || !doc.Quick || len(doc.Stages) == 0 {
		t.Fatalf("artifact malformed: %+v", doc)
	}
	for _, row := range doc.Stages {
		if row.Group != "kernel" {
			t.Errorf("-set kernel leaked stage %s/%s", row.Group, row.Name)
		}
	}
	f, err := os.Open(cpu)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop read-only profile handle in a test
	defer f.Close()
	if _, err := perf.ParseProfile(f); err != nil {
		t.Fatalf("captured profile unparseable: %v", err)
	}
}

func TestBenchBaselineGate(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_core.json")
	if got := run([]string{"bench", "-set", "kernel", "-quick", "-out", out}); got != 0 {
		t.Fatalf("baseline run exit = %d, want 0", got)
	}

	// A fresh run against its own baseline passes the gate.
	if got := run([]string{"bench", "-set", "kernel", "-quick", "-baseline", out}); got != 0 {
		t.Fatalf("self-comparison exit = %d, want 0", got)
	}

	// Poison the baseline: impossible allocs and a vanished stage must
	// both surface as exit 3 (partial), not a hard failure.
	doc, err := perf.ReadDoc(out)
	if err != nil {
		t.Fatal(err)
	}
	doc.Stages = append(doc.Stages, perf.StageRow{Name: "ghost_stage", Group: "kernel", AllocsPerOp: -1})
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"bench", "-set", "kernel", "-quick", "-baseline", out}); got != 3 {
		t.Fatalf("regression exit = %d, want 3", got)
	}

	// Quick run against a full baseline refuses hard (exit 1).
	doc.Quick = false
	doc.Stages = doc.Stages[:len(doc.Stages)-1]
	raw, err = doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"bench", "-set", "kernel", "-quick", "-baseline", out}); got != 1 {
		t.Fatalf("quick/full mismatch exit = %d, want 1", got)
	}
}

func TestBenchUsageErrors(t *testing.T) {
	silenceStdout(t)
	if got := run([]string{"bench", "-set", "bogus"}); got != 2 {
		t.Fatalf("unknown -set exit = %d, want 2", got)
	}
	if got := run([]string{"bench", "-top", "5"}); got != 2 {
		t.Fatalf("-top without -cpuprofile exit = %d, want 2", got)
	}
}

// TestFloodDeterministicArtifact is satellite (d) at the CLI surface:
// two identically-seeded flood runs write byte-identical artifacts
// once the single timing sub-object is stripped.
func TestFloodDeterministicArtifact(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, out := range []string{a, b} {
		if got := run([]string{"flood", "-quick", "-seed", "7", "-out", out}); got != 0 {
			t.Fatalf("flood exit = %d, want 0", got)
		}
	}
	canon := func(path string) []byte {
		t.Helper()
		doc, err := perf.ReadDoc(path)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := doc.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if ca, cb := canon(a), canon(b); !bytes.Equal(ca, cb) {
		t.Fatalf("seeded flood artifacts diverged:\n%s\n%s", ca, cb)
	}

	// The raw files differ only inside "timing": parse both, zero the
	// timing, and the structures must match (guards against stray
	// wall-clock fields leaking into new canonical sections).
	var da, db perf.Doc
	rawA, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawA, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawB, &db); err != nil {
		t.Fatal(err)
	}
	da.Timing, db.Timing = perf.Timing{}, perf.Timing{}
	if *da.Flood != *db.Flood {
		t.Fatalf("canonical flood rows diverged: %+v vs %+v", da.Flood, db.Flood)
	}
}

func TestFloodBaselineGate(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_fsp.json")
	if got := run([]string{"flood", "-quick", "-out", out}); got != 0 {
		t.Fatalf("flood exit = %d, want 0", got)
	}
	// Identical options reproduce the canonical outcome: gate passes.
	if got := run([]string{"flood", "-quick", "-baseline", out}); got != 0 {
		t.Fatalf("self-comparison exit = %d, want 0", got)
	}
	// A baseline with a diverged canonical outcome fails the gate.
	doc, err := perf.ReadDoc(out)
	if err != nil {
		t.Fatal(err)
	}
	doc.Flood.Executed++
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"flood", "-quick", "-baseline", out}); got != 3 {
		t.Fatalf("diverged baseline exit = %d, want 3", got)
	}
}

func TestFloodUsageErrors(t *testing.T) {
	silenceStdout(t)
	if got := run([]string{"flood", "-garbage", "2000"}); got != 2 {
		t.Fatalf("garbage out of range exit = %d, want 2", got)
	}
}
