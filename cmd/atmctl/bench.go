package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/perf"
	"repro/internal/report"
)

// cmdBench runs the pinned microbenchmark plan over the //atm:hotpath
// kernels, the end-to-end characterize/tune stages, and the fleet
// engine, optionally profiling exactly the benched region, and emits
// the canonical BENCH_core.json artifact.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	set := fs.String("set", "", "comma-separated stage groups to run: kernel,e2e,fleet,dc (empty = all)")
	quick := fs.Bool("quick", false, "CI-sized iteration plan (baselines are checked in quick)")
	out := fs.String("out", "", "write the BENCH json artifact to this file")
	baseline := fs.String("baseline", "", "compare against this BENCH json and exit 3 on regression")
	bench := fs.String("bench", "core", "artifact family name recorded in the json")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benched region")
	memprofile := fs.String("memprofile", "", "write a post-GC heap profile taken after the benched region")
	traceOut := fs.String("trace", "", "write a runtime/trace of the benched region")
	top := fs.Int("top", 0, "after the run, print the top-N hotspot table from -cpuprofile")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *top > 0 && *cpuprofile == "" {
		fmt.Fprintln(os.Stderr, "bench: -top needs -cpuprofile")
		return usageError{fmt.Errorf("-top without -cpuprofile")}
	}

	var groups []string
	if *set != "" {
		groups = strings.Split(*set, ",")
	}
	stages, err := perf.Stages(*quick, groups...)
	if err != nil {
		return usageError{err}
	}

	// Capture brackets exactly the measured stages: no flag parsing, no
	// artifact writing in the profile.
	capture := perf.Capture{CPUProfile: *cpuprofile, MemProfile: *memprofile, Trace: *traceOut}
	var stop func() error
	if capture.Enabled() {
		if stop, err = capture.Start(); err != nil {
			return err
		}
	}
	results, err := perf.RunStages(stages)
	if stop != nil {
		if cerr := stop(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	doc := perf.NewDoc(*bench, *quick, results)
	if err := renderBenchTable(doc, results); err != nil {
		return err
	}
	if *out != "" {
		raw, err := doc.Marshal()
		if err != nil {
			return err
		}
		if err := writeFile(*out, func(f *os.File) error { _, werr := f.Write(raw); return werr }); err != nil {
			return err
		}
	}
	if *top > 0 {
		if err := printTop(*cpuprofile, *top); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return gateBaseline(*baseline, doc)
	}
	return nil
}

// renderBenchTable prints the per-stage results for humans; the json
// artifact is the machine form.
func renderBenchTable(doc *perf.Doc, results []perf.StageResult) error {
	t := &report.Table{
		Title:  fmt.Sprintf("bench %s (quick=%v)", doc.Bench, doc.Quick),
		Header: []string{"stage", "group", "iters", "trials/op", "ns/trial", "trials/sec", "allocs/op"},
	}
	for _, r := range results {
		nsPerTrial := int64(0)
		if r.TrialsPerOp > 0 {
			nsPerTrial = r.NSPerOp / r.TrialsPerOp
		}
		allocs := fmt.Sprintf("%d", r.AllocsPerOp)
		if !r.Stage.AllocStable {
			allocs = fmt.Sprintf("~%d", r.AllocsPerOp) // scheduling-dependent: timing only
		}
		t.AddRow(r.Stage.Name, r.Stage.Group, fmt.Sprintf("%d", r.Stage.Iters),
			fmt.Sprintf("%d", r.TrialsPerOp), fmt.Sprintf("%d", nsPerTrial),
			report.F(r.TrialsPerSec, 0), allocs)
	}
	return t.Render(os.Stdout)
}

// printTop parses the captured CPU profile and prints the hotspot
// table — deterministic for a given profile file.
func printTop(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//lint:ignore errdrop read-only profile handle
	defer f.Close()
	p, err := perf.ParseProfile(f)
	if err != nil {
		return err
	}
	fmt.Printf("top %d of %s:\n", n, path)
	_, err = os.Stdout.WriteString(perf.FormatTop(p, p.Top(n)))
	return err
}

// gateBaseline compares the run against a checked-in baseline and
// reports regressions as a partial failure (exit 3): the run itself
// rendered fine, but the operator must not miss the drift.
func gateBaseline(path string, doc *perf.Doc) error {
	base, err := perf.ReadDoc(path)
	if err != nil {
		return err
	}
	regs, err := perf.Compare(base, doc)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Printf("baseline %s: ok (%d stage(s) gated)\n", path, len(base.Stages))
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "regression:", r)
	}
	return partialf("%d regression(s) against %s", len(regs), path)
}

// cmdFlood floods the FSP service plane with seeded pipelined operator
// sessions through the real guard plane and emits BENCH_fsp.json. The
// canonical outcome (sheds, breaker trips, latency quantiles in
// logical ticks) is a pure function of the options; wall-clock
// throughput lands in the timing section.
func cmdFlood(args []string) error {
	fs := flag.NewFlagSet("flood", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "CI-sized plan (baselines are checked in quick)")
	sessions := fs.Int("sessions", 0, "concurrent operator sessions (0 = plan default)")
	commands := fs.Int("commands", 0, "commands per admitted session (0 = plan default)")
	pipeline := fs.Int("pipeline", 0, "issue-ahead window per session (0 = plan default)")
	seed := fs.Uint64("seed", 1, "interleaver and command-mix seed")
	garbage := fs.Int("garbage", -1, "protocol-garbage rate in per-mille (-1 = plan default)")
	maxSessions := fs.Int("max-sessions", -1, "session gate capacity, 0 disables (-1 = plan default)")
	acceptBurst := fs.Int64("accept-burst", -1, "admission token-bucket burst, 0 disables (-1 = plan default)")
	garbageThreshold := fs.Int("garbage-threshold", -1, "breaker garbage threshold, 0 disables (-1 = plan default)")
	out := fs.String("out", "", "write the BENCH json artifact to this file")
	baseline := fs.String("baseline", "", "compare against this BENCH json and exit 3 on regression")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	o := perf.DefaultFloodOptions(*quick)
	o.Seed = *seed
	if *sessions > 0 {
		o.Sessions = *sessions
	}
	if *commands > 0 {
		o.Commands = *commands
	}
	if *pipeline > 0 {
		o.Pipeline = *pipeline
	}
	if *garbage >= 0 {
		o.Garbage = *garbage
	}
	if *maxSessions >= 0 {
		o.MaxSessions = *maxSessions
	}
	if *acceptBurst >= 0 {
		o.AcceptBurst = *acceptBurst
	}
	if *garbageThreshold >= 0 {
		o.GarbageThreshold = *garbageThreshold
	}

	r, err := perf.Flood(o)
	if err != nil {
		if strings.Contains(err.Error(), "perf:") {
			return usageError{err}
		}
		return err
	}
	doc := perf.FloodDoc(o, *quick, r)
	fmt.Printf("flood: %d session(s) × %d cmd(s): issued %d, executed %d, shed %d (%.0f%%), breaker-rejected %d, errors %d\n",
		o.Sessions, o.Commands, r.Issued, r.Executed, r.ShedSessions,
		100*doc.Flood.ShedRate, r.BreakerRejected, r.Errors)
	fmt.Printf("flood: latency ticks p50=%.1f p95=%.1f p99=%.1f; wall %.3fms (%.0f req/s)\n",
		r.P50Ticks, r.P95Ticks, r.P99Ticks,
		float64(r.WallNS)/1e6, doc.Timing.ReqPerSec)
	if *out != "" {
		raw, err := doc.Marshal()
		if err != nil {
			return err
		}
		if err := writeFile(*out, func(f *os.File) error { _, werr := f.Write(raw); return werr }); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return gateBaseline(*baseline, doc)
	}
	return nil
}
