package main

import (
	"os"
	"testing"
)

// TestRunExitCodes pins the exit-code contract scripts and CI branch
// on: 0 success, 1 hard failure, 2 usage, 3 partial (quarantined
// cores, failed jobs, UNSAFE lifetime verdict).
func TestRunExitCodes(t *testing.T) {
	// The subcommands render straight to os.Stdout; keep the test log
	// readable. Diagnostics still reach os.Stderr.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop test teardown of the /dev/null handle
	defer devnull.Close()
	stdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = stdout }()

	tests := []struct {
		name string
		argv []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"bad flag", []string{"status", "-no-such-flag"}, 2},
		{"help", []string{"tune", "-h"}, 2},
		{"status ok", []string{"status"}, 0},
		{"hard failure", []string{"sweep", "-core", "P9C9"}, 1},
		{"quarantined cores are partial", []string{"tune", "-fault-profile", "broken-core"}, 3},
		{"lifetime safe", []string{"lifetime", "-years", "1"}, 0},
		{"lifetime unsafe is partial", []string{"lifetime", "-years", "3", "-sentinel-off"}, 3},
		{"dc ok", []string{"dc", "-racks", "1", "-chassis", "1", "-chips-per-chassis", "2", "-ticks", "8"}, 0},
		{"dc bad flag", []string{"dc", "-no-such-flag"}, 2},
		{"dc quarantined chips are partial", []string{"dc",
			"-racks", "1", "-chassis", "1", "-chips-per-chassis", "2", "-ticks", "8",
			"-fault-profile", "test-floor,broken=8", "-fault-seed", "5"}, 3},
		{"dc budget violation is partial", []string{"dc",
			"-racks", "1", "-chassis", "1", "-chips-per-chassis", "2", "-ticks", "8",
			"-chassis-cap", "30"}, 3},
		{"dc ops recovered is ok", []string{"dc",
			"-racks", "1", "-chassis", "2", "-chips-per-chassis", "2",
			"-ticks", "32", "-tenants", "16",
			"-ops-fault-profile", "chip-death"}, 0},
		{"dc ops shed tenants are partial", []string{"dc",
			"-racks", "1", "-chassis", "1", "-chips-per-chassis", "2",
			"-ticks", "10", "-tenants", "12",
			"-ops-fault-profile", "chip-deaths=2"}, 3},
		{"dc bad ops profile is hard", []string{"dc",
			"-racks", "1", "-chassis", "1", "-chips-per-chassis", "2", "-ticks", "8",
			"-ops-fault-profile", "no-such-preset"}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.argv); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d", tc.argv, got, tc.want)
			}
		})
	}
}
