// Command atmctl drives the ATM fine-tuning library interactively:
// characterize a server, run the test-time deployment, schedule managed
// co-locations, sweep a core's CPM configuration, or watch the control
// loop's transient response.
//
// Usage:
//
//	atmctl characterize [-trials 10] [-seed 1]
//	atmctl tune [-rollback 0]
//	atmctl schedule -critical squeezenet -background lu_cb [-scenario managed-balanced] [-qos 0.10]
//	atmctl sweep -core P0C3
//	atmctl fleet -kind montecarlo -n 32 -workers 8 [-cache-dir .fleet] [-resume]
//	atmctl dc -racks 2 -chassis 4 -chips-per-chassis 8 -workers 8 [-json] [-cache-dir .dc] [-resume]
//	atmctl lifetime [-years 3] [-seed 1] [-sentinel-off] [-cache-dir .fleet] [-resume]
//	atmctl transient [-chip P0] [-steps 2000] [-stress]
//	atmctl bench [-set kernel,e2e,fleet,dc] [-quick] [-out BENCH_core.json] [-baseline BENCH_core.json]
//	             [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz] [-trace trace.out] [-top 15]
//	atmctl flood [-sessions 16] [-commands 200] [-seed 1] [-quick] [-out BENCH_fsp.json] [-baseline BENCH_fsp.json]
//	atmctl status
//
// characterize, tune, schedule, sweep, fleet, dc and lifetime accept
// -metrics-out and -trace-out to export the run's deterministic
// metrics snapshot and Perfetto trace.
//
// Add -generated <seed> to any subcommand to run on Monte-Carlo silicon
// instead of the paper-calibrated reference server.
//
// Exit codes: 0 success; 1 hard failure; 2 usage error; 3 completed
// with degraded results the operator must not miss — quarantined
// cores or chips, failed fleet jobs, datacenter budget violations, or
// an UNSAFE lifetime verdict — announced in a one-line stderr summary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	atm "repro"
	"repro/internal/manage"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches a subcommand and maps its outcome to the process exit
// code: 0 success, 1 hard failure, 2 usage, 3 partial (the command
// completed and rendered its results, but something the operator must
// not miss degraded — quarantined cores, failed jobs, an UNSAFE
// verdict). Scripts and CI branch on the distinction.
func run(argv []string) int {
	if len(argv) < 1 {
		usage()
		return 2
	}
	cmd, args := argv[0], argv[1:]
	var err error
	switch cmd {
	case "characterize":
		err = cmdCharacterize(args)
	case "tune":
		err = cmdTune(args)
	case "schedule":
		err = cmdSchedule(args)
	case "sweep":
		err = cmdSweep(args)
	case "fleet":
		err = cmdFleet(args)
	case "dc":
		err = cmdDC(args)
	case "lifetime":
		err = cmdLifetime(args)
	case "transient":
		err = cmdTransient(args)
	case "bench":
		err = cmdBench(args)
	case "flood":
		err = cmdFlood(args)
	case "status":
		err = cmdStatus(args)
	default:
		usage()
		return 2
	}
	if err == nil {
		return 0
	}
	// The FlagSet already printed -h help or the parse diagnostic.
	var ue usageError
	if errors.Is(err, flag.ErrHelp) || errors.As(err, &ue) {
		return 2
	}
	fmt.Fprintln(os.Stderr, "atmctl:", err)
	var pe partialError
	if errors.As(err, &pe) {
		return 3
	}
	return 1
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: atmctl <characterize|tune|schedule|sweep|fleet|dc|lifetime|transient|bench|flood|status> [flags]
run "atmctl <subcommand> -h" for flags`)
}

// usageError marks a bad invocation (exit 2). The FlagSet has already
// printed the diagnostic, so run only maps the code.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// parseFlags parses with the usage classification attached.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return nil
}

// partialError marks a run whose results rendered fine but carried a
// degraded outcome (exit 3).
type partialError struct{ msg string }

func (e partialError) Error() string { return e.msg }

func partialf(format string, a ...any) error {
	return partialError{msg: fmt.Sprintf(format, a...)}
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	build := machineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	st, err := m.Solve()
	if err != nil {
		return err
	}
	for _, cs := range st.Chips {
		t := &report.Table{
			Title: fmt.Sprintf("%s: %.1f W, %.3f V (drop %.1f mV), %.1f °C, in budget: %v",
				cs.Label, float64(cs.Power), float64(cs.Supply),
				cs.DCDrop.Millivolts(), float64(cs.TempC), cs.InBudget),
			Header: []string{"core", "mode", "reduction", "workload", "freq (MHz)", "power (W)"},
		}
		for _, c := range cs.Cores {
			gate := ""
			if c.Gated {
				gate = " (gated)"
			}
			t.AddRow(c.Label, c.Mode.String()+gate, fmt.Sprintf("%d", c.Reduction),
				c.Workload, report.F(float64(c.Freq), 0), report.F(float64(c.Power), 2))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// machineFlag adds the -generated flag and returns a machine builder
// routed through the shared platform recipe, so a CLI invocation and a
// fleet job spec materialize byte-identical servers.
func machineFlag(fs *flag.FlagSet) func() (*atm.Machine, error) {
	seed := fs.Uint64("generated", 0, "use Monte-Carlo silicon with this seed (0 = paper reference)")
	return func() (*atm.Machine, error) {
		srv, err := atm.BuildServer(atm.PlatformSpec{SiliconSeed: *seed})
		if err != nil {
			return nil, err
		}
		return srv.Machine, nil
	}
}

// faultFlag adds the -fault-profile and -fault-seed flags and returns an
// armer that installs the requested faults on a machine. The armer
// returns nil when no faults were requested, so fault-free runs take
// exactly the code path (and RNG streams) they did before this flag
// existed.
func faultFlag(fs *flag.FlagSet) func(*atm.Machine) (*atm.FaultInjector, error) {
	profile := fs.String("fault-profile", "",
		"inject deterministic faults: preset (test-floor, flaky-fsp, noisy-cpm, broken-core) or key=value list")
	seed := fs.Uint64("fault-seed", 1, "fault injection seed")
	return func(m *atm.Machine) (*atm.FaultInjector, error) {
		return atm.ArmFaults(m, *profile, *seed)
	}
}

// obsFlag adds the -metrics-out and -trace-out flags. The returned
// attach hook builds the registry/tracer (nil when the matching flag is
// unset, keeping the instrumented hot paths free) and wires fault hit
// counters; the returned flush writes the export files.
func obsFlag(fs *flag.FlagSet) (attach func(*atm.FaultInjector) (*atm.MetricsRegistry, *atm.Tracer), flush func() error) {
	metricsOut := fs.String("metrics-out", "", "write a deterministic JSON metrics snapshot to this file")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event JSON file (open in Perfetto) to this file")
	var reg *atm.MetricsRegistry
	var tr *atm.Tracer
	attach = func(inj *atm.FaultInjector) (*atm.MetricsRegistry, *atm.Tracer) {
		if *metricsOut != "" {
			reg = atm.NewMetricsRegistry()
			if inj != nil {
				inj.Observe(reg)
			}
		}
		if *traceOut != "" {
			tr = atm.NewTracer()
		}
		return reg, tr
	}
	flush = func() error {
		if reg != nil {
			if err := writeFile(*metricsOut, func(f *os.File) error { return reg.WriteJSON(f) }); err != nil {
				return err
			}
		}
		if tr != nil {
			if err := writeFile(*traceOut, func(f *os.File) error { return tr.WriteJSON(f) }); err != nil {
				return err
			}
		}
		return nil
	}
	return attach, flush
}

// writeFile creates path and streams write into it, surfacing both the
// write and close errors.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	trials := fs.Int("trials", 10, "repeated trials per (core, workload)")
	seed := fs.Uint64("seed", 1, "trial seed")
	build := machineFlag(fs)
	arm := faultFlag(fs)
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	inj, err := arm(m)
	if err != nil {
		return err
	}
	reg, tr := attach(inj)
	rep, err := atm.Characterize(m, atm.CharactOptions{Trials: *trials, Seed: *seed, Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{
		Title:  "ATM reconfiguration limits",
		Header: []string{"core", "idle", "uBench", "thread normal", "thread worst", "idle freq (MHz)"},
	}
	if inj != nil {
		t.Header = append(t.Header, "status")
	}
	quarantined := 0
	for _, c := range rep.Cores {
		row := []string{c.Core,
			fmt.Sprintf("%d", c.Idle.Limit), fmt.Sprintf("%d", c.UBenchLimit),
			fmt.Sprintf("%d", c.ThreadNormal), fmt.Sprintf("%d", c.ThreadWorst),
			report.F(float64(c.IdleFreq), 0)}
		if inj != nil {
			status := "ok"
			if c.Quarantined {
				status = "quarantined"
				quarantined++
			}
			row = append(row, status)
		}
		t.AddRow(row...)
	}
	if inj != nil {
		t.Note = fmt.Sprintf("faults armed: %s (seed %d); %d core(s) quarantined",
			inj.Profile(), inj.Seed(), quarantined)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if quarantined > 0 {
		return partialf("characterize: %d core(s) quarantined", quarantined)
	}
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	rollback := fs.Int("rollback", 0, "safety steps below the stress-test limit")
	build := machineFlag(fs)
	arm := faultFlag(fs)
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	inj, err := arm(m)
	if err != nil {
		return err
	}
	reg, tr := attach(inj)
	dep, err := atm.Deploy(m, atm.DeployOptions{Rollback: *rollback, Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Test-time stress-test deployment",
		Header: []string{"core", "stress limit", "deployed reduction", "idle freq (MHz)", "loaded freq (MHz)"},
		Note:   fmt.Sprintf("inter-core speed differential: %.0f MHz", dep.SpeedDifferentialMHz()),
	}
	if inj != nil {
		t.Header = append(t.Header, "mode")
	}
	for _, cfg := range dep.Configs {
		row := []string{cfg.Core, fmt.Sprintf("%d", cfg.StressLimit), fmt.Sprintf("%d", cfg.Reduction),
			report.F(float64(cfg.IdleFreq), 0), report.F(float64(cfg.LoadedFreq), 0)}
		if inj != nil {
			mode := "ATM"
			if cfg.Quarantined {
				mode = "static (quarantined)"
			}
			row = append(row, mode)
		}
		t.AddRow(row...)
	}
	if inj != nil {
		t.Note += fmt.Sprintf("; faults armed: %s (seed %d); quarantined: %d",
			inj.Profile(), inj.Seed(), len(dep.Quarantined()))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if q := len(dep.Quarantined()); q > 0 {
		return partialf("tune: %d core(s) quarantined", q)
	}
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	critName := fs.String("critical", "squeezenet", "critical (latency-sensitive) workload")
	bgName := fs.String("background", "lu_cb", "background co-runner")
	scen := fs.String("scenario", "managed-balanced",
		"static-margin | default-atm | fine-tuned-unmanaged | managed-max | managed-balanced")
	qos := fs.Float64("qos", 0.10, "balanced-mode improvement target over static margin")
	governor := fs.String("governor", "default", "default | conservative | aggressive")
	build := machineFlag(fs)
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	crit, err := atm.WorkloadByName(*critName)
	if err != nil {
		return err
	}
	bg, err := atm.WorkloadByName(*bgName)
	if err != nil {
		return err
	}
	scenario, err := manage.ScenarioByName(*scen)
	if err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	reg, tr := attach(nil)
	rep, err := atm.Characterize(m, atm.CharactOptions{Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	dep, err := atm.Deploy(m, atm.DeployOptions{Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	mgr, err := atm.NewManager(m, dep, rep)
	if err != nil {
		return err
	}
	mgr.Obs, mgr.Trace = reg, tr
	switch *governor {
	case "default":
		mgr.Governor = atm.GovernorDefault
	case "conservative":
		mgr.Governor = atm.GovernorConservative
	case "aggressive":
		mgr.Governor = atm.GovernorAggressive
	default:
		return fmt.Errorf("unknown governor %q", *governor)
	}
	ev, err := mgr.Evaluate(scenario, atm.Pair{Critical: crit, Background: bg}, *qos)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{Title: fmt.Sprintf("Schedule %s under %s", ev.Pair.Label(), ev.Scenario)}
	t.Header = []string{"metric", "value"}
	t.AddRow("critical core", ev.CriticalCore)
	t.AddRow("critical frequency", fmt.Sprintf("%.0f MHz", float64(ev.CriticalFreq)))
	t.AddRow("critical improvement", report.Pct(ev.Improvement()))
	if ev.CriticalLatencyMs > 0 {
		t.AddRow("critical latency", fmt.Sprintf("%.1f ms", ev.CriticalLatencyMs))
	}
	t.AddRow("background setting", ev.BackgroundSetting)
	t.AddRow("background performance", report.Pct(ev.BackgroundPerf-1))
	t.AddRow("chip power", fmt.Sprintf("%.1f W", float64(ev.ChipPower)))
	t.AddRow("supply", fmt.Sprintf("%.3f V", float64(ev.Supply)))
	if ev.QoSTarget > 0 {
		t.AddRow("power budget", fmt.Sprintf("%.1f W", float64(ev.PowerBudget)))
		t.AddRow("meets QoS", fmt.Sprintf("%v (target %s)", ev.MeetsQoS, report.Pct(ev.QoSTarget)))
	}
	return t.Render(os.Stdout)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	label := fs.String("core", "P0C3", "core to sweep")
	build := machineFlag(fs)
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	core, err := m.Core(*label)
	if err != nil {
		return err
	}
	reg, tr := attach(nil)
	st, err := m.Solve()
	if err != nil {
		return err
	}
	cs, err := st.ChipState((*label)[:2])
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Frequency vs CPM delay reduction — %s (idle supply %.3f V)", *label, float64(cs.Supply)),
		Header: []string{"reduction", "settled freq (MHz)", "guard (ps)"},
	}
	rows := reg.Counter("atmctl_sweep_rows_total", "core", *label)
	sp := tr.Begin("sweep", "reduction-sweep", *label)
	for r := 0; r <= core.Profile.MaxReduction(); r++ {
		f, err := core.Profile.SettledFreq(r, cs.Supply)
		if err != nil {
			return err
		}
		g, err := core.Profile.GuardPs(r)
		if err != nil {
			return err
		}
		rows.Inc()
		t.AddRow(fmt.Sprintf("%d", r), report.F(float64(f), 0), report.F(float64(g), 1))
	}
	sp.Arg("core", *label).End()
	if err := flush(); err != nil {
		return err
	}
	return t.Render(os.Stdout)
}

func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	kind := fs.String("kind", "montecarlo", "campaign kind: montecarlo | characterize | tune")
	n := fs.Int("n", 8, "number of jobs (generated servers)")
	workers := fs.Int("workers", 4, "worker pool bound (output is identical for every value)")
	start := fs.Uint64("seed", 1, "first silicon seed of the sweep")
	trials := fs.Int("trials", 0, "characterize: trials per (core, workload); 0 = default")
	rollback := fs.Int("rollback", 0, "tune: safety steps below the stress-test limit")
	faultProfile := fs.String("fault-profile", "",
		"characterize/tune: arm this fault profile on every job (per-job seeds are independent rng splits)")
	faultSeed := fs.Uint64("fault-seed", 1, "base fault seed the per-job streams split from")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache + checkpoint manifest directory")
	resume := fs.Bool("resume", false, "continue a killed campaign from its checkpoint in -cache-dir")
	panicRetries := fs.Int("panic-retries", 0,
		"re-attempts before a panicking job is quarantined as poisoned (0 = default 1, negative = none)")
	trialBudget := fs.Int64("trial-budget", 0,
		"watchdog: per-job trial budget before the job is failed as stuck (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the merged campaign result as JSON instead of a table")
	timing := fs.Bool("timing", false,
		"report per-job wall time on stderr (provenance only — the merged stdout output is unchanged)")
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var camp *atm.FleetCampaign
	switch *kind {
	case "montecarlo":
		if *faultProfile != "" {
			return errors.New("fleet: -fault-profile applies to characterize and tune campaigns")
		}
		camp = atm.MonteCarloCampaign(*n, *start)
	case "characterize":
		camp = atm.CharacterizeCampaign(*n, *start, *trials, *faultProfile, *faultSeed)
	case "tune":
		camp = atm.TuneCampaign(*n, *start, *rollback, *faultProfile, *faultSeed)
	default:
		return fmt.Errorf("fleet: unknown kind %q", *kind)
	}

	reg, tr := attach(nil)
	opts := atm.FleetOptions{
		Workers:      *workers,
		CacheDir:     *cacheDir,
		Resume:       *resume,
		PanicRetries: *panicRetries,
		TrialBudget:  *trialBudget,
		Obs:          reg,
		Trace:        tr,
	}
	if *timing {
		// The fleet engine is in detrand scope and never reads the wall
		// clock itself; the timing clock is injected from out here.
		opts.Clock = func() int64 { return time.Now().UnixNano() }
	}
	res, err := atm.RunCampaign(camp, opts)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// Provenance goes to stderr: stdout carries only the canonical
	// merged view, so it byte-matches across worker counts, cache
	// hits, and resumed runs.
	fmt.Fprintf(os.Stderr, "fleet: campaign %s: %d job(s), %d cached, %d failed\n",
		camp.Name, len(res.Results), res.CachedCount(), len(res.Failed()))
	if *timing {
		var total int64
		for _, r := range res.Results {
			total += r.WallNS
			fmt.Fprintf(os.Stderr, "fleet: timing: %s %.3fms\n", r.JobID, float64(r.WallNS)/1e6)
		}
		fmt.Fprintf(os.Stderr, "fleet: timing: total %.3fms across %d job(s)\n",
			float64(total)/1e6, len(res.Results))
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if err := renderFleet(camp, res); err != nil {
		return err
	}
	if failed := res.Failed(); len(failed) > 0 {
		return partialf("fleet: %d job(s) failed: %v", len(failed), failed)
	}
	return nil
}

// renderFleet prints one row per job, with kind-specific columns.
func renderFleet(camp *atm.FleetCampaign, res *atm.FleetResult) error {
	t := &report.Table{Title: fmt.Sprintf("Fleet campaign %s", camp.Name)}
	switch camp.Jobs[0].Kind {
	case atm.FleetMonteCarlo:
		t.Header = []string{"seed", "idle-limit spread", "speed differential (MHz)", "max idle freq (MHz)"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "")
				continue
			}
			d, err := r.MonteCarlo()
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed),
				fmt.Sprintf("%d–%d", d.IdleLimitLo, d.IdleLimitHi),
				report.F(d.SpeedDiffMHz, 0), report.F(d.MaxIdleFreqMHz, 0))
		}
	case atm.FleetTune:
		t.Header = []string{"seed", "speed differential (MHz)", "min reduction", "max reduction", "quarantined"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "", "")
				continue
			}
			d, err := r.Tune()
			if err != nil {
				return err
			}
			lo, hi, quarantined := 1<<30, 0, 0
			for _, cfg := range d.Configs {
				if cfg.Reduction < lo {
					lo = cfg.Reduction
				}
				if cfg.Reduction > hi {
					hi = cfg.Reduction
				}
				if cfg.Quarantined {
					quarantined++
				}
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed), report.F(d.SpeedDiffMHz, 0),
				fmt.Sprintf("%d", lo), fmt.Sprintf("%d", hi), fmt.Sprintf("%d", quarantined))
		}
	case atm.FleetCharacterize:
		t.Header = []string{"seed", "idle limits", "thread-worst limits", "quarantined"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "")
				continue
			}
			d, err := r.Characterize()
			if err != nil {
				return err
			}
			idleLo, idleHi, worstLo, worstHi, quarantined := 1<<30, 0, 1<<30, 0, 0
			for _, row := range d.Rows {
				if row.Quarantined {
					quarantined++
					continue
				}
				if row.Idle < idleLo {
					idleLo = row.Idle
				}
				if row.Idle > idleHi {
					idleHi = row.Idle
				}
				if row.Worst < worstLo {
					worstLo = row.Worst
				}
				if row.Worst > worstHi {
					worstHi = row.Worst
				}
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed),
				fmt.Sprintf("%d–%d", idleLo, idleHi),
				fmt.Sprintf("%d–%d", worstLo, worstHi),
				fmt.Sprintf("%d", quarantined))
		}
	}
	return t.Render(os.Stdout)
}

func cmdLifetime(args []string) error {
	fs := flag.NewFlagSet("lifetime", flag.ContinueOnError)
	years := fs.Int("years", 3, "simulated horizon in years")
	seed := fs.Uint64("seed", 1, "master seed (drift, ambient, trials, re-tunes); job i uses seed+i")
	n := fs.Int("n", 1, "number of servers to age")
	silStart := fs.Uint64("silicon-start", 0, "first silicon seed (0 = paper reference server)")
	workers := fs.Int("workers", 4, "fleet worker bound (output is identical for every value)")
	sentinelOff := fs.Bool("sentinel-off", false, "disable the margin sentinel: the control arm that shows unsupervised drift")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache + checkpoint manifest directory")
	resume := fs.Bool("resume", false, "continue a killed run from its checkpoint in -cache-dir")
	jsonOut := fs.Bool("json", false, "emit the merged campaign result as JSON instead of tables")
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	// The runs are hermetic fleet jobs: cached, kill-safe, and merged in
	// canonical order, so a 3-year simulation interrupted mid-campaign
	// resumes without replaying finished servers.
	camp := &atm.FleetCampaign{Name: fmt.Sprintf("lifetime-n%d-y%d-s%d", *n, *years, *seed)}
	if *sentinelOff {
		camp.Name += "-nosentinel"
	}
	for i := 0; i < *n; i++ {
		camp.Jobs = append(camp.Jobs, atm.FleetJob{
			ID:          fmt.Sprintf("lifetime-%04d", i),
			Kind:        atm.FleetLifetime,
			SiliconSeed: *silStart + uint64(i),
			Seed:        *seed + uint64(i),
			Years:       *years,
			SentinelOff: *sentinelOff,
		})
	}

	reg, tr := attach(nil)
	res, err := atm.RunCampaign(camp, atm.FleetOptions{
		Workers:  *workers,
		CacheDir: *cacheDir,
		Resume:   *resume,
		Obs:      reg,
		Trace:    tr,
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lifetime: campaign %s: %d job(s), %d cached, %d failed\n",
		camp.Name, len(res.Results), res.CachedCount(), len(res.Failed()))

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if err := renderLifetime(res); err != nil {
		return err
	}

	unsafe, quarantined := 0, 0
	for _, r := range res.Results {
		if r.Err != "" {
			continue
		}
		d, err := r.Lifetime()
		if err != nil {
			return err
		}
		if !d.Lifetime.Safe {
			unsafe++
		}
		quarantined += d.Lifetime.Quarantines
	}
	switch failed := res.Failed(); {
	case len(failed) > 0:
		return partialf("lifetime: %d job(s) failed: %v", len(failed), failed)
	case unsafe > 0:
		return partialf("lifetime: %d server(s) UNSAFE over %d year(s)", unsafe, *years)
	case quarantined > 0:
		return partialf("lifetime: %d core(s) quarantined", quarantined)
	}
	return nil
}

// The rendered timeline shows every sentinel intervention (there are
// at most a ladder's worth per core) but caps the timing-failure
// stream, which a sentinel-off run floods; the summary counts stay
// exact either way.
const failureRows = 16

// renderLifetime prints the campaign verdict table, then each server's
// core journeys and intervention/failure timeline.
func renderLifetime(res *atm.FleetResult) error {
	sum := &report.Table{
		Title: "Lifetime drift simulation",
		Header: []string{"job", "silicon", "verdict", "trials", "failures",
			"step-backs", "retunes", "statics", "quarantined"},
	}
	details := make([]*atm.LifetimeResult, 0, len(res.Results))
	for _, r := range res.Results {
		if r.Err != "" {
			sum.AddRow(r.JobID, "", "failed: "+r.Err, "", "", "", "", "", "")
			continue
		}
		d, err := r.Lifetime()
		if err != nil {
			return err
		}
		lt := d.Lifetime
		sum.AddRow(r.JobID, fmt.Sprintf("%d", d.SiliconSeed), lt.Verdict(),
			fmt.Sprintf("%d", lt.Trials), fmt.Sprintf("%d", lt.Failures),
			fmt.Sprintf("%d", lt.StepBacks), fmt.Sprintf("%d", lt.Retunes),
			fmt.Sprintf("%d", lt.Statics), fmt.Sprintf("%d", lt.Quarantines))
		details = append(details, lt)
	}
	if err := sum.Render(os.Stdout); err != nil {
		return err
	}

	for _, lt := range details {
		cores := &report.Table{
			Title: fmt.Sprintf("Core journeys over %d year(s) (%d epochs)", lt.Years, lt.Epochs),
			Header: []string{"core", "reduction", "margin (σ)", "aging",
				"failures", "step-backs", "retunes", "state"},
		}
		for _, c := range lt.Cores {
			state := "atm"
			switch {
			case c.Quarantined:
				state = "quarantined"
			case c.Static:
				state = "static"
			}
			cores.AddRow(c.Core,
				fmt.Sprintf("%d → %d", c.StartReduction, c.EndReduction),
				fmt.Sprintf("%.2f → %.2f", c.StartMargin, c.EndMargin),
				report.Pct(c.AgeFrac), fmt.Sprintf("%d", c.Failures),
				fmt.Sprintf("%d", c.StepBacks), fmt.Sprintf("%d", c.Retunes), state)
		}
		if err := cores.Render(os.Stdout); err != nil {
			return err
		}
		if len(lt.Timeline) == 0 {
			continue
		}
		tl := &report.Table{
			Title:  "Timeline",
			Header: []string{"epoch", "day", "core", "event", "reduction", "detail"},
		}
		failShown, failSkipped := 0, 0
		for _, ev := range lt.Timeline {
			if ev.Kind == atm.LifetimeEventFailure {
				if failShown == failureRows {
					failSkipped++
					continue
				}
				failShown++
			}
			tl.AddRow(fmt.Sprintf("%d", ev.Epoch), fmt.Sprintf("%.1f", ev.Hours/24),
				ev.Core, ev.Kind, fmt.Sprintf("%d", ev.Reduction), ev.Detail)
		}
		if failSkipped > 0 || lt.TimelineTruncated {
			note := ""
			if failSkipped > 0 {
				note = fmt.Sprintf("… %d more recorded failure(s)", failSkipped)
			}
			if lt.TimelineTruncated {
				if note != "" {
					note += "; "
				}
				note += "recording capped, counts above are exact"
			}
			tl.Note = note
		}
		if err := tl.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func cmdTransient(args []string) error {
	fs := flag.NewFlagSet("transient", flag.ContinueOnError)
	chipLabel := fs.String("chip", "P0", "chip to step")
	steps := fs.Int("steps", 2000, "control intervals")
	stress := fs.Bool("stress", false, "run x264 on every core instead of idle")
	seed := fs.Uint64("seed", 1, "noise seed")
	csvPath := fs.String("csv", "", "write the full telemetry trace to this file")
	build := machineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	if *stress {
		for _, c := range m.AllCores() {
			c.SetWorkload(workload.X264)
		}
	}
	res, err := m.Transient(*chipLabel, *steps, 1.0, rng.New(*seed))
	if err != nil {
		return err
	}
	if *csvPath != "" {
		rec, err := telemetry.RecordTransient(m, *chipLabel, res)
		if err != nil {
			return err
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		if lo, err := rec.MinSupply(); err == nil {
			fmt.Printf("trace written to %s (deepest supply excursion %.1f mV)\n", *csvPath, lo.Millivolts())
		}
	}
	st, err := m.Solve()
	if err != nil {
		return err
	}
	cs, err := st.ChipState(*chipLabel)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Transient %s: %d intervals, %d margin violations", *chipLabel, *steps, res.Violations),
		Header: []string{"core", "loop mean freq (MHz)", "analytic settle (MHz)"},
	}
	for i, f := range res.MeanFreq {
		t.AddRow(cs.Cores[i].Label, report.F(float64(f), 0), report.F(float64(cs.Cores[i].Freq), 0))
	}
	return t.Render(os.Stdout)
}
