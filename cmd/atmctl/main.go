// Command atmctl drives the ATM fine-tuning library interactively:
// characterize a server, run the test-time deployment, schedule managed
// co-locations, sweep a core's CPM configuration, or watch the control
// loop's transient response.
//
// Usage:
//
//	atmctl characterize [-trials 10] [-seed 1]
//	atmctl tune [-rollback 0]
//	atmctl schedule -critical squeezenet -background lu_cb [-scenario managed-balanced] [-qos 0.10]
//	atmctl sweep -core P0C3
//	atmctl fleet -kind montecarlo -n 32 -workers 8 [-cache-dir .fleet] [-resume]
//	atmctl transient [-chip P0] [-steps 2000] [-stress]
//	atmctl status
//
// characterize, tune, schedule, sweep and fleet accept -metrics-out
// and -trace-out to export the run's deterministic metrics snapshot
// and Perfetto trace.
//
// Add -generated <seed> to any subcommand to run on Monte-Carlo silicon
// instead of the paper-calibrated reference server.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	atm "repro"
	"repro/internal/manage"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "characterize":
		err = cmdCharacterize(args)
	case "tune":
		err = cmdTune(args)
	case "schedule":
		err = cmdSchedule(args)
	case "sweep":
		err = cmdSweep(args)
	case "fleet":
		err = cmdFleet(args)
	case "transient":
		err = cmdTransient(args)
	case "status":
		err = cmdStatus(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: atmctl <characterize|tune|schedule|sweep|fleet|transient|status> [flags]
run "atmctl <subcommand> -h" for flags`)
	os.Exit(2)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	build := machineFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	st, err := m.Solve()
	if err != nil {
		return err
	}
	for _, cs := range st.Chips {
		t := &report.Table{
			Title: fmt.Sprintf("%s: %.1f W, %.3f V (drop %.1f mV), %.1f °C, in budget: %v",
				cs.Label, float64(cs.Power), float64(cs.Supply),
				cs.DCDrop.Millivolts(), float64(cs.TempC), cs.InBudget),
			Header: []string{"core", "mode", "reduction", "workload", "freq (MHz)", "power (W)"},
		}
		for _, c := range cs.Cores {
			gate := ""
			if c.Gated {
				gate = " (gated)"
			}
			t.AddRow(c.Label, c.Mode.String()+gate, fmt.Sprintf("%d", c.Reduction),
				c.Workload, report.F(float64(c.Freq), 0), report.F(float64(c.Power), 2))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// machineFlag adds the -generated flag and returns a machine builder.
func machineFlag(fs *flag.FlagSet) func() (*atm.Machine, error) {
	seed := fs.Uint64("generated", 0, "use Monte-Carlo silicon with this seed (0 = paper reference)")
	return func() (*atm.Machine, error) {
		if *seed == 0 {
			return atm.NewReferenceMachine(), nil
		}
		profile, err := atm.GenerateSilicon(*seed, atm.GenerateOptions{})
		if err != nil {
			return nil, err
		}
		return atm.NewMachine(profile)
	}
}

// faultFlag adds the -fault-profile and -fault-seed flags and returns an
// armer that installs the requested faults on a machine. The armer
// returns nil when no faults were requested, so fault-free runs take
// exactly the code path (and RNG streams) they did before this flag
// existed.
func faultFlag(fs *flag.FlagSet) func(*atm.Machine) (*atm.FaultInjector, error) {
	profile := fs.String("fault-profile", "",
		"inject deterministic faults: preset (test-floor, flaky-fsp, noisy-cpm, broken-core) or key=value list")
	seed := fs.Uint64("fault-seed", 1, "fault injection seed")
	return func(m *atm.Machine) (*atm.FaultInjector, error) {
		p, err := atm.ParseFaultProfile(*profile)
		if err != nil {
			return nil, err
		}
		if p.Empty() {
			return nil, nil
		}
		inj := atm.NewFaultInjector(p, *seed)
		inj.ArmMachine(m)
		return inj, nil
	}
}

// obsFlag adds the -metrics-out and -trace-out flags. The returned
// attach hook builds the registry/tracer (nil when the matching flag is
// unset, keeping the instrumented hot paths free) and wires fault hit
// counters; the returned flush writes the export files.
func obsFlag(fs *flag.FlagSet) (attach func(*atm.FaultInjector) (*atm.MetricsRegistry, *atm.Tracer), flush func() error) {
	metricsOut := fs.String("metrics-out", "", "write a deterministic JSON metrics snapshot to this file")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event JSON file (open in Perfetto) to this file")
	var reg *atm.MetricsRegistry
	var tr *atm.Tracer
	attach = func(inj *atm.FaultInjector) (*atm.MetricsRegistry, *atm.Tracer) {
		if *metricsOut != "" {
			reg = atm.NewMetricsRegistry()
			if inj != nil {
				inj.Observe(reg)
			}
		}
		if *traceOut != "" {
			tr = atm.NewTracer()
		}
		return reg, tr
	}
	flush = func() error {
		if reg != nil {
			if err := writeFile(*metricsOut, func(f *os.File) error { return reg.WriteJSON(f) }); err != nil {
				return err
			}
		}
		if tr != nil {
			if err := writeFile(*traceOut, func(f *os.File) error { return tr.WriteJSON(f) }); err != nil {
				return err
			}
		}
		return nil
	}
	return attach, flush
}

// writeFile creates path and streams write into it, surfacing both the
// write and close errors.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	trials := fs.Int("trials", 10, "repeated trials per (core, workload)")
	seed := fs.Uint64("seed", 1, "trial seed")
	build := machineFlag(fs)
	arm := faultFlag(fs)
	attach, flush := obsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	inj, err := arm(m)
	if err != nil {
		return err
	}
	reg, tr := attach(inj)
	rep, err := atm.Characterize(m, atm.CharactOptions{Trials: *trials, Seed: *seed, Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{
		Title:  "ATM reconfiguration limits",
		Header: []string{"core", "idle", "uBench", "thread normal", "thread worst", "idle freq (MHz)"},
	}
	if inj != nil {
		t.Header = append(t.Header, "status")
	}
	quarantined := 0
	for _, c := range rep.Cores {
		row := []string{c.Core,
			fmt.Sprintf("%d", c.Idle.Limit), fmt.Sprintf("%d", c.UBenchLimit),
			fmt.Sprintf("%d", c.ThreadNormal), fmt.Sprintf("%d", c.ThreadWorst),
			report.F(float64(c.IdleFreq), 0)}
		if inj != nil {
			status := "ok"
			if c.Quarantined {
				status = "quarantined"
				quarantined++
			}
			row = append(row, status)
		}
		t.AddRow(row...)
	}
	if inj != nil {
		t.Note = fmt.Sprintf("faults armed: %s (seed %d); %d core(s) quarantined",
			inj.Profile(), inj.Seed(), quarantined)
	}
	return t.Render(os.Stdout)
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	rollback := fs.Int("rollback", 0, "safety steps below the stress-test limit")
	build := machineFlag(fs)
	arm := faultFlag(fs)
	attach, flush := obsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	inj, err := arm(m)
	if err != nil {
		return err
	}
	reg, tr := attach(inj)
	dep, err := atm.Deploy(m, atm.DeployOptions{Rollback: *rollback, Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Test-time stress-test deployment",
		Header: []string{"core", "stress limit", "deployed reduction", "idle freq (MHz)", "loaded freq (MHz)"},
		Note:   fmt.Sprintf("inter-core speed differential: %.0f MHz", dep.SpeedDifferentialMHz()),
	}
	if inj != nil {
		t.Header = append(t.Header, "mode")
	}
	for _, cfg := range dep.Configs {
		row := []string{cfg.Core, fmt.Sprintf("%d", cfg.StressLimit), fmt.Sprintf("%d", cfg.Reduction),
			report.F(float64(cfg.IdleFreq), 0), report.F(float64(cfg.LoadedFreq), 0)}
		if inj != nil {
			mode := "ATM"
			if cfg.Quarantined {
				mode = "static (quarantined)"
			}
			row = append(row, mode)
		}
		t.AddRow(row...)
	}
	if inj != nil {
		t.Note += fmt.Sprintf("; faults armed: %s (seed %d); quarantined: %d",
			inj.Profile(), inj.Seed(), len(dep.Quarantined()))
	}
	return t.Render(os.Stdout)
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	critName := fs.String("critical", "squeezenet", "critical (latency-sensitive) workload")
	bgName := fs.String("background", "lu_cb", "background co-runner")
	scen := fs.String("scenario", "managed-balanced",
		"static-margin | default-atm | fine-tuned-unmanaged | managed-max | managed-balanced")
	qos := fs.Float64("qos", 0.10, "balanced-mode improvement target over static margin")
	governor := fs.String("governor", "default", "default | conservative | aggressive")
	build := machineFlag(fs)
	attach, flush := obsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	crit, err := atm.WorkloadByName(*critName)
	if err != nil {
		return err
	}
	bg, err := atm.WorkloadByName(*bgName)
	if err != nil {
		return err
	}
	scenario, err := manage.ScenarioByName(*scen)
	if err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	reg, tr := attach(nil)
	rep, err := atm.Characterize(m, atm.CharactOptions{Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	dep, err := atm.Deploy(m, atm.DeployOptions{Obs: reg, Trace: tr})
	if err != nil {
		return err
	}
	mgr, err := atm.NewManager(m, dep, rep)
	if err != nil {
		return err
	}
	mgr.Obs, mgr.Trace = reg, tr
	switch *governor {
	case "default":
		mgr.Governor = atm.GovernorDefault
	case "conservative":
		mgr.Governor = atm.GovernorConservative
	case "aggressive":
		mgr.Governor = atm.GovernorAggressive
	default:
		return fmt.Errorf("unknown governor %q", *governor)
	}
	ev, err := mgr.Evaluate(scenario, atm.Pair{Critical: crit, Background: bg}, *qos)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	t := &report.Table{Title: fmt.Sprintf("Schedule %s under %s", ev.Pair.Label(), ev.Scenario)}
	t.Header = []string{"metric", "value"}
	t.AddRow("critical core", ev.CriticalCore)
	t.AddRow("critical frequency", fmt.Sprintf("%.0f MHz", float64(ev.CriticalFreq)))
	t.AddRow("critical improvement", report.Pct(ev.Improvement()))
	if ev.CriticalLatencyMs > 0 {
		t.AddRow("critical latency", fmt.Sprintf("%.1f ms", ev.CriticalLatencyMs))
	}
	t.AddRow("background setting", ev.BackgroundSetting)
	t.AddRow("background performance", report.Pct(ev.BackgroundPerf-1))
	t.AddRow("chip power", fmt.Sprintf("%.1f W", float64(ev.ChipPower)))
	t.AddRow("supply", fmt.Sprintf("%.3f V", float64(ev.Supply)))
	if ev.QoSTarget > 0 {
		t.AddRow("power budget", fmt.Sprintf("%.1f W", float64(ev.PowerBudget)))
		t.AddRow("meets QoS", fmt.Sprintf("%v (target %s)", ev.MeetsQoS, report.Pct(ev.QoSTarget)))
	}
	return t.Render(os.Stdout)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	label := fs.String("core", "P0C3", "core to sweep")
	build := machineFlag(fs)
	attach, flush := obsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	core, err := m.Core(*label)
	if err != nil {
		return err
	}
	reg, tr := attach(nil)
	st, err := m.Solve()
	if err != nil {
		return err
	}
	cs, err := st.ChipState((*label)[:2])
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Frequency vs CPM delay reduction — %s (idle supply %.3f V)", *label, float64(cs.Supply)),
		Header: []string{"reduction", "settled freq (MHz)", "guard (ps)"},
	}
	rows := reg.Counter("atmctl_sweep_rows_total", "core", *label)
	sp := tr.Begin("sweep", "reduction-sweep", *label)
	for r := 0; r <= core.Profile.MaxReduction(); r++ {
		f, err := core.Profile.SettledFreq(r, cs.Supply)
		if err != nil {
			return err
		}
		g, err := core.Profile.GuardPs(r)
		if err != nil {
			return err
		}
		rows.Inc()
		t.AddRow(fmt.Sprintf("%d", r), report.F(float64(f), 0), report.F(float64(g), 1))
	}
	sp.Arg("core", *label).End()
	if err := flush(); err != nil {
		return err
	}
	return t.Render(os.Stdout)
}

func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	kind := fs.String("kind", "montecarlo", "campaign kind: montecarlo | characterize | tune")
	n := fs.Int("n", 8, "number of jobs (generated servers)")
	workers := fs.Int("workers", 4, "worker pool bound (output is identical for every value)")
	start := fs.Uint64("seed", 1, "first silicon seed of the sweep")
	trials := fs.Int("trials", 0, "characterize: trials per (core, workload); 0 = default")
	rollback := fs.Int("rollback", 0, "tune: safety steps below the stress-test limit")
	faultProfile := fs.String("fault-profile", "",
		"characterize/tune: arm this fault profile on every job (per-job seeds are independent rng splits)")
	faultSeed := fs.Uint64("fault-seed", 1, "base fault seed the per-job streams split from")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache + checkpoint manifest directory")
	resume := fs.Bool("resume", false, "continue a killed campaign from its checkpoint in -cache-dir")
	panicRetries := fs.Int("panic-retries", 0,
		"re-attempts before a panicking job is quarantined as poisoned (0 = default 1, negative = none)")
	trialBudget := fs.Int64("trial-budget", 0,
		"watchdog: per-job trial budget before the job is failed as stuck (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the merged campaign result as JSON instead of a table")
	attach, flush := obsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var camp *atm.FleetCampaign
	switch *kind {
	case "montecarlo":
		if *faultProfile != "" {
			return errors.New("fleet: -fault-profile applies to characterize and tune campaigns")
		}
		camp = atm.MonteCarloCampaign(*n, *start)
	case "characterize":
		camp = atm.CharacterizeCampaign(*n, *start, *trials, *faultProfile, *faultSeed)
	case "tune":
		camp = atm.TuneCampaign(*n, *start, *rollback, *faultProfile, *faultSeed)
	default:
		return fmt.Errorf("fleet: unknown kind %q", *kind)
	}

	reg, tr := attach(nil)
	res, err := atm.RunCampaign(camp, atm.FleetOptions{
		Workers:      *workers,
		CacheDir:     *cacheDir,
		Resume:       *resume,
		PanicRetries: *panicRetries,
		TrialBudget:  *trialBudget,
		Obs:          reg,
		Trace:        tr,
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// Provenance goes to stderr: stdout carries only the canonical
	// merged view, so it byte-matches across worker counts, cache
	// hits, and resumed runs.
	fmt.Fprintf(os.Stderr, "fleet: campaign %s: %d job(s), %d cached, %d failed\n",
		camp.Name, len(res.Results), res.CachedCount(), len(res.Failed()))

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if err := renderFleet(camp, res); err != nil {
		return err
	}
	if failed := res.Failed(); len(failed) > 0 {
		return fmt.Errorf("fleet: %d job(s) failed: %v", len(failed), failed)
	}
	return nil
}

// renderFleet prints one row per job, with kind-specific columns.
func renderFleet(camp *atm.FleetCampaign, res *atm.FleetResult) error {
	t := &report.Table{Title: fmt.Sprintf("Fleet campaign %s", camp.Name)}
	switch camp.Jobs[0].Kind {
	case atm.FleetMonteCarlo:
		t.Header = []string{"seed", "idle-limit spread", "speed differential (MHz)", "max idle freq (MHz)"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "")
				continue
			}
			d, err := r.MonteCarlo()
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed),
				fmt.Sprintf("%d–%d", d.IdleLimitLo, d.IdleLimitHi),
				report.F(d.SpeedDiffMHz, 0), report.F(d.MaxIdleFreqMHz, 0))
		}
	case atm.FleetTune:
		t.Header = []string{"seed", "speed differential (MHz)", "min reduction", "max reduction", "quarantined"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "", "")
				continue
			}
			d, err := r.Tune()
			if err != nil {
				return err
			}
			lo, hi, quarantined := 1<<30, 0, 0
			for _, cfg := range d.Configs {
				if cfg.Reduction < lo {
					lo = cfg.Reduction
				}
				if cfg.Reduction > hi {
					hi = cfg.Reduction
				}
				if cfg.Quarantined {
					quarantined++
				}
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed), report.F(d.SpeedDiffMHz, 0),
				fmt.Sprintf("%d", lo), fmt.Sprintf("%d", hi), fmt.Sprintf("%d", quarantined))
		}
	case atm.FleetCharacterize:
		t.Header = []string{"seed", "idle limits", "thread-worst limits", "quarantined"}
		for _, r := range res.Results {
			if r.Err != "" {
				t.AddRow(r.JobID, "failed", r.Err, "")
				continue
			}
			d, err := r.Characterize()
			if err != nil {
				return err
			}
			idleLo, idleHi, worstLo, worstHi, quarantined := 1<<30, 0, 1<<30, 0, 0
			for _, row := range d.Rows {
				if row.Quarantined {
					quarantined++
					continue
				}
				if row.Idle < idleLo {
					idleLo = row.Idle
				}
				if row.Idle > idleHi {
					idleHi = row.Idle
				}
				if row.Worst < worstLo {
					worstLo = row.Worst
				}
				if row.Worst > worstHi {
					worstHi = row.Worst
				}
			}
			t.AddRow(fmt.Sprintf("%d", d.SiliconSeed),
				fmt.Sprintf("%d–%d", idleLo, idleHi),
				fmt.Sprintf("%d–%d", worstLo, worstHi),
				fmt.Sprintf("%d", quarantined))
		}
	}
	return t.Render(os.Stdout)
}

func cmdTransient(args []string) error {
	fs := flag.NewFlagSet("transient", flag.ExitOnError)
	chipLabel := fs.String("chip", "P0", "chip to step")
	steps := fs.Int("steps", 2000, "control intervals")
	stress := fs.Bool("stress", false, "run x264 on every core instead of idle")
	seed := fs.Uint64("seed", 1, "noise seed")
	csvPath := fs.String("csv", "", "write the full telemetry trace to this file")
	build := machineFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	if *stress {
		for _, c := range m.AllCores() {
			c.SetWorkload(workload.X264)
		}
	}
	res, err := m.Transient(*chipLabel, *steps, 1.0, rng.New(*seed))
	if err != nil {
		return err
	}
	if *csvPath != "" {
		rec, err := telemetry.RecordTransient(m, *chipLabel, res)
		if err != nil {
			return err
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		if lo, err := rec.MinSupply(); err == nil {
			fmt.Printf("trace written to %s (deepest supply excursion %.1f mV)\n", *csvPath, lo.Millivolts())
		}
	}
	st, err := m.Solve()
	if err != nil {
		return err
	}
	cs, err := st.ChipState(*chipLabel)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Transient %s: %d intervals, %d margin violations", *chipLabel, *steps, res.Violations),
		Header: []string{"core", "loop mean freq (MHz)", "analytic settle (MHz)"},
	}
	for i, f := range res.MeanFreq {
		t.AddRow(cs.Cores[i].Label, report.F(float64(f), 0), report.F(float64(cs.Cores[i].Freq), 0))
	}
	return t.Render(os.Stdout)
}
