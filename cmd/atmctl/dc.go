package main

import (
	"flag"
	"fmt"
	"os"

	atm "repro"
	"repro/internal/report"
)

// cmdDC runs a rack-scale datacenter campaign: every node provisioned
// through the fleet (sharded across -workers, content-addressed cache,
// kill-safe -resume), then the hierarchical power budget and the Eq. 1
// predictor-driven scheduler simulated over a seeded tenant stream.
// Stdout carries only the canonical view — the human table or the
// -json document — byte-identical across worker counts; provenance
// (cache hits, campaign name) goes to stderr. With -ops-fault-profile
// the sim additionally absorbs a seeded operational fault timeline
// (chip deaths, link flaps, brownouts, thermals) and reports the
// recovery/availability summary with a SAFE/UNSAFE verdict. Exit 3
// when any chip ends intake-quarantined, any budget cap is violated,
// any intake job failed, or the ops verdict is UNSAFE (a displaced
// tenant was never re-placed).
func cmdDC(args []string) error {
	fs := flag.NewFlagSet("dc", flag.ContinueOnError)
	racks := fs.Int("racks", 2, "rack count")
	chassis := fs.Int("chassis", 4, "chassis per rack")
	chipsPer := fs.Int("chips-per-chassis", 8, "chips (single-chip nodes) per chassis")
	workers := fs.Int("workers", 4, "intake worker pool bound (output is identical for every value)")
	seed := fs.Uint64("seed", 1, "campaign seed: tenant stream and per-node trial seeds")
	siliconStart := fs.Uint64("silicon-start", 1, "first node's silicon seed (node i uses silicon-start+i)")
	tenants := fs.Int("tenants", 0, "tenant workload count (0 = 2 per chip)")
	ticks := fs.Int("ticks", 0, "operation horizon in ticks (0 = 32)")
	rollback := fs.Int("rollback", 0, "intake deployment safety steps below the stress-test limit")
	rackCap := fs.Float64("rack-cap", 0, "rack PDU cap in watts (0 = derive from the provisioned envelope)")
	chassisCap := fs.Float64("chassis-cap", 0, "chassis cap in watts (0 = derive)")
	chipCap := fs.Float64("chip-cap", 0, "chip cap in watts (0 = derive)")
	ki := fs.Float64("ki", 0, "per-chip integral gain of the budget controller (0 = 0.5)")
	faultProfile := fs.String("fault-profile", "",
		"arm this fault profile on every node (per-node seeds are independent rng splits)")
	faultSeed := fs.Uint64("fault-seed", 1, "base fault seed the per-node streams split from")
	opsProfile := fs.String("ops-fault-profile", "",
		"operational fault timeline for the post-intake sim: a preset (ops-storm, chip-death, flaky-links, brownout, rack-brownout, thermal, none) or key=value spec")
	opsSeed := fs.Uint64("ops-fault-seed", 1, "seed the per-entity operational fault streams split from")
	cacheDir := fs.String("cache-dir", "", "content-addressed provision cache + checkpoint manifest directory")
	resume := fs.Bool("resume", false, "continue a killed campaign from its checkpoint in -cache-dir")
	jsonOut := fs.Bool("json", false, "emit the canonical campaign result as JSON instead of tables")
	attach, flush := obsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	reg, tr := attach(nil)
	res, err := atm.RunDatacenter(atm.DCOptions{
		Racks:           *racks,
		ChassisPerRack:  *chassis,
		ChipsPerChassis: *chipsPer,
		Workers:         *workers,
		Seed:            *seed,
		SiliconStart:    *siliconStart,
		Tenants:         *tenants,
		Ticks:           *ticks,
		Rollback:        *rollback,
		RackCapW:        *rackCap,
		ChassisCapW:     *chassisCap,
		ChipCapW:        *chipCap,
		KI:              *ki,
		FaultProfile:    *faultProfile,
		FaultSeed:       *faultSeed,
		OpsFaultProfile: *opsProfile,
		OpsFaultSeed:    *opsSeed,
		CacheDir:        *cacheDir,
		Resume:          *resume,
		Obs:             reg,
		Trace:           tr,
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// Provenance to stderr; stdout stays canonical.
	fmt.Fprintf(os.Stderr, "dc: campaign %s: %d node(s), %d cached, %d failed\n",
		res.CampaignHash[:12], len(res.Chips), res.CachedJobs, len(res.FailedJobs))

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if err := renderDC(res); err != nil {
		return err
	}

	quarantined := res.QuarantinedChips()
	switch {
	case len(res.FailedJobs) > 0 || quarantined > 0:
		return partialf("dc: %d chip(s) quarantined (%d intake failure(s)); %d budget violation(s)",
			quarantined, len(res.FailedJobs), res.Budget.Violations)
	case res.Ops != nil && !res.Ops.Safe:
		return partialf("dc: ops verdict UNSAFE — %d tenant(s) shed after displacement, %d budget violation(s)",
			res.Ops.Shed, res.Budget.Violations)
	case res.Budget.Violations > 0:
		return partialf("dc: %d budget violation(s) across %d tick(s)",
			res.Budget.Violations, res.Topology.Ticks)
	}
	return nil
}

// renderDC prints the per-node intake table and the budget/placement
// summary.
func renderDC(res *atm.DCResult) error {
	t := &report.Table{
		Title: fmt.Sprintf("Datacenter campaign: %d×%d×%d = %d chips, %d tenants over %d ticks",
			res.Topology.Racks, res.Topology.ChassisPerRack, res.Topology.ChipsPerChassis,
			res.Topology.Chips, res.Topology.Tenants, res.Topology.Ticks),
		Header: []string{"node", "silicon", "idle (W)", "loaded (W)", "speed diff (MHz)", "status"},
	}
	for _, c := range res.Chips {
		status := "ok"
		switch {
		case c.Err != "":
			status = "quarantined: " + c.Err
		case c.Quarantined:
			status = "quarantined"
		case c.QuarantinedCores > 0:
			status = fmt.Sprintf("%d core(s) quarantined", c.QuarantinedCores)
		}
		t.AddRow(c.Node, fmt.Sprintf("%d", c.SiliconSeed),
			report.F(c.IdleW, 1), report.F(c.LoadedW, 1),
			report.F(c.SpeedDiffMHz, 0), status)
	}
	t.Note = fmt.Sprintf(
		"caps rack %.0f W / chassis %.0f W / chip %.0f W (ki %.2f); peaks %.1f / %.1f / %.1f W; "+
			"%d violation(s), %d throttle(s), %d resume(s)\n"+
			"placement: %d placed, %d completed, %d unplaced, %d deferral(s), %d breaker rejection(s)",
		res.Budget.RackCapW, res.Budget.ChassisCapW, res.Budget.ChipCapW, res.Budget.KI,
		res.Budget.PeakRackW, res.Budget.PeakChassisW, res.Budget.PeakChipW,
		res.Budget.Violations, res.Budget.ThrottleEvents, res.Budget.ResumeEvents,
		res.Placement.Placed, res.Placement.Completed, res.Placement.Unplaced,
		res.Placement.Deferrals, res.Placement.BreakerRejected)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if res.Ops == nil {
		return nil
	}
	return renderDCOps(res)
}

// renderDCOps prints the operational event/recovery timeline and the
// availability summary with its SAFE/UNSAFE verdict.
func renderDCOps(res *atm.DCResult) error {
	ops := res.Ops
	t := &report.Table{
		Title:  fmt.Sprintf("Operational faults: profile %s (seed %d)", ops.Profile, ops.Seed),
		Header: []string{"tick", "event", "target", "detail"},
	}
	for _, ev := range res.Events {
		detail := ev.Detail
		if ev.CapW != 0 {
			detail = fmt.Sprintf("cap %.1f W", ev.CapW)
			if ev.Detail != "" {
				detail += "; " + ev.Detail
			}
		}
		t.AddRow(fmt.Sprintf("%d", ev.Tick), ev.Kind, ev.Node, detail)
	}
	t.Note = fmt.Sprintf(
		"events: %d chip death(s), %d link flap(s), %d brownout(s), %d thermal(s); "+
			"ladder: %d quarantine(s), %d readmit(s), MTTR %.1f tick(s)\n"+
			"tenants: %d evacuation(s), %d migration(s), %d recovered, %d shed, %d tenant-tick(s) lost\n"+
			"verdict: %s",
		ops.ChipDeaths, ops.LinkFlaps, ops.Brownouts, ops.Thermals,
		ops.Quarantines, ops.Readmits, ops.MTTRTicks,
		ops.Evacuations, ops.Migrations, ops.Recovered, ops.Shed, ops.TenantTicksLost,
		ops.Verdict())
	return t.Render(os.Stdout)
}
