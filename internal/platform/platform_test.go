package platform

import (
	"testing"

	"repro/internal/silicon"
	"repro/internal/tuning"
)

func TestBuildReference(t *testing.T) {
	srv, err := Build(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Injector != nil {
		t.Fatal("fault-free spec built an injector")
	}
	ref := silicon.Reference()
	if got, want := len(srv.Profile.Chips), len(ref.Chips); got != want {
		t.Fatalf("reference server has %d chips, want %d", got, want)
	}
	if got, want := len(srv.Machine.AllCores()), 16; got != want {
		t.Fatalf("reference machine has %d cores, want %d", got, want)
	}
}

func TestBuildGeneratedMatchesDirectGenerate(t *testing.T) {
	srv, err := Build(Spec{SiliconSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := silicon.Generate(42, silicon.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(srv.Profile.Chips), len(direct.Chips); got != want {
		t.Fatalf("built %d chips, generator made %d", got, want)
	}
	for i := range direct.Chips {
		if srv.Profile.Chips[i].Label != direct.Chips[i].Label {
			t.Fatalf("chip %d label %q, want %q", i, srv.Profile.Chips[i].Label, direct.Chips[i].Label)
		}
	}
}

func TestBuildSingleChipOverride(t *testing.T) {
	srv, err := Build(Spec{SiliconSeed: 7, Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Profile.Chips); got != 1 {
		t.Fatalf("built %d chips, want 1", got)
	}
	if got := len(srv.Machine.AllCores()); got != 8 {
		t.Fatalf("single-chip machine has %d cores, want 8", got)
	}
}

func TestBuildOverridesRequireSeed(t *testing.T) {
	if _, err := Build(Spec{Chips: 1}); err == nil {
		t.Fatal("chip override on the reference profile did not error")
	}
	if _, err := Build(Spec{CoresPerChip: 4}); err == nil {
		t.Fatal("core override on the reference profile did not error")
	}
}

func TestBuildArmsFaults(t *testing.T) {
	srv, err := Build(Spec{SiliconSeed: 3, FaultProfile: "test-floor", FaultSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Injector == nil {
		t.Fatal("faulted spec built no injector")
	}
	// "none" and the empty profile stay on the fault-free path.
	for _, p := range []string{"", "none"} {
		srv, err := Build(Spec{SiliconSeed: 3, FaultProfile: p})
		if err != nil {
			t.Fatal(err)
		}
		if srv.Injector != nil {
			t.Fatalf("profile %q built an injector", p)
		}
	}
	if _, err := Build(Spec{FaultProfile: "no-such-profile"}); err == nil {
		t.Fatal("bad fault profile did not error")
	}
}

func TestProvisionServer(t *testing.T) {
	srv, err := Build(Spec{SiliconSeed: 11, Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	prov, err := ProvisionServer(srv, ProvisionOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prov.Chips); got != 1 {
		t.Fatalf("provisioned %d chips, want 1", got)
	}
	cp := prov.Chips[0]
	if cp.LoadedW <= cp.IdleW || cp.IdleW <= 0 {
		t.Fatalf("power envelope not ordered: idle %v loaded %v", cp.IdleW, cp.LoadedW)
	}
	if got := len(cp.Cores); got != 8 {
		t.Fatalf("chip has %d core records, want 8", got)
	}
	for _, c := range cp.Cores {
		if c.Quarantined {
			if c.FreqSlope != 0 || c.FreqIntercept != 0 {
				t.Fatalf("core %s: quarantined but carries a predictor fit", c.Core)
			}
			continue
		}
		// Eq. 1: frequency falls as chip power rises, from a positive
		// intercept.
		if c.FreqSlope >= 0 {
			t.Fatalf("core %s: Eq. 1 slope %v not negative", c.Core, c.FreqSlope)
		}
		if c.FreqIntercept <= 0 {
			t.Fatalf("core %s: Eq. 1 intercept %v not positive", c.Core, c.FreqIntercept)
		}
	}
	// The provision must match a direct quick deployment on an
	// identical server — platform adds calibration, not new behavior.
	srv2, err := Build(Spec{SiliconSeed: 11, Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tuning.Deploy(srv2.Machine, tuning.Options{Seed: 11, Passes: 1, RunsPerConfig: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range dep.Configs {
		rec := cp.Cores[i]
		if cfg.Core != rec.Core || cfg.StressLimit != rec.StressLimit ||
			float64(cfg.IdleFreq) != rec.IdleFreqMHz || cfg.Quarantined != rec.Quarantined {
			t.Fatalf("core %s: provision diverged from direct deployment: %+v vs %+v", cfg.Core, rec, cfg)
		}
	}
}

func TestProvisionDeterministic(t *testing.T) {
	run := func() *Provision {
		srv, err := Build(Spec{SiliconSeed: 5, Chips: 1, FaultProfile: "broken=1", FaultSeed: 2})
		if err != nil {
			t.Fatal(err)
		}
		prov, err := ProvisionServer(srv, ProvisionOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return prov
	}
	a, b := run(), run()
	if a.SpeedDiffMHz != b.SpeedDiffMHz || a.QuarantinedCores() != b.QuarantinedCores() {
		t.Fatal("provision diverged between identical runs")
	}
	for i := range a.Chips {
		if a.Chips[i].IdleW != b.Chips[i].IdleW || a.Chips[i].LoadedW != b.Chips[i].LoadedW {
			t.Fatalf("chip %d envelope diverged", i)
		}
		for j := range a.Chips[i].Cores {
			if a.Chips[i].Cores[j] != b.Chips[i].Cores[j] {
				t.Fatalf("chip %d core %d record diverged", i, j)
			}
		}
	}
}

// TestProvisionView covers the re-admission rebuild hook: the
// projection the dc recovery ladder re-materializes a node from.
func TestProvisionView(t *testing.T) {
	p := &Provision{Chips: []ChipProvision{{
		Chip: "chip0", IdleW: 50, LoadedW: 130,
		Cores: []CoreProvision{
			{Core: "C0", FreqSlope: -2.5, FreqIntercept: 4000},
			{Core: "C1", Quarantined: true},
		},
	}}}
	v, err := p.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.IdleW != 50 || v.SpanW != 40 || !v.Live || len(v.Cores) != 2 {
		t.Fatalf("view = %+v, want idle 50, span (130-50)/2 = 40, live, 2 cores", v)
	}
	if v.Cores[0].Quarantined || v.Cores[0].Slope != -2.5 || v.Cores[0].Intercept != 4000 {
		t.Fatalf("core 0 view = %+v", v.Cores[0])
	}
	if !v.Cores[1].Quarantined {
		t.Fatal("core 1 lost its quarantine flag")
	}

	// All cores quarantined: the node is not live.
	dead := &Provision{Chips: []ChipProvision{{
		Chip: "chip0", IdleW: 50, LoadedW: 50,
		Cores: []CoreProvision{{Core: "C0", Quarantined: true}},
	}}}
	if v, err := dead.View(); err != nil || v.Live {
		t.Fatalf("all-quarantined view = (%+v, %v), want dead but valid", v, err)
	}

	// Validation failures: wrong chip count, inverted envelope.
	if _, err := (&Provision{}).View(); err == nil {
		t.Fatal("chipless provision accepted")
	}
	twoChips := &Provision{Chips: make([]ChipProvision, 2)}
	if _, err := twoChips.View(); err == nil {
		t.Fatal("multi-chip provision accepted as a single-chip node")
	}
	inverted := &Provision{Chips: []ChipProvision{{Chip: "chip0", IdleW: 90, LoadedW: 50}}}
	if _, err := inverted.View(); err == nil {
		t.Fatal("inverted power envelope accepted")
	}
}
