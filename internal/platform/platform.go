// Package platform is the one place a simulated POWER server is
// assembled: silicon profile (paper-calibrated reference or Monte-Carlo
// generated), chip.Machine, and optional deterministic fault injection.
// charact, tuning, fleet, dc and the CLIs used to re-assemble this
// recipe independently; they now all build through Spec/Build, so a
// job spec, a CLI flag set and a datacenter node materialize the same
// server byte for byte.
//
// The package is in atmlint's detrand scope: a Server is a pure
// function of its Spec, with no wall clock or ambient randomness
// anywhere in the recipe.
package platform

import (
	"errors"
	"fmt"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/manage"
	"repro/internal/silicon"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

// Spec names a server completely: identical specs build identical
// servers. The zero value is the paper-calibrated fault-free reference
// machine. Field order and omitempty tags are part of the fleet job
// hash contract — change them only with a specVersion bump there.
type Spec struct {
	// SiliconSeed manufactures the server from the Monte-Carlo process
	// model; 0 builds the paper-calibrated reference profile.
	SiliconSeed uint64 `json:"silicon_seed,omitempty"`
	// Chips overrides the generated server's processor count (0 = the
	// generator default of 2). Requires a non-zero SiliconSeed: the
	// reference profile is pinned to the paper's two chips.
	Chips int `json:"chips,omitempty"`
	// CoresPerChip overrides the generated per-chip core count
	// (0 = the generator default of 8). Requires a non-zero SiliconSeed.
	CoresPerChip int `json:"cores_per_chip,omitempty"`
	// FaultProfile, when non-empty, arms deterministic fault injection
	// (a fault.ParseProfile spec).
	FaultProfile string `json:"fault_profile,omitempty"`
	// FaultSeed seeds the fault streams (0 = 1, the injector default).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
}

// Server is one materialized machine with its provenance.
type Server struct {
	Spec    Spec
	Profile *silicon.ServerProfile
	Machine *chip.Machine
	// Injector is non-nil exactly when the spec armed a non-empty
	// fault profile; fault-free servers take the same code path (and
	// RNG streams) they did before fault injection existed.
	Injector *fault.Injector
}

// Build materializes the spec: silicon, machine, faults.
func Build(spec Spec) (*Server, error) {
	profile := silicon.Reference()
	if spec.SiliconSeed != 0 {
		var err error
		profile, err = silicon.Generate(spec.SiliconSeed, silicon.GenerateOptions{
			Chips:        spec.Chips,
			CoresPerChip: spec.CoresPerChip,
		})
		if err != nil {
			return nil, err
		}
	} else if spec.Chips != 0 || spec.CoresPerChip != 0 {
		return nil, errors.New("platform: chip/core count overrides require a non-zero silicon seed")
	}
	m, err := chip.New(profile, chip.Options{})
	if err != nil {
		return nil, err
	}
	inj, err := Arm(m, spec.FaultProfile, spec.FaultSeed)
	if err != nil {
		return nil, err
	}
	return &Server{Spec: spec, Profile: profile, Machine: m, Injector: inj}, nil
}

// Arm installs a fault profile on a machine: nil injector for an empty
// spec (fault-free runs keep their exact pre-fault code path), seed 0
// normalized to the injector default of 1.
func Arm(m *chip.Machine, profileSpec string, seed uint64) (*fault.Injector, error) {
	if profileSpec == "" {
		return nil, nil
	}
	p, err := fault.ParseProfile(profileSpec)
	if err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	if seed == 0 {
		seed = 1
	}
	inj := fault.New(p, seed)
	inj.ArmMachine(m)
	return inj, nil
}

// ProvisionOptions tunes the datacenter intake pass.
type ProvisionOptions struct {
	// Seed drives the stress-test trials (0 = the tuning default).
	Seed uint64
	// Rollback is the tuning safety margin.
	Rollback int
	// Passes is the stress-battery repeat count. Default 1 — the
	// dc-scale quick pass; full manufacturing flow uses tuning's
	// default of 3.
	Passes int
	// RunsPerConfig is the clean-run bar per configuration. Default 2
	// (tuning's own default is 4) — again the dc-scale quick pass.
	RunsPerConfig int
}

// CoreProvision is one core's datacenter-intake record: its deployed
// fine-tuned configuration plus the fitted Eq. 1 frequency predictor
// the global scheduler indexes by chip power.
type CoreProvision struct {
	Core          string  `json:"core"`
	StressLimit   int     `json:"stress_limit"`
	Reduction     int     `json:"reduction"`
	IdleFreqMHz   float64 `json:"idle_freq_mhz"`
	LoadedFreqMHz float64 `json:"loaded_freq_mhz"`
	Quarantined   bool    `json:"quarantined,omitempty"`
	// FreqSlope/FreqIntercept are the core's Eq. 1 fit
	// (f ≈ FreqSlope·P + FreqIntercept, slope negative): zero for
	// quarantined cores, which the scheduler never places work on.
	FreqSlope     float64 `json:"freq_slope"`
	FreqIntercept float64 `json:"freq_intercept"`
}

// ChipProvision is one chip's intake record: the per-core
// configurations plus the measured power envelope the hierarchical
// budget loop plans against.
type ChipProvision struct {
	Chip string `json:"chip"`
	// IdleW/LoadedW bound the chip's power draw: every core idle vs
	// every core running daxpy (the highest-power kernel) at the
	// deployed configuration.
	IdleW   float64         `json:"idle_w"`
	LoadedW float64         `json:"loaded_w"`
	Cores   []CoreProvision `json:"cores"`
}

// Provision is a server's full datacenter-intake record.
type Provision struct {
	SiliconSeed  uint64          `json:"silicon_seed"`
	SpeedDiffMHz float64         `json:"speed_diff_mhz"`
	Chips        []ChipProvision `json:"chips"`
}

// CoreView is one schedulable core as a consumer sees it: label,
// intake quarantine flag, and the Eq. 1 frequency fit.
type CoreView struct {
	Label       string
	Quarantined bool
	Slope       float64
	Intercept   float64
}

// NodeView is a single-chip node's validated scheduling view: the
// power envelope (idle floor, per-core idle→loaded span) and per-core
// fits. Live is false when every core is quarantined.
type NodeView struct {
	IdleW float64
	SpanW float64
	Live  bool
	Cores []CoreView
}

// View validates the provision as a single-chip datacenter node and
// projects it into the scheduler's shape. It is the re-admission
// rebuild hook: the dc recovery ladder re-materializes a quarantined
// node's placement state from this immutable intake record once its
// telemetry link returns, instead of re-running the (expensive,
// already cached) provision flow.
func (p *Provision) View() (NodeView, error) {
	if len(p.Chips) != 1 {
		return NodeView{}, fmt.Errorf("platform: provision has %d chips, want 1", len(p.Chips))
	}
	cp := p.Chips[0]
	if cp.LoadedW < cp.IdleW {
		return NodeView{}, fmt.Errorf("platform: chip %s envelope inverted (idle %.2f W > loaded %.2f W)", cp.Chip, cp.IdleW, cp.LoadedW)
	}
	v := NodeView{IdleW: cp.IdleW}
	if n := len(cp.Cores); n > 0 {
		v.SpanW = (cp.LoadedW - cp.IdleW) / float64(n)
	}
	for _, core := range cp.Cores {
		v.Cores = append(v.Cores, CoreView{
			Label:       core.Core,
			Quarantined: core.Quarantined,
			Slope:       core.FreqSlope,
			Intercept:   core.FreqIntercept,
		})
		if !core.Quarantined {
			v.Live = true
		}
	}
	return v, nil
}

// QuarantinedCores counts quarantined cores across the server.
func (p *Provision) QuarantinedCores() int {
	n := 0
	for _, ch := range p.Chips {
		for _, c := range ch.Cores {
			if c.Quarantined {
				n++
			}
		}
	}
	return n
}

// ProvisionServer runs the datacenter intake pass on a built server:
// stress-test deployment (tuning.Deploy), then per-core Eq. 1
// frequency-predictor calibration and the idle/loaded power envelope
// per chip. The result is a pure function of (server spec, options) —
// exactly what the fleet's dcprovision job kind caches and what the
// dc scheduler and budget hierarchy consume.
func ProvisionServer(srv *Server, o ProvisionOptions) (*Provision, error) {
	if o.Passes == 0 {
		o.Passes = 1
	}
	if o.RunsPerConfig == 0 {
		o.RunsPerConfig = 2
	}
	m := srv.Machine
	dep, err := tuning.Deploy(m, tuning.Options{
		Seed:          o.Seed,
		Rollback:      o.Rollback,
		Passes:        o.Passes,
		RunsPerConfig: o.RunsPerConfig,
	})
	if err != nil {
		return nil, err
	}
	cfgByCore := make(map[string]tuning.CoreConfig, len(dep.Configs))
	for _, cfg := range dep.Configs {
		cfgByCore[cfg.Core] = cfg
	}

	out := &Provision{SiliconSeed: srv.Spec.SiliconSeed, SpeedDiffMHz: dep.SpeedDifferentialMHz()}
	for _, chp := range m.Chips {
		cp := ChipProvision{Chip: chp.Profile.Label}
		idleW, loadedW, err := chipEnvelope(m, chp)
		if err != nil {
			return nil, err
		}
		cp.IdleW, cp.LoadedW = idleW, loadedW
		for _, core := range chp.Cores {
			cfg, ok := cfgByCore[core.Profile.Label]
			if !ok {
				return nil, fmt.Errorf("platform: deployment has no config for core %s", core.Profile.Label)
			}
			rec := CoreProvision{
				Core:          cfg.Core,
				StressLimit:   cfg.StressLimit,
				Reduction:     cfg.Reduction,
				IdleFreqMHz:   float64(cfg.IdleFreq),
				LoadedFreqMHz: float64(cfg.LoadedFreq),
				Quarantined:   cfg.Quarantined,
			}
			if !cfg.Quarantined {
				fp, err := manage.CalibrateFreqPredictor(m, cfg.Core)
				if err != nil {
					return nil, err
				}
				rec.FreqSlope, rec.FreqIntercept = fp.Fit.Slope, fp.Fit.Intercept
			}
			cp.Cores = append(cp.Cores, rec)
		}
		out.Chips = append(out.Chips, cp)
	}
	return out, nil
}

// chipEnvelope measures a chip's idle and all-cores-daxpy steady-state
// power at the deployed configuration, restoring the previous workload
// assignment afterwards.
func chipEnvelope(m *chip.Machine, ch *chip.Chip) (idleW, loadedW float64, err error) {
	before := make([]workload.Profile, len(ch.Cores))
	for i, c := range ch.Cores {
		before[i] = c.Workload()
	}
	defer func() {
		for i, c := range ch.Cores {
			c.SetWorkload(before[i])
		}
	}()
	measure := func(w workload.Profile) (units.Watt, error) {
		for _, c := range ch.Cores {
			c.SetWorkload(w)
		}
		st, err := m.Solve()
		if err != nil {
			return 0, err
		}
		cs, err := st.ChipState(ch.Profile.Label)
		if err != nil {
			return 0, err
		}
		return cs.Power, nil
	}
	idle, err := measure(workload.Idle)
	if err != nil {
		return 0, 0, err
	}
	loaded, err := measure(workload.Daxpy)
	if err != nil {
		return 0, 0, err
	}
	return float64(idle), float64(loaded), nil
}
