package lifetime

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/silicon"
)

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestRunIsDeterministic pins the replay contract: the Result is a pure
// function of (profile, Options), byte-identical across runs. The fleet
// cache, the CI two-run identity gate, and kill-safe resume all stand
// on this.
func TestRunIsDeterministic(t *testing.T) {
	opts := Options{Years: 3, Seed: 1}
	a, err := Run(silicon.Reference(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(silicon.Reference(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different results:\n%s\n%s", ja, jb)
	}

	// A different seed must explore a different trajectory — otherwise
	// the determinism above is vacuous.
	c, err := Run(silicon.Reference(), Options{Years: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, mustJSON(t, c)) {
		t.Fatal("seeds 1 and 2 produced identical results")
	}
}

// TestSentinelKeepsFineTunedChipSafe is the headline invariant: three
// simulated years of drift on a fine-tuned reference chip complete
// with zero timing failures when the sentinel is watching.
func TestSentinelKeepsFineTunedChipSafe(t *testing.T) {
	res, err := Run(silicon.Reference(), Options{Years: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe || res.Failures != 0 {
		t.Fatalf("verdict %s with %d failures, want SAFE with 0", res.Verdict(), res.Failures)
	}
	if res.StepBacks == 0 {
		t.Fatal("no step-backs over 3 years: drift is not exercising the sentinel")
	}
	if res.Retunes == 0 {
		t.Fatal("no re-tunes over 3 years: the retune rung (and its chaos crash point) is unreachable")
	}
	if res.Quarantines != 0 {
		t.Fatalf("%d healthy-drift cores quarantined; the ladder is miscalibrated", res.Quarantines)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("empty timeline despite interventions")
	}
	if !sort.SliceIsSorted(res.Timeline, func(a, b int) bool {
		return res.Timeline[a].Epoch < res.Timeline[b].Epoch
	}) {
		t.Fatal("timeline out of simulated-time order")
	}
	for _, c := range res.Cores {
		if c.AgeFrac <= 0 {
			t.Fatalf("%s: zero aging over 3 years", c.Core)
		}
		if c.EndReduction > c.StartReduction {
			t.Fatalf("%s: reduction rose %d -> %d under pure erosion", c.Core, c.StartReduction, c.EndReduction)
		}
	}
}

// TestSentinelOffDriftedChipFails is the control arm: the same seed
// with the sentinel disabled must take timing failures, demonstrating
// the day-one fine-tuned configuration is not safe to leave alone.
func TestSentinelOffDriftedChipFails(t *testing.T) {
	res, err := Run(silicon.Reference(), Options{Years: 3, Seed: 1, SentinelOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe || res.Failures == 0 {
		t.Fatalf("verdict %s with %d failures, want UNSAFE with > 0", res.Verdict(), res.Failures)
	}
	if res.StepBacks+res.Retunes+res.Statics+res.Quarantines != 0 {
		t.Fatal("sentinel-off run recorded interventions")
	}
	if !res.TimelineTruncated {
		t.Fatalf("expected the %d-entry timeline cap to truncate a %d-failure run", timelineCap, res.Failures)
	}
}

// TestRunLeavesCallerProfileUntouched: Run clones before aging; the
// caller's profile — often the shared reference — must stay pristine.
func TestRunLeavesCallerProfileUntouched(t *testing.T) {
	prof := silicon.Reference()
	before := prof.Clone()
	if _, err := Run(prof, Options{Years: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof, before) {
		t.Fatal("Run mutated the caller's profile")
	}
}

// TestOverlayActivityGatesHCI: the overlay's HCI term accrues only on
// active cores, so a core that works ages faster than one that idles.
func TestOverlayActivityGatesHCI(t *testing.T) {
	newMachine := func() *chip.Machine {
		m, err := chip.New(silicon.Reference().Clone(), chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(workFirst bool) float64 {
		m := newMachine()
		ov := NewOverlay(m, Params{}, 1, rng.New(9).Split("lifetime/drift"))
		n := len(m.AllCores())
		mask := make([]bool, n)
		mask[0] = workFirst
		for h := 0.0; h < HoursPerYear; h += 6 {
			ov.Advance(6, mask)
		}
		return ov.CoreAge(0)
	}
	busy, idle := run(true), run(false)
	if busy <= idle {
		t.Fatalf("active core aged %.5f, idle %.5f; HCI must charge for activity", busy, idle)
	}
	if idle <= 0 {
		t.Fatal("idle core did not age at all; NBTI ages regardless of activity")
	}
}

// TestOverlayAmbientDeterminism: the ambient trace (cycles plus seeded
// excursions) replays bit-for-bit for a given seed.
func TestOverlayAmbientDeterminism(t *testing.T) {
	trace := func(seed uint64) []float64 {
		m, err := chip.New(silicon.Reference().Clone(), chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ov := NewOverlay(m, Params{}, 3, rng.New(seed).Split("lifetime/drift"))
		var out []float64
		for h := 0.0; h < 3*HoursPerYear; h += 97 {
			out = append(out, ov.AmbientAt(h))
		}
		return out
	}
	if !reflect.DeepEqual(trace(5), trace(5)) {
		t.Fatal("same seed, different ambient trace")
	}
	if reflect.DeepEqual(trace(5), trace(6)) {
		t.Fatal("different seeds, identical ambient trace: excursions are not seeded")
	}
}
