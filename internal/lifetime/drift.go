// Package lifetime simulates years of field operation on a fine-tuned
// ATM machine: silicon aging (NBTI/HCI threshold-voltage drift), VRM
// loadline aging, and ambient temperature cycles erode the timing
// margin the fine-tuning procedure spent, and the closed-loop margin
// sentinel (internal/sentinel) either catches the erosion in time or —
// with the sentinel disabled — the machine starts taking timing
// failures. The paper fine-tunes fresh silicon once; this package
// answers the question its Sec. VII leaves open: what keeps that
// configuration safe for the machine's service life?
//
// Everything is driven by simulated time and a single seed: the drift
// trajectories, the ambient schedule, the workload trials and the
// sentinel's re-tunes all draw from labelled rng splits, so a
// (profile, seed, horizon) triple replays bit-for-bit.
package lifetime

import (
	"math"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/units"
)

// HoursPerYear is the simulated-time conversion used throughout.
const HoursPerYear = 8760

// Params shapes the drift model. The zero value selects the defaults
// noted per field (see DefaultParams).
type Params struct {
	// NBTIMean/NBTISigma parameterize the per-core NBTI aging
	// coefficient: fractional true-path slowdown after one year of
	// powered-on time, before the t^0.16 time exponent. Drawn once per
	// core from a truncated normal. Defaults 0.030 / 0.008.
	NBTIMean  float64
	NBTISigma float64
	// HCIMean/HCISigma parameterize the per-core hot-carrier aging
	// coefficient: fractional slowdown per sqrt(active-year). Defaults
	// 0.008 / 0.003.
	HCIMean  float64
	HCISigma float64
	// TrackLo/TrackHi bound the per-core CPM tracking ratio τ: the
	// fraction of the true path's aging the CPM synthetic path (and its
	// inserted-delay chain) experiences. τ < 1 is the whole problem —
	// the monitor ages slower than the paths it guards, so the margin
	// it reports is increasingly optimistic. Defaults 0.60 / 0.85.
	TrackLo float64
	TrackHi float64
	// StepSkewSigma is the relative spread of per-tap aging jitter on
	// the inserted-delay step table: individual taps age slightly
	// faster or slower than the core's τ, skewing the step graduation
	// the fine-tuning search characterized. Default 0.05.
	StepSkewSigma float64
	// NoiseGrowthPerYear inflates SigmaFrac — the uncovered-droop tail
	// widens as the silicon ages. Default 0.05.
	NoiseGrowthPerYear float64
	// LoadlineGrowthMean/Sigma parameterize per-chip VRM loadline
	// aging (fractional resistance growth per year): solder joint and
	// capacitor ESR degradation. Defaults 0.03 / 0.01.
	LoadlineGrowthMean  float64
	LoadlineGrowthSigma float64

	// Ambient temperature model: mean plus a yearly (seasonal) and a
	// daily (diurnal) sinusoid plus seeded excursions (cooling events,
	// heat waves). Defaults 25 / 4 / 3 °C.
	AmbientMeanC float64
	SeasonalAmpC float64
	DiurnalAmpC  float64
	// ExcursionsPerYear is the mean rate of ambient excursions; each
	// has a truncated-normal amplitude (mean/sigma below, clamped to
	// [1, 12] °C) and an exponential duration. Defaults 6 / +6 / 2 /
	// 36 h.
	ExcursionsPerYear  float64
	ExcursionAmpMeanC  float64
	ExcursionAmpSigmaC float64
	ExcursionMeanHours float64
}

// DefaultParams returns the calibrated drift model: strong enough that
// an unsupervised fine-tuned machine starts failing well inside three
// years, gentle enough that the sentinel's ladder keeps a supervised
// one safe.
func DefaultParams() Params {
	return Params{
		NBTIMean:  0.030,
		NBTISigma: 0.008,
		HCIMean:   0.008,
		HCISigma:  0.003,

		TrackLo:       0.60,
		TrackHi:       0.85,
		StepSkewSigma: 0.05,

		NoiseGrowthPerYear: 0.05,

		LoadlineGrowthMean:  0.03,
		LoadlineGrowthSigma: 0.01,

		AmbientMeanC: 25,
		SeasonalAmpC: 4,
		DiurnalAmpC:  3,

		ExcursionsPerYear:  6,
		ExcursionAmpMeanC:  6,
		ExcursionAmpSigmaC: 2,
		ExcursionMeanHours: 36,
	}
}

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.NBTIMean == 0 {
		p.NBTIMean, p.NBTISigma = d.NBTIMean, d.NBTISigma
	}
	if p.HCIMean == 0 {
		p.HCIMean, p.HCISigma = d.HCIMean, d.HCISigma
	}
	if p.TrackLo == 0 && p.TrackHi == 0 {
		p.TrackLo, p.TrackHi = d.TrackLo, d.TrackHi
	}
	if p.StepSkewSigma == 0 {
		p.StepSkewSigma = d.StepSkewSigma
	}
	if p.NoiseGrowthPerYear == 0 {
		p.NoiseGrowthPerYear = d.NoiseGrowthPerYear
	}
	if p.LoadlineGrowthMean == 0 {
		p.LoadlineGrowthMean, p.LoadlineGrowthSigma = d.LoadlineGrowthMean, d.LoadlineGrowthSigma
	}
	if p.AmbientMeanC == 0 {
		p.AmbientMeanC = d.AmbientMeanC
	}
	if p.SeasonalAmpC == 0 {
		p.SeasonalAmpC = d.SeasonalAmpC
	}
	if p.DiurnalAmpC == 0 {
		p.DiurnalAmpC = d.DiurnalAmpC
	}
	if p.ExcursionsPerYear == 0 {
		p.ExcursionsPerYear = d.ExcursionsPerYear
		p.ExcursionAmpMeanC = d.ExcursionAmpMeanC
		p.ExcursionAmpSigmaC = d.ExcursionAmpSigmaC
		p.ExcursionMeanHours = d.ExcursionMeanHours
	}
	return p
}

// coreDrift is one core's frozen aging trajectory: coefficients drawn
// once at overlay construction, applied as pure functions of time.
type coreDrift struct {
	nbti  float64
	hci   float64
	track float64
	// stepJit[k] skews tap k's aging relative to the core's τ.
	stepJit []float64
	// activeYears accumulates the core's powered-and-working time, the
	// HCI stress variable.
	activeYears float64
}

// ageFrac returns the core's fractional true-path slowdown at powered
// age tYears with the accumulated activity.
func (d *coreDrift) ageFrac(tYears float64) float64 {
	if tYears <= 0 {
		return 0
	}
	return d.nbti*math.Pow(tYears, 0.16) + d.hci*math.Sqrt(d.activeYears)
}

// excursion is one seeded ambient event.
type excursion struct {
	startH float64
	endH   float64
	ampC   float64
}

// Overlay mutates a machine's silicon parameters in place as simulated
// time advances. It snapshots the pristine profile at construction and
// recomputes every aged value from that snapshot — the aging factors
// are idempotent functions of time, never cumulative multiplications,
// so replaying a horizon in different epoch sizes lands on identical
// parameters. The machine must have been built from a Clone of the
// caller's profile: the overlay rewrites the profile the machine holds
// and nothing else.
type Overlay struct {
	p Params
	m *chip.Machine
	// base is the pristine deep copy every aged value derives from.
	base *silicon.ServerProfile
	// baseLoadline/baseAmbient snapshot the chip-level electricals.
	baseLoadline []float64
	cores        []coreDrift
	chipRate     []float64 // per-chip loadline growth per year
	excursions   []excursion
	// lastHours is where Advance last left simulated time.
	lastHours float64
}

// NewOverlay draws the drift trajectories for the machine's silicon.
// horizonYears bounds the pre-drawn ambient excursion schedule. Every
// draw comes from labelled splits of src, so the overlay is a pure
// function of (machine profile, params, seed).
func NewOverlay(m *chip.Machine, p Params, horizonYears float64, src *rng.Source) *Overlay {
	p = p.withDefaults()
	o := &Overlay{p: p, m: m, base: m.Profile().Clone()}

	coreSrc := src.Split("cores")
	cores := m.AllCores()
	o.cores = make([]coreDrift, len(cores))
	for i, core := range cores {
		cs := coreSrc.SplitIndex("core", i)
		d := coreDrift{
			nbti:  cs.TruncNorm(p.NBTIMean, p.NBTISigma, p.NBTIMean/3, p.NBTIMean*2),
			hci:   cs.TruncNorm(p.HCIMean, p.HCISigma, 0, p.HCIMean*3),
			track: p.TrackLo + cs.Float64()*(p.TrackHi-p.TrackLo),
		}
		d.stepJit = make([]float64, len(core.Profile.StepPs))
		for k := range d.stepJit {
			d.stepJit[k] = cs.TruncNorm(0, p.StepSkewSigma, -3*p.StepSkewSigma, 3*p.StepSkewSigma)
		}
		o.cores[i] = d
	}

	chipSrc := src.Split("chips")
	o.chipRate = make([]float64, len(m.Chips))
	o.baseLoadline = make([]float64, len(m.Chips))
	for i, ch := range m.Chips {
		cs := chipSrc.SplitIndex("chip", i)
		o.chipRate[i] = cs.TruncNorm(p.LoadlineGrowthMean, p.LoadlineGrowthSigma, 0, p.LoadlineGrowthMean*3)
		o.baseLoadline[i] = ch.PDN.LoadlineOhms
	}

	// Pre-draw the ambient excursion schedule across the horizon.
	ambSrc := src.Split("ambient")
	horizonH := horizonYears * HoursPerYear
	for t := 0.0; ; {
		t += ambSrc.Exp(p.ExcursionsPerYear / HoursPerYear)
		if t >= horizonH {
			break
		}
		dur := ambSrc.Exp(1 / p.ExcursionMeanHours)
		amp := ambSrc.TruncNorm(p.ExcursionAmpMeanC, p.ExcursionAmpSigmaC, 1, 12)
		o.excursions = append(o.excursions, excursion{startH: t, endH: t + dur, ampC: amp})
	}
	return o
}

// AmbientAt returns the inlet temperature at simulated hour t.
func (o *Overlay) AmbientAt(tHours float64) float64 {
	a := o.p.AmbientMeanC
	a += o.p.SeasonalAmpC * math.Sin(2*math.Pi*tHours/HoursPerYear)
	a += o.p.DiurnalAmpC * math.Sin(2*math.Pi*math.Mod(tHours, 24)/24)
	for i := range o.excursions {
		if tHours >= o.excursions[i].startH && tHours < o.excursions[i].endH {
			a += o.excursions[i].ampC
		}
	}
	return a
}

// Hours returns the overlay's current simulated time.
func (o *Overlay) Hours() float64 { return o.lastHours }

// CoreAge returns core i's current fractional true-path slowdown.
func (o *Overlay) CoreAge(i int) float64 {
	if i < 0 || i >= len(o.cores) {
		return 0
	}
	return o.cores[i].ageFrac(o.lastHours / HoursPerYear)
}

// Advance moves simulated time forward by dtHours and rewrites the
// machine's silicon and electrical parameters for the new instant.
// active[i] marks cores that did real work during the elapsed slice
// (the HCI stress input); its order is the machine's AllCores order.
func (o *Overlay) Advance(dtHours float64, active []bool) {
	t := o.lastHours + dtHours
	o.lastHours = t
	tY := t / HoursPerYear

	cores := o.m.AllCores()
	baseCores := o.base.AllCores()
	for i := range cores {
		d := &o.cores[i]
		if i < len(active) && active[i] {
			d.activeYears += dtHours / HoursPerYear
		}
		age := d.ageFrac(tY)
		cpmAge := d.track * age

		p, bp := cores[i].Profile, baseCores[i]
		// The true paths (and the guard the workloads demand) age at
		// the full rate...
		p.PathPs = units.Picosecond(float64(bp.PathPs) * (1 + age))
		p.IdleGuardPs = units.Picosecond(float64(bp.IdleGuardPs) * (1 + age))
		p.UBenchGuardPs = units.Picosecond(float64(bp.UBenchGuardPs) * (1 + age))
		// ...while the CPM synthetic path and its inserted-delay chain
		// track at only τ of it, so the reported margin erodes.
		p.SynthPs = units.Picosecond(float64(bp.SynthPs) * (1 + cpmAge))
		for k := 1; k < len(p.StepPs); k++ {
			p.StepPs[k] = units.Picosecond(float64(bp.StepPs[k]) * (1 + cpmAge*(1+d.stepJit[k])))
		}
		for k := range p.SiteSkewPs {
			p.SiteSkewPs[k] = units.Picosecond(float64(bp.SiteSkewPs[k]) * (1 + cpmAge))
		}
		// The uncovered-droop tail widens with age.
		p.SigmaFrac = bp.SigmaFrac * (1 + o.p.NoiseGrowthPerYear*tY)
	}

	amb := o.AmbientAt(t)
	for i, ch := range o.m.Chips {
		ch.PDN.LoadlineOhms = o.baseLoadline[i] * (1 + o.chipRate[i]*tY)
		ch.Thermal.AmbientC = units.Celsius(amb)
	}
}
