package lifetime

import (
	"testing"

	"repro/internal/silicon"
)

// TestProbe3Years is a diagnostic: run with -v to see the calibration.
func TestProbe3Years(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, off := range []bool{false, true} {
		res, err := Run(silicon.Reference(), Options{Years: 3, Seed: 1, SentinelOff: off})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("sentinelOff=%v: verdict=%s trials=%d failures=%d sb=%d rt=%d st=%d q=%d",
			off, res.Verdict(), res.Trials, res.Failures, res.StepBacks, res.Retunes, res.Statics, res.Quarantines)
		for _, c := range res.Cores {
			t.Logf("  %s: red %d->%d margin %.2f->%.2f age=%.4f fail=%d sb=%d rt=%d static=%v quar=%v",
				c.Core, c.StartReduction, c.EndReduction, c.StartMargin, c.EndMargin, c.AgeFrac,
				c.Failures, c.StepBacks, c.Retunes, c.Static, c.Quarantined)
		}
	}
}
