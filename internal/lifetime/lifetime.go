package lifetime

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/fsp"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sentinel"
	"repro/internal/silicon"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Options configures a lifetime simulation. The zero value (plus a
// profile) runs three years at seed 1 with the sentinel on.
type Options struct {
	// Years is the simulated horizon. Default 3.
	Years int
	// Seed drives every stochastic element: drift trajectories,
	// ambient excursions, workload trials, re-tune searches. Default 1.
	Seed uint64
	// EpochHours is the simulation step: drift is re-applied, one
	// trial per active core runs, and the sentinel takes one margin
	// sample per epoch. Default 6.
	EpochHours float64
	// SentinelOff disables the margin sentinel: the machine keeps its
	// day-one fine-tuned configuration for the whole horizon. This is
	// the control arm — it demonstrates why the sentinel must exist.
	SentinelOff bool
	// Drift shapes the aging model (zero value → DefaultParams).
	Drift Params
	// Sentinel tunes the detector and escalation ladder.
	Sentinel sentinel.Config
	// Tune configures the initial fine-tuning deployment and the
	// sentinel's bounded online re-tunes.
	Tune tuning.Options
	// TrialRetries is the transient-retry budget for production
	// trials. Default 2.
	TrialRetries int
	// Obs, when non-nil, collects lifetime and sentinel telemetry.
	Obs *obs.Registry
	// Trace, when non-nil, records sentinel actions and failures.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Years == 0 {
		o.Years = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EpochHours == 0 {
		o.EpochHours = 6
	}
	if o.TrialRetries == 0 {
		o.TrialRetries = 2
	}
	// StressTestCore consumes Options verbatim (Deploy normalizes for
	// its own callers), so the zero value must be filled here: an empty
	// battery or zero passes would "validate" every reduction.
	if o.Tune.Passes == 0 {
		o.Tune.Passes = 3
	}
	if o.Tune.RunsPerConfig == 0 {
		o.Tune.RunsPerConfig = 4
	}
	if o.Tune.Battery == nil {
		o.Tune.Battery = workload.TestTimeSuite()
	}
	if o.Tune.TrialRetries == 0 {
		o.Tune.TrialRetries = 2
	}
	o.Sentinel.Obs = o.Obs
	o.Sentinel.Trace = o.Trace
	return o
}

// EventKind tags a timeline entry.
const (
	EventFailure    = "timing-failure"
	EventStepBack   = "step-back"
	EventRetune     = "retune"
	EventStatic     = "static-fallback"
	EventQuarantine = "quarantine"
)

// Event is one timeline entry: a timing failure or a sentinel action,
// stamped with simulated time.
type Event struct {
	Epoch int     `json:"epoch"`
	Hours float64 `json:"hours"`
	Core  string  `json:"core"`
	Kind  string  `json:"kind"`
	// Reduction is the core's CPM reduction after the event.
	Reduction int `json:"reduction"`
	// Detail carries the failure manifestation or action note.
	Detail string `json:"detail,omitempty"`
}

// CoreReport summarizes one core's journey across the horizon.
type CoreReport struct {
	Core string `json:"core"`
	// StartReduction is the day-one fine-tuned setting.
	StartReduction int `json:"start_reduction"`
	// EndReduction is where the sentinel left the core.
	EndReduction int `json:"end_reduction"`
	// StartMargin/EndMargin are the CPM slack margins (sigma) at
	// deployment and at the end of the horizon.
	StartMargin float64 `json:"start_margin"`
	EndMargin   float64 `json:"end_margin"`
	// AgeFrac is the final fractional true-path slowdown.
	AgeFrac float64 `json:"age_frac"`
	// Failures counts the core's timing failures.
	Failures int `json:"failures"`
	// StepBacks/Retunes count sentinel interventions on the core.
	StepBacks int `json:"step_backs"`
	Retunes   int `json:"retunes"`
	// Static/Quarantined report terminal sentinel states.
	Static      bool `json:"static"`
	Quarantined bool `json:"quarantined"`
}

// Result is the outcome of a lifetime simulation.
type Result struct {
	Years       int  `json:"years"`
	Epochs      int  `json:"epochs"`
	SentinelOff bool `json:"sentinel_off"`
	// Trials is the number of production workload trials executed.
	Trials int `json:"trials"`
	// Failures is the number of timing failures across the horizon —
	// the safety criterion: a safe configuration has zero.
	Failures int `json:"failures"`
	// Interventions aggregate the sentinel's actions.
	StepBacks   int `json:"step_backs"`
	Retunes     int `json:"retunes"`
	Statics     int `json:"statics"`
	Quarantines int `json:"quarantines"`
	// Cores reports per-core journeys in address order.
	Cores []CoreReport `json:"cores"`
	// Timeline holds failures and interventions in simulated-time
	// order, capped at timelineCap entries.
	Timeline []Event `json:"timeline"`
	// TimelineTruncated reports that events beyond the cap were
	// counted but not recorded.
	TimelineTruncated bool `json:"timeline_truncated"`
	// Safe is the verdict: the horizon completed with zero failures.
	Safe bool `json:"safe"`
}

// Verdict renders the safety verdict.
func (r *Result) Verdict() string {
	if r.Safe {
		return "SAFE"
	}
	return "UNSAFE"
}

// timelineCap bounds the recorded timeline. A sentinel-off run on
// drifted silicon takes thousands of timing failures; the count is
// exact, the first entries identify the pattern.
const timelineCap = 128

// workMix is the production workload each core index runs during work
// hours. x264 (stress score 1.00) pins a quarter of the fleet at the
// worst-case envelope — those cores have zero slack beyond what the
// margin register reports.
var workMix = []workload.Profile{workload.X264, workload.Deepsjeng, workload.MCF, workload.Omnetpp}

// actuator translates sentinel decisions into FSP-plane operations on
// the simulated machine. Control actions go through the operator
// client — the same retrying protocol path a test-floor script uses —
// so every intervention is observable at the protocol layer.
type actuator struct {
	m    *chip.Machine
	cli  *fsp.Client
	tune tuning.Options
	// src seeds re-tune searches; retunes counts them for labelling.
	src     *rng.Source
	retunes int
}

func (a *actuator) StepBack(core string) (int, error) {
	red, err := a.cli.CPM(core)
	if err != nil {
		return 0, err
	}
	if red == 0 {
		return 0, nil
	}
	if err := a.cli.SetCPM(core, red-1); err != nil {
		return red, err
	}
	return red - 1, nil
}

func (a *actuator) Retune(core string) (int, error) {
	a.retunes++
	lim, err := tuning.StressTestCore(a.m, core, a.tune, a.src.SplitIndex("retune", a.retunes))
	if err != nil {
		return 0, err
	}
	// Chaos hook: killing the process here — after the search, before
	// the commit — must leave a resumed run byte-identical, because a
	// failed fleet job is never cached and replays from scratch.
	guard.CrashPoint("sentinel/retune-commit")
	if err := a.cli.SetCPM(core, lim); err != nil {
		return 0, err
	}
	return lim, nil
}

func (a *actuator) Static(core string) error {
	if err := a.cli.SetCPM(core, 0); err != nil {
		return err
	}
	return a.cli.SetMode(core, "static")
}

func (a *actuator) Quarantine(core, reason string) error {
	if _, err := a.cli.Exec(fmt.Sprintf("gate %s on", core)); err != nil {
		return err
	}
	return nil
}

// Run simulates o.Years of field operation on the given silicon. The
// profile is cloned before anything touches it: the caller's reference
// stays pristine. The returned Result is a pure function of
// (profile, Options) — same inputs, byte-identical outcome.
func Run(profile *silicon.ServerProfile, o Options) (*Result, error) {
	o = o.withDefaults()
	aged := profile.Clone()
	m, err := chip.New(aged, chip.Options{})
	if err != nil {
		return nil, err
	}

	root := rng.New(o.Seed)
	ov := NewOverlay(m, o.Drift, float64(o.Years), root.Split("lifetime/drift"))
	ctl := fsp.NewController(m)
	cli := fsp.NewClient(fsp.NewLoopback(fsp.NewSession(ctl)), fsp.ClientOptions{})

	cores := m.AllCores()
	labels := make([]string, len(cores))
	for i, c := range cores {
		labels[i] = c.Profile.Label
	}

	res := &Result{Years: o.Years, SentinelOff: o.SentinelOff}
	res.Cores = make([]CoreReport, len(cores))

	// Day one: fine-tune every core to its stress limit through the
	// operator plane, exactly as the paper deploys.
	deploySrc := root.Split("lifetime/deploy")
	for i, label := range labels {
		lim, err := tuning.StressTestCore(m, label, o.Tune, deploySrc.SplitIndex("core", i))
		if err != nil {
			return nil, fmt.Errorf("lifetime: deploy %s: %w", label, err)
		}
		if err := cli.SetMode(label, "atm"); err != nil {
			return nil, err
		}
		if err := cli.SetCPM(label, lim); err != nil {
			return nil, err
		}
		res.Cores[i].Core = label
		res.Cores[i].StartReduction = lim
	}
	startMargins, err := cli.Margins()
	if err != nil {
		return nil, err
	}
	for i := range res.Cores {
		res.Cores[i].StartMargin = startMargins[i].Sigma
	}

	act := &actuator{m: m, cli: cli, tune: o.Tune, src: root.Split("lifetime/retune")}
	var snt *sentinel.Sentinel
	if !o.SentinelOff {
		snt = sentinel.New(o.Sentinel, labels, act)
	}

	var (
		trialSrc      = root.Split("lifetime/trials")
		trialCounter  *obs.Counter
		failCounter   *obs.Counter
		ambientGauge  *obs.Gauge
		failuresByIdx = make([]int, len(cores))
	)
	if o.Obs != nil {
		trialCounter = o.Obs.Counter("lifetime_trials_total")
		failCounter = o.Obs.Counter("lifetime_failures_total")
		ambientGauge = o.Obs.Gauge("lifetime_ambient_c")
	}

	record := func(ev Event) {
		if len(res.Timeline) < timelineCap {
			res.Timeline = append(res.Timeline, ev)
		} else {
			res.TimelineTruncated = true
		}
	}

	epochs := int(math.Round(float64(o.Years) * HoursPerYear / o.EpochHours))
	res.Epochs = epochs
	active := make([]bool, len(cores))
	for e := 0; e < epochs; e++ {
		tH := float64(e+1) * o.EpochHours
		// The machine does real work 08:00–20:00 every day; nights it
		// idles. Active cores accumulate HCI stress and take trials.
		hourOfDay := math.Mod(tH, 24)
		working := hourOfDay > 8 && hourOfDay <= 20
		for i, c := range cores {
			active[i] = working && !c.Gated() && c.Mode() == chip.ModeATM
		}
		ov.Advance(o.EpochHours, active)
		ctl.Invalidate()
		if ambientGauge != nil {
			ambientGauge.Set(ov.AmbientAt(tH))
		}

		// Sentinel pass first: one margin sample per core per epoch,
		// through the operator plane. Sampling before the epoch's
		// trials matters — the margin register is a solved model
		// quantity that steps down the instant the aged deterministic
		// limit crosses the core's setting, so an immediate step-back
		// here protects the very trials that follow.
		if snt != nil {
			ms, err := cli.Margins()
			if err != nil {
				return nil, fmt.Errorf("lifetime: epoch %d margins: %w", e, err)
			}
			for i := range ms {
				// The sentinel supervises the ATM loop; a core parked
				// at static margin or gated off is out of it, and its
				// register (computed from the CPM envelope) no longer
				// describes a live control loop.
				if cores[i].Gated() || cores[i].Mode() != chip.ModeATM {
					continue
				}
				if !snt.Observe(i, ms[i].Sigma) {
					continue
				}
				ev := snt.Act(i)
				switch ev.Action {
				case sentinel.ActionNone:
					continue
				case sentinel.ActionStepBack:
					res.StepBacks++
					res.Cores[i].StepBacks++
					record(Event{Epoch: e, Hours: tH, Core: ev.Core, Kind: EventStepBack, Reduction: ev.Reduction})
				case sentinel.ActionRetune:
					res.Retunes++
					res.Cores[i].Retunes++
					record(Event{Epoch: e, Hours: tH, Core: ev.Core, Kind: EventRetune, Reduction: ev.Reduction})
				case sentinel.ActionStatic:
					res.Statics++
					res.Cores[i].Static = true
					record(Event{Epoch: e, Hours: tH, Core: ev.Core, Kind: EventStatic})
				case sentinel.ActionQuarantine:
					res.Quarantines++
					res.Cores[i].Quarantined = true
					record(Event{Epoch: e, Hours: tH, Core: ev.Core, Kind: EventQuarantine})
				}
				if ev.Err != nil && len(res.Timeline) > 0 {
					res.Timeline[len(res.Timeline)-1].Detail = ev.Err.Error()
				}
			}
			// Interventions may have gated or re-moded cores: refresh
			// the activity mask before dispatching work.
			for i, c := range cores {
				active[i] = active[i] && !c.Gated() && c.Mode() == chip.ModeATM
			}
		}

		// Production trials: one per active core per epoch.
		for i, label := range labels {
			if !active[i] {
				continue
			}
			w := workMix[i%len(workMix)]
			cores[i].SetWorkload(w)
			tr, err := m.RunTrialRetry(label, w, trialSrc.SplitIndex("trial", e*len(cores)+i), o.TrialRetries)
			if err != nil {
				if errors.Is(err, chip.ErrTransient) {
					continue
				}
				return nil, fmt.Errorf("lifetime: epoch %d trial on %s: %w", e, label, err)
			}
			res.Trials++
			if trialCounter != nil {
				trialCounter.Inc()
			}
			if !tr.OK() {
				res.Failures++
				failuresByIdx[i]++
				if failCounter != nil {
					failCounter.Inc()
				}
				record(Event{Epoch: e, Hours: tH, Core: label, Kind: EventFailure,
					Reduction: cores[i].Reduction(), Detail: tr.Failure.String()})
			}
		}

	}

	endMargins, err := cli.Margins()
	if err != nil {
		return nil, err
	}
	for i := range res.Cores {
		res.Cores[i].EndMargin = endMargins[i].Sigma
		res.Cores[i].EndReduction = cores[i].Reduction()
		res.Cores[i].AgeFrac = ov.CoreAge(i)
		res.Cores[i].Failures = failuresByIdx[i]
	}
	sort.SliceStable(res.Timeline, func(a, b int) bool { return res.Timeline[a].Epoch < res.Timeline[b].Epoch })
	res.Safe = res.Failures == 0
	return res, nil
}
