package perf

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Stage is one benchmarkable unit: a hotpath kernel, an end-to-end
// tuning stage, or a fleet campaign. Iteration counts are fixed per
// stage — never time-calibrated — so the canonical stage rows of the
// emitted artifact are pure functions of the code and the plan, and
// two runs on different machines differ only in the timing section.
type Stage struct {
	// Name keys the stage in artifacts and baselines (snake_case).
	Name string
	// Group is the selection bucket: "kernel", "e2e", or "fleet".
	Group string
	// Note is a one-line human description carried into the artifact.
	Note string
	// Iters is how many ops one measured pass runs.
	Iters int
	// AllocStable marks a single-goroutine stage whose allocs/op is
	// deterministic and gated against the baseline. Parallel stages
	// (goroutine scheduling perturbs allocation counts) report allocs
	// in the timing section instead, and carry -1 in the canonical row.
	AllocStable bool
	// Run performs iters ops and returns how many kernel trials they
	// executed in total (== iters for the kernel stages; the e2e stages
	// report the trial counters they drove).
	Run func(iters int) (trials int64, err error)
}

// StageResult is one measured stage. TrialsPerOp and (for alloc-stable
// stages) AllocsPerOp are deterministic; NSPerOp, TrialsPerSec, and
// the unstable-allocs reading are timing.
type StageResult struct {
	Stage        Stage
	TrialsPerOp  int64
	AllocsPerOp  int64
	NSPerOp      int64
	TrialsPerSec float64
}

// allocRounds is how many times the allocation pass repeats; the
// minimum over the rounds is reported, de-noising one-off runtime
// internal allocations that survive the warmup.
const allocRounds = 3

// timeRounds is how many timed passes run; the minimum elapsed is
// reported. Minimum-of-N is the standard microbenchmark de-noiser: a
// preempted round can only be slower than the true cost, never faster,
// so the min is the most repeatable estimate a shared runner can give
// and keeps the CI tolerance band honest.
const timeRounds = 3

// RunStage measures one stage: a warmup op, an allocation pass (GC
// off, and single-P for alloc-stable stages, so the count is exact),
// then the timed pass at full parallelism.
func RunStage(st Stage) (StageResult, error) {
	if st.Iters <= 0 {
		return StageResult{}, fmt.Errorf("perf: stage %s: non-positive iters %d", st.Name, st.Iters)
	}
	if _, err := st.Run(1); err != nil { // warmup: pools, lazy init
		return StageResult{}, fmt.Errorf("perf: stage %s: %w", st.Name, err)
	}

	allocs, err := measureAllocs(st)
	if err != nil {
		return StageResult{}, fmt.Errorf("perf: stage %s: %w", st.Name, err)
	}

	runtime.GC()
	var trials, elapsed int64
	for round := 0; round < timeRounds; round++ {
		began := nowNS()
		got, err := st.Run(st.Iters)
		took := nowNS() - began
		if err != nil {
			return StageResult{}, fmt.Errorf("perf: stage %s: %w", st.Name, err)
		}
		if round == 0 {
			trials = got
		} else if got != trials {
			// The trial count is canonical: a stage that returns a
			// different count on a repeat run is nondeterministic, and
			// its artifact rows would be meaningless.
			return StageResult{}, fmt.Errorf("perf: stage %s: trial count diverged across rounds: %d then %d",
				st.Name, trials, got)
		}
		if round == 0 || took < elapsed {
			elapsed = took
		}
	}
	if elapsed < 1 {
		elapsed = 1
	}
	res := StageResult{
		Stage:       st,
		TrialsPerOp: trials / int64(st.Iters),
		AllocsPerOp: allocs,
		NSPerOp:     elapsed / int64(st.Iters),
	}
	res.TrialsPerSec = float64(trials) * 1e9 / float64(elapsed)
	return res, nil
}

// measureAllocs counts allocations per op with the collector paused.
// Alloc-stable stages additionally pin to one P so scheduler-dependent
// allocations cannot leak into the canonical count.
func measureAllocs(st Stage) (int64, error) {
	iters := st.Iters
	if iters > 100 {
		iters = 100 // allocation counts don't need the full timing plan
	}
	if st.AllocStable {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	best := int64(-1)
	var ms0, ms1 runtime.MemStats
	for round := 0; round < allocRounds; round++ {
		runtime.ReadMemStats(&ms0)
		if _, err := st.Run(iters); err != nil {
			return 0, err
		}
		runtime.ReadMemStats(&ms1)
		got := int64(ms1.Mallocs-ms0.Mallocs) / int64(iters)
		if best < 0 || got < best {
			best = got
		}
	}
	return best, nil
}

// RunStages measures every stage in order, failing fast on the first
// broken one (a broken benchmark is a broken build, not a data point).
func RunStages(stages []Stage) ([]StageResult, error) {
	out := make([]StageResult, 0, len(stages))
	for _, st := range stages {
		r, err := RunStage(st)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
