package perf

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
)

// A minimal, dependency-free reader for the pprof profile.proto wire
// format — enough to turn a CPU profile captured by Capture into a
// deterministic flat/cum hotspot table without shelling out to `go
// tool pprof`. Only the fields the table needs are decoded; unknown
// fields are skipped by wire type, so future pprof additions pass
// through harmlessly.
//
// profile.proto field numbers used here:
//
//	Profile:  sample_type=1  sample=2  location=4  function=5  string_table=6
//	ValueType: type=1 unit=2          Sample: location_id=1 value=2
//	Location: id=1 line=4             Line:   function_id=1
//	Function: id=1 name=2

// Profile is the decoded subset of one pprof profile.
type Profile struct {
	// SampleTypes are the value columns, e.g. ["samples/count",
	// "cpu/nanoseconds"] for a CPU profile.
	SampleTypes []string
	samples     []pprofSample
	// locFunc maps location id → function name of its leaf-most line.
	locFunc map[uint64]string
}

type pprofSample struct {
	locs   []uint64 // leaf first
	values []int64
}

// ParseProfile decodes a (possibly gzipped) pprof profile stream.
func ParseProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("perf: pprof gzip: %w", err)
		}
		defer gz.Close()
		raw, err := io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("perf: pprof gzip: %w", err)
		}
		return parseProfileBytes(raw)
	}
	raw, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	return parseProfileBytes(raw)
}

func parseProfileBytes(raw []byte) (*Profile, error) {
	p := &Profile{locFunc: map[uint64]string{}}
	var strtab []string
	type valueType struct{ typ, unit int64 }
	var vts []valueType
	type line struct{ funcID uint64 }
	type location struct {
		id    uint64
		lines []line
	}
	var locs []location
	type function struct {
		id   uint64
		name int64
	}
	var funcs []function

	err := walkFields(raw, func(field uint64, wire int, v uint64, sub []byte) error {
		switch field {
		case 1: // sample_type
			var vt valueType
			if err := walkFields(sub, func(f uint64, w int, u uint64, _ []byte) error {
				switch f {
				case 1:
					vt.typ = int64(u)
				case 2:
					vt.unit = int64(u)
				}
				return nil
			}); err != nil {
				return err
			}
			vts = append(vts, vt)
		case 2: // sample
			var s pprofSample
			if err := walkFields(sub, func(f uint64, w int, u uint64, packed []byte) error {
				switch f {
				case 1:
					if w == 2 {
						ids, err := unpackVarints(packed)
						if err != nil {
							return err
						}
						s.locs = append(s.locs, ids...)
					} else {
						s.locs = append(s.locs, u)
					}
				case 2:
					if w == 2 {
						vals, err := unpackVarints(packed)
						if err != nil {
							return err
						}
						for _, x := range vals {
							s.values = append(s.values, int64(x))
						}
					} else {
						s.values = append(s.values, int64(u))
					}
				}
				return nil
			}); err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			var loc location
			if err := walkFields(sub, func(f uint64, w int, u uint64, lsub []byte) error {
				switch f {
				case 1:
					loc.id = u
				case 4:
					var ln line
					if err := walkFields(lsub, func(lf uint64, _ int, lu uint64, _ []byte) error {
						if lf == 1 {
							ln.funcID = lu
						}
						return nil
					}); err != nil {
						return err
					}
					loc.lines = append(loc.lines, ln)
				}
				return nil
			}); err != nil {
				return err
			}
			locs = append(locs, loc)
		case 5: // function
			var fn function
			if err := walkFields(sub, func(f uint64, _ int, u uint64, _ []byte) error {
				switch f {
				case 1:
					fn.id = u
				case 2:
					fn.name = int64(u)
				}
				return nil
			}); err != nil {
				return err
			}
			funcs = append(funcs, fn)
		case 6: // string_table
			strtab = append(strtab, string(sub))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("perf: pprof decode: %w", err)
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(strtab) {
			return strtab[i]
		}
		return fmt.Sprintf("?str%d", i)
	}
	for _, vt := range vts {
		p.SampleTypes = append(p.SampleTypes, str(vt.typ)+"/"+str(vt.unit))
	}
	funcName := map[uint64]string{}
	for _, fn := range funcs {
		funcName[fn.id] = str(fn.name)
	}
	for _, loc := range locs {
		name := "?"
		if len(loc.lines) > 0 {
			// Line 0 is the leaf-most frame of an inlined stack.
			if n, ok := funcName[loc.lines[0].funcID]; ok {
				name = n
			}
		}
		p.locFunc[loc.id] = name
	}
	return p, nil
}

// walkFields iterates one protobuf message's fields. For wire type 2
// the payload is passed as sub; for varint fields the value arrives in
// v. Fixed32/64 fields are skipped (the profile subset needs none).
func walkFields(raw []byte, fn func(field uint64, wire int, v uint64, sub []byte) error) error {
	for len(raw) > 0 {
		key, n := uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("bad field key")
		}
		raw = raw[n:]
		field, wire := key>>3, int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(raw)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", field)
			}
			raw = raw[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1:
			if len(raw) < 8 {
				return fmt.Errorf("truncated fixed64 in field %d", field)
			}
			raw = raw[8:]
		case 2:
			ln, n := uvarint(raw)
			if n <= 0 || uint64(len(raw)-n) < ln {
				return fmt.Errorf("truncated bytes in field %d", field)
			}
			sub := raw[n : n+int(ln)]
			raw = raw[n+int(ln):]
			if err := fn(field, wire, 0, sub); err != nil {
				return err
			}
		case 5:
			if len(raw) < 4 {
				return fmt.Errorf("truncated fixed32 in field %d", field)
			}
			raw = raw[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func unpackVarints(b []byte) ([]uint64, error) {
	var out []uint64
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("bad packed varint")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

// TopRow is one function's aggregated weight in a profile.
type TopRow struct {
	Function string
	// Flat is the weight sampled with this function on top of the
	// stack; Cum includes every sample it appears anywhere in.
	Flat, Cum int64
}

// Top aggregates the profile's last value column (cpu/nanoseconds for
// a CPU profile) into a flat/cum table, sorted by flat descending then
// name — fully deterministic for a given profile file. n <= 0 returns
// every row.
func (p *Profile) Top(n int) []TopRow {
	col := len(p.SampleTypes) - 1
	if col < 0 {
		col = 0
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range p.samples {
		if col >= len(s.values) || len(s.locs) == 0 {
			continue
		}
		v := s.values[col]
		flat[p.locFunc[s.locs[0]]] += v
		seen := map[string]bool{}
		for _, loc := range s.locs {
			name := p.locFunc[loc]
			if !seen[name] {
				seen[name] = true
				cum[name] += v
			}
		}
	}
	names := make([]string, 0, len(cum))
	for name := range cum {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]TopRow, 0, len(names))
	for _, name := range names {
		rows = append(rows, TopRow{Function: name, Flat: flat[name], Cum: cum[name]})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Flat != rows[j].Flat {
			return rows[i].Flat > rows[j].Flat
		}
		return rows[i].Function < rows[j].Function
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// FormatTop renders a top table as aligned text with one header line.
// The unit column reports which sample column was aggregated.
func FormatTop(p *Profile, rows []TopRow) string {
	unit := "samples"
	if len(p.SampleTypes) > 0 {
		unit = p.SampleTypes[len(p.SampleTypes)-1]
	}
	var total int64
	for _, r := range rows {
		total += r.Flat
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %7s %12s  %s (%s)\n", "flat", "flat%", "cum", "function", unit)
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Flat) / float64(total)
		}
		fmt.Fprintf(&b, "%12d %6.2f%% %12d  %s\n", r.Flat, pct, r.Cum, r.Function)
	}
	return b.String()
}
