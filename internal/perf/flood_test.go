package perf

import (
	"bytes"
	"testing"
)

// TestFloodDeterministic is the PR's headline guarantee: two
// identically-seeded flood runs produce the same result modulo the
// wall clock, and the artifact is byte-identical once timing is
// stripped.
func TestFloodDeterministic(t *testing.T) {
	o := DefaultFloodOptions(true)
	a, err := Flood(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Flood(o)
	if err != nil {
		t.Fatal(err)
	}
	aa, bb := *a, *b
	aa.WallNS, bb.WallNS = 0, 0
	if aa != bb {
		t.Fatalf("seeded runs diverged:\n%+v\n%+v", aa, bb)
	}
	ca, err := FloodDoc(o, true, a).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := FloodDoc(o, true, b).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical artifacts diverged:\n%s\n%s", ca, cb)
	}
}

func TestFloodDrivesGuardPlane(t *testing.T) {
	o := DefaultFloodOptions(true)
	o.Sessions = 10
	o.MaxSessions = 4
	r, err := Flood(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShedSessions != int64(o.Sessions-o.MaxSessions) {
		t.Errorf("shed %d sessions, want %d", r.ShedSessions, o.Sessions-o.MaxSessions)
	}
	admitted := int64(o.MaxSessions)
	if want := admitted * int64(o.Commands); r.Issued != want || r.Executed != want {
		t.Errorf("issued/executed = %d/%d, want %d (admitted sessions run their full budget)",
			r.Issued, r.Executed, want)
	}
	if r.P50Ticks <= 0 || r.P99Ticks < r.P50Ticks {
		t.Errorf("implausible latency quantiles: p50=%g p99=%g", r.P50Ticks, r.P99Ticks)
	}
	if r.WallNS <= 0 {
		t.Error("wall clock not measured")
	}
}

func TestFloodGarbageTripsBreakers(t *testing.T) {
	o := DefaultFloodOptions(true)
	o.Garbage = 700 // mostly garbage: breakers must open
	r, err := Flood(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors == 0 {
		t.Error("garbage-heavy flood saw no errors")
	}
	if r.BreakerRejected == 0 {
		t.Error("garbage-heavy flood never tripped a breaker")
	}

	clean := DefaultFloodOptions(true)
	clean.Garbage = 0
	rc, err := Flood(clean)
	if err != nil {
		t.Fatal(err)
	}
	if rc.BreakerRejected != 0 {
		t.Errorf("clean flood tripped breakers %d times", rc.BreakerRejected)
	}
}

func TestFloodSeedChangesOutcome(t *testing.T) {
	a, err := Flood(DefaultFloodOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	o2 := DefaultFloodOptions(true)
	o2.Seed = 2
	b, err := Flood(o2)
	if err != nil {
		t.Fatal(err)
	}
	// Counts may coincide, but the full latency trajectory almost
	// certainly doesn't; guard against a seed that is silently ignored.
	if a.P50Ticks == b.P50Ticks && a.P95Ticks == b.P95Ticks && a.P99Ticks == b.P99Ticks &&
		a.Errors == b.Errors && a.Issued == b.Issued {
		t.Error("different seeds produced identical outcomes — seed likely unused")
	}
}

func TestFloodOptionValidation(t *testing.T) {
	bad := []FloodOptions{
		{Sessions: 0, Commands: 1, Pipeline: 1},
		{Sessions: 1, Commands: 0, Pipeline: 1},
		{Sessions: 1, Commands: 1, Pipeline: 0},
		{Sessions: 1, Commands: 1, Pipeline: 1, Garbage: 1001},
		{Sessions: 1, Commands: 1, Pipeline: 1, Garbage: -1},
	}
	for i, o := range bad {
		if _, err := Flood(o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestFloodDocShape(t *testing.T) {
	o := DefaultFloodOptions(true)
	r, err := Flood(o)
	if err != nil {
		t.Fatal(err)
	}
	doc := FloodDoc(o, true, r)
	if doc.Bench != "fsp" || doc.Schema != SchemaVersion || !doc.Quick {
		t.Fatalf("doc header wrong: %+v", doc)
	}
	if doc.Flood == nil || doc.Flood.Executed != r.Executed {
		t.Fatalf("flood row missing or wrong: %+v", doc.Flood)
	}
	if doc.Timing.TotalNS != r.WallNS || doc.Timing.ReqPerSec <= 0 {
		t.Fatalf("timing row wrong: %+v", doc.Timing)
	}
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"p99_ticks"`)) || !bytes.Contains(raw, []byte(`"req_per_sec"`)) {
		t.Fatalf("artifact missing expected fields:\n%s", raw)
	}
}
