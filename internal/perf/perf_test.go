package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestStopwatchDualClock(t *testing.T) {
	var fake int64
	sw := NewStopwatchClock(func() int64 { return fake })
	sw.Start()
	fake = 100
	sw.Stop()
	if got := sw.ElapsedNS(); got != 100 {
		t.Fatalf("elapsed = %d, want 100", got)
	}
	sw.Start()
	fake = 150
	if got := sw.ElapsedNS(); got != 150 {
		t.Fatalf("running elapsed = %d, want 150", got)
	}
	sw.Stop()
	if sw.Tick() != 1 || sw.Tick() != 2 || sw.Ticks() != 2 {
		t.Fatalf("tick axis broken: %d", sw.Ticks())
	}
	var nilSW *Stopwatch
	nilSW.Start()
	nilSW.Stop()
	if nilSW.ElapsedNS() != 0 || nilSW.Tick() != 0 {
		t.Fatal("nil stopwatch not inert")
	}
}

func TestRunStageCountsAndValidates(t *testing.T) {
	ran := 0
	st := Stage{
		Name: "s", Group: "kernel", Iters: 10, AllocStable: true,
		Run: func(iters int) (int64, error) {
			ran += iters
			return int64(iters) * 3, nil
		},
	}
	r, err := RunStage(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrialsPerOp != 3 {
		t.Errorf("trials/op = %d, want 3", r.TrialsPerOp)
	}
	if r.NSPerOp < 0 || r.TrialsPerSec <= 0 {
		t.Errorf("bad timing: ns/op=%d trials/s=%g", r.NSPerOp, r.TrialsPerSec)
	}
	if r.AllocsPerOp != 0 {
		t.Errorf("closure with no allocations measured %d allocs/op", r.AllocsPerOp)
	}
	if _, err := RunStage(Stage{Name: "bad", Iters: 0}); err == nil {
		t.Fatal("zero-iters stage accepted")
	}
}

func TestStagesPlanAndGroups(t *testing.T) {
	all, err := Stages(true)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	names := map[string]bool{}
	for _, st := range all {
		if names[st.Name] {
			t.Errorf("duplicate stage name %s", st.Name)
		}
		names[st.Name] = true
		groups[st.Group]++
		if st.Iters <= 0 {
			t.Errorf("stage %s: non-positive iters", st.Name)
		}
	}
	for _, g := range StageGroups {
		if groups[g] == 0 {
			t.Errorf("no stages in group %s", g)
		}
	}
	for _, must := range []string{"cpm_site_delay", "cpm_measure", "dpll_step",
		"pdn_steady_voltage", "chip_run_trial", "characterize", "tune", "fleet_sequential"} {
		if !names[must] {
			t.Errorf("stage %s missing from plan", must)
		}
	}

	kernelOnly, err := Stages(true, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range kernelOnly {
		if st.Group != "kernel" {
			t.Errorf("group filter leaked %s/%s", st.Group, st.Name)
		}
	}
	if _, err := Stages(true, "bogus"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

// TestKernelStagesRunAndAllocFree pins the hot kernels: they must
// execute and the pure-math ones must stay at 0 allocs/op.
func TestKernelStagesRunAndAllocFree(t *testing.T) {
	stages, err := Stages(true, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	zeroAlloc := map[string]bool{
		"cpm_site_delay":     true,
		"cpm_measure":        true,
		"dpll_step":          true,
		"pdn_steady_voltage": true,
		"pdn_step_response":  true,
		"pdn_first_droop":    true,
	}
	for _, st := range stages {
		st.Iters = 200 // the full plan is overkill for a unit test
		r, err := RunStage(st)
		if err != nil {
			t.Fatalf("stage %s: %v", st.Name, err)
		}
		if r.TrialsPerOp < 1 {
			t.Errorf("stage %s: trials/op = %d, want >= 1", st.Name, r.TrialsPerOp)
		}
		if zeroAlloc[st.Name] && r.AllocsPerOp != 0 {
			t.Errorf("stage %s: allocs/op = %d, want 0", st.Name, r.AllocsPerOp)
		}
	}
}

func TestDocMarshalAndCanonical(t *testing.T) {
	results := []StageResult{
		{
			Stage:       Stage{Name: "a", Group: "kernel", Iters: 10, AllocStable: true, Note: "n"},
			TrialsPerOp: 1, AllocsPerOp: 0, NSPerOp: 100, TrialsPerSec: 1e7,
		},
		{
			Stage:       Stage{Name: "b", Group: "fleet", Iters: 1},
			TrialsPerOp: 4, AllocsPerOp: 123, NSPerOp: 5000, TrialsPerSec: 8e5,
		},
	}
	doc := NewDoc("core", true, results)
	if doc.Stages[1].AllocsPerOp != -1 {
		t.Errorf("alloc-unstable stage row allocs = %d, want -1", doc.Stages[1].AllocsPerOp)
	}
	if doc.Timing.Stages["b"].AllocsPerOp != 123 {
		t.Errorf("unstable allocs missing from timing: %+v", doc.Timing.Stages["b"])
	}
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("marshal emitted invalid JSON: %v", err)
	}

	// Canonical form strips timing and nothing else.
	canon, err := doc.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	doc2 := NewDoc("core", true, results)
	doc2.Timing.TotalNS = 999999 // a different machine
	doc2.Timing.Stages["a"] = StageTiming{NSPerOp: 1}
	canon2, err := doc2.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Fatalf("canonical bytes depend on timing:\n%s\n%s", canon, canon2)
	}
	if !bytes.Contains(raw, []byte(`"timing"`)) || bytes.Contains(canon, []byte(`"ns_per_op"`)) {
		t.Fatal("timing stripping misbehaved")
	}
}

func TestCompareGates(t *testing.T) {
	mk := func(allocs, ns int64) *Doc {
		return &Doc{
			Bench: "core", Schema: SchemaVersion, Quick: true,
			Stages: []StageRow{{Name: "k", Group: "kernel", Iters: 10, TrialsPerOp: 1, AllocsPerOp: allocs}},
			Timing: Timing{Stages: map[string]StageTiming{"k": {NSPerOp: ns}}},
		}
	}
	base := mk(2, 1000)

	if regs, err := Compare(base, mk(2, 1900)); err != nil || len(regs) != 0 {
		t.Fatalf("within tolerance flagged: %v %v", regs, err)
	}
	if regs, _ := Compare(base, mk(2, 2100)); len(regs) != 1 || !strings.Contains(regs[0].Detail, "ns/op") {
		t.Fatalf("2.1× ns regression not flagged: %v", regs)
	}
	// Single-digit ns/op stages quantize: 1 → 3 ns is timer resolution,
	// not a 3× regression — the absolute noise floor absorbs it.
	if regs, _ := Compare(mk(2, 1), mk(2, 3)); len(regs) != 0 {
		t.Fatalf("sub-floor quantization flagged: %v", regs)
	}
	if regs, _ := Compare(mk(2, 20), mk(2, 200)); len(regs) != 1 {
		t.Fatalf("fast stage with a real regression not flagged: %v", regs)
	}
	if regs, _ := Compare(base, mk(3, 1000)); len(regs) != 1 || !strings.Contains(regs[0].Detail, "allocs") {
		t.Fatalf("alloc growth not flagged: %v", regs)
	}
	if regs, _ := Compare(base, mk(1, 1000)); len(regs) != 0 {
		t.Fatalf("alloc shrink flagged: %v", regs)
	}

	// Alloc-unstable baselines (-1) never gate allocs.
	unstableBase := mk(-1, 1000)
	if regs, _ := Compare(unstableBase, mk(-1, 1000)); len(regs) != 0 {
		t.Fatalf("unstable allocs gated: %v", regs)
	}

	// A vanished stage is a regression; mismatched plans refuse.
	gone := mk(2, 1000)
	gone.Stages = nil
	if regs, _ := Compare(base, gone); len(regs) != 1 {
		t.Fatalf("missing stage not flagged: %v", regs)
	}
	full := mk(2, 1000)
	full.Quick = false
	if _, err := Compare(base, full); err == nil {
		t.Fatal("quick/full comparison accepted")
	}
	other := mk(2, 1000)
	other.Bench = "fsp"
	if _, err := Compare(base, other); err == nil {
		t.Fatal("cross-bench comparison accepted")
	}
}

func TestCompareFloodDivergence(t *testing.T) {
	mk := func(executed int64) *Doc {
		return &Doc{
			Bench: "fsp", Schema: SchemaVersion, Quick: true,
			Flood: &FloodRow{Sessions: 8, Commands: 50, Pipeline: 8, Seed: 1, Executed: executed},
		}
	}
	if regs, err := Compare(mk(400), mk(400)); err != nil || len(regs) != 0 {
		t.Fatalf("identical flood flagged: %v %v", regs, err)
	}
	if regs, _ := Compare(mk(400), mk(399)); len(regs) != 1 || regs[0].Stage != "flood" {
		t.Fatalf("diverged flood not flagged: %v", regs)
	}
	// Different options are a plan change, not a regression.
	changed := mk(999)
	changed.Flood.Sessions = 16
	if regs, _ := Compare(mk(400), changed); len(regs) != 0 {
		t.Fatalf("option change misflagged as regression: %v", regs)
	}
}

func TestReadDocRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	doc := &Doc{Bench: "core", Schema: "atm-bench/v999", Quick: true}
	raw, _ := json.Marshal(doc)
	path := dir + "/BENCH_core.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDoc(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}
