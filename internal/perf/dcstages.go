package perf

import (
	"repro/internal/dc"
)

// dcStages benches the datacenter plane's //atm:hotpath kernels: one
// hierarchical budget step (water-fill apportionment plus the Chen
// integral update) over the acceptance topology, and one scheduler
// placement round over a 64-chip rack. Both are single-goroutine and
// alloc-stable — the budget loop and placement scan run every sim
// tick, so their allocs/op must stay at zero. Fixtures are built
// outside Run so the setup cost never leaks into the per-op counts.
func dcStages(quick bool) []Stage {
	const chips = 2 * 4 * 8
	idle := make([]float64, chips)
	req := make([]float64, chips)
	meas := make([]float64, chips)
	for i := range idle {
		idle[i] = 50
		req[i] = 80 + float64(i%30)
		meas[i] = 55 + float64(i%20)
	}
	tree := dc.NewBudgetTree(2, 4, 8, 2000, 600, 150, 0.5, idle)

	nodes := make([]dc.PlacerChip, 64)
	for i := range nodes {
		nodes[i] = dc.PlacerChip{ID: dc.NodeID(0, 0, i), IdleW: 50, SpanW: 12}
		nodes[i].Cores = make([]dc.PlacerCore, 8)
		for j := range nodes[i].Cores {
			nodes[i].Cores[j] = dc.PlacerCore{
				Label: "C", Slope: -2.5, Intercept: 4000 + float64(i%40),
			}
		}
	}
	placer := dc.NewPlacer(nodes)
	allow := make([]float64, len(nodes))
	for i := range allow {
		allow[i] = 500
	}

	opsOpts := dc.Options{Racks: 2, ChassisPerRack: 4, ChipsPerChassis: 8, Ticks: 64}

	return []Stage{
		{
			Name: "dc_ops", Group: "dc", AllocStable: true,
			Note:  "ops profile parse + seeded fault-schedule draw, 2×4×8 topology over 64 ticks (dc.DrawOps)",
			Iters: pick(quick, 2_000, 50_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					p, err := dc.ParseOpsProfile("ops-storm,rack-brownouts=1")
					if err != nil {
						return 0, err
					}
					sched := dc.DrawOps(p, uint64(i%16)+1, opsOpts, nil)
					sinkF = float64(len(sched))
				}
				return int64(iters), nil
			},
		},
		{
			Name: "dc_budget_step", Group: "dc", AllocStable: true,
			Note:  "rack→chassis→chip water-fill + integral update, 2×4×8 topology (dc.BudgetTree)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					tree.Apportion(req)
					tree.Regulate(meas)
					sinkF = tree.Allowance(i % chips)
				}
				return int64(iters), nil
			},
		},
		{
			Name: "dc_place", Group: "dc", AllocStable: true,
			Note:  "Eq. 1 placement scan + release over 64 chips × 8 cores (dc.Placer)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					ci, cj, pred, ok := placer.Place(0.7, allow)
					if ok {
						sinkF = pred
						placer.Release(ci, cj, 0.7)
					}
				}
				return int64(iters), nil
			},
		},
	}
}
