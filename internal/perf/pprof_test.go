package perf

import (
	"bytes"
	"compress/gzip"
	"os"
	"strings"
	"testing"
)

// Hand-rolled protobuf encoding — the test owns both sides of the wire
// format, so the parser is checked against the spec, not against
// itself.

func pv(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pint(b []byte, field, v uint64) []byte {
	b = pv(b, field<<3|0) // wire type 0
	return pv(b, v)
}

func pbytes(b []byte, field uint64, sub []byte) []byte {
	b = pv(b, field<<3|2) // wire type 2
	b = pv(b, uint64(len(sub)))
	return append(b, sub...)
}

// testProfile encodes: two sample types (samples/count, cpu/ns), three
// functions, three locations, three samples — one using packed varints
// for both location_ids and values.
func testProfile() []byte {
	var p []byte
	// sample_type: {type=1, unit=2}, {type=3, unit=4}
	p = pbytes(p, 1, pint(pint(nil, 1, 1), 2, 2))
	p = pbytes(p, 1, pint(pint(nil, 1, 3), 2, 4))
	// samples (field 2): Sample{location_id=1, value=2}
	sample := func(locs []uint64, vals []int64, packed bool) []byte {
		var s []byte
		if packed {
			var pl, pvv []byte
			for _, l := range locs {
				pl = pv(pl, l)
			}
			for _, v := range vals {
				pvv = pv(pvv, uint64(v))
			}
			s = pbytes(s, 1, pl)
			s = pbytes(s, 2, pvv)
		} else {
			for _, l := range locs {
				s = pint(s, 1, l)
			}
			for _, v := range vals {
				s = pint(s, 2, uint64(v))
			}
		}
		return s
	}
	p = pbytes(p, 2, sample([]uint64{1, 3}, []int64{5, 500}, false))
	p = pbytes(p, 2, sample([]uint64{2, 3}, []int64{3, 300}, false))
	p = pbytes(p, 2, sample([]uint64{1, 2, 3}, []int64{2, 200}, true))
	// locations (field 4): Location{id=1, line=4}; Line{function_id=1}
	loc := func(id, fn uint64) []byte {
		return pbytes(pint(nil, 1, id), 4, pint(nil, 1, fn))
	}
	p = pbytes(p, 4, loc(1, 1))
	p = pbytes(p, 4, loc(2, 2))
	p = pbytes(p, 4, loc(3, 3))
	// functions (field 5): Function{id=1, name=2}
	fn := func(id, name uint64) []byte {
		return pint(pint(nil, 1, id), 2, name)
	}
	p = pbytes(p, 5, fn(1, 5))
	p = pbytes(p, 5, fn(2, 6))
	p = pbytes(p, 5, fn(3, 7))
	// string_table (field 6)
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds",
		"main.hot", "main.warm", "runtime.main"} {
		p = pbytes(p, 6, []byte(s))
	}
	return p
}

func TestParseProfileAndTop(t *testing.T) {
	p, err := ParseProfile(bytes.NewReader(testProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[1] != "cpu/nanoseconds" {
		t.Fatalf("sample types = %v", p.SampleTypes)
	}
	rows := p.Top(0)
	want := []TopRow{
		{Function: "main.hot", Flat: 700, Cum: 700},
		{Function: "main.warm", Flat: 300, Cum: 500},
		{Function: "runtime.main", Flat: 0, Cum: 1000},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %+v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	if top1 := p.Top(1); len(top1) != 1 || top1[0].Function != "main.hot" {
		t.Errorf("Top(1) = %+v", top1)
	}

	out := FormatTop(p, rows)
	if !strings.Contains(out, "cpu/nanoseconds") {
		t.Errorf("unit missing from header:\n%s", out)
	}
	if !strings.Contains(out, "main.hot") || !strings.Contains(out, "70.00%") {
		t.Errorf("table content wrong:\n%s", out)
	}
}

func TestParseProfileGzipped(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(testProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := ParseProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rows := p.Top(0); len(rows) != 3 || rows[0].Function != "main.hot" {
		t.Fatalf("gzipped parse diverged: %+v", rows)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	// Wire type 2 with a length overrunning the buffer must error, not
	// panic or silently truncate.
	bad := []byte{0x12, 0xff, 0x01}
	if _, err := ParseProfile(bytes.NewReader(bad)); err == nil {
		t.Fatal("truncated message accepted")
	}
}

// TestCaptureRoundTrip exercises Capture against the real runtime and
// feeds the captured CPU profile back through the parser. The profile
// may legitimately contain zero samples on a fast machine, so only the
// plumbing — files exist, parse cleanly, have CPU sample types — is
// asserted.
func TestCaptureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := Capture{
		CPUProfile: dir + "/cpu.pb.gz",
		MemProfile: dir + "/mem.pb.gz",
		Trace:      dir + "/trace.out",
	}
	if !c.Enabled() {
		t.Fatal("configured capture reports disabled")
	}
	if (Capture{}).Enabled() {
		t.Fatal("empty capture reports enabled")
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to chew on.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	sinkF = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{c.CPUProfile, c.MemProfile} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		p, err := ParseProfile(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(p.SampleTypes) == 0 {
			t.Errorf("%s: no sample types decoded", path)
		}
	}
}
