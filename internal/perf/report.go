package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion versions the BENCH_*.json artifact layout. Bump it
// when a field changes meaning; the comparator refuses cross-version
// comparisons instead of guessing.
const SchemaVersion = "atm-bench/v1"

// Doc is one BENCH_*.json artifact. Every field outside Timing is
// deterministic for a fixed (code, seed, plan): the determinism tests
// compare documents with Timing stripped, and the CI gate reads the
// canonical rows for allocs and the timing rows for ns/op.
type Doc struct {
	// Bench names the artifact family: "core", "fsp", or "fleet".
	Bench string `json:"bench"`
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Quick marks the CI-sized plan. Baselines are checked in quick so
	// the CI gate compares like for like; full runs are for humans.
	Quick bool `json:"quick"`
	// Stages are the canonical per-stage rows, in run order.
	Stages []StageRow `json:"stages,omitempty"`
	// Flood is the flood harness's canonical outcome (fsp docs only).
	Flood *FloodRow `json:"flood,omitempty"`
	// Timing quarantines every machine- and moment-dependent number.
	Timing Timing `json:"timing"`
}

// StageRow is one stage's canonical row.
type StageRow struct {
	Name        string `json:"name"`
	Group       string `json:"group"`
	Iters       int64  `json:"iters"`
	TrialsPerOp int64  `json:"trials_per_op"`
	// AllocsPerOp is the exact single-P allocation count, or -1 for
	// alloc-unstable (parallel) stages, whose reading lives in Timing.
	AllocsPerOp int64  `json:"allocs_per_op"`
	Note        string `json:"note,omitempty"`
}

// FloodRow is the flood harness's canonical outcome: counts and
// tick-domain latency quantiles, all pure functions of the seed.
type FloodRow struct {
	Sessions        int     `json:"sessions"`
	Commands        int     `json:"commands"`
	Pipeline        int     `json:"pipeline"`
	Seed            uint64  `json:"seed"`
	Issued          int64   `json:"issued"`
	Executed        int64   `json:"executed"`
	ShedSessions    int64   `json:"shed_sessions"`
	BreakerRejected int64   `json:"breaker_rejected"`
	Errors          int64   `json:"errors"`
	ShedRate        float64 `json:"shed_rate"`
	// Latency quantiles in logical ticks (issue→execute distance),
	// estimated by the obs histogram interpolation.
	P50Ticks float64 `json:"p50_ticks"`
	P95Ticks float64 `json:"p95_ticks"`
	P99Ticks float64 `json:"p99_ticks"`
}

// Timing is the one sub-object wall clocks may touch.
type Timing struct {
	CPUs    int   `json:"cpus"`
	TotalNS int64 `json:"total_ns"`
	// Stages carries per-stage wall numbers keyed by stage name
	// (encoding/json emits map keys sorted, so the file layout is
	// stable even though the values are not).
	Stages map[string]StageTiming `json:"stages,omitempty"`
	// ReqPerSec is the flood's wall-clock throughput (fsp docs only).
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
}

// StageTiming is one stage's wall-clock reading.
type StageTiming struct {
	NSPerOp      int64   `json:"ns_per_op"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	// AllocsPerOp appears here only for alloc-unstable stages.
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// NewDoc assembles an artifact from measured stages.
func NewDoc(bench string, quick bool, results []StageResult) *Doc {
	doc := &Doc{
		Bench:  bench,
		Schema: SchemaVersion,
		Quick:  quick,
		Timing: Timing{CPUs: runtime.NumCPU(), Stages: map[string]StageTiming{}},
	}
	for _, r := range results {
		row := StageRow{
			Name:        r.Stage.Name,
			Group:       r.Stage.Group,
			Iters:       int64(r.Stage.Iters),
			TrialsPerOp: r.TrialsPerOp,
			AllocsPerOp: r.AllocsPerOp,
			Note:        r.Stage.Note,
		}
		st := StageTiming{NSPerOp: r.NSPerOp, TrialsPerSec: r.TrialsPerSec}
		if !r.Stage.AllocStable {
			row.AllocsPerOp = -1
			st.AllocsPerOp = r.AllocsPerOp
		}
		doc.Stages = append(doc.Stages, row)
		doc.Timing.Stages[r.Stage.Name] = st
		doc.Timing.TotalNS += r.NSPerOp * int64(r.Stage.Iters)
	}
	return doc
}

// Marshal renders the artifact: two-space indent, trailing newline —
// the checked-in form.
func (d *Doc) Marshal() ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// CanonicalBytes renders the artifact with Timing zeroed: the form two
// identically-seeded runs must reproduce byte for byte.
func (d *Doc) CanonicalBytes() ([]byte, error) {
	stripped := *d
	stripped.Timing = Timing{}
	return stripped.Marshal()
}

// ReadDoc loads and schema-checks an artifact file.
func ReadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if d.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema %q, want %q", path, d.Schema, SchemaVersion)
	}
	return &d, nil
}

// Regression is one baseline violation.
type Regression struct {
	Stage  string
	Detail string
}

func (r Regression) String() string { return r.Stage + ": " + r.Detail }

// NSRegressionFactor is the timing tolerance: a stage only fails the
// gate when its ns/op exceeds the baseline by more than this factor,
// so shared-runner noise cannot flake the build. Allocation counts
// have no tolerance — any growth on an alloc-stable stage fails.
const NSRegressionFactor = 2.0

// nsNoiseFloor is the absolute slack under the ratio gate: a stage
// must also regress by more than this many ns/op to fail. Single-digit
// ns/op stages (a loadline solve is ~2 ns) quantize to integers, where
// 1 → 3 ns is timer resolution, not a 3× regression; sub-floor kernels
// effectively gate at baseline+floor instead of the meaningless ratio.
const nsNoiseFloor = 50

// Compare gates current against baseline: >NSRegressionFactor ns/op
// growth or any allocs/op growth on an alloc-stable stage is a
// regression, as is a stage that disappeared. Quantiles and throughput
// are informational and never gate. Docs from different plans (quick
// vs full) refuse to compare — the numbers would be meaningless.
func Compare(baseline, current *Doc) ([]Regression, error) {
	if baseline.Bench != current.Bench {
		return nil, fmt.Errorf("perf: comparing bench %q against baseline %q", current.Bench, baseline.Bench)
	}
	if baseline.Quick != current.Quick {
		return nil, fmt.Errorf("perf: comparing quick=%v run against quick=%v baseline", current.Quick, baseline.Quick)
	}
	cur := make(map[string]StageRow, len(current.Stages))
	for _, row := range current.Stages {
		cur[row.Name] = row
	}
	var regs []Regression
	// The flood row is a pure function of (code, options): with matching
	// options, any divergence from the baseline means the service plane's
	// behavior changed — shed policy, breaker thresholds, verb set — and
	// the baseline must be regenerated deliberately.
	if b, c := baseline.Flood, current.Flood; b != nil && c != nil &&
		b.Sessions == c.Sessions && b.Commands == c.Commands &&
		b.Pipeline == c.Pipeline && b.Seed == c.Seed && *b != *c {
		regs = append(regs, Regression{"flood",
			fmt.Sprintf("canonical outcome diverged from baseline: %+v → %+v", *b, *c)})
	}
	for _, base := range baseline.Stages {
		row, ok := cur[base.Name]
		if !ok {
			regs = append(regs, Regression{base.Name, "stage missing from current run"})
			continue
		}
		if base.AllocsPerOp >= 0 && row.AllocsPerOp > base.AllocsPerOp {
			regs = append(regs, Regression{base.Name,
				fmt.Sprintf("allocs/op grew %d → %d", base.AllocsPerOp, row.AllocsPerOp)})
		}
		bt, bok := baseline.Timing.Stages[base.Name]
		ct, cok := current.Timing.Stages[base.Name]
		if bok && cok && bt.NSPerOp > 0 &&
			float64(ct.NSPerOp) > float64(bt.NSPerOp)*NSRegressionFactor &&
			ct.NSPerOp > bt.NSPerOp+nsNoiseFloor {
			regs = append(regs, Regression{base.Name,
				fmt.Sprintf("ns/op regressed >%.0f×: %d → %d", NSRegressionFactor, bt.NSPerOp, ct.NSPerOp)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Stage != regs[j].Stage {
			return regs[i].Stage < regs[j].Stage
		}
		return regs[i].Detail < regs[j].Detail
	})
	return regs, nil
}
