package perf

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Capture configures optional profiling artifacts around a benched
// region. Empty paths disable the corresponding artifact; Start/stop
// bracket exactly the region, so a profile contains the benchmark and
// nothing else (no flag parsing, no artifact writing).
type Capture struct {
	// CPUProfile, when non-empty, writes a pprof CPU profile there.
	CPUProfile string
	// MemProfile, when non-empty, writes a post-GC heap profile there
	// at stop time.
	MemProfile string
	// Trace, when non-empty, writes a runtime/trace there.
	Trace string
}

// Enabled reports whether any artifact is configured.
func (c Capture) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Start begins capture and returns the stop function that finalizes
// every configured artifact. On error nothing is left running.
func (c Capture) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if c.CPUProfile != "" {
		cpuF, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("perf: cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		traceF, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("perf: trace: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuF != nil {
			pprof.StopCPUProfile()
			errs = append(errs, cpuF.Close())
		}
		if traceF != nil {
			trace.Stop()
			errs = append(errs, traceF.Close())
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				errs = append(errs, err)
			} else {
				runtime.GC() // live objects only: the retained set of the benched region
				errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
			}
		}
		return errors.Join(errs...)
	}, nil
}
