package perf

import (
	"fmt"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/cpm"
	"repro/internal/dpll"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pdn"
	"repro/internal/rng"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

// Sinks defeat dead-code elimination of the benched kernels. They are
// written, never read.
var (
	sinkPs    units.Picosecond
	sinkVolt  units.Volt
	sinkF     float64
	sinkRead  cpm.Reading
	sinkTrial chip.TrialResult
)

// StageGroups are the selectable -set values, in run order.
var StageGroups = []string{"kernel", "e2e", "fleet", "dc"}

// Stages builds the benchmark plan. quick selects the CI-sized
// iteration counts; the stage set itself is identical, so quick and
// full artifacts differ only in plan size (and the comparator refuses
// to mix them). groups filters by Stage.Group; empty means all.
func Stages(quick bool, groups ...string) ([]Stage, error) {
	want := map[string]bool{}
	for _, g := range groups {
		ok := false
		for _, known := range StageGroups {
			if g == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("perf: unknown stage group %q (have %v)", g, StageGroups)
		}
		want[g] = true
	}
	all := append(append(append(kernelStages(quick), e2eStages(quick)...), fleetStages(quick)...), dcStages(quick)...)
	if len(want) == 0 {
		return all, nil
	}
	var out []Stage
	for _, st := range all {
		if want[st.Group] {
			out = append(out, st)
		}
	}
	return out, nil
}

// pick returns the plan-sized iteration count.
func pick(quick bool, quickN, fullN int) int {
	if quick {
		return quickN
	}
	return fullN
}

// kernelStages benches every //atm:hotpath kernel the control loop is
// built from. All are single-goroutine and alloc-stable: their
// allocs/op rows gate in CI, and the hot ones must stay at zero.
func kernelStages(quick bool) []Stage {
	m := chip.NewReference()
	core := m.AllCores()[0]
	params := m.Profile().Params()
	vref := params.VRef
	cycle := core.Profile.DefaultFreq().CycleTime()
	pd := pdn.DefaultParams()
	w := workload.UBench()[0]

	return []Stage{
		{
			Name: "cpm_site_delay", Group: "kernel", AllocStable: true,
			Note:  "one CPM site path delay at VRef (cpm.SiteDelay)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				mon := cpm.New(core.Profile)
				sites := len(core.Profile.SiteSkewPs)
				for i := 0; i < iters; i++ {
					sinkPs = mon.SiteDelay(i%sites, vref)
				}
				return int64(iters), nil
			},
		},
		{
			Name: "cpm_measure", Group: "kernel", AllocStable: true,
			Note:  "worst-of-five quantized slack measurement (cpm.Measure)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				mon := cpm.New(core.Profile)
				for i := 0; i < iters; i++ {
					sinkRead = mon.Measure(cycle, vref)
				}
				return int64(iters), nil
			},
		},
		{
			Name: "dpll_step", Group: "kernel", AllocStable: true,
			Note:  "one DPLL control interval: measure + slew (dpll.Step)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				cfg := dpll.DefaultConfig(params.ThetaUnits, params.FMaxHW)
				loop, err := dpll.New(cpm.New(core.Profile), cfg, core.Profile.DefaultFreq())
				if err != nil {
					return 0, err
				}
				for i := 0; i < iters; i++ {
					sinkRead = loop.Step(vref)
				}
				return int64(iters), nil
			},
		},
		{
			Name: "pdn_steady_voltage", Group: "kernel", AllocStable: true,
			Note:  "DC operating point: loadline solve (pdn.SteadyVoltage)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					sinkVolt = pd.SteadyVoltage(units.Watt(40 + i%60))
				}
				return int64(iters), nil
			},
		},
		{
			Name: "pdn_step_response", Group: "kernel", AllocStable: true,
			Note:  "underdamped AC transient sample (pdn.StepResponse)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					sinkVolt = pd.StepResponse(10, float64(i%1000)*1e-9)
				}
				return int64(iters), nil
			},
		},
		{
			Name: "pdn_first_droop", Group: "kernel", AllocStable: true,
			Note:  "worst first-droop magnitude (pdn.FirstDroopPeak + SyncFactor)",
			Iters: pick(quick, 10_000, 200_000),
			Run: func(iters int) (int64, error) {
				for i := 0; i < iters; i++ {
					sinkVolt = pd.FirstDroopPeak(10 * pdn.SyncFactor(1+i%16))
					sinkF = pd.UncoveredFraction(float64(1 + i%200))
				}
				return int64(iters), nil
			},
		},
		{
			Name: "chip_run_trial", Group: "kernel", AllocStable: true,
			Note:  "one seeded workload trial incl. failure draw (chip.RunTrial)",
			Iters: pick(quick, 5_000, 50_000),
			Run: func(iters int) (int64, error) {
				mm := chip.NewReference()
				label := mm.AllCores()[0].Profile.Label
				src := rng.New(1)
				for i := 0; i < iters; i++ {
					res, err := mm.RunTrial(label, w, src)
					if err != nil {
						return 0, err
					}
					sinkTrial = res
				}
				return int64(iters), nil
			},
		},
	}
}

// e2eStages benches the paper's methodology end to end on the
// reference server, counting real trials through the obs plane so
// trials/sec means the same thing the ROADMAP's speed targets do. A
// fresh machine per op keeps iterations independent and deterministic.
func e2eStages(quick bool) []Stage {
	return []Stage{
		{
			Name: "characterize", Group: "e2e", AllocStable: true,
			Note:  "Sec. III-B characterization of the 16-core reference server",
			Iters: pick(quick, 1, 3),
			Run: func(iters int) (int64, error) {
				var trials int64
				for i := 0; i < iters; i++ {
					reg := obs.NewRegistry()
					mm := chip.NewReference()
					if _, err := charact.Characterize(mm, charact.Options{
						Trials: pick(quick, 1, 3),
						Obs:    reg,
					}); err != nil {
						return 0, err
					}
					trials += reg.Counter("atm_charact_runs_total").Value()
				}
				return trials, nil
			},
		},
		{
			Name: "tune", Group: "e2e", AllocStable: true,
			Note:  "Sec. VII-A stress-test deployment of the reference server",
			Iters: pick(quick, 1, 3),
			Run: func(iters int) (int64, error) {
				var trials int64
				for i := 0; i < iters; i++ {
					reg := obs.NewRegistry()
					mm := chip.NewReference()
					if _, err := tuning.Deploy(mm, tuning.Options{
						Passes: pick(quick, 1, 3),
						Obs:    reg,
					}); err != nil {
						return 0, err
					}
					trials += reg.Counter("atm_tune_runs_total").Value()
				}
				return trials, nil
			},
		},
	}
}

// fleetStages benches the parallel campaign engine. The worker pool
// makes allocation counts scheduling-dependent, so these stages are
// alloc-unstable: their allocs land in the timing section only.
func fleetStages(quick bool) []Stage {
	n := pick(quick, 2, 8)
	mk := func(name string, workers int) Stage {
		return Stage{
			Name: name, Group: "fleet", AllocStable: false,
			Note:  fmt.Sprintf("montecarlo sweep, %d generated server(s), %d worker(s)", n, workers),
			Iters: 1,
			Run: func(iters int) (int64, error) {
				var trials int64
				for i := 0; i < iters; i++ {
					reg := obs.NewRegistry()
					res, err := fleet.Run(fleet.MonteCarlo(n, 1), fleet.Options{
						Workers: workers,
						Obs:     reg,
					})
					if err != nil {
						return 0, err
					}
					if failed := res.Failed(); len(failed) > 0 {
						return 0, fmt.Errorf("fleet stage: %d job(s) failed: %v", len(failed), failed)
					}
					trials += reg.Counter("fleet_jobs_completed_total").Value()
				}
				return trials, nil
			},
		}
	}
	return []Stage{
		mk("fleet_sequential", 1),
		mk("fleet_workers4", 4),
	}
}
