package perf

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/chip"
	"repro/internal/fsp"
	"repro/internal/obs"
	"repro/internal/rng"
)

// The flood harness drives N logical pipelined operator sessions
// through the REAL fsp.Server internals — admission bucket, session
// gate, garbage breakers, per-verb latency histograms — with a
// single-goroutine seeded interleaver on a logical tick clock. Real
// TCP concurrency cannot give deterministic shed counts or latencies;
// the interleaver can, so BENCH_fsp.json's canonical section is a pure
// function of the options, while wall-clock throughput (req/s) is
// still measured around the loop and quarantined in the timing
// section.

// FloodOptions configures one flood run. The zero value is invalid;
// use DefaultFloodOptions as the base.
type FloodOptions struct {
	// Sessions is how many logical pipelined sessions contend.
	Sessions int
	// Commands is how many commands each admitted session issues.
	Commands int
	// Pipeline is each session's issue-ahead window: up to this many
	// commands may be in flight (issued, not yet executed) at once.
	Pipeline int
	// Seed drives the interleaver and the command mix.
	Seed uint64
	// Garbage is the per-mille rate of protocol-garbage lines mixed
	// into the command stream (0‰–1000‰) — the breaker's diet.
	Garbage int
	// MaxSessions, AcceptBurst, and GarbageThreshold arm the server's
	// guard plane (fsp.GuardOptions); 0 disables each guard.
	MaxSessions      int
	AcceptBurst      int64
	GarbageThreshold int
}

// DefaultFloodOptions is the baseline plan: enough contention to shed
// and trip breakers deterministically. quick shrinks it to CI size.
func DefaultFloodOptions(quick bool) FloodOptions {
	o := FloodOptions{
		Sessions:         16,
		Commands:         200,
		Pipeline:         8,
		Seed:             1,
		Garbage:          50,
		MaxSessions:      12,
		AcceptBurst:      14,
		GarbageThreshold: 4,
	}
	if quick {
		// Shrink the budget, not the contention: the quick plan must
		// still shed sessions, or the CI baseline never exercises the
		// guard plane.
		o.Commands = 50
	}
	return o
}

func (o FloodOptions) validate() error {
	if o.Sessions <= 0 || o.Commands <= 0 {
		return fmt.Errorf("perf: flood needs positive sessions and commands (got %d, %d)", o.Sessions, o.Commands)
	}
	if o.Pipeline <= 0 {
		return fmt.Errorf("perf: flood needs a positive pipeline window (got %d)", o.Pipeline)
	}
	if o.Garbage < 0 || o.Garbage > 1000 {
		return fmt.Errorf("perf: flood garbage rate %d‰ outside [0, 1000]", o.Garbage)
	}
	return nil
}

// floodVerbs is the seeded command mix: cheap liveness, telemetry
// reads, and CPM reprogramming — the operator traffic the paper's
// fine-tuning procedures generate.
var floodVerbs = []string{
	"ping t%d",
	"freq P0C3",
	"margins",
	"cpm P0C3",
	"cpm P0C3 4",
	"chip P0",
	"stats",
	"health",
}

// FloodResult is one run's outcome: everything except WallNS is a
// pure function of the options.
type FloodResult struct {
	Issued          int64
	Executed        int64
	ShedSessions    int64
	BreakerRejected int64
	Errors          int64
	P50Ticks        float64
	P95Ticks        float64
	P99Ticks        float64
	WallNS          int64
}

// pendingCmd is one issued-but-unexecuted command.
type pendingCmd struct {
	line      string
	issueTick int64
}

// floodSession is one logical operator session.
type floodSession struct {
	sess    *fsp.Session
	queue   []pendingCmd
	issued  int
	release func()
}

// Flood runs the harness and returns the measured outcome.
func Flood(o FloodOptions) (*FloodResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	srv := fsp.NewServer(fsp.NewController(chip.NewReference()))
	srv.Observe(reg)

	// One logical clock rules everything: guard-plane refill/open
	// windows, per-verb latency histograms, and the client-side
	// issue→execute distances all read the same tick counter.
	sw := NewStopwatchClock(nowNS)
	tick := func() int64 { return sw.Ticks() }
	srv.SetClock(tick)
	srv.Guard(fsp.GuardOptions{
		MaxSessions:      o.MaxSessions,
		AcceptCapacity:   o.AcceptBurst,
		GarbageThreshold: o.GarbageThreshold,
		Now:              tick,
	})
	latency := reg.Histogram("flood_latency_ticks", fsp.LatencyBuckets)

	res := &FloodResult{}
	src := rng.New(o.Seed)

	// Admission storm: every session connects up front, exactly like a
	// fleet of operator scripts starting at once. Shed sessions stay
	// shed — their command budget is never issued.
	var live []*floodSession
	for i := 0; i < o.Sessions; i++ {
		release, ok := srv.Admit()
		if !ok {
			res.ShedSessions++
			continue
		}
		live = append(live, &floodSession{
			sess:    srv.LocalSession(),
			release: release,
		})
	}

	sw.Start()
	for len(live) > 0 {
		// Seeded interleaver: pick one live session, let it issue a
		// burst into its pipeline window, then execute its oldest
		// queued command on this tick.
		si := src.Intn(len(live))
		s := live[si]

		burst := 1 + src.Intn(o.Pipeline)
		for b := 0; b < burst && s.issued < o.Commands && len(s.queue) < o.Pipeline; b++ {
			s.queue = append(s.queue, pendingCmd{
				line:      nextCommand(src, o, s.issued),
				issueTick: sw.Ticks(),
			})
			s.issued++
			res.Issued++
		}

		if len(s.queue) > 0 {
			cmd := s.queue[0]
			s.queue = s.queue[1:]
			t := sw.Tick() // one executed command per tick
			resp := s.sess.Exec(cmd.line)
			latency.Observe(float64(t - cmd.issueTick))
			res.Executed++
			if strings.HasPrefix(resp, "err") {
				res.Errors++
				if strings.Contains(resp, "breaker open") {
					res.BreakerRejected++
				}
			}
		}

		if s.issued >= o.Commands && len(s.queue) == 0 {
			s.release()
			live = append(live[:si], live[si+1:]...)
		}
	}
	sw.Stop()
	res.WallNS = sw.ElapsedNS()
	res.P50Ticks = latency.Quantile(0.5)
	res.P95Ticks = latency.Quantile(0.95)
	res.P99Ticks = latency.Quantile(0.99)
	return res, nil
}

// nextCommand draws one line of the seeded mix: mostly real verbs,
// o.Garbage‰ protocol garbage.
func nextCommand(src *rng.Source, o FloodOptions, seq int) string {
	if src.Intn(1000) < o.Garbage {
		return fmt.Sprintf("garbage%d", seq)
	}
	verb := floodVerbs[src.Intn(len(floodVerbs))]
	if strings.Contains(verb, "%d") {
		return fmt.Sprintf(verb, seq)
	}
	return verb
}

// FloodDoc assembles the BENCH_fsp.json artifact from a run.
func FloodDoc(o FloodOptions, quick bool, r *FloodResult) *Doc {
	shedRate := 0.0
	if o.Sessions > 0 {
		shedRate = float64(r.ShedSessions) / float64(o.Sessions)
	}
	reqPerSec := 0.0
	if r.WallNS > 0 {
		reqPerSec = float64(r.Executed) * 1e9 / float64(r.WallNS)
	}
	return &Doc{
		Bench:  "fsp",
		Schema: SchemaVersion,
		Quick:  quick,
		Flood: &FloodRow{
			Sessions:        o.Sessions,
			Commands:        o.Commands,
			Pipeline:        o.Pipeline,
			Seed:            o.Seed,
			Issued:          r.Issued,
			Executed:        r.Executed,
			ShedSessions:    r.ShedSessions,
			BreakerRejected: r.BreakerRejected,
			Errors:          r.Errors,
			ShedRate:        shedRate,
			P50Ticks:        r.P50Ticks,
			P95Ticks:        r.P95Ticks,
			P99Ticks:        r.P99Ticks,
		},
		Timing: Timing{
			CPUs:      runtime.NumCPU(),
			TotalNS:   r.WallNS,
			ReqPerSec: reqPerSec,
		},
	}
}
