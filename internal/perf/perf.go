// Package perf is the performance-observability plane: a structured
// microbenchmark runner over the //atm:hotpath kernel and the
// end-to-end tuning stages, a deterministic flood harness for the FSP
// service plane, pprof/runtime-trace capture of exactly the benched
// region, and a canonical BENCH_*.json artifact schema with a baseline
// regression gate.
//
// The package deliberately lives OUTSIDE atmlint's simulation scope
// (detrand/detflow): it is where wall-clock reads belong, and keeping
// the dependency direction one-way — perf imports the simulation, the
// simulation never imports perf — keeps the taint analysis able to
// prove the simulation itself never touches ambient time.
//
// Everything that lands in a checked-in artifact is split along one
// line: fields that are pure functions of (code, seed, iteration plan)
// go in the canonical sections and must be byte-identical across runs;
// fields that depend on the machine and the moment (ns/op, req/s,
// cpus) are quarantined in the single "timing" sub-object, which the
// determinism tests strip before comparing.
package perf

import "time"

// nowNS is the package's only wall-clock read path (profiled regions
// aside). Benchmark and flood timing flow through it.
func nowNS() int64 { return time.Now().UnixNano() }

// Stopwatch is a dual-clock timer: wall nanoseconds for throughput
// reporting, and a logical tick counter for everything that must stay
// deterministic (flood latencies, guard-plane clocks). The two axes
// never mix — wall time is read out only into timing sections, ticks
// only into canonical ones.
type Stopwatch struct {
	now     func() int64
	started int64
	elapsed int64
	running bool
	ticks   int64
}

// NewStopwatch returns a stopped stopwatch on the wall clock.
func NewStopwatch() *Stopwatch { return &Stopwatch{now: nowNS} }

// NewStopwatchClock returns a stopped stopwatch on a caller-supplied
// nanosecond clock (tests use a fake).
func NewStopwatchClock(now func() int64) *Stopwatch { return &Stopwatch{now: now} }

// Start begins (or resumes) wall accumulation. Starting a running
// stopwatch is a no-op.
func (s *Stopwatch) Start() {
	if s == nil || s.running {
		return
	}
	s.running = true
	s.started = s.now()
}

// Stop pauses wall accumulation. Stopping a stopped stopwatch is a
// no-op.
func (s *Stopwatch) Stop() {
	if s == nil || !s.running {
		return
	}
	s.elapsed += s.now() - s.started
	s.running = false
}

// ElapsedNS returns accumulated wall nanoseconds, including the open
// interval of a running stopwatch.
func (s *Stopwatch) ElapsedNS() int64 {
	if s == nil {
		return 0
	}
	if s.running {
		return s.elapsed + s.now() - s.started
	}
	return s.elapsed
}

// Tick advances the logical axis by one and returns the new value.
func (s *Stopwatch) Tick() int64 {
	if s == nil {
		return 0
	}
	s.ticks++
	return s.ticks
}

// Ticks returns the logical axis without advancing it.
func (s *Stopwatch) Ticks() int64 {
	if s == nil {
		return 0
	}
	return s.ticks
}
