package fsp

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/chip"
)

func startServerIdle(t *testing.T, idle time.Duration) (*Server, string) {
	t.Helper()
	ctl := NewController(chip.NewReference())
	srv := NewServer(ctl)
	srv.IdleTimeout = idle
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, l.Addr().String()
}

// TestServerIdleTimeout: a silent client is disconnected once the idle
// window passes, so a hung operator script cannot pin a session forever.
func TestServerIdleTimeout(t *testing.T) {
	_, addr := startServerIdle(t, 50*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop test teardown; the server already dropped the connection
	defer conn.Close()
	// One command proves the session is live.
	if _, err := fmt.Fprintln(conn, "ping alive"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() || sc.Text() != "ok pong alive" {
		t.Fatalf("ping got %q, err %v", sc.Text(), sc.Err())
	}
	// Then silence: the server must hang up, observed as EOF/reset on
	// our next read, well before the test's own deadline.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatalf("idle connection still served: %q", sc.Text())
	}
	if ne, ok := sc.Err().(net.Error); ok && ne.Timeout() {
		t.Fatal("our read deadline fired first: server never enforced its idle timeout")
	}
}

// TestServerIdleTimeoutRearmed: the timeout bounds inactivity, not total
// session length — a client issuing commands slower than the window but
// steadily must stay connected.
func TestServerIdleTimeoutRearmed(t *testing.T) {
	_, addr := startServerIdle(t, 200*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop test teardown; the session already quit
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for i := 0; i < 4; i++ {
		time.Sleep(100 * time.Millisecond) // half the window, repeatedly
		if _, err := fmt.Fprintf(conn, "ping t%d\n", i); err != nil {
			t.Fatalf("ping %d: session died despite steady activity: %v", i, err)
		}
		if !sc.Scan() || sc.Text() != fmt.Sprintf("ok pong t%d", i) {
			t.Fatalf("ping %d got %q, err %v", i, sc.Text(), sc.Err())
		}
	}
}

// TestServerCloseDisconnectsSessions: Close must not wait for connected
// clients to quit — in-flight sessions are forced off the wire.
func TestServerCloseDisconnectsSessions(t *testing.T) {
	ctl := NewController(chip.NewReference())
	srv := NewServer(ctl) // default 2-minute idle timeout: irrelevant here
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop test teardown; the server closed the connection first
	defer conn.Close()
	// Prove the session is established before closing the server.
	if _, err := fmt.Fprintln(conn, "ping up"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("session never answered: %v", sc.Err())
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a connected session")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	// The client observes the forced disconnect.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatalf("closed server still served: %q", sc.Text())
	}
}
