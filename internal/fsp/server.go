package fsp

import (
	"errors"
	"net"
	"sync"
)

// The network face of the service processor: on real hardware the FSP
// is reached over the service network; here ServeListener accepts any
// net.Listener (TCP in cmd/atmfsp, net.Pipe in tests) and runs one
// operator session per connection against a shared controller.
//
// The Controller itself is not concurrency-safe (it drives one machine),
// so the server serializes command execution with a mutex — matching the
// real firmware, which processes SCOM operations one at a time.

// Server accepts operator connections and serves sessions.
type Server struct {
	ctl *Controller

	mu sync.Mutex // serializes command execution across connections

	wg      sync.WaitGroup
	stateMu sync.Mutex // guards closing/listener against Serve↔Close races
	closed  bool
	closing chan struct{}

	listener net.Listener
}

// NewServer wraps a controller for network serving.
func NewServer(ctl *Controller) *Server {
	return &Server{ctl: ctl, closing: make(chan struct{})}
}

// Serve accepts connections on l until Close is called or the listener
// fails. It blocks; run it in a goroutine when the caller needs to
// continue.
func (s *Server) Serve(l net.Listener) error {
	s.stateMu.Lock()
	if s.closed {
		// Close won the race: never accept.
		s.stateMu.Unlock()
		return l.Close()
	}
	s.listener = l
	s.stateMu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return nil // orderly shutdown
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			//lint:ignore errdrop per-connection teardown: the peer is gone and there is no one to report a close failure to
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one session over a connection, serializing each command
// against the shared controller.
func (s *Server) serveConn(conn net.Conn) {
	sess := NewSession(s.ctl)
	locked := &lockedSession{sess: sess, mu: &s.mu}
	//lint:ignore errdrop a serve error is a client that hung up mid-session — normal connection lifecycle, not a server fault
	_ = locked.serve(conn)
}

// lockedSession wraps a session so each command executes under the
// server's mutex while the line I/O stays per-connection.
type lockedSession struct {
	sess *Session
	mu   *sync.Mutex
}

func (ls *lockedSession) serve(conn net.Conn) error {
	return ls.sess.serveWith(conn, conn, func(line string) string {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		return ls.sess.Exec(line)
	})
}

// Close stops accepting and waits for in-flight sessions to finish.
// It is idempotent and safe to call before, during, or after Serve.
func (s *Server) Close() error {
	s.stateMu.Lock()
	var err error
	if !s.closed {
		s.closed = true
		close(s.closing)
		if s.listener != nil {
			err = s.listener.Close()
		}
	}
	s.stateMu.Unlock()
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
