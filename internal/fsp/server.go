package fsp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
)

// The network face of the service processor: on real hardware the FSP
// is reached over the service network; here ServeListener accepts any
// net.Listener (TCP in cmd/atmfsp, net.Pipe in tests) and runs one
// operator session per connection against a shared controller.
//
// The Controller itself is not concurrency-safe (it drives one machine),
// so the server serializes command execution with a mutex — matching the
// real firmware, which processes SCOM operations one at a time.

// DefaultIdleTimeout is the per-connection inactivity bound: a client
// that sends nothing for this long is disconnected, so a hung operator
// script cannot pin a session goroutine (and, through it, shutdown)
// forever.
const DefaultIdleTimeout = 2 * time.Minute

// Server accepts operator connections and serves sessions.
type Server struct {
	ctl *Controller

	// IdleTimeout bounds the silence between commands on one
	// connection; reads past it fail and the session ends. Zero
	// disables the timeout. Set before Serve.
	IdleTimeout time.Duration

	mu sync.Mutex // serializes command execution across connections

	// reg, when non-nil, is forwarded to every per-connection session
	// (per-verb counters, the "stats" verb) and counts accepted
	// connections. Set via Observe before Serve.
	reg   *obs.Registry
	connc *obs.Counter

	// clock, when non-nil, is forwarded to every session for per-verb
	// latency histograms. Set via SetClock before Serve.
	clock func() int64

	// The guard plane (see guard.go). All handles are nil until Guard
	// is called, and every use is nil-safe — the disabled default
	// admits everything at ~zero cost.
	guardOpt GuardOptions
	gate     *guard.Gate
	bucket   *guard.Bucket
	shedC    *obs.Counter

	wg      sync.WaitGroup
	stateMu sync.Mutex // guards closing/listener/conns against Serve↔Close races
	closed  bool
	closing chan struct{}
	conns   map[net.Conn]struct{}

	listener net.Listener
}

// NewServer wraps a controller for network serving.
func NewServer(ctl *Controller) *Server {
	return &Server{
		ctl:         ctl,
		IdleTimeout: DefaultIdleTimeout,
		closing:     make(chan struct{}),
		conns:       map[net.Conn]struct{}{},
	}
}

// Observe attaches a metrics registry: accepted connections are
// counted, and every session serves per-verb counters plus the
// read-only "stats" verb over it. Call before Serve; nil disables.
func (s *Server) Observe(r *obs.Registry) {
	s.reg = r
	s.connc = r.Counter("fsp_server_connections_total")
}

// SetClock supplies the timestamp source every session times commands
// with (see Session.SetClock). cmd/atmfsp wires wall microseconds; the
// flood harness wires its logical tick clock. Call before Serve; nil
// (the default) disables latency measurement.
func (s *Server) SetClock(fn func() int64) { s.clock = fn }

// Serve accepts connections on l until Close is called or the listener
// fails. It blocks; run it in a goroutine when the caller needs to
// continue.
func (s *Server) Serve(l net.Listener) error {
	s.stateMu.Lock()
	if s.closed {
		// Close won the race: never accept.
		s.stateMu.Unlock()
		return l.Close()
	}
	s.listener = l
	s.stateMu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return nil // orderly shutdown
			default:
				return err
			}
		}
		s.stateMu.Lock()
		if s.closed {
			// Close raced the accept: refuse the connection promptly.
			s.stateMu.Unlock()
			//lint:ignore errdrop shutdown refusal: the peer observes the close, there is no session to report into
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.stateMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.stateMu.Lock()
				delete(s.conns, conn)
				s.stateMu.Unlock()
				//lint:ignore errdrop per-connection teardown: the peer is gone and there is no one to report a close failure to
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one session over a connection, serializing each command
// against the shared controller.
func (s *Server) serveConn(conn net.Conn) {
	s.connc.Inc()
	// Admission control: the token bucket absorbs connection storms,
	// the gate bounds concurrently served sessions. A shed connection
	// gets one in-band "err busy" line — the client's retryable busy
	// convention — and is closed by the caller's deferred Close, so
	// overload never hangs a peer and never leaks a session goroutine.
	release, ok := s.Admit()
	if !ok {
		s.shed(conn)
		return
	}
	defer release()
	sess := s.LocalSession()
	locked := &lockedSession{sess: sess, mu: &s.mu}
	var rw net.Conn = conn
	if s.IdleTimeout > 0 {
		rw = &idleConn{Conn: conn, timeout: s.IdleTimeout}
	}
	//lint:ignore errdrop a serve error is a client that hung up or idled out mid-session — normal connection lifecycle, not a server fault
	_ = locked.serve(rw)
}

// Admit runs the server's admission control — the accept token bucket,
// then the session gate — exactly as serveConn does for a network
// connection, and counts a shed on refusal. On success the returned
// release must be called when the session ends (serveConn defers it).
// In-process harnesses (atmctl flood) use Admit + LocalSession to push
// load through the real guard plane without sockets.
func (s *Server) Admit() (release func(), ok bool) {
	if !s.bucket.Allow() || !s.gate.TryAcquire() {
		s.shedC.Inc()
		return nil, false
	}
	return s.gate.Release, true
}

// LocalSession builds a session wired exactly as serveConn wires one
// for a network connection: the shared registry, the server clock, a
// fresh garbage breaker, and the server-wide health view. The caller
// drives it with Exec. A local session driven concurrently with
// network traffic must serialize externally (network sessions hold the
// server mutex per command); single-goroutine harnesses need not.
func (s *Server) LocalSession() *Session {
	sess := NewSession(s.ctl)
	if s.reg != nil {
		sess.Observe(s.reg)
	}
	sess.clock = s.clock
	brk := s.sessionBreaker()
	sess.breaker = brk
	sess.health = func() string { return s.healthLine(brk) }
	return sess
}

// shed refuses a connection in-band (the shed itself is counted by
// Admit).
func (s *Server) shed(conn net.Conn) {
	//lint:ignore errdrop shed notification is best-effort: the refused peer may already be gone, and there is no session to report into
	fmt.Fprintln(conn, "err busy")
}

// idleConn re-arms a read deadline before every read, so the effective
// deadline is inactivity, not total session length.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// lockedSession wraps a session so each command executes under the
// server's mutex while the line I/O stays per-connection.
type lockedSession struct {
	sess *Session
	mu   *sync.Mutex
}

func (ls *lockedSession) serve(conn net.Conn) error {
	return ls.sess.serveWith(conn, conn, func(line string) string {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		return ls.sess.Exec(line)
	})
}

// Close stops accepting, disconnects every connected session promptly,
// and waits for the session goroutines to finish. It is idempotent and
// safe to call before, during, or after Serve.
func (s *Server) Close() error {
	s.stateMu.Lock()
	var err error
	if !s.closed {
		s.closed = true
		close(s.closing)
		if s.listener != nil {
			err = s.listener.Close()
		}
		// Force in-flight sessions off the wire: without this, Close
		// would block until every connected client idled out or quit.
		for conn := range s.conns {
			//lint:ignore errdrop forced shutdown of a live session: the session goroutine observes the closed conn and exits
			conn.Close()
		}
	}
	s.stateMu.Unlock()
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
