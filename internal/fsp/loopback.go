package fsp

import (
	"bytes"
	"io"
	"strings"
)

// Loopback is a synchronous in-process transport that connects a
// Client directly to a Session with no goroutines, pipes, or wall
// time: each Write parses complete command lines and executes them
// immediately, appending the response lines to an internal buffer the
// next Read drains. Because execution happens inline on the caller's
// goroutine, a client driven over a Loopback is fully deterministic —
// the closed-loop consumers (the lifetime margin sentinel, tests) get
// operator-plane semantics, retries and all, without any scheduling.
//
// A Loopback composes with the fault plane: wrap it with
// Injector.WrapReadWriter to make the *link* drop or garble response
// lines while the session underneath stays healthy.
type Loopback struct {
	s *Session
	// pending accumulates written bytes until a full line arrives.
	pending []byte
	// buf holds response lines not yet read back.
	buf bytes.Buffer
}

// NewLoopback wraps a session in a synchronous transport.
func NewLoopback(s *Session) *Loopback { return &Loopback{s: s} }

// Write feeds command bytes in. Every complete line is executed
// synchronously through Session.Exec and its response buffered for
// Read. Partial trailing lines are held until their newline arrives.
func (l *Loopback) Write(p []byte) (int, error) {
	l.pending = append(l.pending, p...)
	for {
		nl := bytes.IndexByte(l.pending, '\n')
		if nl < 0 {
			return len(p), nil
		}
		line := strings.TrimSpace(string(l.pending[:nl]))
		l.pending = l.pending[nl+1:]
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			// Blank lines and comments are ignored, matching Serve.
		case line == "quit":
			// "quit" never reaches Exec in the served protocol; answer it
			// here the way the serve loop does.
			l.buf.WriteString("ok bye\n")
		default:
			l.buf.WriteString(l.s.Exec(line))
			l.buf.WriteByte('\n')
		}
	}
}

// Read drains buffered response lines. With nothing buffered it
// reports io.EOF; a retrying client treats that as a lost response,
// re-syncs, and the next Write replenishes the buffer.
func (l *Loopback) Read(p []byte) (int, error) {
	if l.buf.Len() == 0 {
		return 0, io.EOF
	}
	return l.buf.Read(p)
}
