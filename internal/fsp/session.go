package fsp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/guard"
	"repro/internal/obs"
)

// Session is the line-oriented operator protocol over a controller —
// what a test-floor script talks to. One command per line; responses
// are single lines starting with "ok" or "err".
//
// Commands:
//
//	getscom <hex-addr>                read a raw register
//	putscom <hex-addr> <value>        write a raw register
//	cpm <core> [<reduction>]          read/program a core's CPM reduction
//	mode <core> <static|atm>          set clocking mode
//	pstate <core> <MHz>               set the DVFS p-state
//	gate <core> <on|off>              power-gate a core
//	freq <core>                       settled frequency (MHz)
//	margins                           every core's CPM slack margin (sigmas)
//	chip <P0|P1>                      chip telemetry line
//	cores                             list core labels
//	ping <token>                      echo (client liveness / re-sync)
//	stats                             read-only metrics snapshot (JSON)
//	health                            read-only guard-plane state (JSON)
//	quit                              end the session
type Session struct {
	ctl *Controller
	ob  sessionObs

	// breaker, when non-nil, is the session's garbage circuit breaker:
	// repeated protocol garbage (empty lines, unknown verbs) trips it,
	// and while open every command is answered "err busy breaker open"
	// — the client's retryable busy convention. The network server
	// arms it per connection (Server.Guard); the nil default never
	// trips.
	breaker *guard.Breaker
	// health, when non-nil, renders the "health" verb's document. The
	// network server wires it to the server-wide view; a standalone
	// session reports only its own breaker.
	health func() string

	// clock, when non-nil, timestamps each command around dispatch and
	// records the delta in the per-verb fsp_session_latency histogram.
	// Units are the caller's: cmd/atmfsp wires wall-clock microseconds,
	// the deterministic flood harness wires logical ticks. Nil (the
	// default) skips latency measurement entirely.
	clock func() int64
}

// sessionObs is the session's pre-resolved metric handle set plus the
// registry the "stats" verb snapshots. The zero value is the disabled
// plane: counters no-op and "stats" answers the empty snapshot.
type sessionObs struct {
	reg     *obs.Registry
	verbs   map[string]*obs.Counter   // per known verb
	lat     map[string]*obs.Histogram // per known verb, clock units
	unknown *obs.Counter
	latUnk  *obs.Histogram
	errs    *obs.Counter
}

// LatencyBuckets is the fixed bucket layout of the per-verb
// fsp_session_latency histogram. The bounds are unit-agnostic — they
// cover wall-clock microseconds (1 µs … 100 ms) as well as the flood
// harness's logical ticks — and they are part of the BENCH_fsp.json
// schema: changing them invalidates checked-in quantile baselines.
var LatencyBuckets = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

// sessionVerbs is every verb the dispatcher understands ("quit" is
// handled by the serve loop and never reaches Exec).
var sessionVerbs = []string{
	"getscom", "putscom", "cpm", "mode", "pstate", "gate",
	"freq", "margins", "chip", "cores", "ping", "stats", "health",
}

// isKnownVerb reports whether cmd is part of the protocol. The check
// is independent of the metrics plane (s.ob.verbs exists only when a
// registry is attached) because the garbage breaker needs it always.
func isKnownVerb(cmd string) bool {
	for _, v := range sessionVerbs {
		if v == cmd {
			return true
		}
	}
	return false
}

// Observe resolves per-verb command counters and an in-band error
// counter against r, and makes r the registry the read-only "stats"
// verb dumps — the software analogue of reading telemetry SCOMs over
// the wire. Call before serving traffic; nil disables again.
func (s *Session) Observe(r *obs.Registry) {
	if r == nil {
		s.ob = sessionObs{}
		return
	}
	verbs := make(map[string]*obs.Counter, len(sessionVerbs))
	lat := make(map[string]*obs.Histogram, len(sessionVerbs))
	for _, v := range sessionVerbs {
		verbs[v] = r.Counter("fsp_session_commands_total", "verb", v)
		lat[v] = r.Histogram("fsp_session_latency", LatencyBuckets, "verb", v)
	}
	s.ob = sessionObs{
		reg:     r,
		verbs:   verbs,
		lat:     lat,
		unknown: r.Counter("fsp_session_commands_total", "verb", "unknown"),
		latUnk:  r.Histogram("fsp_session_latency", LatencyBuckets, "verb", "unknown"),
		errs:    r.Counter("fsp_session_errors_total"),
	}
}

// SetClock supplies the timestamp source for per-verb latency
// histograms. Each Exec samples the clock before and after dispatch
// and observes the delta; units are whatever the clock counts (the
// network server wires wall microseconds, the flood harness logical
// ticks). Nil disables measurement — the default, and the hot path
// then never calls the clock.
func (s *Session) SetClock(fn func() int64) { s.clock = fn }

// NewSession wraps a controller.
func NewSession(ctl *Controller) *Session { return &Session{ctl: ctl} }

// MaxLineBytes caps one command line. A line over the cap is consumed
// to its newline and answered with "err line too long" in-band — the
// session survives, instead of the scanner silently stopping with a
// buffer overflow as an out-of-band transport error.
const MaxLineBytes = 64 * 1024

// Serve processes commands from r and writes responses to w until EOF
// or "quit". Protocol errors are reported in-band; only transport
// errors are returned.
func (s *Session) Serve(r io.Reader, w io.Writer) error {
	return s.serveWith(r, w, s.Exec)
}

// serveWith is Serve with a pluggable executor — the network server
// wraps Exec in a lock so concurrent connections serialize against the
// shared controller.
func (s *Session) serveWith(r io.Reader, w io.Writer, exec func(string) string) error {
	br := bufio.NewReaderSize(r, 4096)
	for {
		raw, tooLong, err := readCappedLine(br, MaxLineBytes)
		if err != nil && !errors.Is(err, io.EOF) {
			return err // transport error
		}
		atEOF := err != nil
		if tooLong {
			if _, werr := fmt.Fprintln(w, "err line too long"); werr != nil {
				return werr
			}
		} else if line := strings.TrimSpace(raw); line != "" && !strings.HasPrefix(line, "#") {
			if line == "quit" {
				if _, werr := fmt.Fprintln(w, "ok bye"); werr != nil {
					return werr
				}
				return nil
			}
			if _, werr := fmt.Fprintln(w, exec(line)); werr != nil {
				return werr
			}
		}
		if atEOF {
			return nil
		}
	}
}

// readCappedLine reads one newline-terminated line of at most cap
// bytes. A longer line is consumed up to and including its newline and
// reported with tooLong=true so the protocol can answer in-band. A
// final unterminated line before EOF is returned with err == io.EOF.
func readCappedLine(br *bufio.Reader, limit int) (line string, tooLong bool, err error) {
	var buf []byte
	for {
		frag, rerr := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if rerr == nil || errors.Is(rerr, io.EOF) {
			s := strings.TrimSuffix(string(buf), "\n")
			if len(s) > limit {
				return "", true, rerr
			}
			return s, false, rerr
		}
		if !errors.Is(rerr, bufio.ErrBufferFull) {
			return string(buf), false, rerr
		}
		if len(buf) > limit {
			// Over the cap mid-line: discard the remainder.
			for {
				_, derr := br.ReadSlice('\n')
				if derr == nil || errors.Is(derr, io.EOF) {
					return "", true, derr
				}
				if !errors.Is(derr, bufio.ErrBufferFull) {
					return "", true, derr
				}
			}
		}
	}
}

// Exec runs one command line and returns the response line.
func (s *Session) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		s.ob.errs.Inc()
		s.breaker.Failure()
		return "err empty command"
	}
	cmd, args := fields[0], fields[1:]
	if s.clock == nil {
		return s.execVerb(cmd, args)
	}
	began := s.clock()
	resp := s.execVerb(cmd, args)
	s.observeLatency(cmd, began)
	return resp
}

// observeLatency records one command's clock delta in the per-verb
// latency histogram. With no registry attached every handle is nil and
// the whole sequence is allocation-free (pinned by a test).
func (s *Session) observeLatency(cmd string, began int64) {
	h, known := s.ob.lat[cmd]
	if !known {
		h = s.ob.latUnk
	}
	h.Observe(float64(s.clock() - began))
}

// execVerb runs one parsed command: counters, breaker policy, dispatch.
func (s *Session) execVerb(cmd string, args []string) string {
	if vc, known := s.ob.verbs[cmd]; known {
		vc.Inc()
	} else {
		s.ob.unknown.Inc()
	}
	if cmd == "health" {
		// Diagnostics bypass the breaker: an operator must be able to
		// read the guard plane exactly when the session is being shed.
		if len(args) != 0 {
			s.ob.errs.Inc()
			return "err usage: health"
		}
		return "ok " + s.healthDoc()
	}
	if !s.breaker.Allow() {
		s.ob.errs.Inc()
		return "err busy breaker open"
	}
	known := isKnownVerb(cmd)
	out, err := s.dispatch(cmd, args)
	// The breaker tracks protocol garbage, not command outcomes: an
	// unknown verb is a peer speaking the wrong protocol and counts as
	// a failure; a well-formed command that errs (bad core label, SCOM
	// fault) is healthy protocol and resets the garbage streak.
	if known {
		s.breaker.Success()
	} else {
		s.breaker.Failure()
	}
	if err != nil {
		s.ob.errs.Inc()
		return "err " + err.Error()
	}
	if out == "" {
		return "ok"
	}
	return "ok " + out
}

// healthDoc renders the "health" verb's JSON document.
func (s *Session) healthDoc() string {
	if s.health != nil {
		return s.health()
	}
	raw, err := json.Marshal(healthReport{
		Breaker:         s.breaker.State().String(),
		BreakerRejected: s.breaker.Rejected(),
	})
	if err != nil {
		return "{}"
	}
	return string(raw)
}

func (s *Session) dispatch(cmd string, args []string) (string, error) {
	switch cmd {
	case "getscom":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: getscom <hex-addr>")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(a)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%#x", v), nil

	case "putscom":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: putscom <hex-addr> <value>")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return "", err
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 0, 64)
		if err != nil {
			return "", fmt.Errorf("bad value %q", args[1])
		}
		return "", s.ctl.Putscom(a, v)

	case "cpm":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf("usage: cpm <core> [<reduction>]")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		addr := MakeCoreAddr(ci, ki, regCPMReduction)
		if len(args) == 2 {
			red, err := strconv.Atoi(args[1])
			if err != nil || red < 0 {
				return "", fmt.Errorf("bad reduction %q", args[1])
			}
			return "", s.ctl.Putscom(addr, uint64(red))
		}
		v, err := s.ctl.Getscom(addr)
		if err != nil {
			return "", err
		}
		return strconv.FormatUint(v, 10), nil

	case "mode":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: mode <core> <static|atm>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		var v uint64
		switch args[1] {
		case "static":
			v = 0
		case "atm":
			v = 1
		default:
			return "", fmt.Errorf("mode %q not static|atm", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regMode), v)

	case "pstate":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: pstate <core> <MHz>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		mhz, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			return "", fmt.Errorf("bad p-state %q", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regPState), mhz)

	case "gate":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: gate <core> <on|off>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		var v uint64
		switch args[1] {
		case "on":
			v = 1
		case "off":
			v = 0
		default:
			return "", fmt.Errorf("gate %q not on|off", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regGated), v)

	case "freq":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: freq <core>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(MakeCoreAddr(ci, ki, regFreq))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d MHz", v), nil

	case "margins":
		if len(args) != 0 {
			return "", fmt.Errorf("usage: margins")
		}
		// Read-only batch telemetry: every core's CPM slack margin to the
		// worst-case workload envelope, in per-trial sigmas, in register
		// address order. One round trip reads the whole server — the
		// margin sentinel's per-sample poll.
		var sb strings.Builder
		for ci, ch := range s.ctl.m.Chips {
			for ki, core := range ch.Cores {
				v, err := s.ctl.Getscom(MakeCoreAddr(ci, ki, regMargin))
				if err != nil {
					return "", err
				}
				if sb.Len() > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(fmt.Sprintf("%s=%.3f", core.Profile.Label, float64(int64(v))/1000))
			}
		}
		return sb.String(), nil

	case "chip":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: chip <label>")
		}
		ci := -1
		for i, ch := range s.ctl.m.Chips {
			if ch.Profile.Label == args[0] {
				ci = i
			}
		}
		if ci < 0 {
			return "", fmt.Errorf("no chip %q", args[0])
		}
		p, err := s.ctl.Getscom(MakeChipAddr(ci, regChipPower))
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(MakeChipAddr(ci, regChipVolt))
		if err != nil {
			return "", err
		}
		t, err := s.ctl.Getscom(MakeChipAddr(ci, regChipTemp))
		if err != nil {
			return "", err
		}
		ok, err := s.ctl.Getscom(MakeChipAddr(ci, regChipInBudg))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("power=%.1fW supply=%dmV temp=%.1fC budget=%d",
			float64(p)/1000, v, float64(t)/1000, ok), nil

	case "cores":
		return strings.Join(s.ctl.Labels(), " "), nil

	case "ping":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: ping <token>")
		}
		// Echo for liveness probes and client re-sync: the token lets a
		// client discard stale response lines after a transport fault.
		return "pong " + args[0], nil

	case "stats":
		if len(args) != 0 {
			return "", fmt.Errorf("usage: stats")
		}
		// Read-only: one compact JSON line of every registered metric.
		// With no registry attached the snapshot is legitimately empty.
		return string(s.ob.reg.SnapshotJSON()), nil

	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}

func parseAddr(s string) (Addr, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return Addr(v), nil
}
