package fsp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Session is the line-oriented operator protocol over a controller —
// what a test-floor script talks to. One command per line; responses
// are single lines starting with "ok" or "err".
//
// Commands:
//
//	getscom <hex-addr>                read a raw register
//	putscom <hex-addr> <value>        write a raw register
//	cpm <core> [<reduction>]          read/program a core's CPM reduction
//	mode <core> <static|atm>          set clocking mode
//	pstate <core> <MHz>               set the DVFS p-state
//	gate <core> <on|off>              power-gate a core
//	freq <core>                       settled frequency (MHz)
//	chip <P0|P1>                      chip telemetry line
//	cores                             list core labels
//	quit                              end the session
type Session struct {
	ctl *Controller
}

// NewSession wraps a controller.
func NewSession(ctl *Controller) *Session { return &Session{ctl: ctl} }

// Serve processes commands from r and writes responses to w until EOF
// or "quit". Protocol errors are reported in-band; only transport
// errors are returned.
func (s *Session) Serve(r io.Reader, w io.Writer) error {
	return s.serveWith(r, w, s.Exec)
}

// serveWith is Serve with a pluggable executor — the network server
// wraps Exec in a lock so concurrent connections serialize against the
// shared controller.
func (s *Session) serveWith(r io.Reader, w io.Writer, exec func(string) string) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			if _, err := fmt.Fprintln(w, "ok bye"); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintln(w, exec(line)); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Exec runs one command line and returns the response line.
func (s *Session) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "err empty command"
	}
	cmd, args := fields[0], fields[1:]
	out, err := s.dispatch(cmd, args)
	if err != nil {
		return "err " + err.Error()
	}
	if out == "" {
		return "ok"
	}
	return "ok " + out
}

func (s *Session) dispatch(cmd string, args []string) (string, error) {
	switch cmd {
	case "getscom":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: getscom <hex-addr>")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(a)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%#x", v), nil

	case "putscom":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: putscom <hex-addr> <value>")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return "", err
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 0, 64)
		if err != nil {
			return "", fmt.Errorf("bad value %q", args[1])
		}
		return "", s.ctl.Putscom(a, v)

	case "cpm":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf("usage: cpm <core> [<reduction>]")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		addr := MakeCoreAddr(ci, ki, regCPMReduction)
		if len(args) == 2 {
			red, err := strconv.Atoi(args[1])
			if err != nil || red < 0 {
				return "", fmt.Errorf("bad reduction %q", args[1])
			}
			return "", s.ctl.Putscom(addr, uint64(red))
		}
		v, err := s.ctl.Getscom(addr)
		if err != nil {
			return "", err
		}
		return strconv.FormatUint(v, 10), nil

	case "mode":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: mode <core> <static|atm>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		var v uint64
		switch args[1] {
		case "static":
			v = 0
		case "atm":
			v = 1
		default:
			return "", fmt.Errorf("mode %q not static|atm", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regMode), v)

	case "pstate":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: pstate <core> <MHz>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		mhz, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			return "", fmt.Errorf("bad p-state %q", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regPState), mhz)

	case "gate":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: gate <core> <on|off>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		var v uint64
		switch args[1] {
		case "on":
			v = 1
		case "off":
			v = 0
		default:
			return "", fmt.Errorf("gate %q not on|off", args[1])
		}
		return "", s.ctl.Putscom(MakeCoreAddr(ci, ki, regGated), v)

	case "freq":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: freq <core>")
		}
		ci, ki, err := s.ctl.CoreAddrByLabel(args[0])
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(MakeCoreAddr(ci, ki, regFreq))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d MHz", v), nil

	case "chip":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: chip <label>")
		}
		ci := -1
		for i, ch := range s.ctl.m.Chips {
			if ch.Profile.Label == args[0] {
				ci = i
			}
		}
		if ci < 0 {
			return "", fmt.Errorf("no chip %q", args[0])
		}
		p, err := s.ctl.Getscom(MakeChipAddr(ci, regChipPower))
		if err != nil {
			return "", err
		}
		v, err := s.ctl.Getscom(MakeChipAddr(ci, regChipVolt))
		if err != nil {
			return "", err
		}
		t, err := s.ctl.Getscom(MakeChipAddr(ci, regChipTemp))
		if err != nil {
			return "", err
		}
		ok, err := s.ctl.Getscom(MakeChipAddr(ci, regChipInBudg))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("power=%.1fW supply=%dmV temp=%.1fC budget=%d",
			float64(p)/1000, v, float64(t)/1000, ok), nil

	case "cores":
		return strings.Join(s.ctl.Labels(), " "), nil

	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}

func parseAddr(s string) (Addr, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return Addr(v), nil
}
