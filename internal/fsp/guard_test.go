package fsp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/obs"
)

// startGuardedServer is startServer with a guard plane and registry.
func startGuardedServer(t *testing.T, g GuardOptions) (*Server, string, *obs.Registry) {
	t.Helper()
	ctl := NewController(chip.NewReference())
	srv := NewServer(ctl)
	reg := obs.NewRegistry()
	srv.Observe(reg)
	srv.Guard(g)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, l.Addr().String(), reg
}

// TestSessionGateSheds floods the server past MaxSessions and demands
// every surplus connection get the in-band busy line, with the gate
// recovering as sessions end.
func TestSessionGateSheds(t *testing.T) {
	_, addr, reg := startGuardedServer(t, GuardOptions{MaxSessions: 2})

	// Two sessions pin the gate.
	var held []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, conn)
		// Prove the session is live (and therefore holds a gate slot)
		// before flooding.
		//lint:ignore errdrop a write failure surfaces as the read assertion below failing
		fmt.Fprintln(conn, "ping hold")
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil || strings.TrimSpace(line) != "ok pong hold" {
			t.Fatalf("held session %d not live: %q, %v", i, line, err)
		}
	}

	// The flood: every connection over the limit is shed in-band.
	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		line, rerr := bufio.NewReader(conn).ReadString('\n')
		//lint:ignore errdrop test-side teardown of a shed connection
		conn.Close()
		if rerr != nil || strings.TrimSpace(line) != "err busy" {
			t.Fatalf("flood conn %d: got %q, %v; want in-band err busy", i, line, rerr)
		}
	}

	// Release the gate; a new session must be admitted again.
	for _, conn := range held {
		//lint:ignore errdrop best-effort goodbye; the close below frees the gate slot either way
		fmt.Fprintln(conn, "quit")
		//lint:ignore errdrop test-side teardown
		conn.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := dialScript(t, addr, "ping again")
		if len(out) > 0 && out[0] == "ok pong again" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never recovered after sessions ended: %v", out)
		}
	}

	snap := string(reg.SnapshotJSON())
	if !strings.Contains(snap, "fsp_server_shed_total") || !strings.Contains(snap, "guard_gate_shed_total") {
		t.Errorf("shed metrics missing from snapshot:\n%s", snap)
	}
}

// TestFloodNoGoroutineLeak sheds a burst of connections and verifies
// the goroutine count returns to baseline — overload must not leak
// session goroutines.
func TestFloodNoGoroutineLeak(t *testing.T) {
	_, addr, _ := startGuardedServer(t, GuardOptions{MaxSessions: 1})

	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop a write failure surfaces as the read assertion below failing
	fmt.Fprintln(hold, "ping hold")
	if line, err := bufio.NewReader(hold).ReadString('\n'); err != nil || strings.TrimSpace(line) != "ok pong hold" {
		t.Fatalf("hold session not live: %q, %v", line, err)
	}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 40; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		//lint:ignore errdrop the shed reply is best-effort and the test only cares about goroutine accounting
		bufio.NewReader(conn).ReadString('\n')
		//lint:ignore errdrop test-side teardown of a shed connection
		conn.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked under flood: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	//lint:ignore errdrop test-side teardown
	hold.Close()
}

// TestSessionBreakerTripAndRecover drives one session through garbage
// → open → half-open → closed, entirely on the deterministic event
// clock, and checks the health verb reports every stage.
func TestSessionBreakerTripAndRecover(t *testing.T) {
	run := func() ([]string, string) {
		_, addr, reg := startGuardedServer(t, GuardOptions{
			GarbageThreshold: 3,
			BreakerOpenTicks: 3,
			BreakerProbes:    1,
		})
		script := []string{
			"health",      // closed
			"bogus one",   // garbage 1
			"bogus two",   // garbage 2
			"bogus three", // garbage 3 → trips open at event tick 3
			"cores",       // tick 4, elapsed 1 < 3: shed
			"health",      // diagnostics answer while open (no tick)
			"cores",       // tick 5, elapsed 2 < 3: shed
			"cores",       // tick 6, elapsed 3: half-open probe, executes
			"health",      // probe succeeded → closed again
		}
		return dialScript(t, addr, script...), string(reg.SnapshotJSON())
	}
	out, snap := run()
	if len(out) != 10 { // 9 responses + ok bye
		t.Fatalf("got %d response lines: %v", len(out), out)
	}
	if !strings.Contains(out[0], `"breaker":"closed"`) {
		t.Errorf("initial health = %q, want closed breaker", out[0])
	}
	for i := 1; i <= 3; i++ {
		if !strings.HasPrefix(out[i], "err unknown command") {
			t.Errorf("garbage line %d answered %q", i, out[i])
		}
	}
	if out[4] != "err busy breaker open" {
		t.Errorf("first shed command answered %q, want err busy breaker open", out[4])
	}
	if !strings.Contains(out[5], `"breaker":"open"`) {
		t.Errorf("health while open = %q", out[5])
	}
	if out[6] != "err busy breaker open" {
		t.Errorf("second shed command answered %q", out[6])
	}
	if !strings.HasPrefix(out[7], "ok ") {
		t.Errorf("half-open probe answered %q, want the cores listing", out[7])
	}
	if !strings.Contains(out[8], `"breaker":"closed"`) {
		t.Errorf("health after recovery = %q, want closed breaker", out[8])
	}

	// Determinism: the same script produces byte-identical responses
	// and metrics on a fresh server.
	out2, snap2 := run()
	if strings.Join(out, "\n") != strings.Join(out2, "\n") {
		t.Fatalf("breaker responses not deterministic:\n%v\nvs\n%v", out, out2)
	}
	if snap != snap2 {
		t.Fatalf("guard metrics not deterministic:\n%s\nvs\n%s", snap, snap2)
	}
}

// TestHealthVerbFields checks the server-wide health document.
func TestHealthVerbFields(t *testing.T) {
	_, addr, _ := startGuardedServer(t, GuardOptions{MaxSessions: 4, GarbageThreshold: 5})
	out := dialScript(t, addr, "health")
	if len(out) != 2 || !strings.HasPrefix(out[0], "ok {") {
		t.Fatalf("health answered %v", out)
	}
	doc := strings.TrimPrefix(out[0], "ok ")
	for _, field := range []string{
		`"breaker":"closed"`, `"breaker_rejected":0`, `"active_sessions":1`,
		`"max_sessions":4`, `"accept_sheds":0`, `"session_sheds":0`,
	} {
		if !strings.Contains(doc, field) {
			t.Errorf("health doc missing %s: %s", field, doc)
		}
	}
}

// TestStandaloneSessionHealth: the verb answers (with the session-only
// view) even without a network server or guard plane.
func TestStandaloneSessionHealth(t *testing.T) {
	sess := NewSession(NewController(chip.NewReference()))
	out := sess.Exec("health")
	if out != `ok {"breaker":"closed","breaker_rejected":0,"active_sessions":0,"max_sessions":0,"accept_sheds":0,"session_sheds":0}` {
		t.Fatalf("standalone health = %q", out)
	}
}

// scriptedTransport answers each written line with the next canned
// reply, regardless of content — a server whose responses the test
// fully controls.
type scriptedTransport struct {
	replies []string
	writes  []string
}

func newScriptedTransport(replies ...string) *scriptedTransport {
	return &scriptedTransport{replies: replies}
}

func (s *scriptedTransport) Write(p []byte) (int, error) {
	s.writes = append(s.writes, string(p))
	return len(p), nil
}

func (s *scriptedTransport) Read(p []byte) (int, error) {
	if len(s.replies) == 0 {
		return 0, io.EOF
	}
	line := s.replies[0] + "\n"
	s.replies = s.replies[1:]
	return copy(p, line), nil
}

// TestClientRetriesBusy proves the client treats the shed reply as
// retryable and succeeds once the server has headroom again.
func TestClientRetriesBusy(t *testing.T) {
	script := newScriptedTransport(
		"err busy",
		"ok pong sync-1",
		"ok pong probe-ok",
	)
	c := NewClient(script, ClientOptions{Retries: 2})
	out, err := c.Exec("ping probe-ok")
	if err != nil {
		t.Fatalf("Exec = %v", err)
	}
	if out != "pong probe-ok" {
		t.Fatalf("payload = %q", out)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestClientBusyExhaustion: a server that never recovers yields
// ErrExhausted wrapping the busy CmdError.
func TestClientBusyExhaustion(t *testing.T) {
	script := newScriptedTransport(
		"err busy", "ok pong sync-1",
		"err busy breaker open", "ok pong sync-2",
		"err busy",
	)
	c := NewClient(script, ClientOptions{Retries: 2})
	_, err := c.Exec("cores")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	var cerr *CmdError
	if !errors.As(err, &cerr) || !cerr.Busy() {
		t.Fatalf("err = %v, want to wrap a busy CmdError", err)
	}
}

// TestClientCancelDuringBackoff closes the cancel channel and demands
// the retry loop exits with ErrCanceled instead of sleeping out the
// schedule.
func TestClientCancelDuringBackoff(t *testing.T) {
	cancel := make(chan struct{})
	script := newScriptedTransport("err busy")
	slept := false
	c := NewClient(script, ClientOptions{
		Retries: 1000,
		Cancel:  cancel,
		Sleep: func(d time.Duration, stop <-chan struct{}) {
			// The first backoff cancels mid-sleep, like a shutdown
			// arriving while the client waits.
			slept = true
			close(cancel)
			RealSleep(d, stop)
		},
	})
	start := time.Now()
	_, err := c.Exec("cores")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrExhausted) {
		t.Fatal("cancellation must be distinct from retry exhaustion")
	}
	if !slept {
		t.Fatal("Sleep hook never ran")
	}
	// 1000 retries of exponential backoff would take ~1000s; prompt
	// cancellation returns almost immediately.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestClientCancelBeforeExec: an already-fired cancel aborts at the
// first backoff without draining the transport.
func TestClientCancelBeforeExec(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	script := newScriptedTransport("err busy")
	c := NewClient(script, ClientOptions{Retries: 5, Cancel: cancel})
	_, err := c.Exec("cores")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestRealSleepCancels pins the helper's early return.
func TestRealSleepCancels(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	RealSleep(time.Hour, cancel)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RealSleep ignored cancel for %v", elapsed)
	}
}
