package fsp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chip"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	return NewController(chip.NewReference())
}

func TestAddrPacking(t *testing.T) {
	a := MakeCoreAddr(1, 5, regFreq)
	if a.chip() != 1 || a.core() != 5 || a.fn() != regFreq {
		t.Errorf("address round trip failed: %#x → %d/%d/%d", uint32(a), a.chip(), a.core(), a.fn())
	}
	ca := MakeChipAddr(0, regChipPower)
	if ca.core() != 0xF || ca.chip() != 0 {
		t.Errorf("chip address wrong: %#x", uint32(ca))
	}
}

func TestScomCPMRoundTrip(t *testing.T) {
	ctl := newCtl(t)
	addr := MakeCoreAddr(0, 3, regCPMReduction)
	if err := ctl.Putscom(addr, 6); err != nil {
		t.Fatal(err)
	}
	v, err := ctl.Getscom(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("read back %d, want 6", v)
	}
	// The underlying machine must be programmed.
	core, err := ctl.Machine().Core("P0C3")
	if err != nil {
		t.Fatal(err)
	}
	if core.Reduction() != 6 {
		t.Errorf("machine reduction %d", core.Reduction())
	}
}

func TestScomValidation(t *testing.T) {
	ctl := newCtl(t)
	if err := ctl.Putscom(MakeCoreAddr(0, 0, regCPMReduction), 99); err == nil {
		t.Error("reduction beyond tap range accepted")
	}
	if err := ctl.Putscom(MakeCoreAddr(0, 0, regFreq), 1); err == nil {
		t.Error("write to read-only frequency register accepted")
	}
	if err := ctl.Putscom(MakeChipAddr(0, regChipPower), 1); err == nil {
		t.Error("write to chip telemetry accepted")
	}
	if _, err := ctl.Getscom(MakeCoreAddr(7, 0, regFreq)); err == nil {
		t.Error("bogus chip index accepted")
	}
	if _, err := ctl.Getscom(MakeCoreAddr(0, 12, regFreq)); err == nil {
		t.Error("bogus core index accepted")
	}
	if err := ctl.Putscom(MakeCoreAddr(0, 0, regMode), 3); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := ctl.Putscom(MakeCoreAddr(0, 0, regPState), 1234); err == nil {
		t.Error("off-ladder p-state accepted")
	}
}

func TestTelemetryReflectsWrites(t *testing.T) {
	ctl := newCtl(t)
	fAddr := MakeCoreAddr(0, 3, regFreq)
	before, err := ctl.Getscom(fAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Putscom(MakeCoreAddr(0, 3, regCPMReduction), 6); err != nil {
		t.Fatal(err)
	}
	after, err := ctl.Getscom(fAddr)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before+100 {
		t.Errorf("telemetry did not track the CPM write: %d → %d", before, after)
	}
}

func TestChipTelemetry(t *testing.T) {
	ctl := newCtl(t)
	p, err := ctl.Getscom(MakeChipAddr(0, regChipPower))
	if err != nil {
		t.Fatal(err)
	}
	if p < 40_000 || p > 80_000 { // mW
		t.Errorf("idle chip power %d mW implausible", p)
	}
	v, err := ctl.Getscom(MakeChipAddr(0, regChipVolt))
	if err != nil {
		t.Fatal(err)
	}
	if v < 1200 || v > 1300 {
		t.Errorf("supply %d mV implausible", v)
	}
	inb, err := ctl.Getscom(MakeChipAddr(0, regChipInBudg))
	if err != nil {
		t.Fatal(err)
	}
	if inb != 1 {
		t.Error("idle chip outside thermal budget")
	}
}

// TestSessionScript drives the operator protocol end to end, the way
// the test floor would.
func TestSessionScript(t *testing.T) {
	ctl := newCtl(t)
	script := strings.Join([]string{
		"# deployment script",
		"cores",
		"cpm P0C3 6",
		"cpm P0C3",
		"freq P0C3",
		"mode P0C7 static",
		"pstate P0C7 3700",
		"gate P1C0 on",
		"chip P0",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := NewSession(ctl).Serve(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	for i, l := range lines {
		if !strings.HasPrefix(l, "ok") {
			t.Errorf("line %d not ok: %q", i, l)
		}
	}
	if len(lines) != 9 {
		t.Fatalf("got %d response lines, want 9", len(lines))
	}
	if !strings.Contains(lines[0], "P0C0") || !strings.Contains(lines[0], "P1C7") {
		t.Errorf("cores listing wrong: %q", lines[0])
	}
	if lines[2] != "ok 6" {
		t.Errorf("cpm readback = %q", lines[2])
	}
	if !strings.Contains(lines[3], "MHz") {
		t.Errorf("freq response = %q", lines[3])
	}
	if !strings.Contains(lines[7], "power=") || !strings.Contains(lines[7], "budget=1") {
		t.Errorf("chip telemetry = %q", lines[7])
	}
	// Effects landed on the machine.
	core, err := ctl.Machine().Core("P0C7")
	if err != nil {
		t.Fatal(err)
	}
	if core.Mode() != chip.ModeStatic || core.PState() != 3700 {
		t.Error("mode/pstate commands did not apply")
	}
	g, err := ctl.Machine().Core("P1C0")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Gated() {
		t.Error("gate command did not apply")
	}
}

func TestSessionErrorsInBand(t *testing.T) {
	ctl := newCtl(t)
	s := NewSession(ctl)
	for _, bad := range []string{
		"cpm P9C9 1",
		"cpm P0C0 -1",
		"cpm",
		"mode P0C0 turbo",
		"pstate P0C0 nine",
		"gate P0C0 maybe",
		"putscom xyz 1",
		"putscom 0x80000000",
		"getscom",
		"launch-missiles",
		"chip P7",
		"freq",
	} {
		if resp := s.Exec(bad); !strings.HasPrefix(resp, "err ") {
			t.Errorf("command %q → %q, want err", bad, resp)
		}
	}
	if resp := s.Exec(""); !strings.HasPrefix(resp, "err") {
		t.Errorf("empty command → %q", resp)
	}
}

func TestSessionRawScom(t *testing.T) {
	ctl := newCtl(t)
	s := NewSession(ctl)
	addr := MakeCoreAddr(0, 0, regCPMReduction)
	if resp := s.Exec(sprintAddr("putscom", addr) + " 4"); resp != "ok" {
		t.Fatalf("putscom → %q", resp)
	}
	if resp := s.Exec(sprintAddr("getscom", addr)); resp != "ok 0x4" {
		t.Errorf("getscom → %q", resp)
	}
}

func sprintAddr(cmd string, a Addr) string {
	return cmd + " " + "0x" + strings.ToLower(strings.TrimPrefix(formatHex(uint32(a)), "0X"))
}

func formatHex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return string(out)
}

// TestExecNeverPanics: arbitrary operator input is rejected in-band,
// never by panicking — property-checked over random byte strings and
// over near-miss command shapes.
func TestExecNeverPanics(t *testing.T) {
	ctl := newCtl(t)
	s := NewSession(ctl)
	prop := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		resp := s.Exec(string(raw))
		return strings.HasPrefix(resp, "ok") || strings.HasPrefix(resp, "err")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	nearMisses := []string{
		"cpm P0C3 999999999999999999999",
		"putscom 0xffffffff 0xffffffffffffffff",
		"getscom 0x0",
		"pstate P0C0 -1",
		"cpm \x00\x01",
		"mode",
		"chip",
		"freq P0C0 extra-arg",
	}
	for _, cmd := range nearMisses {
		resp := s.Exec(cmd)
		if !strings.HasPrefix(resp, "err") && !strings.HasPrefix(resp, "ok") {
			t.Errorf("command %q → unframed response %q", cmd, resp)
		}
	}
}
