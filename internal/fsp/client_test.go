package fsp

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/chip"
)

// startSession serves a session over a pipe and hands back the client
// end.
func startSession(t *testing.T) (net.Conn, *Controller) {
	t.Helper()
	ctl := NewController(chip.NewReference())
	cliSide, srvSide := net.Pipe()
	sess := NewSession(ctl)
	go func() {
		//lint:ignore errdrop test server: the client closing the pipe ends the session with an expected error
		sess.Serve(srvSide, srvSide)
	}()
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown of an in-memory pipe
		cliSide.Close()
	})
	return cliSide, ctl
}

func TestParseResponse(t *testing.T) {
	cases := []struct {
		line    string
		ok      bool
		isErr   bool
		payload string
	}{
		{"ok", true, false, ""},
		{"ok 42", true, false, "42"},
		{"err", true, true, ""},
		{"err no such core", true, true, "no such core"},
		{"##garbage", false, false, ""},
		{"", false, false, ""},
		{"okay", false, false, ""},
	}
	for _, c := range cases {
		resp, wellFormed := parseResponse(c.line)
		if wellFormed != c.ok || resp.isErr != c.isErr || resp.payload != c.payload {
			t.Errorf("parseResponse(%q) = %+v, %v; want payload %q isErr %v ok %v",
				c.line, resp, wellFormed, c.payload, c.isErr, c.ok)
		}
	}
}

func TestClientCommands(t *testing.T) {
	conn, _ := startSession(t)
	cli := NewClient(conn, ClientOptions{Timeout: time.Second})
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	cores, err := cli.Cores()
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 16 {
		t.Errorf("reference server lists %d cores, want 16", len(cores))
	}
	if err := cli.SetCPM("P0C0", 5); err != nil {
		t.Fatal(err)
	}
	red, err := cli.CPM("P0C0")
	if err != nil {
		t.Fatal(err)
	}
	if red != 5 {
		t.Errorf("CPM read back %d, want 5", red)
	}
	if err := cli.SetMode("P0C0", "atm"); err != nil {
		t.Fatal(err)
	}
	f, err := cli.FreqMHz("P0C0")
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 {
		t.Errorf("frequency %v MHz", f)
	}
	if err := cli.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestClientNonTransientNoRetry: an in-band protocol rejection must come
// back immediately as *CmdError without burning the retry budget.
func TestClientNonTransientNoRetry(t *testing.T) {
	conn, _ := startSession(t)
	cli := NewClient(conn, ClientOptions{Timeout: time.Second})
	_, err := cli.Exec("cpm NOPE")
	var cerr *CmdError
	if !errors.As(err, &cerr) {
		t.Fatalf("got %v, want *CmdError", err)
	}
	if cerr.Transient() {
		t.Errorf("rejection %q classified transient", cerr.Msg)
	}
	if st := cli.Stats(); st.Retries != 0 {
		t.Errorf("non-transient error consumed %d retries", st.Retries)
	}
}

// TestClientRetriesTransient: a controller read fault marked transient
// is retried until a clean read lands.
func TestClientRetriesTransient(t *testing.T) {
	conn, ctl := startSession(t)
	fails := 2
	ctl.SetReadFault(func(a Addr) error {
		if fails > 0 {
			fails--
			return errors.New("transient telemetry upset (injected)")
		}
		return nil
	})
	cli := NewClient(conn, ClientOptions{Retries: 3, Timeout: time.Second})
	if _, err := cli.FreqMHz("P0C0"); err != nil {
		t.Fatalf("transient faults not absorbed: %v", err)
	}
	if st := cli.Stats(); st.Retries != 2 {
		t.Errorf("absorbed %d retries, want 2: %+v", st.Retries, st)
	}
}

// TestClientExhaustion: a permanently transient fault spends the budget
// and surfaces ErrExhausted wrapping the cause.
func TestClientExhaustion(t *testing.T) {
	conn, ctl := startSession(t)
	ctl.SetReadFault(func(a Addr) error {
		return errors.New("transient telemetry upset (injected, permanent)")
	})
	cli := NewClient(conn, ClientOptions{Retries: 2, Timeout: time.Second})
	_, err := cli.FreqMHz("P0C0")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	var cerr *CmdError
	if !errors.As(err, &cerr) || !cerr.Transient() {
		t.Errorf("exhaustion does not wrap the transient cause: %v", err)
	}
}

// TestClientBackoffSimulated: the default Sleep is simulated — the
// deterministic exponential schedule accumulates in Stats without
// slowing the test down.
func TestClientBackoffSimulated(t *testing.T) {
	conn, ctl := startSession(t)
	ctl.SetReadFault(func(a Addr) error {
		return errors.New("transient telemetry upset (injected, permanent)")
	})
	cli := NewClient(conn, ClientOptions{Retries: 3, Timeout: time.Second})
	start := time.Now()
	if _, err := cli.FreqMHz("P0C0"); err == nil {
		t.Fatal("want exhaustion")
	}
	elapsed := time.Since(start)
	want := 25*time.Millisecond + 50*time.Millisecond + 100*time.Millisecond
	if st := cli.Stats(); st.Backoff != want {
		t.Errorf("accumulated backoff %v, want %v", st.Backoff, want)
	}
	if elapsed > want {
		t.Errorf("simulated backoff actually slept: %v elapsed", elapsed)
	}
}

// garbleFirstRead corrupts the framing bytes of the first read, as if
// one response line got mangled on the wire.
type garbleFirstRead struct {
	net.Conn
	done bool
}

func (g *garbleFirstRead) Read(p []byte) (int, error) {
	n, err := g.Conn.Read(p)
	if !g.done && n > 0 {
		for i := 0; i < n && i < 2; i++ {
			p[i] = '#'
		}
		g.done = true
	}
	return n, err
}

// TestClientResyncAfterGarble: a garbled response triggers the retry
// path's ping/pong re-sync, after which framing is realigned and
// further commands run clean.
func TestClientResyncAfterGarble(t *testing.T) {
	conn, _ := startSession(t)
	cli := NewClient(&garbleFirstRead{Conn: conn}, ClientOptions{Retries: 3, Timeout: time.Second})
	// Attempt 0 reads the garbage; the retry re-syncs and lands the
	// command.
	if err := cli.Ping(); err != nil {
		t.Fatalf("client never realigned: %v", err)
	}
	st := cli.Stats()
	if st.Resyncs == 0 || st.Discarded == 0 {
		t.Errorf("garbled line cost no resync/discard: %+v", st)
	}
	// Framing is aligned again: further commands run clean.
	if _, err := cli.Cores(); err != nil {
		t.Fatalf("post-resync cores: %v", err)
	}
	if st2 := cli.Stats(); st2.Retries != st.Retries {
		t.Errorf("post-resync command needed retries: %+v", st2)
	}
}
