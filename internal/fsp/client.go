package fsp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client is the operator-plane counterpart of Session: it drives the
// line protocol over any transport and survives the transport being
// imperfect. Every command gets a per-command I/O timeout (when the
// transport supports deadlines), a bounded retry budget with
// deterministic backoff, and response re-synchronization: after a
// dropped or garbled response line the client exchanges a ping token
// and discards stale lines until the echo comes back, so one lost byte
// cannot skew every subsequent response.
//
// Backoff time is simulated by default — the Sleep hook is a no-op that
// only accumulates into Stats — so retry schedules are deterministic
// and tests are instant; wire Sleep to time.Sleep for a real test-floor
// link.
//
// In-band "err ..." responses are protocol results, not transport
// faults: they are returned as *CmdError without retrying, except for
// responses marked transient (the controller's telemetry-upset
// convention, "err transient ..."), which are retried like a transport
// fault.
type Client struct {
	rw  io.ReadWriter
	br  *bufio.Reader
	opt ClientOptions
	seq int
	st  ClientStats
	ob  clientObs
}

// clientObs is the client's pre-resolved metric handle set. The zero
// value (all nil) is the disabled plane; every use is a nil-safe no-op.
type clientObs struct {
	commands  *obs.Counter
	retries   *obs.Counter
	resyncs   *obs.Counter
	discarded *obs.Counter
	exhausted *obs.Counter
	attempts  *obs.Histogram // attempts consumed per command (1 = clean)
}

func newClientObs(r *obs.Registry) clientObs {
	if r == nil {
		return clientObs{}
	}
	return clientObs{
		commands:  r.Counter("fsp_client_commands_total"),
		retries:   r.Counter("fsp_client_retries_total"),
		resyncs:   r.Counter("fsp_client_resyncs_total"),
		discarded: r.Counter("fsp_client_discarded_total"),
		exhausted: r.Counter("fsp_client_exhausted_total"),
		// The command "latency" of a simulated link is how many attempts
		// it took, not wall time — wall time would break determinism.
		attempts: r.Histogram("fsp_client_attempts_per_command", []float64{1, 2, 3, 4, 8}),
	}
}

// ClientOptions tunes the client's resilience envelope.
type ClientOptions struct {
	// Retries is the number of additional attempts after the first
	// failed one. Default 3.
	Retries int
	// Timeout bounds each read and write when the transport supports
	// deadlines (net.Conn, net.Pipe, fault wrappers). Default 2s;
	// negative disables.
	Timeout time.Duration
	// Backoff maps attempt number (1, 2, ...) to the pause before that
	// retry. The default is deterministic binary exponential:
	// 25ms · 2^(attempt−1), capped at 1s. No jitter — reproducibility
	// outranks thundering-herd etiquette on a one-operator link.
	Backoff func(attempt int) time.Duration
	// Sleep consumes the backoff pauses. The default records the total
	// in Stats without sleeping (simulated time). A real implementation
	// must honor cancel and return early when it fires — RealSleep does.
	Sleep func(d time.Duration, cancel <-chan struct{})
	// Cancel, when non-nil, aborts the retry loop: a close of the
	// channel makes Exec return ErrCanceled at the next backoff (a
	// shutting-down caller is never stuck sleeping out a backoff
	// schedule). It does not interrupt an in-flight read — the
	// per-command Timeout already bounds those.
	Cancel <-chan struct{}
	// ResyncWindow is how many stale lines a re-sync may discard while
	// hunting for its pong before the attempt is abandoned. Default 32.
	ResyncWindow int
	// Obs, when non-nil, surfaces the ClientStats counters the client
	// already pays for (commands, retries, resyncs, discarded lines,
	// exhausted budgets) as fsp_client_* metrics, plus a histogram of
	// attempts consumed per command. Nil disables at ~zero cost.
	Obs *obs.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Backoff == nil {
		o.Backoff = func(attempt int) time.Duration {
			d := 25 * time.Millisecond << (attempt - 1)
			if d > time.Second {
				d = time.Second
			}
			return d
		}
	}
	if o.ResyncWindow == 0 {
		o.ResyncWindow = 32
	}
	return o
}

// ClientStats counts what the resilience machinery absorbed.
type ClientStats struct {
	Commands  int           // commands issued through Exec
	Retries   int           // attempts beyond the first
	Resyncs   int           // ping/pong re-synchronizations performed
	Discarded int           // stale or garbled lines thrown away
	Backoff   time.Duration // total backoff consumed (simulated by default)
}

// CmdError is an in-band protocol error: the server executed (or
// rejected) the command and said "err ...".
type CmdError struct {
	Cmd string
	Msg string
}

func (e *CmdError) Error() string { return fmt.Sprintf("fsp: %q: %s", e.Cmd, e.Msg) }

// Transient reports whether the server marked the failure retryable
// (a telemetry read upset rather than a rejected command).
func (e *CmdError) Transient() bool { return strings.HasPrefix(e.Msg, "transient") }

// Busy reports whether the server shed the command under overload
// ("err busy ..." — admission control or an open session breaker).
// Busy errors are retried with backoff like transport faults: by the
// time the schedule has backed off, the server has usually recovered
// headroom or walked its breaker to half-open.
func (e *CmdError) Busy() bool { return strings.HasPrefix(e.Msg, "busy") }

// ErrExhausted wraps the last failure after the retry budget is spent.
var ErrExhausted = errors.New("retry budget exhausted")

// ErrCanceled reports that the caller's Cancel channel fired during
// the retry loop. It is distinct from ErrExhausted: the command was
// abandoned by choice, not defeated by the transport.
var ErrCanceled = errors.New("canceled")

// RealSleep is a Sleep implementation for real test-floor links: it
// sleeps in wall time but returns as soon as cancel fires.
func RealSleep(d time.Duration, cancel <-chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cancel:
	}
}

// NewClient wraps a transport. The transport is used from one goroutine
// at a time.
func NewClient(rw io.ReadWriter, opts ClientOptions) *Client {
	o := opts.withDefaults()
	return &Client{rw: rw, br: bufio.NewReaderSize(rw, 4096), opt: o, ob: newClientObs(o.Obs)}
}

// Stats returns the counters accumulated so far.
func (c *Client) Stats() ClientStats { return c.st }

// deadlined is the optional transport surface the per-command timeout
// uses; net.Conn and net.Pipe both provide it.
type deadlined interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

func (c *Client) armRead() {
	if d, ok := c.rw.(deadlined); ok && c.opt.Timeout > 0 {
		//lint:ignore errdrop best-effort deadline arming: a transport that refuses deadlines degrades to blocking reads, which the caller accepted by providing it
		d.SetReadDeadline(time.Now().Add(c.opt.Timeout))
	}
}

func (c *Client) armWrite() {
	if d, ok := c.rw.(deadlined); ok && c.opt.Timeout > 0 {
		//lint:ignore errdrop best-effort deadline arming: a transport that refuses deadlines degrades to blocking writes, which the caller accepted by providing it
		d.SetWriteDeadline(time.Now().Add(c.opt.Timeout))
	}
}

// writeLine sends one command line.
func (c *Client) writeLine(line string) error {
	c.armWrite()
	_, err := io.WriteString(c.rw, line+"\n")
	return err
}

// readLine reads one response line under the per-command deadline.
func (c *Client) readLine() (string, error) {
	c.armRead()
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// response is one parsed protocol reply.
type response struct {
	isErr   bool
	payload string
}

// parseResponse classifies a line; ok=false marks a garbled line that
// belongs to no well-formed reply.
func parseResponse(line string) (response, bool) {
	switch {
	case line == "ok":
		return response{}, true
	case strings.HasPrefix(line, "ok "):
		return response{payload: line[len("ok "):]}, true
	case strings.HasPrefix(line, "err "):
		return response{isErr: true, payload: line[len("err "):]}, true
	case line == "err":
		return response{isErr: true}, true
	default:
		return response{}, false
	}
}

// resync drains the transport of stale response lines: it sends a ping
// with a fresh token and discards everything until the matching pong
// arrives. Called after any attempt whose response was lost or garbled,
// so the next command starts aligned.
func (c *Client) resync() error {
	c.seq++
	token := fmt.Sprintf("sync-%d", c.seq)
	c.st.Resyncs++
	c.ob.resyncs.Inc()
	if err := c.writeLine("ping " + token); err != nil {
		return err
	}
	want := "ok pong " + token
	for i := 0; i < c.opt.ResyncWindow; i++ {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if line == want {
			return nil
		}
		c.st.Discarded++
		c.ob.discarded.Inc()
	}
	return fmt.Errorf("fsp: resync token %s not echoed within %d lines", token, c.opt.ResyncWindow)
}

// Exec runs one command with the full resilience envelope and returns
// the "ok" payload. A non-transient in-band error returns *CmdError
// immediately; transport faults and transient errors are retried with
// backoff until the budget is spent, then reported wrapping
// ErrExhausted.
func (c *Client) Exec(cmd string) (string, error) {
	c.st.Commands++
	c.ob.commands.Inc()
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			c.st.Retries++
			c.ob.retries.Inc()
			if err := c.pause(attempt); err != nil {
				return "", fmt.Errorf("fsp: %q: %w", cmd, err)
			}
			if err := c.resync(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := c.writeLine(cmd); err != nil {
			lastErr = err
			continue
		}
		line, err := c.readLine()
		if err != nil {
			lastErr = err
			continue
		}
		resp, wellFormed := parseResponse(line)
		if !wellFormed {
			c.st.Discarded++
			c.ob.discarded.Inc()
			lastErr = fmt.Errorf("fsp: garbled response %q", line)
			continue
		}
		if resp.isErr {
			cerr := &CmdError{Cmd: cmd, Msg: resp.payload}
			if cerr.Transient() || cerr.Busy() {
				lastErr = cerr
				continue
			}
			c.ob.attempts.Observe(float64(attempt + 1))
			return "", cerr
		}
		c.ob.attempts.Observe(float64(attempt + 1))
		return resp.payload, nil
	}
	c.ob.exhausted.Inc()
	c.ob.attempts.Observe(float64(c.opt.Retries + 1))
	return "", fmt.Errorf("fsp: %q failed after %d attempts: %w: %w",
		cmd, c.opt.Retries+1, ErrExhausted, lastErr)
}

// pause consumes one backoff step, honoring cancellation both before
// and after the sleep so a shutting-down caller escapes promptly even
// when the Sleep hook ignores the cancel channel.
func (c *Client) pause(attempt int) error {
	select {
	case <-c.opt.Cancel:
		return ErrCanceled
	default:
	}
	d := c.opt.Backoff(attempt)
	c.st.Backoff += d
	if c.opt.Sleep != nil {
		c.opt.Sleep(d, c.opt.Cancel)
	}
	select {
	case <-c.opt.Cancel:
		return ErrCanceled
	default:
	}
	return nil
}

// Ping verifies liveness end to end.
func (c *Client) Ping() error {
	c.seq++
	token := fmt.Sprintf("live-%d", c.seq)
	out, err := c.Exec("ping " + token)
	if err != nil {
		return err
	}
	if out != "pong "+token {
		return fmt.Errorf("fsp: ping echoed %q, want %q", out, "pong "+token)
	}
	return nil
}

// CPM reads a core's current inserted-delay reduction.
func (c *Client) CPM(core string) (int, error) {
	out, err := c.Exec("cpm " + core)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.Atoi(strings.TrimSpace(out))
	if perr != nil {
		return 0, fmt.Errorf("fsp: bad cpm payload %q", out)
	}
	return v, nil
}

// SetCPM programs a core's inserted-delay reduction.
func (c *Client) SetCPM(core string, reduction int) error {
	_, err := c.Exec(fmt.Sprintf("cpm %s %d", core, reduction))
	return err
}

// SetMode switches a core between "static" and "atm" clocking.
func (c *Client) SetMode(core, mode string) error {
	_, err := c.Exec(fmt.Sprintf("mode %s %s", core, mode))
	return err
}

// FreqMHz reads a core's settled frequency.
func (c *Client) FreqMHz(core string) (float64, error) {
	out, err := c.Exec("freq " + core)
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(out)
	if len(fields) != 2 || fields[1] != "MHz" {
		return 0, fmt.Errorf("fsp: bad freq payload %q", out)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return 0, fmt.Errorf("fsp: bad freq payload %q", out)
	}
	return v, nil
}

// CoreMargin is one core's CPM slack margin as reported by the
// "margins" verb: headroom to the worst-case workload envelope in
// per-trial sigmas at the core's current reduction.
type CoreMargin struct {
	Core  string
	Sigma float64
}

// Margins reads every core's CPM slack margin in one round trip, in
// the server's register address order. The read rides the full
// resilience envelope: transient telemetry upsets and garbled
// transport lines are retried with re-sync like any other command.
func (c *Client) Margins() ([]CoreMargin, error) {
	out, err := c.Exec("margins")
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(out)
	ms := make([]CoreMargin, 0, len(fields))
	for _, f := range fields {
		name, val, ok := strings.Cut(f, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fsp: bad margins payload %q", out)
		}
		v, perr := strconv.ParseFloat(val, 64)
		if perr != nil {
			return nil, fmt.Errorf("fsp: bad margins payload %q", out)
		}
		ms = append(ms, CoreMargin{Core: name, Sigma: v})
	}
	return ms, nil
}

// Cores lists the server's core labels.
func (c *Client) Cores() ([]string, error) {
	out, err := c.Exec("cores")
	if err != nil {
		return nil, err
	}
	return strings.Fields(out), nil
}

// Quit ends the session politely. The transport is left to the caller
// to close.
func (c *Client) Quit() error {
	if err := c.writeLine("quit"); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "ok bye" {
		return fmt.Errorf("fsp: quit acknowledged with %q", line)
	}
	return nil
}
