package fsp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/chip"
)

// loopbackClient builds a client over a synchronous loopback session on
// a reference machine.
func loopbackClient(t *testing.T, opts ClientOptions) (*Client, *Controller) {
	t.Helper()
	ctl := NewController(chip.NewReference())
	return NewClient(NewLoopback(NewSession(ctl)), opts), ctl
}

func TestMarginsVerbFormat(t *testing.T) {
	ctl := NewController(chip.NewReference())
	sess := NewSession(ctl)
	out := sess.Exec("margins")
	if !strings.HasPrefix(out, "ok ") {
		t.Fatalf("margins answered %q", out)
	}
	fields := strings.Fields(out[len("ok "):])
	if len(fields) != 16 {
		t.Fatalf("margins reported %d cores, want 16: %q", len(fields), out)
	}
	// Address order: chip 0's cores first, each core label once.
	if !strings.HasPrefix(fields[0], "P0C0=") || !strings.HasPrefix(fields[15], "P1C7=") {
		t.Fatalf("margins not in address order: %q", out)
	}
	if sess.Exec("margins extra") != "err usage: margins" {
		t.Fatalf("margins accepted arguments")
	}
}

func TestMarginRegisterMatchesSafetyCriterion(t *testing.T) {
	ctl := NewController(chip.NewReference())
	m := ctl.Machine()
	core := m.AllCores()[0]
	p := core.Profile

	// At the deterministic worst-case limit the margin is, by
	// construction of the limit criterion, at least the calibration
	// headroom (4.5 sigma) and less than that plus one tap step.
	lim := p.DeterministicLimit(1)
	if err := m.ProgramCPM(p.Label, lim); err != nil {
		t.Fatal(err)
	}
	v, err := ctl.Getscom(MakeCoreAddr(0, 0, regMargin))
	if err != nil {
		t.Fatal(err)
	}
	sigma := float64(int64(v)) / 1000
	if sigma < 4.5 {
		t.Fatalf("margin at the worst-case limit = %.3f sigma, want >= 4.5", sigma)
	}

	// One step past the limit the criterion fails: margin below 4.5.
	if lim < p.MaxReduction() {
		if err := m.ProgramCPM(p.Label, lim+1); err != nil {
			t.Fatal(err)
		}
		v, err = ctl.Getscom(MakeCoreAddr(0, 0, regMargin))
		if err != nil {
			t.Fatal(err)
		}
		if s := float64(int64(v)) / 1000; s >= 4.5 {
			t.Fatalf("margin one past the limit = %.3f sigma, want < 4.5", s)
		}
	}

	// The register is read-only.
	if err := ctl.Putscom(MakeCoreAddr(0, 0, regMargin), 1); err == nil {
		t.Fatal("margin register accepted a write")
	}
}

func TestClientMarginsLoopback(t *testing.T) {
	cli, ctl := loopbackClient(t, ClientOptions{})
	ms, err := cli.Margins()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 16 {
		t.Fatalf("Margins returned %d cores, want 16", len(ms))
	}
	for i, core := range ctl.Machine().AllCores() {
		if ms[i].Core != core.Profile.Label {
			t.Fatalf("margin %d is %s, want %s", i, ms[i].Core, core.Profile.Label)
		}
		want := float64(marginMilliSigma(core)) / 1000
		if math.Abs(ms[i].Sigma-want) > 1e-9 {
			t.Fatalf("%s margin = %v, want %v", ms[i].Core, ms[i].Sigma, want)
		}
	}
}

func TestLoopbackQuitAndResync(t *testing.T) {
	cli, _ := loopbackClient(t, ClientOptions{})
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Quit(); err != nil {
		t.Fatal(err)
	}
}
