package fsp

import (
	"encoding/json"

	"repro/internal/guard"
)

// The server's overload envelope. Real FSP firmware services one
// operator at a time and simply stops answering when wedged; this
// server instead makes saturation explicit and recoverable: admission
// control sheds surplus connections with an in-band "err busy" line
// (which fsp.Client treats as retryable), a per-session circuit
// breaker cuts off peers spewing protocol garbage, and the read-only
// "health" verb reports the whole guard plane so an operator can see
// shedding happen instead of guessing.

// GuardOptions configures the server's guard plane. The zero value
// disables everything; each guard arms only when its own field is set,
// so the options compose field-by-field.
type GuardOptions struct {
	// MaxSessions bounds concurrently served sessions; a connection
	// over the limit is answered "err busy" and closed. 0 disables.
	MaxSessions int
	// AcceptCapacity > 0 arms a token bucket on session admission with
	// that burst capacity: connection storms beyond the burst are shed
	// in-band. 0 disables.
	AcceptCapacity int64
	// AcceptRefillEvery is how many logical ticks buy back one
	// admission token (default 1; the default clock ticks once per
	// admission attempt).
	AcceptRefillEvery int64
	// GarbageThreshold > 0 arms a per-session circuit breaker: that
	// many consecutive garbage lines (unknown verbs, unparseable
	// commands) trip the session open, and further commands are
	// answered "err busy breaker open" until the open window passes.
	// 0 disables.
	GarbageThreshold int
	// BreakerOpenTicks is the open window in logical ticks (default 8
	// — deliberately below the client's default ResyncWindow of 32, so
	// a resyncing client's pings can walk the breaker to half-open and
	// recover the session).
	BreakerOpenTicks int64
	// BreakerProbes is how many consecutive clean commands close a
	// half-open breaker again (default 1).
	BreakerProbes int
	// Now supplies the logical clock for the bucket and the breakers.
	// Nil selects their internal event clocks (deterministic without
	// any wall clock).
	Now func() int64
}

// Guard arms the server's guard plane. Call before Serve; the zero
// options value disables all guards (the default).
func (s *Server) Guard(o GuardOptions) {
	s.guardOpt = o
	if o.MaxSessions > 0 {
		s.gate = guard.NewGate(guard.GateOptions{
			Name:  "fsp_sessions",
			Limit: o.MaxSessions,
			Obs:   s.reg,
		})
	}
	if o.AcceptCapacity > 0 {
		s.bucket = guard.NewBucket(guard.BucketOptions{
			Name:        "fsp_accept",
			Capacity:    o.AcceptCapacity,
			RefillEvery: o.AcceptRefillEvery,
			Now:         o.Now,
			Obs:         s.reg,
		})
	}
	s.shedC = s.reg.Counter("fsp_server_shed_total")
}

// sessionBreaker builds one session's garbage breaker, or nil when the
// guard is disabled. Every session shares the metric name, so the
// exported counters aggregate across sessions.
func (s *Server) sessionBreaker() *guard.Breaker {
	if s.guardOpt.GarbageThreshold <= 0 {
		return nil
	}
	return guard.NewBreaker(guard.BreakerOptions{
		Name:             "fsp_session",
		FailureThreshold: s.guardOpt.GarbageThreshold,
		OpenTicks:        s.guardOpt.BreakerOpenTicks,
		HalfOpenProbes:   s.guardOpt.BreakerProbes,
		Now:              s.guardOpt.Now,
		Obs:              s.reg,
	})
}

// healthReport is the "health" verb's document. Struct marshaling
// keeps the field order fixed, so the reply line is deterministic.
type healthReport struct {
	// Breaker is this session's breaker state ("closed" when the guard
	// is disabled — the disabled breaker never opens).
	Breaker string `json:"breaker"`
	// BreakerRejected counts commands this session's breaker shed.
	BreakerRejected int64 `json:"breaker_rejected"`
	// ActiveSessions and MaxSessions describe the session gate
	// (0 max = unbounded).
	ActiveSessions int `json:"active_sessions"`
	MaxSessions    int `json:"max_sessions"`
	// AcceptSheds and SessionSheds count connections shed by the
	// admission bucket and the session gate respectively.
	AcceptSheds  int64 `json:"accept_sheds"`
	SessionSheds int64 `json:"session_sheds"`
}

// healthLine renders the server-wide health document for one session.
func (s *Server) healthLine(brk *guard.Breaker) string {
	rep := healthReport{
		Breaker:         brk.State().String(),
		BreakerRejected: brk.Rejected(),
		ActiveSessions:  s.gate.Depth(),
		MaxSessions:     s.guardOpt.MaxSessions,
		AcceptSheds:     s.bucket.Sheds(),
		SessionSheds:    s.gate.Sheds(),
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		// healthReport is plain data; Marshal cannot fail on it.
		return "{}"
	}
	return string(raw)
}
