package fsp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/chip"
)

// dialScript connects, sends the script lines, and returns the response
// lines.
func dialScript(t *testing.T, addr string, lines ...string) []string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errdrop test teardown; the session already quit and the response was read
	defer conn.Close()
	go func() {
		for _, l := range lines {
			if _, err := fmt.Fprintln(conn, l); err != nil {
				t.Errorf("send %q: %v", l, err)
				return
			}
		}
		if _, err := fmt.Fprintln(conn, "quit"); err != nil {
			t.Errorf("send quit: %v", err)
		}
	}()
	var out []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	ctl := NewController(chip.NewReference())
	srv := NewServer(ctl)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, l.Addr().String()
}

func TestServerSingleSession(t *testing.T) {
	_, addr := startServer(t)
	resp := dialScript(t, addr, "cpm P0C3 6", "cpm P0C3", "freq P0C3")
	if len(resp) != 4 { // 3 commands + quit ack
		t.Fatalf("got %d responses: %v", len(resp), resp)
	}
	if resp[0] != "ok" || resp[1] != "ok 6" {
		t.Errorf("responses: %v", resp)
	}
	if !strings.Contains(resp[2], "MHz") {
		t.Errorf("freq response %q", resp[2])
	}
	if resp[3] != "ok bye" {
		t.Errorf("quit ack %q", resp[3])
	}
}

// TestServerConcurrentClients hammers the shared controller from many
// connections; the mutex must keep every response well-formed and the
// final machine state consistent.
func TestServerConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients*4)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			core := fmt.Sprintf("P1C%d", c%8)
			resp := dialScript(t, addr,
				fmt.Sprintf("cpm %s 1", core),
				fmt.Sprintf("freq %s", core),
				"chip P1",
			)
			if len(resp) != 4 {
				errs <- fmt.Sprintf("client %d: %d responses", c, len(resp))
				return
			}
			for i, r := range resp {
				if !strings.HasPrefix(r, "ok") {
					errs <- fmt.Sprintf("client %d line %d: %q", c, i, r)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Every core the clients touched ends at reduction 1.
	for c := 0; c < 8; c++ {
		core, err := srv.ctl.Machine().Core(fmt.Sprintf("P1C%d", c))
		if err != nil {
			t.Fatal(err)
		}
		if core.Reduction() != 1 {
			t.Errorf("%s at reduction %d after concurrent clients", core.Profile.Label, core.Reduction())
		}
	}
}

func TestServerCloseIsIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
