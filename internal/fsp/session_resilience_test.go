package fsp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/chip"
)

// TestSessionOversizedLine: a line past MaxLineBytes is answered in-band
// with "err line too long" and the session keeps serving — the scanner
// overflow must not kill the connection out-of-band.
func TestSessionOversizedLine(t *testing.T) {
	sess := NewSession(NewController(chip.NewReference()))
	huge := strings.Repeat("x", MaxLineBytes+1)
	input := huge + "\ncores\nquit\n"
	var out bytes.Buffer
	if err := sess.Serve(strings.NewReader(input), &out); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d responses %q, want 3", len(lines), lines)
	}
	if lines[0] != "err line too long" {
		t.Errorf("oversized line answered %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ok ") {
		t.Errorf("session did not survive the oversized line: %q", lines[1])
	}
	if lines[2] != "ok bye" {
		t.Errorf("quit answered %q", lines[2])
	}
}

// TestSessionExactCapLine: a line of exactly MaxLineBytes is not over
// the cap and must be executed normally.
func TestSessionExactCapLine(t *testing.T) {
	sess := NewSession(NewController(chip.NewReference()))
	// An unknown command of exactly the cap: executed (and rejected
	// in-band as unknown), not reported as too long.
	line := "z" + strings.Repeat("x", MaxLineBytes-1)
	var out bytes.Buffer
	if err := sess.Serve(strings.NewReader(line+"\nquit\n"), &out); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if first == "err line too long" {
		t.Errorf("cap-sized line misreported: %q", first)
	}
	if !strings.HasPrefix(first, "err unknown command") {
		t.Errorf("cap-sized line answered %q", first)
	}
}

// TestSessionOversizedFinalLine: an oversized line that ends in EOF
// (no newline) is still reported and the session exits cleanly.
func TestSessionOversizedFinalLine(t *testing.T) {
	sess := NewSession(NewController(chip.NewReference()))
	var out bytes.Buffer
	if err := sess.Serve(strings.NewReader(strings.Repeat("x", MaxLineBytes+100)), &out); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := strings.TrimRight(out.String(), "\n"); got != "err line too long" {
		t.Errorf("got %q", got)
	}
}

func TestReadCappedLine(t *testing.T) {
	cases := []struct {
		in      string
		line    string
		tooLong bool
	}{
		{"abc\ndef\n", "abc", false},
		{"abc", "abc", false}, // EOF-terminated final line
		{strings.Repeat("y", 20) + "\n", "", true},
		{strings.Repeat("y", 10) + "\nnext\n", strings.Repeat("y", 10), false},
	}
	for _, c := range cases {
		br := bufio.NewReaderSize(strings.NewReader(c.in), 16)
		line, tooLong, err := readCappedLine(br, 10)
		if line != c.line || tooLong != c.tooLong {
			t.Errorf("readCappedLine(%.12q) = %q, %v, %v; want %q, %v",
				c.in, line, tooLong, err, c.line, c.tooLong)
		}
		if c.tooLong {
			// The oversized remainder is consumed: the next read starts
			// at the following line (or EOF), not mid-garbage.
			//lint:ignore errdrop only the recovered line content matters here; EOF vs nil is immaterial after a too-long discard
			next, _, _ := readCappedLine(br, 10)
			if strings.Contains(next, "y") {
				t.Errorf("remainder leaked into next line: %q", next)
			}
		}
	}
}

// FuzzSessionExec: arbitrary command lines must produce exactly one
// well-formed single-line response and never panic the session.
func FuzzSessionExec(f *testing.F) {
	for _, seed := range []string{
		"", "quit", "cores", "ping tok", "ping",
		"getscom 0x00010003", "getscom zzz", "putscom 0x00010003 5",
		"cpm P0C0", "cpm P0C0 5", "cpm P0C0 -1", "mode P0C0 atm",
		"pstate P0C0 4000", "gate P0C0 on", "freq P0C0", "chip P0",
		"# comment", "unknown", "cpm \x00 5", "getscom 0x" + strings.Repeat("f", 200),
	} {
		f.Add(seed)
	}
	ctl := NewController(chip.NewReference())
	sess := NewSession(ctl)
	f.Fuzz(func(t *testing.T, line string) {
		out := sess.Exec(line)
		if out != "ok" && !strings.HasPrefix(out, "ok ") &&
			out != "err" && !strings.HasPrefix(out, "err ") {
			t.Errorf("Exec(%q) = %q: response not ok/err framed", line, out)
		}
		if strings.ContainsAny(out, "\n\r") {
			t.Errorf("Exec(%q) = %q: response spans lines", line, out)
		}
	})
}
