package fsp

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/obs"
)

// tickClock is a deterministic latency clock: every sample advances
// one tick, so each command measures exactly 1 tick of "latency".
func tickClock() func() int64 {
	var t int64
	return func() int64 { t++; return t }
}

func TestSessionLatencyHistograms(t *testing.T) {
	ctl := newCtl(t)
	reg := obs.NewRegistry()
	sess := NewSession(ctl)
	sess.Observe(reg)
	sess.SetClock(tickClock())

	for _, line := range []string{"ping a", "ping b", "freq P0C3", "bogus"} {
		sess.Exec(line)
	}

	if got := reg.Histogram("fsp_session_latency", LatencyBuckets, "verb", "ping").Count(); got != 2 {
		t.Errorf("ping latency count = %d, want 2", got)
	}
	if got := reg.Histogram("fsp_session_latency", LatencyBuckets, "verb", "freq").Count(); got != 1 {
		t.Errorf("freq latency count = %d, want 1", got)
	}
	if got := reg.Histogram("fsp_session_latency", LatencyBuckets, "verb", "unknown").Count(); got != 1 {
		t.Errorf("unknown latency count = %d, want 1", got)
	}

	// The in-band stats verb surfaces the histograms with quantiles.
	resp := sess.Exec("stats")
	if !strings.HasPrefix(resp, "ok ") {
		t.Fatalf("stats = %q", resp)
	}
	if !strings.Contains(resp, `"name":"fsp_session_latency"`) {
		t.Errorf("stats missing latency histogram: %s", resp)
	}
	if !strings.Contains(resp, `"quantiles":[{"q":0.5,"v":`) {
		t.Errorf("stats missing quantiles: %s", resp)
	}
}

func TestSessionNoClockNoLatency(t *testing.T) {
	ctl := newCtl(t)
	reg := obs.NewRegistry()
	sess := NewSession(ctl)
	sess.Observe(reg)
	sess.Exec("ping a")
	if got := reg.Histogram("fsp_session_latency", LatencyBuckets, "verb", "ping").Count(); got != 0 {
		t.Errorf("latency recorded without a clock: count = %d", got)
	}
}

func TestServerForwardsClockToLocalSession(t *testing.T) {
	srv := NewServer(newCtl(t))
	reg := obs.NewRegistry()
	srv.Observe(reg)
	srv.SetClock(tickClock())
	sess := srv.LocalSession()
	sess.Exec("ping x")
	if got := reg.Histogram("fsp_session_latency", LatencyBuckets, "verb", "ping").Count(); got != 1 {
		t.Errorf("local session did not inherit server clock: count = %d", got)
	}
}

func TestServerAdmitMatchesGuardPlane(t *testing.T) {
	srv := NewServer(newCtl(t))
	reg := obs.NewRegistry()
	srv.Observe(reg)
	srv.Guard(GuardOptions{MaxSessions: 2})

	r1, ok := srv.Admit()
	r2, ok2 := srv.Admit()
	if !ok || !ok2 {
		t.Fatal("first two admissions refused")
	}
	if _, ok := srv.Admit(); ok {
		t.Fatal("third admission allowed past MaxSessions=2")
	}
	if got := reg.Counter("fsp_server_shed_total").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	r1()
	if _, ok := srv.Admit(); !ok {
		t.Fatal("admission refused after release")
	}
	r2()
}

// TestDisabledLatencyZeroAlloc pins the satellite requirement: with no
// registry attached, the latency instrumentation a clocked session adds
// to each command (two clock samples, map lookup, nil-handle Observe)
// allocates nothing.
func TestDisabledLatencyZeroAlloc(t *testing.T) {
	sess := NewSession(newCtl(t))
	sess.SetClock(tickClock())
	allocs := testing.AllocsPerRun(100, func() {
		began := sess.clock()
		sess.observeLatency("ping", began)
	})
	if allocs != 0 {
		t.Fatalf("disabled latency path allocates: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkSessionExecPing(b *testing.B) {
	sess := NewSession(NewController(chip.NewReference()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess.Exec("ping x")
	}
}

func BenchmarkSessionExecPingClocked(b *testing.B) {
	sess := NewSession(NewController(chip.NewReference()))
	sess.SetClock(tickClock())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess.Exec("ping x")
	}
}
