// Package fsp emulates the flexible service processor (FSP) interface
// through which the paper fine-tunes ATM: "In the POWER7+, this is done
// by sending specialized commands to the service processor"
// (Sec. III-A). On the real machine these are privileged SCOM register
// accesses mediated by firmware; here the same two layers exist in
// software:
//
//   - a register map (registers.go): per-core CPM control, mode and
//     p-state registers plus read-only telemetry (settled frequency,
//     chip power/voltage/temperature), addressed like SCOMs;
//   - a line-oriented command protocol (session.go): the operator-level
//     commands a test-floor script issues (getscom/putscom and the
//     convenience verbs the paper's procedures need), usable over any
//     io.Reader/io.Writer pair.
//
// cmd/atmfsp serves the protocol on stdio so the deployment procedure
// can literally be driven by a shell script, as it would be on the test
// floor.
package fsp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/units"
)

// Register addresses are synthesized per core from a base; the layout
// mimics a SCOM-style address space: chip select in the high bits, core
// select in the middle, function in the low bits.
const (
	// Function codes within a core's register block.
	regCPMReduction = 0x0 // RW: CPM inserted-delay reduction
	regMode         = 0x1 // RW: 0 = static margin, 1 = ATM
	regPState       = 0x2 // RW: p-state frequency in MHz
	regGated        = 0x3 // RW: 1 = power-gated
	regFreq         = 0x8 // RO: settled frequency (MHz)
	regPower        = 0x9 // RO: core power (mW)
	regMargin       = 0xA // RO: CPM slack margin (milli-sigma, two's complement)

	// Chip-level registers (core field = 0xF).
	regChipPower  = 0x0 // RO: chip power (mW)
	regChipVolt   = 0x1 // RO: on-die supply (mV)
	regChipTemp   = 0x2 // RO: junction temperature (m°C)
	regChipVNom   = 0x3 // RO: VRM setpoint (mV)
	regChipInBudg = 0x4 // RO: 1 = within thermal envelope
)

// Addr is a synthetic SCOM address.
type Addr uint32

// MakeCoreAddr builds the address of a per-core register.
func MakeCoreAddr(chipIdx, coreIdx, fn int) Addr {
	return Addr(0x8000_0000 | uint32(chipIdx)<<16 | uint32(coreIdx)<<8 | uint32(fn))
}

// MakeChipAddr builds the address of a chip-level register.
func MakeChipAddr(chipIdx, fn int) Addr {
	return Addr(0x8000_0000 | uint32(chipIdx)<<16 | 0xF<<8 | uint32(fn))
}

func (a Addr) chip() int { return int(a>>16) & 0xFF }
func (a Addr) core() int { return int(a>>8) & 0xFF }
func (a Addr) fn() int   { return int(a) & 0xFF }

// Controller is the firmware layer: it owns a machine and exposes the
// register map. All mutating accesses are validated the way firmware
// validates SCOM writes — a bad value errors out rather than bricking
// the model.
type Controller struct {
	m *chip.Machine
	// stale marks that a mutating register write occurred since the
	// last telemetry solve.
	stale bool
	last  chip.State

	// readFault, when non-nil, may fail a read-only telemetry register
	// access — the hook internal/fault uses to model transient sensor
	// and SCOM-bus upsets. Control registers (the RW set) are never
	// faulted: on the real machine those go through a checked firmware
	// write path, while telemetry reads are best-effort.
	readFault ReadFault
}

// ReadFault is an injection hook consulted before each telemetry
// register read. A non-nil return aborts the read; errors wrapping
// chip.ErrTransient are retryable and reported in-band with a
// "transient" prefix so operator clients know to retry.
type ReadFault func(a Addr) error

// SetReadFault arms (or, with nil, disarms) the telemetry fault hook.
func (c *Controller) SetReadFault(f ReadFault) { c.readFault = f }

// faultRead consults the injection hook for a telemetry read of a.
func (c *Controller) faultRead(a Addr) error {
	if c.readFault == nil {
		return nil
	}
	return c.readFault(a)
}

// NewController wraps a machine.
func NewController(m *chip.Machine) *Controller {
	return &Controller{m: m, stale: true}
}

// Machine returns the controlled machine.
func (c *Controller) Machine() *chip.Machine { return c.m }

// coreAt resolves a register address to a core.
func (c *Controller) coreAt(a Addr) (*chip.Core, error) {
	ci, ki := a.chip(), a.core()
	if ci < 0 || ci >= len(c.m.Chips) {
		return nil, fmt.Errorf("fsp: no chip %d at %#x", ci, uint32(a))
	}
	ch := c.m.Chips[ci]
	if ki < 0 || ki >= len(ch.Cores) {
		return nil, fmt.Errorf("fsp: no core %d on chip %d at %#x", ki, ci, uint32(a))
	}
	return ch.Cores[ki], nil
}

// telemetry solves the machine lazily: reads of RO registers reflect the
// steady state after the most recent writes.
func (c *Controller) telemetry() (chip.State, error) {
	if c.stale {
		st, err := c.m.Solve()
		if err != nil {
			return chip.State{}, err
		}
		c.last = st
		c.stale = false
	}
	return c.last, nil
}

// Getscom reads a register.
func (c *Controller) Getscom(a Addr) (uint64, error) {
	if a.core() == 0xF {
		return c.getChip(a)
	}
	core, err := c.coreAt(a)
	if err != nil {
		return 0, err
	}
	switch a.fn() {
	case regCPMReduction:
		return uint64(core.Reduction()), nil
	case regMode:
		if core.Mode() == chip.ModeATM {
			return 1, nil
		}
		return 0, nil
	case regPState:
		return uint64(core.PState()), nil
	case regGated:
		if core.Gated() {
			return 1, nil
		}
		return 0, nil
	case regFreq:
		if err := c.faultRead(a); err != nil {
			return 0, err
		}
		st, err := c.telemetry()
		if err != nil {
			return 0, err
		}
		cs, err := st.CoreState(core.Profile.Label)
		if err != nil {
			return 0, err
		}
		return uint64(cs.Freq), nil
	case regPower:
		if err := c.faultRead(a); err != nil {
			return 0, err
		}
		st, err := c.telemetry()
		if err != nil {
			return 0, err
		}
		cs, err := st.CoreState(core.Profile.Label)
		if err != nil {
			return 0, err
		}
		return uint64(float64(cs.Power) * 1000), nil
	case regMargin:
		if err := c.faultRead(a); err != nil {
			return 0, err
		}
		return uint64(marginMilliSigma(core)), nil
	default:
		return 0, fmt.Errorf("fsp: unknown core register %#x", a.fn())
	}
}

func (c *Controller) getChip(a Addr) (uint64, error) {
	ci := a.chip()
	if ci < 0 || ci >= len(c.m.Chips) {
		return 0, fmt.Errorf("fsp: no chip %d", ci)
	}
	if err := c.faultRead(a); err != nil {
		return 0, err
	}
	label := c.m.Chips[ci].Profile.Label
	st, err := c.telemetry()
	if err != nil {
		return 0, err
	}
	cs, err := st.ChipState(label)
	if err != nil {
		return 0, err
	}
	switch a.fn() {
	case regChipPower:
		return uint64(float64(cs.Power) * 1000), nil
	case regChipVolt:
		return uint64(cs.Supply.Millivolts()), nil
	case regChipTemp:
		return uint64(float64(cs.TempC) * 1000), nil
	case regChipVNom:
		return uint64(c.m.Chips[ci].PDN.VNom.Millivolts()), nil
	case regChipInBudg:
		if cs.InBudget {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("fsp: unknown chip register %#x", a.fn())
	}
}

// Putscom writes a register. Read-only registers reject writes.
func (c *Controller) Putscom(a Addr, v uint64) error {
	if a.core() == 0xF {
		return fmt.Errorf("fsp: chip register %#x is read-only", a.fn())
	}
	core, err := c.coreAt(a)
	if err != nil {
		return err
	}
	switch a.fn() {
	case regCPMReduction:
		if err := core.Monitor.Program(int(v)); err != nil {
			return err
		}
	case regMode:
		switch v {
		case 0:
			core.SetMode(chip.ModeStatic)
		case 1:
			core.SetMode(chip.ModeATM)
		default:
			return fmt.Errorf("fsp: mode %d not in {0,1}", v)
		}
	case regPState:
		if err := core.SetPState(units.MHz(v)); err != nil {
			return err
		}
	case regGated:
		switch v {
		case 0:
			core.SetGated(false)
		case 1:
			core.SetGated(true)
		default:
			return fmt.Errorf("fsp: gate %d not in {0,1}", v)
		}
	case regFreq, regPower, regMargin:
		return fmt.Errorf("fsp: register %#x is read-only", a.fn())
	default:
		return fmt.Errorf("fsp: unknown core register %#x", a.fn())
	}
	c.stale = true
	return nil
}

// marginMilliSigma computes a core's CPM slack margin register value:
// how many per-trial sigmas of headroom the core's guarded path keeps
// above the worst-case workload envelope (stress score 1) at its
// current reduction, in milli-sigmas, two's-complement encoded so an
// aged core can report a negative margin. The margin is the quantity
// the paper's safety criterion bounds (limitHeadroomSigmas in
// internal/silicon): a freshly fine-tuned core sits at ≥ +4500, a core
// whose silicon drifted past its envelope goes negative.
func marginMilliSigma(core *chip.Core) int64 {
	p := core.Profile
	g, err := p.GuardPs(core.Reduction())
	if err != nil {
		// The programmed reduction was validated on the way in; an error
		// here is unreachable, but a register read must not panic.
		return 0
	}
	req := float64(p.RequiredGuardPs(1))
	if req <= 0 || p.SigmaFrac <= 0 {
		return 0
	}
	sigma := (float64(g)/req - 1) / p.SigmaFrac
	return int64(math.Round(sigma * 1000))
}

// Invalidate marks the cached telemetry solve stale. Callers that
// mutate the machine's environment out of band — the lifetime drift
// overlay rewriting silicon parameters, ambient temperature, or VRM
// constants under the controller — must invalidate so the next
// telemetry read re-solves against the mutated world.
func (c *Controller) Invalidate() { c.stale = true }

// CoreAddrByLabel resolves a core label ("P0C3") to its register block
// base parameters.
func (c *Controller) CoreAddrByLabel(label string) (chipIdx, coreIdx int, err error) {
	for ci, ch := range c.m.Chips {
		for ki, core := range ch.Cores {
			if core.Profile.Label == label {
				return ci, ki, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("fsp: no core %q", label)
}

// Labels returns every core label in address order.
func (c *Controller) Labels() []string {
	var out []string
	for _, ch := range c.m.Chips {
		for _, core := range ch.Cores {
			out = append(out, core.Profile.Label)
		}
	}
	sort.Strings(out)
	return out
}
