package chip

import (
	"testing"

	"repro/internal/workload"
)

func TestCapGenerousKeepsATM(t *testing.T) {
	m := NewReference()
	res, err := m.SolveCapped("P0", 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ATMKept || !res.Met {
		t.Errorf("generous cap throttled the chip: %+v", res)
	}
	// The machine is untouched.
	for _, core := range m.Chips[0].Cores {
		if core.Mode() != ModeATM {
			t.Errorf("%s left in %v", core.Profile.Label, core.Mode())
		}
	}
}

func TestCapThrottlesLoadedChip(t *testing.T) {
	m := NewReference()
	for _, core := range m.Chips[0].Cores {
		core.SetWorkload(workload.Daxpy)
	}
	res, err := m.SolveCapped("P0", 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ATMKept {
		t.Fatal("100 W cap kept full ATM under 8×daxpy")
	}
	if !res.Met {
		t.Fatalf("cap not met: %+v", res)
	}
	if res.Power > 100 {
		t.Errorf("capped power %v above the budget", res.Power)
	}
	if res.PState >= PStateMax {
		t.Errorf("throttled p-state %v not below the top", res.PState)
	}
	// The chosen p-state is the *fastest* that fits: one step up must
	// exceed the cap.
	idx := -1
	for i, p := range PStates {
		if p == res.PState {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("p-state %v not on the ladder", res.PState)
	}
	if idx+1 < len(PStates) {
		for _, core := range m.Chips[0].Cores {
			if err := core.SetPState(PStates[idx+1]); err != nil {
				t.Fatal(err)
			}
		}
		st, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if st.Chips[0].Power <= 100 {
			t.Errorf("a faster p-state %v also fits the cap (%v); controller chose too low",
				PStates[idx+1], st.Chips[0].Power)
		}
	}
}

func TestCapImpossible(t *testing.T) {
	m := NewReference()
	for _, core := range m.Chips[0].Cores {
		core.SetWorkload(workload.Daxpy)
	}
	res, err := m.SolveCapped("P0", 30) // below uncore + leakage
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Errorf("30 W cap reported met: %+v", res)
	}
	if res.PState != PStateMin {
		t.Errorf("impossible cap should land at the floor, got %v", res.PState)
	}
}

func TestCapValidation(t *testing.T) {
	m := NewReference()
	if _, err := m.SolveCapped("P7", 100); err == nil {
		t.Error("bogus chip accepted")
	}
	if _, err := m.SolveCapped("P0", 0); err == nil {
		t.Error("zero cap accepted")
	}
}
