package chip

import (
	"fmt"

	"repro/internal/units"
)

// The paper's ATM platform has three parts; the third — the off-chip
// voltage controller — is disabled in the paper's experiments ("we
// convert all of ATM's reclaimed timing margin into frequency and keep
// Vdd unchanged", Sec. II). This file implements it anyway, as the
// library's power-saving mode: the controller reads the sliding-window
// average frequency of the *slowest* core of a chip and lowers the
// chip-wide Vdd as far as the user-specified frequency target allows.
//
// It exists both for completeness (the POWER7 EnergyScale feature the
// platform ships with, Lefurgy et al. MICRO'11) and because it
// demonstrates the flip side of fine-tuning: the same reclaimed margin
// that ran cores at 5 GHz can instead run them at 4.2 GHz at a much
// lower voltage — and a fine-tuned chip undervolts further than the
// default one, but only as far as its *slowest* core allows, which is
// exactly the restriction overclocking sidesteps (Sec. II).

// UndervoltResult reports one chip's power-saving operating point.
type UndervoltResult struct {
	Chip string
	// Target is the user-specified frequency floor.
	Target units.MHz
	// VddReduction is how far the controller lowered the VRM setpoint.
	VddReduction units.Volt
	// Supply is the resulting on-die voltage.
	Supply units.Volt
	// SlowestCore is the core that limited the reduction.
	SlowestCore string
	// SlowestFreq is that core's settled frequency (≥ Target).
	SlowestFreq units.MHz
	// PowerBefore and PowerAfter are the chip's total power at the
	// original and reduced setpoints (same workloads).
	PowerBefore units.Watt
	PowerAfter  units.Watt
}

// SavingsFrac returns the fractional chip-power saving.
func (r UndervoltResult) SavingsFrac() float64 {
	if r.PowerBefore <= 0 {
		return 0
	}
	return 1 - float64(r.PowerAfter)/float64(r.PowerBefore)
}

// SolveUndervolt finds the largest chip-wide Vdd reduction that keeps
// every (ungated, ATM-mode) core of the chip at or above the target
// frequency under the current workloads, and returns the operating
// point. The machine is not modified; the result describes what the
// off-chip controller would converge to.
func (m *Machine) SolveUndervolt(chipLabel string, target units.MHz) (UndervoltResult, error) {
	var c *Chip
	for _, ch := range m.Chips {
		if ch.Profile.Label == chipLabel {
			c = ch
			break
		}
	}
	if c == nil {
		return UndervoltResult{}, fmt.Errorf("chip: no chip %q", chipLabel)
	}
	if target <= 0 || target > m.profile.Params().FMaxHW {
		return UndervoltResult{}, fmt.Errorf("chip: undervolt target %v out of range", target)
	}

	base, err := m.solveChip(c)
	if err != nil {
		return UndervoltResult{}, err
	}
	if f, label := slowestATM(base); f < target {
		return UndervoltResult{}, fmt.Errorf(
			"chip: %s already below target at full voltage (%v on %s)", chipLabel, f, label)
	}

	// Bisect the VRM reduction: the slowest core's frequency decreases
	// monotonically with the setpoint, so the feasible region is an
	// interval.
	origPDN := c.PDN
	defer func() { c.PDN = origPDN }()
	lo, hi := units.Volt(0), units.Volt(0.40)
	var final ChipState
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		c.PDN = origPDN
		c.PDN.VNom = origPDN.VNom - mid
		st, err := m.solveChip(c)
		if err != nil {
			return UndervoltResult{}, err
		}
		if f, _ := slowestATM(st); f >= target {
			lo = mid
			final = st
		} else {
			hi = mid
		}
	}
	if final.Label == "" {
		// Even the smallest probed reduction failed; report zero.
		final = base
		lo = 0
	}
	slowF, slowL := slowestATM(final)
	return UndervoltResult{
		Chip:         chipLabel,
		Target:       target,
		VddReduction: lo,
		Supply:       final.Supply,
		SlowestCore:  slowL,
		SlowestFreq:  slowF,
		PowerBefore:  base.Power,
		PowerAfter:   final.Power,
	}, nil
}

// slowestATM returns the lowest frequency (and its core) among the
// chip's ungated ATM cores — the quantity the off-chip controller's
// 32 ms sliding window tracks. Static-mode cores are excluded: their
// p-state is voltage-guaranteed by the static margin.
func slowestATM(st ChipState) (units.MHz, string) {
	var (
		f     units.MHz = 1 << 20
		label string
	)
	for _, cs := range st.Cores {
		if cs.Gated || cs.Mode != ModeATM {
			continue
		}
		if cs.Freq < f {
			f = cs.Freq
			label = cs.Label
		}
	}
	if label == "" {
		return 0, ""
	}
	return f, label
}
