package chip

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func TestKernelTrialCleanRun(t *testing.T) {
	m := NewReference()
	k, _ := workload.KernelFor("daxpy")
	res, err := m.RunKernelTrial("P0C0", "daxpy", 128, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("default-config kernel trial failed: %v", res.Failure)
	}
	if res.Checksum != k.Expected(128) {
		t.Error("clean run returned a wrong checksum")
	}
	if res.CheckerCaught {
		t.Error("checker flagged a clean run")
	}
}

func TestKernelTrialSDCIsCaught(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C7")
	// Program far beyond the limit so failures are certain, and sample
	// until an SDC manifestation appears.
	if err := m.ProgramCPM("P0C7", core.Profile.MaxReduction()); err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	sawSDC := false
	for i := 0; i < 200 && !sawSDC; i++ {
		res, err := m.RunKernelTrial("P0C7", "coremark", 32, src.SplitIndex("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == FailureSDC {
			sawSDC = true
			if !res.CheckerCaught {
				t.Error("injected SDC escaped the kernel's checker")
			}
			k, _ := workload.KernelFor("coremark")
			if res.Checksum == k.Expected(32) {
				t.Error("SDC run returned the correct checksum")
			}
		}
		if res.Failure == FailureSegfault || res.Failure == FailureSystemCrash {
			if res.Checksum != 0 {
				t.Error("crashed run produced a checksum")
			}
		}
	}
	if !sawSDC {
		t.Error("no SDC manifestation in 200 beyond-limit trials")
	}
}

func TestKernelTrialUnknownKernel(t *testing.T) {
	m := NewReference()
	if _, err := m.RunKernelTrial("P0C0", "gcc", 10, rng.New(1)); err == nil {
		t.Error("profile-only workload accepted as kernel")
	}
	if _, err := m.RunKernelTrial("P9C9", "daxpy", 10, rng.New(1)); err == nil {
		t.Error("bogus core accepted")
	}
}
