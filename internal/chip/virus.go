package chip

import (
	"fmt"

	"repro/internal/dpll"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

// VirusTransient drives one chip's control loops against the voltage
// virus's actual waveform: every core's dynamic current switches
// synchronously between near-zero (the issue-throttle window) and full
// daxpy draw, so the grid sees a square-wave load whose edges excite the
// package resonance — the worst-case noise generator of Sec. VII-A,
// played through the same second-order PDN and per-core DPLLs the rest
// of the platform uses.
//
// This is the cycle-approximate companion of the stress trials: the
// trial model *decides* survival statistically; this stepper *shows* the
// loop riding the noise — margin violations absorbed by emergency
// slewing, average frequency barely dented while the supply rings.

// VirusResult summarizes a virus transient.
type VirusResult struct {
	// Intervals is the number of control intervals stepped.
	Intervals int
	// Violations counts margin violations (clock-gated intervals)
	// across all cores.
	Violations int
	// MinSupply is the deepest instantaneous supply seen.
	MinSupply units.Volt
	// MeanFreq is each core's average frequency over the run.
	MeanFreq []units.MHz
	// MeanSupply is the average supply.
	MeanSupply units.Volt
}

// VirusTransient steps the chip's loops for the given number of
// throttle periods of the virus recipe at intervalNs per control
// interval. Cores run at their currently programmed CPM configuration.
func (m *Machine) VirusTransient(chipLabel string, virus workload.Stressmark, periods int, intervalNs float64) (VirusResult, error) {
	if err := virus.Validate(); err != nil {
		return VirusResult{}, err
	}
	if virus.ThrottlePeriod <= 0 || !virus.Synchronized {
		return VirusResult{}, fmt.Errorf("chip: virus transient needs a synchronized throttling stressmark")
	}
	if periods <= 0 || intervalNs <= 0 {
		return VirusResult{}, fmt.Errorf("chip: virus transient needs positive periods and interval")
	}
	var c *Chip
	for _, ch := range m.Chips {
		if ch.Profile.Label == chipLabel {
			c = ch
		}
	}
	if c == nil {
		return VirusResult{}, fmt.Errorf("chip: no chip %q", chipLabel)
	}

	p := m.profile.Params()
	loops := make([]*dpll.Loop, len(c.Cores))
	for i, core := range c.Cores {
		cfg := dpll.DefaultConfig(p.ThetaUnits, p.FMaxHW)
		loop, err := dpll.New(core.Monitor, cfg, core.Profile.DefaultFreq())
		if err != nil {
			return VirusResult{}, err
		}
		loops[i] = loop
	}

	// DC operating point with the virus's sustained (daxpy-class) draw.
	for _, core := range c.Cores {
		core.SetWorkload(workload.Daxpy)
	}
	st, err := m.solveChip(c)
	if err != nil {
		return VirusResult{}, err
	}
	for _, core := range c.Cores {
		core.SetWorkload(workload.Idle)
	}
	baseV := st.Supply

	// The synchronized current step: all cores swing ~90% of their
	// dynamic draw at each throttle edge, with the alignment bonus.
	perCore := m.power.DynCurrentAmps(workload.Daxpy, 4500, baseV)
	// Alignment superposes with losses across the shared grid.
	stepAmps := perCore * 0.9 * float64(len(c.Cores)) *
		pdn.SyncFactor(len(c.Cores)) / (pdn.SyncFactor(1) * float64(len(c.Cores)))

	res := VirusResult{MinSupply: baseV}
	sums := make([]float64, len(c.Cores))
	var supplySum float64

	// The throttle period in control intervals: one interval models a
	// few cycles, so scale the 128-cycle recipe down proportionally but
	// keep ≥2 intervals per phase.
	perPhase := virus.ThrottlePeriod / 8
	if perPhase < 2 {
		perPhase = 2
	}
	totalIntervals := periods * 2 * perPhase

	droop := 0.0
	const decay = 0.55
	for step := 0; step < totalIntervals; step++ {
		// A load edge fires at each phase boundary; rising edges (issue
		// resumes after the throttle window) droop the grid.
		if step%perPhase == 0 {
			rising := (step/perPhase)%2 == 0
			if rising {
				droop += float64(c.PDN.FirstDroopPeak(stepAmps))
			} else {
				droop -= 0.4 * float64(c.PDN.FirstDroopPeak(stepAmps)) // overshoot on load release
			}
		}
		droop *= decay
		v := units.Volt(float64(baseV) - droop)
		if v < res.MinSupply {
			res.MinSupply = v
		}
		supplySum += float64(v)
		for i, loop := range loops {
			r := loop.Step(v)
			if r.Units < 0 {
				res.Violations++
			}
			sums[i] += float64(loop.Freq())
		}
		res.Intervals++
	}
	res.MeanFreq = make([]units.MHz, len(c.Cores))
	for i := range sums {
		res.MeanFreq[i] = units.MHz(sums[i] / float64(res.Intervals))
	}
	res.MeanSupply = units.Volt(supplySum / float64(res.Intervals))
	return res, nil
}
