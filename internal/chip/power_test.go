package chip

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestDefaultPowerModelValidates(t *testing.T) {
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PowerModel){
		func(pm *PowerModel) { pm.UncoreW = -1 },
		func(pm *PowerModel) { pm.CoreLeakW = -1 },
		func(pm *PowerModel) { pm.CdynMaxWPerGHz = 0 },
		func(pm *PowerModel) { pm.GatedLeakFrac = 2 },
		func(pm *PowerModel) { pm.VRefForCdyn = 0 },
	}
	for i, mutate := range bad {
		pm := DefaultPowerModel()
		mutate(&pm)
		if err := pm.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

// TestCorePowerMonotonicity: power grows with frequency, voltage,
// temperature and dynamic capacitance — property-checked.
func TestCorePowerMonotonicity(t *testing.T) {
	pm := DefaultPowerModel()
	tp := thermal.DefaultParams()
	prop := func(fRaw, dRaw uint8) bool {
		f := units.MHz(2000 + 30*float64(fRaw))
		w := workload.Profile{Name: "q", CdynRel: 0.1 + float64(dRaw)/255}
		base := pm.CorePower(w, f, 1.25, tp, 50, false)
		if pm.CorePower(w, f+100, 1.25, tp, 50, false) <= base {
			return false // frequency
		}
		if pm.CorePower(w, f, 1.28, tp, 50, false) <= base {
			return false // voltage
		}
		if pm.CorePower(w, f, 1.25, tp, 65, false) <= base {
			return false // temperature (leakage)
		}
		w2 := w
		w2.CdynRel += 0.05
		if pm.CorePower(w2, f, 1.25, tp, 50, false) <= base {
			return false // activity
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGatedPowerIsResidualLeakage(t *testing.T) {
	pm := DefaultPowerModel()
	tp := thermal.DefaultParams()
	on := pm.CorePower(workload.Daxpy, 4500, 1.25, tp, 60, false)
	off := pm.CorePower(workload.Daxpy, 4500, 1.25, tp, 60, true)
	if off >= on/10 {
		t.Errorf("gated power %v not well below active %v", off, on)
	}
	if off <= 0 {
		t.Error("gated core draws nothing; retention leakage expected")
	}
}

func TestDynCurrent(t *testing.T) {
	pm := DefaultPowerModel()
	// I = Pdyn / V: at 1.25 V, daxpy at 4.5 GHz draws ≈ 14.9 W dynamic.
	amps := pm.DynCurrentAmps(workload.Daxpy, 4500, 1.25)
	if amps < 8 || amps > 16 {
		t.Errorf("daxpy dynamic current %.1f A implausible", amps)
	}
	if pm.DynCurrentAmps(workload.Daxpy, 4500, 0) != 0 {
		t.Error("zero voltage should yield zero current")
	}
	// Current shrinks with voltage slower than power (I = P/V, P ∝ V²).
	lower := pm.DynCurrentAmps(workload.Daxpy, 4500, 1.10)
	if lower >= amps {
		t.Error("current did not drop with voltage")
	}
}

// TestStressCornerCalibration pins the Sec. VII-A anchor: a chip full of
// daxpy at the fine-tuned operating point draws roughly 160 W.
func TestStressCornerCalibration(t *testing.T) {
	pm := DefaultPowerModel()
	tp := thermal.DefaultParams()
	total := float64(pm.UncoreW)
	for i := 0; i < 8; i++ {
		total += float64(pm.CorePower(workload.Daxpy, 4500, 1.22, tp, 70, false))
	}
	if math.Abs(total-160) > 25 {
		t.Errorf("stress corner %.1f W, want ≈160", total)
	}
}
