package chip

import (
	"math"
	"testing"

	"repro/internal/silicon"
	"repro/internal/workload"
)

func TestUndervoltMeetsTarget(t *testing.T) {
	m := NewReference()
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowestFreq < 4200 {
		t.Errorf("slowest core %v below target", res.SlowestFreq)
	}
	if res.VddReduction <= 0.02 {
		t.Errorf("default ATM at 4.2 GHz should undervolt substantially, got %v", res.VddReduction)
	}
	if res.SavingsFrac() < 0.08 || res.SavingsFrac() > 0.6 {
		t.Errorf("savings %.1f%% implausible", 100*res.SavingsFrac())
	}
	if res.PowerAfter >= res.PowerBefore {
		t.Error("undervolting did not reduce power")
	}
}

// TestFineTunedUndervoltsFurther: converting the fine-tuned margin to
// power instead of frequency saves more than default ATM — the flip
// side of the paper's overclocking choice.
func TestFineTunedUndervoltsFurther(t *testing.T) {
	mDefault := NewReference()
	base, err := mDefault.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}

	mTuned := NewReference()
	for _, core := range mTuned.Chips[0].Cores {
		_, _, _, worst, ok := tableIRow(core.Profile.Label)
		if !ok {
			t.Fatal("missing table row")
		}
		if err := mTuned.ProgramCPM(core.Profile.Label, worst); err != nil {
			t.Fatal(err)
		}
	}
	tuned, err := mTuned.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.VddReduction <= base.VddReduction {
		t.Errorf("fine-tuned reduction %v not above default %v",
			tuned.VddReduction, base.VddReduction)
	}
	if tuned.SavingsFrac() <= base.SavingsFrac() {
		t.Errorf("fine-tuned savings %.1f%% not above default %.1f%%",
			100*tuned.SavingsFrac(), 100*base.SavingsFrac())
	}
}

// TestUndervoltLimitedBySlowestCore: the chip-wide Vdd is held hostage
// by the slowest core — the restriction the paper's overclocking mode
// sidesteps (Sec. II).
func TestUndervoltLimitedBySlowestCore(t *testing.T) {
	m := NewReference()
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	// The limiting core must be (one of) the slowest at reduction 0:
	// verify no other core settles below it at the final supply.
	for _, core := range m.Chips[0].Cores {
		f, err := core.Profile.SettledFreq(0, res.Supply)
		if err != nil {
			t.Fatal(err)
		}
		limF, err2 := m.Chips[0].Cores[0].Profile.SettledFreq(0, res.Supply)
		_ = limF
		if err2 != nil {
			t.Fatal(err2)
		}
		if f < res.SlowestFreq-1 {
			t.Errorf("%s settles at %v, below the reported slowest %v",
				core.Profile.Label, f, res.SlowestFreq)
		}
	}
	// And the slowest frequency should sit essentially at the target
	// (the controller converges to the boundary).
	if math.Abs(float64(res.SlowestFreq-res.Target)) > 5 {
		t.Errorf("controller left %v of slack above the target", res.SlowestFreq-res.Target)
	}
}

func TestUndervoltUnderLoad(t *testing.T) {
	m := NewReference()
	for _, core := range m.Chips[0].Cores {
		core.SetWorkload(workload.Daxpy)
	}
	idleRes, err := func() (UndervoltResult, error) {
		m2 := NewReference()
		return m2.SolveUndervolt("P0", 4200)
	}()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SlowestFreq < 4200 {
		t.Errorf("loaded slowest %v below target", loaded.SlowestFreq)
	}
	// Under load the DC drop consumes part of the margin, so the VRM
	// reduction must be smaller than at idle.
	if loaded.VddReduction >= idleRes.VddReduction {
		t.Errorf("loaded reduction %v not below idle %v", loaded.VddReduction, idleRes.VddReduction)
	}
}

func TestUndervoltErrors(t *testing.T) {
	m := NewReference()
	if _, err := m.SolveUndervolt("P9", 4200); err == nil {
		t.Error("bogus chip accepted")
	}
	if _, err := m.SolveUndervolt("P0", 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := m.SolveUndervolt("P0", 9000); err == nil {
		t.Error("target above hardware cap accepted")
	}
	// Target above what the slowest core reaches at full voltage.
	if _, err := m.SolveUndervolt("P0", 4640); err == nil {
		t.Error("unreachable target accepted")
	}
}

// TestUndervoltRestoresPDN: the solver must not leave the chip's VRM
// modified.
func TestUndervoltRestoresPDN(t *testing.T) {
	m := NewReference()
	before := m.Chips[0].PDN
	if _, err := m.SolveUndervolt("P0", 4200); err != nil {
		t.Fatal(err)
	}
	if m.Chips[0].PDN != before {
		t.Error("SolveUndervolt mutated the chip's PDN")
	}
}

// TestUndervoltVoltageConsistency: the reported supply must equal the
// loadline at the reported power under the reduced setpoint.
func TestUndervoltVoltageConsistency(t *testing.T) {
	m := NewReference()
	res, err := m.SolveUndervolt("P0", 4200)
	if err != nil {
		t.Fatal(err)
	}
	pdnAt := m.Chips[0].PDN
	pdnAt.VNom -= res.VddReduction
	want := pdnAt.SteadyVoltage(res.PowerAfter)
	if math.Abs(float64(want-res.Supply)) > 2e-3 {
		t.Errorf("supply %v inconsistent with loadline %v", res.Supply, want)
	}
}

// tableIRow proxies the published Table I.
func tableIRow(label string) (idle, ub, normal, worst int, ok bool) {
	return silicon.ReferenceTableI(label)
}
