package chip

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestNewReferenceBuilds(t *testing.T) {
	m := NewReference()
	if len(m.Chips) != 2 {
		t.Fatalf("machine has %d chips", len(m.Chips))
	}
	if len(m.AllCores()) != 16 {
		t.Fatalf("machine has %d cores", len(m.AllCores()))
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	srv := silicon.Reference()
	opts := Options{Power: DefaultPowerModel()}
	opts.Power.CdynMaxWPerGHz = -1
	if _, err := New(srv, opts); err == nil {
		t.Error("bad power model accepted")
	}
}

func TestCoreLookup(t *testing.T) {
	m := NewReference()
	c, err := m.Core("P1C5")
	if err != nil || c.Profile.Label != "P1C5" {
		t.Fatalf("Core lookup failed: %v", err)
	}
	if _, err := m.Core("P5C0"); err == nil {
		t.Error("bogus core label accepted")
	}
	ch, err := m.ChipOf("P1C5")
	if err != nil || ch.Profile.Label != "P1" {
		t.Fatalf("ChipOf failed: %v", err)
	}
	if _, err := m.ChipOf("nope"); err == nil {
		t.Error("bogus ChipOf label accepted")
	}
}

func TestIdleOperatingPoint(t *testing.T) {
	m := NewReference()
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range st.Chips {
		// Idle chip: ~50–65 W, supply pinned near VRef by VRM
		// calibration, all cores near the 4.6 GHz default.
		if cs.Power < 45 || cs.Power > 70 {
			t.Errorf("%s idle power %v outside 45–70 W", cs.Label, cs.Power)
		}
		if math.Abs(float64(cs.Supply-1.25)) > 0.004 {
			t.Errorf("%s idle supply %v, want ≈1.25 V", cs.Label, cs.Supply)
		}
		if !cs.InBudget {
			t.Errorf("%s idle outside thermal envelope", cs.Label)
		}
		for _, core := range cs.Cores {
			if core.Freq < 4500 || core.Freq > 4700 {
				t.Errorf("%s idle frequency %v outside the default-ATM band", core.Label, core.Freq)
			}
		}
	}
}

func TestStressOperatingPoint(t *testing.T) {
	m := NewReference()
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.Daxpy)
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Chips[0]
	// The paper's stress corner: ≈160 W, ≈70 °C.
	if cs.Power < 140 || cs.Power > 185 {
		t.Errorf("stress power %v outside 140–185 W", cs.Power)
	}
	if cs.TempC < 60 || cs.TempC > 75 {
		t.Errorf("stress temperature %v outside 60–75 °C", cs.TempC)
	}
	// The DC drop must reduce every core's ATM frequency vs idle.
	m2 := NewReference()
	idle, err := m2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, core := range cs.Cores {
		if core.Freq >= idle.Chips[0].Cores[i].Freq {
			t.Errorf("%s frequency did not drop under load", core.Label)
		}
	}
}

func TestReductionRaisesFrequency(t *testing.T) {
	m := NewReference()
	base, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ProgramCPM("P0C3", 6); err != nil {
		t.Fatal(err)
	}
	tuned, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fBase, _ := base.CoreState("P0C3")
	fTuned, _ := tuned.CoreState("P0C3")
	if fTuned.Freq <= fBase.Freq+100 {
		t.Errorf("6-step reduction moved %v → %v; expected a large gain", fBase.Freq, fTuned.Freq)
	}
	if fTuned.Reduction != 6 {
		t.Errorf("state reports reduction %d", fTuned.Reduction)
	}
}

func TestStaticModePinsPState(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C0")
	core.SetMode(ModeStatic)
	if err := core.SetPState(3700); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.AllCores() {
		c.SetWorkload(workload.Daxpy) // heavy load must not move a static core
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := st.CoreState("P0C0")
	if cs.Freq != 3700 {
		t.Errorf("static core at %v, want 3700", cs.Freq)
	}
	if cs.Mode != ModeStatic {
		t.Errorf("state mode = %v", cs.Mode)
	}
}

func TestSetPStateValidation(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C0")
	if err := core.SetPState(3456); err == nil {
		t.Error("off-ladder p-state accepted")
	}
	for _, ps := range PStates {
		if err := core.SetPState(ps); err != nil {
			t.Errorf("ladder p-state %v rejected: %v", ps, err)
		}
	}
}

func TestNearestPState(t *testing.T) {
	cases := []struct {
		in, want units.MHz
	}{{4200, 4200}, {4199, 4000}, {2050, 2100}, {9999, 4200}, {3699, 3300}}
	for _, c := range cases {
		if got := NearestPState(c.in); got != c.want {
			t.Errorf("NearestPState(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGatingRemovesCore(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C7")
	core.SetGated(true)
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := st.CoreState("P0C7")
	if cs.Freq != 0 || !cs.Gated {
		t.Errorf("gated core state: freq=%v gated=%v", cs.Freq, cs.Gated)
	}
	// Gating must lower chip power vs all-ungated idle.
	m2 := NewReference()
	base, _ := m2.Solve()
	if st.Chips[0].Power >= base.Chips[0].Power {
		t.Error("gating did not reduce chip power")
	}
}

func TestATMNeverBelowPState(t *testing.T) {
	m := NewReference()
	// Even under maximum load, an ATM core's settled frequency stays at
	// or above its p-state floor.
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.Daxpy)
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range st.Chips {
		for _, cs := range ch.Cores {
			if cs.Freq < PStateMax {
				t.Errorf("%s ATM frequency %v under the p-state floor", cs.Label, cs.Freq)
			}
		}
	}
}

func TestSolveStateConsistency(t *testing.T) {
	m := NewReference()
	for i, core := range m.AllCores() {
		if i%2 == 0 {
			core.SetWorkload(workload.X264)
		}
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for ci, cs := range st.Chips {
		// Reported chip power must equal uncore + Σ core powers.
		sum := m.Power().UncoreW
		for _, c := range cs.Cores {
			sum += c.Power
		}
		if math.Abs(float64(sum-cs.Power)) > 0.5 {
			t.Errorf("chip %d power inconsistent: %v vs Σ %v", ci, cs.Power, sum)
		}
		// And the supply must satisfy the loadline at that power.
		want := m.Chips[ci].PDN.SteadyVoltage(cs.Power)
		if math.Abs(float64(want-cs.Supply)) > 1e-3 {
			t.Errorf("chip %d supply inconsistent: %v vs loadline %v", ci, cs.Supply, want)
		}
	}
}

func TestResetAll(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C2")
	core.SetWorkload(workload.MCF)
	core.SetMode(ModeStatic)
	core.SetGated(true)
	if err := m.ProgramCPM("P0C3", 4); err != nil {
		t.Fatal(err)
	}
	m.ResetAll()
	for _, c := range m.AllCores() {
		if c.Reduction() != 0 || c.Mode() != ModeATM || c.Gated() ||
			c.Workload().Name != "idle" || c.PState() != PStateMax {
			t.Errorf("%s not reset: %+v", c.Profile.Label, c)
		}
	}
}

func TestTrialAtDefaultNeverFails(t *testing.T) {
	m := NewReference()
	src := rng.New(2)
	for _, core := range m.AllCores() {
		pass, fail, first, err := m.RunTrials(core.Profile.Label, workload.X264, 50, src.Split(core.Profile.Label))
		if err != nil {
			t.Fatal(err)
		}
		if fail != 0 {
			t.Errorf("%s failed %d/50 trials at the default config (%v)", core.Profile.Label, fail, first.Failure)
		}
		if pass != 50 {
			t.Errorf("%s pass count %d", core.Profile.Label, pass)
		}
	}
}

func TestTrialBeyondLimitFails(t *testing.T) {
	m := NewReference()
	src := rng.New(3)
	for _, core := range m.AllCores() {
		label := core.Profile.Label
		_, _, _, _ = label, core, src, m
		_, _, worstLim, _, ok := silicon.ReferenceTableI(label)
		if !ok {
			t.Fatal("missing table row")
		}
		if worstLim+2 > core.Profile.MaxReduction() {
			continue
		}
		if err := m.ProgramCPM(label, worstLim+2); err != nil {
			t.Fatal(err)
		}
		_, fail, _, err := m.RunTrials(label, workload.X264, 20, src.Split(label))
		if err != nil {
			t.Fatal(err)
		}
		if fail == 0 {
			t.Errorf("%s survived 20 trials two steps past thread-worst", label)
		}
		if err := m.ProgramCPM(label, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrialUnderStaticMarginAlwaysPasses(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C0")
	core.SetMode(ModeStatic)
	// Program an absurdly aggressive CPM config: irrelevant under
	// static margin.
	if err := m.ProgramCPM("P0C0", core.Profile.MaxReduction()); err != nil {
		t.Fatal(err)
	}
	_, fail, _, err := m.RunTrials("P0C0", workload.X264, 50, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if fail != 0 {
		t.Errorf("static margin failed %d trials", fail)
	}
}

func TestSDCDetectionNeedsChecker(t *testing.T) {
	m := NewReference()
	core, _ := m.Core("P0C7")
	if err := m.ProgramCPM("P0C7", core.Profile.MaxReduction()); err != nil {
		t.Fatal(err)
	}
	noChecker := workload.X264
	noChecker.HasChecker = false
	src := rng.New(5)
	sawUndetectedSDC := false
	sawDetected := false
	for i := 0; i < 300; i++ {
		r, err := m.RunTrial("P0C7", noChecker, src.SplitIndex("t", i))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case r.Failure == FailureSDC && !r.Detected:
			sawUndetectedSDC = true
		case r.Failure != FailureNone && r.Detected:
			sawDetected = true
		case r.Failure == FailureSDC && r.Detected:
			t.Error("SDC detected without a checker")
		}
	}
	if !sawUndetectedSDC || !sawDetected {
		t.Errorf("failure mix missing kinds: undetectedSDC=%v detected=%v", sawUndetectedSDC, sawDetected)
	}
}

func TestFailureKindStrings(t *testing.T) {
	if FailureNone.String() != "ok" || FailureSDC.String() != "sdc" ||
		FailureSegfault.String() != "abnormal-exit" || FailureSystemCrash.String() != "system-crash" {
		t.Error("failure kind strings wrong")
	}
	if ModeStatic.String() != "static" || ModeATM.String() != "atm" {
		t.Error("mode strings wrong")
	}
}

func TestRunStressmarkValidates(t *testing.T) {
	m := NewReference()
	bad := workload.VoltageVirus()
	bad.ThreadsPerCore = 9
	if _, err := m.RunStressmark("P0C0", bad, rng.New(1)); err == nil {
		t.Error("invalid stressmark accepted")
	}
}

func TestTransientMatchesSolve(t *testing.T) {
	m := NewReference()
	res, err := m.Transient("P0", 3000, 1.0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range st.Chips[0].Cores {
		// The loop-level mean frequency must sit near the analytic
		// steady state (within ~1.5% — droops and slew transients eat
		// a little).
		diff := math.Abs(float64(res.MeanFreq[i]-cs.Freq)) / float64(cs.Freq)
		if diff > 0.015 {
			t.Errorf("%s transient mean %v vs solve %v (%.2f%%)",
				cs.Label, res.MeanFreq[i], cs.Freq, diff*100)
		}
	}
	if len(res.Samples) != 3000 {
		t.Errorf("sample count %d", len(res.Samples))
	}
}

func TestTransientViolationsUnderStress(t *testing.T) {
	m := NewReference()
	// Aggressive config + stressful workload: the transient must show
	// the emergency path engaging at least occasionally.
	for _, core := range m.Chips[0].Cores {
		core.SetWorkload(workload.X264)
	}
	if err := m.ProgramCPM("P0C3", 8); err != nil {
		t.Fatal(err)
	}
	res, err := m.Transient("P0", 4000, 1.0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	idleRes, err2 := func() (TransientResult, error) {
		m2 := NewReference()
		return m2.Transient("P0", 4000, 1.0, rng.New(7))
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if res.Violations <= idleRes.Violations {
		t.Logf("stress violations %d, idle %d (acceptable but unusual)", res.Violations, idleRes.Violations)
	}
}

func TestTransientArgsValidated(t *testing.T) {
	m := NewReference()
	if _, err := m.Transient("P7", 100, 1, rng.New(1)); err == nil {
		t.Error("bogus chip label accepted")
	}
	if _, err := m.Transient("P0", 0, 1, rng.New(1)); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := m.Transient("P0", 10, -1, rng.New(1)); err == nil {
		t.Error("negative dt accepted")
	}
}
