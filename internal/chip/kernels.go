package chip

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/workload"
)

// KernelTrialResult extends a trial with the executed kernel's verdict:
// for the micro-benchmarks the methodology does not merely *model* the
// result checker — it runs the kernel and checks the checksum, with the
// simulator injecting the corruption a timing violation would cause.
type KernelTrialResult struct {
	TrialResult
	// Checksum is the kernel's (possibly corrupted) output.
	Checksum uint64
	// CheckerCaught reports whether the checksum comparison detected a
	// corruption.
	CheckerCaught bool
}

// RunKernelTrial runs one micro-benchmark trial on the labelled core at
// its current configuration, actually executing the kernel body:
//
//   - a clean run returns the kernel's true checksum;
//   - a run that the failure model marks as SDC executes the kernel and
//     then flips bits in its output — the checker catches it;
//   - crashes and abnormal exits return no checksum (the paper counts
//     these as directly observable failures).
//
// size scales the kernel's work (and wall-clock time) without affecting
// the failure model.
func (m *Machine) RunKernelTrial(label, kernelName string, size int, src *rng.Source) (KernelTrialResult, error) {
	k, ok := workload.KernelFor(kernelName)
	if !ok {
		return KernelTrialResult{}, fmt.Errorf("chip: %q has no executable kernel", kernelName)
	}
	profile, err := workload.ByName(kernelName)
	if err != nil {
		return KernelTrialResult{}, err
	}
	tr, err := m.RunTrial(label, profile, src)
	if err != nil {
		return KernelTrialResult{}, err
	}
	res := KernelTrialResult{TrialResult: tr}
	switch tr.Failure {
	case FailureNone:
		res.Checksum = k.Run(size)
		res.CheckerCaught = false
	case FailureSDC:
		// Execute, then corrupt the way a latched timing violation
		// would: a single flipped datum cascades into the checksum.
		res.Checksum = k.Run(size) ^ (1 << (src.Intn(64)))
		res.CheckerCaught = res.Checksum != k.Expected(size)
	default:
		// Crash/abnormal exit: no result produced.
	}
	return res, nil
}
