package chip

import (
	"fmt"

	"repro/internal/dpll"
	"repro/internal/rng"
	"repro/internal/units"
)

// TransientSample is one control-interval snapshot of a transient run.
type TransientSample struct {
	TimeNs float64
	Supply units.Volt
	Freqs  []units.MHz
}

// TransientResult is a transient trace of one chip.
type TransientResult struct {
	Samples    []TransientSample
	Violations int
	// MeanFreq is each core's average frequency over the run — the
	// 32 ms sliding-window average the off-chip controller consumes.
	MeanFreq []units.MHz
}

// Transient runs the per-core DPLL loops of one chip for n control
// intervals of dtNs nanoseconds against the live PDN: the steady DC
// operating point plus stochastic di/dt droop events whose rate and
// magnitude follow each core's workload stress score.
//
// This is the cycle-approximate view of what the steady-state solver
// shortcuts; TestTransientMatchesSolve verifies the two agree. It also
// demonstrates the loop's emergency response — the reason infrequent
// droops cost almost no average frequency under ATM (Sec. II).
func (m *Machine) Transient(chipLabel string, n int, dtNs float64, src *rng.Source) (TransientResult, error) {
	var c *Chip
	for _, ch := range m.Chips {
		if ch.Profile.Label == chipLabel {
			c = ch
			break
		}
	}
	if c == nil {
		return TransientResult{}, fmt.Errorf("chip: no chip %q", chipLabel)
	}
	if n <= 0 || dtNs <= 0 {
		return TransientResult{}, fmt.Errorf("chip: transient needs positive n and dt")
	}

	p := m.profile.Params()
	loops := make([]*dpll.Loop, len(c.Cores))
	for i, core := range c.Cores {
		cfg := dpll.DefaultConfig(p.ThetaUnits, p.FMaxHW)
		loop, err := dpll.New(core.Monitor, cfg, core.Profile.DefaultFreq())
		if err != nil {
			return TransientResult{}, err
		}
		loops[i] = loop
	}

	// Steady DC point from the solver (frequency feedback on power is
	// second-order over a short transient, so hold the DC supply).
	st, err := m.solveChip(c)
	if err != nil {
		return TransientResult{}, err
	}
	baseV := st.Supply

	res := TransientResult{MeanFreq: make([]units.MHz, len(c.Cores))}
	sums := make([]float64, len(c.Cores))

	// Droop event state: an active droop decays over a few intervals.
	droop := 0.0       // volts, positive = sag
	const decay = 0.55 // per-interval decay of an active droop

	for step := 0; step < n; step++ {
		// Fire new events: rate scales with the worst stress score on
		// the chip; magnitude with the synchronized current swing.
		worst := 0.0
		for _, core := range c.Cores {
			if !core.gated && core.work.StressScore > worst {
				worst = core.work.StressScore
			}
		}
		if worst > 0 && src.Float64() < 0.02+0.10*worst {
			amps := 0.0
			for i, core := range c.Cores {
				if core.gated {
					continue
				}
				amps += m.power.DynCurrentAmps(core.work, loops[i].Freq(), baseV) * core.work.StressScore
			}
			peak := float64(c.PDN.FirstDroopPeak(amps))
			droop += peak * (0.5 + 0.5*src.Float64())
		}
		droop *= decay

		v := units.Volt(float64(baseV) - droop)
		sample := TransientSample{TimeNs: float64(step) * dtNs, Supply: v}
		for i, loop := range loops {
			if c.Cores[i].gated {
				sample.Freqs = append(sample.Freqs, 0)
				continue
			}
			r := loop.Step(v)
			if r.Units < 0 {
				res.Violations++
			}
			sample.Freqs = append(sample.Freqs, loop.Freq())
			sums[i] += float64(loop.Freq())
		}
		res.Samples = append(res.Samples, sample)
	}
	for i := range sums {
		res.MeanFreq[i] = units.MHz(sums[i] / float64(n))
	}
	return res, nil
}
