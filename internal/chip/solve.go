package chip

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// CoreState is one core's steady operating point.
type CoreState struct {
	Label     string
	Mode      Mode
	Reduction int
	Gated     bool
	Workload  string
	Freq      units.MHz
	Power     units.Watt
}

// ChipState is one processor's steady operating point.
type ChipState struct {
	Label    string
	Supply   units.Volt
	DCDrop   units.Volt
	Power    units.Watt
	TempC    units.Celsius
	InBudget bool // within the thermal envelope
	Cores    []CoreState
}

// State is the whole machine's operating point.
type State struct {
	Chips []ChipState
}

// CoreState returns the state entry for a core label.
func (s State) CoreState(label string) (CoreState, error) {
	for _, c := range s.Chips {
		for _, cs := range c.Cores {
			if cs.Label == label {
				return cs, nil
			}
		}
	}
	return CoreState{}, fmt.Errorf("chip: no core %q in state", label)
}

// ChipState returns the state entry for a chip label.
func (s State) ChipState(label string) (ChipState, error) {
	for _, c := range s.Chips {
		if c.Label == label {
			return c, nil
		}
	}
	return ChipState{}, fmt.Errorf("chip: no chip %q in state", label)
}

// solveOpts tunes the fixed-point iteration.
const (
	solveMaxIter = 200
	solveTolV    = 1e-7 // volts
)

// Solve finds the steady operating point of every chip: the fixed point
// of the frequency ↔ power ↔ voltage ↔ temperature loop.
//
// ATM cores settle at the frequency their CPM guard dictates under the
// shared supply; that frequency sets dynamic power; total power sets the
// DC drop through the loadline and the junction temperature through the
// thermal resistance; both feed back into frequency (voltage) and
// leakage (temperature). The loop is a contraction at sane operating
// points and converges in a handful of iterations.
func (m *Machine) Solve() (State, error) {
	var st State
	for _, c := range m.Chips {
		cs, err := m.solveChip(c)
		if err != nil {
			return State{}, err
		}
		st.Chips = append(st.Chips, cs)
	}
	return st, nil
}

// solveChip runs the fixed point for one chip.
func (m *Machine) solveChip(c *Chip) (ChipState, error) {
	p := m.profile.Params()
	v := p.VRef
	t := c.Thermal.SteadyTemp(60)

	var (
		freqs  = make([]units.MHz, len(c.Cores))
		powers = make([]units.Watt, len(c.Cores))
		total  units.Watt
	)
	for iter := 0; iter < solveMaxIter; iter++ {
		total = m.power.UncoreW
		for i, core := range c.Cores {
			f, err := m.coreFreqAt(core, v)
			if err != nil {
				return ChipState{}, err
			}
			freqs[i] = f
			powers[i] = m.power.CorePower(core.work, f, v, c.Thermal, t, core.gated)
			total += powers[i]
		}
		vNew := c.PDN.SteadyVoltage(total)
		tNew := c.Thermal.SteadyTemp(total)
		done := math.Abs(float64(vNew-v)) < solveTolV && math.Abs(float64(tNew-t)) < 1e-4
		// Light damping keeps the leakage/voltage double feedback
		// monotone even at extreme operating points.
		v = units.Volt(0.5*float64(v) + 0.5*float64(vNew))
		t = units.Celsius(0.5*float64(t) + 0.5*float64(tNew))
		if done {
			break
		}
	}

	cs := ChipState{
		Label:    c.Profile.Label,
		Supply:   v,
		DCDrop:   c.PDN.VNom - v,
		Power:    total,
		TempC:    t,
		InBudget: c.Thermal.WithinEnvelope(total),
	}
	for i, core := range c.Cores {
		cs.Cores = append(cs.Cores, CoreState{
			Label:     core.Profile.Label,
			Mode:      core.mode,
			Reduction: core.Reduction(),
			Gated:     core.gated,
			Workload:  core.work.Name,
			Freq:      freqs[i],
			Power:     powers[i],
		})
	}
	return cs, nil
}

// coreFreqAt returns the core's clock at supply voltage v.
func (m *Machine) coreFreqAt(core *Core, v units.Volt) (units.MHz, error) {
	if core.gated {
		return 0, nil
	}
	switch core.mode {
	case ModeStatic:
		// Static margin: the p-state frequency is guaranteed by the
		// static guardband regardless of load.
		return core.pstate, nil
	case ModeATM:
		// ATM tunes frequency around the p-state: at the overclocking
		// setup's full voltage the settle point always sits above it,
		// and under the undervolting controller it is the quantity the
		// frequency-target constraint watches.
		p := m.profile.Params()
		return p.SettleFreq(core.Monitor.SettleGuardPs(), v), nil
	default:
		return 0, fmt.Errorf("chip: core %s in unknown mode %v", core.Profile.Label, core.mode)
	}
}
