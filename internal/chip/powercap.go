package chip

import (
	"fmt"

	"repro/internal/units"
)

// Power capping is the other duty of the POWER7/7+ EnergyScale
// controller besides undervolting: hold a chip under an externally
// imposed power budget by stepping the DVFS ladder down. The paper's
// management layer effectively re-derives a per-QoS cap (Sec. VII-C,
// "total chip power under critical and co-running background workloads
// cannot exceed the calculated power budget"); this is the firmware
// mechanism that enforces such a cap chip-wide.

// CapResult reports the capping controller's operating point.
type CapResult struct {
	Chip string
	// CapW is the imposed budget.
	CapW units.Watt
	// ATMKept reports whether the full fine-tuned ATM configuration
	// already fit the budget (no throttling applied).
	ATMKept bool
	// PState is the chip-wide static p-state chosen when throttling was
	// needed (0 when ATMKept).
	PState units.MHz
	// Power is the resulting chip power.
	Power units.Watt
	// Met reports whether the budget was achieved; false means even the
	// lowest p-state exceeds the cap (the controller would have to
	// power-gate, which is left to the scheduler).
	Met bool
}

// SolveCapped finds the fastest chip-wide clocking that keeps the chip
// at or under capW with the current workloads: first the cores' present
// (ATM) configuration, then the static DVFS ladder from the top down.
// The machine is left in the chosen configuration; callers that only
// want the answer should snapshot and restore around the call.
func (m *Machine) SolveCapped(chipLabel string, capW units.Watt) (CapResult, error) {
	var c *Chip
	for _, ch := range m.Chips {
		if ch.Profile.Label == chipLabel {
			c = ch
			break
		}
	}
	if c == nil {
		return CapResult{}, fmt.Errorf("chip: no chip %q", chipLabel)
	}
	if capW <= 0 {
		return CapResult{}, fmt.Errorf("chip: non-positive power cap %v", capW)
	}
	res := CapResult{Chip: chipLabel, CapW: capW}

	st, err := m.solveChip(c)
	if err != nil {
		return CapResult{}, err
	}
	if st.Power <= capW {
		res.ATMKept = true
		res.Power = st.Power
		res.Met = true
		return res, nil
	}

	// Remember each core's clocking to restore only if nothing fits —
	// callers get the chosen throttled state otherwise.
	for i := len(PStates) - 1; i >= 0; i-- {
		ps := PStates[i]
		for _, core := range c.Cores {
			core.SetMode(ModeStatic)
			if err := core.SetPState(ps); err != nil {
				return CapResult{}, err
			}
		}
		st, err := m.solveChip(c)
		if err != nil {
			return CapResult{}, err
		}
		if st.Power <= capW {
			res.PState = ps
			res.Power = st.Power
			res.Met = true
			return res, nil
		}
		if i == 0 {
			res.PState = ps
			res.Power = st.Power
		}
	}
	// Even the floor exceeds the cap; report the floor honestly.
	return res, nil
}
