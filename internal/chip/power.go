package chip

import (
	"fmt"

	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// PowerModel holds the electrical power constants of one processor.
//
// Calibration targets (Sec. VII-A): the 32-thread daxpy + issue-throttle
// virus raises chip power to ≈160 W and die temperature to 70 °C; an
// idle chip draws ≈55–60 W.
type PowerModel struct {
	// UncoreW is the chip's non-core power (nest, memory controllers,
	// IO, clock distribution).
	UncoreW units.Watt
	// CoreLeakW is one core's leakage at ambient temperature; it scales
	// with junction temperature via thermal.Params.LeakageScale.
	CoreLeakW units.Watt
	// CdynMaxWPerGHz is the dynamic power of a CdynRel = 1.0 workload
	// (daxpy) per GHz at VRef. The V² scaling is applied relative to
	// VRef.
	CdynMaxWPerGHz units.Watt
	// GatedLeakFrac is the fraction of leakage a power-gated core
	// retains.
	GatedLeakFrac float64
	// VRefForCdyn is the voltage CdynMaxWPerGHz is quoted at.
	VRefForCdyn units.Volt
}

// DefaultPowerModel returns the constants used for the POWER7+ model.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		UncoreW:        24,
		CoreLeakW:      1.9,
		CdynMaxWPerGHz: 3.3,
		GatedLeakFrac:  0.06,
		VRefForCdyn:    1.25,
	}
}

// Validate reports whether the model is usable.
func (pm PowerModel) Validate() error {
	switch {
	case pm.UncoreW < 0:
		return fmt.Errorf("chip: negative uncore power %v", pm.UncoreW)
	case pm.CoreLeakW < 0:
		return fmt.Errorf("chip: negative core leakage %v", pm.CoreLeakW)
	case pm.CdynMaxWPerGHz <= 0:
		return fmt.Errorf("chip: non-positive Cdyn %v", pm.CdynMaxWPerGHz)
	case pm.GatedLeakFrac < 0 || pm.GatedLeakFrac > 1:
		return fmt.Errorf("chip: gated leak fraction %g outside [0,1]", pm.GatedLeakFrac)
	case pm.VRefForCdyn <= 0:
		return fmt.Errorf("chip: non-positive VRefForCdyn %v", pm.VRefForCdyn)
	}
	return nil
}

// CorePower returns one core's power running workload w at frequency f
// and supply v, with junction temperature t.
func (pm PowerModel) CorePower(w workload.Profile, f units.MHz, v units.Volt,
	tp thermal.Params, t units.Celsius, gated bool) units.Watt {
	vr := float64(v) / float64(pm.VRefForCdyn)
	// Sub-threshold leakage falls steeply with supply (DIBL); a cubic
	// dependence is the usual compact-model linearization at this
	// operating range.
	leak := float64(pm.CoreLeakW) * tp.LeakageScale(t) * vr * vr * vr
	if gated {
		return units.Watt(leak * pm.GatedLeakFrac)
	}
	dyn := w.CdynRel * float64(pm.CdynMaxWPerGHz) * vr * vr * f.GHz()
	return units.Watt(leak + dyn)
}

// DynCurrentAmps returns the dynamic supply current of one core — the
// quantity whose synchronized steps drive di/dt droops.
func (pm PowerModel) DynCurrentAmps(w workload.Profile, f units.MHz, v units.Volt) float64 {
	if v <= 0 {
		return 0
	}
	vr := float64(v) / float64(pm.VRefForCdyn)
	dyn := w.CdynRel * float64(pm.CdynMaxWPerGHz) * vr * vr * f.GHz()
	return dyn / float64(v)
}
