package chip

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/workload"
)

// ErrTransient marks infrastructure failures of the test procedure
// itself — a flaky harness, a telemetry upset — as opposed to a timing
// violation of the silicon under test or a structural model error.
// Callers running characterization or deployment procedures may retry
// operations that fail with an error wrapping ErrTransient; any other
// error is a bug and must abort.
var ErrTransient = errors.New("transient infrastructure fault")

// TrialFault is an injection hook consulted after every trial: it may
// pass the result through unchanged, perturb it, or return an error
// (wrapping ErrTransient for retryable harness failures). It exists so
// internal/fault can arm spurious trial failures without the simulation
// packages importing the injector.
type TrialFault func(label, workload string, res TrialResult) (TrialResult, error)

// FailureKind classifies how a run failed (Sec. III-B: "abnormal
// application termination (e.g., segmentation fault), silent data
// corruption (SDC), or a system crash").
type FailureKind int

// Failure kinds.
const (
	FailureNone FailureKind = iota
	FailureSegfault
	FailureSDC
	FailureSystemCrash
)

func (k FailureKind) String() string {
	switch k {
	case FailureNone:
		return "ok"
	case FailureSegfault:
		return "abnormal-exit"
	case FailureSDC:
		return "sdc"
	case FailureSystemCrash:
		return "system-crash"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// TrialResult is the outcome of running one workload once on one core at
// its current CPM configuration.
type TrialResult struct {
	Core      string
	Workload  string
	Reduction int
	Failure   FailureKind
	// Detected reports whether the methodology can observe the failure:
	// crashes and abnormal exits are always visible; SDC requires the
	// workload's result checker.
	Detected bool
}

// OK reports whether the run completed and verified correctly.
func (r TrialResult) OK() bool { return r.Failure == FailureNone }

// RunTrial executes one stochastic trial of workload w on the labelled
// core at its currently programmed CPM reduction.
//
// The trial asks the silicon failure model whether the guarded CPM path
// still covers the true critical path under the workload's uncovered
// droop tail. On a timing violation, the failure manifestation is drawn
// from the empirical mix the paper reports; whether it is *detected*
// depends on the workload's checker (SDCs in checker-less programs
// escape — which is why the methodology insists on checked workloads).
//
//atm:hotpath
func (m *Machine) RunTrial(label string, w workload.Profile, src *rng.Source) (TrialResult, error) {
	res, err := m.runTrialModel(label, w, src)
	if err != nil {
		return res, err
	}
	if m.trialFault != nil {
		// The harness can fail independently of how the silicon behaved:
		// the hook sees every trial, clean or not.
		return m.trialFault(label, w.Name, res)
	}
	return res, nil
}

// runTrialModel is the physical trial: the failure model without any
// injected harness faults.
//
//atm:hotpath
func (m *Machine) runTrialModel(label string, w workload.Profile, src *rng.Source) (TrialResult, error) {
	core, err := m.Core(label)
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{
		Core:      label,
		Workload:  w.Name,
		Reduction: core.Reduction(),
	}
	if core.mode != ModeATM {
		// Static margin guards the worst case by construction; a trial
		// under static margin always passes.
		res.Detected = true
		return res, nil
	}
	ok, err := core.Profile.SurvivesTrial(core.Reduction(), w.StressScore, src)
	if err != nil {
		return TrialResult{}, err
	}
	if ok {
		res.Detected = true
		return res, nil
	}
	// Timing violation: draw the manifestation.
	switch u := src.Float64(); {
	case u < 0.45:
		res.Failure = FailureSegfault
		res.Detected = true
	case u < 0.75:
		res.Failure = FailureSystemCrash
		res.Detected = true
	default:
		res.Failure = FailureSDC
		res.Detected = w.HasChecker
	}
	return res, nil
}

// RunTrials runs n independent trials and returns the number that
// passed, the number that failed, and the first failing result.
func (m *Machine) RunTrials(label string, w workload.Profile, n int, src *rng.Source) (pass, fail int, first TrialResult, err error) {
	for i := 0; i < n; i++ {
		r, e := m.RunTrial(label, w, src.SplitIndex("trial", i))
		if e != nil {
			return 0, 0, TrialResult{}, e
		}
		if r.OK() {
			pass++
			continue
		}
		if fail == 0 {
			first = r
		}
		fail++
	}
	return pass, fail, first, nil
}

// RunStressmark executes a stressmark trial: the stress score is the
// mark's own, and the synchronized variants also verify the chip stays
// inside its thermal envelope at the stressmark operating point.
func (m *Machine) RunStressmark(label string, s workload.Stressmark, src *rng.Source) (TrialResult, error) {
	if err := s.Validate(); err != nil {
		return TrialResult{}, err
	}
	res, err := m.RunTrial(label, s.Profile, src)
	if err != nil {
		return res, err
	}
	return res, nil
}

// TrialObserver is notified once per retry-wrapped trial (RunTrialRetry
// / RunStressmarkRetry) with the number of transient retries consumed
// and the final outcome. It is the observability plane's tap: observers
// count and trace, they never perturb the trial or its random streams.
type TrialObserver func(label, workload string, retries int, res TrialResult, err error)

// retryTransient runs one trial attempt through run, retrying up to
// retries additional times when the attempt fails with an error wrapping
// ErrTransient. Attempt 0 draws from src itself — so with no faults
// armed the stream consumed is identical to a plain single run — and
// each retry draws from an independent split, keeping the parent stream
// untouched. used reports how many retries were actually consumed.
func retryTransient(run func(*rng.Source) (TrialResult, error), src *rng.Source, retries int) (res TrialResult, used int, err error) {
	res, err = run(src)
	for a := 1; a <= retries && err != nil && errors.Is(err, ErrTransient); a++ {
		used = a
		res, err = run(src.SplitIndex("retry", a))
	}
	if err != nil && errors.Is(err, ErrTransient) && retries > 0 {
		return res, used, fmt.Errorf("%w (persisted through %d retries)", err, retries)
	}
	return res, used, err
}

// RunTrialRetry is RunTrial with a bounded retry budget for transient
// harness failures (ErrTransient). Genuine model errors and timing
// violations are never retried.
func (m *Machine) RunTrialRetry(label string, w workload.Profile, src *rng.Source, retries int) (TrialResult, error) {
	res, used, err := retryTransient(func(s *rng.Source) (TrialResult, error) {
		return m.RunTrial(label, w, s)
	}, src, retries)
	if m.trialObserver != nil {
		m.trialObserver(label, w.Name, used, res, err)
	}
	return res, err
}

// RunStressmarkRetry is RunStressmark with a bounded retry budget for
// transient harness failures.
func (m *Machine) RunStressmarkRetry(label string, s workload.Stressmark, src *rng.Source, retries int) (TrialResult, error) {
	res, used, err := retryTransient(func(r *rng.Source) (TrialResult, error) {
		return m.RunStressmark(label, s, r)
	}, src, retries)
	if m.trialObserver != nil {
		m.trialObserver(label, s.Profile.Name, used, res, err)
	}
	return res, err
}
