// Package chip assembles the full platform model: a server of POWER7+
// processors whose cores each carry a CPM monitor and an ATM control
// loop, sharing a per-chip power-delivery network and thermal path.
//
// The package provides the two execution models the experiments need:
//
//   - a steady-state solver (solve.go) that finds the fixed point of the
//     frequency ↔ power ↔ voltage loop — the operating point every
//     table and figure of the paper is measured at;
//   - a stochastic trial runner (trial.go) that decides whether a
//     workload executes correctly at a CPM configuration, reproducing
//     the failure taxonomy of Sec. III-B (crash, abnormal exit, SDC);
//   - a transient stepper (transient.go) that runs the per-interval
//     DPLL loops against PDN noise for demonstration and validation.
package chip

import (
	"fmt"

	"repro/internal/cpm"
	"repro/internal/pdn"
	"repro/internal/silicon"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// Mode selects how a core's clock is driven.
type Mode int

// Core clocking modes.
const (
	// ModeStatic pins the core at its DVFS p-state frequency with the
	// full static timing margin (ATM off — the paper's baseline).
	ModeStatic Mode = iota
	// ModeATM lets the per-core control loop convert reclaimed margin
	// into frequency above the p-state (undervolting disabled, Sec. II).
	ModeATM
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeATM:
		return "atm"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PState is the coarse DVFS ladder of the POWER7+ (Sec. II: 2.1 GHz to
// 4.2 GHz).
var PStates = []units.MHz{2100, 2500, 2900, 3300, 3700, 4000, 4200}

// PStateMin and PStateMax bound the ladder.
var (
	PStateMin = PStates[0]
	PStateMax = PStates[len(PStates)-1]
)

// NearestPState returns the highest p-state not exceeding f (or the
// lowest p-state when f is below the ladder).
func NearestPState(f units.MHz) units.MHz {
	best := PStateMin
	for _, p := range PStates {
		if p <= f && p > best {
			best = p
		}
	}
	return best
}

// Core is the runtime state of one core.
type Core struct {
	Profile *silicon.CoreProfile
	Monitor *cpm.Monitor

	mode   Mode
	pstate units.MHz
	gated  bool
	work   workload.Profile
}

// Chip is one processor: eight cores on a shared rail.
type Chip struct {
	Profile *silicon.ChipProfile
	PDN     pdn.Params
	Thermal thermal.Params
	Cores   []*Core
}

// Machine is the two-socket server.
type Machine struct {
	profile *silicon.ServerProfile
	power   PowerModel
	Chips   []*Chip

	// trialFault, when non-nil, is consulted after every trial so a
	// fault injector can emulate a flaky test harness (see trial.go).
	trialFault TrialFault

	// trialObserver, when non-nil, is notified after every retry-wrapped
	// trial so the observability plane can count trials and transient
	// retries without the chip package importing internal/obs.
	trialObserver TrialObserver
}

// SetTrialFault arms (or, with nil, disarms) the trial fault hook.
func (m *Machine) SetTrialFault(f TrialFault) { m.trialFault = f }

// SetTrialObserver installs (or, with nil, removes) the trial observer
// notified by RunTrialRetry and RunStressmarkRetry. The observer must
// not run trials itself and must not draw randomness — it sees
// outcomes, it does not influence them.
func (m *Machine) SetTrialObserver(o TrialObserver) { m.trialObserver = o }

// Options configures machine construction.
type Options struct {
	// PDN overrides the power-delivery constants (DefaultParams when
	// zero-valued).
	PDN pdn.Params
	// Thermal overrides the thermal constants.
	Thermal thermal.Params
	// Power overrides the power-model constants.
	Power PowerModel
}

// New assembles a Machine over a silicon profile. Every core starts in
// ModeATM at the manufacturer preset (reduction 0), idle, at the top
// p-state — the default ATM system of Fig. 1's third bar.
func New(profile *silicon.ServerProfile, opts Options) (*Machine, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	pp := opts.PDN
	if pp == (pdn.Params{}) {
		pp = pdn.DefaultParams()
	}
	tp := opts.Thermal
	if tp == (thermal.Params{}) {
		tp = thermal.DefaultParams()
	}
	pm := opts.Power
	if pm == (PowerModel{}) {
		pm = DefaultPowerModel()
	}
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}

	m := &Machine{profile: profile, power: pm}
	for _, chp := range profile.Chips {
		c := &Chip{Profile: chp, Thermal: tp}
		for _, cp := range chp.Cores {
			c.Cores = append(c.Cores, &Core{
				Profile: cp,
				Monitor: cpm.New(cp),
				mode:    ModeATM,
				pstate:  PStateMax,
				work:    workload.Idle,
			})
		}
		// Calibrate each chip's VRM so the on-die supply sits at VRef
		// under the idle power draw (the paper's 1.25 V / 4.2 GHz
		// p-state anchor).
		idleP := m.idlePowerEstimate(c)
		c.PDN = pp.CalibrateVRM(profile.Params().VRef, idleP)
		m.Chips = append(m.Chips, c)
	}
	return m, nil
}

// NewReference assembles a Machine over the paper-calibrated silicon.
func NewReference() *Machine {
	m, err := New(silicon.Reference(), Options{})
	if err != nil {
		panic(fmt.Sprintf("chip: reference machine failed to build: %v", err))
	}
	return m
}

// idlePowerEstimate computes the chip's power with every core idle in
// default ATM at VRef — the VRM calibration anchor.
func (m *Machine) idlePowerEstimate(c *Chip) units.Watt {
	p := m.profile.Params()
	var total units.Watt = m.power.UncoreW
	for _, core := range c.Cores {
		f := core.Profile.DefaultFreq()
		total += m.power.CorePower(workload.Idle, f, p.VRef, c.Thermal, c.Thermal.SteadyTemp(60), false)
	}
	return total
}

// Profile returns the silicon the machine was built over.
func (m *Machine) Profile() *silicon.ServerProfile { return m.profile }

// Power returns the machine's power-model constants.
func (m *Machine) Power() PowerModel { return m.power }

// Core returns the core with the given label.
func (m *Machine) Core(label string) (*Core, error) {
	for _, c := range m.Chips {
		for _, core := range c.Cores {
			if core.Profile.Label == label {
				return core, nil
			}
		}
	}
	return nil, fmt.Errorf("chip: no core %q", label)
}

// ChipOf returns the chip containing the core with the given label.
func (m *Machine) ChipOf(label string) (*Chip, error) {
	for _, c := range m.Chips {
		for _, core := range c.Cores {
			if core.Profile.Label == label {
				return c, nil
			}
		}
	}
	return nil, fmt.Errorf("chip: no core %q", label)
}

// AllCores returns every core in (chip, core) order.
func (m *Machine) AllCores() []*Core {
	var out []*Core
	for _, c := range m.Chips {
		out = append(out, c.Cores...)
	}
	return out
}

// ProgramCPM sets a core's inserted-delay reduction — the fine-tuning
// knob, equivalent to the specialized service-processor commands.
func (m *Machine) ProgramCPM(label string, reduction int) error {
	core, err := m.Core(label)
	if err != nil {
		return err
	}
	return core.Monitor.Program(reduction)
}

// Reduction returns a core's current CPM reduction.
func (c *Core) Reduction() int { return c.Monitor.Reduction() }

// Mode returns the core's clocking mode.
func (c *Core) Mode() Mode { return c.mode }

// SetMode switches between static-margin and ATM clocking.
func (c *Core) SetMode(mode Mode) { c.mode = mode }

// PState returns the core's DVFS p-state frequency.
func (c *Core) PState() units.MHz { return c.pstate }

// SetPState pins the core's DVFS p-state. The value must be on the
// ladder.
func (c *Core) SetPState(f units.MHz) error {
	for _, p := range PStates {
		//lint:ignore floatcmp ladder membership: a requested p-state must be bit-identical to a table entry, not merely close to one
		if p == f {
			c.pstate = f
			return nil
		}
	}
	return fmt.Errorf("chip: %v is not a POWER7+ p-state", f)
}

// Gated reports whether the core is power-gated.
func (c *Core) Gated() bool { return c.gated }

// SetGated power-gates or wakes the core.
func (c *Core) SetGated(g bool) { c.gated = g }

// Workload returns the profile currently scheduled on the core.
func (c *Core) Workload() workload.Profile { return c.work }

// SetWorkload schedules a workload profile on the core.
func (c *Core) SetWorkload(w workload.Profile) { c.work = w }

// ResetAll returns every core to the default-ATM idle state: preset
// CPM configuration, ATM mode, top p-state, ungated, idle workload.
func (m *Machine) ResetAll() {
	for _, core := range m.AllCores() {
		if err := core.Monitor.Program(0); err != nil {
			panic(err) // reduction 0 is always legal
		}
		core.mode = ModeATM
		core.pstate = PStateMax
		core.gated = false
		core.work = workload.Idle
	}
}
