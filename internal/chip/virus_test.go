package chip

import (
	"testing"

	"repro/internal/workload"
)

func TestVirusTransientAtDefaultConfig(t *testing.T) {
	m := NewReference()
	res, err := m.VirusTransient("P0", workload.VoltageVirus(), 50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == 0 {
		t.Fatal("no intervals stepped")
	}
	// The virus rings the supply well below the DC point.
	if res.MinSupply >= res.MeanSupply {
		t.Errorf("no droop observed: min %v, mean %v", res.MinSupply, res.MeanSupply)
	}
	drop := res.MeanSupply.Millivolts() - res.MinSupply.Millivolts()
	if drop < 5 || drop > 80 {
		t.Errorf("peak droop %.1f mV outside the plausible band", drop)
	}
	// At the conservative default configuration, the loop rides the
	// noise: average frequency stays within a few percent of the
	// default, whatever violations occur are absorbed.
	for i, f := range res.MeanFreq {
		def := float64(m.Chips[0].Cores[i].Profile.DefaultFreq())
		if float64(f) < 0.93*def {
			t.Errorf("core %d mean frequency %v collapsed under the virus (default %.0f)", i, f, def)
		}
	}
}

// TestVirusSilentDangerMechanism pins the model's subtle point: an
// aggressive configuration's *shorter* CPM path is less sensitive to
// voltage in absolute picoseconds, so the loop observes no more margin
// violations than at the default — while the true-path failure hazard
// (what the trial model charges) grows sharply. The danger of
// fine-tuning is precisely that the canary gets quieter as the coal
// mine gets worse; only correctness checking sees it (Sec. III-B).
func TestVirusSilentDangerMechanism(t *testing.T) {
	violationsAt := func(red int) int {
		m := NewReference()
		for _, core := range m.Chips[0].Cores {
			r := red
			if r > core.Profile.MaxReduction() {
				r = core.Profile.MaxReduction()
			}
			if err := m.ProgramCPM(core.Profile.Label, r); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.VirusTransient("P0", workload.VoltageVirus(), 50, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Violations
	}
	vDeep, vDefault := violationsAt(7), violationsAt(0)
	if vDeep > vDefault {
		t.Errorf("measured violations grew with reduction (%d > %d); the shorter CPM path should see less",
			vDeep, vDefault)
	}
	// Meanwhile the true-path hazard explodes: two steps beyond
	// thread-worst the virus trial fails almost always.
	m := NewReference()
	core := m.Chips[0].Cores[0].Profile
	worst := core.DeterministicLimit(1)
	pAt, err := core.FailureProb(worst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst+2 <= core.MaxReduction() {
		pBeyond, err := core.FailureProb(worst+2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pBeyond < 100*pAt && pBeyond < 0.5 {
			t.Errorf("true-path hazard did not grow: %g at the limit vs %g beyond", pAt, pBeyond)
		}
	}
}

func TestVirusTransientValidation(t *testing.T) {
	m := NewReference()
	if _, err := m.VirusTransient("P9", workload.VoltageVirus(), 10, 1); err == nil {
		t.Error("bogus chip accepted")
	}
	if _, err := m.VirusTransient("P0", workload.PowerVirus(), 10, 1); err == nil {
		t.Error("unsynchronized stressmark accepted")
	}
	if _, err := m.VirusTransient("P0", workload.VoltageVirus(), 0, 1); err == nil {
		t.Error("zero periods accepted")
	}
}
