package cpm

import (
	"math"
	"testing"

	"repro/internal/silicon"
	"repro/internal/units"
)

func refCore(t *testing.T, label string) *silicon.CoreProfile {
	t.Helper()
	c := silicon.Reference().FindCore(label)
	if c == nil {
		t.Fatalf("no core %s", label)
	}
	return c
}

func TestNewStartsAtPreset(t *testing.T) {
	c := refCore(t, "P0C0")
	m := New(c)
	if m.Taps() != c.PresetTaps {
		t.Errorf("new monitor at tap %d, want preset %d", m.Taps(), c.PresetTaps)
	}
	if m.Reduction() != 0 {
		t.Errorf("new monitor reduction = %d, want 0", m.Reduction())
	}
	if m.Core() != c {
		t.Error("Core() does not return the profile")
	}
}

func TestProgramAccounting(t *testing.T) {
	c := refCore(t, "P0C3")
	m := New(c)
	if err := m.Program(5); err != nil {
		t.Fatal(err)
	}
	if m.Reduction() != 5 || m.Taps() != c.PresetTaps-5 {
		t.Errorf("after Program(5): reduction=%d taps=%d", m.Reduction(), m.Taps())
	}
	if err := m.Program(0); err != nil {
		t.Fatal(err)
	}
	if m.Reduction() != 0 {
		t.Errorf("Program(0) did not restore preset")
	}
}

func TestProgramRejectsOutOfRange(t *testing.T) {
	m := New(refCore(t, "P0C0"))
	if err := m.Program(-1); err == nil {
		t.Error("negative reduction accepted")
	}
	if err := m.Program(m.Core().MaxReduction() + 1); err == nil {
		t.Error("reduction beyond tap range accepted")
	}
	// A failed Program must not disturb the configuration.
	if m.Reduction() != 0 {
		t.Errorf("failed Program changed reduction to %d", m.Reduction())
	}
}

func TestMeasureAtSettlePointReadsTheta(t *testing.T) {
	c := refCore(t, "P0C1")
	p := c.Params()
	m := New(c)
	for _, red := range []int{0, 2, c.MaxReduction()} {
		if err := m.Program(red); err != nil {
			t.Fatal(err)
		}
		cycle := units.Picosecond(float64(m.SettleGuardPs()) * p.Scale(p.VRef))
		r := m.Measure(cycle, p.VRef)
		if r.Units != p.ThetaUnits {
			t.Errorf("reduction %d: margin at settle point = %d units, want θ=%d",
				red, r.Units, p.ThetaUnits)
		}
	}
}

func TestMeasureMoreSlackAtLowerFrequency(t *testing.T) {
	c := refCore(t, "P0C2")
	p := c.Params()
	m := New(c)
	slow := m.Measure(units.MHz(4000).CycleTime(), p.VRef)
	fast := m.Measure(units.MHz(4800).CycleTime(), p.VRef)
	if slow.Units <= fast.Units {
		t.Errorf("slack at 4.0 GHz (%d) not above 4.8 GHz (%d)", slow.Units, fast.Units)
	}
}

func TestMeasureNegativeOnViolation(t *testing.T) {
	c := refCore(t, "P0C0")
	p := c.Params()
	m := New(c)
	// A cycle far shorter than the CPM path must read negative.
	r := m.Measure(units.MHz(5400).CycleTime(), 1.10)
	if r.Units >= 0 {
		t.Errorf("expected violation at 5.4 GHz / 1.10 V, got %d units", r.Units)
	}
	if r.Units < MinUnits {
		t.Errorf("reading %d under MinUnits %d", r.Units, MinUnits)
	}
	_ = p
}

func TestMeasureSaturates(t *testing.T) {
	c := refCore(t, "P0C0")
	m := New(c)
	r := m.Measure(units.MHz(1500).CycleTime(), c.Params().VRef)
	if r.Units != MaxUnits {
		t.Errorf("huge slack reads %d, want saturation %d", r.Units, MaxUnits)
	}
}

func TestWorstSiteWins(t *testing.T) {
	c := refCore(t, "P1C4")
	p := c.Params()
	m := New(c)
	r := m.Measure(units.MHz(4600).CycleTime(), p.VRef)
	if c.SiteSkewPs[r.WorstSite] != 0 {
		t.Errorf("worst site %d has skew %v, want the zero-skew site",
			r.WorstSite, c.SiteSkewPs[r.WorstSite])
	}
	// The reported site must have the maximum delay.
	worst := m.SiteDelay(r.WorstSite, p.VRef)
	for i := range c.SiteSkewPs {
		if d := m.SiteDelay(i, p.VRef); d > worst+1e-9 {
			t.Errorf("site %d delay %v exceeds reported worst %v", i, d, worst)
		}
	}
}

func TestSiteDelayScalesWithVoltage(t *testing.T) {
	c := refCore(t, "P0C5")
	m := New(c)
	dRef := m.SiteDelay(0, c.Params().VRef)
	dLow := m.SiteDelay(0, c.Params().VRef-0.05)
	if dLow <= dRef {
		t.Errorf("site delay did not grow at lower voltage: %v vs %v", dLow, dRef)
	}
}

func TestSettleGuardMatchesSilicon(t *testing.T) {
	c := refCore(t, "P0C6")
	m := New(c)
	for red := 0; red <= c.MaxReduction(); red++ {
		if err := m.Program(red); err != nil {
			t.Fatal(err)
		}
		want, err := c.GuardPs(red)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.SettleGuardPs(); math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("reduction %d: settle guard %v, want %v", red, got, want)
		}
	}
}

// TestReductionIncreasesMeasuredMargin is the core fine-tuning
// mechanism: programming a smaller inserted delay makes the loop
// perceive more margin at the same frequency (Sec. III-A).
func TestReductionIncreasesMeasuredMargin(t *testing.T) {
	c := refCore(t, "P0C3")
	p := c.Params()
	m := New(c)
	cycle := units.MHz(4600).CycleTime()
	prev := -1000
	for red := 0; red <= c.MaxReduction(); red++ {
		if err := m.Program(red); err != nil {
			t.Fatal(err)
		}
		r := m.Measure(cycle, p.VRef)
		if r.Units < prev {
			t.Fatalf("measured margin decreased at reduction %d", red)
		}
		prev = r.Units
	}
}
