// Package cpm models the POWER7+ Critical Path Monitor: the programmable
// canary circuit that measures per-cycle timing margin (Sec. II, Fig. 4a).
//
// A CPM has three cascaded stages. A timing edge launched at the start of
// the cycle first crosses the *inserted delay* — a chain of inverters
// whose tap count is programmable — then the *synthetic paths* that mimic
// real pipeline circuits (AND/OR/XOR gates and wires), and finally enters
// the *inverter chain*, where the number of inverters it traverses before
// the cycle ends quantizes the leftover slack. That inverter count is the
// CPM's output, sent every cycle to the DPLL.
//
// Five CPMs sit in each core (IFU, ISU, FXU, FPU, LLC); the worst
// (smallest) of the five measurements is reported each cycle.
//
// This package is a delay-domain implementation of that pipeline: it
// consumes the silicon profile's path delays, applies voltage scaling,
// and produces quantized margin readings. The DPLL package closes the
// loop on top of it.
package cpm

import (
	"fmt"

	"repro/internal/silicon"
	"repro/internal/units"
)

// Monitor is the set of CPM sites of one core plus their current
// inserted-delay configuration. The zero value is unusable; construct
// with New.
type Monitor struct {
	core *silicon.CoreProfile
	taps int // current inserted-delay tap index

	// readFault, when non-nil, perturbs every reading before it is
	// reported — the hook internal/fault uses to model read upsets and
	// stuck-at sites without this package importing the injector.
	readFault ReadFault
}

// ReadFault is an injection hook over one cycle's measurement. The
// returned reading's Units are re-clamped to the inverter-chain range,
// matching what the hardware counter could physically emit.
type ReadFault func(Reading) Reading

// SetReadFault arms (or, with nil, disarms) the measurement fault hook.
func (m *Monitor) SetReadFault(f ReadFault) { m.readFault = f }

// New returns a Monitor for the core, configured at the manufacturer
// preset (zero reduction).
func New(core *silicon.CoreProfile) *Monitor {
	return &Monitor{core: core, taps: core.PresetTaps}
}

// Core returns the silicon profile the monitor instruments.
func (m *Monitor) Core() *silicon.CoreProfile { return m.core }

// Taps returns the current inserted-delay tap index.
func (m *Monitor) Taps() int { return m.taps }

// Reduction returns the current reduction from the preset — the paper's
// "steps of CPM inserted delay reduction".
func (m *Monitor) Reduction() int { return m.core.PresetTaps - m.taps }

// Program sets the inserted-delay reduction (the fine-tuning knob,
// Sec. III-A). It mirrors the specialized service-processor commands on
// the real machine and rejects configurations outside the tap range.
func (m *Monitor) Program(reduction int) error {
	if reduction < 0 {
		return fmt.Errorf("cpm: negative reduction %d on %s", reduction, m.core.Label)
	}
	if reduction > m.core.MaxReduction() {
		return fmt.Errorf("cpm: reduction %d exceeds tap range (max %d) on %s",
			reduction, m.core.MaxReduction(), m.core.Label)
	}
	m.taps = m.core.PresetTaps - reduction
	return nil
}

// SiteDelay returns the full CPM path delay (inserted delay + synthetic
// path) of site i at supply voltage v.
//
//atm:hotpath
func (m *Monitor) SiteDelay(site int, v units.Volt) units.Picosecond {
	p := m.core.Params()
	atRef := m.core.SynthPs + m.core.SiteSkewPs[site] + m.core.InsertedDelayPs(m.taps)
	return units.Picosecond(float64(atRef) * p.Scale(v))
}

// Reading is one cycle's margin measurement.
type Reading struct {
	// Units is the inverter count of the worst site: how many inverter
	// delays of slack remained after the CPM path completed. Negative
	// values mean the CPM path itself failed to complete within the
	// cycle (a hard margin violation).
	Units int
	// WorstSite is the index of the site that produced the reading.
	WorstSite int
	// SlackPs is the un-quantized slack of the worst site.
	SlackPs units.Picosecond
}

// Measure quantizes the timing slack left in one clock cycle of the
// given cycle time at supply voltage v. It implements the worst-of-five
// reporting: the site with the largest path delay (least slack) wins.
//
//atm:hotpath
func (m *Monitor) Measure(cycle units.Picosecond, v units.Volt) Reading {
	p := m.core.Params()
	worst := 0
	worstDelay := units.Picosecond(-1)
	for i := range m.core.SiteSkewPs {
		if d := m.SiteDelay(i, v); d > worstDelay {
			worstDelay = d
			worst = i
		}
	}
	slack := cycle - worstDelay
	inv := units.Picosecond(float64(p.InvPs) * p.Scale(v))
	u := int(float64(slack) / float64(inv))
	//lint:ignore floatcmp exact divisibility test: u must step down unless the truncated quotient reconstructs slack bit-for-bit
	if slack < 0 && float64(slack) != float64(u)*float64(inv) {
		u-- // floor toward −∞ for negative slack
	}
	if u > MaxUnits {
		u = MaxUnits
	}
	if u < MinUnits {
		u = MinUnits
	}
	r := Reading{Units: u, WorstSite: worst, SlackPs: slack}
	if m.readFault != nil {
		r = m.readFault(r)
		if r.Units > MaxUnits {
			r.Units = MaxUnits
		}
		if r.Units < MinUnits {
			r.Units = MinUnits
		}
	}
	return r
}

// MaxUnits is the saturation value of the inverter-chain counter: the
// hardware chain has finitely many inverters, so very large slack reads
// as "all inverters traversed".
const MaxUnits = 12

// MinUnits is the negative saturation: the sticky violation indication.
const MinUnits = -4

// SettleGuardPs returns the total guarded path (CPM delay + DPLL
// threshold slack) at the current configuration, in ps at VRef. The
// DPLL settles the cycle time at exactly this × Scale(v).
func (m *Monitor) SettleGuardPs() units.Picosecond {
	g, err := m.core.GuardPs(m.Reduction())
	if err != nil {
		// Reduction is kept in range by Program, so this is unreachable.
		panic(err)
	}
	return g
}
