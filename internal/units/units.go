// Package units defines the typed physical quantities used throughout the
// ATM simulator: frequency, voltage, power, delay and temperature.
//
// Using distinct named types keeps the signal-processing code honest — a
// voltage can never be silently added to a delay — while staying cheap:
// every type is an underlying float64 and converts explicitly.
//
// Conventions:
//   - frequency is in megahertz (the paper quotes MHz everywhere),
//   - voltage in volts,
//   - power in watts,
//   - delay in picoseconds (one 4.2 GHz cycle is ~238 ps),
//   - temperature in degrees Celsius.
package units

import "fmt"

// MHz is a clock frequency in megahertz.
type MHz float64

// Volt is an electric potential in volts.
type Volt float64

// Watt is a power in watts.
type Watt float64

// Picosecond is a time span in picoseconds. All path delays, cycle times
// and inserted-delay quanta in the CPM model are expressed in ps.
type Picosecond float64

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// Millivolts returns the voltage expressed in millivolts.
func (v Volt) Millivolts() float64 { return float64(v) * 1000 }

// FromMillivolts converts a value in millivolts to a Volt.
func FromMillivolts(mv float64) Volt { return Volt(mv / 1000) }

// GHz returns the frequency expressed in gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1000 }

// CycleTime returns the duration of one clock cycle at frequency f.
// A zero or negative frequency yields an infinite-like zero guard: the
// caller is expected to validate frequencies, so we return 0 to make the
// misuse obvious in tests rather than propagate NaNs.
func (f MHz) CycleTime() Picosecond {
	if f <= 0 {
		return 0
	}
	// f MHz ⇒ period = 1/(f·1e6) s = 1e12/(f·1e6) ps = 1e6/f ps.
	return Picosecond(1e6 / float64(f))
}

// Frequency returns the clock frequency whose period is d.
// The inverse of MHz.CycleTime. A non-positive delay returns 0.
func (d Picosecond) Frequency() MHz {
	if d <= 0 {
		return 0
	}
	return MHz(1e6 / float64(d))
}

// Nanoseconds returns the delay expressed in nanoseconds.
func (d Picosecond) Nanoseconds() float64 { return float64(d) / 1000 }

// String implements fmt.Stringer with the unit suffix the paper uses.
func (f MHz) String() string { return fmt.Sprintf("%.0f MHz", float64(f)) }

// String implements fmt.Stringer.
func (v Volt) String() string { return fmt.Sprintf("%.3f V", float64(v)) }

// String implements fmt.Stringer.
func (w Watt) String() string { return fmt.Sprintf("%.1f W", float64(w)) }

// String implements fmt.Stringer.
func (d Picosecond) String() string { return fmt.Sprintf("%.1f ps", float64(d)) }

// String implements fmt.Stringer.
func (c Celsius) String() string { return fmt.Sprintf("%.1f °C", float64(c)) }

// Clamp returns f bounded to the closed interval [lo, hi].
func (f MHz) Clamp(lo, hi MHz) MHz {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Clamp returns v bounded to the closed interval [lo, hi].
func (v Volt) Clamp(lo, hi Volt) Volt {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Max returns the larger of a and b.
func Max[T MHz | Volt | Watt | Picosecond | Celsius](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min[T MHz | Volt | Watt | Picosecond | Celsius](a, b T) T {
	if a < b {
		return a
	}
	return b
}
