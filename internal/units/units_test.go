package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCycleTimeKnownValues(t *testing.T) {
	cases := []struct {
		f    MHz
		want Picosecond
	}{
		{4200, 238.0952380952381},
		{4600, 217.39130434782606},
		{5000, 200},
		{1000, 1000},
	}
	for _, c := range cases {
		got := c.f.CycleTime()
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("CycleTime(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestCycleTimeNonPositive(t *testing.T) {
	if got := MHz(0).CycleTime(); got != 0 {
		t.Errorf("CycleTime(0) = %v, want 0", got)
	}
	if got := MHz(-100).CycleTime(); got != 0 {
		t.Errorf("CycleTime(-100) = %v, want 0", got)
	}
	if got := Picosecond(0).Frequency(); got != 0 {
		t.Errorf("Frequency(0) = %v, want 0", got)
	}
	if got := Picosecond(-5).Frequency(); got != 0 {
		t.Errorf("Frequency(-5) = %v, want 0", got)
	}
}

// TestCycleFrequencyRoundTrip: CycleTime and Frequency are inverses on
// the positive axis.
func TestCycleFrequencyRoundTrip(t *testing.T) {
	prop := func(raw uint16) bool {
		f := MHz(100 + float64(raw%9000)) // 100..9100 MHz
		back := f.CycleTime().Frequency()
		return math.Abs(float64(back-f)) < 1e-6*float64(f)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMillivolts(t *testing.T) {
	if got := Volt(1.25).Millivolts(); got != 1250 {
		t.Errorf("Millivolts = %g, want 1250", got)
	}
	if got := FromMillivolts(37.5); math.Abs(float64(got)-0.0375) > 1e-12 {
		t.Errorf("FromMillivolts = %v", got)
	}
}

func TestGHz(t *testing.T) {
	if got := MHz(4200).GHz(); got != 4.2 {
		t.Errorf("GHz = %g, want 4.2", got)
	}
}

func TestClamp(t *testing.T) {
	if got := MHz(5000).Clamp(1000, 4600); got != 4600 {
		t.Errorf("clamp high = %v", got)
	}
	if got := MHz(500).Clamp(1000, 4600); got != 1000 {
		t.Errorf("clamp low = %v", got)
	}
	if got := MHz(4000).Clamp(1000, 4600); got != 4000 {
		t.Errorf("clamp mid = %v", got)
	}
	if got := Volt(1.5).Clamp(0.8, 1.3); got != 1.3 {
		t.Errorf("volt clamp = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if got := Max(MHz(1), MHz(2)); got != 2 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(Watt(3), Watt(2)); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(Picosecond(-1), Picosecond(-2)); got != -1 {
		t.Errorf("Max negative = %v", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{MHz(4600).String(), "4600 MHz"},
		{Volt(1.25).String(), "1.250 V"},
		{Watt(160).String(), "160.0 W"},
		{Picosecond(217.4).String(), "217.4 ps"},
		{Celsius(70).String(), "70.0 °C"},
	}
	for _, c := range cases {
		if c.s != c.want {
			t.Errorf("String = %q, want %q", c.s, c.want)
		}
	}
}

func TestNanoseconds(t *testing.T) {
	if got := Picosecond(1250).Nanoseconds(); got != 1.25 {
		t.Errorf("Nanoseconds = %g, want 1.25", got)
	}
}
