package predict

import (
	"testing"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/workload"
)

var fixtureRep *charact.Report

func report(t *testing.T) *charact.Report {
	t.Helper()
	if fixtureRep == nil {
		rep, err := charact.Characterize(chip.NewReference(), charact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fixtureRep = rep
	}
	return fixtureRep
}

func TestCountersDeterministic(t *testing.T) {
	w := workload.MustByName("x264")
	a := CountersFor(w, rng.New(1))
	b := CountersFor(w, rng.New(1))
	if a != b {
		t.Error("counters not deterministic per (workload, seed)")
	}
	c := CountersFor(w, rng.New(2))
	if a == c {
		t.Error("counters insensitive to seed")
	}
}

func TestCountersAliasing(t *testing.T) {
	src := rng.New(3)
	x := CountersFor(workload.MustByName("x264"), src)
	l := CountersFor(workload.MustByName("leela"), src)
	// The aliased pair must look similar on the stress-correlated
	// counter despite a 7× stress difference.
	if d := x.FlushRate - l.FlushRate; d < -0.15 || d > 0.15 {
		t.Errorf("x264/leela flush rates not aliased: %.2f vs %.2f", x.FlushRate, l.FlushRate)
	}
	// A genuinely stressful, non-aliased app reads high.
	f := CountersFor(workload.MustByName("ferret"), src)
	if f.FlushRate < x.FlushRate+0.2 {
		t.Errorf("ferret flush rate %.2f does not dominate aliased x264 %.2f", f.FlushRate, x.FlushRate)
	}
}

func TestDatasetShape(t *testing.T) {
	rep := report(t)
	ds := Dataset(rep, 1)
	wantRows := len(workload.Realistic()) * 16
	if len(ds) != wantRows {
		t.Fatalf("dataset has %d rows, want %d", len(ds), wantRows)
	}
	width := len(CounterNames) + 2
	for _, s := range ds {
		if len(s.Features) != width {
			t.Fatalf("sample width %d, want %d", len(s.Features), width)
		}
		if s.TrueLimit < 0 {
			t.Fatal("negative true limit")
		}
	}
}

func TestSplitByApp(t *testing.T) {
	rep := report(t)
	ds := Dataset(rep, 1)
	train, test := SplitByApp(ds, DefaultHoldout)
	if len(train)+len(test) != len(ds) {
		t.Fatal("split lost samples")
	}
	held := map[string]bool{}
	for _, h := range DefaultHoldout {
		held[h] = true
	}
	for _, s := range train {
		if held[s.App] {
			t.Fatalf("held-out app %s leaked into training", s.App)
		}
	}
	if len(test) != len(DefaultHoldout)*16 {
		t.Fatalf("test set has %d rows", len(test))
	}
}

// TestPredictionIsUsefulButUnsafe is the experiment's thesis: the model
// learns the broad structure (decent MAE, far better than a constant
// guess) yet produces unsafe predictions on held-out applications at
// zero bias — and needs several steps of conservative bias to become
// safe, at which point much of the per-app benefit is gone. Exactly the
// paper's argument for deferring prediction.
func TestPredictionIsUsefulButUnsafe(t *testing.T) {
	rep := report(t)
	ds := Dataset(rep, 1)
	train, test := SplitByApp(ds, DefaultHoldout)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	evs := Evaluate(m, test, []int{0, 1, 2, 3})
	at := map[int]Evaluation{}
	for _, e := range evs {
		at[e.Bias] = e
	}
	if at[0].MAE > 2.5 {
		t.Errorf("zero-bias MAE %.2f — the model learned nothing", at[0].MAE)
	}
	if at[0].UnsafeRate < 0.05 {
		t.Errorf("zero-bias unsafe rate %.2f suspiciously low — the aliasing should bite", at[0].UnsafeRate)
	}
	// Bias drives the unsafe rate down monotonically...
	for b := 1; b <= 3; b++ {
		if at[b].UnsafeRate > at[b-1].UnsafeRate+1e-9 {
			t.Errorf("unsafe rate rose with bias %d: %.3f → %.3f", b, at[b-1].UnsafeRate, at[b].UnsafeRate)
		}
	}
	// ...but costs margin.
	if at[3].MeanStepsLost <= at[0].MeanStepsLost {
		t.Error("bias did not cost margin")
	}
}

func TestUnsafeAppsIncludesAliased(t *testing.T) {
	rep := report(t)
	ds := Dataset(rep, 1)
	train, test := SplitByApp(ds, DefaultHoldout)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	unsafe := UnsafeApps(m, test, 0)
	if len(unsafe) == 0 {
		t.Fatal("no unsafe apps at zero bias")
	}
	found := false
	for _, a := range unsafe {
		if a == "x264" {
			found = true
		}
	}
	if !found {
		t.Errorf("x264 (the counter-aliased stressor) not among unsafe apps: %v", unsafe)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	rep := report(t)
	ds := Dataset(rep, 1)
	train, _ := SplitByApp(ds, nil)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	evs := Evaluate(m, nil, []int{0})
	if evs[0].N != 0 || evs[0].MAE != 0 {
		t.Errorf("empty test evaluation = %+v", evs[0])
	}
}
