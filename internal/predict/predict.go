// Package predict explores the paper's deferred future work: predicting
// each application's best-fit CPM configuration from observable program
// behaviour instead of profiling it (Sec. VI–VII: "one can try to
// predict each application's best CPM setting on each core. However,
// such a prediction scheme demands perfect prediction accuracy because
// any misprediction can lead to system failure...").
//
// The package builds the experiment that quantifies that argument:
//
//  1. synthesize per-application hardware-counter vectors (IPC, cache
//     miss rate, branch miss rate, pipeline-flush rate, power proxy).
//     Counters correlate with the workload's true di/dt stress — but
//     imperfectly, with deliberate aliasing: the paper observes that
//     x264 and leela have similar counter profiles yet wildly different
//     rollback needs, and that instruction-rich gcc stresses ATM *less*
//     than narrow exchange2;
//  2. train a linear model (counters ⊕ core features → safe reduction)
//     on a split of profiled applications;
//  3. evaluate on held-out applications: mean absolute error is decent,
//     but what matters is the *unsafe* rate — predictions above the true
//     limit, each of which is a potential crash — and how many steps of
//     conservative bias are needed to drive it to zero.
package predict

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/charact"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Counters is one application's synthesized hardware-counter profile.
type Counters struct {
	IPC            float64 // retired instructions per cycle
	CacheMissRate  float64 // misses per kilo-instruction, normalized
	BranchMissRate float64
	FlushRate      float64 // pipeline flushes per kilo-cycle, normalized
	PowerProxy     float64 // activity-derived power estimate
}

// Vector returns the counter values as a feature slice.
func (c Counters) Vector() []float64 {
	return []float64{c.IPC, c.CacheMissRate, c.BranchMissRate, c.FlushRate, c.PowerProxy}
}

// CounterNames labels the feature columns.
var CounterNames = []string{"ipc", "cache-miss", "branch-miss", "flush-rate", "power-proxy"}

// aliasedPairs lists applications whose counter profiles deliberately
// alias despite very different ATM stress — the paper's observed
// failure mode for counter-based prediction ("x264 has similar
// performance counter profiles as leela, but their rollback requirements
// differ substantially"; gcc's rich instruction mix stresses ATM less
// than exchange2's narrow one).
var aliasedFlushRate = map[string]float64{
	"x264":  0.30, // true stress 1.00 — counters hide it
	"leela": 0.26, // true stress 0.14 — looks like x264
	"gcc":   0.42, // rich mix, counters *over*state its mild stress
}

// CountersFor synthesizes an application's counter vector. The mapping
// is deterministic per (workload, seed): counters derive from the
// profile's true properties plus measurement noise, with the aliased
// applications overridden to break the correlation the way real
// counters do.
func CountersFor(p workload.Profile, src *rng.Source) Counters {
	s := src.Split(p.Name)
	noise := func(sigma float64) float64 { return s.Norm(0, sigma) }
	flush := 0.15 + 0.55*p.StressScore + noise(0.05)
	if v, ok := aliasedFlushRate[p.Name]; ok {
		flush = v + noise(0.02)
	}
	c := Counters{
		IPC:            clamp(2.4-1.6*p.MemIntensity+0.3*noise(1), 0.2, 4),
		CacheMissRate:  clamp(p.MemIntensity+noise(0.06), 0, 1.2),
		BranchMissRate: clamp(0.1+0.25*p.StressScore+noise(0.05), 0, 1),
		FlushRate:      clamp(flush, 0, 1.2),
		PowerProxy:     clamp(p.CdynRel+noise(0.05), 0, 1.3),
	}
	return c
}

func clamp(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }

// Sample is one (application, core) training/evaluation point.
type Sample struct {
	App  string
	Core string
	// Features: counters ⊕ core features (uBench limit, stress-test
	// vulnerability proxy = uBench − thread-worst).
	Features []float64
	// TrueLimit is the profiled safe reduction for this pair.
	TrueLimit int
}

// Model predicts per-(app, core) safe reductions.
type Model struct {
	Fit      stats.MultiFit
	Features int
}

// Predict returns the (unrounded) predicted safe reduction.
func (m Model) Predict(features []float64) float64 { return m.Fit.Predict(features) }

// Dataset builds the samples from a characterization report.
func Dataset(rep *charact.Report, seed uint64) []Sample {
	src := rng.New(seed)
	var out []Sample
	apps := workload.Realistic()
	for _, app := range apps {
		ctr := CountersFor(app, src)
		for _, cr := range rep.Cores {
			lim, ok := cr.AppLimit[app.Name]
			if !ok {
				continue
			}
			features := append(ctr.Vector(),
				float64(cr.UBenchLimit),
				float64(cr.UBenchLimit-cr.ThreadWorst))
			out = append(out, Sample{
				App:       app.Name,
				Core:      cr.Core,
				Features:  features,
				TrueLimit: lim,
			})
		}
	}
	return out
}

// SplitByApp partitions samples into train/test by holding out the given
// applications — the deployment question is always about *unseen*
// programs.
func SplitByApp(samples []Sample, holdout []string) (train, test []Sample) {
	held := map[string]bool{}
	for _, h := range holdout {
		held[h] = true
	}
	for _, s := range samples {
		if held[s.App] {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}

// DefaultHoldout is the evaluation split: a mix of benign, medium and
// stressful applications, including the aliased pair member (x264) the
// counters cannot see.
var DefaultHoldout = []string{"x264", "leela", "mcf", "ferret", "squeezenet", "swaptions", "gcc", "omnetpp"}

// Train fits the linear model on training samples.
func Train(train []Sample) (Model, error) {
	if len(train) == 0 {
		return Model{}, fmt.Errorf("predict: no training samples")
	}
	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, s := range train {
		xs[i] = s.Features
		ys[i] = float64(s.TrueLimit)
	}
	fit, err := stats.FitMulti(xs, ys)
	if err != nil {
		return Model{}, err
	}
	return Model{Fit: fit, Features: len(train[0].Features)}, nil
}

// Evaluation aggregates a model's held-out performance at a given
// conservative bias (steps subtracted from every prediction before
// deployment).
type Evaluation struct {
	Bias int
	// MAE is the mean absolute error of the biased integer prediction.
	MAE float64
	// UnsafeRate is the fraction of pairs whose deployed prediction
	// exceeds the true limit — each one a potential field failure.
	UnsafeRate float64
	// MeanStepsLost counts the average safe margin wasted (true −
	// deployed, over safe predictions only).
	MeanStepsLost float64
	// WorstOvershoot is the largest number of steps a prediction went
	// past the true limit.
	WorstOvershoot int
	N              int
}

// Evaluate scores the model on test samples across the given biases.
func Evaluate(m Model, test []Sample, biases []int) []Evaluation {
	var out []Evaluation
	for _, bias := range biases {
		ev := Evaluation{Bias: bias, N: len(test)}
		var absSum, lostSum float64
		var lostN int
		for _, s := range test {
			raw := int(math.Floor(m.Predict(s.Features))) - bias
			if raw < 0 {
				raw = 0
			}
			absSum += math.Abs(float64(raw - s.TrueLimit))
			if raw > s.TrueLimit {
				ev.UnsafeRate++
				if over := raw - s.TrueLimit; over > ev.WorstOvershoot {
					ev.WorstOvershoot = over
				}
			} else {
				lostSum += float64(s.TrueLimit - raw)
				lostN++
			}
		}
		if len(test) > 0 {
			ev.MAE = absSum / float64(len(test))
			ev.UnsafeRate /= float64(len(test))
		}
		if lostN > 0 {
			ev.MeanStepsLost = lostSum / float64(lostN)
		}
		out = append(out, ev)
	}
	return out
}

// UnsafeApps returns the held-out applications with at least one unsafe
// prediction at the given bias, worst first — in practice the aliased
// pair dominates.
func UnsafeApps(m Model, test []Sample, bias int) []string {
	over := map[string]int{}
	for _, s := range test {
		raw := int(math.Floor(m.Predict(s.Features))) - bias
		if raw < 0 {
			raw = 0
		}
		if raw > s.TrueLimit {
			if d := raw - s.TrueLimit; d > over[s.App] {
				over[s.App] = d
			}
		}
	}
	apps := make([]string, 0, len(over))
	for a := range over {
		apps = append(apps, a)
	}
	sort.Slice(apps, func(i, j int) bool {
		if over[apps[i]] != over[apps[j]] {
			return over[apps[i]] > over[apps[j]]
		}
		return apps[i] < apps[j]
	})
	return apps
}
