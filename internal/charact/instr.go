package charact

import (
	"repro/internal/chip"
	"repro/internal/obs"
)

// instr carries the characterization's pre-resolved metric handles. The
// zero value — all-nil handles, nil tracer — is the disabled plane and
// is fully functional: every use below is a nil-safe no-op, so the
// methodology code reads the same with observability on or off. It is
// passed by value; the handles inside are shared.
type instr struct {
	tr *obs.Tracer

	idleTrials   *obs.Counter // search trials, stage 1 (system idle)
	ubenchTrials *obs.Counter // search trials, stage 2 (micro-benchmarks)
	appTrials    *obs.Counter // search trials, stage 3 (applications)
	runs         *obs.Counter // individual workload runs (chip trials)
	retries      *obs.Counter // transient retries consumed by those runs
	quarantines  *obs.Counter // cores abandoned to static margin
}

// newInstr resolves the handle set against r under the given metric
// prefix (e.g. "atm_charact"). A nil registry yields the zero instr.
func newInstr(r *obs.Registry, tr *obs.Tracer, prefix string) instr {
	return instr{
		tr:           tr,
		idleTrials:   r.Counter(prefix+"_trials_total", "stage", "idle"),
		ubenchTrials: r.Counter(prefix+"_trials_total", "stage", "ubench"),
		appTrials:    r.Counter(prefix+"_trials_total", "stage", "app"),
		runs:         r.Counter(prefix + "_runs_total"),
		retries:      r.Counter(prefix + "_transient_retries_total"),
		quarantines:  r.Counter(prefix + "_quarantines_total"),
	}
}

// observeTrial is the chip.TrialObserver tap: one run, however many
// transient retries it consumed. Outcomes only — it never draws
// randomness or perturbs the trial.
func (in instr) observeTrial(label, workload string, retries int, res chip.TrialResult, err error) {
	in.runs.Inc()
	in.retries.Add(int64(retries))
}
