package charact

import (
	"testing"
	"testing/quick"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/workload"
)

// TestFindLimitMatchesDeterministic: the stochastic upward search lands
// on the silicon model's deterministic idle limit.
func TestFindLimitMatchesDeterministic(t *testing.T) {
	m := chip.NewReference()
	src := rng.New(21)
	for _, core := range m.AllCores() {
		d, err := FindLimit(m, core.Profile.Label, workload.Idle, 10, 4, src.Split(core.Profile.Label))
		if err != nil {
			t.Fatal(err)
		}
		want := core.Profile.DeterministicLimit(0)
		if d.Limit != want {
			t.Errorf("%s: search found %d, deterministic %d", core.Profile.Label, d.Limit, want)
		}
		if d.Hist.Total() != 10 {
			t.Errorf("%s: %d trials recorded", core.Profile.Label, d.Hist.Total())
		}
	}
}

// TestFindRollbackFromAbove: starting above the limit, the rollback
// search descends to it; starting at or below, it stays put.
func TestFindRollbackFromAbove(t *testing.T) {
	m := chip.NewReference()
	src := rng.New(22)
	core, err := m.Core("P1C3")
	if err != nil {
		t.Fatal(err)
	}
	want := core.Profile.DeterministicLimit(workload.X264.StressScore)
	idle := core.Profile.DeterministicLimit(0)
	if want >= idle {
		t.Fatalf("fixture broken: x264 limit %d not below idle %d", want, idle)
	}
	d, err := FindRollback(m, "P1C3", workload.X264, idle, 10, 4, src.Split("above"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Limit != want {
		t.Errorf("rollback from idle found %d, want %d", d.Limit, want)
	}
	// Starting at the limit itself: no movement.
	d2, err := FindRollback(m, "P1C3", workload.X264, want, 10, 4, src.Split("at"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Limit != want {
		t.Errorf("rollback from the limit moved to %d", d2.Limit)
	}
	// Starting below: stays below (the search never climbs).
	d3, err := FindRollback(m, "P1C3", workload.X264, want-1, 10, 4, src.Split("below"))
	if err != nil {
		t.Fatal(err)
	}
	if d3.Limit != want-1 {
		t.Errorf("rollback from below the limit moved to %d", d3.Limit)
	}
}

// TestSearchesMatchDeterministicOnGeneratedChips is the property-based
// check that the methodology agrees with the silicon model's analytic
// limits on arbitrary Monte-Carlo silicon, not just the calibrated
// reference.
func TestSearchesMatchDeterministicOnGeneratedChips(t *testing.T) {
	prop := func(seed uint64, coreIdx uint8) bool {
		profile, err := silicon.Generate(seed, silicon.GenerateOptions{Chips: 1})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		m, err := chip.New(profile, chip.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		cores := m.AllCores()
		core := cores[int(coreIdx)%len(cores)]
		d, err := FindLimit(m, core.Profile.Label, workload.Idle, 8, 4, rng.New(seed^0xABCD))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := core.Profile.DeterministicLimit(0)
		if d.Limit != want {
			t.Logf("seed %d core %s: search %d vs deterministic %d",
				seed, core.Profile.Label, d.Limit, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCharacterizeSubsetOfApps: a restricted app set yields limits that
// are never more conservative than the full set's.
func TestCharacterizeSubsetOfApps(t *testing.T) {
	m := chip.NewReference()
	full, err := Characterize(m, Options{Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Characterize(m, Options{Trials: 4, Apps: []workload.Profile{workload.GCC, workload.Leela}})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range sub.Cores {
		if c.ThreadWorst < full.Cores[i].ThreadWorst {
			t.Errorf("%s: benign-only thread-worst %d below full-set %d",
				c.Core, c.ThreadWorst, full.Cores[i].ThreadWorst)
		}
	}
}

// TestRobustnessRankStable: the ranking is a permutation of all cores.
func TestRobustnessRankStable(t *testing.T) {
	rep := referenceReport(t)
	rank := rep.RobustnessRank()
	if len(rank) != len(rep.Cores) {
		t.Fatalf("rank has %d entries", len(rank))
	}
	seen := map[string]bool{}
	for _, l := range rank {
		if seen[l] {
			t.Fatalf("duplicate %s in rank", l)
		}
		seen[l] = true
	}
}
