// Package charact implements the paper's characterization methodology
// (Sec. III-B, Fig. 6): a per-core, increasing-complexity search for the
// most aggressive safe CPM configuration, with repeated stochastic
// trials building the limit *distributions* the paper analyzes.
//
// The pipeline per core:
//
//  1. System idle — sweep the inserted-delay reduction upward from the
//     default until a failure; repeat for a distribution whose lowest
//     value is the core's *idle limit* (Fig. 7, Table I row 1).
//  2. uBench — starting at the idle limit, run coremark/daxpy/stream;
//     on failure roll the reduction back until all three run clean.
//     The result is the *uBench limit* (Fig. 8, Table I row 2).
//  3. Realistic workloads — for every profiled application, find the
//     rollback from the uBench limit the application demands
//     (Fig. 9/10); the per-core minimum over all applications is
//     *thread-worst*, the minimum over medium-and-light applications is
//     *thread-normal* (Table I rows 3–4).
package charact

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// MediumStressCutoff bounds the "medium and light applications" set the
// thread-normal configuration supports (Sec. VI): workloads at or below
// this stress score define thread-normal; everything profiled defines
// thread-worst.
const MediumStressCutoff = 0.56

// Options tunes the characterization.
type Options struct {
	// Trials is the number of repeated searches per (core, workload).
	// The paper repeats failure experiments "multiple times"; default 10.
	Trials int
	// RunsPerConfig is how many times a configuration must execute the
	// workload cleanly within one search before it counts as safe
	// (test engineering practice: a single clean run proves little).
	// Default 4.
	RunsPerConfig int
	// Seed makes the stochastic trials reproducible. Default 1.
	Seed uint64
	// Apps overrides the realistic workload set (default: the full
	// SPEC + PARSEC + DNN library).
	Apps []workload.Profile
	// TrialRetries is the budget of extra attempts for a trial that
	// fails with a transient harness error (chip.ErrTransient) before
	// the core is quarantined. Default 2; negative disables retrying.
	TrialRetries int
	// Obs, when non-nil, collects counters for the run (trials, runs,
	// transient retries, quarantines). Nil — the default — disables
	// collection at near-zero cost and changes no output.
	Obs *obs.Registry
	// Trace, when non-nil, records per-core and per-stage spans on the
	// simulated/logical clock for Perfetto inspection.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 10
	}
	if o.RunsPerConfig == 0 {
		o.RunsPerConfig = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Apps == nil {
		o.Apps = workload.Realistic()
	}
	if o.TrialRetries == 0 {
		o.TrialRetries = 2
	}
	if o.TrialRetries < 0 {
		o.TrialRetries = 0
	}
	return o
}

// Distribution is the repeated-trial outcome of one limit search.
type Distribution struct {
	Core     string
	Workload string
	// Hist counts the per-trial observed safe limits (reductions).
	Hist *stats.Histogram
	// Limit is the paper's definition: the lowest (most conservative)
	// value of the distribution.
	Limit int
}

// Tight reports whether the distribution covers at most two adjacent
// configurations — the paper's expectation ("we expect the
// distributions to be tight because timing violations are not entirely
// random").
func (d Distribution) Tight() bool { return d.Hist.Spread() <= 1 }

// CoreResult is everything the methodology learns about one core.
type CoreResult struct {
	Core string

	// Idle is the system-idle limit distribution (Fig. 7).
	Idle Distribution
	// IdleFreq is the settled frequency at the idle limit with the rest
	// of the chip idle (the blue marks of Fig. 7).
	IdleFreq units.MHz

	// UBenchLimit is the most conservative limit across the three
	// micro-benchmarks.
	UBenchLimit int
	// UBenchRollback is the distribution of steps rolled back from the
	// idle limit across uBench trials (Fig. 8).
	UBenchRollback *stats.Histogram
	// PerKernelLimit records each micro-benchmark's own limit.
	PerKernelLimit map[string]int

	// AppLimit is each realistic application's limit on this core
	// (minimum over trials).
	AppLimit map[string]int
	// AppRollbackMean is the weighted average CPM rollback from the
	// uBench limit per application (the cells of Fig. 10).
	AppRollbackMean map[string]float64

	// ThreadNormal and ThreadWorst are Table I rows 3 and 4.
	ThreadNormal int
	ThreadWorst  int

	// Quarantined marks a core whose trials kept failing with transient
	// harness errors after the retry budget: the methodology reports it
	// (with whatever stages completed zeroed) instead of aborting the
	// whole characterization. A deployment must fall back to static
	// margin for such a core.
	Quarantined bool
	// QuarantineReason is the persistent error that earned quarantine.
	QuarantineReason string
}

// Report is the full characterization of a machine.
type Report struct {
	Cores []CoreResult
	Opts  Options
}

// Core returns the result for a core label.
func (r *Report) Core(label string) (CoreResult, bool) {
	for _, c := range r.Cores {
		if c.Core == label {
			return c, true
		}
	}
	return CoreResult{}, false
}

// Characterize runs the full methodology over every core of the
// machine. The machine is left with all CPMs back at the default
// configuration.
func Characterize(m *chip.Machine, opts Options) (*Report, error) {
	o := opts.withDefaults()
	root := rng.New(o.Seed)
	rep := &Report{Opts: o}
	in := newInstr(o.Obs, o.Trace, "atm_charact")
	if o.Obs != nil {
		// Tap every retry-wrapped trial for run/retry counts. The tap
		// observes outcomes only; it never draws randomness, so the
		// trial streams — and every report number — are unchanged.
		m.SetTrialObserver(in.observeTrial)
		defer m.SetTrialObserver(nil)
	}

	// Settle the all-idle supply once per chip for Fig. 7 frequencies.
	m.ResetAll()
	idleState, err := m.Solve()
	if err != nil {
		return nil, err
	}

	for ci, core := range m.AllCores() {
		label := core.Profile.Label
		src := root.SplitIndex(label, ci)
		csp := o.Trace.Begin("charact", "core", label)
		res, err := characterizeCore(m, label, o, in, src)
		if err != nil {
			if !errors.Is(err, chip.ErrTransient) {
				return nil, err
			}
			// The harness kept failing on this core through the retry
			// budget: quarantine it and keep characterizing the rest of
			// the machine. The report carries the reason; a deployment
			// must leave this core at static margin.
			res = quarantinedResult(label, err)
			in.quarantines.Inc()
			o.Trace.Instant("charact", "quarantine", label)
			if perr := m.ProgramCPM(label, 0); perr != nil {
				return nil, perr
			}
		}
		csp.End()
		chipLabel := label[:2]
		if cs, err := idleState.ChipState(chipLabel); err == nil {
			f, ferr := core.Profile.SettledFreq(res.Idle.Limit, cs.Supply)
			if ferr == nil {
				res.IdleFreq = f
			}
		}
		rep.Cores = append(rep.Cores, res)
	}
	m.ResetAll()
	return rep, nil
}

// quarantinedResult builds the report entry for a core whose harness
// never stabilized: every numeric field zeroed, containers non-nil so
// downstream consumers need no special-casing beyond the flag.
func quarantinedResult(label string, cause error) CoreResult {
	return CoreResult{
		Core:             label,
		Idle:             Distribution{Core: label, Workload: workload.Idle.Name, Hist: stats.NewHistogram()},
		UBenchRollback:   stats.NewHistogram(),
		PerKernelLimit:   map[string]int{},
		AppLimit:         map[string]int{},
		AppRollbackMean:  map[string]float64{},
		Quarantined:      true,
		QuarantineReason: cause.Error(),
	}
}

// characterizeCore runs the three methodology stages for one core.
func characterizeCore(m *chip.Machine, label string, o Options, in instr, src *rng.Source) (CoreResult, error) {
	res := CoreResult{
		Core:            label,
		PerKernelLimit:  map[string]int{},
		AppLimit:        map[string]int{},
		AppRollbackMean: map[string]float64{},
	}

	// Stage 1: system idle, upward sweep.
	sp := in.tr.Begin("charact", "stage:idle", label)
	idle, err := findLimit(m, label, workload.Idle, o.Trials, o.RunsPerConfig, o.TrialRetries, src.Split("idle"), in.idleTrials, in.tr)
	sp.End()
	if err != nil {
		return CoreResult{}, err
	}
	res.Idle = idle

	// Stage 2: micro-benchmarks, rollback from the idle limit.
	res.UBenchRollback = stats.NewHistogram()
	res.UBenchLimit = idle.Limit
	sp = in.tr.Begin("charact", "stage:ubench", label)
	for _, ub := range workload.UBench() {
		d, err := findRollback(m, label, ub, idle.Limit, o.Trials, o.RunsPerConfig, o.TrialRetries, src.Split("ubench/"+ub.Name), in.ubenchTrials, in.tr)
		if err != nil {
			sp.End()
			return CoreResult{}, err
		}
		res.PerKernelLimit[ub.Name] = d.Limit
		if d.Limit < res.UBenchLimit {
			res.UBenchLimit = d.Limit
		}
		for _, v := range d.Hist.Support() {
			for n := 0; n < d.Hist.Count(v); n++ {
				res.UBenchRollback.Add(idle.Limit - v)
			}
		}
	}
	sp.End()

	// Stage 3: realistic applications, rollback from the uBench limit.
	worst := res.UBenchLimit
	normal := res.UBenchLimit
	sp = in.tr.Begin("charact", "stage:app", label)
	for _, app := range o.Apps {
		d, err := findRollback(m, label, app, res.UBenchLimit, o.Trials, o.RunsPerConfig, o.TrialRetries, src.Split("app/"+app.Name), in.appTrials, in.tr)
		if err != nil {
			sp.End()
			return CoreResult{}, err
		}
		res.AppLimit[app.Name] = d.Limit
		res.AppRollbackMean[app.Name] = float64(res.UBenchLimit) - d.Hist.WeightedMean()
		if d.Limit < worst {
			worst = d.Limit
		}
		if app.StressScore <= MediumStressCutoff && d.Limit < normal {
			normal = d.Limit
		}
	}
	sp.End()
	res.ThreadWorst = worst
	res.ThreadNormal = normal
	return res, nil
}

// configSafe runs the workload runs times at the machine's current
// configuration; the configuration is safe only when every run passes.
// A run that fails with a transient harness error is retried up to
// retries extra attempts (chip.RunTrialRetry); attempt 0 always draws
// from the same stream as retry-free code, so a fault-free machine
// yields byte-identical results regardless of the budget.
func configSafe(m *chip.Machine, label string, w workload.Profile, runs, retries int, src *rng.Source) (bool, error) {
	for i := 0; i < runs; i++ {
		tr, err := m.RunTrialRetry(label, w, src.SplitIndex("run", i), retries)
		if err != nil {
			return false, err
		}
		if !tr.OK() {
			return false, nil
		}
	}
	return true, nil
}

// FindLimit performs the idle-style upward search: per trial, increase
// the reduction from 0 until the first failure; the trial's limit is the
// last safe configuration. Returns the distribution over trials.
// Transient harness failures are not retried; use Characterize with
// Options.TrialRetries for the fault-tolerant path.
func FindLimit(m *chip.Machine, label string, w workload.Profile, trials, runsPerConfig int, src *rng.Source) (Distribution, error) {
	return findLimit(m, label, w, trials, runsPerConfig, 0, src, nil, nil)
}

func findLimit(m *chip.Machine, label string, w workload.Profile, trials, runsPerConfig, retries int, src *rng.Source, tc *obs.Counter, tr *obs.Tracer) (Distribution, error) {
	core, err := m.Core(label)
	if err != nil {
		return Distribution{}, err
	}
	maxR := core.Profile.MaxReduction()
	d := Distribution{Core: label, Workload: w.Name, Hist: stats.NewHistogram()}
	for t := 0; t < trials; t++ {
		tc.Inc()
		tsp := tr.Begin("charact", "trial", label)
		if tsp != nil {
			// Argument rendering only runs with the plane enabled.
			tsp.Arg("workload", w.Name).Arg("trial", strconv.Itoa(t))
		}
		tsrc := src.SplitIndex("trial", t)
		lim := 0
		for r := 1; r <= maxR; r++ {
			if err := m.ProgramCPM(label, r); err != nil {
				return Distribution{}, err
			}
			ok, err := configSafe(m, label, w, runsPerConfig, retries, tsrc.SplitIndex("r", r))
			if err != nil {
				return Distribution{}, err
			}
			if !ok {
				break
			}
			lim = r
		}
		if tsp != nil {
			tsp.Arg("limit", strconv.Itoa(lim))
		}
		tsp.End()
		d.Hist.Add(lim)
	}
	if err := m.ProgramCPM(label, 0); err != nil {
		return Distribution{}, err
	}
	lo, _ := d.Hist.MinValue()
	d.Limit = lo
	return d, nil
}

// FindRollback performs the uBench/application-style search: per trial,
// start at the given configuration and roll the reduction back until the
// workload runs correctly (Sec. V-B). Returns the distribution of safe
// configurations over trials. Like FindLimit, it does not retry
// transient harness failures.
func FindRollback(m *chip.Machine, label string, w workload.Profile, start, trials, runsPerConfig int, src *rng.Source) (Distribution, error) {
	return findRollback(m, label, w, start, trials, runsPerConfig, 0, src, nil, nil)
}

func findRollback(m *chip.Machine, label string, w workload.Profile, start, trials, runsPerConfig, retries int, src *rng.Source, tc *obs.Counter, tr *obs.Tracer) (Distribution, error) {
	d := Distribution{Core: label, Workload: w.Name, Hist: stats.NewHistogram()}
	for t := 0; t < trials; t++ {
		tc.Inc()
		tsp := tr.Begin("charact", "trial", label)
		if tsp != nil {
			tsp.Arg("workload", w.Name).Arg("trial", strconv.Itoa(t))
		}
		tsrc := src.SplitIndex("trial", t)
		r := start
		for r > 0 {
			if err := m.ProgramCPM(label, r); err != nil {
				return Distribution{}, err
			}
			ok, err := configSafe(m, label, w, runsPerConfig, retries, tsrc.SplitIndex("r", r))
			if err != nil {
				return Distribution{}, err
			}
			if ok {
				break
			}
			r--
		}
		if tsp != nil {
			tsp.Arg("limit", strconv.Itoa(r))
		}
		tsp.End()
		d.Hist.Add(r)
	}
	if err := m.ProgramCPM(label, 0); err != nil {
		return Distribution{}, err
	}
	lo, _ := d.Hist.MinValue()
	d.Limit = lo
	return d, nil
}

// TableIRow is one core's line of the paper's Table I.
type TableIRow struct {
	Core                        string
	Idle, UBench, Normal, Worst int
	// Quarantined marks a row whose limits are meaningless: the core's
	// harness never stabilized and it must stay at static margin.
	Quarantined bool
}

// TableI extracts the Table I reproduction from a report, in core order.
func (r *Report) TableI() []TableIRow {
	rows := make([]TableIRow, 0, len(r.Cores))
	for _, c := range r.Cores {
		rows = append(rows, TableIRow{
			Core:        c.Core,
			Idle:        c.Idle.Limit,
			UBench:      c.UBenchLimit,
			Normal:      c.ThreadNormal,
			Worst:       c.ThreadWorst,
			Quarantined: c.Quarantined,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Core < rows[j].Core })
	return rows
}

// RobustnessRank orders cores by increasing total Fig. 10 rollback —
// the most robust cores (right-hand columns of Fig. 10) come last.
func (r *Report) RobustnessRank() []string {
	type agg struct {
		core string
		sum  float64
	}
	var all []agg
	for _, c := range r.Cores {
		if c.Quarantined {
			continue
		}
		s := 0.0
		for _, v := range c.AppRollbackMean {
			s += v
		}
		all = append(all, agg{c.Core, s})
	}
	sort.Slice(all, func(i, j int) bool {
		//lint:ignore floatcmp comparator tie-break: exact inequality only routes to the secondary key, any consistent order is deterministic
		if all[i].sum != all[j].sum {
			return all[i].sum > all[j].sum
		}
		return all[i].core < all[j].core
	})
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.core
	}
	return out
}

// Validate sanity-checks the report's internal consistency: limits must
// be monotone across methodology stages on every characterized core.
// Quarantined cores carry no limits and are skipped.
func (r *Report) Validate() error {
	for _, c := range r.Cores {
		if c.Quarantined {
			continue
		}
		if c.UBenchLimit > c.Idle.Limit {
			return fmt.Errorf("charact: %s uBench limit %d above idle limit %d",
				c.Core, c.UBenchLimit, c.Idle.Limit)
		}
		if c.ThreadNormal > c.UBenchLimit || c.ThreadWorst > c.ThreadNormal {
			return fmt.Errorf("charact: %s limits not monotone: ub %d normal %d worst %d",
				c.Core, c.UBenchLimit, c.ThreadNormal, c.ThreadWorst)
		}
	}
	return nil
}
