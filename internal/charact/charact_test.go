package charact

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/silicon"
	"repro/internal/workload"
)

// newReportT runs the full methodology on the reference machine once per
// test binary (it is the expensive fixture shared by several tests).
var refReport *Report

func referenceReport(t *testing.T) *Report {
	t.Helper()
	if refReport != nil {
		return refReport
	}
	m := chip.NewReference()
	rep, err := Characterize(m, Options{})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	refReport = rep
	return rep
}

// TestTableIMatchesPaper is the headline reproduction check: running the
// paper's methodology against the calibrated silicon rediscovers every
// cell of Table I.
func TestTableIMatchesPaper(t *testing.T) {
	rep := referenceReport(t)
	for _, row := range rep.TableI() {
		idle, ub, normal, worst, ok := silicon.ReferenceTableI(row.Core)
		if !ok {
			t.Fatalf("no reference row for %s", row.Core)
		}
		if row.Idle != idle || row.UBench != ub || row.Normal != normal || row.Worst != worst {
			t.Errorf("%s: measured %d/%d/%d/%d, paper %d/%d/%d/%d",
				row.Core, row.Idle, row.UBench, row.Normal, row.Worst,
				idle, ub, normal, worst)
		}
	}
}

// TestIdleDistributionsTight verifies the Fig. 7 property: idle limit
// distributions cover no more than two configurations.
func TestIdleDistributionsTight(t *testing.T) {
	rep := referenceReport(t)
	for _, c := range rep.Cores {
		if !c.Idle.Tight() {
			t.Errorf("%s: idle distribution spread %d > 1 (support %v)",
				c.Core, c.Idle.Hist.Spread(), c.Idle.Hist.Support())
		}
	}
}

// TestIdleFrequenciesExceedDefault verifies the Sec. IV-A headline: at
// the idle limit most cores exceed 5 GHz and every core beats the
// 4.6 GHz default and the 4.2 GHz static baseline.
func TestIdleFrequenciesExceedDefault(t *testing.T) {
	rep := referenceReport(t)
	over5000 := 0
	for _, c := range rep.Cores {
		if c.IdleFreq <= 4600 {
			t.Errorf("%s: idle-limit frequency %v does not beat default ATM", c.Core, c.IdleFreq)
		}
		if c.IdleFreq > 5000 {
			over5000++
		}
	}
	if over5000 < len(rep.Cores)/2 {
		t.Errorf("only %d/%d cores exceed 5000 MHz at the idle limit; paper: more than half",
			over5000, len(rep.Cores))
	}
}

// TestSixCoresRollBackUnderUBench verifies the Sec. V-B finding: exactly
// six cores need a uBench rollback from their idle limit, by one to
// three steps.
func TestSixCoresRollBackUnderUBench(t *testing.T) {
	rep := referenceReport(t)
	failing := 0
	for _, c := range rep.Cores {
		rb := c.Idle.Limit - c.UBenchLimit
		if rb < 0 {
			t.Fatalf("%s: negative uBench rollback %d", c.Core, rb)
		}
		if rb > 0 {
			failing++
			if rb > 3 {
				t.Errorf("%s: uBench rollback %d exceeds the 1–3 range", c.Core, rb)
			}
		}
	}
	if failing != 6 {
		t.Errorf("got %d cores with uBench rollback, paper reports 6", failing)
	}
}

// TestStressOrdering verifies the Fig. 9/10 row structure: x264 demands
// at least as much rollback as gcc on every core, and strictly more in
// aggregate.
func TestStressOrdering(t *testing.T) {
	rep := referenceReport(t)
	var sumX264, sumGCC float64
	for _, c := range rep.Cores {
		x := c.AppRollbackMean["x264"]
		g := c.AppRollbackMean["gcc"]
		if x < g-1e-9 {
			t.Errorf("%s: x264 rollback %.2f below gcc %.2f", c.Core, x, g)
		}
		sumX264 += x
		sumGCC += g
	}
	if sumX264 <= sumGCC {
		t.Errorf("aggregate x264 rollback %.2f not above gcc %.2f", sumX264, sumGCC)
	}
}

// TestRobustCoresNeedNoRollback verifies the Fig. 10 column structure:
// the most robust cores take zero rollback for every application.
func TestRobustCoresNeedNoRollback(t *testing.T) {
	rep := referenceReport(t)
	rank := rep.RobustnessRank()
	mostRobust := rank[len(rank)-1]
	c, ok := rep.Core(mostRobust)
	if !ok {
		t.Fatalf("missing core %s", mostRobust)
	}
	for app, rb := range c.AppRollbackMean {
		if rb > 0.2 {
			t.Errorf("most robust core %s rolls back %.2f for %s", mostRobust, rb, app)
		}
	}
}

// TestFindLimitRestoresDefault verifies searches leave the machine at
// the default configuration.
func TestFindLimitRestoresDefault(t *testing.T) {
	m := chip.NewReference()
	if _, err := Characterize(m, Options{Trials: 2, Apps: []workload.Profile{workload.GCC}}); err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	for _, c := range m.AllCores() {
		if c.Reduction() != 0 {
			t.Errorf("%s left at reduction %d", c.Profile.Label, c.Reduction())
		}
	}
}
