// Package sentinel implements the closed-loop margin sentinel that
// keeps a fine-tuned ATM configuration safe as silicon ages. The paper
// fine-tunes the active timing margin control loop once, on fresh
// silicon; over years of field operation NBTI/HCI drift erodes the
// very margin the fine-tuning spent. The sentinel watches per-core CPM
// slack telemetry (the fsp "margins" verb), detects sustained erosion
// with an EWMA plus hysteresis, accumulates evidence through an
// integral term in the style of Chen et al.'s margin feedback
// controller (arXiv:1709.04859), and walks a graded escalation ladder:
//
//	step back  — undo one notch of fine-tuned reduction,
//	re-tune    — bounded online stress re-characterization,
//	static     — fall back to the worst-case static guardband,
//	quarantine — give up on the core entirely.
//
// The sentinel itself is a pure, deterministic state machine: it never
// touches the machine model, wall clocks, or RNG. All side effects go
// through the Actuator interface its owner provides, so the package
// depends only on internal/guard (quarantine breakers) and
// internal/obs (telemetry about the sentinel itself). That keeps the
// import graph acyclic — internal/lifetime implements the Actuator on
// top of fsp + tuning and drives Observe/Act from its epoch loop.
package sentinel

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/obs"
)

// Action identifies a rung of the escalation ladder.
type Action int

const (
	// ActionNone: evidence below the action threshold, or the core is
	// beyond help (quarantined).
	ActionNone Action = iota
	// ActionStepBack undoes one notch of CPM reduction.
	ActionStepBack
	// ActionRetune re-runs the bounded online stress search.
	ActionRetune
	// ActionStatic falls back to the static worst-case guardband.
	ActionStatic
	// ActionQuarantine retires the core.
	ActionQuarantine
)

// String names the action for logs and metrics.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionStepBack:
		return "step-back"
	case ActionRetune:
		return "retune"
	case ActionStatic:
		return "static-fallback"
	case ActionQuarantine:
		return "quarantine"
	default:
		return "invalid"
	}
}

// Actuator is how the sentinel changes the world. Implementations
// (internal/lifetime) translate each rung into FSP/tuning operations.
// Every method returns the core's reduction after the operation; an
// error marks the recovery attempt failed and feeds the core's
// quarantine breaker.
type Actuator interface {
	// StepBack lowers the core's reduction by one notch. Returns the
	// new reduction; stepping back from zero is not an error, it just
	// returns zero (the ladder escalates past it).
	StepBack(core string) (int, error)
	// Retune re-characterizes the core online and programs the fresh
	// limit. Returns the new reduction.
	Retune(core string) (int, error)
	// Static puts the core in static worst-case margin mode.
	Static(core string) error
	// Quarantine retires the core (gates it off or marks it lost).
	Quarantine(core string, reason string) error
}

// Config tunes the detector and the ladder. The zero value selects
// the defaults noted per field.
type Config struct {
	// Alpha is the EWMA smoothing factor. Default 0.25.
	Alpha float64
	// AlarmSigma arms the alarm when the smoothed margin drops below
	// it. A freshly fine-tuned core settles at or above the 4.5-sigma
	// calibration headroom (limitHeadroomSigmas in internal/silicon),
	// where the per-trial failure probability is ~7e-6; the default of
	// 4.2 fires while the probability is still below 2e-5, so the
	// sentinel reacts before erosion reaches dangerous odds.
	AlarmSigma float64
	// ClearSigma disarms the alarm (hysteresis). Must exceed
	// AlarmSigma but stay below the 4.5-sigma post-intervention floor:
	// a re-tuned core lands exactly at the calibration headroom, and
	// that must count as recovered. Default AlarmSigma + 0.2.
	ClearSigma float64
	// Ki is the integral gain on the alarm error, after Chen et al.'s
	// voltage-margin feedback loop. The margin telemetry is a solved
	// model quantity, not a noisy sensor, so the default of 2.0 is
	// deliberately hot: a full tap-step drop (≥ ~3 sigma) crosses the
	// action threshold on the first alarmed sample.
	Ki float64
	// IntegralCap is the anti-windup clamp on the accumulated
	// evidence. Default 3.0.
	IntegralCap float64
	// ActAt is the evidence level that triggers the ladder. Default 1.0.
	ActAt float64
	// RetuneAfterSteps escalates from step-back to re-tune after this
	// many step-backs since the core's last full characterization: a
	// blind one-notch retreat is cheap and instant, but each one is a
	// guess, and after enough of them the core deserves a real online
	// re-characterization of its aged silicon. Default 2.
	RetuneAfterSteps int
	// MaxRetunes escalates from re-tune to static fallback after this
	// many re-tunes on a core. Default 2.
	MaxRetunes int
	// BreakerFailures is the consecutive failed-recovery count that
	// trips a core's quarantine breaker. Default 4.
	BreakerFailures int
	// Obs, when non-nil, receives sentinel counters and gauges.
	Obs *obs.Registry
	// Trace, when non-nil, receives an instant event per action.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.AlarmSigma == 0 {
		c.AlarmSigma = 4.2
	}
	if c.ClearSigma <= c.AlarmSigma {
		c.ClearSigma = c.AlarmSigma + 0.2
	}
	if c.Ki <= 0 {
		c.Ki = 2.0
	}
	if c.IntegralCap <= 0 {
		c.IntegralCap = 3.0
	}
	if c.ActAt <= 0 {
		c.ActAt = 1.0
	}
	if c.RetuneAfterSteps <= 0 {
		c.RetuneAfterSteps = 2
	}
	if c.MaxRetunes <= 0 {
		c.MaxRetunes = 2
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 4
	}
	return c
}

// coreState is the per-core detector and ladder position.
type coreState struct {
	name string

	// Detector.
	ewma    float64
	seeded  bool
	alarmed bool
	// integral is the Chen-style accumulated evidence: grows while the
	// smoothed margin sits below AlarmSigma, bleeds when above.
	integral float64

	// Ladder position.
	stepBacks   int // step-backs since the last re-tune
	retunes     int // lifetime re-tune count
	static      bool
	quarantined bool
	// fixPending marks that an action was taken and the alarm has not
	// cleared since: the next action therefore counts the previous one
	// as a failed recovery on the breaker.
	fixPending bool

	br *guard.Breaker
}

// Event is one sentinel decision, for the owner's timeline.
type Event struct {
	Core   string
	Action Action
	// Reduction is the core's reduction after the action (meaningful
	// for step-back and re-tune).
	Reduction int
	// Err carries the actuator failure, if any.
	Err error
}

// Sentinel watches a fixed set of cores. It is a plain deterministic
// state machine: feed it margin samples with Observe, and when Observe
// reports the evidence threshold crossed, call Act to walk the ladder.
//
//atm:nilsafe
type Sentinel struct {
	cfg   Config
	cores []coreState
	act   Actuator

	alarms   *obs.Counter
	actions  [5]*obs.Counter // indexed by Action
	failures *obs.Counter
}

// New builds a sentinel over the named cores. The order of names fixes
// the index space Observe and Act use; it must match the order the
// margin telemetry is sampled in (fsp address order).
func New(cfg Config, cores []string, act Actuator) *Sentinel {
	cfg = cfg.withDefaults()
	s := &Sentinel{cfg: cfg, act: act}
	s.cores = make([]coreState, len(cores))
	for i, name := range cores {
		s.cores[i] = coreState{
			name: name,
			br: guard.NewBreaker(guard.BreakerOptions{
				Name:             "sentinel-" + name,
				FailureThreshold: cfg.BreakerFailures,
				// The ladder is the probe policy; one success closes.
				HalfOpenProbes: 1,
				Obs:            cfg.Obs,
			}),
		}
	}
	if cfg.Obs != nil {
		s.alarms = cfg.Obs.Counter("sentinel_alarms_total")
		s.failures = cfg.Obs.Counter("sentinel_recovery_failures_total")
		for a := ActionStepBack; a <= ActionQuarantine; a++ {
			s.actions[a] = cfg.Obs.Counter("sentinel_actions_total", "action", a.String())
		}
	}
	return s
}

// Observe feeds one margin sample (in sigmas of trial-noise headroom
// above the worst-case envelope) for core i and reports whether the
// accumulated evidence crossed the action threshold. It is the per-
// sample fast path of the lifetime loop — thousands of calls per
// simulated year — and does nothing but arithmetic.
//
//atm:hotpath
func (s *Sentinel) Observe(i int, sigma float64) bool {
	if s == nil {
		return false
	}
	if i < 0 || i >= len(s.cores) {
		return false
	}
	c := &s.cores[i]
	if c.quarantined {
		return false
	}
	if !c.seeded {
		c.ewma = sigma
		c.seeded = true
	} else {
		c.ewma += s.cfg.Alpha * (sigma - c.ewma)
	}

	// Hysteresis on the smoothed margin.
	if c.alarmed {
		if c.ewma >= s.cfg.ClearSigma {
			c.alarmed = false
			if c.fixPending {
				// The last action restored the margin: a recovery.
				c.fixPending = false
				c.br.Success()
			}
		}
	} else if c.ewma < s.cfg.AlarmSigma {
		c.alarmed = true
		if s.alarms != nil {
			s.alarms.Inc()
		}
	}

	// Chen-style integral on the alarm error: accumulate evidence
	// while below the alarm line, bleed it while above.
	c.integral += s.cfg.Ki * (s.cfg.AlarmSigma - c.ewma)
	if c.integral < 0 {
		c.integral = 0
	} else if c.integral > s.cfg.IntegralCap {
		c.integral = s.cfg.IntegralCap
	}
	return c.alarmed && c.integral >= s.cfg.ActAt
}

// Margin returns core i's current smoothed margin estimate in sigmas.
func (s *Sentinel) Margin(i int) float64 {
	if s == nil {
		return 0
	}
	if i < 0 || i >= len(s.cores) {
		return 0
	}
	return s.cores[i].ewma
}

// Quarantined reports whether core i has been retired.
func (s *Sentinel) Quarantined(i int) bool {
	if s == nil {
		return false
	}
	if i < 0 || i >= len(s.cores) {
		return false
	}
	return s.cores[i].quarantined
}

// Act walks core i one rung down the escalation ladder. Call it when
// Observe returns true. The returned event records what was done; an
// ActionNone event means the core needed nothing (already quarantined,
// or the evidence evaporated).
func (s *Sentinel) Act(i int) Event {
	if s == nil {
		return Event{}
	}
	if i < 0 || i >= len(s.cores) {
		return Event{}
	}
	c := &s.cores[i]
	if c.quarantined {
		return Event{Core: c.name, Action: ActionNone}
	}

	// Admission through the quarantine breaker: a previous action whose
	// alarm never cleared is a failed recovery.
	if c.fixPending {
		c.br.Failure()
		if s.failures != nil {
			s.failures.Inc()
		}
	}
	if !c.br.Allow() {
		// Breaker open: recoveries keep failing. Retire the core.
		return s.retire(c, "recovery breaker open")
	}

	ev := Event{Core: c.name}
	switch {
	case c.static:
		// Margin erosion in static worst-case mode means the silicon
		// has drifted past even the full guardband. Nothing gentler
		// left to try.
		return s.retire(c, "margin alarm in static mode")
	case c.stepBacks < s.cfg.RetuneAfterSteps:
		red, err := s.act.StepBack(c.name)
		ev.Action, ev.Reduction, ev.Err = ActionStepBack, red, err
		c.stepBacks++
	case c.retunes < s.cfg.MaxRetunes:
		red, err := s.act.Retune(c.name)
		ev.Action, ev.Reduction, ev.Err = ActionRetune, red, err
		c.retunes++
		c.stepBacks = 0
	default:
		err := s.act.Static(c.name)
		ev.Action, ev.Err = ActionStatic, err
		c.static = true
	}

	if ev.Err != nil {
		c.br.Failure()
		if s.failures != nil {
			s.failures.Inc()
		}
		c.fixPending = false
	} else {
		c.fixPending = true
	}

	// Taking an action resets the detector: the controller just
	// changed the plant, so the filter state describing the old plant
	// is stale. Re-seeding the EWMA from the next sample means a
	// successful fix clears the alarm in one epoch instead of
	// dragging the ladder through the filter's recovery transient —
	// while a fix that changed nothing re-alarms just as fast.
	c.integral = 0
	c.seeded = false
	s.note(ev)
	return ev
}

// retire quarantines a core through the actuator and pins its state.
func (s *Sentinel) retire(c *coreState, reason string) Event {
	ev := Event{Core: c.name, Action: ActionQuarantine}
	ev.Err = s.act.Quarantine(c.name, reason)
	c.quarantined = true
	c.fixPending = false
	c.integral = 0
	s.note(ev)
	return ev
}

// note exports an action to the obs plane.
func (s *Sentinel) note(ev Event) {
	if ctr := s.actions[ev.Action]; ctr != nil {
		ctr.Inc()
	}
	if s.cfg.Trace != nil {
		status := "ok"
		if ev.Err != nil {
			status = "err"
		}
		s.cfg.Trace.Instant("sentinel", ev.Action.String(), ev.Core,
			"core", ev.Core, "reduction", fmt.Sprintf("%d", ev.Reduction), "status", status)
	}
}
