package sentinel

import (
	"errors"
	"testing"

	"repro/internal/obs"
)

// fakeActuator records calls and lets a test script the world's
// response: reductions step down through `red`, retune resets to
// `retuneTo`, and `fail` makes every call error.
type fakeActuator struct {
	red      int
	retuneTo int
	fail     bool

	stepBacks   int
	retunes     int
	statics     int
	quarantines int
	lastReason  string
}

var errActuator = errors.New("actuator failed")

func (f *fakeActuator) StepBack(core string) (int, error) {
	f.stepBacks++
	if f.fail {
		return f.red, errActuator
	}
	if f.red > 0 {
		f.red--
	}
	return f.red, nil
}

func (f *fakeActuator) Retune(core string) (int, error) {
	f.retunes++
	if f.fail {
		return f.red, errActuator
	}
	f.red = f.retuneTo
	return f.red, nil
}

func (f *fakeActuator) Static(core string) error {
	f.statics++
	if f.fail {
		return errActuator
	}
	f.red = 0
	return nil
}

func (f *fakeActuator) Quarantine(core, reason string) error {
	f.quarantines++
	f.lastReason = reason
	return nil
}

// drive feeds sigma until Observe trips, then Acts; returns the event.
// Fails the test if the threshold never trips within limit samples.
func drive(t *testing.T, s *Sentinel, sigma float64, limit int) Event {
	t.Helper()
	for n := 0; n < limit; n++ {
		if s.Observe(0, sigma) {
			return s.Act(0)
		}
	}
	t.Fatalf("evidence never crossed threshold after %d samples at %.2f sigma", limit, sigma)
	return Event{}
}

func TestHealthyMarginNeverActs(t *testing.T) {
	act := &fakeActuator{red: 5}
	s := New(Config{}, []string{"P0C0"}, act)
	for n := 0; n < 10000; n++ {
		if s.Observe(0, 4.6) {
			t.Fatalf("sentinel acted on a healthy 4.6-sigma margin at sample %d", n)
		}
	}
	if act.stepBacks+act.retunes+act.statics+act.quarantines != 0 {
		t.Fatalf("actuator touched on healthy telemetry: %+v", act)
	}
}

func TestNoiseBelowEvidenceThresholdIgnored(t *testing.T) {
	s := New(Config{}, []string{"P0C0"}, &fakeActuator{red: 5})
	// Alternate dips below alarm with recoveries: the integral bleeds
	// off between dips and must never reach the action threshold.
	for n := 0; n < 5000; n++ {
		sigma := 4.6
		if n%10 == 9 {
			sigma = 2.9
		}
		if s.Observe(0, sigma) {
			t.Fatalf("sentinel acted on transient dips at sample %d", n)
		}
	}
}

func TestEscalationLadderOrder(t *testing.T) {
	act := &fakeActuator{red: 5, retuneTo: 3}
	cfg := Config{RetuneAfterSteps: 2, MaxRetunes: 1}
	s := New(cfg, []string{"P0C0"}, act)

	// Sustained erosion with no improvement: two blind retreats, then a
	// re-characterization (which refreshes the retreat budget), then one
	// more retreat — at which point four consecutive un-recovered
	// actions have tripped the quarantine breaker.
	wantActions := []Action{ActionStepBack, ActionStepBack, ActionRetune, ActionStepBack, ActionQuarantine}
	wantReds := []int{4, 3, 3, 2, 0}
	for i, want := range wantActions {
		ev := drive(t, s, 1.0, 100)
		if ev.Action != want {
			t.Fatalf("rung %d: got %s, want %s", i, ev.Action, want)
		}
		if ev.Err != nil {
			t.Fatalf("rung %d (%s): %v", i, want, ev.Err)
		}
		if (want == ActionStepBack || want == ActionRetune) && ev.Reduction != wantReds[i] {
			t.Fatalf("rung %d (%s): reduction %d, want %d", i, want, ev.Reduction, wantReds[i])
		}
	}
	if !s.Quarantined(0) {
		t.Fatal("core not quarantined after exhausting the ladder")
	}
	if act.lastReason == "" {
		t.Fatal("quarantine carried no reason")
	}
	// A quarantined core is inert.
	for n := 0; n < 100; n++ {
		if s.Observe(0, -5) {
			t.Fatal("quarantined core still generates actions")
		}
	}
}

func TestStepBackBudgetSpansRecoveries(t *testing.T) {
	act := &fakeActuator{red: 5, retuneTo: 5}
	s := New(Config{RetuneAfterSteps: 2}, []string{"P0C0"}, act)

	recover := func() {
		for n := 0; n < 100; n++ {
			s.Observe(0, 5.0)
		}
	}
	// Two step-backs, each followed by a clean recovery above the
	// hysteresis clear line.
	for i := 0; i < 2; i++ {
		if ev := drive(t, s, 1.0, 100); ev.Action != ActionStepBack {
			t.Fatalf("retreat %d: got %s, want step-back", i, ev.Action)
		}
		recover()
	}
	// Third erosion: the budget of blind retreats is spent, so the
	// ladder escalates to a real re-characterization even though each
	// retreat recovered the margin.
	if ev := drive(t, s, 1.0, 100); ev.Action != ActionRetune {
		t.Fatalf("post-budget action %s, want retune", ev.Action)
	}
	recover()
	// The re-tune refreshed the characterization: retreats are cheap
	// again.
	if ev := drive(t, s, 1.0, 100); ev.Action != ActionStepBack {
		t.Fatalf("post-retune action %s, want step-back", ev.Action)
	}
}

func TestStaticFallbackAfterRetunesExhausted(t *testing.T) {
	act := &fakeActuator{red: 5, retuneTo: 3}
	// A breaker threshold well above the ladder length isolates the
	// ladder's own static rung from breaker-driven quarantine.
	cfg := Config{RetuneAfterSteps: 2, MaxRetunes: 1, BreakerFailures: 100}
	s := New(cfg, []string{"P0C0"}, act)

	want := []Action{
		ActionStepBack, ActionStepBack, ActionRetune,
		ActionStepBack, ActionStepBack, ActionStatic,
		ActionQuarantine, // alarm while static: nothing gentler left
	}
	for i, w := range want {
		ev := drive(t, s, 1.0, 100)
		if ev.Action != w {
			t.Fatalf("rung %d: got %s, want %s", i, ev.Action, w)
		}
	}
	if act.statics != 1 || act.quarantines != 1 {
		t.Fatalf("statics=%d quarantines=%d, want 1 and 1", act.statics, act.quarantines)
	}
}

func TestFailingActuatorTripsQuarantineBreaker(t *testing.T) {
	act := &fakeActuator{red: 5, fail: true}
	s := New(Config{BreakerFailures: 3}, []string{"P0C0"}, act)

	var last Event
	for n := 0; n < 20 && !s.Quarantined(0); n++ {
		last = drive(t, s, 1.0, 200)
	}
	if !s.Quarantined(0) {
		t.Fatal("persistent actuator failure never quarantined the core")
	}
	if last.Action != ActionQuarantine {
		t.Fatalf("final action %s, want quarantine", last.Action)
	}
	if act.quarantines != 1 {
		t.Fatalf("quarantine called %d times, want 1", act.quarantines)
	}
}

func TestObsCountsActions(t *testing.T) {
	reg := obs.NewRegistry()
	act := &fakeActuator{red: 5, retuneTo: 3}
	s := New(Config{Obs: reg, RetuneAfterSteps: 1, MaxRetunes: 1}, []string{"P0C0"}, act)
	for n := 0; n < 5 && !s.Quarantined(0); n++ {
		drive(t, s, 1.0, 200)
	}
	for _, c := range []struct {
		action string
		want   int64
	}{
		{"step-back", 2}, {"retune", 1}, {"static-fallback", 1}, {"quarantine", 1},
	} {
		got := reg.Counter("sentinel_actions_total", "action", c.action).Value()
		if got != c.want {
			t.Fatalf("sentinel_actions_total{action=%q} = %d, want %d", c.action, got, c.want)
		}
	}
	if reg.Counter("sentinel_alarms_total").Value() == 0 {
		t.Fatal("no alarms counted")
	}
}

func TestNilSentinelIsInert(t *testing.T) {
	var s *Sentinel
	if s.Observe(0, -10) {
		t.Fatal("nil sentinel observed an action")
	}
	if s.Quarantined(0) || s.Margin(0) != 0 {
		t.Fatal("nil sentinel has state")
	}
	if ev := s.Act(0); ev.Action != ActionNone {
		t.Fatal("nil sentinel acted")
	}
}

func TestOutOfRangeCoreIndex(t *testing.T) {
	s := New(Config{}, []string{"P0C0"}, &fakeActuator{})
	if s.Observe(1, -10) || s.Observe(-1, -10) {
		t.Fatal("out-of-range index generated an action")
	}
	if ev := s.Act(7); ev.Action != ActionNone || ev.Core != "" {
		t.Fatal("out-of-range Act did something")
	}
}
