package fleet

import (
	"fmt"
	"testing"
)

// benchCampaign is the workload both benchmarks run: a Monte-Carlo
// population study over benchN generated chips, the same shape
// cmd/atmfigures' ext-montecarlo study fans out.
const benchN = 8

func benchmarkMonteCarlo(b *testing.B, workers int) {
	c := MonteCarlo(benchN, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(c, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if n := len(res.Failed()); n != 0 {
			b.Fatalf("%d job(s) failed", n)
		}
	}
}

// BenchmarkMonteCarloSequential is the workers=1 baseline.
func BenchmarkMonteCarloSequential(b *testing.B) { benchmarkMonteCarlo(b, 1) }

// BenchmarkMonteCarloWorkers8 fans the same campaign across 8 workers.
// On a multi-core host wall-clock time drops roughly linearly in
// min(workers, cores, jobs); the merged bytes are identical either way
// (see determinism_test.go).
func BenchmarkMonteCarloWorkers8(b *testing.B) { benchmarkMonteCarlo(b, 8) }

// BenchmarkMonteCarloCached measures the cache-served path: every job
// is a content-addressed hit, so the run cost is hash + decode + merge.
func BenchmarkMonteCarloCached(b *testing.B) {
	dir := b.TempDir()
	c := MonteCarlo(benchN, 1)
	if _, err := Run(c, Options{Workers: 4, CacheDir: dir}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(c, Options{Workers: 4, CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if res.CachedCount() != benchN {
			b.Fatalf("expected %d cached jobs, got %d", benchN, res.CachedCount())
		}
	}
}

// BenchmarkJobHash isolates the content-addressing cost.
func BenchmarkJobHash(b *testing.B) {
	jobs := MonteCarlo(benchN, 1).Jobs
	b.ReportAllocs()
	var sink string
	for i := 0; i < b.N; i++ {
		sink = jobs[i%len(jobs)].Hash()
	}
	_ = sink
}

func init() {
	// Guard against the benchmark campaign silently validating away.
	if err := MonteCarlo(benchN, 1).Validate(); err != nil {
		panic(fmt.Sprintf("fleet: benchmark campaign invalid: %v", err))
	}
}
