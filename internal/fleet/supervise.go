package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/obs"
)

// This file is the fleet's supervision layer: every job runs inside a
// panic-isolation wrapper (guard.SafeRun) so a panicking worker
// degrades into a per-job failure instead of killing the pool, a job
// that keeps panicking is quarantined as a poison job after a bounded
// number of retries, and an optional watchdog deadlines jobs on the
// trial axis — the repository's simulated-time equivalent of a stuck
// command. All failure messages are pure functions of the job spec and
// its panic value, so merged results stay byte-identical across worker
// counts even for crashing campaigns.

// testJobPanic, when non-nil, is invoked at the top of every job
// attempt. Chaos tests install it to make chosen jobs panic without
// touching the job specs (a panic hook in the spec would change job
// hashes and pollute the content-addressed cache).
var testJobPanic func(Job)

// trialDeadline is the sentinel value the watchdog's trial observer
// panics with when a job exceeds its trial budget. The panic is the
// only way out of a deep trial loop from an observer; runGuarded
// recognizes the sentinel and converts it into a clean, non-retried
// job failure (the expiry is deterministic — a retry would replay it).
type trialDeadline struct{ budget int64 }

// jobGuards bundles the supervision counters the worker pool threads
// through to runGuarded.
type jobGuards struct {
	panics   *obs.Counter
	poisoned *obs.Counter
	deadline *obs.Counter
}

// effectivePanicRetries maps the Options knob to the retry count:
// default (0) retries a panicking job once, negative disables retries.
func effectivePanicRetries(o Options) int {
	switch {
	case o.PanicRetries < 0:
		return 0
	case o.PanicRetries == 0:
		return 1
	default:
		return o.PanicRetries
	}
}

// runGuarded is the supervised form of runJob: panics become job-level
// errors, repeated panics quarantine the job as poison, and a trial-
// budget expiry surfaces as a deterministic failure. The pool around a
// misbehaving job never wedges and never dies.
func runGuarded(j Job, o Options, g jobGuards) (json.RawMessage, error) {
	attempts := 1 + effectivePanicRetries(o)
	var last *guard.PanicError
	for a := 0; a < attempts; a++ {
		var payload json.RawMessage
		err := guard.SafeRun(func() error {
			var err error
			payload, err = runJob(j, o.TrialBudget)
			return err
		})
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			return payload, err
		}
		if dl, ok := pe.Value.(trialDeadline); ok {
			g.deadline.Inc()
			return nil, fmt.Errorf("job %s: trial budget %d exhausted", j.ID, dl.budget)
		}
		g.panics.Inc()
		last = pe
	}
	g.poisoned.Inc()
	return nil, fmt.Errorf("job %s: poison job quarantined after %d panics: %w", j.ID, attempts, last)
}
