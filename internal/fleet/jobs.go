package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/guard"
	"repro/internal/lifetime"
	"repro/internal/platform"
	"repro/internal/silicon"
	"repro/internal/tuning"
)

// This file runs the job kinds and defines their payload schemas. A
// payload is a fixed-field-order JSON document derived only from the
// job spec, so identical specs always serialize to identical bytes —
// the property the content-addressed cache and the worker-count
// invariance both rest on. The inner stages run with a nil obs
// registry/tracer: per-trial instrumentation from concurrent jobs
// would interleave nondeterministically, so the fleet exposes its own
// campaign-level metrics instead.

// MonteCarloResult is one ext-montecarlo population draw: manufacture
// a server, deploy it, and record the variation the paper measures on
// its two chips.
type MonteCarloResult struct {
	SiliconSeed uint64 `json:"silicon_seed"`
	// IdleLimitLo/Hi span the per-core deterministic idle limits — the
	// manufactured spread fine-tuning exposes.
	IdleLimitLo int `json:"idle_limit_lo"`
	IdleLimitHi int `json:"idle_limit_hi"`
	// SpeedDiffMHz is the deployed fastest-to-slowest idle frequency
	// gap (the paper's >200 MHz differential).
	SpeedDiffMHz float64 `json:"speed_diff_mhz"`
	// MaxIdleFreqMHz is the fastest deployed core's idle frequency;
	// consumers derive the gain over any static baseline from it.
	MaxIdleFreqMHz float64 `json:"max_idle_freq_mhz"`
}

// TuneConfig is one core's row of a tune payload.
type TuneConfig struct {
	Core          string  `json:"core"`
	StressLimit   int     `json:"stress_limit"`
	Reduction     int     `json:"reduction"`
	IdleFreqMHz   float64 `json:"idle_freq_mhz"`
	LoadedFreqMHz float64 `json:"loaded_freq_mhz"`
	Quarantined   bool    `json:"quarantined,omitempty"`
}

// TuneResult is a tune job's payload.
type TuneResult struct {
	SiliconSeed  uint64       `json:"silicon_seed"`
	Configs      []TuneConfig `json:"configs"`
	SpeedDiffMHz float64      `json:"speed_diff_mhz"`
}

// CharactRow is one core's Table I line of a characterize payload.
type CharactRow struct {
	Core        string  `json:"core"`
	Idle        int     `json:"idle"`
	UBench      int     `json:"ubench"`
	Normal      int     `json:"normal"`
	Worst       int     `json:"worst"`
	IdleFreqMHz float64 `json:"idle_freq_mhz"`
	Quarantined bool    `json:"quarantined,omitempty"`
}

// CharacterizeResult is a characterize job's payload.
type CharacterizeResult struct {
	SiliconSeed uint64       `json:"silicon_seed"`
	Rows        []CharactRow `json:"rows"`
}

// LifetimeResult is a lifetime job's payload: the full simulation
// outcome plus the silicon provenance.
type LifetimeResult struct {
	SiliconSeed uint64           `json:"silicon_seed"`
	Lifetime    *lifetime.Result `json:"lifetime"`
}

// DCProvisionResult is a dcprovision job's payload: the node's full
// datacenter-intake record (deployed configs, Eq. 1 predictor fits,
// power envelope).
type DCProvisionResult struct {
	SiliconSeed uint64              `json:"silicon_seed"`
	Provision   *platform.Provision `json:"provision"`
}

// MonteCarlo decodes a montecarlo result payload.
func (r Result) MonteCarlo() (MonteCarloResult, error) {
	var out MonteCarloResult
	if err := r.decode(KindMonteCarlo, &out); err != nil {
		return MonteCarloResult{}, err
	}
	return out, nil
}

// Tune decodes a tune result payload.
func (r Result) Tune() (TuneResult, error) {
	var out TuneResult
	if err := r.decode(KindTune, &out); err != nil {
		return TuneResult{}, err
	}
	return out, nil
}

// Lifetime decodes a lifetime result payload.
func (r Result) Lifetime() (LifetimeResult, error) {
	var out LifetimeResult
	if err := r.decode(KindLifetime, &out); err != nil {
		return LifetimeResult{}, err
	}
	return out, nil
}

// Characterize decodes a characterize result payload.
func (r Result) Characterize() (CharacterizeResult, error) {
	var out CharacterizeResult
	if err := r.decode(KindCharacterize, &out); err != nil {
		return CharacterizeResult{}, err
	}
	return out, nil
}

// DCProvision decodes a dcprovision result payload.
func (r Result) DCProvision() (DCProvisionResult, error) {
	var out DCProvisionResult
	if err := r.decode(KindDCProvision, &out); err != nil {
		return DCProvisionResult{}, err
	}
	return out, nil
}

func (r Result) decode(want Kind, into any) error {
	if r.Kind != want {
		return fmt.Errorf("fleet: job %s is %q, not %q", r.JobID, r.Kind, want)
	}
	if r.Err != "" {
		return fmt.Errorf("fleet: job %s failed: %s", r.JobID, r.Err)
	}
	return json.Unmarshal(r.Payload, into)
}

// runJob executes one job spec from scratch: its own profile, machine,
// fault injector and RNG streams, nothing shared with other workers. A
// positive trialBudget arms a watchdog on the trial axis: the job is
// deadlined (via the trialDeadline sentinel panic, recovered by
// runGuarded) once it has consumed that many retry-wrapped trials.
func runJob(j Job, trialBudget int64) (json.RawMessage, error) {
	if testJobPanic != nil {
		testJobPanic(j)
	}
	srv, err := buildServer(j)
	if err != nil {
		return nil, err
	}
	m, profile := srv.Machine, srv.Profile
	if wd := guard.NewWatchdog(guard.WatchdogOptions{Budget: trialBudget}); wd != nil {
		// The observer slot is free here: the inner stages only install
		// their own taps when run with a non-nil obs registry, and the
		// fleet always runs them bare (see the package comment above).
		m.SetTrialObserver(func(string, string, int, chip.TrialResult, error) {
			if wd.Tick(1) != nil {
				panic(trialDeadline{budget: trialBudget})
			}
		})
	}
	var payload any
	switch j.Kind {
	case KindMonteCarlo:
		payload, err = runMonteCarlo(j, m, profile)
	case KindTune:
		payload, err = runTune(j, m)
	case KindCharacterize:
		payload, err = runCharacterize(j, m)
	case KindLifetime:
		// Lifetime clones the profile and builds its own machine, so
		// the trial watchdog armed on m above does not meter it; the
		// simulation is bounded by its finite epoch count instead.
		payload, err = runLifetime(j, profile)
	case KindDCProvision:
		payload, err = runDCProvision(j, srv)
	default:
		err = fmt.Errorf("fleet: job %s: unknown kind %q", j.ID, j.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("job %s: %w", j.ID, err)
	}
	return json.Marshal(payload)
}

// buildServer materializes the job's server — silicon, machine, and
// fault arming — through the shared platform recipe, so a fleet job
// and a CLI flag set build byte-identical servers from the same spec.
func buildServer(j Job) (*platform.Server, error) {
	return platform.Build(platform.Spec{
		SiliconSeed:  j.SiliconSeed,
		Chips:        j.Chips,
		FaultProfile: j.FaultProfile,
		FaultSeed:    j.FaultSeed,
	})
}

// runMonteCarlo reproduces one ext-montecarlo draw: deploy the
// manufactured server and record its variation statistics.
func runMonteCarlo(j Job, m *chip.Machine, profile *silicon.ServerProfile) (MonteCarloResult, error) {
	dep, err := tuning.Deploy(m, tuning.Options{Seed: j.Seed, Rollback: j.Rollback})
	if err != nil {
		return MonteCarloResult{}, err
	}
	lo, hi := 1<<30, 0
	for _, c := range profile.AllCores() {
		l := c.DeterministicLimit(0)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	var fMax float64
	for _, cfg := range dep.Configs {
		if f := float64(cfg.IdleFreq); f > fMax {
			fMax = f
		}
	}
	return MonteCarloResult{
		SiliconSeed:    j.SiliconSeed,
		IdleLimitLo:    lo,
		IdleLimitHi:    hi,
		SpeedDiffMHz:   dep.SpeedDifferentialMHz(),
		MaxIdleFreqMHz: fMax,
	}, nil
}

// runTune deploys the server and records the per-core configuration.
func runTune(j Job, m *chip.Machine) (TuneResult, error) {
	dep, err := tuning.Deploy(m, tuning.Options{Seed: j.Seed, Rollback: j.Rollback})
	if err != nil {
		return TuneResult{}, err
	}
	out := TuneResult{SiliconSeed: j.SiliconSeed, SpeedDiffMHz: dep.SpeedDifferentialMHz()}
	for _, cfg := range dep.Configs {
		out.Configs = append(out.Configs, TuneConfig{
			Core:          cfg.Core,
			StressLimit:   cfg.StressLimit,
			Reduction:     cfg.Reduction,
			IdleFreqMHz:   float64(cfg.IdleFreq),
			LoadedFreqMHz: float64(cfg.LoadedFreq),
			Quarantined:   cfg.Quarantined,
		})
	}
	return out, nil
}

// runLifetime simulates the job's horizon of field operation on the
// (possibly manufactured) server.
func runLifetime(j Job, profile *silicon.ServerProfile) (LifetimeResult, error) {
	res, err := lifetime.Run(profile, lifetime.Options{
		Years:       j.Years,
		Seed:        j.Seed,
		SentinelOff: j.SentinelOff,
	})
	if err != nil {
		return LifetimeResult{}, err
	}
	return LifetimeResult{SiliconSeed: j.SiliconSeed, Lifetime: res}, nil
}

// runDCProvision runs the datacenter intake pass: deploy, calibrate
// the Eq. 1 predictors, measure the power envelope.
func runDCProvision(j Job, srv *platform.Server) (DCProvisionResult, error) {
	prov, err := platform.ProvisionServer(srv, platform.ProvisionOptions{
		Seed:     j.Seed,
		Rollback: j.Rollback,
	})
	if err != nil {
		return DCProvisionResult{}, err
	}
	return DCProvisionResult{SiliconSeed: j.SiliconSeed, Provision: prov}, nil
}

// runCharacterize runs the methodology and records the Table I rows.
func runCharacterize(j Job, m *chip.Machine) (CharacterizeResult, error) {
	rep, err := charact.Characterize(m, charact.Options{Trials: j.Trials, Seed: j.Seed})
	if err != nil {
		return CharacterizeResult{}, err
	}
	out := CharacterizeResult{SiliconSeed: j.SiliconSeed}
	for _, row := range rep.TableI() {
		var idleFreq float64
		if c, ok := rep.Core(row.Core); ok {
			idleFreq = float64(c.IdleFreq)
		}
		out.Rows = append(out.Rows, CharactRow{
			Core:        row.Core,
			Idle:        row.Idle,
			UBench:      row.UBench,
			Normal:      row.Normal,
			Worst:       row.Worst,
			IdleFreqMHz: idleFreq,
			Quarantined: row.Quarantined,
		})
	}
	return out, nil
}
