package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/obs"
)

// installPanicHook arms testJobPanic for the test and restores it.
func installPanicHook(t *testing.T, hook func(Job)) {
	t.Helper()
	prev := testJobPanic
	testJobPanic = hook
	t.Cleanup(func() { testJobPanic = prev })
}

// TestPanickingJobQuarantined is the chaos half of the worker-count
// invariance gate: one poison job panics on every attempt, and the
// campaign must still drain at every worker count with the poison job
// recorded failed and every export byte-identical.
func TestPanickingJobQuarantined(t *testing.T) {
	installPanicHook(t, func(j Job) {
		if j.ID == "mc-0002" {
			panic("chaos: poison job")
		}
	})
	camp := MonteCarlo(6, 1)
	var runs []runExports
	for _, workers := range []int{1, 2, 4, 8} {
		runs = append(runs, runWith(t, camp, workers, t.TempDir(), false))
	}
	for i, r := range runs[1:] {
		diffExports(t, fmt.Sprintf("poison campaign w1 vs w%d", []int{2, 4, 8}[i]), runs[0], r)
	}

	// The poison job is failed-and-quarantined, the rest succeeded.
	reg := obs.NewRegistry()
	res, err := Run(camp, Options{Workers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); len(got) != 1 || got[0] != "mc-0002" {
		t.Fatalf("Failed() = %v, want [mc-0002]", got)
	}
	for _, r := range res.Results {
		if r.JobID != "mc-0002" {
			if r.Err != "" {
				t.Fatalf("job %s failed alongside the poison job: %s", r.JobID, r.Err)
			}
			continue
		}
		want := "job mc-0002: poison job quarantined after 2 panics: panic: chaos: poison job"
		if r.Err != want {
			t.Fatalf("poison job Err = %q, want %q", r.Err, want)
		}
	}
	snap := string(reg.SnapshotJSON())
	for _, metric := range []string{"fleet_job_panics_total", "fleet_jobs_poisoned_total"} {
		if !strings.Contains(snap, metric) {
			t.Errorf("metrics snapshot missing %s:\n%s", metric, snap)
		}
	}
}

// TestPanickingJobNotCached proves a quarantined job is retried on the
// next run instead of poisoning the cache.
func TestPanickingJobNotCached(t *testing.T) {
	poison := true
	installPanicHook(t, func(j Job) {
		if poison && j.ID == "mc-0001" {
			panic("transient chaos")
		}
	})
	dir := t.TempDir()
	camp := MonteCarlo(2, 1)
	res, err := Run(camp, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); len(got) != 1 {
		t.Fatalf("Failed() = %v, want the poison job", got)
	}
	// Heal the job: the re-run must execute it (not serve a poisoned
	// cache entry) and succeed.
	poison = false
	res, err = Run(camp, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); len(got) != 0 {
		t.Fatalf("Failed() after heal = %v, want none", got)
	}
	if res.CachedCount() != 1 {
		t.Fatalf("CachedCount() = %d, want 1 (only the healthy job was cached)", res.CachedCount())
	}
}

func TestPanicRetriesKnob(t *testing.T) {
	installPanicHook(t, func(Job) { panic("always") })
	job := Job{ID: "j", Kind: KindMonteCarlo, SiliconSeed: 1}

	_, err := runGuarded(job, Options{PanicRetries: -1}, jobGuards{})
	if want := "job j: poison job quarantined after 1 panics: panic: always"; err == nil || err.Error() != want {
		t.Fatalf("PanicRetries=-1: err = %v, want %q", err, want)
	}
	_, err = runGuarded(job, Options{PanicRetries: 3}, jobGuards{})
	if want := "job j: poison job quarantined after 4 panics: panic: always"; err == nil || err.Error() != want {
		t.Fatalf("PanicRetries=3: err = %v, want %q", err, want)
	}
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("quarantine error does not wrap the PanicError: %v", err)
	}
}

// TestTrialBudgetDeadline arms the per-job watchdog with a budget far
// below what characterization needs and demands a deterministic,
// non-retried deadline failure.
func TestTrialBudgetDeadline(t *testing.T) {
	camp := CharacterizeSweep(1, 0, 10, "", 0)
	run := func() (*CampaignResult, string) {
		reg := obs.NewRegistry()
		res, err := Run(camp, Options{TrialBudget: 5, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		return res, string(reg.SnapshotJSON())
	}
	res, snap := run()
	if len(res.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(res.Results))
	}
	want := fmt.Sprintf("job %s: trial budget 5 exhausted", camp.Jobs[0].ID)
	if got := res.Results[0].Err; got != want {
		t.Fatalf("Err = %q, want %q", got, want)
	}
	if !strings.Contains(snap, "fleet_watchdog_expired_total") {
		t.Errorf("metrics snapshot missing fleet_watchdog_expired_total:\n%s", snap)
	}
	if !strings.Contains(snap, `{"name":"fleet_job_panics_total","labels":"","type":"counter","value":0}`) {
		t.Errorf("deadline expiry was miscounted as a panic:\n%s", snap)
	}
	if !strings.Contains(snap, `{"name":"fleet_watchdog_expired_total","labels":"","type":"counter","value":1}`) {
		t.Errorf("watchdog expiry not counted exactly once:\n%s", snap)
	}
	// Determinism: the expiry fires at the same trial every run.
	res2, snap2 := run()
	a, b := mergedJSON(t, res), mergedJSON(t, res2)
	if a != b || snap != snap2 {
		t.Fatalf("deadline failure not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestTrialBudgetGenerous proves an ample budget does not perturb the
// result: the watchdog observes trials, it never influences them.
func TestTrialBudgetGenerous(t *testing.T) {
	camp := MonteCarlo(2, 7)
	plain := runWith(t, camp, 2, t.TempDir(), false)

	reg := obs.NewRegistry()
	res, err := Run(camp, Options{Workers: 2, TrialBudget: 1 << 40, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := mergedJSON(t, res); got != plain.merged {
		t.Fatalf("trial budget perturbed results:\n%s\nvs\n%s", got, plain.merged)
	}
}

// crashPoints is the kill matrix: every dangerous window of the
// checkpoint store protocol.
var crashPoints = []string{"fleet/pre-entry", "fleet/post-entry", "fleet/post-manifest"}

// TestCrashHelperProcess is not a test: re-executed as a subprocess by
// TestKillMatrixResume with the crash point armed, it runs the
// campaign until guard.CrashPoint kills it.
func TestCrashHelperProcess(t *testing.T) {
	//lint:ignore detrand subprocess re-exec handshake: the env var selects helper mode, it never feeds a simulation result
	dir := os.Getenv("FLEET_CRASH_DIR")
	if dir == "" {
		t.Skip("helper mode only (set FLEET_CRASH_DIR)")
	}
	camp := MonteCarlo(3, 21)
	if _, err := Run(camp, Options{Workers: 1, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
}

// TestKillMatrixResume is the in-repo kill matrix: SIGKILL-equivalent
// death at each crash point, then -resume, then byte-diff against an
// uninterrupted run.
func TestKillMatrixResume(t *testing.T) {
	camp := MonteCarlo(3, 21)
	ref, err := Run(camp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refJSON := mergedJSON(t, ref)

	for _, point := range crashPoints {
		t.Run(strings.ReplaceAll(point, "/", "_"), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$")
			//lint:ignore detrand subprocess re-exec handshake: the child inherits the test environment plus the crash-point arming
			cmd.Env = append(os.Environ(),
				"FLEET_CRASH_DIR="+dir,
				guard.CrashPointEnv+"="+point,
			)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			err := cmd.Run()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 137 {
				t.Fatalf("helper at %s: err = %v (want exit 137), output:\n%s", point, err, out.String())
			}

			// The kill must never leave a torn file behind.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Errorf("torn temp file survived the kill: %s", e.Name())
				}
				raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if len(raw) == 0 {
					t.Errorf("empty file survived the kill: %s", e.Name())
				}
			}

			res, err := Run(camp, Options{Workers: 2, CacheDir: dir, Resume: true})
			if err != nil {
				t.Fatalf("resume after kill at %s: %v", point, err)
			}
			if got := mergedJSON(t, res); got != refJSON {
				t.Fatalf("resume after kill at %s diverged:\n%s\nvs\n%s", point, got, refJSON)
			}
		})
	}
}
