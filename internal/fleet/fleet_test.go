package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/silicon"
	"repro/internal/tuning"
)

func TestCampaignValidate(t *testing.T) {
	ok := &Campaign{Name: "ok", Jobs: []Job{
		{ID: "a", Kind: KindTune, SiliconSeed: 1},
		{ID: "b", Kind: KindCharacterize},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	cases := []struct {
		name string
		c    *Campaign
		want string
	}{
		{"empty", &Campaign{Name: "e"}, "empty campaign"},
		{"no-id", &Campaign{Jobs: []Job{{Kind: KindTune}}}, "empty ID"},
		{"bad-kind", &Campaign{Jobs: []Job{{ID: "a", Kind: "mystery"}}}, "unknown kind"},
		{"dup", &Campaign{Jobs: []Job{{ID: "a", Kind: KindTune}, {ID: "a", Kind: KindTune}}}, "duplicate"},
		{"mc-no-seed", &Campaign{Jobs: []Job{{ID: "a", Kind: KindMonteCarlo}}}, "non-zero silicon seed"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestJobHashDiscriminates(t *testing.T) {
	base := Job{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3}
	if base.Hash() != base.Hash() {
		t.Fatal("hash not stable")
	}
	variants := []Job{
		{ID: "b", Kind: KindTune, SiliconSeed: 3, Seed: 3},
		{ID: "a", Kind: KindCharacterize, SiliconSeed: 3, Seed: 3},
		{ID: "a", Kind: KindTune, SiliconSeed: 4, Seed: 3},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 4},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3, Rollback: 1},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3, FaultProfile: "broken-core"},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3, FaultSeed: 9},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3, OpsProfile: "ops-storm"},
		{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3, OpsSeed: 9},
	}
	seen := map[string]bool{base.Hash(): true}
	for _, v := range variants {
		h := v.Hash()
		if seen[h] {
			t.Errorf("hash collision for %+v", v)
		}
		seen[h] = true
	}
}

// TestJobHashOpsFieldCompat: the ops scenario fields ride the PR 7
// precedent — omitted from the canonical serialization at their zero
// values, so every pre-ops job spec keeps its hash (and its cache
// entries) across the upgrade.
func TestJobHashOpsFieldCompat(t *testing.T) {
	j := Job{ID: "a", Kind: KindTune, SiliconSeed: 3, Seed: 3}
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("ops_profile")) || bytes.Contains(raw, []byte("ops_seed")) {
		t.Fatalf("zero-valued ops fields leak into the canonical serialization: %s", raw)
	}
	armed := j
	armed.OpsProfile = "ops-storm"
	armed.OpsSeed = 1
	if armed.Hash() == j.Hash() {
		t.Fatal("arming the ops scenario did not change the job hash")
	}
}

// TestMonteCarloMatchesDirect pins the fleet's montecarlo job to the
// direct computation the sequential ext-montecarlo study performs.
func TestMonteCarloMatchesDirect(t *testing.T) {
	const seed = 5
	res, err := Run(MonteCarlo(1, seed), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Results[0].MonteCarlo()
	if err != nil {
		t.Fatal(err)
	}

	profile, err := silicon.Generate(seed, silicon.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := chip.New(profile, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tuning.Deploy(m, tuning.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1<<30, 0
	for _, c := range profile.AllCores() {
		l := c.DeterministicLimit(0)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	var fMax float64
	for _, cfg := range dep.Configs {
		if f := float64(cfg.IdleFreq); f > fMax {
			fMax = f
		}
	}
	if got.IdleLimitLo != lo || got.IdleLimitHi != hi {
		t.Errorf("idle limits: got %d-%d, want %d-%d", got.IdleLimitLo, got.IdleLimitHi, lo, hi)
	}
	//lint:ignore floatcmp the fleet job must reproduce the direct computation bit-for-bit, so exact equality is the contract under test
	if got.SpeedDiffMHz != dep.SpeedDifferentialMHz() || got.MaxIdleFreqMHz != fMax {
		t.Errorf("freqs: got (%v, %v), want (%v, %v)",
			got.SpeedDiffMHz, got.MaxIdleFreqMHz, dep.SpeedDifferentialMHz(), fMax)
	}
}

func TestRunMixedKindsOnReference(t *testing.T) {
	camp := &Campaign{Name: "mixed", Jobs: []Job{
		{ID: "charact-ref", Kind: KindCharacterize, Trials: 1},
		{ID: "tune-ref", Kind: KindTune},
	}}
	res, err := Run(camp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := res.Results[0].Characterize()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Rows) != 16 {
		t.Errorf("characterize rows: got %d, want 16", len(cr.Rows))
	}
	tr, err := res.Results[1].Tune()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Configs) != 16 {
		t.Errorf("tune configs: got %d, want 16", len(tr.Configs))
	}
	if tr.SpeedDiffMHz <= 0 {
		t.Errorf("tune speed differential: got %v, want > 0", tr.SpeedDiffMHz)
	}
}

// TestFailedJobRecordedNotCached checks that a job failure lands in its
// Result, doesn't abort the campaign, and is not checkpointed, so a
// re-run retries it.
func TestFailedJobRecordedNotCached(t *testing.T) {
	dir := t.TempDir()
	camp := &Campaign{Name: "partial", Jobs: []Job{
		{ID: "bad", Kind: KindTune, FaultProfile: "no-such-preset"},
		{ID: "good", Kind: KindMonteCarlo, SiliconSeed: 2, Seed: 2},
	}}
	res, err := Run(camp, Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("Failed() = %v, want [bad]", got)
	}
	if res.Results[0].Err == "" || res.Results[0].Payload != nil {
		t.Errorf("failed result not recorded: %+v", res.Results[0])
	}
	if _, err := os.Stat(filepath.Join(dir, camp.Jobs[0].Hash()+".json")); !os.IsNotExist(err) {
		t.Error("failed job was cached")
	}
	man := readManifest(t, dir, camp)
	if len(man.Completed) != 1 || man.Completed[0] != "good" {
		t.Errorf("manifest completed = %v, want [good]", man.Completed)
	}
}

// TestCacheHitSecondRun checks the content-addressed cache: a second
// run serves every job from disk and merges to identical bytes.
func TestCacheHitSecondRun(t *testing.T) {
	dir := t.TempDir()
	camp := MonteCarlo(3, 1)
	first, err := Run(camp, Options{Workers: 3, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n := first.CachedCount(); n != 0 {
		t.Fatalf("first run cached count = %d, want 0", n)
	}
	second, err := Run(camp, Options{Workers: 3, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n := second.CachedCount(); n != 3 {
		t.Fatalf("second run cached count = %d, want 3", n)
	}
	if a, b := mergedJSON(t, first), mergedJSON(t, second); a != b {
		t.Errorf("cached re-run drifted:\n%s\nvs\n%s", a, b)
	}
}

// TestCorruptCacheEntryIsMiss checks the envelope validation: torn or
// foreign entries re-run instead of poisoning the merge.
func TestCorruptCacheEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	camp := MonteCarlo(1, 7)
	first, err := Run(camp, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, camp.Jobs[0].Hash()+".json")
	if err := os.WriteFile(path, []byte(`{"version":"fleet/v1","job_hash":"tampered"`), 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := Run(camp, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.CachedCount() != 0 {
		t.Fatal("corrupt entry served as a hit")
	}
	if a, b := mergedJSON(t, first), mergedJSON(t, second); a != b {
		t.Errorf("re-run after corruption drifted")
	}
}

func TestResumeRequiresCacheDir(t *testing.T) {
	_, err := Run(MonteCarlo(1, 1), Options{Resume: true})
	if err == nil || !strings.Contains(err.Error(), "cache directory") {
		t.Fatalf("got %v, want cache-directory error", err)
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	camp := MonteCarlo(1, 3)
	hash := camp.Hash()
	path := filepath.Join(dir, "campaign-"+hash[:12]+".json")
	man, err := json.Marshal(manifest{Version: specVersion, Name: "other", CampaignHash: "not-this-campaign"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, man, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(camp, Options{CacheDir: dir, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("got %v, want different-campaign error", err)
	}
}

// readManifest loads the campaign's checkpoint from dir.
func readManifest(t *testing.T, dir string, c *Campaign) manifest {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "campaign-"+c.Hash()[:12]+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// mergedJSON renders a campaign result's canonical serialization.
func mergedJSON(t *testing.T, r *CampaignResult) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestClockRecordsWallNSOutOfBand checks that an injected clock times
// every job into Result.WallNS while the merged serialization stays
// clock-free: timing is provenance, not content.
func TestClockRecordsWallNSOutOfBand(t *testing.T) {
	camp := &Campaign{Name: "timed", Jobs: []Job{
		{ID: "a", Kind: KindCharacterize, Trials: 1},
		{ID: "b", Kind: KindTune},
	}}
	var tick int64
	clock := func() int64 { tick += 5; return tick }
	res, err := Run(camp, Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.WallNS <= 0 {
			t.Errorf("job %s: WallNS = %d, want > 0", r.JobID, r.WallNS)
		}
	}

	var timed, untimed bytes.Buffer
	if err := res.WriteJSON(&timed); err != nil {
		t.Fatal(err)
	}
	bare, err := Run(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.WriteJSON(&untimed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(timed.Bytes(), untimed.Bytes()) {
		t.Fatalf("clock leaked into merged output:\n%s\n%s", timed.String(), untimed.String())
	}
}
