package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/obs"
)

// The engine's contract: the merged results, the metrics snapshot, the
// trace file, and the cache contents are all byte-identical whether a
// campaign runs on one worker or many, with or without fault
// injection, and whether it ran straight through or resumed from a
// checkpoint. These tests are the fleet's slice of the repository's
// determinism CI gate.

// runExports captures every deterministic export of one campaign run.
type runExports struct {
	merged  string
	metrics string
	trace   string
	cache   map[string]string // file name → contents
}

func runWith(t *testing.T, c *Campaign, workers int, dir string, resume bool) runExports {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	res, err := Run(c, Options{Workers: workers, CacheDir: dir, Resume: resume, Obs: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := tr.WriteJSON(&trace); err != nil {
		t.Fatal(err)
	}
	return runExports{
		merged:  mergedJSON(t, res),
		metrics: string(reg.SnapshotJSON()),
		trace:   trace.String(),
		cache:   snapshotDir(t, dir),
	}
}

// snapshotDir reads every file in dir into a map.
func snapshotDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	if dir == "" {
		return out
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(raw)
	}
	return out
}

func diffExports(t *testing.T, what string, a, b runExports) {
	t.Helper()
	if a.merged != b.merged {
		t.Errorf("%s: merged results differ:\n%s\nvs\n%s", what, a.merged, b.merged)
	}
	if a.metrics != b.metrics {
		t.Errorf("%s: metrics snapshots differ:\n%s\nvs\n%s", what, a.metrics, b.metrics)
	}
	if a.trace != b.trace {
		t.Errorf("%s: traces differ:\n%s\nvs\n%s", what, a.trace, b.trace)
	}
	if len(a.cache) != len(b.cache) {
		t.Fatalf("%s: cache entry counts differ: %d vs %d", what, len(a.cache), len(b.cache))
	}
	names := make([]string, 0, len(a.cache))
	for name := range a.cache {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv, ok := b.cache[name]
		if !ok {
			t.Errorf("%s: cache entry %s missing from second run", what, name)
			continue
		}
		if a.cache[name] != bv {
			t.Errorf("%s: cache entry %s differs", what, name)
		}
	}
}

// TestWorkerCountInvariance runs the same campaign at workers=1 and
// workers=8 and demands byte-identical exports across the board.
func TestWorkerCountInvariance(t *testing.T) {
	camp := MonteCarlo(6, 1)
	one := runWith(t, camp, 1, t.TempDir(), false)
	eight := runWith(t, camp, 8, t.TempDir(), false)
	diffExports(t, "montecarlo w1 vs w8", one, eight)
}

// TestWorkerCountInvarianceFaulted repeats the invariance check with a
// fault profile armed: injected faults draw from per-job rng splits,
// so parallelism must not reorder them either.
func TestWorkerCountInvarianceFaulted(t *testing.T) {
	camp := TuneSweep(4, 1, 0, "test-floor,broken=1", 7)
	one := runWith(t, camp, 1, t.TempDir(), false)
	eight := runWith(t, camp, 8, t.TempDir(), false)
	diffExports(t, "faulted tune w1 vs w8", one, eight)

	// The profile must actually bite: at least one job should report a
	// quarantined core, or the fault matrix is a no-op.
	res, err := Run(camp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, r := range res.Results {
		tr, err := r.Tune()
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range tr.Configs {
			if cfg.Quarantined {
				quarantined++
			}
		}
	}
	if quarantined == 0 {
		t.Error("fault profile armed but no core was quarantined in any job")
	}
}

// TestResumeMatchesUninterrupted simulates a campaign killed partway:
// a prefix of the jobs completes (and checkpoints), the process "dies",
// and the campaign restarts with Resume on the same cache directory.
// The resumed final output must be byte-identical to a straight-through
// run, and the checkpoint must end up listing every job.
func TestResumeMatchesUninterrupted(t *testing.T) {
	full := MonteCarlo(5, 11)

	// The uninterrupted reference run.
	ref := runWith(t, full, 8, t.TempDir(), false)

	// The killed run: only the first two jobs ever executed. A prefix
	// campaign shares those jobs' content hashes, so its cache entries
	// are exactly what the interrupted full campaign would have left.
	dir := t.TempDir()
	prefix := &Campaign{Name: full.Name, Jobs: full.Jobs[:2]}
	if _, err := Run(prefix, Options{Workers: 2, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}

	// The restart. It must serve the completed prefix from cache, run
	// the rest, and merge to the reference bytes.
	reg := obs.NewRegistry()
	res, err := Run(full, Options{Workers: 8, CacheDir: dir, Resume: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CachedCount(); got != 2 {
		t.Errorf("resumed run cached count = %d, want 2", got)
	}
	if got := mergedJSON(t, res); got != ref.merged {
		t.Errorf("resumed merge differs from uninterrupted run:\n%s\nvs\n%s", got, ref.merged)
	}
	man := readManifest(t, dir, full)
	want := make([]string, 0, len(full.Jobs))
	for _, j := range full.Jobs {
		want = append(want, j.ID)
	}
	sort.Strings(want)
	if len(man.Completed) != len(want) {
		t.Fatalf("manifest completed = %v, want %v", man.Completed, want)
	}
	for i := range want {
		if man.Completed[i] != want[i] {
			t.Fatalf("manifest completed = %v, want %v", man.Completed, want)
		}
	}
}

// TestCacheContentsStableAcrossRuns pins the cache files themselves:
// two fresh runs into different directories produce identical entries,
// so cache state can ride in the byte-diff CI gate too.
func TestCacheContentsStableAcrossRuns(t *testing.T) {
	camp := CharacterizeSweep(2, 21, 1, "", 0)
	a := runWith(t, camp, 2, t.TempDir(), false)
	b := runWith(t, camp, 1, t.TempDir(), false)
	diffExports(t, "charact sweep cache", a, b)
}
