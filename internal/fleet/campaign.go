package fleet

import (
	"fmt"

	"repro/internal/rng"
)

// Campaign builders for the common sweep shapes. Every per-job seed is
// fixed at build time — the silicon seeds by position, the fault seeds
// by a labelled rng split on the job ID — so the specs are fully
// determined before any worker runs and identical builder inputs
// always produce identical campaigns (and therefore identical hashes,
// cache entries, and merged results).

// MonteCarlo builds the ext-montecarlo population campaign: n servers
// manufactured from silicon seeds start..start+n-1, each deployed with
// the trial seed equal to its silicon seed (the pairing the suite's
// sequential study used, so the fleet port reproduces it exactly).
func MonteCarlo(n int, start uint64) *Campaign {
	c := &Campaign{Name: fmt.Sprintf("montecarlo-n%d-s%d", n, start)}
	for i := 0; i < n; i++ {
		seed := start + uint64(i)
		c.Jobs = append(c.Jobs, Job{
			ID:          fmt.Sprintf("mc-%04d", seed),
			Kind:        KindMonteCarlo,
			SiliconSeed: seed,
			Seed:        seed,
		})
	}
	return c
}

// TuneSweep builds a deployment campaign over n generated servers,
// optionally under a fault profile. Each job's fault stream is an
// independent rng split of faultSeed by job ID, so one flaky server
// never perturbs another's fault sequence.
func TuneSweep(n int, start uint64, rollback int, faultProfile string, faultSeed uint64) *Campaign {
	name := fmt.Sprintf("tune-n%d-s%d", n, start)
	if faultProfile != "" {
		name += "-faulted"
	}
	c := &Campaign{Name: name}
	for i := 0; i < n; i++ {
		seed := start + uint64(i)
		j := Job{
			ID:          fmt.Sprintf("tune-%04d", seed),
			Kind:        KindTune,
			SiliconSeed: seed,
			Seed:        seed,
			Rollback:    rollback,
		}
		j.FaultProfile, j.FaultSeed = splitFaultSeed(j.ID, faultProfile, faultSeed)
		c.Jobs = append(c.Jobs, j)
	}
	return c
}

// CharacterizeSweep builds a characterization campaign over n
// generated servers with the given trial count (0 = the stage
// default), optionally under a fault profile.
func CharacterizeSweep(n int, start uint64, trials int, faultProfile string, faultSeed uint64) *Campaign {
	name := fmt.Sprintf("charact-n%d-s%d", n, start)
	if faultProfile != "" {
		name += "-faulted"
	}
	c := &Campaign{Name: name}
	for i := 0; i < n; i++ {
		seed := start + uint64(i)
		j := Job{
			ID:          fmt.Sprintf("charact-%04d", seed),
			Kind:        KindCharacterize,
			SiliconSeed: seed,
			Seed:        seed,
			Trials:      trials,
		}
		j.FaultProfile, j.FaultSeed = splitFaultSeed(j.ID, faultProfile, faultSeed)
		c.Jobs = append(c.Jobs, j)
	}
	return c
}

// LifetimeSweep builds a lifetime campaign over n servers: silicon
// seeds start..start+n-1, each simulated for the given horizon. A
// start of 0 puts the paper-calibrated reference server first (silicon
// seed 0 selects it), which is what the safety CI gate runs. The trial
// seed equals the silicon seed except for the reference server, which
// takes the lifetime stage's default seed.
func LifetimeSweep(n int, start uint64, years int, sentinelOff bool) *Campaign {
	name := fmt.Sprintf("lifetime-n%d-s%d-y%d", n, start, years)
	if sentinelOff {
		name += "-nosentinel"
	}
	c := &Campaign{Name: name}
	for i := 0; i < n; i++ {
		seed := start + uint64(i)
		c.Jobs = append(c.Jobs, Job{
			ID:          fmt.Sprintf("lifetime-%04d", seed),
			Kind:        KindLifetime,
			SiliconSeed: seed,
			Seed:        seed,
			Years:       years,
			SentinelOff: sentinelOff,
		})
	}
	return c
}

// splitFaultSeed derives a job's independent fault seed from the
// campaign-level base seed via a labelled rng split.
func splitFaultSeed(jobID, faultProfile string, faultSeed uint64) (string, uint64) {
	if faultProfile == "" {
		return "", 0
	}
	if faultSeed == 0 {
		faultSeed = 1
	}
	seed := rng.New(faultSeed).Split("fleet/" + jobID).Uint64()
	if seed == 0 {
		seed = 1 // 0 means "default" in the job spec; keep the split explicit
	}
	return faultProfile, seed
}
