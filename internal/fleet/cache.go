package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/guard"
)

// The on-disk cache has two parts:
//
//   - Content-addressed results: <dir>/<jobhash>.json holds one
//     completed job's payload inside an envelope that repeats the hash
//     and spec identity, so a corrupted or foreign entry is detected
//     and treated as a miss (the job simply re-runs).
//   - A checkpoint manifest: <dir>/campaign-<hash12>.json records the
//     campaign identity and the sorted completed-job set, rewritten
//     atomically (temp file + rename) after every completion, so a
//     killed campaign restarts from wherever it got to.
//
// Entries are keyed by the job's content hash, not its campaign, so
// overlapping campaigns sharing a cache directory reuse each other's
// completed work.

// cacheEntry is the envelope around one stored payload.
type cacheEntry struct {
	Version string          `json:"version"`
	JobHash string          `json:"job_hash"`
	JobID   string          `json:"job_id"`
	Kind    Kind            `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// manifest is the campaign checkpoint.
type manifest struct {
	Version      string `json:"version"`
	Name         string `json:"name"`
	CampaignHash string `json:"campaign_hash"`
	// Completed is the sorted set of completed job IDs.
	Completed []string `json:"completed"`
}

// diskCache serializes access to one cache directory for one campaign.
type diskCache struct {
	dir          string
	mu           sync.Mutex
	manifestPath string
	man          manifest
}

// openCache prepares dir for the campaign: creates it, and loads or
// resets the campaign's checkpoint manifest.
func openCache(dir string, c *Campaign, resume bool) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: cache dir: %w", err)
	}
	hash := c.Hash()
	dc := &diskCache{
		dir:          dir,
		manifestPath: filepath.Join(dir, "campaign-"+hash[:12]+".json"),
		man:          manifest{Version: specVersion, Name: c.Name, CampaignHash: hash},
	}
	raw, err := os.ReadFile(dc.manifestPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh start — resuming from nothing is still a valid resume.
	case err != nil:
		return nil, fmt.Errorf("fleet: read checkpoint: %w", err)
	case resume:
		var prev manifest
		if err := json.Unmarshal(raw, &prev); err != nil {
			return nil, fmt.Errorf("fleet: corrupt checkpoint %s: %w", dc.manifestPath, err)
		}
		if prev.CampaignHash != hash {
			return nil, fmt.Errorf("fleet: checkpoint %s belongs to a different campaign", dc.manifestPath)
		}
		sort.Strings(prev.Completed)
		dc.man = prev
	default:
		// Not resuming: start a fresh progress record. The
		// content-addressed entries stay valid and still serve hits.
	}
	return dc, nil
}

// lookup returns the cached payload for a job, if a valid entry
// exists. Any mismatch — unreadable file, foreign envelope, version
// drift — is a miss, never an error: the job just re-runs.
func (dc *diskCache) lookup(j Job) (json.RawMessage, bool) {
	raw, err := os.ReadFile(dc.entryPath(j))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, false
	}
	if e.Version != specVersion || e.JobHash != j.Hash() || e.JobID != j.ID || e.Kind != j.Kind {
		return nil, false
	}
	if len(e.Payload) == 0 {
		return nil, false
	}
	return e.Payload, true
}

// store persists one completed job's payload and checkpoints the
// campaign manifest. Called concurrently by workers.
func (dc *diskCache) store(j Job, payload json.RawMessage) error {
	entry, err := json.Marshal(cacheEntry{
		Version: specVersion,
		JobHash: j.Hash(),
		JobID:   j.ID,
		Kind:    j.Kind,
		Payload: payload,
	})
	if err != nil {
		return err
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	// The three crash points bracket the dangerous windows of the
	// checkpoint protocol; the kill-matrix CI job dies at each one and
	// proves a -resume run still merges byte-identical output. The
	// middle window (entry durable, manifest stale) is the interesting
	// one: resume must treat the manifest as authoritative-but-lagging
	// and let the content cache serve the orphaned entry.
	guard.CrashPoint("fleet/pre-entry")
	if err := writeAtomic(dc.entryPath(j), append(entry, '\n')); err != nil {
		return fmt.Errorf("fleet: cache store %s: %w", j.ID, err)
	}
	guard.CrashPoint("fleet/post-entry")
	dc.man.Completed = insertSorted(dc.man.Completed, j.ID)
	man, err := json.Marshal(dc.man)
	if err != nil {
		return err
	}
	if err := writeAtomic(dc.manifestPath, append(man, '\n')); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	guard.CrashPoint("fleet/post-manifest")
	return nil
}

// markCompleted checkpoints a job that was served from the cache, so
// the manifest reflects full campaign progress even when no new entry
// was written.
func (dc *diskCache) markCompleted(j Job) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	dc.man.Completed = insertSorted(dc.man.Completed, j.ID)
	man, err := json.Marshal(dc.man)
	if err != nil {
		return err
	}
	if err := writeAtomic(dc.manifestPath, append(man, '\n')); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

func (dc *diskCache) entryPath(j Job) string {
	return filepath.Join(dc.dir, j.Hash()+".json")
}

// writeAtomic writes data via a temp file, fsync, rename, and a
// parent-directory fsync. The rename alone makes a kill mid-write
// atomic (no torn file), but not durable: after a power-loss-style
// kill the directory entry can survive while the data blocks were
// never flushed, surfacing an empty or truncated manifest. Syncing the
// file before the rename and the directory after it closes both holes.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		// Best effort: don't leave the temp file behind on failure.
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename is durable across a
// kill. Platforms that cannot sync a directory handle (the error shows
// up as EINVAL/EBADF on some filesystems) degrade to the plain rename
// guarantee rather than failing the store.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// insertSorted adds id to the sorted set, keeping order and uniqueness.
func insertSorted(set []string, id string) []string {
	i := sort.SearchStrings(set, id)
	if i < len(set) && set[i] == id {
		return set
	}
	set = append(set, "")
	copy(set[i+1:], set[i:])
	set[i] = id
	return set
}
