// Package fleet is the deterministic parallel experiment engine: it
// fans a campaign of independent jobs — characterize, tune, or
// Monte-Carlo deployment runs over generated or reference servers —
// across a bounded worker pool and merges the results in canonical job
// order, so the merged output is byte-identical whether the campaign
// ran on 1 worker or 16 and regardless of goroutine scheduling.
//
// Real post-silicon tuning is a statistical campaign over many dies,
// and power-management studies evaluate controllers against fleets of
// emulated machines; this package gives the reproduction that shape
// without giving up the repository's bit-reproducibility invariants:
//
//   - Every job is a self-contained, seeded spec (Job). Workers share
//     no simulation state; each job builds its own machine, RNG
//     streams, and optional fault injector from the spec alone, so
//     execution order cannot leak into results.
//   - Results are merged by job index, never by completion order, and
//     serialized with fixed field order (WriteJSON), so the merged
//     artifact is byte-stable across worker counts.
//   - Results are content-addressed: a job's spec hash names its cache
//     entry on disk, so re-running a campaign skips completed jobs and
//     a killed campaign resumes from its checkpoint manifest with
//     byte-identical final output.
//   - Observability rides the obs plane: dispatch/completion/cache/
//     failure counters, a live worker-occupancy gauge (zero by the
//     time a snapshot is exported, so snapshots stay byte-identical
//     across worker counts), and per-job spans emitted in canonical
//     order on the logical time axis after the pool drains.
//
// The package is in atmlint's detrand scope: no wall clock, no ambient
// randomness — the only entropy is the seeds in the job specs.
package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
)

// Kind selects what a job runs.
type Kind string

// The supported job kinds.
const (
	// KindCharacterize runs the Sec. III-B characterization
	// methodology and reports the Table I limits.
	KindCharacterize Kind = "characterize"
	// KindTune runs the Sec. VII-A stress-test deployment and reports
	// the per-core deployed configuration.
	KindTune Kind = "tune"
	// KindMonteCarlo is the ext-montecarlo draw: manufacture a server,
	// deploy it, and report the variation the paper measures on its
	// two chips (idle-limit spread, speed differential, fastest core).
	KindMonteCarlo Kind = "montecarlo"
	// KindLifetime simulates years of field operation on a fine-tuned
	// server: NBTI/HCI drift erodes the tuned margins while the closed-
	// loop sentinel (unless disabled) keeps the configuration safe.
	KindLifetime Kind = "lifetime"
	// KindDCProvision is the datacenter intake pass: build the node's
	// server, stress-test deploy it, calibrate the per-core Eq. 1
	// frequency predictors and measure the per-chip power envelope —
	// everything internal/dc's budget hierarchy and global scheduler
	// need to operate the node.
	KindDCProvision Kind = "dcprovision"
)

// validKind reports whether k is a supported job kind.
func validKind(k Kind) bool {
	switch k {
	case KindCharacterize, KindTune, KindMonteCarlo, KindLifetime, KindDCProvision:
		return true
	}
	return false
}

// Job is one self-contained experiment spec. The zero values select
// the stage defaults, so a Job serializes small and hashes stably.
type Job struct {
	// ID names the job inside its campaign; it must be unique and
	// non-empty. Merged results are keyed and ordered by the campaign's
	// job order, and the ID is how consumers find a row.
	ID string `json:"id"`
	// Kind selects the experiment.
	Kind Kind `json:"kind"`
	// SiliconSeed manufactures the server from the Monte-Carlo process
	// model; 0 runs on the paper-calibrated reference profile
	// (montecarlo and dcprovision jobs require a non-zero seed).
	SiliconSeed uint64 `json:"silicon_seed,omitempty"`
	// Chips overrides the generated server's processor count (0 = the
	// generator default of 2; dc nodes are single-chip servers).
	// Requires a non-zero SiliconSeed.
	Chips int `json:"chips,omitempty"`
	// Seed drives the stage's stochastic trials (charact/tuning
	// Options.Seed; 0 = stage default).
	Seed uint64 `json:"seed,omitempty"`
	// Trials overrides the characterization trial count (0 = default).
	Trials int `json:"trials,omitempty"`
	// Rollback is the tune stage's extra safety margin.
	Rollback int `json:"rollback,omitempty"`
	// FaultProfile, when non-empty, arms deterministic fault injection
	// for the job (a fault.ParseProfile spec).
	FaultProfile string `json:"fault_profile,omitempty"`
	// FaultSeed seeds the fault streams (0 = 1, the injector default).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Years is the lifetime job's simulated horizon (0 = the stage
	// default of three years).
	Years int `json:"years,omitempty"`
	// SentinelOff disables the lifetime job's margin sentinel — the
	// control arm that demonstrates drift without supervision.
	SentinelOff bool `json:"sentinel_off,omitempty"`
	// OpsProfile/OpsSeed stamp a dcprovision job with the operational
	// fault scenario its campaign will run after intake (a canonical
	// dc.ParseOpsProfile spec; opaque to the engine). The stage itself
	// ignores them — they exist so the campaign hash, and therefore the
	// checkpoint manifest, names the whole scenario. Both omitempty:
	// zero values hash identically to pre-ops specs.
	OpsProfile string `json:"ops_profile,omitempty"`
	OpsSeed    uint64 `json:"ops_seed,omitempty"`
}

// specVersion versions the job hash: bump it when a change to the job
// model or a stage invalidates previously cached results.
const specVersion = "fleet/v1"

// Hash returns the job's content address: a hex SHA-256 over the
// versioned canonical spec encoding. Two jobs hash equal exactly when
// the engine would compute the same result for them.
func (j Job) Hash() string {
	spec, err := json.Marshal(j)
	if err != nil {
		// A Job is plain data; Marshal cannot fail on it. Keep the
		// signature clean anyway.
		spec = []byte(j.ID)
	}
	h := sha256.New()
	io.WriteString(h, specVersion)
	h.Write([]byte{0})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))
}

// Validate checks a single job spec.
func (j Job) Validate() error {
	if j.ID == "" {
		return errors.New("fleet: job with empty ID")
	}
	if !validKind(j.Kind) {
		return fmt.Errorf("fleet: job %s: unknown kind %q", j.ID, j.Kind)
	}
	if (j.Kind == KindMonteCarlo || j.Kind == KindDCProvision) && j.SiliconSeed == 0 {
		return fmt.Errorf("fleet: job %s: %s requires a non-zero silicon seed", j.ID, j.Kind)
	}
	if j.Chips != 0 && j.SiliconSeed == 0 {
		return fmt.Errorf("fleet: job %s: chip-count override requires a non-zero silicon seed", j.ID)
	}
	return nil
}

// Campaign is an ordered set of independent jobs. The job order is the
// canonical merge order of the results.
type Campaign struct {
	Name string `json:"name"`
	Jobs []Job  `json:"jobs"`
}

// Validate checks the campaign: every job valid, every ID unique.
func (c *Campaign) Validate() error {
	if c == nil || len(c.Jobs) == 0 {
		return errors.New("fleet: empty campaign")
	}
	seen := make(map[string]bool, len(c.Jobs))
	for _, j := range c.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("fleet: duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// Hash content-addresses the whole campaign (name, job order, and
// every job spec) — the identity the checkpoint manifest records.
func (c *Campaign) Hash() string {
	h := sha256.New()
	io.WriteString(h, specVersion)
	h.Write([]byte{0})
	io.WriteString(h, c.Name)
	for _, j := range c.Jobs {
		h.Write([]byte{0})
		io.WriteString(h, j.Hash())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Result is one job's outcome. Exactly one of Payload and Err is set.
type Result struct {
	JobID string `json:"job_id"`
	Kind  Kind   `json:"kind"`
	// Err is the job's deterministic failure message ("" on success).
	// Failed jobs are not cached, so a re-run retries them.
	Err string `json:"err,omitempty"`
	// Payload is the kind-specific result document (see jobs.go for
	// the schemas and the typed decoders).
	Payload json.RawMessage `json:"payload,omitempty"`
	// Cached marks a result served from the content-addressed cache.
	// It is provenance, not content: it is excluded from the merged
	// serialization so resumed and uninterrupted campaigns produce
	// byte-identical final output.
	Cached bool `json:"-"`
	// WallNS is the job's execution wall time in the clock Options.Clock
	// supplies (0 when no clock is armed or the result came from the
	// cache). Like Cached it is provenance, not content — excluded from
	// the merged serialization, which must stay byte-identical across
	// worker counts and machine speeds. atmctl's fleet timing report and
	// the bench harness read it out-of-band.
	WallNS int64 `json:"-"`
}

// CampaignResult is the merged outcome in canonical job order.
type CampaignResult struct {
	Name         string   `json:"name"`
	CampaignHash string   `json:"campaign_hash"`
	Results      []Result `json:"results"`
}

// Failed returns the IDs of failed jobs, in job order.
func (r *CampaignResult) Failed() []string {
	var out []string
	for _, res := range r.Results {
		if res.Err != "" {
			out = append(out, res.JobID)
		}
	}
	return out
}

// CachedCount returns how many results were served from the cache.
func (r *CampaignResult) CachedCount() int {
	n := 0
	for _, res := range r.Results {
		if res.Cached {
			n++
		}
	}
	return n
}

// WriteJSON writes the merged result as one JSON document with a
// trailing newline — byte-identical across worker counts and across
// cached, resumed, and fresh runs of the same campaign.
func (r *CampaignResult) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Options configures a campaign run.
type Options struct {
	// Workers bounds the worker pool. <=0 runs single-worker; the pool
	// never exceeds the job count. The merged output is byte-identical
	// for every value.
	Workers int
	// CacheDir, when non-empty, enables the content-addressed result
	// cache and the checkpoint manifest in that directory (created if
	// missing). Completed jobs found there are served without
	// re-execution.
	CacheDir string
	// Resume requires CacheDir and tolerates a pre-existing checkpoint
	// manifest for this campaign, continuing from its completed set.
	// Without Resume a fresh manifest replaces any previous one (the
	// per-job content cache still serves hits either way).
	Resume bool
	// PanicRetries bounds how many times a panicking job is retried
	// before it is quarantined as a poison job (recorded failed in the
	// merged results; the pool keeps running). 0 selects the default of
	// one retry; negative disables retries.
	PanicRetries int
	// TrialBudget, when positive, arms a per-job watchdog on the trial
	// axis: a job that consumes more than this many retry-wrapped
	// trials is deadlined with a deterministic failure. 0 is unlimited.
	TrialBudget int64
	// Obs, when non-nil, collects fleet counters (dispatched,
	// completed, cached, failed), the worker-occupancy gauge, and the
	// configured-pool histogram. Nil disables collection.
	Obs *obs.Registry
	// Trace, when non-nil, records one span per job on the logical
	// time axis, emitted in canonical job order after the pool drains
	// so the trace is byte-identical across worker counts.
	Trace *obs.Tracer
	// Clock, when non-nil, timestamps each job's execution and records
	// the delta in Result.WallNS. The package itself is in detrand
	// scope and never reads the wall clock — callers outside that scope
	// (atmctl, the bench harness) inject one. Timing is provenance: it
	// never reaches the merged serialization.
	Clock func() int64
}

// Run executes the campaign and merges the results in job order. A
// failed job is recorded in its Result and does not abort the
// campaign; Run itself returns an error only for spec or
// infrastructure (cache I/O) failures.
func Run(c *Campaign, o Options) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Workers > len(c.Jobs) {
		o.Workers = len(c.Jobs)
	}
	if o.Resume && o.CacheDir == "" {
		return nil, errors.New("fleet: Resume requires a cache directory")
	}
	var cache *diskCache
	if o.CacheDir != "" {
		var err error
		cache, err = openCache(o.CacheDir, c, o.Resume)
		if err != nil {
			return nil, err
		}
	}

	var (
		dispatched = o.Obs.Counter("fleet_jobs_dispatched_total")
		completed  = o.Obs.Counter("fleet_jobs_completed_total")
		cachedHits = o.Obs.Counter("fleet_jobs_cached_total")
		failed     = o.Obs.Counter("fleet_jobs_failed_total")
		occupancy  = o.Obs.Gauge("fleet_worker_occupancy")
		guards     = jobGuards{
			panics:   o.Obs.Counter("fleet_job_panics_total"),
			poisoned: o.Obs.Counter("fleet_jobs_poisoned_total"),
			deadline: o.Obs.Counter("fleet_watchdog_expired_total"),
		}
	)

	results := make([]Result, len(c.Jobs))
	var pending []int
	for i, j := range c.Jobs {
		if cache != nil {
			if payload, ok := cache.lookup(j); ok {
				results[i] = Result{JobID: j.ID, Kind: j.Kind, Payload: payload, Cached: true}
				cachedHits.Inc()
				if err := cache.markCompleted(j); err != nil {
					return nil, err
				}
				continue
			}
		}
		pending = append(pending, i)
	}

	// The pool: workers drain a channel of job indices. Each job is
	// hermetic, so the only shared state is the results slice (disjoint
	// indices), the cache (internally locked), and the obs handles
	// (atomic).
	var (
		wg       sync.WaitGroup
		idx      = make(chan int)
		infraMu  sync.Mutex
		infraErr error
	)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job := c.Jobs[i]
				dispatched.Inc()
				occupancy.Add(1)
				var began int64
				if o.Clock != nil {
					began = o.Clock()
				}
				payload, err := runGuarded(job, o, guards)
				var wall int64
				if o.Clock != nil {
					wall = o.Clock() - began
				}
				occupancy.Add(-1)
				if err != nil {
					failed.Inc()
					results[i] = Result{JobID: job.ID, Kind: job.Kind, Err: err.Error(), WallNS: wall}
					continue
				}
				completed.Inc()
				results[i] = Result{JobID: job.ID, Kind: job.Kind, Payload: payload, WallNS: wall}
				if cache != nil {
					if err := cache.store(job, payload); err != nil {
						infraMu.Lock()
						infraErr = errors.Join(infraErr, err)
						infraMu.Unlock()
					}
				}
			}
		}()
	}
	for _, i := range pending {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if infraErr != nil {
		return nil, infraErr
	}

	// Per-job spans in canonical order on the logical axis: job i is
	// the unit interval starting at 2i, so the trace file is identical
	// for every worker count and interleaving.
	for i, res := range results {
		status := "ok"
		switch {
		case res.Err != "":
			status = "failed"
		case res.Cached:
			status = "cached"
		}
		o.Trace.Complete("fleet", res.JobID, "fleet/"+string(res.Kind),
			int64(2*i), 1, "status", status)
	}

	return &CampaignResult{Name: c.Name, CampaignHash: c.Hash(), Results: results}, nil
}
