// Package telemetry records time-series traces of the platform — the
// software counterpart of the on-chip telemetry the paper's off-chip
// controller consumes (the 32 ms sliding-window frequency average,
// Sec. II) and of the bench instrumentation the characterization relies
// on. It wraps the transient stepper's output in a bounded recorder with
// sliding-window statistics and CSV export.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/chip"
	"repro/internal/units"
)

// Sample is one recorded instant.
type Sample struct {
	TimeNs float64
	Supply units.Volt
	Freqs  []units.MHz
}

// Recorder is a bounded ring of samples. The zero value is unusable;
// construct with NewRecorder.
type Recorder struct {
	cap     int
	labels  []string
	samples []Sample
	start   int // ring start index
	total   int // lifetime samples seen
}

// NewRecorder returns a recorder holding at most capacity samples for
// the given core labels.
func NewRecorder(capacity int, labels []string) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: non-positive capacity %d", capacity)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("telemetry: no core labels")
	}
	return &Recorder{cap: capacity, labels: append([]string(nil), labels...)}, nil
}

// Labels returns the recorded core labels.
func (r *Recorder) Labels() []string { return append([]string(nil), r.labels...) }

// labelIndex returns the position of label in the recorder's core set,
// or -1 when unknown. First match wins (labels should be unique; when
// they are not, every consumer agrees on the same column).
func (r *Recorder) labelIndex(label string) int {
	for i, l := range r.labels {
		if l == label {
			return i
		}
	}
	return -1
}

// Add records one sample, evicting the oldest when full.
func (r *Recorder) Add(s Sample) error {
	if len(s.Freqs) != len(r.labels) {
		return fmt.Errorf("telemetry: sample has %d frequencies, recorder tracks %d cores",
			len(s.Freqs), len(r.labels))
	}
	s.Freqs = append([]units.MHz(nil), s.Freqs...)
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, s)
	} else {
		r.samples[r.start] = s
		r.start = (r.start + 1) % r.cap
	}
	r.total++
	return nil
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Total returns the lifetime number of samples seen.
func (r *Recorder) Total() int { return r.total }

// At returns the i-th retained sample in chronological order.
func (r *Recorder) At(i int) Sample {
	if i < 0 || i >= len(r.samples) {
		panic("telemetry: sample index out of range")
	}
	return r.samples[(r.start+i)%len(r.samples)]
}

// WindowMean returns the mean frequency of one core over the most recent
// window of n samples — the sliding-window average the off-chip
// controller reads.
func (r *Recorder) WindowMean(label string, n int) (units.MHz, error) {
	idx := r.labelIndex(label)
	if idx < 0 {
		return 0, fmt.Errorf("telemetry: unknown core %q", label)
	}
	if n <= 0 || len(r.samples) == 0 {
		return 0, fmt.Errorf("telemetry: empty window")
	}
	if n > len(r.samples) {
		n = len(r.samples)
	}
	sum := 0.0
	for i := len(r.samples) - n; i < len(r.samples); i++ {
		sum += float64(r.At(i).Freqs[idx])
	}
	return units.MHz(sum / float64(n)), nil
}

// MinSupply returns the deepest supply excursion retained.
func (r *Recorder) MinSupply() (units.Volt, error) {
	if len(r.samples) == 0 {
		return 0, fmt.Errorf("telemetry: no samples")
	}
	lo := r.At(0).Supply
	for i := 1; i < len(r.samples); i++ {
		if s := r.At(i).Supply; s < lo {
			lo = s
		}
	}
	return lo, nil
}

// csvField quotes a header field per RFC 4180 when it contains a comma,
// quote, or newline, so arbitrary core labels cannot corrupt the column
// structure of the export.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteCSV dumps the retained samples: time_ns, supply_mV, one frequency
// column per core. Core labels are RFC 4180-quoted on export, so labels
// containing commas or quotes round-trip through any CSV reader.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "time_ns,supply_mv"); err != nil {
		return err
	}
	for _, l := range r.labels {
		if _, err := fmt.Fprintf(w, ",%s", csvField(l+"_mhz")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < len(r.samples); i++ {
		s := r.At(i)
		if _, err := fmt.Fprintf(w, "%.1f,%.1f", s.TimeNs, s.Supply.Millivolts()); err != nil {
			return err
		}
		for _, f := range s.Freqs {
			if _, err := fmt.Fprintf(w, ",%.0f", float64(f)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RecordTransient runs the machine's transient stepper on one chip and
// captures the trace into a new recorder.
func RecordTransient(m *chip.Machine, chipLabel string, res chip.TransientResult) (*Recorder, error) {
	var labels []string
	for _, ch := range m.Chips {
		if ch.Profile.Label == chipLabel {
			for _, c := range ch.Cores {
				labels = append(labels, c.Profile.Label)
			}
		}
	}
	if labels == nil {
		return nil, fmt.Errorf("telemetry: no chip %q", chipLabel)
	}
	rec, err := NewRecorder(len(res.Samples), labels)
	if err != nil {
		return nil, err
	}
	for _, s := range res.Samples {
		if err := rec.Add(Sample{TimeNs: s.TimeNs, Supply: s.Supply, Freqs: s.Freqs}); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// FreqQuantiles returns per-core frequency quantiles over the retained
// trace, for summarizing long transients compactly.
func (r *Recorder) FreqQuantiles(label string, qs []float64) ([]units.MHz, error) {
	idx := r.labelIndex(label)
	if idx < 0 {
		return nil, fmt.Errorf("telemetry: unknown core %q", label)
	}
	if len(r.samples) == 0 {
		return nil, fmt.Errorf("telemetry: no samples")
	}
	vals := make([]float64, len(r.samples))
	for i := range r.samples {
		vals[i] = float64(r.At(i).Freqs[idx])
	}
	sort.Float64s(vals)
	out := make([]units.MHz, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		pos := q * float64(len(vals)-1)
		lo := int(pos)
		hi := lo
		if lo+1 < len(vals) {
			hi = lo + 1
		}
		frac := pos - float64(lo)
		out[i] = units.MHz(vals[lo]*(1-frac) + vals[hi]*frac)
	}
	return out, nil
}
