package telemetry

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/units"
)

func mkSample(t float64, v units.Volt, fs ...units.MHz) Sample {
	return Sample{TimeNs: t, Supply: v, Freqs: fs}
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0, []string{"a"}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewRecorder(4, nil); err == nil {
		t.Error("no labels accepted")
	}
}

func TestAddAndAt(t *testing.T) {
	r, err := NewRecorder(4, []string{"c0", "c1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Add(mkSample(float64(i), 1.25, units.MHz(4000+i), units.MHz(4500+i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	if got := r.At(1).TimeNs; got != 1 {
		t.Errorf("At(1).TimeNs = %g", got)
	}
	if err := r.Add(mkSample(9, 1.25, 1)); err == nil {
		t.Error("width-mismatched sample accepted")
	}
}

func TestRingEviction(t *testing.T) {
	r, err := NewRecorder(3, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := r.Add(mkSample(float64(i), 1.25, units.MHz(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 || r.Total() != 7 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	// Chronological order: samples 4, 5, 6.
	for i := 0; i < 3; i++ {
		if got := r.At(i).TimeNs; got != float64(4+i) {
			t.Errorf("At(%d).TimeNs = %g, want %d", i, got, 4+i)
		}
	}
}

func TestAddDoesNotAliasCallerSlice(t *testing.T) {
	r, _ := NewRecorder(2, []string{"c"})
	fs := []units.MHz{4000}
	if err := r.Add(Sample{TimeNs: 0, Supply: 1.25, Freqs: fs}); err != nil {
		t.Fatal(err)
	}
	fs[0] = 9999
	if got := r.At(0).Freqs[0]; got != 4000 {
		t.Errorf("recorder aliased caller slice: %v", got)
	}
}

func TestWindowMean(t *testing.T) {
	r, _ := NewRecorder(10, []string{"c0", "c1"})
	for i := 0; i < 6; i++ {
		_ = r.Add(mkSample(float64(i), 1.25, units.MHz(4000+100*i), 4600))
	}
	got, err := r.WindowMean("c0", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := units.MHz((4300 + 4400 + 4500) / 3)
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("window mean %v, want %v", got, want)
	}
	// Window larger than history clamps.
	if _, err := r.WindowMean("c0", 100); err != nil {
		t.Error(err)
	}
	if _, err := r.WindowMean("nope", 3); err == nil {
		t.Error("unknown core accepted")
	}
	if _, err := r.WindowMean("c0", 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMinSupply(t *testing.T) {
	r, _ := NewRecorder(10, []string{"c"})
	if _, err := r.MinSupply(); err == nil {
		t.Error("empty MinSupply accepted")
	}
	for _, v := range []units.Volt{1.25, 1.21, 1.24} {
		_ = r.Add(mkSample(0, v, 4600))
	}
	lo, err := r.MinSupply()
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1.21 {
		t.Errorf("MinSupply = %v", lo)
	}
}

func TestWriteCSV(t *testing.T) {
	r, _ := NewRecorder(4, []string{"P0C0", "P0C1"})
	_ = r.Add(mkSample(0, 1.25, 4600, 4610))
	_ = r.Add(mkSample(1, 1.249, 4601, 4612))
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"time_ns,supply_mv,P0C0_mhz,P0C1_mhz", "0.0,1250.0,4600,4610", "1.0,1249.0,4601,4612"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVQuotesSpecialLabels(t *testing.T) {
	labels := []string{`EP"0,0`, "plain", "multi\nline"}
	r, _ := NewRecorder(4, labels)
	_ = r.Add(mkSample(0, 1.25, 4600, 4610, 4620))
	_ = r.Add(mkSample(1, 1.249, 4601, 4611, 4621))
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("export is not parseable CSV: %v\n%s", err, sb.String())
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3 (header + 2 samples)", len(rows))
	}
	header := rows[0]
	if len(header) != 2+len(labels) {
		t.Fatalf("header has %d columns, want %d: %q", len(header), 2+len(labels), header)
	}
	for i, l := range labels {
		if got, want := header[2+i], l+"_mhz"; got != want {
			t.Errorf("header column %d = %q, want %q", 2+i, got, want)
		}
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("data row has %d columns, header has %d: %q", len(row), len(header), row)
		}
	}
	if got := rows[1][2]; got != "4600" {
		t.Errorf("first core frequency column = %q, want 4600", got)
	}
}

func TestLabelIndexFirstMatch(t *testing.T) {
	// Duplicate labels: every consumer must agree on the first column.
	r, _ := NewRecorder(4, []string{"dup", "dup"})
	_ = r.Add(mkSample(0, 1.25, 4000, 5000))
	if got := r.labelIndex("dup"); got != 0 {
		t.Fatalf("labelIndex = %d, want first match 0", got)
	}
	wm, err := r.WindowMean("dup", 1)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 4000 {
		t.Errorf("WindowMean picked column %v, want first-match 4000", wm)
	}
	if got := r.labelIndex("absent"); got != -1 {
		t.Errorf("labelIndex(absent) = %d, want -1", got)
	}
}

func TestFreqQuantiles(t *testing.T) {
	r, _ := NewRecorder(10, []string{"c"})
	for i := 1; i <= 5; i++ {
		_ = r.Add(mkSample(float64(i), 1.25, units.MHz(1000*i)))
	}
	qs, err := r.FreqQuantiles("c", []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1000 || qs[1] != 3000 || qs[2] != 5000 {
		t.Errorf("quantiles = %v", qs)
	}
	if _, err := r.FreqQuantiles("nope", []float64{0.5}); err == nil {
		t.Error("unknown core accepted")
	}
}

func TestRecordTransient(t *testing.T) {
	m := chip.NewReference()
	res, err := m.Transient("P0", 500, 1.0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordTransient(m, "P0", res)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 500 {
		t.Fatalf("recorded %d samples", rec.Len())
	}
	if len(rec.Labels()) != 8 {
		t.Fatalf("recorded %d cores", len(rec.Labels()))
	}
	// The 32-sample window mean approximates the transient's own mean.
	wm, err := rec.WindowMean("P0C0", 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(wm-res.MeanFreq[0])) > 1 {
		t.Errorf("window mean %v vs transient mean %v", wm, res.MeanFreq[0])
	}
	if _, err := RecordTransient(m, "P9", res); err == nil {
		t.Error("bogus chip accepted")
	}
}
