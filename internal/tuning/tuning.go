// Package tuning implements the paper's deployment procedure
// (Sec. VII-A): a test-time stress-test that finds each core's limit ATM
// configuration while guaranteeing correctness, without the overhead of
// the full per-application characterization.
//
// The full methodology of internal/charact is an *analysis* tool; its
// per-application profiling is too slow for manufacturing flow. Instead,
// test time runs a worst-case battery — a power virus (maximum DC drop
// and temperature), an ISA verification sweep (path coverage), and the
// voltage virus (synchronized di/dt surges on top of daxpy power) — and
// searches each core's most aggressive configuration that sustains all
// of them. Because a stress test by definition exceeds any real
// workload's requirements, the resulting configuration is safe for
// production. Vendors may roll the limit back one or two further steps
// for an additional safety guarantee; the inter-core variation trend
// survives rollback (Fig. 11).
package tuning

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/chip"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tunes the deployment procedure.
type Options struct {
	// Rollback is the optional extra safety margin: steps subtracted
	// from the stress-test limit before deployment. 0 deploys the
	// limit itself (the configuration the paper's management scheme
	// uses).
	Rollback int
	// RunsPerConfig is how many clean executions of each stressmark a
	// configuration needs to count as safe. Default 4.
	RunsPerConfig int
	// Passes repeats the whole battery to build confidence. Default 3.
	Passes int
	// Seed drives the stochastic trials. Default 1.
	Seed uint64
	// Battery overrides the stressmark set (default TestTimeSuite).
	Battery []workload.Stressmark
	// TrialRetries is the budget of extra attempts for a stressmark run
	// that fails with a transient harness error (chip.ErrTransient)
	// before the core is quarantined at static margin. Default 2;
	// negative disables retrying.
	TrialRetries int
	// Obs, when non-nil, collects counters and gauges for the run
	// (stressmark runs, transient retries, quarantines, per-core limits).
	// Nil — the default — disables collection and changes no output.
	Obs *obs.Registry
	// Trace, when non-nil, records per-core stress-test spans on the
	// logical clock for Perfetto inspection.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.RunsPerConfig == 0 {
		o.RunsPerConfig = 4
	}
	if o.Passes == 0 {
		o.Passes = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Battery == nil {
		o.Battery = workload.TestTimeSuite()
	}
	if o.TrialRetries == 0 {
		o.TrialRetries = 2
	}
	if o.TrialRetries < 0 {
		o.TrialRetries = 0
	}
	return o
}

// CoreConfig is one core's deployed fine-tuned configuration.
type CoreConfig struct {
	Core string
	// StressLimit is the most aggressive reduction that sustained the
	// full battery on every pass.
	StressLimit int
	// Reduction is the deployed setting: StressLimit − Rollback,
	// floored at 0.
	Reduction int
	// IdleFreq is the settled frequency at the deployed setting with
	// the rest of the chip idle (the bars of Fig. 11).
	IdleFreq units.MHz
	// LoadedFreq is the settled frequency at the deployed setting with
	// every core of the chip running daxpy — the maximum-DC-drop corner
	// (the worst case of Fig. 1's fourth bar).
	LoadedFreq units.MHz
	// Quarantined marks a core whose stress battery kept failing with
	// transient harness errors: it is deployed at reduction 0 in static
	// mode — the paper's default margin, safe by construction — instead
	// of aborting the whole deployment.
	Quarantined bool
	// QuarantineReason is the persistent error that earned quarantine.
	QuarantineReason string
}

// Deployment is a full server's fine-tuned configuration.
type Deployment struct {
	Configs []CoreConfig
	Opts    Options
	// ISAClean and ISADetects record the final ISA verification pass:
	// the suite's golden signatures reproduced, and injected upsets were
	// caught by the signature compare.
	ISAClean   bool
	ISADetects bool
}

// Config returns the entry for a core label.
func (d *Deployment) Config(label string) (CoreConfig, bool) {
	for _, c := range d.Configs {
		if c.Core == label {
			return c, true
		}
	}
	return CoreConfig{}, false
}

// Quarantined returns the labels of cores deployed at the static
// fallback, in sorted order. Empty on a healthy machine.
func (d *Deployment) Quarantined() []string {
	var out []string
	for _, c := range d.Configs {
		if c.Quarantined {
			out = append(out, c.Core)
		}
	}
	sort.Strings(out)
	return out
}

// FastestCores returns core labels ordered by descending idle frequency
// at the deployed configuration — the order the manager assigns critical
// applications in.
func (d *Deployment) FastestCores() []string {
	cs := append([]CoreConfig(nil), d.Configs...)
	sort.Slice(cs, func(i, j int) bool {
		//lint:ignore floatcmp comparator tie-break: exact inequality only routes to the secondary key, any consistent order is deterministic
		if cs[i].IdleFreq != cs[j].IdleFreq {
			return cs[i].IdleFreq > cs[j].IdleFreq
		}
		return cs[i].Core < cs[j].Core
	})
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Core
	}
	return out
}

// SpeedDifferentialMHz returns the fastest-to-slowest deployed idle
// frequency gap — the >200 MHz differential of Sec. VII-A.
func (d *Deployment) SpeedDifferentialMHz() float64 {
	if len(d.Configs) == 0 {
		return 0
	}
	lo, hi := d.Configs[0].IdleFreq, d.Configs[0].IdleFreq
	for _, c := range d.Configs {
		if c.IdleFreq < lo {
			lo = c.IdleFreq
		}
		if c.IdleFreq > hi {
			hi = c.IdleFreq
		}
	}
	return float64(hi - lo)
}

// StressTestCore finds one core's stress-test limit: the largest
// reduction at which every stressmark of the battery passes
// RunsPerConfig consecutive runs on every pass.
func StressTestCore(m *chip.Machine, label string, o Options, src *rng.Source) (int, error) {
	core, err := m.Core(label)
	if err != nil {
		return 0, err
	}
	maxR := core.Profile.MaxReduction()
	limit := 0
	for r := 1; r <= maxR; r++ {
		if err := m.ProgramCPM(label, r); err != nil {
			return 0, err
		}
		safe := true
	passes:
		for pass := 0; pass < o.Passes; pass++ {
			psrc := src.SplitIndex("pass", pass)
			for mi, mark := range o.Battery {
				msrc := psrc.SplitIndex(mark.Profile.Name, mi)
				for run := 0; run < o.RunsPerConfig; run++ {
					tr, err := m.RunStressmarkRetry(label, mark, msrc.SplitIndex("run", run), o.TrialRetries)
					if err != nil {
						return 0, err
					}
					if !tr.OK() {
						safe = false
						break passes
					}
				}
			}
		}
		if !safe {
			break
		}
		limit = r
	}
	if err := m.ProgramCPM(label, 0); err != nil {
		return 0, err
	}
	return limit, nil
}

// ISAVerify executes the deployment's final path-coverage pass with the
// executable ISA substrate: a battery of generated self-checking test
// programs (full opcode coverage, golden signatures) run per core at the
// deployed configuration. A clean pass means the correctness machinery
// itself — generation, execution, signature compare — is sound; whether
// a core's *timing* survives is the stress battery's job, and a core
// whose trial draws an SDC manifestation must be caught by exactly this
// signature compare.
func ISAVerify(m *chip.Machine, programs, length int, seed uint64, src *rng.Source) (clean bool, caught bool, err error) {
	suite := isa.NewSuite(seed, programs, length)
	if idx := suite.Verify(); idx >= 0 {
		return false, false, fmt.Errorf("tuning: ISA suite self-check failed at program %d", idx)
	}
	// Demonstrate detection: inject one register upset per program at a
	// live point and require the signatures to catch every one.
	caught = true
	for i := range suite.Programs {
		at := suite.ExecutedCount(i) / 2
		reg := uint8(1 + src.Intn(isa.NumRegs-1))
		if !suite.ChecksumCatches(i, at, reg, uint(src.Intn(64))) {
			caught = false
		}
	}
	return true, caught, nil
}

// Deploy runs the test-time procedure over every core and programs the
// machine with the resulting configuration: each core at its stress-test
// limit minus the requested rollback, in ATM mode.
//
// The stress-test battery is run with the *whole chip* participating
// (the voltage virus throttles all cores synchronously), which the
// trial model folds into the stressmark's stress score.
func Deploy(m *chip.Machine, opts Options) (*Deployment, error) {
	o := opts.withDefaults()
	if o.Rollback < 0 {
		return nil, fmt.Errorf("tuning: negative rollback %d", o.Rollback)
	}
	root := rng.New(o.Seed)
	dep := &Deployment{Opts: o}
	runs := o.Obs.Counter("atm_tune_runs_total")
	rets := o.Obs.Counter("atm_tune_transient_retries_total")
	quars := o.Obs.Counter("atm_tune_quarantines_total")
	if o.Obs != nil {
		// Tap every retry-wrapped stressmark run for run/retry counts.
		// The tap observes outcomes only — trial streams are unchanged.
		m.SetTrialObserver(func(label, workload string, retries int, res chip.TrialResult, err error) {
			runs.Inc()
			rets.Add(int64(retries))
		})
		defer m.SetTrialObserver(nil)
	}

	// Limits first (searches touch one core at a time). A core whose
	// battery keeps failing with transient harness errors through the
	// retry budget is quarantined — deployed at the default static
	// margin below — rather than aborting the whole test-time flow.
	m.ResetAll()
	limits := map[string]int{}
	quarantine := map[string]string{}
	for i, core := range m.AllCores() {
		label := core.Profile.Label
		sp := o.Trace.Begin("tune", "stress-test", label)
		lim, err := StressTestCore(m, label, o, root.SplitIndex(label, i))
		if err != nil {
			if !errors.Is(err, chip.ErrTransient) {
				return nil, err
			}
			quarantine[label] = err.Error()
			quars.Inc()
			o.Trace.Instant("tune", "quarantine", label)
			if perr := m.ProgramCPM(label, 0); perr != nil {
				return nil, perr
			}
			lim = 0
		}
		if sp != nil {
			sp.Arg("limit", strconv.Itoa(lim))
		}
		sp.End()
		limits[label] = lim
		o.Obs.Gauge("atm_tune_stress_limit", "core", label).Set(float64(lim))
	}

	// Program the deployment. Quarantined cores stay at reduction 0 in
	// static mode: the stock margin the part shipped with, safe without
	// any trust in this core's harness.
	for _, core := range m.AllCores() {
		label := core.Profile.Label
		if _, bad := quarantine[label]; bad {
			if err := m.ProgramCPM(label, 0); err != nil {
				return nil, err
			}
			core.SetMode(chip.ModeStatic)
			continue
		}
		red := limits[label] - o.Rollback
		if red < 0 {
			red = 0
		}
		if err := m.ProgramCPM(label, red); err != nil {
			return nil, err
		}
		core.SetMode(chip.ModeATM)
	}

	// Final path-coverage pass with the executable ISA substrate.
	clean, caught, err := ISAVerify(m, 4, 400, o.Seed, root.Split("isa-verify"))
	if err != nil {
		return nil, err
	}
	dep.ISAClean = clean
	dep.ISADetects = caught

	// Frequencies at the two corners: all-idle and all-daxpy.
	idleState, err := m.Solve()
	if err != nil {
		return nil, err
	}
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.Daxpy)
	}
	loadedState, err := m.Solve()
	if err != nil {
		return nil, err
	}
	for _, core := range m.AllCores() {
		core.SetWorkload(workload.Idle)
	}

	for _, core := range m.AllCores() {
		label := core.Profile.Label
		ics, err := idleState.CoreState(label)
		if err != nil {
			return nil, err
		}
		lcs, err := loadedState.CoreState(label)
		if err != nil {
			return nil, err
		}
		red := limits[label] - o.Rollback
		if red < 0 {
			red = 0
		}
		cc := CoreConfig{
			Core:        label,
			StressLimit: limits[label],
			Reduction:   red,
			IdleFreq:    ics.Freq,
			LoadedFreq:  lcs.Freq,
		}
		if reason, bad := quarantine[label]; bad {
			cc.Reduction = 0
			cc.Quarantined = true
			cc.QuarantineReason = reason
		}
		o.Obs.Gauge("atm_tune_deployed_reduction", "core", label).Set(float64(cc.Reduction))
		dep.Configs = append(dep.Configs, cc)
	}
	return dep, nil
}
