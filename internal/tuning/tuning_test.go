package tuning

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/silicon"
)

var refDeployment *Deployment

func deployed(t *testing.T) (*chip.Machine, *Deployment) {
	t.Helper()
	m := chip.NewReference()
	if refDeployment != nil {
		// Re-program a fresh machine with the cached deployment so
		// tests can mutate machines independently.
		for _, cfg := range refDeployment.Configs {
			if err := m.ProgramCPM(cfg.Core, cfg.Reduction); err != nil {
				t.Fatal(err)
			}
		}
		return m, refDeployment
	}
	dep, err := Deploy(m, Options{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	refDeployment = dep
	return m, dep
}

// TestStressLimitsMatchThreadWorst verifies the Sec. VII-A measurement:
// the thread-worst CPM configurations sustain correct execution under
// all stressmarks — i.e. the stress-test battery discovers exactly the
// thread-worst limits of Table I.
func TestStressLimitsMatchThreadWorst(t *testing.T) {
	_, dep := deployed(t)
	for _, cfg := range dep.Configs {
		_, _, _, worst, ok := silicon.ReferenceTableI(cfg.Core)
		if !ok {
			t.Fatalf("no table row for %s", cfg.Core)
		}
		if cfg.StressLimit != worst {
			t.Errorf("%s stress-test limit %d, thread-worst %d", cfg.Core, cfg.StressLimit, worst)
		}
	}
}

// TestSpeedDifferential verifies the >200 MHz inter-core differential
// the paper exposes (Sec. I, Sec. VII-A).
func TestSpeedDifferential(t *testing.T) {
	_, dep := deployed(t)
	if d := dep.SpeedDifferentialMHz(); d < 200 {
		t.Errorf("deployed speed differential %.0f MHz, want >200", d)
	}
}

// TestDeployedFrequenciesBeatBaselines: every deployed core beats both
// the static margin and the default ATM at idle.
func TestDeployedFrequenciesBeatBaselines(t *testing.T) {
	_, dep := deployed(t)
	for _, cfg := range dep.Configs {
		if cfg.IdleFreq <= 4600 {
			t.Errorf("%s deployed idle %v does not beat default ATM", cfg.Core, cfg.IdleFreq)
		}
		if cfg.LoadedFreq <= 4200 {
			t.Errorf("%s deployed loaded %v does not beat static margin", cfg.Core, cfg.LoadedFreq)
		}
		if cfg.LoadedFreq >= cfg.IdleFreq {
			t.Errorf("%s loaded %v not below idle %v (DC drop must cost frequency)",
				cfg.Core, cfg.LoadedFreq, cfg.IdleFreq)
		}
	}
}

// TestMachineProgrammedAtDeployment: Deploy leaves the machine running
// the deployed configuration.
func TestMachineProgrammedAtDeployment(t *testing.T) {
	m := chip.NewReference()
	dep, err := Deploy(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range dep.Configs {
		core, err := m.Core(cfg.Core)
		if err != nil {
			t.Fatal(err)
		}
		if core.Reduction() != cfg.Reduction {
			t.Errorf("%s machine at %d, deployment says %d", cfg.Core, core.Reduction(), cfg.Reduction)
		}
		if core.Mode() != chip.ModeATM {
			t.Errorf("%s not in ATM mode after deployment", cfg.Core)
		}
	}
}

// TestRollbackPreservesTrend verifies Fig. 11: rolling every core back
// one or two steps keeps the inter-core variation trend (the fastest
// cores stay fastest) while lowering absolute frequency.
func TestRollbackPreservesTrend(t *testing.T) {
	_, dep0 := deployed(t)

	m2 := chip.NewReference()
	dep2, err := Deploy(m2, Options{Rollback: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range dep2.Configs {
		base, _ := dep0.Config(cfg.Core)
		wantRed := base.StressLimit - 2
		if wantRed < 0 {
			wantRed = 0
		}
		if cfg.Reduction != wantRed {
			t.Errorf("%s rollback reduction %d, want %d", cfg.Core, cfg.Reduction, wantRed)
		}
		if cfg.IdleFreq > base.IdleFreq {
			t.Errorf("%s rollback raised frequency %v > %v", cfg.Core, cfg.IdleFreq, base.IdleFreq)
		}
	}
	// Trend: the two speed orderings must correlate strongly (Kendall
	// tau). A perfect match is not expected — cores like P1C7 encode
	// their whole gain in two deep steps (the Sec. IV-C non-linearity),
	// so a two-step rollback moves them far — but the bulk of the
	// ordering survives, which is what Fig. 11 shows.
	rank0 := map[string]int{}
	for i, l := range dep0.FastestCores() {
		rank0[l] = i
	}
	order2 := dep2.FastestCores()
	concordant, discordant := 0, 0
	for i := 0; i < len(order2); i++ {
		for j := i + 1; j < len(order2); j++ {
			if rank0[order2[i]] < rank0[order2[j]] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	tau := float64(concordant-discordant) / float64(concordant+discordant)
	if tau < 0.5 {
		t.Errorf("speed ordering poorly preserved after rollback: Kendall tau %.2f", tau)
	}
}

func TestDeployRejectsNegativeRollback(t *testing.T) {
	m := chip.NewReference()
	if _, err := Deploy(m, Options{Rollback: -1}); err == nil {
		t.Error("negative rollback accepted")
	}
}

func TestFastestCoresOrdering(t *testing.T) {
	_, dep := deployed(t)
	order := dep.FastestCores()
	if len(order) != 16 {
		t.Fatalf("ordering has %d cores", len(order))
	}
	prev := dep.Configs[0].IdleFreq + 10000
	for _, label := range order {
		cfg, ok := dep.Config(label)
		if !ok {
			t.Fatalf("no config for %s", label)
		}
		if cfg.IdleFreq > prev {
			t.Fatalf("ordering not descending at %s", label)
		}
		prev = cfg.IdleFreq
	}
}

func TestConfigLookup(t *testing.T) {
	_, dep := deployed(t)
	if _, ok := dep.Config("P0C0"); !ok {
		t.Error("missing P0C0 config")
	}
	if _, ok := dep.Config("bogus"); ok {
		t.Error("bogus config returned")
	}
}

// TestISAVerificationPass: Deploy runs the executable ISA battery and
// records both the clean self-check and the upset-detection check.
func TestISAVerificationPass(t *testing.T) {
	_, dep := deployed(t)
	if !dep.ISAClean {
		t.Error("ISA suite self-check failed during deployment")
	}
	if !dep.ISADetects {
		t.Error("ISA suite failed to catch injected upsets")
	}
}
