package pdn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadness(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.VNom = 0 },
		func(p *Params) { p.LoadlineOhms = 0 },
		func(p *Params) { p.ResonantHz = -1 },
		func(p *Params) { p.DampingZeta = 0 },
		func(p *Params) { p.DampingZeta = 1 },
		func(p *Params) { p.PeakImpedanceOhms = 0 },
		func(p *Params) { p.LoopResponseNs = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSteadyVoltageMonotone(t *testing.T) {
	p := DefaultParams()
	prev := units.Volt(2)
	for pw := units.Watt(0); pw <= 300; pw += 10 {
		v := p.SteadyVoltage(pw)
		if v >= prev {
			t.Fatalf("voltage not decreasing at %v", pw)
		}
		prev = v
	}
}

func TestSteadyVoltageAtZeroPower(t *testing.T) {
	p := DefaultParams()
	if got := p.SteadyVoltage(0); got != p.VNom {
		t.Errorf("V(0) = %v, want VNom %v", got, p.VNom)
	}
}

func TestDropMagnitudeAtOperatingPoint(t *testing.T) {
	// At ~128 A (160 W / 1.25 V) the DC drop should be tens of mV —
	// the ~3% of Vdd the paper cites for the DC component.
	p := DefaultParams().CalibrateVRM(1.25, 55)
	drop := p.DropAt(160) - p.DropAt(55)
	if drop < 0.025 || drop > 0.060 {
		t.Errorf("DC drop from idle to 160 W = %v, want 25–60 mV", drop)
	}
}

func TestCalibrateVRM(t *testing.T) {
	prop := func(rp uint8) bool {
		ref := units.Watt(20 + float64(rp%200))
		p := DefaultParams().CalibrateVRM(1.25, ref)
		v := p.SteadyVoltage(ref)
		return math.Abs(float64(v-1.25)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStepResponseShape(t *testing.T) {
	p := DefaultParams()
	if got := p.StepResponse(100, -1); got != 0 {
		t.Errorf("response before the step = %v", got)
	}
	if got := p.StepResponse(100, 0); got != 0 {
		t.Errorf("response at t=0 = %v, want 0", got)
	}
	// The first quarter-period must droop (negative deviation).
	quarter := 1 / (4 * p.ResonantHz)
	if got := p.StepResponse(100, quarter); got >= 0 {
		t.Errorf("first droop not negative: %v", got)
	}
	// The response decays: the envelope after 5 periods is tiny.
	late := p.StepResponse(100, 5/p.ResonantHz)
	if math.Abs(float64(late)) > 0.1*float64(p.FirstDroopPeak(100)) {
		t.Errorf("response did not decay: %v", late)
	}
}

func TestFirstDroopPeakMatchesResponse(t *testing.T) {
	p := DefaultParams()
	const deltaI = 80.0
	want := float64(p.FirstDroopPeak(deltaI))
	// Sample the transient densely and find the deepest droop.
	deepest := 0.0
	for i := 0; i < 4000; i++ {
		tm := float64(i) / 4000 * 2 / p.ResonantHz
		if v := -float64(p.StepResponse(deltaI, tm)); v > deepest {
			deepest = v
		}
	}
	if math.Abs(deepest-want)/want > 0.02 {
		t.Errorf("sampled peak %g vs analytic %g", deepest, want)
	}
}

func TestFirstDroopPeakLinearInCurrent(t *testing.T) {
	p := DefaultParams()
	a := float64(p.FirstDroopPeak(50))
	b := float64(p.FirstDroopPeak(100))
	if math.Abs(b-2*a) > 1e-12 {
		t.Errorf("peak not linear in current: %g vs 2×%g", b, a)
	}
}

func TestUncoveredFraction(t *testing.T) {
	p := DefaultParams()
	if got := p.UncoveredFraction(0); got != 1 {
		t.Errorf("instant droop uncovered fraction = %g, want 1", got)
	}
	if got := p.UncoveredFraction(p.LoopResponseNs); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("droop at loop response time = %g, want 0.5", got)
	}
	if got := p.UncoveredFraction(100 * p.LoopResponseNs); got > 0.02 {
		t.Errorf("slow droop uncovered fraction = %g, want ≈0", got)
	}
	prev := 2.0
	for ns := 0.1; ns < 50; ns *= 1.5 {
		u := p.UncoveredFraction(ns)
		if u >= prev {
			t.Fatalf("uncovered fraction not decreasing at %g ns", ns)
		}
		prev = u
	}
}

func TestSyncFactor(t *testing.T) {
	if got := SyncFactor(1); got != 1 {
		t.Errorf("SyncFactor(1) = %g", got)
	}
	if got := SyncFactor(0); got != 1 {
		t.Errorf("SyncFactor(0) = %g", got)
	}
	prev := 0.0
	for n := 1; n <= 16; n++ {
		f := SyncFactor(n)
		if f <= prev {
			t.Fatalf("SyncFactor not increasing at n=%d", n)
		}
		prev = f
	}
	// 8 aligned cores: between √8 and 8 (superposition with losses).
	f8 := SyncFactor(8)
	if f8 < math.Sqrt(8) || f8 > 8 {
		t.Errorf("SyncFactor(8) = %g outside (√8, 8)", f8)
	}
}
