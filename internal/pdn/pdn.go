// Package pdn models the shared power-delivery network of one processor:
// the off-chip VRM, the loadline (DC IR drop across the delivery path),
// and the second-order transient response that produces di/dt droops.
//
// Two effects matter to ATM (Sec. I, Sec. VII-B):
//
//   - the DC voltage drop V = Vvrm − R·I is a *slow* effect the control
//     loop tracks perfectly — it converts chip power into lower supply
//     and hence lower settled frequency (the paper's Eq. 1);
//   - di/dt droops are *fast* events; the portion faster than the loop's
//     response time is uncovered and eats directly into the timing
//     margin — the failure mechanism of aggressively fine-tuned ATM.
package pdn

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Params describes one processor's power-delivery network.
type Params struct {
	// VNom is the VRM output setpoint.
	VNom units.Volt
	// LoadlineOhms is the effective DC resistance between the VRM and
	// the on-chip grid. ≈0.45 mΩ yields the paper's ≈2 MHz/W Eq. 1
	// slope at the POWER7+ operating point.
	LoadlineOhms float64
	// ResonantHz is the first-droop resonance of the package/die
	// network (tens of MHz on server parts).
	ResonantHz float64
	// DampingZeta is the damping ratio of the second-order response.
	DampingZeta float64
	// PeakImpedanceOhms converts a synchronized current step into the
	// first-droop peak magnitude.
	PeakImpedanceOhms float64
	// LoopResponseNs is the ATM control loop's round-trip response
	// time; droop content faster than this is uncovered.
	LoopResponseNs float64
}

// DefaultParams returns the network constants used for the POWER7+
// model.
func DefaultParams() Params {
	return Params{
		VNom:              1.25, // re-pointed by CalibrateVRM
		LoadlineOhms:      0.00045,
		ResonantHz:        90e6,
		DampingZeta:       0.28,
		PeakImpedanceOhms: 0.0011,
		LoopResponseNs:    1.2,
	}
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch {
	case p.VNom <= 0:
		return fmt.Errorf("pdn: non-positive VNom %v", p.VNom)
	case p.LoadlineOhms <= 0:
		return fmt.Errorf("pdn: non-positive loadline %g", p.LoadlineOhms)
	case p.ResonantHz <= 0:
		return fmt.Errorf("pdn: non-positive resonance %g", p.ResonantHz)
	case p.DampingZeta <= 0 || p.DampingZeta >= 1:
		return fmt.Errorf("pdn: damping ratio %g outside (0,1)", p.DampingZeta)
	case p.PeakImpedanceOhms <= 0:
		return fmt.Errorf("pdn: non-positive peak impedance %g", p.PeakImpedanceOhms)
	case p.LoopResponseNs <= 0:
		return fmt.Errorf("pdn: non-positive loop response %g", p.LoopResponseNs)
	}
	return nil
}

// SteadyVoltage returns the on-chip supply under total chip power P:
// V = Vnom − R·I with I ≈ P/Vnom. This is the loadline the Eq. 1
// frequency predictor linearizes.
//
//atm:hotpath
func (p Params) SteadyVoltage(power units.Watt) units.Volt {
	i := float64(power) / float64(p.VNom)
	v := float64(p.VNom) - p.LoadlineOhms*i
	if v < 0 {
		v = 0
	}
	return units.Volt(v)
}

// DropAt returns the DC IR drop at the given power.
func (p Params) DropAt(power units.Watt) units.Volt {
	return p.VNom - p.SteadyVoltage(power)
}

// CalibrateVRM returns a copy of p with VNom raised so that the on-chip
// supply equals target at the given reference power (the paper runs the
// 4.2 GHz p-state with Vdd pinned at 1.25 V on-die under light load).
func (p Params) CalibrateVRM(target units.Volt, refPower units.Watt) Params {
	// Solve Vnom − R·P/Vnom = target ⇒ Vnom = (target + √(target² + 4RP))/2.
	t := float64(target)
	rp := p.LoadlineOhms * float64(refPower)
	p.VNom = units.Volt((t + math.Sqrt(t*t+4*rp)) / 2)
	return p
}

// StepResponse returns the transient voltage deviation t seconds after a
// synchronized load-current step of deltaI amperes (second-order,
// underdamped). Negative values are droops. The deviation decays to the
// new DC point, which the loadline term handles separately; this is the
// AC part only.
//
//atm:hotpath
func (p Params) StepResponse(deltaI float64, t float64) units.Volt {
	if t < 0 {
		return 0
	}
	wn := 2 * math.Pi * p.ResonantHz
	zeta := p.DampingZeta
	wd := wn * math.Sqrt(1-zeta*zeta)
	// Peak-normalized underdamped second-order response.
	envelope := math.Exp(-zeta * wn * t)
	osc := math.Sin(wd * t)
	return units.Volt(-deltaI * p.PeakImpedanceOhms * envelope * osc / math.Sqrt(1-zeta*zeta))
}

// FirstDroopPeak returns the magnitude of the worst (first) droop for a
// synchronized current step of deltaI amperes.
//
//atm:hotpath
func (p Params) FirstDroopPeak(deltaI float64) units.Volt {
	// Peak of the normalized response occurs at wd·t = atan(√(1−ζ²)/ζ).
	zeta := p.DampingZeta
	phi := math.Atan(math.Sqrt(1-zeta*zeta) / zeta)
	peak := math.Exp(-zeta * phi / math.Sqrt(1-zeta*zeta)) // e^(−ζωn·tpeak)
	return units.Volt(deltaI * p.PeakImpedanceOhms * peak)
}

// UncoveredFraction returns the share of a droop of the given duration
// that the ATM loop cannot track: droops much faster than the loop
// response are fully uncovered, much slower ones fully covered.
//
//atm:hotpath
func (p Params) UncoveredFraction(droopNs float64) float64 {
	if droopNs <= 0 {
		return 1
	}
	// Single-pole rolloff around the loop response time.
	return 1 / (1 + droopNs/p.LoopResponseNs)
}

// SyncFactor quantifies how much worse a droop gets when n cores step
// their current simultaneously (the voltage-virus mechanism of
// Sec. VII-A): aligned steps superpose at the shared grid with
// diminishing — but never vanishing — returns.
//
//atm:hotpath
func SyncFactor(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Sqrt(float64(n)) * (1 + 0.08*math.Log(float64(n)))
}
