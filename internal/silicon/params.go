// Package silicon models the manufactured silicon of a POWER7+-class
// multicore: per-core critical-path speed, the programmable CPM
// inserted-delay hardware with its non-linear step graduation, the
// manufacturer's test-time preset calibration, and the per-core /
// per-workload timing-failure envelope.
//
// Two chip sources are provided:
//
//   - Reference() — a profile calibrated to the paper's published
//     measurements of the two POWER7+ chips (Table I limits, Fig. 4b
//     preset-delay spread, Fig. 5/7 frequency levels), so the
//     characterization methodology reproduces the paper's tables;
//   - Generate() — a forward Monte-Carlo process-variation model that
//     produces fresh plausible chips, showing the method generalizes.
//
// All delays are expressed in picoseconds *at the reference voltage*;
// voltage scaling is applied uniformly through the alpha-power-law
// linearization Scale(V) (see Params.Scale).
package silicon

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Params holds the chip-level electrical constants shared by every core.
// The zero value is not useful; use DefaultParams.
type Params struct {
	// VRef is the nominal supply of the 4.2 GHz p-state the paper runs
	// ATM overclocking at (Sec. II: "We let ATM boost each core's
	// frequency at Vdd 1.25 V").
	VRef units.Volt

	// VTh is the effective transistor threshold used by the
	// linearized alpha-power delay model: delay ∝ 1/(V − VTh).
	VTh units.Volt

	// InvPs is the delay of one inverter of the CPM's output inverter
	// chain at VRef — the quantum of one margin "unit".
	InvPs units.Picosecond

	// ThetaUnits is the DPLL's margin threshold in inverter units: the
	// loop slews frequency so the measured slack settles at this value.
	ThetaUnits int

	// MaxTaps is the number of selectable taps of the CPM inserted-delay
	// chain. Configurations are tap indices in [0, MaxTaps].
	MaxTaps int

	// FDefault is the frequency the manufacturer's preset calibration
	// targets for every core under default ATM at idle (~4.6 GHz).
	FDefault units.MHz

	// FDefaultJitterMHz is the small per-core spread around FDefault that
	// survives calibration (presets are quantized to whole taps).
	FDefaultJitterMHz float64

	// FStatic is the chip-wide static-margin frequency (the 4.2 GHz
	// p-state used as the paper's baseline).
	FStatic units.MHz

	// FMaxHW is the DPLL's hard upper slew limit.
	FMaxHW units.MHz

	// StaticNoiseGuard is the worst-case voltage variation a *static*
	// margin must provision for (di/dt + DC drop, each ~3% of Vdd,
	// Sec. I). Used only to estimate the per-core static ⟨v,f⟩
	// setpoints of Fig. 1.
	StaticNoiseGuard units.Volt

	// IdleDroopFrac is the fractional delay stress of the background-OS
	// idle environment: the uncovered fast-droop tail present even with
	// no application running.
	IdleDroopFrac float64

	// NumCPMSites is the number of CPMs per core (IFU, ISU, FXU, FPU,
	// LLC on POWER7+).
	NumCPMSites int
}

// DefaultParams returns the constants used throughout the reproduction.
// They are chosen so the emergent behaviour matches the paper's reported
// magnitudes: one inserted-delay step moves frequency by ~30–200 MHz
// (Fig. 5), the Eq. 1 slope is ≈2 MHz/W, and idle limits push fast cores
// past 5 GHz.
func DefaultParams() Params {
	return Params{
		VRef:              1.25,
		VTh:               0.35,
		InvPs:             2.5,
		ThetaUnits:        2,
		MaxTaps:           24,
		FDefault:          4600,
		FDefaultJitterMHz: 12,
		FStatic:           4200,
		FMaxHW:            5500,
		StaticNoiseGuard:  0.118, // di/dt + DC drop (~3% of Vdd each) + temp/aging test guardband
		IdleDroopFrac:     0.0055,
		NumCPMSites:       5,
	}
}

// Scale returns the delay multiplier at supply voltage v relative to
// VRef: path delays at v are (delay at VRef) × Scale(v). It is the
// linearized alpha-power law g(v) = (VRef−VTh)/(v−VTh); Scale(VRef) = 1,
// and Scale grows as the supply sags.
func (p Params) Scale(v units.Volt) float64 {
	den := float64(v - p.VTh)
	if den <= 1e-6 {
		den = 1e-6
	}
	return float64(p.VRef-p.VTh) / den
}

// ThetaPs returns the threshold slack the DPLL maintains, in ps at VRef.
func (p Params) ThetaPs() units.Picosecond {
	return units.Picosecond(float64(p.ThetaUnits)) * p.InvPs
}

// SettleFreq converts a total guarded CPM path (CPM delay + threshold
// slack, in ps at VRef) into the frequency the DPLL settles at under
// supply voltage v, clamped to the hardware ceiling.
func (p Params) SettleFreq(guard units.Picosecond, v units.Volt) units.MHz {
	if guard <= 0 {
		return p.FMaxHW
	}
	f := units.Picosecond(float64(guard) * p.Scale(v)).Frequency()
	return f.Clamp(0, p.FMaxHW)
}

// Validate reports whether the parameter set is self-consistent.
func (p Params) Validate() error {
	switch {
	case p.VRef <= p.VTh:
		return fmt.Errorf("silicon: VRef %v must exceed VTh %v", p.VRef, p.VTh)
	case p.InvPs <= 0:
		return fmt.Errorf("silicon: InvPs must be positive, got %v", p.InvPs)
	case p.ThetaUnits < 1:
		return fmt.Errorf("silicon: ThetaUnits must be ≥ 1, got %d", p.ThetaUnits)
	case p.MaxTaps < 1:
		return fmt.Errorf("silicon: MaxTaps must be ≥ 1, got %d", p.MaxTaps)
	case p.FDefault <= p.FStatic:
		return fmt.Errorf("silicon: FDefault %v must exceed FStatic %v", p.FDefault, p.FStatic)
	case p.FMaxHW <= p.FDefault:
		return fmt.Errorf("silicon: FMaxHW %v must exceed FDefault %v", p.FMaxHW, p.FDefault)
	case p.NumCPMSites < 1:
		return fmt.Errorf("silicon: NumCPMSites must be ≥ 1, got %d", p.NumCPMSites)
	case math.IsNaN(p.IdleDroopFrac) || p.IdleDroopFrac < 0:
		return fmt.Errorf("silicon: IdleDroopFrac must be ≥ 0, got %g", p.IdleDroopFrac)
	}
	return nil
}
