package silicon

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/units"
)

// referenceLimits is the paper's Table I: the measured ATM
// reconfiguration limits of the two POWER7+ processors, as steps of CPM
// inserted-delay reduction from the default setting.
//
// Order: P0C0..P0C7 then P1C0..P1C7.
var referenceLimits = []struct {
	label                       string
	idle, uBench, normal, worst int
}{
	{"P0C0", 9, 9, 8, 6},
	{"P0C1", 8, 8, 7, 6},
	{"P0C2", 4, 4, 4, 3},
	{"P0C3", 11, 10, 9, 6},
	{"P0C4", 10, 9, 8, 6},
	{"P0C5", 7, 7, 6, 5},
	{"P0C6", 8, 8, 7, 5},
	{"P0C7", 2, 2, 2, 2},
	{"P1C0", 4, 4, 3, 3},
	{"P1C1", 8, 8, 7, 3},
	{"P1C2", 5, 5, 5, 5},
	{"P1C3", 8, 5, 4, 3},
	{"P1C4", 7, 6, 5, 3},
	{"P1C5", 5, 4, 3, 2},
	{"P1C6", 10, 10, 8, 6},
	{"P1C7", 3, 2, 2, 2},
}

// referenceIdleFreqMHz is the approximate idle-limit frequency of each
// core read off Fig. 7 (blue marks) and the Fig. 1/Sec. IV anecdotes:
// P0C3 peaks around 5.2 GHz, P0C4 and P1C7 reach ≈5.1 GHz with very
// different step counts (the non-linearity example of Sec. IV-C), P1C2
// sits near 4.85 GHz, and the slowest core idles around 4.7 GHz.
// The calibration scales each core's exercised inserted-delay steps so
// the idle-limit configuration settles at this frequency.
var referenceIdleFreqMHz = map[string]float64{
	"P0C0": 5050, "P0C1": 5040, "P0C2": 4800, "P0C3": 5200,
	"P0C4": 5100, "P0C5": 4950, "P0C6": 5010, "P0C7": 4700,
	"P1C0": 4820, "P1C1": 5000, "P1C2": 4850, "P1C3": 5060,
	"P1C4": 4940, "P1C5": 4900, "P1C6": 5150, "P1C7": 5100,
}

// ReferenceSeed is the fixed seed the reference profile's incidental
// details (step-table jitter, preset slack, site skews) are drawn with.
// Changing it produces a different but equally valid realization of the
// same published measurements.
const ReferenceSeed = 0x7077_3742 // "POWER7+ '42"

// Reference returns the server profile calibrated to the paper's two
// POWER7+ chips. The calibration embeds exactly the published
// measurements — Table I's four limit rows per core and the Fig. 4b
// preset-delay spread — and derives every remaining parameter from the
// physics model, so running this repository's characterization
// methodology against the profile rediscovers the paper's tables.
func Reference() *ServerProfile {
	return ReferenceWithParams(DefaultParams())
}

// ReferenceWithParams is Reference with explicit chip constants.
func ReferenceWithParams(p Params) *ServerProfile {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("silicon: bad reference params: %v", err))
	}
	src := rng.New(ReferenceSeed)
	server := &ServerProfile{params: p}
	chips := map[string]*ChipProfile{}
	for i, row := range referenceLimits {
		core := calibrateCore(p, row.label, row.idle, row.uBench, row.normal, row.worst,
			src.SplitIndex("core", i))
		chipLabel := row.label[:2]
		ch := chips[chipLabel]
		if ch == nil {
			ch = &ChipProfile{Label: chipLabel}
			chips[chipLabel] = ch
			server.Chips = append(server.Chips, ch)
		}
		ch.Cores = append(ch.Cores, core)
	}
	if err := server.Validate(); err != nil {
		panic(fmt.Sprintf("silicon: reference profile failed validation: %v", err))
	}
	return server
}

// calibrateCore builds one core profile whose deterministic limits under
// the failure model land exactly on the supplied Table I row.
//
// The derivation chain (Sec. 4 of DESIGN.md):
//
//  1. a non-linear inserted-delay step table is drawn (1–3 inverter
//     units per step, the paper's 20–60 mV equivalence);
//  2. the preset tap count follows the manufacturer rule "enough
//     protection depth above the core's real limit", reproducing the
//     Fig. 4b spread — fast cores get deep presets;
//  3. the default-ATM guard G(0) is pinned by the ≈4.6 GHz uniform idle
//     frequency, which fixes the synthetic-path delay;
//  4. the per-trial noise σ is sized from the local step granularity so
//     limit distributions span one-to-two configurations (Fig. 7);
//  5. the idle/uBench required guards are the inverses of the target
//     limits; vulnerability and γ pin thread-normal and thread-worst.
func calibrateCore(p Params, label string, idle, uBench, normal, worst int, src *rng.Source) *CoreProfile {
	if !(idle >= uBench && uBench >= normal && normal >= worst && worst >= 0) {
		panic(fmt.Sprintf("silicon: %s limits not monotone: %d/%d/%d/%d",
			label, idle, uBench, normal, worst))
	}
	c := &CoreProfile{Label: label, params: p}

	// (1) Non-linear step table. Each tap adds between ~0.8 and ~3.2
	// inverter delays; a few taps are near-degenerate (the paper's
	// "almost negligible change in frequency" steps).
	c.StepPs = make([]units.Picosecond, p.MaxTaps+1)
	for k := 1; k <= p.MaxTaps; k++ {
		u := src.Float64()
		var unitsWide float64
		switch {
		case u < 0.18: // shallow tap
			unitsWide = 0.35 + 0.45*src.Float64()
		case u < 0.80: // typical tap
			unitsWide = 0.9 + 1.0*src.Float64()
		default: // deep tap (the 200 MHz jumps of Fig. 5)
			unitsWide = 2.0 + 1.2*src.Float64()
		}
		c.StepPs[k] = units.Picosecond(unitsWide * float64(p.InvPs))
	}

	// (2) Preset depth: protection slack above the idle limit. The
	// +5..+7 slack keeps Fig. 4b's 7–20 range and its ≈3× spread.
	c.PresetTaps = idle + 5 + src.Intn(3)
	if c.PresetTaps > p.MaxTaps {
		c.PresetTaps = p.MaxTaps
	}

	// (3) Pin the default idle frequency near FDefault and the
	// idle-limit frequency at the Fig. 7 value: rescale the steps the
	// fine-tuning range actually exercises (taps preset−idle+1 …
	// preset) so removing them moves the loop from FDefault to the
	// published idle frequency. This is where the paper's big
	// CPM-encoding differences come from — P1C7 packs ~230 MHz into
	// each of 2 steps while P0C4 spreads ~50 MHz over each of 10.
	fDef := float64(p.FDefault) + src.Norm(0, p.FDefaultJitterMHz)
	guard0 := units.MHz(fDef).CycleTime()
	if fIdle, ok := referenceIdleFreqMHz[label]; ok && idle > 0 {
		want := guard0 - units.MHz(fIdle).CycleTime()
		var have units.Picosecond
		for k := c.PresetTaps - idle + 1; k <= c.PresetTaps; k++ {
			have += c.StepPs[k]
		}
		if have > 0 && want > 0 {
			alpha := float64(want) / float64(have)
			for k := c.PresetTaps - idle + 1; k <= c.PresetTaps; k++ {
				c.StepPs[k] = units.Picosecond(float64(c.StepPs[k]) * alpha)
			}
			// Keep every exercised step above a minimum encoding: a
			// near-degenerate tap would be indistinguishable from the
			// per-trial noise and the limit search could not resolve it.
			// Donate the deficit from the largest step to preserve the
			// pinned idle-limit frequency.
			const minStepPs = 0.9
			for k := c.PresetTaps - idle + 1; k <= c.PresetTaps; k++ {
				if float64(c.StepPs[k]) >= minStepPs {
					continue
				}
				deficit := units.Picosecond(minStepPs) - c.StepPs[k]
				big := c.PresetTaps - idle + 1
				for j := big + 1; j <= c.PresetTaps; j++ {
					if c.StepPs[j] > c.StepPs[big] {
						big = j
					}
				}
				if c.StepPs[big]-deficit > units.Picosecond(minStepPs) {
					c.StepPs[big] -= deficit
					c.StepPs[k] += deficit
				}
			}
		}
	}
	c.SynthPs = guard0 - c.InsertedDelayPs(c.PresetTaps) - p.ThetaPs()
	if c.SynthPs <= 0 {
		panic(fmt.Sprintf("silicon: %s synthetic path went non-positive (%v)", label, c.SynthPs))
	}

	// (4) Per-trial noise. Two constraints size σ:
	//
	//   - *resolvability*: every step the searches probe must exceed
	//     ~3.2σ of guard, or a limit one step out would not fail
	//     reliably and the methodology would read the limit high —
	//     σ ≤ minStep/(3.2·G);
	//   - *distribution shape*: when the probe step just beyond the
	//     idle limit is ≈3.5σ, trials pass there ~40% of the time and
	//     the Fig. 7 distribution covers two configurations; smaller σ
	//     makes it a single bar. Both shapes appear in Fig. 7, so 60%
	//     of cores draw the two-configuration σ when granularity allows.
	gIdle := c.SynthPs + c.InsertedDelayPs(c.PresetTaps-idle) + p.ThetaPs()
	probeGap := c.StepPs[1] // idle == preset ⇒ deepest tap is the probe
	if idle+1 <= c.PresetTaps {
		probeGap = c.StepPs[c.PresetTaps-idle]
	}
	minStep := probeGap
	for k := c.PresetTaps - idle; k <= c.PresetTaps && k >= 1; k++ {
		if c.StepPs[k] < minStep {
			minStep = c.StepPs[k]
		}
	}
	sigmaMax := float64(minStep) / (3.2 * float64(gIdle))
	sigma := 0.6 * sigmaMax
	if src.Float64() < 0.6 {
		if twoCfg := float64(probeGap) / (3.5 * float64(gIdle)); twoCfg < sigmaMax {
			sigma = twoCfg
		} else {
			sigma = sigmaMax
		}
	}
	c.SigmaFrac = sigma
	if c.SigmaFrac < 5e-4 {
		c.SigmaFrac = 5e-4
	}

	// (5) Invert the target limits into required guards.
	c.IdleGuardPs = c.requiredGuardForLimit(idle)
	c.UBenchGuardPs = c.requiredGuardForLimit(uBench)
	c.Vulnerability = uBench - worst
	c.Gamma = gammaFor(c.Vulnerability, uBench-normal)

	// True silicon speed: the idle requirement is the true path
	// stressed by the idle environment's uncovered droop tail.
	c.PathPs = units.Picosecond(float64(c.IdleGuardPs) / (1 + p.IdleDroopFrac))

	// CPM site skews: the worst site reports; the others sit within a
	// few ps below it (spatial variation across IFU/ISU/FXU/FPU/LLC).
	c.SiteSkewPs = make([]units.Picosecond, p.NumCPMSites)
	worstSite := src.Intn(p.NumCPMSites)
	for i := range c.SiteSkewPs {
		if i == worstSite {
			continue
		}
		c.SiteSkewPs[i] = units.Picosecond(-1 - 5*src.Float64())
	}
	return c
}

// gammaFor solves the rollback-curve exponent so that
// round(v · 0.5^γ) equals the thread-normal rollback rbNormal
// (the "medium application" anchor, stress score 0.5).
func gammaFor(v, rbNormal int) float64 {
	if v <= 0 {
		return 1
	}
	if rbNormal <= 0 {
		// Need v·0.5^γ < 0.5 ⇒ γ > log2(2v); add margin.
		return math.Log2(2*float64(v)) + 0.5
	}
	if rbNormal > v {
		rbNormal = v
	}
	g := math.Log2(float64(v) / float64(rbNormal))
	// Keep a little curvature even when v == rbNormal (γ would be 0 and
	// every application, however benign, would roll back): with γ =
	// 0.35 the round() still lands on rbNormal at score 0.5 for the
	// small vulnerabilities this case occurs at, while light
	// applications keep rollback 0.
	if g < 0.35 {
		g = 0.35
	}
	return g
}

// ReferenceTableI returns the paper's Table I rows for a core label, so
// tests and reports can compare measured limits against the published
// values without re-parsing this package's internals.
func ReferenceTableI(label string) (idle, uBench, normal, worst int, ok bool) {
	for _, row := range referenceLimits {
		if row.label == label {
			return row.idle, row.uBench, row.normal, row.worst, true
		}
	}
	return 0, 0, 0, 0, false
}

// ReferenceCoreLabels returns the 16 core labels in Table I order.
func ReferenceCoreLabels() []string {
	out := make([]string, len(referenceLimits))
	for i, row := range referenceLimits {
		out[i] = row.label
	}
	return out
}
