package silicon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/units"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidateCatchesBadness(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.VRef = 0.3 }, // below VTh
		func(p *Params) { p.InvPs = 0 },
		func(p *Params) { p.ThetaUnits = 0 },
		func(p *Params) { p.MaxTaps = 0 },
		func(p *Params) { p.FDefault = 4000 }, // below FStatic
		func(p *Params) { p.FMaxHW = 4500 },   // below FDefault
		func(p *Params) { p.NumCPMSites = 0 },
		func(p *Params) { p.IdleDroopFrac = -1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestScale(t *testing.T) {
	p := DefaultParams()
	if got := p.Scale(p.VRef); math.Abs(got-1) > 1e-12 {
		t.Errorf("Scale(VRef) = %g, want 1", got)
	}
	// Lower voltage → slower circuits → larger scale.
	if p.Scale(1.20) <= 1 {
		t.Error("Scale below VRef should exceed 1")
	}
	if p.Scale(1.30) >= 1 {
		t.Error("Scale above VRef should be below 1")
	}
	// ~20 mV sag ≈ 2.2% delay at the POWER7+ point.
	got := p.Scale(p.VRef - 0.020)
	if math.Abs(got-1.0227) > 0.001 {
		t.Errorf("Scale(VRef−20mV) = %g, want ≈1.0227", got)
	}
}

func TestSettleFreqCap(t *testing.T) {
	p := DefaultParams()
	if got := p.SettleFreq(1, p.VRef); got != p.FMaxHW {
		t.Errorf("tiny guard should clamp to FMaxHW, got %v", got)
	}
	if got := p.SettleFreq(0, p.VRef); got != p.FMaxHW {
		t.Errorf("zero guard should clamp to FMaxHW, got %v", got)
	}
}

func TestReferenceIsValid(t *testing.T) {
	srv := Reference()
	if err := srv.Validate(); err != nil {
		t.Fatalf("reference invalid: %v", err)
	}
	if len(srv.Chips) != 2 {
		t.Fatalf("reference has %d chips, want 2", len(srv.Chips))
	}
	for _, ch := range srv.Chips {
		if len(ch.Cores) != 8 {
			t.Fatalf("chip %s has %d cores, want 8", ch.Label, len(ch.Cores))
		}
	}
}

func TestReferenceDeterministicLimitsMatchTableI(t *testing.T) {
	srv := Reference()
	for _, c := range srv.AllCores() {
		idle, ub, normal, worst, ok := ReferenceTableI(c.Label)
		if !ok {
			t.Fatalf("no table row for %s", c.Label)
		}
		if got := c.DeterministicLimit(0); got != idle {
			t.Errorf("%s idle limit = %d, want %d", c.Label, got, idle)
		}
		if got := c.DeterministicLimit(UBenchScore); got != ub {
			t.Errorf("%s uBench limit = %d, want %d", c.Label, got, ub)
		}
		mid := UBenchScore + 0.5*(1-UBenchScore)
		if got := c.DeterministicLimit(mid); got != normal {
			t.Errorf("%s thread-normal = %d, want %d", c.Label, got, normal)
		}
		if got := c.DeterministicLimit(1); got != worst {
			t.Errorf("%s thread-worst = %d, want %d", c.Label, got, worst)
		}
	}
}

func TestReferencePresetSpread(t *testing.T) {
	srv := Reference()
	lo, hi := 1000, 0
	for _, c := range srv.AllCores() {
		if c.PresetTaps < lo {
			lo = c.PresetTaps
		}
		if c.PresetTaps > hi {
			hi = c.PresetTaps
		}
	}
	// Fig. 4b: presets range ~7 to 20, nearly a 3× spread.
	if lo < 5 || hi > 20 {
		t.Errorf("preset range [%d,%d] outside the Fig. 4b envelope", lo, hi)
	}
	if float64(hi)/float64(lo) < 2 {
		t.Errorf("preset spread %d/%d below the ~3x of Fig. 4b", hi, lo)
	}
}

func TestReferenceDefaultFrequencyUniform(t *testing.T) {
	srv := Reference()
	p := srv.Params()
	for _, c := range srv.AllCores() {
		f := c.DefaultFreq()
		if math.Abs(float64(f-p.FDefault)) > 3.5*p.FDefaultJitterMHz {
			t.Errorf("%s default frequency %v too far from %v", c.Label, f, p.FDefault)
		}
	}
}

func TestReferenceIdleFrequenciesMatchFig7(t *testing.T) {
	srv := Reference()
	for _, c := range srv.AllCores() {
		want, ok := referenceIdleFreqMHz[c.Label]
		if !ok {
			t.Fatalf("no Fig. 7 frequency for %s", c.Label)
		}
		idle, _, _, _, _ := ReferenceTableI(c.Label)
		f, err := c.SettledFreq(idle, srv.Params().VRef)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(f)-want) > 1.5 {
			t.Errorf("%s idle-limit frequency %v, want ≈%.0f", c.Label, f, want)
		}
	}
}

func TestStaticPerCoreFreqEnvelope(t *testing.T) {
	srv := Reference()
	p := srv.Params()
	for _, c := range srv.AllCores() {
		fs := c.StaticPerCoreFreq()
		// Fig. 1: per-core static setpoints sit between the 4.2 GHz
		// chip-wide baseline (minus a whisker) and ~4.8 GHz.
		if fs < p.FStatic-100 || fs > 4800 {
			t.Errorf("%s static per-core frequency %v outside Fig. 1 envelope", c.Label, fs)
		}
		// And always below the core's idle fine-tuned frequency.
		idle, _, _, _, _ := ReferenceTableI(c.Label)
		fi, err := c.SettledFreq(idle, p.VRef)
		if err != nil {
			t.Fatal(err)
		}
		if fs >= fi {
			t.Errorf("%s static %v not below fine-tuned idle %v", c.Label, fs, fi)
		}
	}
}

func TestGuardMonotoneInReduction(t *testing.T) {
	srv := Reference()
	for _, c := range srv.AllCores() {
		prev := units.Picosecond(math.Inf(1))
		for r := 0; r <= c.MaxReduction(); r++ {
			g, err := c.GuardPs(r)
			if err != nil {
				t.Fatal(err)
			}
			if g >= prev {
				t.Fatalf("%s guard not strictly decreasing at r=%d (%v vs %v)", c.Label, r, g, prev)
			}
			prev = g
		}
	}
}

func TestGuardErrors(t *testing.T) {
	c := Reference().AllCores()[0]
	if _, err := c.GuardPs(-1); err == nil {
		t.Error("negative reduction accepted")
	}
	if _, err := c.GuardPs(c.PresetTaps + 1); err == nil {
		t.Error("reduction beyond preset accepted")
	}
	if _, err := c.SettledFreq(c.PresetTaps+1, 1.25); err == nil {
		t.Error("SettledFreq beyond preset accepted")
	}
}

func TestInsertedDelayPanicsOutOfRange(t *testing.T) {
	c := Reference().AllCores()[0]
	defer func() {
		if recover() == nil {
			t.Error("out-of-range tap index did not panic")
		}
	}()
	c.InsertedDelayPs(-1)
}

func TestSettledFreqMonotoneInVoltage(t *testing.T) {
	c := Reference().AllCores()[3]
	prev := units.MHz(0)
	for v := units.Volt(1.10); v <= 1.30; v += 0.01 {
		f, err := c.SettledFreq(2, v)
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("frequency not increasing with voltage at %v", v)
		}
		prev = f
	}
}

func TestRequiredGuardMonotoneInScore(t *testing.T) {
	for _, c := range Reference().AllCores() {
		prev := units.Picosecond(0)
		for s := 0.0; s <= 1.0; s += 0.02 {
			g := c.RequiredGuardPs(s)
			if g < prev {
				t.Fatalf("%s required guard decreased at score %.2f", c.Label, s)
			}
			prev = g
		}
	}
}

func TestFailureProbMonotoneInReduction(t *testing.T) {
	for _, c := range Reference().AllCores() {
		prev := -1.0
		for r := 0; r <= c.MaxReduction(); r++ {
			p, err := c.FailureProb(r, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-12 {
				t.Fatalf("%s failure prob decreased at r=%d", c.Label, r)
			}
			if p < 0 || p > 1 {
				t.Fatalf("%s failure prob %g out of range", c.Label, p)
			}
			prev = p
		}
	}
}

func TestFailureProbAtLimitsIsExtreme(t *testing.T) {
	for _, c := range Reference().AllCores() {
		idle, _, _, _, _ := ReferenceTableI(c.Label)
		pAt, err := c.FailureProb(idle, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pAt > 1e-4 {
			t.Errorf("%s failure prob at idle limit = %g, want ≤1e-4", c.Label, pAt)
		}
		if idle+1 <= c.MaxReduction() {
			pBeyond, err := c.FailureProb(idle+1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if pBeyond < 0.25 {
				t.Errorf("%s failure prob one step past idle limit = %g, want ≥0.25", c.Label, pBeyond)
			}
		}
	}
}

func TestSurvivesTrialAgreesWithFailureProb(t *testing.T) {
	c := Reference().AllCores()[0]
	idle, _, _, _, _ := ReferenceTableI(c.Label)
	src := rng.New(99)
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		ok, err := c.SurvivesTrial(idle+1, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			fails++
		}
	}
	want, _ := c.FailureProb(idle+1, 0)
	got := float64(fails) / n
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical failure rate %g vs analytic %g", got, want)
	}
}

func TestRollbackAtProperties(t *testing.T) {
	for _, c := range Reference().AllCores() {
		if got := c.RollbackAt(0); got != 0 {
			t.Errorf("%s rollback at score 0 = %d", c.Label, got)
		}
		if got := c.RollbackAt(1); got != c.Vulnerability {
			t.Errorf("%s rollback at score 1 = %d, want %d", c.Label, got, c.Vulnerability)
		}
		if got := c.RollbackAt(2); got != c.Vulnerability {
			t.Errorf("%s rollback clamps above 1: got %d", c.Label, got)
		}
		prev := 0
		for s := 0.0; s <= 1; s += 0.05 {
			rb := c.RollbackAt(s)
			if rb < prev {
				t.Fatalf("%s rollback decreased at %g", c.Label, s)
			}
			prev = rb
		}
	}
}

func TestGenerateIsValidAcrossSeeds(t *testing.T) {
	prop := func(seed uint64) bool {
		srv, err := Generate(seed, GenerateOptions{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := srv.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, c := range srv.AllCores() {
			idle := c.DeterministicLimit(0)
			ub := c.DeterministicLimit(UBenchScore)
			worst := c.DeterministicLimit(1)
			if !(idle >= ub && ub >= worst && worst >= 0) {
				t.Logf("seed %d: %s limits not monotone: %d/%d/%d", seed, c.Label, idle, ub, worst)
				return false
			}
			if idle > c.PresetTaps {
				t.Logf("seed %d: %s idle limit exceeds preset", seed, c.Label)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestGenerateExposesVariation(t *testing.T) {
	srv, err := Generate(1234, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1000, -1
	for _, c := range srv.AllCores() {
		l := c.DeterministicLimit(0)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi-lo < 2 {
		t.Errorf("generated chip shows too little inter-core variation: limits [%d,%d]", lo, hi)
	}
}

func TestFindCore(t *testing.T) {
	srv := Reference()
	if c := srv.FindCore("P1C3"); c == nil || c.Label != "P1C3" {
		t.Error("FindCore failed for P1C3")
	}
	if c := srv.FindCore("P9C9"); c != nil {
		t.Error("FindCore returned a core for a bogus label")
	}
}

func TestReferenceCoreLabels(t *testing.T) {
	labels := ReferenceCoreLabels()
	if len(labels) != 16 || labels[0] != "P0C0" || labels[15] != "P1C7" {
		t.Errorf("labels = %v", labels)
	}
	if _, _, _, _, ok := ReferenceTableI("nope"); ok {
		t.Error("ReferenceTableI accepted a bogus label")
	}
}

func TestScaleTrialNoiseDeepCopy(t *testing.T) {
	base := Reference()
	scaled := base.ScaleTrialNoise(2)
	for i, c := range scaled.AllCores() {
		orig := base.AllCores()[i]
		if math.Abs(c.SigmaFrac-2*orig.SigmaFrac) > 1e-15 {
			t.Errorf("%s sigma not scaled: %g vs %g", c.Label, c.SigmaFrac, orig.SigmaFrac)
		}
		// Mutating the copy must not touch the original.
		c.StepPs[1] += 100
		if orig.StepPs[1] == c.StepPs[1] {
			t.Fatalf("%s step table aliased", c.Label)
		}
		c.StepPs[1] -= 100
	}
	// Scaled-up noise never raises a deterministic limit.
	for i, c := range scaled.AllCores() {
		orig := base.AllCores()[i]
		if c.DeterministicLimit(0) > orig.DeterministicLimit(0) {
			t.Errorf("%s noisier limit exceeds original", c.Label)
		}
	}
}

func TestScaleTrialNoisePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive scale accepted")
		}
	}()
	Reference().ScaleTrialNoise(0)
}

func TestCloneNeverAliasesReference(t *testing.T) {
	ref := Reference()
	clone := ref.Clone()
	if err := clone.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}

	// Snapshot the reference before mutating the clone.
	type snap struct {
		path, synth, idle, ubench units.Picosecond
		sigma                     float64
		step1                     units.Picosecond
		skew0                     units.Picosecond
		preset                    int
	}
	before := map[string]snap{}
	for _, c := range ref.AllCores() {
		before[c.Label] = snap{
			path: c.PathPs, synth: c.SynthPs, idle: c.IdleGuardPs,
			ubench: c.UBenchGuardPs, sigma: c.SigmaFrac,
			step1: c.StepPs[1], skew0: c.SiteSkewPs[0], preset: c.PresetTaps,
		}
	}

	// Mutate every field of every cloned core, including slice elements:
	// the aliasing bugs Clone exists to prevent live in shared backing
	// arrays, not in the scalar copies.
	for _, c := range clone.AllCores() {
		c.PathPs *= 2
		c.SynthPs *= 2
		c.IdleGuardPs *= 2
		c.UBenchGuardPs *= 2
		c.SigmaFrac *= 10
		c.PresetTaps = 1
		for k := range c.StepPs {
			c.StepPs[k] += 1000
		}
		for k := range c.SiteSkewPs {
			c.SiteSkewPs[k] -= 1000
		}
	}

	for _, c := range ref.AllCores() {
		b := before[c.Label]
		if c.PathPs != b.path || c.SynthPs != b.synth || c.IdleGuardPs != b.idle ||
			c.UBenchGuardPs != b.ubench || c.PresetTaps != b.preset {
			t.Fatalf("%s: scalar field of the reference changed after mutating a clone", c.Label)
		}
		//lint:ignore floatcmp aliasing check: the value must be bit-identical to its snapshot, any change at all is the bug
		if c.SigmaFrac != b.sigma {
			t.Fatalf("%s: SigmaFrac of the reference changed after mutating a clone", c.Label)
		}
		if c.StepPs[1] != b.step1 {
			t.Fatalf("%s: StepPs backing array is shared with the clone", c.Label)
		}
		if c.SiteSkewPs[0] != b.skew0 {
			t.Fatalf("%s: SiteSkewPs backing array is shared with the clone", c.Label)
		}
	}

	// A clone of a clone must be equally independent, and params must
	// survive the copy so the clone still validates and settles.
	if clone.Params() != ref.Params() {
		t.Fatalf("clone dropped the chip-level params")
	}
}
