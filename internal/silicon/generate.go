package silicon

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/units"
)

// GenerateOptions controls the forward process-variation model.
type GenerateOptions struct {
	// Chips is the number of processors to manufacture (2 on the
	// paper's server). Default 2.
	Chips int
	// CoresPerChip defaults to 8.
	CoresPerChip int
	// SpeedSigma is the relative inter-core spread of true path delay
	// (lithographic process variation). Default 0.018.
	SpeedSigma float64
	// ChipSpeedSigma is the chip-to-chip component of the spread
	// (cores on a chip are correlated). Default 0.008.
	ChipSpeedSigma float64
	// Params are the electrical constants; DefaultParams when zero.
	Params Params
}

func (o GenerateOptions) withDefaults() GenerateOptions {
	if o.Chips == 0 {
		o.Chips = 2
	}
	if o.CoresPerChip == 0 {
		o.CoresPerChip = 8
	}
	if o.SpeedSigma == 0 {
		o.SpeedSigma = 0.028
	}
	if o.ChipSpeedSigma == 0 {
		o.ChipSpeedSigma = 0.010
	}
	if o.Params == (Params{}) {
		o.Params = DefaultParams()
	}
	return o
}

// Generate manufactures a fresh server from the forward
// process-variation model. Unlike Reference, nothing here is pinned to
// the paper's measurements: per-core speed, CPM step non-linearity,
// droop vulnerability and the manufacturer preset calibration are all
// drawn from distributions, and the preset rule (equalize default-ATM
// idle frequency at FDefault) produces the Fig. 4b-style preset spread
// as an emergent property.
func Generate(seed uint64, opts GenerateOptions) (*ServerProfile, error) {
	o := opts.withDefaults()
	p := o.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	server := &ServerProfile{params: p}

	// The median silicon sits ~8% below the default-ATM cycle-time
	// requirement, leaving a few reclaimable steps on a typical core
	// and up to ~10 on the fast tail (the Table I spread).
	guardDefault := float64(p.FDefault.CycleTime())
	basePath := guardDefault * 0.92

	for ci := 0; ci < o.Chips; ci++ {
		chip := &ChipProfile{Label: fmt.Sprintf("P%d", ci)}
		chipSrc := root.SplitIndex("chip", ci)
		chipSpeed := chipSrc.Norm(0, o.ChipSpeedSigma)
		for k := 0; k < o.CoresPerChip; k++ {
			src := chipSrc.SplitIndex("core", k)
			label := fmt.Sprintf("P%dC%d", ci, k)
			core, err := generateCore(p, label, basePath, chipSpeed, o.SpeedSigma, src)
			if err != nil {
				return nil, err
			}
			chip.Cores = append(chip.Cores, core)
		}
		server.Chips = append(server.Chips, chip)
	}
	if err := server.Validate(); err != nil {
		return nil, err
	}
	return server, nil
}

// generateCore runs the forward model for one core.
func generateCore(p Params, label string, basePath, chipSpeed, speedSigma float64, src *rng.Source) (*CoreProfile, error) {
	c := &CoreProfile{Label: label, params: p}

	// Silicon speed: true critical path with chip-level + core-level
	// lognormal-ish variation. Faster cores (smaller path) have more
	// reclaimable margin.
	speed := math.Exp(chipSpeed + src.TruncNorm(0, speedSigma, -3*speedSigma, 3*speedSigma))
	c.PathPs = units.Picosecond(basePath / speed)

	// Non-linear step table (same tap statistics as the reference).
	c.StepPs = make([]units.Picosecond, p.MaxTaps+1)
	for k := 1; k <= p.MaxTaps; k++ {
		u := src.Float64()
		var w float64
		switch {
		case u < 0.18:
			w = 0.35 + 0.45*src.Float64()
		case u < 0.80:
			w = 0.9 + 1.0*src.Float64()
		default:
			w = 2.0 + 1.2*src.Float64()
		}
		c.StepPs[k] = units.Picosecond(w * float64(p.InvPs))
	}

	// Idle requirement = true path under the idle droop tail.
	c.IdleGuardPs = units.Picosecond(float64(c.PathPs) * (1 + p.IdleDroopFrac))

	// Per-trial noise of the required guard (uncovered droop tail),
	// sized so every inserted-delay step stays resolvable by the limit
	// searches (≥3.2σ of guard; see the reference calibration).
	minStep := c.StepPs[1]
	for k := 2; k <= p.MaxTaps; k++ {
		if c.StepPs[k] < minStep {
			minStep = c.StepPs[k]
		}
	}
	sigmaMax := float64(minStep) / (3.2 * float64(p.FDefault.CycleTime()))
	c.SigmaFrac = (0.5 + 0.5*src.Float64()) * sigmaMax
	if c.SigmaFrac < 5e-4 {
		c.SigmaFrac = 5e-4
	}

	// Manufacturer preset rule: pick the tap count that lands the
	// default-ATM idle frequency nearest FDefault (with calibration
	// jitter), then make sure enough protection depth exists above the
	// core's own limit. This is what produces Fig. 4b: fast cores need
	// large inserted delays to be slowed to the uniform frequency.
	fTarget := float64(p.FDefault) + src.Norm(0, p.FDefaultJitterMHz)
	guard0 := units.MHz(fTarget).CycleTime()

	// Silicon too slow to run the uniform default safely is binned to a
	// slightly lower default frequency: the default config must itself
	// sit above the core's idle requirement with full headroom.
	minGuard0 := units.Picosecond(float64(c.IdleGuardPs)*(1+limitHeadroomSigmas*c.SigmaFrac) + 1)
	if guard0 < minGuard0 {
		guard0 = minGuard0
	}

	// The synthetic path takes most of the CPM budget; the preset
	// absorbs the per-core remainder. The share varies core to core,
	// which (together with silicon speed) produces the wide Fig. 4b
	// preset spread.
	share := 0.68 + 0.14*src.Float64()
	c.SynthPs = units.Picosecond(float64(guard0)*share + src.Norm(0, 1.5))
	budget := guard0 - c.SynthPs - p.ThetaPs()
	if budget <= 0 {
		return nil, fmt.Errorf("silicon: %s preset budget non-positive", label)
	}
	best, bestErr := 1, math.Inf(1)
	for taps := 1; taps <= p.MaxTaps; taps++ {
		e := math.Abs(float64(c.InsertedDelayPs(taps) - budget))
		if e < bestErr {
			best, bestErr = taps, e
		}
	}
	c.PresetTaps = best
	// Re-solve the synthetic path so G(0) hits the target exactly with
	// the quantized preset.
	c.SynthPs = guard0 - c.InsertedDelayPs(c.PresetTaps) - p.ThetaPs()
	if c.SynthPs <= 0 {
		return nil, fmt.Errorf("silicon: %s synthetic path non-positive after preset", label)
	}

	// The idle limit must be reachable within the preset depth; if the
	// drawn silicon is so fast that the limit exceeds the preset,
	// manufacture a deeper preset by slowing the target frequency is
	// not possible (quantized) — instead clamp by raising the idle
	// requirement to what the deepest probe-able config provides.
	// (Rare: requires ~4σ-fast silicon.)
	idleLim := c.limitForGuard(c.IdleGuardPs)
	if idleLim >= c.PresetTaps {
		idleLim = c.PresetTaps - 1
	}
	// Snap the requirement to the discoverable grid: the raw
	// silicon-derived guard can land anywhere between two tap points,
	// leaving the next configuration with a failure probability too
	// small for any finite search to observe. The platform's *usable*
	// idle limit is the grid point, so the model carries that (slightly
	// more conservative) requirement — exactly how the reference
	// calibration defines its guards.
	c.IdleGuardPs = c.requiredGuardForLimit(idleLim)

	// uBench exposes long paths idle misses on a minority of cores
	// (the paper found 6 of 16).
	if src.Float64() < 0.4 {
		extraSteps := 1 + src.Intn(3)
		ubLim := idleLim - extraSteps
		if ubLim < 0 {
			ubLim = 0
		}
		c.UBenchGuardPs = c.requiredGuardForLimit(ubLim)
	} else {
		c.UBenchGuardPs = c.IdleGuardPs
	}
	if c.UBenchGuardPs < c.IdleGuardPs {
		c.UBenchGuardPs = c.IdleGuardPs
	}

	// Application vulnerability: how many further steps the worst
	// workload forces back, and the curvature of the stress response.
	ubLim := c.limitForGuard(c.UBenchGuardPs)
	maxV := ubLim // cannot roll back below reduction 0
	v := src.Intn(4)
	if src.Float64() < 0.25 {
		v = 0 // fully robust cores exist (right of Fig. 10)
	}
	if v > maxV {
		v = maxV
	}
	c.Vulnerability = v
	c.Gamma = 1 + 1.4*src.Float64()

	// Site skews.
	c.SiteSkewPs = make([]units.Picosecond, p.NumCPMSites)
	worstSite := src.Intn(p.NumCPMSites)
	for i := range c.SiteSkewPs {
		if i == worstSite {
			continue
		}
		c.SiteSkewPs[i] = units.Picosecond(-1 - 5*src.Float64())
	}
	return c, nil
}
