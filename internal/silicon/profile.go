package silicon

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/units"
)

// CPMSiteName names the functional unit each of a core's five CPMs is
// embedded in (Fig. 3).
var CPMSiteName = [5]string{"IFU", "ISU", "FXU", "FPU", "LLC"}

// CoreProfile is the manufactured silicon of one core plus its CPM
// hardware and its empirical failure envelope. All delays are at VRef.
//
// A CoreProfile is immutable after construction; the mutable runtime
// state (current tap setting, DPLL state) lives in internal/chip.
type CoreProfile struct {
	// Label identifies the core, e.g. "P0C3" (processor 0, core 3).
	Label string

	// PathPs is the core's true worst critical-path delay D0 — the
	// silicon speed. Smaller is faster silicon.
	PathPs units.Picosecond

	// SynthPs is the delay of the CPM synthetic path (excluding the
	// inserted-delay stage) at the worst of the core's CPM sites.
	SynthPs units.Picosecond

	// SiteSkewPs is each CPM site's synthetic-path delay relative to
	// the worst site: values are ≤ 0 and the worst site is 0. The DPLL
	// consumes the worst (minimum-margin) site each cycle.
	SiteSkewPs []units.Picosecond

	// StepPs[k] is the extra delay contributed by tap k of the
	// inserted-delay chain over tap k−1, for k in [1, MaxTaps]. The
	// manufacturing process makes the graduation non-linear (Sec. IV-C):
	// entries vary between roughly one and three inverter delays.
	// StepPs[0] is unused and zero.
	StepPs []units.Picosecond

	// PresetTaps is the manufacturer's test-time inserted-delay setting
	// (Fig. 4b). Fine-tuning reduces the tap index below this value.
	PresetTaps int

	// IdleGuardPs is the guarded CPM path length (CPM delay + threshold
	// slack, at VRef) the core needs to run the bare OS safely: the
	// nominal required guard under system idle.
	IdleGuardPs units.Picosecond

	// UBenchGuardPs is the required guard under the micro-benchmarks
	// (coremark / daxpy / stream); ≥ IdleGuardPs for cores whose long
	// paths the idle environment does not exercise (Sec. V-B).
	UBenchGuardPs units.Picosecond

	// Vulnerability is the number of extra inserted-delay steps the
	// most stressful application forces the core to roll back from its
	// uBench limit (the columns of Fig. 10; 0 = fully robust core).
	Vulnerability int

	// Gamma shapes how rollback grows with application stress score:
	// rollback(s) = round(Vulnerability · s^Gamma). Larger Gamma means
	// only the most stressful applications hurt the core.
	Gamma float64

	// SigmaFrac is the relative per-trial spread of the required guard —
	// the stochastic tail of uncovered voltage-noise events. It controls
	// how many configurations the limit distributions of Fig. 7 span.
	SigmaFrac float64

	params Params
}

// Params returns the chip-level constants the profile was built with.
func (c *CoreProfile) Params() Params { return c.params }

// MaxReduction returns the largest legal inserted-delay reduction: the
// tap index cannot go below zero.
func (c *CoreProfile) MaxReduction() int { return c.PresetTaps }

// InsertedDelayPs returns the delay of the inserted-delay stage when
// configured at tap index taps (at VRef). Tap 0 contributes zero delay.
// It panics when taps is outside [0, MaxTaps]: configurations are always
// validated at the chip API boundary, so an out-of-range tap here is a
// programming error.
func (c *CoreProfile) InsertedDelayPs(taps int) units.Picosecond {
	if taps < 0 || taps >= len(c.StepPs) {
		panic(fmt.Sprintf("silicon: tap index %d out of range [0,%d] on %s",
			taps, len(c.StepPs)-1, c.Label))
	}
	var d units.Picosecond
	for k := 1; k <= taps; k++ {
		d += c.StepPs[k]
	}
	return d
}

// GuardPs returns the guarded CPM path at inserted-delay reduction r:
// synthetic path + inserted delay at tap (preset − r) + the DPLL's
// threshold slack, in ps at VRef. The DPLL settles the cycle time at
// exactly this value, so GuardPs is both the protection the loop
// maintains and the inverse of the settled frequency.
func (c *CoreProfile) GuardPs(reduction int) (units.Picosecond, error) {
	if reduction < 0 {
		return 0, fmt.Errorf("silicon: negative CPM delay reduction %d on %s", reduction, c.Label)
	}
	if reduction > c.PresetTaps {
		return 0, fmt.Errorf("silicon: CPM delay reduction %d exceeds preset %d on %s",
			reduction, c.PresetTaps, c.Label)
	}
	return c.SynthPs + c.InsertedDelayPs(c.PresetTaps-reduction) + c.params.ThetaPs(), nil
}

// mustGuard is GuardPs for internal callers that have validated reduction.
func (c *CoreProfile) mustGuard(reduction int) units.Picosecond {
	g, err := c.GuardPs(reduction)
	if err != nil {
		panic(err)
	}
	return g
}

// SettledFreq returns the frequency the core's ATM loop settles at with
// the given inserted-delay reduction and chip supply voltage.
func (c *CoreProfile) SettledFreq(reduction int, v units.Volt) (units.MHz, error) {
	g, err := c.GuardPs(reduction)
	if err != nil {
		return 0, err
	}
	return c.params.SettleFreq(g, v), nil
}

// DefaultFreq returns the default-ATM (reduction 0) frequency at VRef —
// the ~4.6 GHz uniform performance the preset calibration delivers.
func (c *CoreProfile) DefaultFreq() units.MHz {
	return c.params.SettleFreq(c.mustGuard(0), c.params.VRef)
}

// StaticPerCoreFreq estimates the core's fixed ⟨v,f⟩ static-margin
// setpoint (Fig. 1, second bar): the highest frequency whose cycle time
// still covers the true path under the full static worst-case voltage
// guardband.
func (c *CoreProfile) StaticPerCoreFreq() units.MHz {
	worstV := c.params.VRef - c.params.StaticNoiseGuard
	d := units.Picosecond(float64(c.PathPs) * c.params.Scale(worstV))
	return d.Frequency().Clamp(0, c.params.FMaxHW)
}

// RollbackAt returns how many inserted-delay steps an application with
// the given stress score (0 = benign, 1 = the worst profiled workload)
// forces the core to roll back from its uBench limit.
func (c *CoreProfile) RollbackAt(score float64) int {
	if score <= 0 || c.Vulnerability == 0 {
		return 0
	}
	if score > 1 {
		score = 1
	}
	rb := int(math.Round(float64(c.Vulnerability) * math.Pow(score, c.Gamma)))
	if rb > c.Vulnerability {
		rb = c.Vulnerability
	}
	return rb
}

// RequiredGuardPs returns the nominal guarded path the core needs to
// survive a workload with the given stress score. Scores ≤ 0 denote the
// idle environment; the special score UBenchScore anchors the
// micro-benchmark envelope; larger scores interpolate through the
// rollback curve up to the worst profiled workload at 1.
func (c *CoreProfile) RequiredGuardPs(score float64) units.Picosecond {
	switch {
	case score <= 0:
		return c.IdleGuardPs
	case score <= UBenchScore:
		// Between idle and the uBench anchor the envelope ramps
		// linearly: light instruction streams begin exercising real
		// paths immediately.
		frac := score / UBenchScore
		return c.IdleGuardPs + units.Picosecond(frac*float64(c.UBenchGuardPs-c.IdleGuardPs))
	default:
		// Past the uBench anchor the envelope follows the quantized
		// rollback curve: the guard needed is the guard of the
		// (uBench limit − rollback) configuration.
		rb := c.RollbackAt(normalizeAppScore(score))
		lim := c.limitForGuard(c.UBenchGuardPs) - rb
		if lim < 0 {
			lim = 0
		}
		return c.requiredGuardForLimit(lim)
	}
}

// UBenchScore is the stress score assigned to the three micro-benchmarks:
// well above idle, well below real applications (Sec. V-A: uBench
// "create little system noise, especially the di/dt effect").
const UBenchScore = 0.12

// normalizeAppScore maps an application score in (UBenchScore, 1] onto
// the rollback curve's [0, 1] domain.
func normalizeAppScore(score float64) float64 {
	s := (score - UBenchScore) / (1 - UBenchScore)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// limitForGuard returns the largest reduction r whose guard still meets
// the required guard req with the calibration headroom factor applied —
// i.e. the deterministic configuration limit for that requirement.
func (c *CoreProfile) limitForGuard(req units.Picosecond) int {
	// The 1e-9 slack keeps limitForGuard an exact inverse of
	// requiredGuardForLimit in the presence of float rounding.
	need := float64(req)*(1+limitHeadroomSigmas*c.SigmaFrac) - 1e-9
	lim := 0
	for r := 0; r <= c.PresetTaps; r++ {
		if float64(c.mustGuard(r)) >= need {
			lim = r
		} else {
			break
		}
	}
	return lim
}

// requiredGuardForLimit inverts limitForGuard: the nominal required
// guard that makes the deterministic limit land exactly at lim.
func (c *CoreProfile) requiredGuardForLimit(lim int) units.Picosecond {
	if lim > c.PresetTaps {
		lim = c.PresetTaps
	}
	if lim < 0 {
		lim = 0
	}
	return units.Picosecond(float64(c.mustGuard(lim)) / (1 + limitHeadroomSigmas*c.SigmaFrac))
}

// limitHeadroomSigmas is how many per-trial sigmas of headroom the
// nominal requirement keeps below a configuration's guard for the
// configuration to count as "safe": at the limit configuration the
// failure probability is the far tail (~7e-6 per run, so a full
// characterization with its thousands of runs sees at most a spurious
// failure or two across many invocations), while one step beyond the
// limit the guard deficit is several sigmas and failures are near
// certain — producing the tight, one-to-two-wide limit distributions of
// Fig. 7.
const limitHeadroomSigmas = 4.5

// DeterministicLimit returns the configuration limit (max safe reduction)
// for a workload stress score, without stochastic trials. The
// characterization package rediscovers these limits empirically.
func (c *CoreProfile) DeterministicLimit(score float64) int {
	return c.limitForGuard(c.RequiredGuardPs(score))
}

// SurvivesTrial draws one stochastic trial: does the core execute the
// given workload correctly at the given reduction? The per-trial
// requirement is the nominal guard inflated by a half-normal tail —
// the worst uncovered droop seen during the run.
//
//atm:hotpath
func (c *CoreProfile) SurvivesTrial(reduction int, score float64, src *rng.Source) (bool, error) {
	g, err := c.GuardPs(reduction)
	if err != nil {
		return false, err
	}
	req := float64(c.RequiredGuardPs(score))
	tail := math.Abs(src.Norm(0, c.SigmaFrac))
	return float64(g) >= req*(1+tail), nil
}

// FailureProb returns the per-trial failure probability at the given
// reduction and stress score (the analytic counterpart of SurvivesTrial,
// used by property tests).
func (c *CoreProfile) FailureProb(reduction int, score float64) (float64, error) {
	g, err := c.GuardPs(reduction)
	if err != nil {
		return 0, err
	}
	req := float64(c.RequiredGuardPs(score))
	if req <= 0 {
		return 0, nil
	}
	t := (float64(g)/req - 1) / c.SigmaFrac
	if t < 0 {
		return 1, nil
	}
	// P(|N(0,1)| > t) = erfc(t/√2).
	return math.Erfc(t / math.Sqrt2), nil
}

// Validate reports whether the profile is internally consistent.
func (c *CoreProfile) Validate() error {
	if c.Label == "" {
		return fmt.Errorf("silicon: core profile missing label")
	}
	if err := c.params.Validate(); err != nil {
		return fmt.Errorf("%s: %w", c.Label, err)
	}
	if c.PresetTaps < 1 || c.PresetTaps >= len(c.StepPs) {
		return fmt.Errorf("silicon: %s preset taps %d outside step table (len %d)",
			c.Label, c.PresetTaps, len(c.StepPs))
	}
	for k := 1; k < len(c.StepPs); k++ {
		if c.StepPs[k] <= 0 {
			return fmt.Errorf("silicon: %s step %d non-positive (%v)", c.Label, k, c.StepPs[k])
		}
	}
	if c.PathPs <= 0 || c.SynthPs <= 0 {
		return fmt.Errorf("silicon: %s non-positive path delays", c.Label)
	}
	if c.IdleGuardPs <= 0 || c.UBenchGuardPs < c.IdleGuardPs {
		return fmt.Errorf("silicon: %s guard envelope inverted (idle %v, uBench %v)",
			c.Label, c.IdleGuardPs, c.UBenchGuardPs)
	}
	if c.Vulnerability < 0 {
		return fmt.Errorf("silicon: %s negative vulnerability", c.Label)
	}
	if c.SigmaFrac <= 0 {
		return fmt.Errorf("silicon: %s non-positive sigma", c.Label)
	}
	if len(c.SiteSkewPs) != c.params.NumCPMSites {
		return fmt.Errorf("silicon: %s has %d CPM sites, want %d",
			c.Label, len(c.SiteSkewPs), c.params.NumCPMSites)
	}
	worst := units.Picosecond(math.Inf(-1))
	for _, s := range c.SiteSkewPs {
		if s > 0 {
			return fmt.Errorf("silicon: %s positive site skew %v (worst site must be 0)", c.Label, s)
		}
		if s > worst {
			worst = s
		}
	}
	if worst != 0 {
		return fmt.Errorf("silicon: %s has no zero-skew worst site", c.Label)
	}
	return nil
}

// ChipProfile is the silicon of one processor: eight cores sharing a
// power-delivery rail.
type ChipProfile struct {
	// Label identifies the processor, e.g. "P0".
	Label string
	// Cores holds the per-core profiles in physical order.
	Cores []*CoreProfile
}

// ServerProfile is the full platform: the paper's machine has two
// eight-core POWER7+ processors.
type ServerProfile struct {
	Chips  []*ChipProfile
	params Params
}

// Params returns the shared electrical constants.
func (s *ServerProfile) Params() Params { return s.params }

// AllCores returns every core on the server in (chip, core) order.
func (s *ServerProfile) AllCores() []*CoreProfile {
	var out []*CoreProfile
	for _, ch := range s.Chips {
		out = append(out, ch.Cores...)
	}
	return out
}

// FindCore returns the core with the given label, or nil.
func (s *ServerProfile) FindCore(label string) *CoreProfile {
	for _, c := range s.AllCores() {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Clone returns a deep copy of the core profile: mutating the clone's
// slices or scalars never aliases the original. The unexported params
// ride along unchanged (they are a value type).
func (c *CoreProfile) Clone() *CoreProfile {
	nc := *c
	nc.StepPs = append([]units.Picosecond(nil), c.StepPs...)
	nc.SiteSkewPs = append([]units.Picosecond(nil), c.SiteSkewPs...)
	return &nc
}

// Clone returns a deep copy of the chip profile.
func (ch *ChipProfile) Clone() *ChipProfile {
	nch := &ChipProfile{Label: ch.Label, Cores: make([]*CoreProfile, 0, len(ch.Cores))}
	for _, c := range ch.Cores {
		nch.Cores = append(nch.Cores, c.Clone())
	}
	return nch
}

// Clone returns a deep copy of the whole server profile. Overlays that
// age or perturb silicon parameters (internal/lifetime) mutate a clone,
// never the reference profile, so the pristine silicon stays available
// for comparison runs in the same process.
func (s *ServerProfile) Clone() *ServerProfile {
	out := &ServerProfile{params: s.params, Chips: make([]*ChipProfile, 0, len(s.Chips))}
	for _, ch := range s.Chips {
		out.Chips = append(out.Chips, ch.Clone())
	}
	return out
}

// ScaleTrialNoise returns a deep copy of the server whose per-trial
// required-guard noise (SigmaFrac) is scaled by factor on every core.
// Used by the noise ablation: a noisier platform widens the limit
// distributions and pushes every measured limit more conservative,
// because the searches must clear a larger stochastic tail.
func (s *ServerProfile) ScaleTrialNoise(factor float64) *ServerProfile {
	if factor <= 0 {
		panic("silicon: non-positive noise scale")
	}
	out := s.Clone()
	for _, c := range out.AllCores() {
		c.SigmaFrac *= factor
	}
	return out
}

// Validate checks every core on the server.
func (s *ServerProfile) Validate() error {
	if len(s.Chips) == 0 {
		return fmt.Errorf("silicon: server has no chips")
	}
	for _, ch := range s.Chips {
		if len(ch.Cores) == 0 {
			return fmt.Errorf("silicon: chip %s has no cores", ch.Label)
		}
		for _, c := range ch.Cores {
			if err := c.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
