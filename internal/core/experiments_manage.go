package core

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/manage"
	"repro/internal/report"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Fig2 regenerates the SqueezeNet latency study.
func (s *Suite) Fig2() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}
	pts, err := mgr.LatencyStudy(workload.MustByName("squeezenet"))
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Fig. 2 — SqueezeNet inference latency by margin setting and schedule",
		Header: []string{"setting", "core", "freq (MHz)", "latency (ms)", "gain vs static"},
		Note:   "paper shape: 80 ms static; fine-tuned improves 7.5% (worst schedule) to ~15% (best, ~68 ms)",
	}
	for _, p := range pts {
		t.AddRow(p.Name, p.Core, report.F(float64(p.Freq), 0),
			report.F(p.LatencyMs, 1), report.Pct(p.Perf-1))
	}
	return &report.Artifact{
		ID:      "fig2",
		Caption: "Aggressive fine-tuning plus friendly co-location cuts inference latency",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig11 regenerates the deployed frequencies after the test-time stress
// procedure, at the limit and with one and two steps of safety rollback.
func (s *Suite) Fig11() (*report.Artifact, error) {
	dep, err := s.Deployment()
	if err != nil {
		return nil, err
	}
	// Rolled-back deployments on fresh machines (the suite machine keeps
	// its limit deployment).
	depRB := map[int]*tuning.Deployment{}
	for _, rb := range []int{1, 2} {
		m, err := chip.New(s.M.Profile(), chip.Options{})
		if err != nil {
			return nil, err
		}
		o := s.opts.Tuning
		o.Rollback = rb
		d, err := tuning.Deploy(m, o)
		if err != nil {
			return nil, err
		}
		depRB[rb] = d
	}

	t := &report.Table{
		Title:  "Fig. 11 — idle frequency (MHz) after test-time stress procedure",
		Header: []string{"core", "stress limit", "at limit", "rollback 1", "rollback 2"},
		Note: fmt.Sprintf("paper shape: >200 MHz inter-core differential at the limit "+
			"(regenerated: %.0f MHz); rollback keeps the variation trend", dep.SpeedDifferentialMHz()),
	}
	for _, cfg := range dep.Configs {
		r1, _ := depRB[1].Config(cfg.Core)
		r2, _ := depRB[2].Config(cfg.Core)
		t.AddRow(cfg.Core, fmt.Sprintf("%d", cfg.StressLimit),
			report.F(float64(cfg.IdleFreq), 0),
			report.F(float64(r1.IdleFreq), 0),
			report.F(float64(r2.IdleFreq), 0))
	}
	return &report.Artifact{
		ID:      "fig11",
		Caption: "The stress-test procedure exposes speed variability; optional rollback adds safety",
		Tables:  []*report.Table{t},
	}, nil
}

// fig12aCores are the example cores whose power sweeps the figure shows.
var fig12aCores = []string{"P0C0", "P0C3", "P0C7", "P1C6"}

// Fig12a regenerates the Eq. 1 frequency predictor: per-core sample
// sweeps of (chip power, frequency) plus the fitted line.
func (s *Suite) Fig12a() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}

	// Sweep samples: hold the example core busy, step co-runner load.
	samples := &report.Table{
		Title:  "Fig. 12a samples — core frequency (MHz) vs total chip power (W)",
		Header: append([]string{"chip power (W)"}, fig12aCores...),
	}
	s.M.ResetAll()
	loads := []struct {
		w workload.Profile
		n int
	}{
		{workload.Idle, 0}, {workload.Stream, 3}, {workload.Stream, 7},
		{workload.Coremark, 5}, {workload.Daxpy, 3}, {workload.Daxpy, 5}, {workload.Daxpy, 7},
	}
	// Program the deployed configuration for the sweep.
	dep, err := s.Deployment()
	if err != nil {
		return nil, err
	}
	for _, cfg := range dep.Configs {
		if err := s.M.ProgramCPM(cfg.Core, cfg.Reduction); err != nil {
			return nil, err
		}
	}
	for _, load := range loads {
		row := make([]string, 0, len(fig12aCores)+1)
		var power float64
		for _, label := range fig12aCores {
			ch, err := s.M.ChipOf(label)
			if err != nil {
				return nil, err
			}
			placed := 0
			for _, c := range ch.Cores {
				switch {
				case c.Profile.Label == label:
					c.SetWorkload(workload.Coremark)
				case placed < load.n:
					c.SetWorkload(load.w)
					placed++
				default:
					c.SetWorkload(workload.Idle)
				}
			}
			st, err := s.M.Solve()
			if err != nil {
				return nil, err
			}
			cs, err := st.CoreState(label)
			if err != nil {
				return nil, err
			}
			chs, err := st.ChipState(ch.Profile.Label)
			if err != nil {
				return nil, err
			}
			power = float64(chs.Power)
			row = append(row, report.F(float64(cs.Freq), 0))
		}
		samples.Rows = append(samples.Rows, append([]string{report.F(power, 1)}, row...))
	}
	s.M.ResetAll()

	fits := &report.Table{
		Title:  "Fig. 12a fits — f = −k'·P + b per core",
		Header: []string{"core", "k' (MHz/W)", "b (MHz)", "R²"},
		Note:   "paper shape: each additional watt degrades frequency by about two MHz; fits are linear",
	}
	for _, c := range s.M.AllCores() {
		fp := mgr.Preds.Freq[c.Profile.Label]
		fits.AddRow(c.Profile.Label, report.F(fp.MHzPerWatt(), 2),
			report.F(fp.Fit.Intercept, 0), report.F(fp.Fit.R2, 4))
	}
	return &report.Artifact{
		ID:      "fig12a",
		Caption: "ATM fine-tuned core frequency is linear in total chip power (Eq. 1)",
		Tables:  []*report.Table{samples, fits},
	}, nil
}

// fig12bApps are the applications whose performance lines the figure
// shows: the compute-bound and memory-bound extremes plus two criticals.
var fig12bApps = []string{"x264", "squeezenet", "gcc", "mcf"}

// Fig12b regenerates the performance-vs-frequency predictor lines.
func (s *Suite) Fig12b() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}
	base := float64(mgr.Preds.Base)
	lines := &report.Table{
		Title:  "Fig. 12b — relative performance vs core frequency",
		Header: append([]string{"freq (MHz)"}, fig12bApps...),
		Note:   "paper shape: linear; memory-bound mcf nearly flat, compute-bound x264 steepest",
	}
	for f := base; f <= base*1.22; f += 200 {
		row := []string{report.F(f, 0)}
		for _, name := range fig12bApps {
			row = append(row, report.F(workload.MustByName(name).RelPerf(f, base), 3))
		}
		lines.AddRow(row...)
	}
	fits := &report.Table{
		Title:  "Fig. 12b fits — perf = slope·f + intercept",
		Header: []string{"app", "slope (per GHz)", "R²"},
	}
	for _, name := range fig12bApps {
		pp := mgr.Preds.Perf[name]
		fits.AddRow(name, report.F(pp.Fit.Slope*1000, 3), report.F(pp.Fit.R2, 4))
	}
	return &report.Artifact{
		ID:      "fig12b",
		Caption: "Application performance scales linearly with frequency, slope set by memory behaviour",
		Tables:  []*report.Table{lines, fits},
	}, nil
}

// Table2 regenerates the workload classification.
func (s *Suite) Table2() (*report.Artifact, error) {
	t := &report.Table{
		Title:  "Table II — critical/background classification by memory interference",
		Header: []string{"workload", "role", "memory intensive", "suite"},
	}
	for _, p := range workload.Realistic() {
		t.AddRow(p.Name, string(p.Role), fmt.Sprintf("%v", p.MemIntensive()), string(p.Suite))
	}
	return &report.Artifact{
		ID:      "table2",
		Caption: "Classifying critical and background applications by memory-subsystem interference",
		Tables:  []*report.Table{t},
	}, nil
}

// fig14Scenarios is the scenario ladder of the evaluation.
var fig14Scenarios = []manage.Scenario{
	manage.ScenarioStaticMargin,
	manage.ScenarioDefaultATM,
	manage.ScenarioFineTunedUnmanaged,
	manage.ScenarioManagedMax,
	manage.ScenarioManagedBalanced,
}

// Fig14 regenerates the management evaluation: critical-application
// improvement over the static margin for every ⟨critical:background⟩
// pair under every scenario.
func (s *Suite) Fig14() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Fig. 14 — critical application improvement over static margin",
		Header: []string{"critical:background", "default ATM", "fine-tuned unmanaged",
			"managed max", "managed balanced", "balanced bg setting", "QoS ≥10% met"},
		Note: "paper shape: default ATM ≈6.1%, unmanaged fine-tuned ≈10.2%, managed-max ≈15.2%, balanced guarantees ≥10%",
	}
	sums := map[manage.Scenario]float64{}
	pairs := manage.Fig14Pairs()
	for _, pair := range pairs {
		row := []string{pair.Label()}
		var balanced manage.Evaluation
		for _, sc := range fig14Scenarios {
			ev, err := mgr.Evaluate(sc, pair, s.opts.QoSTarget)
			if err != nil {
				return nil, err
			}
			sums[sc] += ev.Improvement()
			switch sc {
			case manage.ScenarioStaticMargin:
				// baseline; no column
			case manage.ScenarioManagedBalanced:
				balanced = ev
				row = append(row, report.Pct(ev.Improvement()))
			default:
				row = append(row, report.Pct(ev.Improvement()))
			}
		}
		row = append(row, balanced.BackgroundSetting, fmt.Sprintf("%v", balanced.MeetsQoS))
		t.AddRow(row...)
	}
	n := float64(len(pairs))
	t.AddRow("AVERAGE",
		report.Pct(sums[manage.ScenarioDefaultATM]/n),
		report.Pct(sums[manage.ScenarioFineTunedUnmanaged]/n),
		report.Pct(sums[manage.ScenarioManagedMax]/n),
		report.Pct(sums[manage.ScenarioManagedBalanced]/n),
		"", "")
	return &report.Artifact{
		ID:      "fig14",
		Caption: "Managing the fine-tuned system maximizes or guarantees critical application performance",
		Tables:  []*report.Table{t},
	}, nil
}
