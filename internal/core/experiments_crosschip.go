package core

import (
	"repro/internal/chip"
	"repro/internal/manage"
	"repro/internal/report"
)

// ExtCrossChip evaluates the scheduling move the paper's single-chip
// co-location leaves on the table: the two sockets have separate power
// rails, so migrating the background jobs to the other chip removes the
// DC-drop interference entirely — the critical application gets
// idle-chip frequency on its socket while the co-runners keep full
// fine-tuned ATM speed on theirs. The cost is whatever cross-socket
// traffic the jobs generate, which this power-centric model does not
// charge; the experiment therefore reports the *upper bound* the shared
// rail takes away.
func (s *Suite) ExtCrossChip() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}
	dep, err := s.Deployment()
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Cross-chip scheduling: background jobs moved to the other socket",
		Header: []string{"pair", "managed-max (same chip)", "cross-chip critical",
			"cross-chip bg perf", "managed-max bg perf"},
		Note: "separate rails end the frequency interference: the critical core sees an idle chip " +
			"while co-runners run unthrottled — an upper bound ignoring cross-socket memory traffic",
	}
	for _, pair := range manage.Fig14Pairs() {
		// Baseline: the paper's managed-max on P0.
		evMax, err := mgr.Evaluate(manage.ScenarioManagedMax, pair, 0)
		if err != nil {
			return nil, err
		}

		// Cross-chip: critical alone on the fastest P0 core, every P1
		// core running the background at full fine-tuned ATM.
		s.M.ResetAll()
		base := float64(s.M.Profile().Params().FStatic)
		critCore := evMax.CriticalCore
		for _, core := range s.M.AllCores() {
			label := core.Profile.Label
			cfg, ok := dep.Config(label)
			if !ok {
				continue
			}
			core.SetMode(chip.ModeATM)
			if err := s.M.ProgramCPM(label, cfg.Reduction); err != nil {
				return nil, err
			}
			switch {
			case label == critCore:
				core.SetWorkload(pair.Critical)
			case label[:2] == "P1":
				core.SetWorkload(pair.Background)
			}
		}
		st, err := s.M.Solve()
		if err != nil {
			return nil, err
		}
		cs, err := st.CoreState(critCore)
		if err != nil {
			return nil, err
		}
		critPerf := pair.Critical.RelPerf(float64(cs.Freq), base)
		var bgSum float64
		var bgN int
		p1, err := st.ChipState("P1")
		if err != nil {
			return nil, err
		}
		for _, c := range p1.Cores {
			bgSum += pair.Background.RelPerf(float64(c.Freq), base)
			bgN++
		}
		s.M.ResetAll()

		t.AddRow(pair.Label(),
			report.Pct(evMax.Improvement()),
			report.Pct(critPerf-1),
			report.Pct(bgSum/float64(bgN)-1),
			report.Pct(evMax.BackgroundPerf-1))
	}
	return &report.Artifact{
		ID:      "ext-cross-chip",
		Caption: "The second socket's separate rail beats same-chip management on both axes at once",
		Tables:  []*report.Table{t},
	}, nil
}
