package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden artifact snapshots under testdata/.
var update = flag.Bool("update", false, "rewrite golden artifact snapshots")

// TestGoldenArtifacts snapshot-tests every artifact's rendered text
// against testdata/*.golden. The whole pipeline is seeded, so any drift
// in a snapshot is a real behaviour change in the model, the
// methodology, or the rendering — exactly the regression surface this
// repository exists to pin. Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenArtifacts -update
func TestGoldenArtifacts(t *testing.T) {
	s := testSuite(t)
	exps := append(s.Experiments(), s.ExtensionExperiments()...)
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			a, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			got := render(t, a)
			path := filepath.Join("testdata", e.ID+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("artifact %s drifted from its golden snapshot.\n--- got ---\n%s\n--- want ---\n%s",
					e.ID, got, want)
			}
		})
	}
}
