package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/silicon"
)

var sharedSuite *Suite

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite == nil {
		s, err := NewReferenceSuite()
		if err != nil {
			t.Fatal(err)
		}
		sharedSuite = s
	}
	return sharedSuite
}

func render(t *testing.T, a *report.Artifact) string {
	t.Helper()
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestStagesAreCached(t *testing.T) {
	s := testSuite(t)
	r1, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("Report not cached")
	}
	d1, err := s.Deployment()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Deployment()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Deployment not cached")
	}
	m1, err := s.Manager()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Manager()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("Manager not cached")
	}
}

func TestTable1ArtifactMatchesPaper(t *testing.T) {
	s := testSuite(t)
	a, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, a)
	if !strings.Contains(out, "16/16 rows match") {
		t.Errorf("Table I artifact does not report a full match:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Errorf("Table I artifact contains mismatched rows:\n%s", out)
	}
}

func TestFig1Shape(t *testing.T) {
	s := testSuite(t)
	a, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	rows := a.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("Fig. 1 has %d schemes", len(rows))
	}
	// The best-case column must be non-decreasing down the schemes.
	prev := 0.0
	for _, row := range rows {
		var v float64
		if _, err := fscan(row[2], &v); err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if v < prev {
			t.Errorf("best-case frequency regressed at %s: %v < %v", row[0], v, prev)
		}
		prev = v
	}
}

func TestFig7HasAllCores(t *testing.T) {
	s := testSuite(t)
	a, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables[0].Rows) != 16 {
		t.Errorf("Fig. 7 has %d rows", len(a.Tables[0].Rows))
	}
}

func TestFig8HasSixCores(t *testing.T) {
	s := testSuite(t)
	a, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables[0].Rows) != 6 {
		t.Errorf("Fig. 8 lists %d failing cores, paper has 6", len(a.Tables[0].Rows))
	}
}

func TestFig10MatrixDimensions(t *testing.T) {
	s := testSuite(t)
	a, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	tbl := a.Tables[0]
	if len(tbl.Header) != 17 { // app column + 16 cores
		t.Errorf("Fig. 10 has %d columns", len(tbl.Header))
	}
	if len(tbl.Rows) < 25 {
		t.Errorf("Fig. 10 has %d application rows", len(tbl.Rows))
	}
	// Top row is the most stressful application (x264).
	if tbl.Rows[0][0] != "x264" {
		t.Errorf("Fig. 10 top row is %s, want x264", tbl.Rows[0][0])
	}
}

func TestFig14AverageLadder(t *testing.T) {
	s := testSuite(t)
	a, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	rows := a.Tables[0].Rows
	avg := rows[len(rows)-1]
	if avg[0] != "AVERAGE" {
		t.Fatalf("last row is %q", avg[0])
	}
	var def, unm, max float64
	if _, err := fscan(strings.TrimSuffix(avg[1], "%"), &def); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(strings.TrimSuffix(avg[2], "%"), &unm); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(strings.TrimSuffix(avg[3], "%"), &max); err != nil {
		t.Fatal(err)
	}
	if !(def < unm && unm < max) {
		t.Errorf("improvement ladder broken: %.1f / %.1f / %.1f", def, unm, max)
	}
	if max < 13 || max > 18 {
		t.Errorf("managed-max average %.1f%%, paper ≈15.2%%", max)
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extension studies are slow")
	}
	s := testSuite(t)
	for _, e := range s.ExtensionExperiments() {
		a, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if out := render(t, a); len(out) < 100 {
			t.Errorf("%s rendered too little", e.ID)
		}
	}
}

func TestSuiteOnGeneratedSilicon(t *testing.T) {
	profile, err := silicon.Generate(5, silicon.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSuite(SuiteOptions{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	// Table I on generated silicon: runs, but naturally does not match
	// the paper.
	a, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables[0].Rows) != 16 {
		t.Errorf("generated Table I has %d rows", len(a.Tables[0].Rows))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	s := testSuite(t)
	if _, err := s.RunExperiment("fig13"); err == nil {
		t.Error("fig13 (a diagram, not data) should be unknown")
	}
}

// fscan parses a float from a cell.
func fscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
