package core

import (
	"fmt"

	"repro/internal/cpm"
	"repro/internal/report"
	"repro/internal/silicon"
	"repro/internal/units"
)

// ExtCPMSites reports each core's five CPM sites (Fig. 3: IFU, ISU,
// FXU, FPU, LLC): which site has the longest synthetic path — and hence
// reports the worst-of-five margin every cycle — and how much slack the
// other sites hold relative to it. The spatial spread is what lets a
// single per-core loop guard unit-level variation.
func (s *Suite) ExtCPMSites() (*report.Artifact, error) {
	p := s.M.Profile().Params()
	t := &report.Table{
		Title:  "CPM site attribution (default configuration, idle supply)",
		Header: []string{"core", "reporting site", "site skews vs worst (ps)", "margin @4.6 GHz (units)"},
		Note:   "the worst of the five sites is reported every cycle; other sites sit a few ps behind",
	}
	for _, core := range s.M.Profile().AllCores() {
		mon := cpm.New(core)
		r := mon.Measure(units.MHz(4600).CycleTime(), p.VRef)
		skews := ""
		for i, sk := range core.SiteSkewPs {
			if i > 0 {
				skews += " "
			}
			skews += fmt.Sprintf("%s:%.1f", silicon.CPMSiteName[i], float64(sk))
		}
		t.AddRow(core.Label, silicon.CPMSiteName[r.WorstSite], skews, fmt.Sprintf("%d", r.Units))
	}
	return &report.Artifact{
		ID:      "ext-cpm-sites",
		Caption: "Five CPMs per core capture spatial variation; the worst site drives the loop",
		Tables:  []*report.Table{t},
	}, nil
}
