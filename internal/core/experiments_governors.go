package core

import (
	"fmt"

	"repro/internal/manage"
	"repro/internal/report"
	"repro/internal/rng"
)

// ExtGovernors evaluates the Fig. 13 policy knob end to end: the same
// managed-max schedule under the default (stress-test limit),
// conservative (robust cores + safety rollback) and aggressive
// (profiled per-application best-fit) governors — measuring both the
// performance each buys and the empirical failure risk each carries,
// checked by re-running correctness trials at the governed
// configurations.
func (s *Suite) ExtGovernors() (*report.Artifact, error) {
	mgr, err := s.Manager()
	if err != nil {
		return nil, err
	}
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	pairs := manage.Fig14Pairs()

	perf := &report.Table{
		Title:  "Governor comparison — managed-max critical improvement",
		Header: []string{"pair", "conservative", "default", "aggressive"},
		Note:   "aggressive uses each application's own profiled limit; conservative adds rollback on non-robust cores",
	}
	sums := map[manage.Governor]float64{}
	govs := []manage.Governor{manage.GovernorConservative, manage.GovernorDefault, manage.GovernorAggressive}
	for _, pair := range pairs {
		row := []string{pair.Label()}
		for _, g := range govs {
			mgr.Governor = g
			ev, err := mgr.Evaluate(manage.ScenarioManagedMax, pair, 0)
			if err != nil {
				mgr.Governor = manage.GovernorDefault
				return nil, err
			}
			sums[g] += ev.Improvement() / float64(len(pairs))
			// Order columns conservative/default/aggressive.
			row = append(row, report.Pct(ev.Improvement()))
		}
		perf.AddRow(row...)
	}
	mgr.Governor = manage.GovernorDefault
	perf.AddRow("AVERAGE",
		report.Pct(sums[manage.GovernorConservative]),
		report.Pct(sums[manage.GovernorDefault]),
		report.Pct(sums[manage.GovernorAggressive]))

	// Risk check: re-run correctness trials at each governor's critical
	// configuration for (a) the profiled application and (b) an
	// unprofiled stand-in (the profiled app's stress +10%) — the
	// aggressive governor is only safe for what was profiled.
	risk := &report.Table{
		Title:  "Failure trials at the governed configuration (most vulnerable core, 200 runs each)",
		Header: []string{"governor", "profiled app failures", "unprofiled (+0.25 stress) failures"},
		Note:   "the aggressive governor's headroom evaporates on unprofiled behaviour — the paper's reason to gate it on profiling",
	}
	pair := pairs[0] // squeezenet:lu_cb
	// The risk shows on the most application-vulnerable core: the one
	// with the largest uBench → thread-worst rollback.
	fastest := rep.Cores[0].Core
	worstV := -1
	for _, cr := range rep.Cores {
		if v := cr.UBenchLimit - cr.ThreadWorst; v > worstV {
			worstV = v
			fastest = cr.Core
		}
	}
	src := rng.New(31)
	for _, g := range govs {
		cr, ok := rep.Core(fastest)
		if !ok {
			return nil, fmt.Errorf("core: no characterization for %s", fastest)
		}
		red := 0
		switch g {
		case manage.GovernorDefault:
			cfg, _ := s.dep.Config(fastest)
			red = cfg.Reduction
		case manage.GovernorConservative:
			cfg, _ := s.dep.Config(fastest)
			red = cfg.Reduction
			if cr.ThreadWorst != cr.UBenchLimit { // not robust
				red -= 2
				if red < 0 {
					red = 0
				}
			}
		case manage.GovernorAggressive:
			red = cr.AppLimit[pair.Critical.Name]
		}
		if err := s.M.ProgramCPM(fastest, red); err != nil {
			return nil, err
		}
		failProf, failUnprof := 0, 0
		unprofiled := pair.Critical
		unprofiled.Name = pair.Critical.Name + "-v2"
		unprofiled.StressScore = min1(pair.Critical.StressScore + 0.25)
		for i := 0; i < 200; i++ {
			r1, err := s.M.RunTrial(fastest, pair.Critical, src.SplitIndex(g.String()+"/p", i))
			if err != nil {
				return nil, err
			}
			if !r1.OK() {
				failProf++
			}
			r2, err := s.M.RunTrial(fastest, unprofiled, src.SplitIndex(g.String()+"/u", i))
			if err != nil {
				return nil, err
			}
			if !r2.OK() {
				failUnprof++
			}
		}
		risk.AddRow(g.String(), fmt.Sprintf("%d/200", failProf), fmt.Sprintf("%d/200", failUnprof))
	}
	if err := s.M.ProgramCPM(fastest, 0); err != nil {
		return nil, err
	}

	return &report.Artifact{
		ID:      "ext-governors",
		Caption: "The governor ladder trades performance against robustness to unprofiled behaviour",
		Tables:  []*report.Table{perf, risk},
	}, nil
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
