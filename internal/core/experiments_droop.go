package core

import (
	"fmt"

	"repro/internal/pdn"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// ExtDroopSync characterizes the voltage-virus mechanism (Sec. VII-A):
// the first-droop depth as a function of how many cores synchronize
// their issue-throttle power surges, through the PDN's second-order
// response. It is the circuit-level "why" behind the virus recipe — the
// synchronized step is what produces worst-case noise, and the part of
// the droop faster than the loop's response is what the fine-tuned
// margin must still absorb.
func (s *Suite) ExtDroopSync() (*report.Artifact, error) {
	p := s.M.Profile().Params()
	pp := s.M.Chips[0].PDN
	pm := s.M.Power()
	virus := workload.VoltageVirus()

	// Per-core dynamic current swing of the virus at the stress corner.
	st, err := func() (units.Volt, error) {
		m := s.M
		m.ResetAll()
		defer m.ResetAll()
		for _, core := range m.Chips[0].Cores {
			core.SetWorkload(workload.Daxpy)
		}
		sol, err := m.Solve()
		if err != nil {
			return 0, err
		}
		return sol.Chips[0].Supply, nil
	}()
	if err != nil {
		return nil, err
	}
	perCoreAmps := pm.DynCurrentAmps(workload.Daxpy, 4500, st)

	t := &report.Table{
		Title: "First-droop depth vs synchronized cores (voltage-virus current steps)",
		Header: []string{"synchronized cores", "current step (A)", "first droop (mV)",
			"uncovered @1ns droop (mV)", "margin cost (ps at 4.6 GHz)"},
		Note: "superposition with losses: aligning all 8 cores roughly triples the per-core droop; " +
			"the uncovered fraction is what erodes the fine-tuned margin",
	}
	for _, n := range []int{1, 2, 4, 8} {
		// droop(n synchronized cores) = single-core droop × SyncFactor(n).
		droop := units.Volt(float64(pp.FirstDroopPeak(perCoreAmps*0.9)) * pdn.SyncFactor(n))
		uncovered := units.Volt(float64(droop) * pp.UncoveredFraction(1.0))
		// Margin cost: delay increase of the true path under the
		// uncovered sag, at the 4.6 GHz operating point.
		cost := 217.4 * (p.Scale(p.VRef-uncovered) - 1)
		t.AddRow(fmt.Sprintf("%d", n),
			report.F(perCoreAmps*0.9*float64(n), 1),
			report.F(droop.Millivolts(), 1),
			report.F(uncovered.Millivolts(), 1),
			report.F(cost, 1))
	}

	// The virus recipe summary.
	t2 := &report.Table{
		Title:  "Voltage-virus recipe (Sec. VII-A)",
		Header: []string{"component", "value"},
	}
	t2.AddRow("issue throttle", fmt.Sprintf("1 of every %d cycles, synchronized", virus.ThrottlePeriod))
	t2.AddRow("SMT pressure", fmt.Sprintf("%d threads/core (32 threads on 8 cores)", virus.ThreadsPerCore))
	t2.AddRow("sustained power component", "daxpy-class, ~160 W chip, ~70 °C")
	t2.AddRow("current step (8 cores aligned)", report.F(virus.CurrentStepAmps(8, perCoreAmps*float64(st), float64(st)), 1)+" A")
	return &report.Artifact{
		ID:      "ext-droop-sync",
		Caption: "Synchronized current steps are the worst-case noise generator the deployment procedure must cover",
		Tables:  []*report.Table{t, t2},
	}, nil
}
