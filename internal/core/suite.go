// Package core is the paper's primary contribution assembled into one
// pipeline: fine-tune the per-core ATM control loops of a POWER7+-class
// server, characterize their operating limits, deploy a stress-tested
// configuration, and manage the exposed variability for predictable
// application performance.
//
// The Suite type owns the end-to-end flow and regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §5 for the
// experiment index). cmd/atmfigures and the repository's benchmark
// harness are thin callers of this package.
package core

import (
	"fmt"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/manage"
	"repro/internal/report"
	"repro/internal/silicon"
	"repro/internal/tuning"
)

// SuiteOptions configures the experiment pipeline.
type SuiteOptions struct {
	// Profile selects the silicon; nil uses the paper-calibrated
	// reference server.
	Profile *silicon.ServerProfile
	// Charact tunes the characterization stage.
	Charact charact.Options
	// Tuning tunes the stress-test deployment stage.
	Tuning tuning.Options
	// QoSTarget is the balanced-mode improvement goal (default 0.10,
	// the paper's 10%).
	QoSTarget float64
	// FleetWorkers bounds the worker pool the fleet-backed extension
	// studies (ext-montecarlo) fan out on. Every value produces
	// byte-identical artifacts; it only changes wall-clock time.
	// Default 4.
	FleetWorkers int
}

// Suite is the materialized pipeline: machine, characterization report,
// deployment, and manager. Construct with NewSuite; stages run lazily
// and are cached.
type Suite struct {
	opts SuiteOptions

	M   *chip.Machine
	rep *charact.Report
	dep *tuning.Deployment
	mgr *manage.Manager
}

// NewSuite builds the machine for the experiment pipeline.
func NewSuite(opts SuiteOptions) (*Suite, error) {
	if opts.Profile == nil {
		opts.Profile = silicon.Reference()
	}
	if opts.QoSTarget == 0 {
		opts.QoSTarget = 0.10
	}
	if opts.FleetWorkers == 0 {
		opts.FleetWorkers = 4
	}
	m, err := chip.New(opts.Profile, chip.Options{})
	if err != nil {
		return nil, err
	}
	return &Suite{opts: opts, M: m}, nil
}

// NewReferenceSuite is NewSuite over the paper-calibrated silicon with
// default options.
func NewReferenceSuite() (*Suite, error) { return NewSuite(SuiteOptions{}) }

// Report runs (once) and returns the full characterization.
func (s *Suite) Report() (*charact.Report, error) {
	if s.rep == nil {
		rep, err := charact.Characterize(s.M, s.opts.Charact)
		if err != nil {
			return nil, fmt.Errorf("core: characterization failed: %w", err)
		}
		if err := rep.Validate(); err != nil {
			return nil, err
		}
		s.rep = rep
	}
	return s.rep, nil
}

// Deployment runs (once) and returns the stress-test deployment.
func (s *Suite) Deployment() (*tuning.Deployment, error) {
	if s.dep == nil {
		dep, err := tuning.Deploy(s.M, s.opts.Tuning)
		if err != nil {
			return nil, fmt.Errorf("core: deployment failed: %w", err)
		}
		s.dep = dep
	}
	return s.dep, nil
}

// Manager runs (once) and returns the managed-ATM scheduler, with
// predictors calibrated at the deployed configuration.
func (s *Suite) Manager() (*manage.Manager, error) {
	if s.mgr == nil {
		rep, err := s.Report()
		if err != nil {
			return nil, err
		}
		dep, err := s.Deployment()
		if err != nil {
			return nil, err
		}
		mgr, err := manage.NewManager(s.M, dep, rep)
		if err != nil {
			return nil, fmt.Errorf("core: manager construction failed: %w", err)
		}
		s.mgr = mgr
	}
	return s.mgr, nil
}

// Experiment is a named regeneration entry.
type Experiment struct {
	ID      string
	Caption string
	Run     func() (*report.Artifact, error)
}

// Experiments lists every paper artifact the suite can regenerate, in
// paper order.
func (s *Suite) Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Frequency under chip-wide static, per-core static, default ATM, fine-tuned ATM", s.Fig1},
		{"fig2", "SqueezeNet inference latency under margin settings and schedules", s.Fig2},
		{"fig4b", "Pre-set CPM inserted delays of the two chips", s.Fig4b},
		{"fig5", "Frequency vs CPM delay reduction for example cores", s.Fig5},
		{"fig7", "Idle-limit distributions and frequencies per core", s.Fig7},
		{"table1", "ATM reconfiguration limits under idle / uBench / realistic workloads", s.Table1},
		{"fig8", "uBench rollback distributions for the failing cores", s.Fig8},
		{"fig9", "CPM rollback demanded by x264 vs gcc", s.Fig9},
		{"fig10", "Average CPM rollback per application and core", s.Fig10},
		{"fig11", "Deployed core frequencies after the test-time stress procedure", s.Fig11},
		{"fig12a", "Core frequency vs chip power (Eq. 1 predictor)", s.Fig12a},
		{"fig12b", "Application performance vs core frequency", s.Fig12b},
		{"table2", "Critical/background workload classification", s.Table2},
		{"fig14", "Critical application performance under management scenarios", s.Fig14},
	}
}

// RunExperiment regenerates one artifact by ID, searching the paper
// experiments and the extension studies.
func (s *Suite) RunExperiment(id string) (*report.Artifact, error) {
	for _, e := range append(s.Experiments(), s.ExtensionExperiments()...) {
		if e.ID == id {
			return e.Run()
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q (see Experiments and ExtensionExperiments)", id)
}
