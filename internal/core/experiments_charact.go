package core

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/silicon"
	"repro/internal/units"
	"repro/internal/workload"
)

// idleSupply returns each chip's supply with the whole machine idle at
// the current CPM configuration.
func (s *Suite) idleSupply() (map[string]units.Volt, error) {
	st, err := s.M.Solve()
	if err != nil {
		return nil, err
	}
	out := map[string]units.Volt{}
	for _, cs := range st.Chips {
		out[cs.Label] = cs.Supply
	}
	return out, nil
}

// Fig1 regenerates the headline comparison: the frequency a core gets
// under (a) the chip-wide static margin, (b) per-core static ⟨v,f⟩
// setpoints, (c) default ATM, and (d) fine-tuned ATM — each with its
// best-case (idle) and worst-case (maximum DC drop) bounds.
func (s *Suite) Fig1() (*report.Artifact, error) {
	p := s.M.Profile().Params()
	dep, err := s.Deployment()
	if err != nil {
		return nil, err
	}

	// Per-core static setpoints from the silicon model.
	var stMin, stMax units.MHz = 100000, 0
	for _, c := range s.M.Profile().AllCores() {
		f := c.StaticPerCoreFreq()
		stMin = units.Min(stMin, f)
		stMax = units.Max(stMax, f)
	}

	// Default ATM: reduction 0 everywhere; idle vs all-daxpy corners.
	s.M.ResetAll()
	idleSt, err := s.M.Solve()
	if err != nil {
		return nil, err
	}
	for _, core := range s.M.AllCores() {
		core.SetWorkload(workload.Daxpy)
	}
	loadSt, err := s.M.Solve()
	if err != nil {
		return nil, err
	}
	s.M.ResetAll()
	var defIdleMax, defLoadMin units.MHz = 0, 100000
	for _, cs := range idleSt.Chips {
		for _, c := range cs.Cores {
			defIdleMax = units.Max(defIdleMax, c.Freq)
		}
	}
	for _, cs := range loadSt.Chips {
		for _, c := range cs.Cores {
			defLoadMin = units.Min(defLoadMin, c.Freq)
		}
	}

	// Fine-tuned: the deployment's idle/loaded corners.
	var ftIdleMax, ftIdleMin, ftLoadMin units.MHz = 0, 100000, 100000
	for _, cfg := range dep.Configs {
		ftIdleMax = units.Max(ftIdleMax, cfg.IdleFreq)
		ftIdleMin = units.Min(ftIdleMin, cfg.IdleFreq)
		ftLoadMin = units.Min(ftLoadMin, cfg.LoadedFreq)
	}

	t := &report.Table{
		Title:  "Fig. 1 — frequency bounds by margin scheme",
		Header: []string{"scheme", "worst case (MHz)", "best case (MHz)"},
		Note: "paper shape: 4.2 GHz flat; ~4.5 max static per-core; 4.4–4.6 default ATM; " +
			"fine-tuned spans ~4.5 loaded to ~5.0 idle",
	}
	t.AddRow("chip-wide static margin", report.F(float64(p.FStatic), 0), report.F(float64(p.FStatic), 0))
	t.AddRow("per-core static <v,f>", report.F(float64(stMin), 0), report.F(float64(stMax), 0))
	t.AddRow("default ATM", report.F(float64(defLoadMin), 0), report.F(float64(defIdleMax), 0))
	t.AddRow("fine-tuned ATM", report.F(float64(ftLoadMin), 0), report.F(float64(ftIdleMax), 0))

	return &report.Artifact{
		ID:      "fig1",
		Caption: "Fine-tuning ATM exposes process and voltage variation and lifts frequency beyond per-core static setpoints",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig4b regenerates the preset inserted-delay chart: the manufacturer
// calibration values per core, whose ~3x spread indicates significant
// process variation.
func (s *Suite) Fig4b() (*report.Artifact, error) {
	t := &report.Table{
		Title:  "Fig. 4b — pre-set CPM inserted delay per core",
		Header: []string{"core", "preset taps"},
		Note:   "paper shape: presets range ~7–20, nearly 3x, fast cores deepest",
	}
	lo, hi := 1<<30, 0
	for _, c := range s.M.Profile().AllCores() {
		t.AddRow(c.Label, fmt.Sprintf("%d", c.PresetTaps))
		if c.PresetTaps < lo {
			lo = c.PresetTaps
		}
		if c.PresetTaps > hi {
			hi = c.PresetTaps
		}
	}
	t.Note += fmt.Sprintf("; regenerated range %d–%d", lo, hi)
	return &report.Artifact{
		ID:      "fig4b",
		Caption: "Wide variation of pre-set inserted delays indicates significant process variation",
		Tables:  []*report.Table{t},
	}, nil
}

// fig5Cores are the example cores whose reduction sweeps the figure
// shows; they cover the non-linearity anecdotes of Sec. IV-C.
var fig5Cores = []string{"P0C0", "P0C4", "P1C3", "P1C6"}

// Fig5 regenerates the frequency-vs-reduction sweep for the example
// cores at the idle operating point.
func (s *Suite) Fig5() (*report.Artifact, error) {
	s.M.ResetAll()
	supply, err := s.idleSupply()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Fig. 5 — settled frequency (MHz) vs CPM delay reduction, system idle",
		Header: append([]string{"reduction"}, fig5Cores...),
		Note:   "paper shape: ~4.6 GHz at 0 for all; non-uniform per-step jumps; >5 GHz at deep reductions",
	}
	maxIdle := 0
	for _, label := range fig5Cores {
		idle, _, _, _, ok := silicon.ReferenceTableI(label)
		if ok && idle > maxIdle {
			maxIdle = idle
		}
	}
	for r := 0; r <= maxIdle; r++ {
		row := []string{fmt.Sprintf("%d", r)}
		for _, label := range fig5Cores {
			c := s.M.Profile().FindCore(label)
			if c == nil {
				return nil, fmt.Errorf("core: no core %s", label)
			}
			idle, _, _, _, _ := silicon.ReferenceTableI(label)
			if r > idle {
				row = append(row, "-")
				continue
			}
			f, err := c.SettledFreq(r, supply[label[:2]])
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(float64(f), 0))
		}
		t.AddRow(row...)
	}
	return &report.Artifact{
		ID:      "fig5",
		Caption: "Reducing the CPM inserted delay makes the control loop perceive more margin and raise frequency",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig7 regenerates the idle-limit distributions: per core, the fraction
// of trials at each observed safe configuration and the frequency at the
// idle limit.
func (s *Suite) Fig7() (*report.Artifact, error) {
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Fig. 7 — idle-limit distribution and frequency per core",
		Header: []string{"core", "idle limit", "distribution (reduction:frac)", "freq at limit (MHz)"},
		Note:   "paper shape: distributions cover ≤2 configurations; most cores exceed 5 GHz",
	}
	for _, c := range rep.Cores {
		dist := ""
		for i, v := range c.Idle.Hist.Support() {
			if i > 0 {
				dist += " "
			}
			dist += fmt.Sprintf("%d:%.2f", v, c.Idle.Hist.Frac(v))
		}
		t.AddRow(c.Core, fmt.Sprintf("%d", c.Idle.Limit), dist, report.F(float64(c.IdleFreq), 0))
	}
	return &report.Artifact{
		ID:      "fig7",
		Caption: "The most aggressive safe CPM delay reduction distributes over a narrow range",
		Tables:  []*report.Table{t},
	}, nil
}

// Table1 regenerates the paper's Table I and diffs it against the
// published values.
func (s *Suite) Table1() (*report.Artifact, error) {
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Table I — ATM reconfiguration limits (measured vs paper)",
		Header: []string{"core", "idle", "uBench", "thread normal", "thread worst", "matches paper"},
	}
	mismatches := 0
	for _, row := range rep.TableI() {
		pi, pu, pn, pw, ok := silicon.ReferenceTableI(row.Core)
		match := ok && row.Idle == pi && row.UBench == pu && row.Normal == pn && row.Worst == pw
		if !match {
			mismatches++
		}
		t.AddRow(row.Core,
			fmt.Sprintf("%d", row.Idle), fmt.Sprintf("%d", row.UBench),
			fmt.Sprintf("%d", row.Normal), fmt.Sprintf("%d", row.Worst),
			fmt.Sprintf("%v", match))
	}
	t.Note = fmt.Sprintf("%d/%d rows match the published Table I exactly", len(rep.TableI())-mismatches, len(rep.TableI()))
	return &report.Artifact{
		ID:      "table1",
		Caption: "ATM reconfiguration limits under system idle, uBench, and real-world applications",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig8 regenerates the uBench rollback distributions for the cores whose
// idle limit does not survive the micro-benchmarks.
func (s *Suite) Fig8() (*report.Artifact, error) {
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Fig. 8 — uBench rollback from the idle limit (failing cores only)",
		Header: []string{"core", "idle limit", "uBench limit", "rollback distribution (steps:frac)"},
		Note:   "paper shape: six cores roll back, by one to three steps",
	}
	failing := 0
	for _, c := range rep.Cores {
		if c.Idle.Limit == c.UBenchLimit {
			continue
		}
		failing++
		dist := ""
		for i, v := range c.UBenchRollback.Support() {
			if i > 0 {
				dist += " "
			}
			dist += fmt.Sprintf("%d:%.2f", v, c.UBenchRollback.Frac(v))
		}
		t.AddRow(c.Core, fmt.Sprintf("%d", c.Idle.Limit), fmt.Sprintf("%d", c.UBenchLimit), dist)
	}
	t.Note += fmt.Sprintf("; regenerated: %d cores", failing)
	return &report.Artifact{
		ID:      "fig8",
		Caption: "Some cores' idle limits fail to capture long delay paths exercised by uBench",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig9 regenerates the x264-vs-gcc rollback comparison.
func (s *Suite) Fig9() (*report.Artifact, error) {
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Fig. 9 — CPM delay rollback from the uBench limit: x264 vs gcc",
		Header: []string{"core", "x264 avg rollback", "gcc avg rollback"},
		Note:   "paper shape: x264 demands consistently larger rollback than gcc",
	}
	for _, c := range rep.Cores {
		t.AddRow(c.Core, report.F(c.AppRollbackMean["x264"], 2), report.F(c.AppRollbackMean["gcc"], 2))
	}
	return &report.Artifact{
		ID:      "fig9",
		Caption: "x264 stresses ATM more heavily and needs a more conservative CPM configuration than gcc",
		Tables:  []*report.Table{t},
	}, nil
}

// Fig10 regenerates the full rollback heatmap: applications (rows,
// most stressful first) × cores (columns, most robust last).
func (s *Suite) Fig10() (*report.Artifact, error) {
	rep, err := s.Report()
	if err != nil {
		return nil, err
	}
	cores := rep.RobustnessRank() // most vulnerable first, most robust last
	apps := append([]workload.Profile(nil), workload.Realistic()...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].StressScore > apps[j].StressScore })

	t := &report.Table{
		Title:  "Fig. 10 — average CPM rollback from the uBench limit per <app, core>",
		Header: append([]string{"app \\ core"}, cores...),
		Note:   "paper shape: x264/ferret rows on top need most rollback; right-hand cores are robust to everything",
	}
	for _, app := range apps {
		row := []string{app.Name}
		for _, label := range cores {
			c, ok := rep.Core(label)
			if !ok {
				return nil, fmt.Errorf("core: missing report for %s", label)
			}
			row = append(row, report.F(c.AppRollbackMean[app.Name], 1))
		}
		t.AddRow(row...)
	}
	return &report.Artifact{
		ID:      "fig10",
		Caption: "Application stress is consistent across cores; core robustness is consistent across applications",
		Tables:  []*report.Table{t},
	}, nil
}
