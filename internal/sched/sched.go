// Package sched is a discrete-event job scheduler over the simulated
// server: the OS-level counterpart of the paper's Sec. VII management
// scheme. Where internal/manage evaluates steady-state co-locations
// (Fig. 14), this package runs *dynamic* traces — Poisson arrivals of
// latency-critical and background jobs — under the competing policies,
// and measures what the end user of a fine-tuned ATM machine actually
// experiences: critical-job latency distributions, background
// throughput, and energy.
//
// The simulator is event-driven and exact with respect to the platform
// model: whenever the running mix changes (arrival, dispatch,
// completion), the machine's steady state is re-solved and every running
// job's progress rate is updated — so the frequency interference the
// paper manages (total chip power → DC drop → everyone's frequency) is
// fully dynamic here.
package sched

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Policy selects how jobs are placed and clocked.
type Policy int

// Policies.
const (
	// PolicyStatic: ATM off, every core at the 4.2 GHz p-state, jobs
	// placed on any free core — the predictable baseline.
	PolicyStatic Policy = iota
	// PolicyUnmanaged: cores at their deployed fine-tuned ATM
	// configuration, but placement is variation-blind (lowest free
	// core index) and co-runners are never throttled.
	PolicyUnmanaged
	// PolicyManaged: the paper's scheme — critical jobs take the
	// fastest free cores, background jobs the slowest, and background
	// cores are throttled to the 4.2 GHz p-state while any critical
	// job is resident (freeing power budget for the critical cores).
	PolicyManaged
	// PolicyOndemand: ATM off, the stock ondemand OS governor drives
	// each core's p-state — busy cores at 4.2 GHz, idle cores walked
	// down the ladder. The paper's static baseline runs "the stock
	// DVFS OS governors" (Sec. VII-D); this policy is that baseline
	// with its idle-power savings included.
	PolicyOndemand
)

func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyUnmanaged:
		return "unmanaged-atm"
	case PolicyManaged:
		return "managed-atm"
	case PolicyOndemand:
		return "static-ondemand"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Class is a job's scheduling class.
type Class int

// Classes.
const (
	ClassCritical Class = iota
	ClassBackground
)

func (c Class) String() string {
	if c == ClassCritical {
		return "critical"
	}
	return "background"
}

// Job is one unit of work.
type Job struct {
	ID       int
	Class    Class
	Workload workload.Profile
	// ServiceSec is the job's duration on a 4.2 GHz static-margin core.
	ServiceSec float64
	// ArrivalSec is when the job enters the system.
	ArrivalSec float64
}

// JobRecord is a completed job's accounting.
type JobRecord struct {
	Job
	StartSec  float64
	FinishSec float64
	Core      string
}

// Sojourn returns the job's end-to-end latency (queue + service).
func (r JobRecord) Sojourn() float64 { return r.FinishSec - r.ArrivalSec }

// Speedup returns the achieved service speedup over the static baseline
// (service time shrinks when the core runs above 4.2 GHz).
func (r JobRecord) Speedup() float64 {
	service := r.FinishSec - r.StartSec
	if service <= 0 {
		return 0
	}
	return r.ServiceSec / service
}

// Options configures a run.
type Options struct {
	Policy Policy
	// ChipLabel confines the workload to one chip (the paper
	// co-locates on P0). Default "P0".
	ChipLabel string
	// HorizonSec ends the arrival process; the run drains afterwards.
	// Default 300 s.
	HorizonSec float64
	// CritRate and BGRate are Poisson arrival rates (jobs/s).
	// Defaults 0.08 and 0.5.
	CritRate, BGRate float64
	// CritServiceSec and BGServiceSec are mean service demands at the
	// static baseline (exponential). Defaults 2 s and 10 s.
	CritServiceSec, BGServiceSec float64
	// Seed drives arrivals and service draws. Default 1.
	Seed uint64
	// Obs, when non-nil, counts dispatches and completions by class and
	// throttle transitions. Nil (the default) disables collection.
	Obs *obs.Registry
	// Trace, when non-nil, records per-job spans and scheduler decisions
	// on the simulated clock (microseconds of simulated time), viewable
	// in Perfetto with one track per core.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.ChipLabel == "" {
		o.ChipLabel = "P0"
	}
	if o.HorizonSec == 0 {
		o.HorizonSec = 300
	}
	if o.CritRate == 0 {
		o.CritRate = 0.08
	}
	if o.BGRate == 0 {
		o.BGRate = 0.5
	}
	if o.CritServiceSec == 0 {
		o.CritServiceSec = 2
	}
	if o.BGServiceSec == 0 {
		o.BGServiceSec = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is a run's aggregate outcome.
type Result struct {
	Policy    Policy
	Completed []JobRecord
	// CritLatency and BGLatency summarize sojourn times per class.
	CritLatency stats.Summary
	BGLatency   stats.Summary
	// CritSpeedup is the mean achieved service speedup of critical jobs
	// over the static baseline.
	CritSpeedup float64
	// BGThroughput is completed background jobs per second.
	BGThroughput float64
	// EnergyJ is the chip's integrated energy over the run.
	EnergyJ float64
	// EnergyPerJobJ is EnergyJ divided by all completed jobs.
	EnergyPerJobJ float64
	// MakespanSec is the time the last job finished.
	MakespanSec float64
}

// GenerateTrace draws a reproducible job trace from the options.
func GenerateTrace(o Options, src *rng.Source) []Job {
	o = o.withDefaults()
	crit := workload.Critical()
	bg := workload.Background()
	var jobs []Job
	id := 0
	gen := func(class Class, rate, meanSvc float64, pool []workload.Profile, s *rng.Source) {
		t := 0.0
		for {
			t += s.Exp(rate)
			if t >= o.HorizonSec {
				return
			}
			jobs = append(jobs, Job{
				ID:         id,
				Class:      class,
				Workload:   pool[s.Intn(len(pool))],
				ServiceSec: s.Exp(1 / meanSvc),
				ArrivalSec: t,
			})
			id++
		}
	}
	gen(ClassCritical, o.CritRate, o.CritServiceSec, crit, src.Split("crit"))
	gen(ClassBackground, o.BGRate, o.BGServiceSec, bg, src.Split("bg"))
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ArrivalSec < jobs[j].ArrivalSec })
	for i := range jobs {
		jobs[i].ID = i
	}
	return jobs
}

// Simulator executes traces on a deployed machine.
type Simulator struct {
	m     *chip.Machine
	dep   *tuning.Deployment
	chipL string

	// fast-to-slow core order (deployment speed ranking, restricted to
	// the managed chip).
	bySpeed []string

	// ob is the run's observability handle set, resolved by Run from
	// Options. The zero value is the disabled plane.
	ob schedObs
}

// schedObs is the scheduler's pre-resolved handle set; all-nil (the
// zero value) disables collection.
type schedObs struct {
	tr       *obs.Tracer
	dispCrit *obs.Counter
	dispBG   *obs.Counter
	doneCrit *obs.Counter
	doneBG   *obs.Counter
	thrOn    *obs.Counter
	thrOff   *obs.Counter
}

func newSchedObs(r *obs.Registry, tr *obs.Tracer) schedObs {
	if r == nil {
		return schedObs{tr: tr}
	}
	return schedObs{
		tr:       tr,
		dispCrit: r.Counter("sched_dispatched_total", "class", "critical"),
		dispBG:   r.Counter("sched_dispatched_total", "class", "background"),
		doneCrit: r.Counter("sched_completed_total", "class", "critical"),
		doneBG:   r.Counter("sched_completed_total", "class", "background"),
		thrOn:    r.Counter("sched_throttle_transitions_total", "dir", "on"),
		thrOff:   r.Counter("sched_throttle_transitions_total", "dir", "off"),
	}
}

// usOf converts simulated seconds to the tracer's microsecond clock.
func usOf(sec float64) int64 { return int64(sec * 1e6) }

// NewSimulator wires a simulator over a machine and its deployment.
func NewSimulator(m *chip.Machine, dep *tuning.Deployment, chipLabel string) (*Simulator, error) {
	if chipLabel == "" {
		chipLabel = "P0"
	}
	s := &Simulator{m: m, dep: dep, chipL: chipLabel}
	for _, label := range dep.FastestCores() {
		if core, err := m.Core(label); err == nil {
			if ch, err := m.ChipOf(core.Profile.Label); err == nil && ch.Profile.Label == chipLabel {
				s.bySpeed = append(s.bySpeed, label)
			}
		}
	}
	if len(s.bySpeed) == 0 {
		return nil, fmt.Errorf("sched: chip %q has no deployed cores", chipLabel)
	}
	return s, nil
}

// active tracks a running job.
type active struct {
	job       Job
	remaining float64 // service-seconds at baseline still to do
	start     float64
	core      string
}

// Run executes the trace under the options' policy and returns the
// aggregate result. The machine is reset afterwards.
func (s *Simulator) Run(trace []Job, o Options) (Result, error) {
	o = o.withDefaults()
	s.ob = newSchedObs(o.Obs, o.Trace)
	defer s.m.ResetAll()
	s.m.ResetAll()

	// Normalize the idle machine to the policy's baseline clocking:
	// the static policies must not leave unused cores in default ATM.
	if o.Policy == PolicyStatic || o.Policy == PolicyOndemand {
		for _, label := range s.chipCores() {
			core, err := s.m.Core(label)
			if err != nil {
				return Result{}, err
			}
			core.SetMode(chip.ModeStatic)
			if err := core.SetPState(chip.PStateMax); err != nil {
				return Result{}, err
			}
			if err := s.idleCore(label, o.Policy); err != nil {
				return Result{}, err
			}
		}
	}

	res := Result{Policy: o.Policy}
	var (
		queueCrit, queueBG []Job
		running            = map[string]*active{} // core label → job
		now                float64
		nextJob            int
		energy             float64
	)
	base := float64(s.m.Profile().Params().FStatic)

	// rates recomputes every running job's progress rate from the
	// solved steady state; returns rate per core and chip power.
	rates := func() (map[string]float64, float64, error) {
		st, err := s.m.Solve()
		if err != nil {
			return nil, 0, err
		}
		cs, err := st.ChipState(s.chipL)
		if err != nil {
			return nil, 0, err
		}
		out := map[string]float64{}
		for _, c := range cs.Cores {
			if a, ok := running[c.Label]; ok {
				out[c.Label] = a.job.Workload.RelPerf(float64(c.Freq), base)
			}
		}
		return out, float64(cs.Power), nil
	}

	dispatch := func() error {
		for len(queueCrit)+len(queueBG) > 0 {
			var job Job
			var isCrit bool
			switch {
			case len(queueCrit) > 0:
				job, isCrit = queueCrit[0], true
			default:
				job, isCrit = queueBG[0], false
			}
			core := s.pickCore(running, isCrit, o.Policy)
			if core == "" {
				if isCrit && len(queueBG) > 0 {
					// Critical head blocked; try a background job on
					// the remaining cores before giving up.
					job, isCrit = queueBG[0], false
					core = s.pickCore(running, false, o.Policy)
					if core == "" {
						break
					}
					queueBG = queueBG[1:]
				} else {
					break
				}
			} else if isCrit {
				queueCrit = queueCrit[1:]
			} else {
				queueBG = queueBG[1:]
			}
			running[core] = &active{job: job, remaining: job.ServiceSec, start: now, core: core}
			if isCrit {
				s.ob.dispCrit.Inc()
			} else {
				s.ob.dispBG.Inc()
			}
			if s.ob.tr != nil {
				s.ob.tr.Instant("sched", "dispatch", core,
					"job", strconv.Itoa(job.ID), "class", job.Class.String())
			}
			if err := s.configureCore(core, job, o.Policy); err != nil {
				return err
			}
		}
		// Reconcile background throttling against the (possibly changed)
		// critical residency.
		return s.applyThrottling(running, o.Policy)
	}

	for {
		rate, power, err := rates()
		if err != nil {
			return Result{}, err
		}

		// Next event: arrival or earliest completion.
		nextArrival := -1.0
		if nextJob < len(trace) {
			nextArrival = trace[nextJob].ArrivalSec
		}
		nextDone, doneCore := -1.0, ""
		for label, a := range running {
			r := rate[label]
			if r <= 0 {
				continue
			}
			t := now + a.remaining/r
			if nextDone < 0 || t < nextDone {
				nextDone, doneCore = t, label
			}
		}
		if nextArrival < 0 && nextDone < 0 {
			break // drained
		}
		var next float64
		arrivalEvent := false
		switch {
		case nextDone < 0 || (nextArrival >= 0 && nextArrival < nextDone):
			next, arrivalEvent = nextArrival, true
		default:
			next = nextDone
		}

		// Advance time: progress work and integrate energy.
		dt := next - now
		if dt < 0 {
			dt = 0
		}
		for label, a := range running {
			a.remaining -= rate[label] * dt
			if a.remaining < 1e-12 {
				a.remaining = 0
			}
		}
		energy += power * dt
		now = next
		s.ob.tr.SetTimeUS(usOf(now))

		if arrivalEvent {
			job := trace[nextJob]
			nextJob++
			if job.Class == ClassCritical {
				queueCrit = append(queueCrit, job)
			} else {
				queueBG = append(queueBG, job)
			}
			if s.ob.tr != nil {
				s.ob.tr.Instant("sched", "arrival", "queue:"+job.Class.String(),
					"job", strconv.Itoa(job.ID))
			}
		} else {
			a := running[doneCore]
			delete(running, doneCore)
			res.Completed = append(res.Completed, JobRecord{
				Job: a.job, StartSec: a.start, FinishSec: now, Core: doneCore,
			})
			if a.job.Class == ClassCritical {
				s.ob.doneCrit.Inc()
			} else {
				s.ob.doneBG.Inc()
			}
			if s.ob.tr != nil {
				// The job's whole residency as one exact-time span on the
				// core's track.
				s.ob.tr.Complete("sched", a.job.Workload.Name, doneCore,
					usOf(a.start), usOf(now)-usOf(a.start),
					"job", strconv.Itoa(a.job.ID), "class", a.job.Class.String())
			}
			// Freed core returns to idle until redispatched.
			if err := s.idleCore(doneCore, o.Policy); err != nil {
				return Result{}, err
			}
		}
		if err := dispatch(); err != nil {
			return Result{}, err
		}
	}

	res.MakespanSec = now
	res.EnergyJ = energy
	s.finalize(&res)
	return res, nil
}

// finalize computes the aggregate metrics.
func (s *Simulator) finalize(res *Result) {
	var critSo, bgSo []float64
	var speedSum float64
	var critN, bgN int
	for _, r := range res.Completed {
		if r.Class == ClassCritical {
			critSo = append(critSo, r.Sojourn())
			speedSum += r.Speedup()
			critN++
		} else {
			bgSo = append(bgSo, r.Sojourn())
			bgN++
		}
	}
	res.CritLatency = stats.Summarize(critSo)
	res.BGLatency = stats.Summarize(bgSo)
	if critN > 0 {
		res.CritSpeedup = speedSum / float64(critN)
	}
	if res.MakespanSec > 0 {
		res.BGThroughput = float64(bgN) / res.MakespanSec
	}
	if n := len(res.Completed); n > 0 {
		res.EnergyPerJobJ = res.EnergyJ / float64(n)
	}
}
