package sched

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Overload edges: the scheduler must stay live when the queue is full
// beyond any draining hope, and placement must still function when the
// tuning pass has quarantined every core to the static fallback.

// burstTrace hand-builds the worst queue shape: n jobs, all arriving at
// t=0, several times the chip's core count, mixed classes. Service
// demands are all distinct so completions never tie — a tie's drain
// order is a valid degree of freedom, not a scheduling property.
func burstTrace(n int) []Job {
	crit := workload.Critical()[0]
	bg := workload.Background()[0]
	jobs := make([]Job, n)
	for i := range jobs {
		jitter := float64(i) * 1e-3
		j := Job{ID: i, Class: ClassBackground, Workload: bg, ServiceSec: 3 + jitter, ArrivalSec: 0}
		if i%4 == 0 {
			j.Class = ClassCritical
			j.Workload = crit
			j.ServiceSec = 1 + jitter
		}
		jobs[i] = j
	}
	return jobs
}

// TestSimultaneousBurstDrains: 64 jobs land at t=0 on an 8-core chip —
// the ready queue is full for the whole run. Every policy must drain the
// backlog without deadlock, run every core, and never start a job twice.
func TestSimultaneousBurstDrains(t *testing.T) {
	s := sim(t)
	trace := burstTrace(64)
	for _, p := range []Policy{PolicyStatic, PolicyOndemand, PolicyUnmanaged, PolicyManaged} {
		o := Options{Policy: p, HorizonSec: 1, Seed: 11}
		res, err := s.Run(trace, o)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.Completed) != len(trace) {
			t.Fatalf("%s: burst lost jobs: completed %d of %d", p, len(res.Completed), len(trace))
		}
		seen := map[int]bool{}
		cores := map[string]bool{}
		for _, r := range res.Completed {
			if seen[r.ID] {
				t.Fatalf("%s: job %d completed twice", p, r.ID)
			}
			seen[r.ID] = true
			cores[r.Core] = true
			if r.StartSec < 0 || r.FinishSec <= r.StartSec {
				t.Errorf("%s: job %d has degenerate timing [%.3f, %.3f]", p, r.ID, r.StartSec, r.FinishSec)
			}
		}
		if len(cores) != len(s.bySpeed) {
			t.Errorf("%s: burst used %d cores of %d — a full queue must saturate the chip",
				p, len(cores), len(s.bySpeed))
		}
		if res.MakespanSec <= o.HorizonSec {
			t.Errorf("%s: makespan %.2f did not extend past the horizon under 64 queued jobs",
				p, res.MakespanSec)
		}
	}
}

// TestBurstDeterministic: the saturated queue must not introduce any
// order sensitivity — two runs of the same burst are identical.
func TestBurstDeterministic(t *testing.T) {
	s := sim(t)
	trace := burstTrace(64)
	o := Options{Policy: PolicyManaged, HorizonSec: 1, Seed: 11}
	r1, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Completed) != len(r2.Completed) || r1.EnergyJ != r2.EnergyJ {
		t.Fatal("burst run not deterministic")
	}
	for i := range r1.Completed {
		if r1.Completed[i] != r2.Completed[i] {
			t.Fatalf("burst job %d differs across identical runs", r1.Completed[i].ID)
		}
	}
}

// TestAllCoresQuarantinedPlacement: a machine whose every trial harness
// is broken gets every core quarantined to the static fallback — and the
// scheduler must still place and complete work on it (the paper's
// degraded mode: a fully quarantined chip is a static-margin chip, not a
// dead one).
func TestAllCoresQuarantinedPlacement(t *testing.T) {
	m := chip.NewReference()
	prof, err := fault.ParseProfile("broken=16")
	if err != nil {
		t.Fatal(err)
	}
	fault.New(prof, 1).ArmMachine(m)
	dep, err := tuning.Deploy(m, tuning.Options{})
	if err != nil {
		t.Fatalf("Deploy on a fully broken machine: %v", err)
	}
	if got, want := len(dep.Quarantined()), len(m.AllCores()); got != want {
		t.Fatalf("quarantined %d cores, want all %d", got, want)
	}
	s, err := NewSimulator(m, dep, "P0")
	if err != nil {
		t.Fatalf("NewSimulator over a quarantined deployment: %v", err)
	}
	trace := burstTrace(24)
	res, err := s.Run(trace, Options{Policy: PolicyManaged, HorizonSec: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(trace) {
		t.Fatalf("quarantined chip lost jobs: %d of %d", len(res.Completed), len(trace))
	}
	// Quarantined cores run at the deployed static fallback: no job may
	// claim a speedup above the fine-tuned range, and none may stall.
	for _, r := range res.Completed {
		if r.Core == "" {
			t.Errorf("job %d completed without a core", r.ID)
		}
		if sp := r.Speedup(); sp <= 0 {
			t.Errorf("job %d has non-positive speedup %.3f", r.ID, sp)
		}
	}
}
