package sched

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// fixture shares the deployed machine across tests.
var (
	fixM   *chip.Machine
	fixDep *tuning.Deployment
)

func sim(t *testing.T) *Simulator {
	t.Helper()
	if fixM == nil {
		fixM = chip.NewReference()
		dep, err := tuning.Deploy(fixM, tuning.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fixDep = dep
	}
	s, err := NewSimulator(fixM, fixDep, "P0")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shortOpts(p Policy) Options {
	return Options{
		Policy:     p,
		HorizonSec: 60,
		Seed:       7,
	}
}

func TestTraceGeneration(t *testing.T) {
	o := shortOpts(PolicyStatic)
	trace := GenerateTrace(o, rng.New(o.Seed))
	if len(trace) < 10 {
		t.Fatalf("trace has only %d jobs", len(trace))
	}
	prev := -1.0
	crit, bg := 0, 0
	for i, j := range trace {
		if j.ArrivalSec < prev {
			t.Fatal("trace not sorted by arrival")
		}
		prev = j.ArrivalSec
		if j.ID != i {
			t.Fatal("IDs not renumbered")
		}
		if j.ServiceSec <= 0 {
			t.Fatal("non-positive service demand")
		}
		switch j.Class {
		case ClassCritical:
			crit++
			if j.Workload.Role != workload.RoleCritical {
				t.Errorf("critical job carries %s workload %s", j.Workload.Role, j.Workload.Name)
			}
		case ClassBackground:
			bg++
			if j.Workload.Role != workload.RoleBackground {
				t.Errorf("background job carries %s workload %s", j.Workload.Role, j.Workload.Name)
			}
		}
	}
	if crit == 0 || bg == 0 {
		t.Fatalf("trace missing a class: crit=%d bg=%d", crit, bg)
	}
	// Deterministic for a given seed.
	again := GenerateTrace(o, rng.New(o.Seed))
	if len(again) != len(trace) || again[3] != trace[3] {
		t.Error("trace generation not deterministic")
	}
}

func TestAllJobsComplete(t *testing.T) {
	s := sim(t)
	o := shortOpts(PolicyManaged)
	trace := GenerateTrace(o, rng.New(o.Seed))
	res, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(trace) {
		t.Fatalf("completed %d of %d jobs", len(res.Completed), len(trace))
	}
	for _, r := range res.Completed {
		if r.StartSec < r.ArrivalSec-1e-9 {
			t.Errorf("job %d started before arriving", r.ID)
		}
		if r.FinishSec <= r.StartSec {
			t.Errorf("job %d finished instantly", r.ID)
		}
		if r.Core == "" {
			t.Errorf("job %d has no core", r.ID)
		}
	}
	if res.MakespanSec <= o.HorizonSec/2 {
		t.Errorf("makespan %.1f implausibly small", res.MakespanSec)
	}
	if res.EnergyJ <= 0 {
		t.Error("no energy integrated")
	}
}

// TestStaticSpeedupIsOne: under the static policy every job runs at the
// 4.2 GHz baseline, so the achieved speedup is exactly 1.
func TestStaticSpeedupIsOne(t *testing.T) {
	s := sim(t)
	o := shortOpts(PolicyStatic)
	trace := GenerateTrace(o, rng.New(o.Seed))
	res, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Completed {
		if math.Abs(r.Speedup()-1) > 1e-6 {
			t.Fatalf("job %d speedup %.4f under static margin", r.ID, r.Speedup())
		}
	}
}

// TestPolicyLadder is the dynamic counterpart of Fig. 14: managed ATM
// must deliver better critical-job latency than unmanaged ATM, which
// must beat the static margin.
func TestPolicyLadder(t *testing.T) {
	s := sim(t)
	lat := map[Policy]float64{}
	speed := map[Policy]float64{}
	for _, p := range []Policy{PolicyStatic, PolicyUnmanaged, PolicyManaged} {
		o := shortOpts(p)
		trace := GenerateTrace(o, rng.New(o.Seed))
		res, err := s.Run(trace, o)
		if err != nil {
			t.Fatal(err)
		}
		lat[p] = res.CritLatency.Mean
		speed[p] = res.CritSpeedup
	}
	if !(speed[PolicyStatic] < speed[PolicyUnmanaged]) {
		t.Errorf("unmanaged ATM speedup %.3f not above static %.3f",
			speed[PolicyUnmanaged], speed[PolicyStatic])
	}
	if !(speed[PolicyUnmanaged] < speed[PolicyManaged]) {
		t.Errorf("managed speedup %.3f not above unmanaged %.3f",
			speed[PolicyManaged], speed[PolicyUnmanaged])
	}
	if !(lat[PolicyManaged] < lat[PolicyStatic]) {
		t.Errorf("managed critical latency %.2f not below static %.2f",
			lat[PolicyManaged], lat[PolicyStatic])
	}
}

// TestManagedPlacement: under the managed policy, critical jobs must
// land on faster cores (on average) than background jobs.
func TestManagedPlacement(t *testing.T) {
	s := sim(t)
	o := shortOpts(PolicyManaged)
	trace := GenerateTrace(o, rng.New(o.Seed))
	res, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	for i, label := range s.bySpeed {
		rank[label] = i
	}
	var critRank, bgRank, critN, bgN float64
	for _, r := range res.Completed {
		if r.Class == ClassCritical {
			critRank += float64(rank[r.Core])
			critN++
		} else {
			bgRank += float64(rank[r.Core])
			bgN++
		}
	}
	if critN == 0 || bgN == 0 {
		t.Fatal("a class completed no jobs")
	}
	if critRank/critN >= bgRank/bgN {
		t.Errorf("critical jobs ran on slower cores (avg rank %.2f) than background (%.2f)",
			critRank/critN, bgRank/bgN)
	}
}

// TestMachineResetAfterRun: the simulator must return the machine to the
// reset state.
func TestMachineResetAfterRun(t *testing.T) {
	s := sim(t)
	o := shortOpts(PolicyManaged)
	trace := GenerateTrace(o, rng.New(o.Seed))
	if _, err := s.Run(trace, o); err != nil {
		t.Fatal(err)
	}
	for _, c := range s.m.AllCores() {
		if c.Workload().Name != "idle" || c.Reduction() != 0 || c.Mode() != chip.ModeATM {
			t.Fatalf("%s not reset after run", c.Profile.Label)
		}
	}
}

// TestDeterminism: same trace + options → identical results.
func TestDeterminism(t *testing.T) {
	s := sim(t)
	o := shortOpts(PolicyManaged)
	trace := GenerateTrace(o, rng.New(o.Seed))
	r1, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CritLatency.Mean != r2.CritLatency.Mean || r1.EnergyJ != r2.EnergyJ {
		t.Error("simulation not deterministic")
	}
}

// TestOverload: with arrivals far above capacity, the queue drains after
// the horizon and everything still completes.
func TestOverload(t *testing.T) {
	s := sim(t)
	o := Options{Policy: PolicyManaged, HorizonSec: 30, BGRate: 4, CritRate: 0.3, Seed: 3}
	trace := GenerateTrace(o, rng.New(o.Seed))
	res, err := s.Run(trace, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(trace) {
		t.Fatalf("overloaded run lost jobs: %d of %d", len(res.Completed), len(trace))
	}
	if res.MakespanSec <= o.HorizonSec {
		t.Error("overloaded run did not drain past the horizon")
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(fixM, fixDep, "P9"); err == nil {
		t.Error("bogus chip accepted")
	}
}

// TestOndemandSavesEnergy: the ondemand baseline matches the static
// policy's performance (speedup 1, same latency behaviour) while
// spending less energy by walking idle cores down the p-state ladder.
func TestOndemandSavesEnergy(t *testing.T) {
	s := sim(t)
	oStatic := shortOpts(PolicyStatic)
	oOnd := shortOpts(PolicyOndemand)
	trace := GenerateTrace(oStatic, rng.New(oStatic.Seed))
	rs, err := s.Run(trace, oStatic)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := s.Run(trace, oOnd)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ro.Completed {
		if math.Abs(r.Speedup()-1) > 1e-6 {
			t.Fatalf("job %d speedup %.4f under the ondemand static baseline", r.ID, r.Speedup())
		}
	}
	if ro.EnergyJ >= rs.EnergyJ {
		t.Errorf("ondemand energy %.0f J not below static-at-max %.0f J", ro.EnergyJ, rs.EnergyJ)
	}
	if ro.Policy.String() != "static-ondemand" {
		t.Errorf("policy name %q", ro.Policy.String())
	}
}
