package sched

import (
	"repro/internal/chip"
	"repro/internal/dvfs"
	"repro/internal/workload"
)

// pickCore chooses the core for the next job of the given class, or ""
// when none is free.
func (s *Simulator) pickCore(running map[string]*active, critical bool, p Policy) string {
	free := func(label string) bool {
		_, busy := running[label]
		return !busy
	}
	switch p {
	case PolicyManaged:
		if critical {
			// Fastest free core (deployment speed order).
			for _, label := range s.bySpeed {
				if free(label) {
					return label
				}
			}
			return ""
		}
		// Background: slowest free core, keeping the fast ones for
		// critical arrivals.
		for i := len(s.bySpeed) - 1; i >= 0; i-- {
			if free(s.bySpeed[i]) {
				return s.bySpeed[i]
			}
		}
		return ""
	default:
		// Variation-blind: lowest free physical index. Iterate the
		// chip's physical order rather than the speed ranking.
		for _, c := range s.chipCores() {
			if free(c) {
				return c
			}
		}
		return ""
	}
}

// chipCores returns the managed chip's core labels in physical order.
func (s *Simulator) chipCores() []string {
	for _, ch := range s.m.Chips {
		if ch.Profile.Label == s.chipL {
			out := make([]string, len(ch.Cores))
			for i, c := range ch.Cores {
				out[i] = c.Profile.Label
			}
			return out
		}
	}
	return nil
}

// configureCore applies the policy's clocking to a core that is about to
// run job.
func (s *Simulator) configureCore(label string, job Job, p Policy) error {
	core, err := s.m.Core(label)
	if err != nil {
		return err
	}
	core.SetWorkload(job.Workload)
	core.SetGated(false)
	switch p {
	case PolicyStatic:
		core.SetMode(chip.ModeStatic)
		return core.SetPState(chip.PStateMax)
	case PolicyOndemand:
		// A dispatched job is 100% utilization: ondemand jumps to the
		// top p-state immediately.
		core.SetMode(chip.ModeStatic)
		return dvfs.Apply(core, dvfs.DefaultOndemand(), 1.0)
	default:
		cfg, ok := s.dep.Config(label)
		if !ok {
			return errNoConfig(label)
		}
		core.SetMode(chip.ModeATM)
		return s.m.ProgramCPM(label, cfg.Reduction)
	}
}

// idleCore returns a freed core to the idle workload (its clocking stays
// whatever the policy last set; throttling reconciliation follows).
// Under the ondemand policy the governor walks the idle core down the
// ladder — scheduler events are far apart relative to governor sampling
// periods, so the sustained-idle fixpoint (the floor) is applied.
func (s *Simulator) idleCore(label string, p Policy) error {
	core, err := s.m.Core(label)
	if err != nil {
		return err
	}
	core.SetWorkload(workload.Idle)
	if p == PolicyOndemand {
		g := dvfs.DefaultOndemand()
		for {
			before := core.PState()
			if err := dvfs.Apply(core, g, 0.0); err != nil {
				return err
			}
			//lint:ignore floatcmp p-states are discrete ladder entries copied verbatim, not recomputed; exact identity is the intended "no further step" check
			if core.PState() == before {
				break
			}
		}
	}
	return nil
}

// applyThrottling reconciles the managed policy's background throttling:
// while any critical job is resident on the chip, every core running a
// background job is pinned to the 4.2 GHz static p-state (freeing DC
// budget for the critical cores); when no critical job is resident,
// background cores get their full fine-tuned ATM speed back.
func (s *Simulator) applyThrottling(running map[string]*active, p Policy) error {
	if p != PolicyManaged {
		return nil
	}
	criticalResident := false
	for _, a := range running {
		if a.job.Class == ClassCritical {
			criticalResident = true
			break
		}
	}
	for label, a := range running {
		core, err := s.m.Core(label)
		if err != nil {
			return err
		}
		if a.job.Class == ClassBackground {
			if criticalResident {
				// Count only real transitions: reconciliation blindly
				// reapplies the target mode on every dispatch.
				if core.Mode() != chip.ModeStatic {
					s.ob.thrOn.Inc()
				}
				core.SetMode(chip.ModeStatic)
				if err := core.SetPState(chip.PStateMax); err != nil {
					return err
				}
			} else {
				cfg, ok := s.dep.Config(label)
				if !ok {
					return errNoConfig(label)
				}
				if core.Mode() != chip.ModeATM {
					s.ob.thrOff.Inc()
				}
				core.SetMode(chip.ModeATM)
				if err := s.m.ProgramCPM(label, cfg.Reduction); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type errNoConfig string

func (e errNoConfig) Error() string { return "sched: no deployment config for " + string(e) }
