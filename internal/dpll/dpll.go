// Package dpll implements the per-core adaptive frequency control loop
// (Sec. II): a digital phase-locked loop that consumes the CPM's
// per-cycle margin reading and slews the core clock so the measured
// slack settles at a threshold.
//
// The loop has three regimes:
//
//   - margin below zero (violation): the clock is gated for a cycle and
//     the frequency is pulled down hard — the emergency response to a
//     fast di/dt event;
//   - margin below the threshold: fast downward slew;
//   - margin above the threshold: slow upward slew (asymmetric response,
//     as in the real hardware, so the loop reacts to danger quickly and
//     recovers conservatively).
//
// The loop's steady state is analytically the silicon profile's
// GuardPs-derived frequency; the transient stepper here exists so tests
// and examples can watch the loop respond to voltage noise and verify
// the analytic shortcut the rest of the repository uses.
package dpll

import (
	"fmt"

	"repro/internal/cpm"
	"repro/internal/units"
)

// Config are the loop gains. Defaults follow DefaultConfig.
type Config struct {
	// ThetaUnits is the margin threshold the loop regulates to. It must
	// match the silicon Params' ThetaUnits for the analytic settle
	// point to be exact.
	ThetaUnits int
	// UpSlewMHz is the frequency increment applied per control interval
	// while margin exceeds the threshold.
	UpSlewMHz float64
	// DownSlewMHz is the decrement applied while margin is positive but
	// below the threshold.
	DownSlewMHz float64
	// EmergencyFactor scales the decrement on a violation (margin < 0).
	EmergencyFactor float64
	// FMin and FMax bound the slew range.
	FMin, FMax units.MHz
}

// DefaultConfig returns the loop gains used throughout the repository.
func DefaultConfig(theta int, fmax units.MHz) Config {
	return Config{
		ThetaUnits:      theta,
		UpSlewMHz:       8,
		DownSlewMHz:     40,
		EmergencyFactor: 6,
		FMin:            1000,
		FMax:            fmax,
	}
}

// Loop is the mutable control-loop state of one core.
type Loop struct {
	cfg     Config
	monitor *cpm.Monitor
	freq    units.MHz

	// telemetry
	violations  int
	gatedCycles int
	intervals   int
}

// New returns a loop regulating the monitor, starting at the given
// frequency.
func New(monitor *cpm.Monitor, cfg Config, start units.MHz) (*Loop, error) {
	if cfg.ThetaUnits < 0 {
		return nil, fmt.Errorf("dpll: negative threshold %d", cfg.ThetaUnits)
	}
	if cfg.FMin <= 0 || cfg.FMax <= cfg.FMin {
		return nil, fmt.Errorf("dpll: bad frequency bounds [%v, %v]", cfg.FMin, cfg.FMax)
	}
	if cfg.UpSlewMHz <= 0 || cfg.DownSlewMHz <= 0 || cfg.EmergencyFactor < 1 {
		return nil, fmt.Errorf("dpll: non-positive slew gains")
	}
	return &Loop{cfg: cfg, monitor: monitor, freq: start.Clamp(cfg.FMin, cfg.FMax)}, nil
}

// Freq returns the loop's current output frequency.
func (l *Loop) Freq() units.MHz { return l.freq }

// Violations returns how many control intervals observed negative margin.
func (l *Loop) Violations() int { return l.violations }

// GatedCycles returns how many cycles were clock-gated by the emergency
// response.
func (l *Loop) GatedCycles() int { return l.gatedCycles }

// Intervals returns how many control intervals have elapsed.
func (l *Loop) Intervals() int { return l.intervals }

// Step advances the loop by one control interval at supply voltage v and
// returns the margin reading it acted on.
//
// The POWER7+ CPM is pulse-shaped for sub-inverter resolution (Drake et
// al., ISLPED'13), so the loop regulates on the un-quantized slack: the
// error between measured slack and the θ-unit target is converted to a
// frequency correction and applied with asymmetric slew limits. The
// quantized reading still drives the emergency (clock-gating) response.
//
//atm:hotpath
func (l *Loop) Step(v units.Volt) cpm.Reading {
	l.intervals++
	r := l.monitor.Measure(l.freq.CycleTime(), v)

	p := l.monitor.Core().Params()
	target := float64(p.ThetaPs()) * p.Scale(v) // desired slack, ps
	errPs := float64(r.SlackPs) - target
	// A slack error of e ps moves the settle frequency by ≈ f²·e·1e−6 MHz.
	needMHz := float64(l.freq) * float64(l.freq) * errPs * 1e-6

	switch {
	case r.Units < 0:
		l.violations++
		l.gatedCycles++
		l.freq -= units.MHz(l.cfg.DownSlewMHz * l.cfg.EmergencyFactor)
	case needMHz < 0:
		step := -needMHz
		if step > l.cfg.DownSlewMHz {
			step = l.cfg.DownSlewMHz
		}
		l.freq -= units.MHz(step)
	default:
		step := needMHz
		if step > l.cfg.UpSlewMHz {
			step = l.cfg.UpSlewMHz
		}
		l.freq += units.MHz(step)
	}
	l.freq = l.freq.Clamp(l.cfg.FMin, l.cfg.FMax)
	return r
}

// Run advances the loop n intervals at a fixed supply voltage and
// returns the final frequency. Convenience for settling tests.
func (l *Loop) Run(n int, v units.Volt) units.MHz {
	for i := 0; i < n; i++ {
		l.Step(v)
	}
	return l.freq
}

// SettlePoint returns the frequency the loop converges to at supply v —
// the analytic fixed point: cycle time = (CPM guard) × Scale(v). The
// rest of the repository uses this shortcut; TestLoopMatchesSettlePoint
// verifies the transient loop lands within one quantization step of it.
func (l *Loop) SettlePoint(v units.Volt) units.MHz {
	p := l.monitor.Core().Params()
	return p.SettleFreq(l.monitor.SettleGuardPs(), v).Clamp(l.cfg.FMin, l.cfg.FMax)
}
