package dpll

import (
	"math"
	"testing"

	"repro/internal/cpm"
	"repro/internal/silicon"
	"repro/internal/units"
)

func newLoop(t *testing.T, label string, red int, start units.MHz) *Loop {
	t.Helper()
	c := silicon.Reference().FindCore(label)
	if c == nil {
		t.Fatalf("no core %s", label)
	}
	m := cpm.New(c)
	if err := m.Program(red); err != nil {
		t.Fatal(err)
	}
	p := c.Params()
	l, err := New(m, DefaultConfig(p.ThetaUnits, p.FMaxHW), start)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	c := silicon.Reference().AllCores()[0]
	m := cpm.New(c)
	bad := []Config{
		{ThetaUnits: -1, UpSlewMHz: 1, DownSlewMHz: 1, EmergencyFactor: 1, FMin: 1, FMax: 2},
		{ThetaUnits: 2, UpSlewMHz: 0, DownSlewMHz: 1, EmergencyFactor: 1, FMin: 1, FMax: 2},
		{ThetaUnits: 2, UpSlewMHz: 1, DownSlewMHz: 1, EmergencyFactor: 0.5, FMin: 1, FMax: 2},
		{ThetaUnits: 2, UpSlewMHz: 1, DownSlewMHz: 1, EmergencyFactor: 1, FMin: 0, FMax: 2},
		{ThetaUnits: 2, UpSlewMHz: 1, DownSlewMHz: 1, EmergencyFactor: 1, FMin: 5, FMax: 2},
	}
	for i, cfg := range bad {
		if _, err := New(m, cfg, 4000); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestConvergesFromBelow: starting slow, the loop creeps up to the
// settle point.
func TestConvergesFromBelow(t *testing.T) {
	l := newLoop(t, "P0C0", 0, 4000)
	v := units.Volt(1.25)
	got := l.Run(400, v)
	want := l.SettlePoint(v)
	if math.Abs(float64(got-want)) > 2 {
		t.Errorf("settled at %v, want %v", got, want)
	}
}

// TestConvergesFromAbove: starting too fast, the loop slews down.
func TestConvergesFromAbove(t *testing.T) {
	l := newLoop(t, "P0C0", 0, 5200)
	v := units.Volt(1.25)
	got := l.Run(400, v)
	want := l.SettlePoint(v)
	if math.Abs(float64(got-want)) > 2 {
		t.Errorf("settled at %v, want %v", got, want)
	}
}

// TestSettlesHigherWithReduction: the fine-tuning effect through the
// actual control loop (Fig. 5).
func TestSettlesHigherWithReduction(t *testing.T) {
	v := units.Volt(1.25)
	base := newLoop(t, "P0C3", 0, 4600).Run(500, v)
	tuned := newLoop(t, "P0C3", 8, 4600).Run(500, v)
	if tuned <= base+50 {
		t.Errorf("8-step reduction settled at %v, base %v — expected a large gain", tuned, base)
	}
}

// TestTracksVoltageDroop: a sustained supply sag lowers the settled
// frequency; recovery restores it.
func TestTracksVoltageDroop(t *testing.T) {
	l := newLoop(t, "P0C1", 2, 4600)
	fHigh := l.Run(400, 1.25)
	fLow := l.Run(400, 1.21)
	if fLow >= fHigh-10 {
		t.Errorf("frequency did not track 40 mV sag: %v → %v", fHigh, fLow)
	}
	fBack := l.Run(400, 1.25)
	if math.Abs(float64(fBack-fHigh)) > 2 {
		t.Errorf("did not recover after droop: %v vs %v", fBack, fHigh)
	}
}

// TestEmergencyResponse: a deep fast droop triggers violations and
// clock gating, and the loop pulls frequency down hard.
func TestEmergencyResponse(t *testing.T) {
	l := newLoop(t, "P0C4", 6, 4600)
	l.Run(400, 1.25)
	before := l.Freq()
	l.Step(1.08) // catastrophic instantaneous sag
	if l.Violations() == 0 || l.GatedCycles() == 0 {
		t.Errorf("deep droop produced no violation/gating (violations=%d)", l.Violations())
	}
	if l.Freq() >= before {
		t.Error("emergency response did not cut frequency")
	}
}

func TestNoViolationsInSteadyState(t *testing.T) {
	l := newLoop(t, "P0C2", 1, 4600)
	l.Run(500, 1.25)
	if l.Violations() != 0 {
		t.Errorf("steady state produced %d violations", l.Violations())
	}
	if l.Intervals() != 500 {
		t.Errorf("interval count = %d", l.Intervals())
	}
}

func TestFrequencyBounds(t *testing.T) {
	c := silicon.Reference().FindCore("P0C0")
	m := cpm.New(c)
	cfg := DefaultConfig(c.Params().ThetaUnits, 4400)
	l, err := New(m, cfg, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if l.Freq() != 4400 {
		t.Errorf("start frequency not clamped: %v", l.Freq())
	}
	l.Run(300, 1.25)
	if l.Freq() > 4400 || l.Freq() < cfg.FMin {
		t.Errorf("loop escaped bounds: %v", l.Freq())
	}
}

// TestSettlePointMatchesSiliconModel: the analytic shortcut used by the
// steady-state solver equals the silicon profile's settled frequency.
func TestSettlePointMatchesSiliconModel(t *testing.T) {
	c := silicon.Reference().FindCore("P1C6")
	for red := 0; red <= 6; red++ {
		l := newLoop(t, "P1C6", red, 4600)
		for _, v := range []units.Volt{1.25, 1.22, 1.19} {
			want, err := c.SettledFreq(red, v)
			if err != nil {
				t.Fatal(err)
			}
			if got := l.SettlePoint(v); math.Abs(float64(got-want)) > 1e-6 {
				t.Errorf("red=%d v=%v: settle point %v, want %v", red, v, got, want)
			}
		}
	}
}
