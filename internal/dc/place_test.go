package dc

import (
	"testing"

	"repro/internal/guard"
)

// testChips builds a two-chip placer: chip B runs faster at any power
// (higher intercept), so the scheduler should prefer it until budget
// or occupancy push work to A.
func testChips() []PlacerChip {
	return []PlacerChip{
		{
			ID: "r00c00s00", IdleW: 50, SpanW: 10,
			Cores: []PlacerCore{
				{Label: "P0C0", Slope: -2, Intercept: 4000},
				{Label: "P0C1", Slope: -2, Intercept: 3900},
			},
		},
		{
			ID: "r00c00s01", IdleW: 50, SpanW: 10,
			Cores: []PlacerCore{
				{Label: "P0C0", Slope: -2, Intercept: 4300},
				{Label: "P0C1", Slope: -2, Intercept: 4200},
			},
		},
	}
}

func TestPlacePicksHighestPredictedFrequency(t *testing.T) {
	p := NewPlacer(testChips())
	allow := []float64{200, 200}
	ci, cj, pred, ok := p.Place(1.0, allow)
	if !ok || ci != 1 || cj != 0 {
		t.Fatalf("Place = chip %d core %d ok=%v, want chip 1 core 0", ci, cj, ok)
	}
	// Eq. 1 at projected power 60 W: −2·60 + 4300.
	if want := -2.0*60 + 4300; pred != want {
		t.Fatalf("pred = %v, want %v", pred, want)
	}
	// Second tenant: chip 1 is now at 60 W, projected 70 → 4160; chip 0
	// projects 60 → 3880. Chip 1's second core still wins.
	ci, cj, _, ok = p.Place(1.0, allow)
	if !ok || ci != 1 || cj != 1 {
		t.Fatalf("second Place = chip %d core %d ok=%v, want chip 1 core 1", ci, cj, ok)
	}
	// Chip 1 full: the third lands on chip 0.
	ci, _, _, ok = p.Place(1.0, allow)
	if !ok || ci != 0 {
		t.Fatalf("third Place = chip %d ok=%v, want chip 0", ci, ok)
	}
}

func TestPlaceRespectsAllowance(t *testing.T) {
	p := NewPlacer(testChips())
	// Chip 1's budget only covers idle: everything must go to chip 0.
	allow := []float64{200, 50}
	ci, _, _, ok := p.Place(1.0, allow)
	if !ok || ci != 0 {
		t.Fatalf("Place = chip %d ok=%v, want chip 0", ci, ok)
	}
	// No budget anywhere: placement defers.
	if _, _, _, ok := p.Place(1.0, []float64{55, 50}); ok {
		t.Fatal("Place admitted a tenant with no budget headroom")
	}
}

func TestPlaceSkipsQuarantineAndOpenBreaker(t *testing.T) {
	chips := testChips()
	chips[1].Quarantined = true
	chips[0].Breaker = guard.NewBreaker(guard.BreakerOptions{
		FailureThreshold: 1, OpenTicks: 1 << 40,
	})
	chips[0].Breaker.Failure()
	p := NewPlacer(chips)
	if _, _, _, ok := p.Place(1.0, []float64{200, 200}); ok {
		t.Fatal("Place admitted a tenant onto a dead fleet")
	}
	if r := chips[0].Breaker.Rejected(); r != 1 {
		t.Fatalf("breaker rejected %d probes, want 1", r)
	}
}

func TestPlaceSkipsQuarantinedCores(t *testing.T) {
	chips := testChips()
	chips[1].Cores[0].Quarantined = true
	p := NewPlacer(chips)
	ci, cj, _, ok := p.Place(1.0, []float64{200, 200})
	if !ok || ci != 1 || cj != 1 {
		t.Fatalf("Place = chip %d core %d ok=%v, want chip 1 core 1", ci, cj, ok)
	}
}

func TestReleaseFreesCoreAndDemand(t *testing.T) {
	p := NewPlacer(testChips())
	allow := []float64{200, 200}
	ci, cj, _, ok := p.Place(1.0, allow)
	if !ok {
		t.Fatal("Place failed")
	}
	if d := p.Demand(ci); d != 60 {
		t.Fatalf("demand = %v, want 60", d)
	}
	p.Release(ci, cj, 1.0)
	if d := p.Demand(ci); d != 50 {
		t.Fatalf("demand after release = %v, want 50", d)
	}
	if f := p.FreeCores(ci); f != 2 {
		t.Fatalf("free cores after release = %d, want 2", f)
	}
}

func TestPlaceAllocFree(t *testing.T) {
	chips := make([]PlacerChip, 64)
	for i := range chips {
		chips[i] = PlacerChip{ID: NodeID(0, 0, i), IdleW: 50, SpanW: 10}
		for j := 0; j < 8; j++ {
			chips[i].Cores = append(chips[i].Cores, PlacerCore{
				Label: "C", Slope: -2, Intercept: 4000 + float64(i),
			})
		}
	}
	p := NewPlacer(chips)
	allow := make([]float64, len(chips))
	for i := range allow {
		allow[i] = 500
	}
	allocs := testing.AllocsPerRun(100, func() {
		ci, cj, _, ok := p.Place(0.7, allow)
		if ok {
			p.Release(ci, cj, 0.7)
		}
	})
	if allocs != 0 {
		t.Fatalf("place/release allocates %v per op, want 0", allocs)
	}
}
