package dc

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// canon serializes a result to its canonical bytes.
func canon(t *testing.T, r *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// smallOpts is the test topology: 1 rack × 2 chassis × 2 chips.
func smallOpts() Options {
	return Options{Racks: 1, ChassisPerRack: 2, ChipsPerChassis: 2}
}

func TestWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"plain", smallOpts()},
		{"faulted", func() Options {
			o := smallOpts()
			o.FaultProfile = "test-floor,broken=1"
			o.FaultSeed = 7
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 3, 8} {
				o := tc.opts
				o.Workers = workers
				res, err := Run(o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := canon(t, res)
				if ref == nil {
					ref = got
					if res.Placement.Placed == 0 {
						t.Fatal("campaign placed no tenants")
					}
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d: canonical output diverged from workers=1", workers)
				}
			}
		})
	}
}

func TestCacheHitResume(t *testing.T) {
	dir := t.TempDir()
	o := smallOpts()
	o.Workers = 4
	o.CacheDir = dir
	fresh, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CachedJobs != 0 {
		t.Fatalf("fresh run served %d cached jobs, want 0", fresh.CachedJobs)
	}
	o.Resume = true
	resumed, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fresh.Chips); resumed.CachedJobs != want {
		t.Fatalf("resumed run served %d cached jobs, want all %d", resumed.CachedJobs, want)
	}
	if !bytes.Equal(canon(t, fresh), canon(t, resumed)) {
		t.Fatal("resumed canonical output diverged from fresh run")
	}
}

// TestBrokenChipsQuarantinedWithoutStall is the fault.Profile run the
// issue asks for: every core broken on every node quarantines the
// whole fleet behind tripped breakers, and the rack-level sim still
// runs its full horizon — no placements, no hangs, no cap violations.
func TestBrokenChipsQuarantinedWithoutStall(t *testing.T) {
	o := smallOpts()
	o.FaultProfile = "broken=8"
	o.FaultSeed = 5
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.QuarantinedChips(), len(res.Chips); got != want {
		t.Fatalf("quarantined %d chips, want all %d", got, want)
	}
	if res.Placement.Placed != 0 {
		t.Fatalf("placed %d tenants on a fully quarantined fleet", res.Placement.Placed)
	}
	if res.Placement.BreakerRejected == 0 {
		t.Fatal("breakers rejected no probes; quarantine is not breaker-guarded")
	}
	if got, want := len(res.Timeline), res.Topology.Ticks; got != want {
		t.Fatalf("timeline has %d ticks, want the full horizon %d", got, want)
	}
	if res.Budget.Violations != 0 {
		t.Fatalf("quarantined fleet recorded %d violations", res.Budget.Violations)
	}
}

// TestPartialQuarantineKeepsPlacing: broken cores shrink the
// schedulable pool but the remaining cores still take work.
func TestPartialQuarantineKeepsPlacing(t *testing.T) {
	o := smallOpts()
	o.FaultProfile = "broken=2"
	o.FaultSeed = 3
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	qc := 0
	for _, c := range res.Chips {
		qc += c.QuarantinedCores
	}
	if qc == 0 {
		t.Fatal("fault profile broke no cores")
	}
	if res.Placement.Placed == 0 {
		t.Fatal("partially quarantined fleet placed nothing")
	}
	for _, tn := range res.Tenants {
		if tn.Placed && tn.Core == "" {
			t.Fatalf("tenant %d placed without a core", tn.ID)
		}
	}
}

// TestBudgetHierarchyEnforced checks the acceptance invariant on the
// emitted timeline: no level's observed maximum ever exceeds its cap.
func TestBudgetHierarchyEnforced(t *testing.T) {
	o := smallOpts()
	o.Tenants = 32 // pressure
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Timeline {
		if row.RackMaxW > res.Budget.RackCapW+budgetEps {
			t.Fatalf("tick %d: rack draw %v exceeds cap %v", row.Tick, row.RackMaxW, res.Budget.RackCapW)
		}
		if row.ChassisMaxW > res.Budget.ChassisCapW+budgetEps {
			t.Fatalf("tick %d: chassis draw %v exceeds cap %v", row.Tick, row.ChassisMaxW, res.Budget.ChassisCapW)
		}
		if row.ChipMaxW > res.Budget.ChipCapW+budgetEps {
			t.Fatalf("tick %d: chip draw %v exceeds cap %v", row.Tick, row.ChipMaxW, res.Budget.ChipCapW)
		}
		if row.Violations != 0 {
			t.Fatalf("tick %d: %d violations under auto caps", row.Tick, row.Violations)
		}
	}
	if res.Placement.Placed == 0 {
		t.Fatal("no placements under pressure")
	}
}

// TestForcedViolation: a chassis cap below the fleet's idle draw is
// physically unenforceable (idle power cannot be shed) and must be
// reported as violations, not hidden.
func TestForcedViolation(t *testing.T) {
	o := Options{Racks: 1, ChassisPerRack: 1, ChipsPerChassis: 2, ChassisCapW: 30, ChipCapW: 200, Tenants: 4}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget.Violations == 0 {
		t.Fatal("idle draw above the chassis cap reported no violations")
	}
}

// TestSoftStartDynamics: the Chen integral controller gates fresh
// placements below their grant until the soft state winds up, so a
// default campaign shows matched throttle and resume events.
func TestSoftStartDynamics(t *testing.T) {
	res, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget.ThrottleEvents == 0 {
		t.Fatal("no throttle events: the soft-start path never engaged")
	}
	if res.Budget.ResumeEvents == 0 {
		t.Fatal("throttled tenants never resumed")
	}
	if res.Placement.Completed == 0 {
		t.Fatal("no tenant completed")
	}
}

// TestEq1PlacementRecorded: every placed tenant carries the Eq. 1
// predicted frequency the scheduler maximized, and it is physically
// sane (positive, below any hardware ceiling).
func TestEq1PlacementRecorded(t *testing.T) {
	res, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	placed := 0
	for _, tn := range res.Tenants {
		if !tn.Placed {
			continue
		}
		placed++
		if tn.PredFreqMHz <= 0 || tn.PredFreqMHz > 10_000 {
			t.Fatalf("tenant %d: predicted frequency %v MHz is not physical", tn.ID, tn.PredFreqMHz)
		}
		if tn.Node == "" || tn.Core == "" {
			t.Fatalf("tenant %d: placed without a (node, core)", tn.ID)
		}
	}
	if placed == 0 {
		t.Fatal("no tenant placed")
	}
}

func TestObsAndTraceDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer()
		o := smallOpts()
		o.Obs = reg
		o.Trace = tr
		if _, err := Run(o); err != nil {
			t.Fatal(err)
		}
		var m, s bytes.Buffer
		if err := reg.WriteProm(&m); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&s); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), s.Bytes()
	}
	m1, s1 := run()
	m2, s2 := run()
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics output diverged between identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("trace output diverged between identical runs")
	}
	if !bytes.Contains(m1, []byte("dc_placements_total")) {
		t.Fatal("metrics missing dc_placements_total")
	}
	if !bytes.Contains(m1, []byte("dc_rack_power_watts_max")) {
		t.Fatal("metrics missing dc_rack_power_watts_max")
	}
}

func TestCampaignShape(t *testing.T) {
	o := smallOpts()
	c := Campaign(o)
	if got, want := len(c.Jobs), 4; got != want {
		t.Fatalf("campaign has %d jobs, want %d", got, want)
	}
	if c.Jobs[0].ID != "dc-r00c00s00" || c.Jobs[3].ID != "dc-r00c01s01" {
		t.Fatalf("job IDs off: first %q last %q", c.Jobs[0].ID, c.Jobs[3].ID)
	}
	for i, j := range c.Jobs {
		if j.Chips != 1 {
			t.Fatalf("job %d: Chips = %d, want single-chip nodes", i, j.Chips)
		}
		if j.SiliconSeed == 0 {
			t.Fatalf("job %d: zero silicon seed", i)
		}
	}
}
