package dc

import "repro/internal/guard"

// The global scheduler's placement core. Every chip carries the Eq. 1
// per-core frequency fits from its datacenter intake (platform
// provision): f ≈ slope·P + intercept with slope negative, so the
// predicted frequency of a candidate core falls as the chip's
// projected power rises. Place scans every live chip the budget
// admits and picks the (chip, core) pair with the highest predicted
// frequency — the predictor-driven placement the ROADMAP's datacenter
// item asks for.

// PlacerCore is one schedulable core: its label and Eq. 1 fit.
type PlacerCore struct {
	Label       string
	Quarantined bool
	// Slope/Intercept are the core's Eq. 1 frequency fit (MHz per
	// watt, MHz). Zero for quarantined cores.
	Slope     float64
	Intercept float64
}

// PlacerChip is one chip in the scheduler's view.
type PlacerChip struct {
	// ID is the node ID ("r00c01s03").
	ID string
	// Quarantined marks a chip the scheduler never places on: every
	// core quarantined at intake.
	Quarantined bool
	// Offline marks a chip removed from the pool at runtime by the
	// operational fault plane — dead, telemetry-dark past grace, or
	// breaker-quarantined pending re-admission. Unlike Quarantined it
	// can clear again (Rebuild).
	Offline bool
	// IdleW is the chip's measured all-idle power; SpanW is the
	// measured per-core idle→loaded span (the power one fully loaded
	// core adds).
	IdleW float64
	SpanW float64
	// Breaker guards the chip: tripped open at intake when the node's
	// provision failed outright, so placement sheds it without
	// consulting its (absent) predictors. Nil admits everything.
	Breaker *guard.Breaker
	Cores   []PlacerCore

	// demand is the chip's current modeled power draw (idle + running
	// tenants); busy marks occupied cores.
	demand    float64
	busy      []bool
	freeCores int
}

// Placer scans chips in topology order; ties in predicted frequency
// break toward the earlier chip and core, so placement is a pure
// function of (chips, demands, allowances).
type Placer struct {
	Chips []PlacerChip
}

// NewPlacer finalizes the per-chip occupancy state. Quarantined chips
// and cores are excluded from the schedulable pool.
func NewPlacer(chips []PlacerChip) *Placer {
	p := &Placer{Chips: chips}
	for i := range p.Chips {
		ch := &p.Chips[i]
		ch.busy = make([]bool, len(ch.Cores))
		ch.freeCores = 0
		ch.demand = ch.IdleW
		if ch.Quarantined {
			ch.demand = 0
			continue
		}
		for _, c := range ch.Cores {
			if !c.Quarantined {
				ch.freeCores++
			}
		}
	}
	return p
}

// Demand returns chip i's current modeled power draw.
func (p *Placer) Demand(i int) float64 { return p.Chips[i].demand }

// FreeCores returns chip i's schedulable idle core count.
func (p *Placer) FreeCores(i int) int { return p.Chips[i].freeCores }

// Place finds the best admission for a tenant with relative dynamic
// power cdyn: among chips whose breaker admits and whose projected
// draw (current demand + cdyn·span) fits the budget allowance, the
// free core with the highest Eq. 1 predicted frequency at the
// projected power. On success the core is marked busy and the chip's
// demand advanced. allow is indexed in topology order.
//
//atm:hotpath
func (p *Placer) Place(cdyn float64, allow []float64) (chipIdx, coreIdx int, predMHz float64, ok bool) {
	bestChip, bestCore := -1, -1
	bestPred := 0.0
	for i := range p.Chips {
		ch := &p.Chips[i]
		if !ch.Breaker.Allow() {
			continue
		}
		if ch.Quarantined || ch.Offline || ch.freeCores == 0 {
			continue
		}
		projected := ch.demand + cdyn*ch.SpanW
		if projected > allow[i]+budgetEps {
			continue
		}
		for j := range ch.Cores {
			c := &ch.Cores[j]
			if c.Quarantined || ch.busy[j] {
				continue
			}
			pred := c.Slope*projected + c.Intercept
			if bestChip < 0 || pred > bestPred {
				bestChip, bestCore, bestPred = i, j, pred
			}
		}
	}
	if bestChip < 0 {
		return 0, 0, 0, false
	}
	ch := &p.Chips[bestChip]
	ch.busy[bestCore] = true
	ch.freeCores--
	ch.demand += cdyn * ch.SpanW
	return bestChip, bestCore, bestPred, true
}

// Release frees a core and retires its tenant's power draw.
//
//atm:hotpath
func (p *Placer) Release(chipIdx, coreIdx int, cdyn float64) {
	ch := &p.Chips[chipIdx]
	ch.busy[coreIdx] = false
	ch.freeCores++
	ch.demand -= cdyn * ch.SpanW
}

// AddDemand adjusts a chip's modeled draw without touching occupancy —
// the throttle bookkeeping: a throttled tenant keeps its core but
// stops drawing its span.
//
//atm:hotpath
func (p *Placer) AddDemand(chipIdx int, delta float64) {
	p.Chips[chipIdx].demand += delta
}

// Reset takes chip i out of the schedulable pool at runtime: the ops
// plane calls it when a chip dies or is quarantined after its
// telemetry-loss grace window expires. All occupancy is cleared (the
// caller evacuates the tenants) and the modeled draw drops to zero —
// a dead or dark chip contributes nothing to the hierarchy. dead
// distinguishes permanent loss from a quarantine that may later be
// lifted by Rebuild; it is recorded via Offline either way, with
// Quarantined reserved for intake outcomes.
func (p *Placer) Reset(i int, dead bool) {
	ch := &p.Chips[i]
	ch.Offline = true
	if dead {
		ch.Quarantined = true
	}
	for j := range ch.busy {
		ch.busy[j] = false
	}
	ch.freeCores = 0
	ch.demand = 0
}

// Rebuild re-admits chip i with a freshly validated view of its
// intake provision: the idle/span envelope and per-core Eq. 1 fits.
// Occupancy restarts empty — evacuated tenants re-enter through the
// queue — and the modeled draw restarts at the idle floor.
func (p *Placer) Rebuild(i int, idleW, spanW float64, cores []PlacerCore) {
	ch := &p.Chips[i]
	ch.Offline = false
	ch.Quarantined = false
	ch.IdleW = idleW
	ch.SpanW = spanW
	ch.Cores = cores
	ch.busy = make([]bool, len(cores))
	ch.freeCores = 0
	for _, c := range cores {
		if !c.Quarantined {
			ch.freeCores++
		}
	}
	ch.demand = idleW
}
