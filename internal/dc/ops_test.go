package dc

import (
	"bytes"
	"testing"
)

// opsOpts is the ops-plane test campaign: the small topology under a
// longer horizon with enough tenants that displaced work has somewhere
// to land. Every assertion below is deterministic in (seed, ops seed).
func opsOpts(profile string) Options {
	o := smallOpts()
	o.Ticks = 32
	o.Tenants = 16
	o.Seed = 1
	o.OpsFaultProfile = profile
	o.OpsFaultSeed = 1
	return o
}

func opsRun(t *testing.T, profile string) *Result {
	t.Helper()
	res, err := Run(opsOpts(profile))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == nil {
		t.Fatalf("profile %q: result carries no ops summary", profile)
	}
	return res
}

func eventTicks(res *Result, kind string) []int {
	var ticks []int
	for _, ev := range res.Events {
		if ev.Kind == kind {
			ticks = append(ticks, ev.Tick)
		}
	}
	return ticks
}

// TestOpsNoneMatchesPlain: -ops-fault-profile none must be
// byte-identical to a run with the plane off — the PR 9 golden parity
// the ops plane is built around.
func TestOpsNoneMatchesPlain(t *testing.T) {
	plain, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := smallOpts()
	o.OpsFaultProfile = "none"
	o.OpsFaultSeed = 99 // must be inert when the profile is empty
	none, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if none.Ops != nil || len(none.Events) != 0 {
		t.Fatal("empty ops profile still produced an ops summary or events")
	}
	if !bytes.Equal(canon(t, plain), canon(t, none)) {
		t.Fatal("ops-fault-profile none diverged from a plain run")
	}
}

// TestOpsChipDeathMigratesDisplaced: a chip dying mid-sim evacuates
// its tenants and the scheduler re-places every one of them — nothing
// shed, no cap violations, SAFE verdict.
func TestOpsChipDeathMigratesDisplaced(t *testing.T) {
	res := opsRun(t, "chip-death")
	ops := res.Ops
	if ops.ChipDeaths != 1 {
		t.Fatalf("applied %d chip deaths, want 1", ops.ChipDeaths)
	}
	if ops.Evacuations != 1 || ops.Migrations != 1 || ops.Shed != 0 || ops.Recovered != 1 {
		t.Fatalf("tenant fate = evac %d / mig %d / shed %d / recovered %d, want 1/1/0/1",
			ops.Evacuations, ops.Migrations, ops.Shed, ops.Recovered)
	}
	if res.Budget.Violations != 0 {
		t.Fatalf("%d cap violations during recovery", res.Budget.Violations)
	}
	if !ops.Safe || ops.Verdict() != "SAFE" {
		t.Fatalf("verdict = %s, want SAFE", ops.Verdict())
	}
	// Per-tenant accounting mirrors the summary.
	migSum, displaced := 0, 0
	for _, tn := range res.Tenants {
		migSum += tn.Migrations
		if tn.Migrations > 0 || tn.Shed {
			displaced++
			if tn.Node == "" {
				t.Fatalf("displaced tenant %d lost its node attribution", tn.ID)
			}
		}
	}
	if migSum != ops.Migrations {
		t.Fatalf("tenant migration sum %d != summary %d", migSum, ops.Migrations)
	}
	if displaced != ops.Recovered+ops.Shed {
		t.Fatalf("%d displaced tenants, summary accounts for %d", displaced, ops.Recovered+ops.Shed)
	}
	// The timeline shows the death before the re-placement.
	deaths, migs := eventTicks(res, "chip-death"), eventTicks(res, "migrate")
	if len(deaths) != 1 || len(migs) != 1 {
		t.Fatalf("events: %d chip-death, %d migrate, want 1 each", len(deaths), len(migs))
	}
	if migs[0] < deaths[0] {
		t.Fatalf("migrate at tick %d precedes chip-death at tick %d", migs[0], deaths[0])
	}
}

// TestOpsFlakyLinksQuarantineLadder: link flaps outlasting the grace
// window walk the full ladder — link-down, quarantine, re-admit — and
// the MTTR is the observed repair time, not zero.
func TestOpsFlakyLinksQuarantineLadder(t *testing.T) {
	res := opsRun(t, "flaky-links")
	ops := res.Ops
	if ops.LinkFlaps != 2 {
		t.Fatalf("applied %d link flaps, want 2", ops.LinkFlaps)
	}
	if ops.Quarantines != 2 || ops.Readmits != 2 {
		t.Fatalf("ladder = %d quarantine(s) / %d readmit(s), want 2/2", ops.Quarantines, ops.Readmits)
	}
	if ops.MTTRTicks <= 0 {
		t.Fatalf("MTTR = %v ticks, want > 0", ops.MTTRTicks)
	}
	if ops.Shed != 0 || !ops.Safe || res.Budget.Violations != 0 {
		t.Fatalf("ladder run not clean: shed %d, safe %v, violations %d",
			ops.Shed, ops.Safe, res.Budget.Violations)
	}
	if ops.Evacuations == 0 || ops.Migrations != ops.Evacuations {
		t.Fatalf("evacuations %d / migrations %d: every displaced tenant must re-place",
			ops.Evacuations, ops.Migrations)
	}
	// Per node: the quarantine sits between its link-down and its
	// readmit on the tick axis.
	for _, q := range res.Events {
		if q.Kind != "quarantine" {
			continue
		}
		sawDown, sawReadmit := false, false
		for _, ev := range res.Events {
			if ev.Node != q.Node {
				continue
			}
			if ev.Kind == "link-down" && ev.Tick <= q.Tick {
				sawDown = true
			}
			if ev.Kind == "readmit" && ev.Tick > q.Tick {
				sawReadmit = true
			}
		}
		if !sawDown || !sawReadmit {
			t.Fatalf("node %s quarantined at tick %d without a preceding link-down (%v) or a later readmit (%v)",
				q.Node, q.Tick, sawDown, sawReadmit)
		}
	}
	// The availability column reflects the dark/quarantined window.
	sawDown := false
	for _, row := range res.Timeline {
		if row.Down > 0 {
			sawDown = true
			break
		}
	}
	if !sawDown {
		t.Fatal("timeline never reported a chip out of service")
	}
}

// TestOpsBrownoutDegradedRebalance: a chassis PDU brownout drops the
// effective cap mid-run; the water-fill re-apportions the survivors
// under the reduced budget and restores them afterwards with zero cap
// violations on the whole timeline.
func TestOpsBrownoutDegradedRebalance(t *testing.T) {
	res := opsRun(t, "brownout")
	ops := res.Ops
	if ops.Brownouts != 1 {
		t.Fatalf("applied %d brownouts, want 1", ops.Brownouts)
	}
	if res.Budget.Violations != 0 || !ops.Safe {
		t.Fatalf("degraded water-fill violated caps: %d violation(s), safe %v",
			res.Budget.Violations, ops.Safe)
	}
	starts, ends := eventTicks(res, "brownout-start"), eventTicks(res, "brownout-end")
	if len(starts) != 1 || len(ends) != 1 {
		t.Fatalf("events: %d brownout-start, %d brownout-end, want 1 each", len(starts), len(ends))
	}
	if ends[0] <= starts[0] {
		t.Fatalf("brownout ends at tick %d, starts at tick %d", ends[0], starts[0])
	}
	for _, ev := range res.Events {
		if ev.Kind == "brownout-start" {
			if ev.CapW <= 0 || ev.CapW >= res.Budget.ChassisCapW {
				t.Fatalf("brownout cap %v W not inside (0, chassis cap %v W)", ev.CapW, res.Budget.ChassisCapW)
			}
		}
	}
}

// TestOpsThermalForcedBelowIdle: a thermal excursion forces a chip's
// ceiling below its idle floor — the one sanctioned carve-out of the
// cap invariant — and the run still records zero violations.
func TestOpsThermalForcedBelowIdle(t *testing.T) {
	res := opsRun(t, "thermal")
	ops := res.Ops
	if ops.Thermals != 1 {
		t.Fatalf("applied %d thermals, want 1", ops.Thermals)
	}
	if res.Budget.Violations != 0 || !ops.Safe {
		t.Fatalf("thermal carve-out misread as violation: %d violation(s), safe %v",
			res.Budget.Violations, ops.Safe)
	}
	idleOf := make(map[string]float64, len(res.Chips))
	for _, c := range res.Chips {
		idleOf[c.Node] = c.IdleW
	}
	seen := false
	for _, ev := range res.Events {
		if ev.Kind != "thermal-start" {
			continue
		}
		seen = true
		idle, ok := idleOf[ev.Node]
		if !ok {
			t.Fatalf("thermal-start names unknown node %q", ev.Node)
		}
		if ev.CapW <= 0 || ev.CapW >= idle {
			t.Fatalf("thermal cap %v W on %s not below its idle floor %v W", ev.CapW, ev.Node, idle)
		}
	}
	if !seen {
		t.Fatal("no thermal-start event emitted")
	}
}

// TestOpsShedUnrecoveredTenants: kill the whole (tiny) fleet and the
// displaced tenants have nowhere to go — they are shed at the horizon,
// the verdict flips UNSAFE, and the per-tenant records agree.
func TestOpsShedUnrecoveredTenants(t *testing.T) {
	o := Options{
		Racks: 1, ChassisPerRack: 1, ChipsPerChassis: 2,
		Ticks: 10, Tenants: 12, Seed: 1,
		OpsFaultProfile: "chip-deaths=2", OpsFaultSeed: 1,
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Ops
	if ops == nil || ops.ChipDeaths != 2 {
		t.Fatalf("ops summary %+v, want 2 applied chip deaths", ops)
	}
	if ops.Shed == 0 {
		t.Fatal("whole fleet dead but no tenant was shed")
	}
	if ops.Safe || ops.Verdict() != "UNSAFE" {
		t.Fatalf("verdict = %s with %d shed tenant(s), want UNSAFE", ops.Verdict(), ops.Shed)
	}
	shed := 0
	for _, tn := range res.Tenants {
		if !tn.Shed {
			continue
		}
		shed++
		if tn.Completed {
			t.Fatalf("tenant %d both shed and completed", tn.ID)
		}
	}
	if shed != ops.Shed {
		t.Fatalf("%d tenants marked shed, summary says %d", shed, ops.Shed)
	}
	if ops.TenantTicksLost == 0 {
		t.Fatal("shed tenants lost zero tenant-ticks")
	}
}

// TestOpsWorkerCountInvariance: the full ops-storm scenario — death,
// flaps, brownout, thermal, the complete recovery ladder — must stay
// byte-identical across intake worker counts, like every other output.
func TestOpsWorkerCountInvariance(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 3, 8} {
		o := opsOpts("ops-storm")
		o.Workers = workers
		res, err := Run(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := canon(t, res)
		if ref == nil {
			ref = got
			if res.Ops.Migrations == 0 {
				t.Fatal("ops-storm displaced nothing; the invariance case is vacuous")
			}
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d: ops-faulted canonical output diverged from workers=1", workers)
		}
	}
}

// TestRemoveTenantClearsVacatedSlot: the completion-path helper must
// nil the vacated tail slot so the backing array does not pin the
// removed tenant for the rest of the run (sim.go's removeTenant).
func TestRemoveTenantClearsVacatedSlot(t *testing.T) {
	a, b, c := &tenant{id: 1}, &tenant{id: 2}, &tenant{id: 3}
	list := []*tenant{a, b, c}
	got := removeTenant(list, b)
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("removeTenant returned %v", got)
	}
	if tail := list[:3][2]; tail != nil {
		t.Fatalf("vacated tail slot still pins tenant %d", tail.id)
	}
	// Removing a tenant that is not in the list is a no-op.
	if got = removeTenant(got, b); len(got) != 2 {
		t.Fatalf("no-op removal changed length to %d", len(got))
	}
}
