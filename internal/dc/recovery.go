package dc

// The recovery half of the operational fault plane: a node-level
// ladder in the style of internal/sentinel's step-back ladder, driven
// once per tick before the budget pass.
//
//	telemetry loss → grace window → quarantine (breaker opens, tenants
//	evacuated, idle draw freed) → link returns → breaker probe →
//	re-admit (placement state rebuilt from the immutable intake
//	provision, integral controller soft-started at the idle floor)
//
// Chip death short-circuits the ladder: evacuation without re-entry.
// PDU brownouts and thermal excursions bypass it entirely — they act
// on the budget tree's effective caps and recover by restoring them,
// with the degraded-mode water-fill re-apportioning the reduced (and
// later the freed) capacity on the very next Apportion.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/platform"
)

// opsNodeState is a chip's position on the recovery ladder.
type opsNodeState uint8

const (
	opsUp opsNodeState = iota
	opsQuarantined
	opsDead
)

// OpsEvent is one row of the emitted event/recovery timeline.
type OpsEvent struct {
	Tick int    `json:"tick"`
	Kind string `json:"kind"`
	// Node is the affected entity: a chip ("r00c01s03"), a chassis
	// ("r00c01") or a rack ("r00") for brownouts; empty for
	// tenant-scoped rows (migrate/shed), which name the tenant in
	// Detail.
	Node   string  `json:"node,omitempty"`
	Detail string  `json:"detail,omitempty"`
	CapW   float64 `json:"cap_w,omitempty"`
}

// OpsSummary is the availability summary of an ops-faulted run.
type OpsSummary struct {
	Profile string `json:"profile"`
	Seed    uint64 `json:"seed"`
	// Applied event counts (brownouts covers chassis and rack).
	ChipDeaths int `json:"chip_deaths"`
	LinkFlaps  int `json:"link_flaps"`
	Brownouts  int `json:"brownouts"`
	Thermals   int `json:"thermals"`
	// Ladder traffic.
	Quarantines int `json:"quarantines"`
	Readmits    int `json:"readmits"`
	// Tenant impact: evacuations (tenant-displacements, one tenant may
	// count several times), migrations (successful re-placements), shed
	// (displaced and never re-placed by the horizon), recovered
	// (distinct displaced tenants that were running again at the end).
	Evacuations int `json:"evacuations"`
	Migrations  int `json:"migrations"`
	Shed        int `json:"shed"`
	Recovered   int `json:"recovered"`
	// TenantTicksLost sums ticks displaced tenants spent queued;
	// MTTRTicks is the mean quarantine→re-admit repair time.
	TenantTicksLost int     `json:"tenant_ticks_lost"`
	MTTRTicks       float64 `json:"mttr_ticks"`
	// Safe is the run's verdict: every displaced tenant re-placed and
	// zero cap violations on the timeline.
	Safe bool `json:"safe"`
}

// Verdict renders the availability verdict in internal/lifetime's
// SAFE/UNSAFE wording.
func (s *OpsSummary) Verdict() string {
	if s.Safe {
		return "SAFE"
	}
	return "UNSAFE"
}

// opsPlane carries the fault schedule and recovery ladder through the
// operation sim. All state is indexed by topology order; the plane is
// driven single-threaded from the tick loop, so its draws and
// transitions are worker-count-invariant by construction.
type opsPlane struct {
	p     OpsProfile
	sched []OpsSched
	next  int

	placer *Placer
	tree   *BudgetTree
	provs  []*platform.Provision
	// idleW is each chip's provisioned idle floor — what re-admission
	// restores; 0 for intake-quarantined chips.
	idleW []float64
	// evacuate pulls chip i's tenants back into the queue, returning
	// how many were displaced (wired to the sim loop).
	evacuate func(chip, tick int) int

	state         []opsNodeState
	linkDownUntil []int
	linkDownSince []int
	wasDark       []bool
	thermalUntil  []int
	quarantinedAt []int
	chassisUntil  []int
	rackUntil     []int

	chassisPerRack int
	events         []OpsEvent
	sum            OpsSummary
	downTicksTotal int

	eventsC   *obs.Counter
	quarC     *obs.Counter
	readmitsC *obs.Counter
	migrC     *obs.Counter
}

// newOpsPlane draws the schedule and initializes the ladder. seed 0 is
// normalized to 1 (the injector convention everywhere else).
func newOpsPlane(p OpsProfile, seed uint64, o Options, placer *Placer, tree *BudgetTree,
	provs []*platform.Provision, evacuate func(chip, tick int) int, reg *obs.Registry) *opsPlane {
	o = o.withDefaults()
	if seed == 0 {
		seed = 1
	}
	n := len(placer.Chips)
	live := make([]bool, n)
	idleW := make([]float64, n)
	for i := range placer.Chips {
		live[i] = !placer.Chips[i].Quarantined
		idleW[i] = placer.Chips[i].IdleW
	}
	op := &opsPlane{
		p:              p,
		sched:          DrawOps(p, seed, o, live),
		placer:         placer,
		tree:           tree,
		provs:          provs,
		idleW:          idleW,
		evacuate:       evacuate,
		state:          make([]opsNodeState, n),
		linkDownUntil:  make([]int, n),
		linkDownSince:  make([]int, n),
		wasDark:        make([]bool, n),
		thermalUntil:   make([]int, n),
		quarantinedAt:  make([]int, n),
		chassisUntil:   make([]int, o.Racks*o.ChassisPerRack),
		rackUntil:      make([]int, o.Racks),
		chassisPerRack: o.ChassisPerRack,
		eventsC:        reg.Counter("dc_ops_events_total"),
		quarC:          reg.Counter("dc_ops_quarantines_total"),
		readmitsC:      reg.Counter("dc_ops_readmits_total"),
		migrC:          reg.Counter("dc_ops_migrations_total"),
	}
	op.sum.Profile = p.String()
	op.sum.Seed = seed
	return op
}

func (op *opsPlane) chassisID(ci int) string {
	return fmt.Sprintf("r%02dc%02d", ci/op.chassisPerRack, ci%op.chassisPerRack)
}

func (op *opsPlane) rackID(r int) string { return fmt.Sprintf("r%02d", r) }

func (op *opsPlane) emit(ev OpsEvent) {
	op.events = append(op.events, ev)
	op.eventsC.Inc()
}

// dark reports whether chip i's FSP telemetry is lost this tick while
// the node still runs (the grace-window phase): the sim holds the last
// good sample for the integral controller instead.
func (op *opsPlane) dark(i, tick int) bool {
	return op.state[i] == opsUp && tick < op.linkDownUntil[i]
}

// downCount counts chips out of service this tick: dead, quarantined,
// or running dark.
func (op *opsPlane) downCount(tick int) int {
	n := 0
	for i := range op.state {
		if op.state[i] != opsUp || tick < op.linkDownUntil[i] {
			n++
		}
	}
	return n
}

// beginTick applies this tick's scheduled events, then walks the
// recovery ladder: excursions end, dark nodes cross the grace window
// into quarantine, recovered links earn a breaker probe and re-admit.
// Runs before the budget pass, so freed or reduced capacity is
// re-apportioned the same tick.
func (op *opsPlane) beginTick(tick int) {
	for op.next < len(op.sched) && op.sched[op.next].Tick <= tick {
		op.apply(op.sched[op.next], tick)
		op.next++
	}

	// Excursions end: effective caps restore, next Apportion re-fills.
	for i := range op.thermalUntil {
		if op.thermalUntil[i] != 0 && tick >= op.thermalUntil[i] {
			op.thermalUntil[i] = 0
			op.tree.ResetChipCap(i)
			op.emit(OpsEvent{Tick: tick, Kind: "thermal-end", Node: op.placer.Chips[i].ID})
		}
	}
	for ci := range op.chassisUntil {
		if op.chassisUntil[ci] != 0 && tick >= op.chassisUntil[ci] {
			op.chassisUntil[ci] = 0
			op.tree.ResetChassisCap(ci)
			op.emit(OpsEvent{Tick: tick, Kind: "brownout-end", Node: op.chassisID(ci)})
		}
	}
	for r := range op.rackUntil {
		if op.rackUntil[r] != 0 && tick >= op.rackUntil[r] {
			op.rackUntil[r] = 0
			op.tree.ResetRackCap(r)
			op.emit(OpsEvent{Tick: tick, Kind: "brownout-end", Node: op.rackID(r)})
		}
	}

	// The node ladder.
	for i := range op.state {
		down := tick < op.linkDownUntil[i]
		switch op.state[i] {
		case opsUp:
			if down && tick-op.linkDownSince[i] >= op.p.GraceTicks {
				n := op.evacuate(i, tick)
				op.placer.Reset(i, false)
				op.tree.SetIdle(i, 0)
				op.placer.Chips[i].Breaker.Failure()
				op.quarantinedAt[i] = tick
				op.state[i] = opsQuarantined
				op.sum.Quarantines++
				op.sum.Evacuations += n
				op.quarC.Inc()
				op.emit(OpsEvent{Tick: tick, Kind: "quarantine", Node: op.placer.Chips[i].ID,
					Detail: fmt.Sprintf("telemetry loss exceeded %d-tick grace, %d tenant(s) evacuated", op.p.GraceTicks, n)})
			} else if !down && op.wasDark[i] {
				op.emit(OpsEvent{Tick: tick, Kind: "link-up", Node: op.placer.Chips[i].ID,
					Detail: "recovered within grace"})
			}
		case opsQuarantined:
			if !down && op.placer.Chips[i].Breaker.Allow() {
				op.readmit(i, tick)
			}
		}
		op.wasDark[i] = op.dark(i, tick)
	}
}

// readmit rebuilds chip i from its immutable intake record after a
// successful breaker probe. A record that fails validation re-opens
// the breaker: the node stays quarantined and earns another probe
// after the open window.
func (op *opsPlane) readmit(i, tick int) {
	node := op.placer.Chips[i].ID
	var view platform.NodeView
	err := fmt.Errorf("dc: node %s has no intake provision", node)
	if op.provs[i] != nil {
		view, err = op.provs[i].View()
	}
	if err == nil && !view.Live {
		err = fmt.Errorf("dc: node %s has no live cores", node)
	}
	if err != nil {
		op.placer.Chips[i].Breaker.Failure()
		op.emit(OpsEvent{Tick: tick, Kind: "readmit-failed", Node: node, Detail: err.Error()})
		return
	}
	cores := make([]PlacerCore, len(view.Cores))
	for j, c := range view.Cores {
		cores[j] = PlacerCore{Label: c.Label, Quarantined: c.Quarantined, Slope: c.Slope, Intercept: c.Intercept}
	}
	op.placer.Rebuild(i, view.IdleW, view.SpanW, cores)
	// Soft-start: the integral state restarts at the idle floor, so the
	// re-admitted chip earns budget back over the next few ticks.
	op.tree.ReAdmit(i, view.IdleW)
	op.placer.Chips[i].Breaker.Success()
	downFor := tick - op.quarantinedAt[i]
	op.state[i] = opsUp
	op.sum.Readmits++
	op.downTicksTotal += downFor
	op.readmitsC.Inc()
	op.emit(OpsEvent{Tick: tick, Kind: "readmit", Node: node,
		Detail: fmt.Sprintf("link recovered, rebuilt after %d tick(s) down", downFor)})
}

// apply fires one scheduled event.
func (op *opsPlane) apply(ev OpsSched, tick int) {
	switch ev.Kind {
	case OpsChipDeath:
		i := ev.Target
		if op.state[i] == opsDead {
			return
		}
		n := op.evacuate(i, tick)
		op.placer.Reset(i, true)
		op.tree.SetIdle(i, 0)
		op.placer.Chips[i].Breaker.Failure()
		op.state[i] = opsDead
		op.sum.ChipDeaths++
		op.sum.Evacuations += n
		op.emit(OpsEvent{Tick: tick, Kind: "chip-death", Node: op.placer.Chips[i].ID,
			Detail: fmt.Sprintf("%d tenant(s) evacuated", n)})
	case OpsLinkFlap:
		i := ev.Target
		if op.state[i] == opsDead {
			return
		}
		if tick >= op.linkDownUntil[i] {
			op.linkDownSince[i] = tick
		}
		if until := tick + ev.Duration; until > op.linkDownUntil[i] {
			op.linkDownUntil[i] = until
		}
		op.sum.LinkFlaps++
		op.emit(OpsEvent{Tick: tick, Kind: "link-down", Node: op.placer.Chips[i].ID,
			Detail: fmt.Sprintf("telemetry dark for %d tick(s)", ev.Duration)})
	case OpsThermal:
		i := ev.Target
		if op.state[i] != opsUp {
			return
		}
		capW := op.p.ThermalFrac * op.idleW[i]
		op.thermalUntil[i] = tick + ev.Duration
		op.tree.ForceChipCap(i, capW)
		op.sum.Thermals++
		op.emit(OpsEvent{Tick: tick, Kind: "thermal-start", Node: op.placer.Chips[i].ID,
			CapW: capW, Detail: "allowance forced below idle floor"})
	case OpsBrownout:
		ci := ev.Target
		capW := op.p.BrownoutFrac * op.tree.chassisCap
		op.chassisUntil[ci] = tick + ev.Duration
		op.tree.SetChassisCap(ci, capW)
		op.sum.Brownouts++
		op.emit(OpsEvent{Tick: tick, Kind: "brownout-start", Node: op.chassisID(ci), CapW: capW})
	case OpsRackBrownout:
		r := ev.Target
		capW := op.p.BrownoutFrac * op.tree.rackCap
		op.rackUntil[r] = tick + ev.Duration
		op.tree.SetRackCap(r, capW)
		op.sum.Brownouts++
		op.emit(OpsEvent{Tick: tick, Kind: "brownout-start", Node: op.rackID(r), CapW: capW})
	}
}
