// Package dc is the datacenter plane: a deterministic rack-scale
// simulation where racks hold chassis of simulated POWER servers, each
// manufactured from its own silicon seed and fine-tuned through the
// full ATM stress-test flow. The plane has two phases:
//
//  1. Intake — every node is provisioned through internal/platform as
//     a fleet dcprovision job (sharded across workers, content-
//     addressed cache, kill-safe -resume): stress-test deployment,
//     per-core Eq. 1 frequency-predictor calibration, and the
//     idle/loaded power envelope. A node whose provision fails is
//     quarantined behind a tripped circuit breaker; the rack keeps
//     going.
//  2. Operation — a single-threaded tick loop runs the hierarchical
//     power budget (rack PDU → chassis → chip water-fill with a
//     Chen-style integral controller per chip, see budget.go) and the
//     predictor-driven global scheduler (place.go) over a seeded
//     tenant arrival stream.
//
// Both phases are pure functions of Options: the canonical Result
// serializes byte-identically at every worker count, plain or faulted,
// fresh or resumed.
package dc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fleet"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/rng"
)

// Options configures a datacenter campaign. The zero value of every
// field selects the noted default.
type Options struct {
	// Racks, ChassisPerRack, ChipsPerChassis shape the topology.
	// Defaults 1, 2, 4.
	Racks           int
	ChassisPerRack  int
	ChipsPerChassis int
	// Workers bounds the intake phase's fleet pool (<=0 = 1). The
	// result is byte-identical for every value.
	Workers int
	// Seed drives the tenant stream and the per-node trial seeds
	// (node i deploys with Seed+i). Default 1.
	Seed uint64
	// SiliconStart is the first node's silicon seed; node i is
	// manufactured from SiliconStart+i. Default 1.
	SiliconStart uint64
	// Tenants is the workload count (0 = 2 per chip).
	Tenants int
	// Ticks is the operation horizon (0 = 32).
	Ticks int
	// Rollback is the intake deployment's extra safety margin.
	Rollback int
	// RackCapW, ChassisCapW, ChipCapW cap each level of the budget
	// hierarchy. 0 derives the cap from the provisioned envelope (see
	// autoCaps): tight enough that the controller visibly throttles,
	// loose enough that idle draw always fits.
	RackCapW    float64
	ChassisCapW float64
	ChipCapW    float64
	// KI is the per-chip integral gain (0 = 0.5).
	KI float64
	// FaultProfile, when non-empty, arms deterministic fault injection
	// on every node, each with an independent stream split from
	// FaultSeed by node ID.
	FaultProfile string
	FaultSeed    uint64
	// OpsFaultProfile, when non-empty and not "none", arms the
	// operational fault timeline (ParseOpsProfile spec): seeded runtime
	// chip deaths, FSP link flaps, PDU brownouts and thermal excursions
	// drawn from labelled splits of OpsFaultSeed (0 = 1), with the
	// recovery ladder, tenant migration and degraded-mode water-fill
	// built on top. "none" or "" keeps the exact pre-ops code path.
	OpsFaultProfile string
	OpsFaultSeed    uint64
	// CacheDir/Resume pass through to the intake fleet (content-
	// addressed provision cache, kill-safe resume).
	CacheDir string
	Resume   bool
	// Obs, when non-nil, collects budget-loop gauges, placement and
	// throttle counters, and the intake fleet's own series.
	Obs *obs.Registry
	// Trace, when non-nil, records the intake job spans (via the
	// fleet) and one span per placed tenant on the tick axis, emitted
	// in tenant order after the sim so the trace is deterministic.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Racks <= 0 {
		o.Racks = 1
	}
	if o.ChassisPerRack <= 0 {
		o.ChassisPerRack = 2
	}
	if o.ChipsPerChassis <= 0 {
		o.ChipsPerChassis = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SiliconStart == 0 {
		o.SiliconStart = 1
	}
	chips := o.Racks * o.ChassisPerRack * o.ChipsPerChassis
	if o.Tenants == 0 {
		o.Tenants = 2 * chips
	}
	if o.Ticks <= 0 {
		o.Ticks = 32
	}
	if o.KI <= 0 {
		o.KI = 0.5
	}
	return o
}

// Topology records the campaign's shape in the result document.
type Topology struct {
	Racks           int    `json:"racks"`
	ChassisPerRack  int    `json:"chassis_per_rack"`
	ChipsPerChassis int    `json:"chips_per_chassis"`
	Chips           int    `json:"chips"`
	Tenants         int    `json:"tenants"`
	Ticks           int    `json:"ticks"`
	Seed            uint64 `json:"seed"`
	SiliconStart    uint64 `json:"silicon_start"`
	FaultProfile    string `json:"fault_profile,omitempty"`
}

// ChipSummary is one node's intake outcome.
type ChipSummary struct {
	Node        string `json:"node"`
	SiliconSeed uint64 `json:"silicon_seed"`
	// Err is the node's provision failure ("" on success). Failed
	// nodes are quarantined behind a tripped breaker.
	Err              string  `json:"err,omitempty"`
	Quarantined      bool    `json:"quarantined,omitempty"`
	QuarantinedCores int     `json:"quarantined_cores,omitempty"`
	IdleW            float64 `json:"idle_w,omitempty"`
	LoadedW          float64 `json:"loaded_w,omitempty"`
	SpeedDiffMHz     float64 `json:"speed_diff_mhz,omitempty"`
}

// TenantOutcome is one workload's fate.
type TenantOutcome struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Critical bool   `json:"critical,omitempty"`
	Arrival  int    `json:"arrival"`
	// Node/Core locate the placement ("" if never placed).
	Node string `json:"node,omitempty"`
	Core string `json:"core,omitempty"`
	// PredFreqMHz is the Eq. 1 predicted frequency at placement time —
	// the number the scheduler maximized.
	PredFreqMHz    float64 `json:"pred_freq_mhz,omitempty"`
	Start          int     `json:"start,omitempty"`
	End            int     `json:"end,omitempty"`
	ThrottledTicks int     `json:"throttled_ticks,omitempty"`
	Placed         bool    `json:"placed,omitempty"`
	Completed      bool    `json:"completed,omitempty"`
	// Operational-fault fate (all zero without the ops plane):
	// Migrations counts successful re-placements after evacuation,
	// DowntimeTicks the queued-while-displaced ticks, Shed marks a
	// displaced tenant never re-placed by the horizon.
	Migrations    int  `json:"migrations,omitempty"`
	DowntimeTicks int  `json:"downtime_ticks,omitempty"`
	Shed          bool `json:"shed,omitempty"`
}

// TickRow is one operation tick of the budget timeline: the maximum
// draw seen at each level against its cap, and the scheduler state.
type TickRow struct {
	Tick        int     `json:"tick"`
	RackMaxW    float64 `json:"rack_max_w"`
	ChassisMaxW float64 `json:"chassis_max_w"`
	ChipMaxW    float64 `json:"chip_max_w"`
	Queued      int     `json:"queued"`
	Running     int     `json:"running"`
	Throttled   int     `json:"throttled"`
	// Violations counts cap breaches at any level this tick. The
	// water-fill + min(grant, soft) design keeps this zero unless a
	// caller forces a cap below the fleet's idle draw.
	Violations int `json:"violations"`
	// Down counts chips out of service this tick (dead, quarantined,
	// or telemetry-dark); only the ops plane sets it.
	Down int `json:"down,omitempty"`
}

// BudgetSummary records the hierarchy's configuration and outcome.
type BudgetSummary struct {
	RackCapW       float64 `json:"rack_cap_w"`
	ChassisCapW    float64 `json:"chassis_cap_w"`
	ChipCapW       float64 `json:"chip_cap_w"`
	KI             float64 `json:"ki"`
	PeakRackW      float64 `json:"peak_rack_w"`
	PeakChassisW   float64 `json:"peak_chassis_w"`
	PeakChipW      float64 `json:"peak_chip_w"`
	Violations     int     `json:"violations"`
	ThrottleEvents int     `json:"throttle_events"`
	ResumeEvents   int     `json:"resume_events"`
}

// PlacementSummary records the scheduler's outcome.
type PlacementSummary struct {
	Placed          int   `json:"placed"`
	Completed       int   `json:"completed"`
	Unplaced        int   `json:"unplaced"`
	Deferrals       int   `json:"deferrals"`
	BreakerRejected int64 `json:"breaker_rejected"`
}

// Result is the campaign's canonical outcome: byte-identical across
// worker counts and across fresh, cached, and resumed intakes.
type Result struct {
	Topology     Topology         `json:"topology"`
	CampaignHash string           `json:"campaign_hash"`
	Chips        []ChipSummary    `json:"chips"`
	Tenants      []TenantOutcome  `json:"tenants"`
	Timeline     []TickRow        `json:"timeline"`
	Budget       BudgetSummary    `json:"budget"`
	Placement    PlacementSummary `json:"placement"`

	// Ops and Events carry the operational fault plane's availability
	// summary and event/recovery timeline; both absent (and the
	// serialization unchanged) when the plane is off.
	Ops    *OpsSummary `json:"ops,omitempty"`
	Events []OpsEvent  `json:"events,omitempty"`

	// FailedJobs lists intake jobs that failed (provenance for the
	// exit-code contract; the nodes are quarantined, not fatal).
	FailedJobs []string `json:"failed_jobs,omitempty"`
	// CachedJobs counts intake results served from the cache. Cached
	// is provenance, not content: it is excluded from the canonical
	// serialization so resumed campaigns stay byte-identical.
	CachedJobs int `json:"-"`
}

// QuarantinedChips counts nodes the scheduler never places on.
func (r *Result) QuarantinedChips() int {
	n := 0
	for _, c := range r.Chips {
		if c.Quarantined {
			n++
		}
	}
	return n
}

// WriteJSON writes the canonical result document with a trailing
// newline.
func (r *Result) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// NodeID names a chip slot: rack, chassis, slot in topology order.
func NodeID(rack, chassis, slot int) string {
	return fmt.Sprintf("r%02dc%02ds%02d", rack, chassis, slot)
}

// Campaign builds the intake fleet campaign for the topology: one
// single-chip dcprovision job per node, silicon seeds SiliconStart+i,
// trial seeds Seed+i, fault streams split from FaultSeed by node ID.
// An armed ops profile is stamped (canonically) into every job spec so
// the campaign hash — and therefore the checkpoint manifest — names
// the whole operational scenario, not just the intake inputs.
func Campaign(o Options) *fleet.Campaign {
	o = o.withDefaults()
	name := fmt.Sprintf("dc-r%dc%ds%d-s%d", o.Racks, o.ChassisPerRack, o.ChipsPerChassis, o.SiliconStart)
	if o.FaultProfile != "" {
		name += "-faulted"
	}
	var opsProfile string
	var opsSeed uint64
	if p, err := ParseOpsProfile(o.OpsFaultProfile); err == nil && !p.Empty() {
		opsProfile = p.String()
		opsSeed = o.OpsFaultSeed
		if opsSeed == 0 {
			opsSeed = 1
		}
		name += "-ops"
	}
	c := &fleet.Campaign{Name: name}
	i := 0
	for r := 0; r < o.Racks; r++ {
		for ch := 0; ch < o.ChassisPerRack; ch++ {
			for s := 0; s < o.ChipsPerChassis; s++ {
				node := NodeID(r, ch, s)
				j := fleet.Job{
					ID:          "dc-" + node,
					Kind:        fleet.KindDCProvision,
					SiliconSeed: o.SiliconStart + uint64(i),
					Chips:       1,
					Seed:        o.Seed + uint64(i),
					Rollback:    o.Rollback,
				}
				if o.FaultProfile != "" {
					j.FaultProfile = o.FaultProfile
					base := o.FaultSeed
					if base == 0 {
						base = 1
					}
					seed := rng.New(base).Split("dc/" + node).Uint64()
					if seed == 0 {
						seed = 1
					}
					j.FaultSeed = seed
				}
				if opsProfile != "" {
					j.OpsProfile = opsProfile
					j.OpsSeed = opsSeed
				}
				c.Jobs = append(c.Jobs, j)
				i++
			}
		}
	}
	return c
}

// Run executes the campaign: sharded intake, then the budget/placement
// simulation. A failed node quarantines its chip and the run
// continues; Run errors only on spec or infrastructure failures.
func Run(o Options) (*Result, error) {
	o = o.withDefaults()
	// Parse the ops profile up front so a bad spec fails before the
	// (expensive) intake fleet runs.
	ops, err := ParseOpsProfile(o.OpsFaultProfile)
	if err != nil {
		return nil, err
	}
	campaign := Campaign(o)
	fres, err := fleet.Run(campaign, fleet.Options{
		Workers:  o.Workers,
		CacheDir: o.CacheDir,
		Resume:   o.Resume,
		Obs:      o.Obs,
		Trace:    o.Trace,
	})
	if err != nil {
		return nil, err
	}
	return simulate(o, ops, campaign, fres)
}

// intakeChips turns the merged fleet results into the scheduler's chip
// view plus the per-node summaries and retained provision records, in
// topology order. Failed nodes get a breaker tripped open past the sim
// horizon. clock, when non-nil, is the ops plane's logical tick clock:
// live nodes' breakers then run on it with a finite open window of
// reAdmitTicks, so a runtime quarantine earns a re-admission probe —
// with no ops plane (clock nil) every breaker keeps the original
// event-clock options and, since a live node's breaker never trips,
// the operation sim is bit-identical to the pre-ops plane.
func intakeChips(o Options, fres *fleet.CampaignResult, clock *int64, reAdmitTicks int64) ([]PlacerChip, []ChipSummary, []*platform.Provision) {
	chips := make([]PlacerChip, len(fres.Results))
	sums := make([]ChipSummary, len(fres.Results))
	provs := make([]*platform.Provision, len(fres.Results))
	i := 0
	for r := 0; r < o.Racks; r++ {
		for ch := 0; ch < o.ChassisPerRack; ch++ {
			for s := 0; s < o.ChipsPerChassis; s++ {
				node := NodeID(r, ch, s)
				res := fres.Results[i]
				sum := ChipSummary{Node: node, SiliconSeed: o.SiliconStart + uint64(i)}
				pc := PlacerChip{ID: node}
				prov, derr := res.DCProvision()
				switch {
				case derr != nil:
					sum.Err = res.Err
					if sum.Err == "" {
						sum.Err = derr.Error()
					}
					sum.Quarantined = true
					pc.Quarantined = true
				case len(prov.Provision.Chips) != 1:
					sum.Err = fmt.Sprintf("dc: node %s provisioned %d chips, want 1", node, len(prov.Provision.Chips))
					sum.Quarantined = true
					pc.Quarantined = true
				default:
					cp := prov.Provision.Chips[0]
					sum.IdleW = cp.IdleW
					sum.LoadedW = cp.LoadedW
					sum.SpeedDiffMHz = prov.Provision.SpeedDiffMHz
					pc.IdleW = cp.IdleW
					pc.SpanW = 0
					if n := len(cp.Cores); n > 0 {
						pc.SpanW = (cp.LoadedW - cp.IdleW) / float64(n)
					}
					live := 0
					for _, core := range cp.Cores {
						pc.Cores = append(pc.Cores, PlacerCore{
							Label:       core.Core,
							Quarantined: core.Quarantined,
							Slope:       core.FreqSlope,
							Intercept:   core.FreqIntercept,
						})
						if core.Quarantined {
							sum.QuarantinedCores++
						} else {
							live++
						}
					}
					if live == 0 {
						sum.Quarantined = true
						pc.Quarantined = true
					}
					provs[i] = prov.Provision
				}
				opts := guard.BreakerOptions{
					Name: "dc/" + node,
					// One failed provision quarantines the node; the
					// open window outlasts any sim horizon so the
					// breaker never half-opens into a broken chip.
					FailureThreshold: 1,
					OpenTicks:        1 << 40,
					Obs:              o.Obs,
				}
				if clock != nil && !pc.Quarantined {
					// Ops mode: runtime quarantines measure their open
					// window on the sim tick clock and then probe for
					// re-admission.
					opts.OpenTicks = reAdmitTicks
					opts.Now = func() int64 { return *clock }
				}
				pc.Breaker = guard.NewBreaker(opts)
				if pc.Quarantined {
					pc.Breaker.Failure()
				}
				chips[i] = pc
				sums[i] = sum
				i++
			}
		}
	}
	return chips, sums, provs
}

// autoCaps derives the budget caps not set explicitly. The chip cap
// sits at 92% of the hottest provisioned envelope (so a fully loaded
// chip must be throttled), the chassis cap at 75% of its chips' summed
// caps, the rack cap at 85% of its chassis' — each floored at 105% of
// the level's worst-case idle draw so an idle fleet always fits.
func autoCaps(o Options, chips []PlacerChip) (rackCap, chassisCap, chipCap float64) {
	rackCap, chassisCap, chipCap = o.RackCapW, o.ChassisCapW, o.ChipCapW
	if chipCap == 0 {
		maxLoaded := 0.0
		for i := range chips {
			loaded := chips[i].IdleW + chips[i].SpanW*float64(len(chips[i].Cores))
			if !chips[i].Quarantined && loaded > maxLoaded {
				maxLoaded = loaded
			}
		}
		if maxLoaded == 0 {
			maxLoaded = 100 // every node quarantined; any positive cap does
		}
		chipCap = 0.92 * maxLoaded
	}
	maxChassisIdle, maxRackIdle := 0.0, 0.0
	for r := 0; r < o.Racks; r++ {
		rackIdle := 0.0
		for c := 0; c < o.ChassisPerRack; c++ {
			idle := 0.0
			for s := 0; s < o.ChipsPerChassis; s++ {
				i := (r*o.ChassisPerRack+c)*o.ChipsPerChassis + s
				if !chips[i].Quarantined {
					idle += chips[i].IdleW
				}
			}
			if idle > maxChassisIdle {
				maxChassisIdle = idle
			}
			rackIdle += idle
		}
		if rackIdle > maxRackIdle {
			maxRackIdle = rackIdle
		}
	}
	if chassisCap == 0 {
		chassisCap = 0.75 * float64(o.ChipsPerChassis) * chipCap
		if floor := 1.05 * maxChassisIdle; chassisCap < floor {
			chassisCap = floor
		}
	}
	if rackCap == 0 {
		rackCap = 0.85 * float64(o.ChassisPerRack) * chassisCap
		if floor := 1.05 * maxRackIdle; rackCap < floor {
			rackCap = floor
		}
	}
	return rackCap, chassisCap, chipCap
}
