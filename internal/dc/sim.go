package dc

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/workload"
)

// The operation phase: a single-threaded deterministic tick loop over
// the intaken fleet. Per tick:
//
//	completions → arrivals → Apportion → placement → throttle/resume
//	→ measure → Regulate → record
//
// Placement admits against Allowance (this tick's grant gated by the
// previous tick's integral state), so a freshly granted chip ramps up
// over a few ticks — the Chen controller's soft start. Throttling
// (background tenants first, most recent placement first) enforces
// demand ≤ allowance per chip; a throttled tenant keeps its core but
// draws no span power and makes no progress.

// tenant is one workload's sim state.
type tenant struct {
	id       int
	wl       workload.Profile
	critical bool
	arrival  int
	duration int

	chip, core int // -1 while unplaced
	coreLabel  string
	nodeID     string
	predMHz    float64
	start, end int
	remaining  int

	placed, completed, throttled bool
	throttledTicks               int

	// Operational-fault bookkeeping: a tenant evacuated off a dying or
	// quarantined chip re-enters the queue with pendingMig set until
	// the placer finds it a new home (a migration) or the horizon ends
	// (shed). downtimeTicks counts the queued-while-displaced ticks.
	pendingMig    bool
	everDisplaced bool
	shed          bool
	migrations    int
	downtimeTicks int
}

// makeTenants draws the arrival stream from its own labelled split of
// the campaign seed: realistic workloads, arrivals over the first half
// of the horizon, durations up to a quarter of it.
func makeTenants(o Options) []*tenant {
	src := rng.New(o.Seed).Split("dc/tenants")
	pool := workload.Realistic()
	arrivalSpan := o.Ticks / 2
	if arrivalSpan < 1 {
		arrivalSpan = 1
	}
	durSpan := o.Ticks / 4
	if durSpan < 1 {
		durSpan = 1
	}
	out := make([]*tenant, o.Tenants)
	for i := range out {
		wl := pool[src.Intn(len(pool))]
		out[i] = &tenant{
			id:       i,
			wl:       wl,
			critical: wl.Role == workload.RoleCritical,
			arrival:  src.Intn(arrivalSpan),
			duration: 1 + src.Intn(durSpan),
			chip:     -1,
			core:     -1,
		}
		out[i].remaining = out[i].duration
	}
	return out
}

// simulate runs the operation phase over the merged intake results and
// assembles the canonical Result. ops is the parsed operational fault
// profile; the empty profile selects the exact pre-ops code path, so
// "-ops-fault-profile none" stays byte-identical to a plain run.
func simulate(o Options, ops OpsProfile, campaign *fleet.Campaign, fres *fleet.CampaignResult) (*Result, error) {
	opsOn := !ops.Empty()
	// With the ops plane active, live-node breakers run on the sim's
	// logical tick clock so quarantine windows are measured in ticks.
	var clock *int64
	if opsOn {
		clock = new(int64)
	}
	chips, sums, provs := intakeChips(o, fres, clock, int64(ops.ReAdmitTicks))
	rackCap, chassisCap, chipCap := autoCaps(o, chips)

	nChips := len(chips)
	idle := make([]float64, nChips)
	for i := range chips {
		if !chips[i].Quarantined {
			idle[i] = chips[i].IdleW
		}
	}
	tree := NewBudgetTree(o.Racks, o.ChassisPerRack, o.ChipsPerChassis, rackCap, chassisCap, chipCap, o.KI, idle)
	placer := NewPlacer(chips)
	tenants := makeTenants(o)

	// Obs handles resolved once, outside the loop.
	var (
		placements = o.Obs.Counter("dc_placements_total")
		deferrals  = o.Obs.Counter("dc_deferrals_total")
		throttles  = o.Obs.Counter("dc_throttle_events_total")
		resumes    = o.Obs.Counter("dc_resume_events_total")
		violationC = o.Obs.Counter("dc_budget_violations_total")
		rackG      = o.Obs.Gauge("dc_rack_power_watts_max")
		chassisG   = o.Obs.Gauge("dc_chassis_power_watts_max")
		chipG      = o.Obs.Gauge("dc_chip_power_watts_max")
		queuedG    = o.Obs.Gauge("dc_tenants_queued")
		runningG   = o.Obs.Gauge("dc_tenants_running")
	)

	request := make([]float64, nChips)
	grants := make([]float64, nChips)
	allow := make([]float64, nChips)
	measured := make([]float64, nChips)
	// perChip tracks each chip's tenants in placement order for the
	// throttle scan.
	perChip := make([][]*tenant, nChips)

	var queue []*tenant
	var running []*tenant

	// The ops plane, when armed: its evacuation callback pulls a dying
	// or quarantined chip's tenants back into the queue; the tick loop
	// filters them out of running by their cleared placement.
	var opsP *opsPlane
	var telemetry, lastTele []float64
	if opsOn {
		evacuate := func(chip, _ int) int {
			list := perChip[chip]
			for _, t := range list {
				t.chip, t.core = -1, -1
				t.throttled = false
				t.pendingMig = true
				t.everDisplaced = true
				queue = append(queue, t)
			}
			n := len(list)
			for k := range list {
				list[k] = nil // do not retain evicted tenants in the backing array
			}
			perChip[chip] = list[:0]
			return n
		}
		opsP = newOpsPlane(ops, o.OpsFaultSeed, o, placer, tree, provs, evacuate, o.Obs)
		telemetry = make([]float64, nChips)
		lastTele = make([]float64, nChips)
	}

	res := &Result{
		Topology: Topology{
			Racks:           o.Racks,
			ChassisPerRack:  o.ChassisPerRack,
			ChipsPerChassis: o.ChipsPerChassis,
			Chips:           nChips,
			Tenants:         o.Tenants,
			Ticks:           o.Ticks,
			Seed:            o.Seed,
			SiliconStart:    o.SiliconStart,
			FaultProfile:    o.FaultProfile,
		},
		CampaignHash: campaign.Hash(),
		Chips:        sums,
		FailedJobs:   fres.Failed(),
		CachedJobs:   fres.CachedCount(),
		Budget: BudgetSummary{
			RackCapW:    rackCap,
			ChassisCapW: chassisCap,
			ChipCapW:    chipCap,
			KI:          o.KI,
		},
	}

	for tick := 0; tick < o.Ticks; tick++ {
		// Completions: un-throttled tenants burn one tick of work.
		live := running[:0]
		for _, t := range running {
			if !t.throttled {
				t.remaining--
			}
			if t.remaining == 0 {
				t.completed = true
				t.end = tick
				placer.Release(t.chip, t.core, t.wl.CdynRel)
				perChip[t.chip] = removeTenant(perChip[t.chip], t)
				res.Placement.Completed++
				continue
			}
			live = append(live, t)
		}
		running = live

		// Operational events and recoveries fire before the budget
		// pass, so freed or reduced capacity is re-apportioned this
		// tick. Evacuated tenants leave running by their cleared
		// placement and are already back in the queue.
		if opsP != nil {
			*clock = int64(tick)
			opsP.beginTick(tick)
			live := running[:0]
			for _, t := range running {
				if t.chip >= 0 {
					live = append(live, t)
				}
			}
			for k := len(live); k < len(running); k++ {
				running[k] = nil
			}
			running = live
		}

		// Arrivals join the queue, critical tenants ahead of the rest,
		// ID order within a class (stable sort on a deterministic
		// insertion order).
		for _, t := range tenants {
			if t.arrival == tick {
				queue = append(queue, t)
			}
		}
		sort.SliceStable(queue, func(i, j int) bool {
			if queue[i].critical != queue[j].critical {
				return queue[i].critical
			}
			return queue[i].id < queue[j].id
		})

		// Budget: requests follow demand plus headroom for one more
		// core, so grants track where tenants actually run — a chip
		// asks for what it draws, not its whole envelope. Under
		// contention the water-fill equalizes shares below a heavy
		// chip's demand and the throttle path engages.
		for i := range request {
			if chips[i].Quarantined {
				request[i] = 0
				continue
			}
			request[i] = placer.Demand(i)
			if placer.FreeCores(i) > 0 {
				request[i] += chips[i].SpanW
			}
		}
		tree.Apportion(request)
		for i := range allow {
			grants[i] = tree.Grant(i)
			allow[i] = tree.Allowance(i)
		}

		// Placement from the head of the queue. Admission is against
		// the water-filled grant — what the hierarchy says the chip
		// may draw — while the throttle below enforces the integral
		// allowance, so a fresh placement sheds for a tick or two
		// until the Chen controller winds its soft state up to the
		// grant (the soft start), then resumes.
		still := queue[:0]
		for _, t := range queue {
			ci, cj, pred, ok := placer.Place(t.wl.CdynRel, grants)
			if !ok {
				deferrals.Inc()
				res.Placement.Deferrals++
				still = append(still, t)
				continue
			}
			t.chip, t.core = ci, cj
			t.coreLabel = placer.Chips[ci].Cores[cj].Label
			t.nodeID = placer.Chips[ci].ID
			t.predMHz = pred
			t.start = tick
			t.placed = true
			perChip[ci] = append(perChip[ci], t)
			running = append(running, t)
			placements.Inc()
			res.Placement.Placed++
			if t.pendingMig {
				t.pendingMig = false
				t.migrations++
				opsP.sum.Migrations++
				opsP.migrC.Inc()
				opsP.emit(OpsEvent{Tick: tick, Kind: "migrate", Node: t.nodeID,
					Detail: fmt.Sprintf("tenant %d re-placed on %s", t.id, t.coreLabel)})
			}
		}
		queue = still

		// Displaced tenants still queued lose this tick.
		if opsP != nil {
			for _, t := range queue {
				if t.pendingMig {
					t.downtimeTicks++
					opsP.sum.TenantTicksLost++
				}
			}
		}

		// Throttle/resume against the allowance: resume in placement
		// order (critical tenants were queued first), then shed from
		// the tail — background before critical — until demand fits.
		for i := range chips {
			for _, t := range perChip[i] {
				if t.throttled && placer.Demand(i)+t.wl.CdynRel*chips[i].SpanW <= allow[i]+budgetEps {
					t.throttled = false
					placer.AddDemand(i, t.wl.CdynRel*chips[i].SpanW)
					resumes.Inc()
					res.Budget.ResumeEvents++
				}
			}
			for pass := 0; pass < 2 && placer.Demand(i) > allow[i]+budgetEps; pass++ {
				critPass := pass == 1
				list := perChip[i]
				for k := len(list) - 1; k >= 0 && placer.Demand(i) > allow[i]+budgetEps; k-- {
					t := list[k]
					if t.throttled || t.critical != critPass {
						continue
					}
					t.throttled = true
					placer.AddDemand(i, -t.wl.CdynRel*chips[i].SpanW)
					throttles.Inc()
					res.Budget.ThrottleEvents++
				}
			}
		}

		// Measure and regulate. A node running dark (FSP link down,
		// inside the grace window) holds its last good telemetry sample
		// for the integral controller; the violation accounting below
		// always uses the actual draw.
		for i := range measured {
			measured[i] = placer.Demand(i)
		}
		if opsP != nil {
			for i := range measured {
				if opsP.dark(i, tick) {
					telemetry[i] = lastTele[i]
					continue
				}
				telemetry[i] = measured[i]
				lastTele[i] = measured[i]
			}
			tree.Regulate(telemetry)
		} else {
			tree.Regulate(measured)
		}

		// Record the tick: level maxima and cap violations.
		row := TickRow{Tick: tick, Queued: len(queue), Running: len(running)}
		if opsP != nil {
			row.Down = opsP.downCount(tick)
		}
		for _, t := range running {
			if t.throttled {
				t.throttledTicks++
				row.Throttled++
			}
		}
		// With the ops plane active the thresholds track the effective
		// caps, plus the forced-below-idle carve-out: a chip cannot shed
		// under its idle floor, so each level excuses exactly the idle
		// draw its grants could not cover (Σ max(0, idle − grant)). The
		// invariant checked is "no level exceeds its grant unless forced
		// below idle". Without the plane this is the original scalar
		// accounting, byte for byte.
		idx := 0
		for r := 0; r < o.Racks; r++ {
			rackW := 0.0
			rackSlack := 0.0
			for c := 0; c < o.ChassisPerRack; c++ {
				chassisW := 0.0
				chassisSlack := 0.0
				for s := 0; s < o.ChipsPerChassis; s++ {
					w := measured[idx]
					chassisW += w
					if w > row.ChipMaxW {
						row.ChipMaxW = w
					}
					thr := chipCap
					if opsP != nil {
						thr = tree.ChipCapEff(idx)
						if fl := tree.Idle(idx); fl > thr {
							thr = fl
						}
						if sl := tree.Idle(idx) - grants[idx]; sl > 0 {
							chassisSlack += sl
						}
					}
					if w > thr+budgetEps {
						row.Violations++
					}
					idx++
				}
				rackW += chassisW
				rackSlack += chassisSlack
				if chassisW > row.ChassisMaxW {
					row.ChassisMaxW = chassisW
				}
				thr := chassisCap
				if opsP != nil {
					thr = tree.ChassisCapEff(r*o.ChassisPerRack+c) + chassisSlack
				}
				if chassisW > thr+budgetEps {
					row.Violations++
				}
			}
			if rackW > row.RackMaxW {
				row.RackMaxW = rackW
			}
			thr := rackCap
			if opsP != nil {
				thr = tree.RackCapEff(r) + rackSlack
			}
			if rackW > thr+budgetEps {
				row.Violations++
			}
		}
		res.Budget.Violations += row.Violations
		violationC.Add(int64(row.Violations))
		if row.RackMaxW > res.Budget.PeakRackW {
			res.Budget.PeakRackW = row.RackMaxW
		}
		if row.ChassisMaxW > res.Budget.PeakChassisW {
			res.Budget.PeakChassisW = row.ChassisMaxW
		}
		if row.ChipMaxW > res.Budget.PeakChipW {
			res.Budget.PeakChipW = row.ChipMaxW
		}
		rackG.Set(row.RackMaxW)
		chassisG.Set(row.ChassisMaxW)
		chipG.Set(row.ChipMaxW)
		queuedG.Set(float64(row.Queued))
		runningG.Set(float64(row.Running))
		res.Timeline = append(res.Timeline, row)
	}

	// Horizon accounting for the ops plane: displaced tenants the
	// placer never found a new home for are shed; every other displaced
	// tenant recovered.
	if opsP != nil {
		for _, t := range tenants {
			if t.pendingMig {
				t.shed = true
				opsP.sum.Shed++
				opsP.emit(OpsEvent{Tick: o.Ticks, Kind: "shed",
					Detail: fmt.Sprintf("tenant %d displaced and never re-placed", t.id)})
			} else if t.everDisplaced {
				opsP.sum.Recovered++
			}
		}
	}

	// Outcomes in tenant order; spans on the tick axis after the loop
	// so the trace is deterministic.
	for _, t := range tenants {
		out := TenantOutcome{
			ID:             t.id,
			Workload:       t.wl.Name,
			Critical:       t.critical,
			Arrival:        t.arrival,
			PredFreqMHz:    t.predMHz,
			ThrottledTicks: t.throttledTicks,
			Placed:         t.placed,
			Completed:      t.completed,
			Migrations:     t.migrations,
			DowntimeTicks:  t.downtimeTicks,
			Shed:           t.shed,
		}
		if t.placed {
			out.Node = t.nodeID
			out.Core = t.coreLabel
			out.Start = t.start
			out.End = t.end
			if !t.completed {
				out.End = o.Ticks
			}
			if o.Trace != nil {
				o.Trace.Complete("dc", t.wl.Name, "dc/"+out.Node,
					int64(out.Start), int64(out.End-out.Start+1))
			}
		} else {
			res.Placement.Unplaced++
		}
		res.Tenants = append(res.Tenants, out)
	}
	for i := range chips {
		res.Placement.BreakerRejected += chips[i].Breaker.Rejected()
	}
	if opsP != nil {
		opsP.sum.Safe = opsP.sum.Shed == 0 && res.Budget.Violations == 0
		if opsP.sum.Readmits > 0 {
			opsP.sum.MTTRTicks = float64(opsP.downTicksTotal) / float64(opsP.sum.Readmits)
		}
		res.Ops = &opsP.sum
		res.Events = opsP.events
	}
	return res, nil
}

// removeTenant drops t from list preserving order, clearing the
// vacated tail slot so the backing array does not keep the evicted
// *tenant reachable.
func removeTenant(list []*tenant, t *tenant) []*tenant {
	for i, x := range list {
		if x == t {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}
