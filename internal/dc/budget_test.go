package dc

import (
	"math"
	"testing"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestWaterFillConservesAndCaps(t *testing.T) {
	cases := []struct {
		budget float64
		need   []float64
	}{
		{100, []float64{10, 20, 30, 40}},       // budget covers all needs
		{50, []float64{40, 40, 40, 40}},        // equal split
		{60, []float64{5, 100, 100, 100}},      // one small child frees residue
		{0, []float64{10, 10}},                 // nothing to give
		{30, []float64{0, 0, 0}},               // nothing wanted
		{70, []float64{1, 2, 3, 100}},          // heavy skew
		{33.3, []float64{11.1, 11.1, 11.1, 1}}, // fractional
	}
	out := make([]float64, 8)
	for _, tc := range cases {
		o := out[:len(tc.need)]
		waterFill(tc.budget, tc.need, o)
		if s := sum(o); s > tc.budget+1e-6 {
			t.Errorf("waterFill(%v, %v) = %v: sum %v exceeds budget", tc.budget, tc.need, o, s)
		}
		for i := range o {
			if o[i] > tc.need[i]+1e-6 {
				t.Errorf("waterFill(%v, %v): child %d got %v > need %v", tc.budget, tc.need, i, o[i], tc.need[i])
			}
			if o[i] < 0 {
				t.Errorf("waterFill(%v, %v): child %d negative grant %v", tc.budget, tc.need, i, o[i])
			}
		}
		// When the budget covers every need, everyone is satisfied.
		if tc.budget >= sum(tc.need) {
			for i := range o {
				if math.Abs(o[i]-tc.need[i]) > 1e-6 {
					t.Errorf("waterFill(%v, %v): slack budget but child %d got %v, want %v",
						tc.budget, tc.need, i, o[i], tc.need[i])
				}
			}
		}
	}
}

func TestApportionRespectsEveryLevel(t *testing.T) {
	const (
		racks, chassisPerRack, chipsPerChassis = 2, 3, 4
		rackCap, chassisCap, chipCap           = 500.0, 200.0, 80.0
	)
	n := racks * chassisPerRack * chipsPerChassis
	idle := make([]float64, n)
	req := make([]float64, n)
	for i := range idle {
		idle[i] = 20 + float64(i%5)
		req[i] = 30 + float64(i*7%90) // some above chipCap, some below idle
	}
	tree := NewBudgetTree(racks, chassisPerRack, chipsPerChassis, rackCap, chassisCap, chipCap, 0.5, idle)
	tree.Apportion(req)

	idx := 0
	for r := 0; r < racks; r++ {
		rackSum := 0.0
		for c := 0; c < chassisPerRack; c++ {
			chassisSum := 0.0
			for s := 0; s < chipsPerChassis; s++ {
				g := tree.Grant(idx)
				if g > chipCap+1e-6 {
					t.Errorf("chip %d grant %v exceeds chip cap %v", idx, g, chipCap)
				}
				chassisSum += g
				idx++
			}
			if chassisSum > chassisCap+1e-6 {
				t.Errorf("rack %d chassis %d grants sum %v exceeds chassis cap %v", r, c, chassisSum, chassisCap)
			}
			rackSum += chassisSum
		}
		if rackSum > rackCap+1e-6 {
			t.Errorf("rack %d grants sum %v exceeds rack cap %v", r, rackSum, rackCap)
		}
	}
}

func TestRegulateRampAndClamp(t *testing.T) {
	idle := []float64{10, 10}
	tree := NewBudgetTree(1, 1, 2, 100, 100, 50, 0.5, idle)
	tree.Apportion([]float64{40, 40})
	if g := tree.Grant(0); math.Abs(g-40) > 1e-6 {
		t.Fatalf("grant = %v, want 40", g)
	}
	// The integral state starts at the idle floor: allowance is gated.
	if a := tree.Allowance(0); math.Abs(a-10) > 1e-6 {
		t.Fatalf("initial allowance = %v, want idle floor 10", a)
	}
	// Idle measurement winds soft toward the grant: 10 + 0.5·(40−10) = 25.
	tree.Regulate([]float64{10, 10})
	if a := tree.Allowance(0); math.Abs(a-25) > 1e-6 {
		t.Fatalf("allowance after one tick = %v, want 25", a)
	}
	// Convergence: allowance reaches the grant and never exceeds it.
	for i := 0; i < 60; i++ {
		tree.Regulate([]float64{10, 10})
	}
	if a := tree.Allowance(0); math.Abs(a-40) > 1e-6 {
		t.Fatalf("converged allowance = %v, want grant 40", a)
	}
	// Over-draw winds soft down, floored at idle.
	for i := 0; i < 200; i++ {
		tree.Regulate([]float64{500, 500})
	}
	if a := tree.Allowance(0); math.Abs(a-10) > 1e-6 {
		t.Fatalf("floored allowance = %v, want idle 10", a)
	}
}

// TestDegradedChassisCapConvergence drops one chassis's effective cap
// mid-loop (a PDU brownout), checks the water-fill immediately confines
// that chassis to the degraded budget while the other chassis is
// untouched, then restores the cap and requires the survivors to climb
// back to their pre-brownout allowances within a small K — the
// degraded-mode rebalance the ops plane leans on.
func TestDegradedChassisCapConvergence(t *testing.T) {
	idle := []float64{10, 10, 10, 10}
	tree := NewBudgetTree(1, 2, 2, 400, 100, 60, 0.5, idle)
	req := []float64{50, 50, 50, 50}
	step := func() {
		tree.Apportion(req)
		tree.Regulate(idle) // idle draw: the integral winds up freely
	}
	for i := 0; i < 20; i++ {
		step()
	}
	pre := make([]float64, 4)
	for i := range pre {
		pre[i] = tree.Allowance(i)
		if math.Abs(pre[i]-50) > 1e-6 {
			t.Fatalf("chip %d pre-brownout allowance %v, want the full request 50", i, pre[i])
		}
	}

	const degraded = 40.0
	tree.SetChassisCap(0, degraded)
	for i := 0; i < 10; i++ {
		step()
		if s := tree.Grant(0) + tree.Grant(1); s > degraded+1e-6 {
			t.Fatalf("degraded chassis grants sum %v exceed forced cap %v", s, degraded)
		}
		if s := tree.Grant(2) + tree.Grant(3); s > 100+1e-6 {
			t.Fatalf("healthy chassis grants sum %v exceed its cap", s)
		}
	}
	// The fair split of the degraded budget.
	for _, i := range []int{0, 1} {
		if a := tree.Allowance(i); math.Abs(a-degraded/2) > 1e-6 {
			t.Fatalf("chip %d degraded allowance %v, want %v", i, a, degraded/2)
		}
	}
	// Survivors on the healthy chassis never flinched.
	for _, i := range []int{2, 3} {
		if a := tree.Allowance(i); math.Abs(a-pre[i]) > 1e-6 {
			t.Fatalf("chip %d on the healthy chassis moved to %v during the brownout", i, a)
		}
	}

	tree.ResetChassisCap(0)
	const K = 8
	for i := 0; i < K; i++ {
		step()
	}
	for i := range pre {
		if a := tree.Allowance(i); math.Abs(a-pre[i]) > 1e-6 {
			t.Fatalf("chip %d allowance %v did not converge back to %v within %d ticks", i, a, pre[i], K)
		}
	}
}

func TestBudgetStepAllocFree(t *testing.T) {
	n := 2 * 4 * 8
	idle := make([]float64, n)
	req := make([]float64, n)
	meas := make([]float64, n)
	for i := range idle {
		idle[i] = 50
		req[i] = 80 + float64(i%30)
		meas[i] = 60
	}
	tree := NewBudgetTree(2, 4, 8, 2000, 600, 150, 0.5, idle)
	allocs := testing.AllocsPerRun(100, func() {
		tree.Apportion(req)
		tree.Regulate(meas)
	})
	if allocs != 0 {
		t.Fatalf("budget step allocates %v per op, want 0", allocs)
	}
}
