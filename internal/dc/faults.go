package dc

// The operational fault timeline: seeded runtime disturbances the
// provisioned fleet must absorb after intake. PR 9's plane only
// injected faults at provisioning time — once a chip survived intake
// it was immortal for the whole operation sim, so the budget loop and
// the Eq. 1 placer were never exercised under the events a real fleet
// sees. This file draws those events deterministically: chip death
// mid-sim, FSP link flaps (telemetry loss for a window of ticks), PDU
// cap excursions (brownouts) at rack and chassis level, and thermal
// excursions that force a chip's allowance below its idle floor.
//
// Every draw comes from a labelled split of the ops seed — one stream
// per entity ("dc/ops/<node>", "dc/ops/<chassis>", "dc/ops/<rack>") —
// and the schedule is fixed before the first tick, so the whole run
// replays bit-for-bit from (profile, seed, topology) at every worker
// count. The recovery half lives in recovery.go.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// OpsProfile describes the operational disturbance environment for a
// datacenter run: event counts over the horizon plus their shapes. The
// zero value injects nothing.
type OpsProfile struct {
	// ChipDeaths is the number of chips that die permanently at a
	// seeded tick. Their tenants are evacuated and their idle draw is
	// handed back to the budget hierarchy.
	ChipDeaths int
	// LinkFlaps is the number of FSP link-flap events: the node's
	// telemetry goes dark for FlapTicks ticks. A flap outlasting the
	// GraceTicks window quarantines the node (tenants evacuated,
	// breaker opened); the node is re-admitted when the link returns.
	LinkFlaps int
	// FlapTicks is a flap's telemetry-loss duration (default 6).
	FlapTicks int
	// GraceTicks is the telemetry-loss grace window: a node dark for
	// longer is quarantined (default 2).
	GraceTicks int
	// ReAdmitTicks is the quarantine breaker's open window in logical
	// ticks before a re-admission probe is allowed (default 2).
	ReAdmitTicks int
	// Brownouts / RackBrownouts are PDU cap excursions at chassis and
	// rack level: the affected cap drops to BrownoutFrac of its
	// configured value for BrownoutTicks ticks, and the water-fill
	// re-apportions the reduced budget over the survivors.
	Brownouts     int
	RackBrownouts int
	// BrownoutFrac is the cap multiplier during a brownout (default 0.6).
	BrownoutFrac float64
	// BrownoutTicks is a brownout's duration (default 6).
	BrownoutTicks int
	// Thermals is the number of chip thermal excursions: the chip's
	// allowance is forced to ThermalFrac of its idle floor — below
	// idle, the carve-out case of the cap invariant — for ThermalTicks
	// ticks, shedding every tenant on it to idle draw.
	Thermals int
	// ThermalFrac is the fraction of the chip's idle floor the forced
	// cap drops to (default 0.5; must stay below 1 so the excursion
	// actually lands under the idle floor).
	ThermalFrac float64
	// ThermalTicks is a thermal excursion's duration (default 4).
	ThermalTicks int
}

// Empty reports whether the profile schedules no events at all.
func (p OpsProfile) Empty() bool {
	return p.ChipDeaths == 0 && p.LinkFlaps == 0 &&
		p.Brownouts == 0 && p.RackBrownouts == 0 && p.Thermals == 0
}

// withDefaults fills the shape defaults for enabled event classes.
func (p OpsProfile) withDefaults() OpsProfile {
	if p.LinkFlaps > 0 {
		if p.FlapTicks == 0 {
			p.FlapTicks = 6
		}
		if p.GraceTicks == 0 {
			p.GraceTicks = 2
		}
		if p.ReAdmitTicks == 0 {
			p.ReAdmitTicks = 2
		}
	}
	if p.Brownouts > 0 || p.RackBrownouts > 0 {
		if p.BrownoutFrac == 0 {
			p.BrownoutFrac = 0.6
		}
		if p.BrownoutTicks == 0 {
			p.BrownoutTicks = 6
		}
	}
	if p.Thermals > 0 {
		if p.ThermalFrac == 0 {
			p.ThermalFrac = 0.5
		}
		if p.ThermalTicks == 0 {
			p.ThermalTicks = 4
		}
	}
	return p
}

// Validate rejects negative counts and out-of-range shapes.
func (p OpsProfile) Validate() error {
	if p.ChipDeaths < 0 || p.LinkFlaps < 0 || p.Brownouts < 0 ||
		p.RackBrownouts < 0 || p.Thermals < 0 {
		return fmt.Errorf("dc: negative event count in ops profile %+v", p)
	}
	if p.FlapTicks < 0 || p.GraceTicks < 0 || p.ReAdmitTicks < 0 ||
		p.BrownoutTicks < 0 || p.ThermalTicks < 0 {
		return fmt.Errorf("dc: negative duration in ops profile %+v", p)
	}
	if p.BrownoutFrac < 0 || p.BrownoutFrac > 1 {
		return fmt.Errorf("dc: brownout-frac %v outside [0,1]", p.BrownoutFrac)
	}
	if p.ThermalFrac < 0 || p.ThermalFrac >= 1 {
		return fmt.Errorf("dc: thermal-frac %v outside [0,1) — the excursion must land below the idle floor", p.ThermalFrac)
	}
	return nil
}

// opsPresets are the named scenarios -ops-fault-profile accepts.
var opsPresets = map[string]OpsProfile{
	"none": {},
	// ops-storm: a bit of everything — the baseline hostile operation.
	"ops-storm": {ChipDeaths: 1, LinkFlaps: 2, Brownouts: 1, Thermals: 1},
	// chip-death: one node dies mid-sim; its tenants must migrate.
	"chip-death": {ChipDeaths: 1},
	// flaky-links: FSP links drop long enough to quarantine, then
	// recover — the full grace → quarantine → re-admit ladder.
	"flaky-links": {LinkFlaps: 2},
	// brownout / rack-brownout: one PDU cap excursion at the chassis
	// or rack level; the water-fill degrades and recovers.
	"brownout":      {Brownouts: 1},
	"rack-brownout": {RackBrownouts: 1},
	// thermal: one chip is forced below its idle floor.
	"thermal": {Thermals: 1},
}

// OpsPresetNames lists the named ops profiles in sorted order.
func OpsPresetNames() []string {
	var names []string
	for n := range opsPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseOpsProfile builds an OpsProfile from a spec string in the style
// of fault.ParseProfile: a preset name ("ops-storm"), a comma-separated
// key=value list ("chip-deaths=1,brownouts=2"), or a preset with
// overrides ("flaky-links,grace=4"). The empty string and "none" are
// the empty profile.
func ParseOpsProfile(spec string) (OpsProfile, error) {
	var p OpsProfile
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			base, ok := opsPresets[part]
			if !ok {
				return OpsProfile{}, fmt.Errorf("dc: unknown ops profile %q (have %s)",
					part, strings.Join(OpsPresetNames(), ", "))
			}
			if i != 0 {
				return OpsProfile{}, fmt.Errorf("dc: preset %q must come first in %q", part, spec)
			}
			p = base
			continue
		}
		k, v, _ := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if err := p.set(k, v); err != nil {
			return OpsProfile{}, err
		}
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return OpsProfile{}, err
	}
	return p, nil
}

// set applies one key=value override.
func (p *OpsProfile) set(k, v string) error {
	parseCount := func() (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("dc: bad count %q for %s", v, k)
		}
		return n, nil
	}
	parseFrac := func() (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("dc: bad value %q for %s", v, k)
		}
		return f, nil
	}
	var err error
	switch k {
	case "chip-deaths":
		p.ChipDeaths, err = parseCount()
	case "link-flaps":
		p.LinkFlaps, err = parseCount()
	case "flap-ticks":
		p.FlapTicks, err = parseCount()
	case "grace":
		p.GraceTicks, err = parseCount()
	case "readmit":
		p.ReAdmitTicks, err = parseCount()
	case "brownouts":
		p.Brownouts, err = parseCount()
	case "rack-brownouts":
		p.RackBrownouts, err = parseCount()
	case "brownout-frac":
		p.BrownoutFrac, err = parseFrac()
	case "brownout-ticks":
		p.BrownoutTicks, err = parseCount()
	case "thermals":
		p.Thermals, err = parseCount()
	case "thermal-frac":
		p.ThermalFrac, err = parseFrac()
	case "thermal-ticks":
		p.ThermalTicks, err = parseCount()
	default:
		return fmt.Errorf("dc: unknown ops key %q (want chip-deaths, link-flaps, flap-ticks, grace, readmit, brownouts, rack-brownouts, brownout-frac, brownout-ticks, thermals, thermal-frac, thermal-ticks)", k)
	}
	return err
}

// String renders the profile as a canonical key=value spec
// ParseOpsProfile accepts; the empty profile renders as "none".
func (p OpsProfile) String() string {
	var parts []string
	addN := func(k string, n int) {
		if n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	addF := func(k string, f float64) {
		if f != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, f))
		}
	}
	addN("chip-deaths", p.ChipDeaths)
	addN("link-flaps", p.LinkFlaps)
	addN("flap-ticks", p.FlapTicks)
	addN("grace", p.GraceTicks)
	addN("readmit", p.ReAdmitTicks)
	addN("brownouts", p.Brownouts)
	addN("rack-brownouts", p.RackBrownouts)
	addF("brownout-frac", p.BrownoutFrac)
	addN("brownout-ticks", p.BrownoutTicks)
	addN("thermals", p.Thermals)
	addF("thermal-frac", p.ThermalFrac)
	addN("thermal-ticks", p.ThermalTicks)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// OpsKind identifies a scheduled operational event class.
type OpsKind uint8

// The scheduled event classes, in intra-tick application order.
const (
	OpsChipDeath OpsKind = iota
	OpsLinkFlap
	OpsThermal
	OpsBrownout
	OpsRackBrownout
)

// String names the event class for the emitted timeline.
func (k OpsKind) String() string {
	switch k {
	case OpsChipDeath:
		return "chip-death"
	case OpsLinkFlap:
		return "link-down"
	case OpsThermal:
		return "thermal-start"
	case OpsBrownout:
		return "brownout-start"
	case OpsRackBrownout:
		return "brownout-start"
	default:
		return "invalid"
	}
}

// OpsSched is one scheduled event: when it fires, what it is, and
// which entity it targets (chip index for deaths/flaps/thermals,
// chassis index rack*chassisPerRack+chassis for chassis brownouts,
// rack index for rack brownouts). Duration is the event's active
// window in ticks.
type OpsSched struct {
	Tick     int
	Kind     OpsKind
	Target   int
	Duration int
}

// opsCandidate ranks one entity for event selection.
type opsCandidate struct {
	score uint64
	idx   int
	tick  int
}

// pickLowest sorts candidates by (score, idx) and returns the first n.
// The ranking makes "which N entities are hit" a pure function of the
// seeded per-entity streams, independent of topology iteration order.
func pickLowest(cands []opsCandidate, n int) []opsCandidate {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].idx < cands[j].idx
	})
	if n > len(cands) {
		n = len(cands)
	}
	return cands[:n]
}

// DrawOps draws the operational fault schedule for the topology from
// labelled per-entity streams of the ops seed. live, when non-nil,
// marks the chips eligible for chip-scoped events (deaths, flaps,
// thermals) — intake-quarantined nodes cannot die twice; nil treats
// every chip as live. The returned schedule is sorted by (tick, kind,
// target) and is a pure function of (profile, seed, topology, live).
func DrawOps(p OpsProfile, seed uint64, o Options, live []bool) []OpsSched {
	p = p.withDefaults()
	if p.Empty() {
		return nil
	}
	o = o.withDefaults()
	if seed == 0 {
		seed = 1
	}
	base := rng.New(seed)
	maxTick := o.Ticks - 1
	if maxTick < 1 {
		maxTick = 1
	}

	nChips := o.Racks * o.ChassisPerRack * o.ChipsPerChassis
	// Per-chip streams: each live chip draws (score, tick) for every
	// chip-scoped event class in a fixed order, so the schedule never
	// depends on which classes are enabled.
	deaths := make([]opsCandidate, 0, nChips)
	flaps := make([]opsCandidate, 0, nChips)
	thermals := make([]opsCandidate, 0, nChips)
	i := 0
	for r := 0; r < o.Racks; r++ {
		for c := 0; c < o.ChassisPerRack; c++ {
			for s := 0; s < o.ChipsPerChassis; s++ {
				if live == nil || live[i] {
					st := base.Split("dc/ops/" + NodeID(r, c, s))
					deaths = append(deaths, opsCandidate{st.Uint64(), i, 1 + st.Intn(maxTick)})
					flaps = append(flaps, opsCandidate{st.Uint64(), i, 1 + st.Intn(maxTick)})
					thermals = append(thermals, opsCandidate{st.Uint64(), i, 1 + st.Intn(maxTick)})
				}
				i++
			}
		}
	}
	// Per-chassis and per-rack streams for the PDU excursions.
	chassis := make([]opsCandidate, 0, o.Racks*o.ChassisPerRack)
	racks := make([]opsCandidate, 0, o.Racks)
	for r := 0; r < o.Racks; r++ {
		for c := 0; c < o.ChassisPerRack; c++ {
			st := base.Split(fmt.Sprintf("dc/ops/r%02dc%02d", r, c))
			chassis = append(chassis, opsCandidate{st.Uint64(), r*o.ChassisPerRack + c, 1 + st.Intn(maxTick)})
		}
		st := base.Split(fmt.Sprintf("dc/ops/r%02d", r))
		racks = append(racks, opsCandidate{st.Uint64(), r, 1 + st.Intn(maxTick)})
	}

	var sched []OpsSched
	for _, c := range pickLowest(deaths, p.ChipDeaths) {
		sched = append(sched, OpsSched{Tick: c.tick, Kind: OpsChipDeath, Target: c.idx})
	}
	for _, c := range pickLowest(flaps, p.LinkFlaps) {
		sched = append(sched, OpsSched{Tick: c.tick, Kind: OpsLinkFlap, Target: c.idx, Duration: p.FlapTicks})
	}
	for _, c := range pickLowest(thermals, p.Thermals) {
		sched = append(sched, OpsSched{Tick: c.tick, Kind: OpsThermal, Target: c.idx, Duration: p.ThermalTicks})
	}
	for _, c := range pickLowest(chassis, p.Brownouts) {
		sched = append(sched, OpsSched{Tick: c.tick, Kind: OpsBrownout, Target: c.idx, Duration: p.BrownoutTicks})
	}
	for _, c := range pickLowest(racks, p.RackBrownouts) {
		sched = append(sched, OpsSched{Tick: c.tick, Kind: OpsRackBrownout, Target: c.idx, Duration: p.BrownoutTicks})
	}
	sort.Slice(sched, func(a, b int) bool {
		if sched[a].Tick != sched[b].Tick {
			return sched[a].Tick < sched[b].Tick
		}
		if sched[a].Kind != sched[b].Kind {
			return sched[a].Kind < sched[b].Kind
		}
		return sched[a].Target < sched[b].Target
	})
	return sched
}
