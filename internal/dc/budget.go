package dc

// The hierarchical power budget: rack PDU → chassis → chip. Each tick
// the tree water-fills every level's cap over its children's requests
// (Apportion) and then advances a Chen-style integral controller per
// chip (Regulate, after arXiv:1709.04859): the integral state `soft`
// ramps each chip's admission toward its grant at rate ki·(grant −
// measured), and the effective allowance is min(grant, soft). The min
// makes cap safety structural — water-filling conserves every level's
// cap, so Σ measured ≤ Σ grant ≤ cap at chassis and rack level on
// every tick — while the integral supplies the soft-start dynamics:
// a freshly provisioned chip earns budget over a few ticks instead of
// slamming to its grant.

// budgetEps is the slack under every cap comparison: water-fill
// residues are sums of float64 divisions and land within a few ulp of
// the cap, which must not read as violations.
const budgetEps = 1e-9

// BudgetTree is the three-level budget hierarchy over a fixed
// topology. All per-tick state is preallocated; Apportion and Regulate
// run allocation-free on the sim's hot path.
type BudgetTree struct {
	racks, chassisPerRack, chipsPerChassis int

	rackCap    float64
	chassisCap float64
	chipCap    float64
	ki         float64

	// idle is the per-chip admission floor (the power a live chip draws
	// with every core idle; 0 for quarantined chips).
	idle []float64
	// grant is the per-chip water-filled share of this tick's caps.
	grant []float64
	// soft is the per-chip integral state, clamped to [idle, chipCap].
	soft []float64

	// Scratch for the two water-fill levels.
	chassisNeed  []float64
	chassisGrant []float64
	chipNeed     []float64
	chipGrant    []float64
}

// NewBudgetTree builds the hierarchy. idle holds one admission floor
// per chip in topology order (rack-major, then chassis, then slot);
// ki ≤ 0 selects the default integral gain of 0.5. The integral state
// starts at the idle floor, so allowances ramp up from idle.
func NewBudgetTree(racks, chassisPerRack, chipsPerChassis int, rackCapW, chassisCapW, chipCapW, ki float64, idle []float64) *BudgetTree {
	if ki <= 0 {
		ki = 0.5
	}
	n := racks * chassisPerRack * chipsPerChassis
	t := &BudgetTree{
		racks:           racks,
		chassisPerRack:  chassisPerRack,
		chipsPerChassis: chipsPerChassis,
		rackCap:         rackCapW,
		chassisCap:      chassisCapW,
		chipCap:         chipCapW,
		ki:              ki,
		idle:            make([]float64, n),
		grant:           make([]float64, n),
		soft:            make([]float64, n),
		chassisNeed:     make([]float64, chassisPerRack),
		chassisGrant:    make([]float64, chassisPerRack),
		chipNeed:        make([]float64, chipsPerChassis),
		chipGrant:       make([]float64, chipsPerChassis),
	}
	copy(t.idle, idle)
	copy(t.soft, idle)
	return t
}

// Chips returns the number of leaf chips in the tree.
func (t *BudgetTree) Chips() int { return len(t.grant) }

// Grant returns chip i's current water-filled grant.
func (t *BudgetTree) Grant(i int) float64 { return t.grant[i] }

// Allowance returns chip i's effective admission this tick: the
// water-filled grant gated by the integral state. min(grant, soft)
// keeps the hierarchy safe by construction while soft supplies the
// controller dynamics.
//
//atm:hotpath
func (t *BudgetTree) Allowance(i int) float64 {
	a := t.grant[i]
	if s := t.soft[i]; s < a {
		a = s
	}
	return a
}

// Apportion water-fills the caps over the requested per-chip power
// draw, top down: each rack's cap over its chassis (a chassis needs
// the sum of its chips' capped requests, itself capped at the chassis
// cap), then each chassis grant over its chips. request is indexed in
// topology order and is clamped to [idle, chipCap] per chip.
//
//atm:hotpath
func (t *BudgetTree) Apportion(request []float64) {
	chip := 0
	for r := 0; r < t.racks; r++ {
		rackBase := chip
		// Chassis needs: sum of capped chip requests, capped at the
		// chassis cap.
		for c := 0; c < t.chassisPerRack; c++ {
			need := 0.0
			for s := 0; s < t.chipsPerChassis; s++ {
				need += t.clampRequest(request[chip], chip)
				chip++
			}
			if need > t.chassisCap {
				need = t.chassisCap
			}
			t.chassisNeed[c] = need
		}
		waterFill(t.rackCap, t.chassisNeed, t.chassisGrant)
		// Chip grants inside each chassis.
		chip = rackBase
		for c := 0; c < t.chassisPerRack; c++ {
			for s := 0; s < t.chipsPerChassis; s++ {
				t.chipNeed[s] = t.clampRequest(request[chip+s], chip+s)
			}
			waterFill(t.chassisGrant[c], t.chipNeed, t.chipGrant)
			for s := 0; s < t.chipsPerChassis; s++ {
				t.grant[chip+s] = t.chipGrant[s]
			}
			chip += t.chipsPerChassis
		}
	}
}

// Regulate advances the per-chip integral controllers one tick:
// soft += ki·(grant − measured), clamped to [idle, chipCap].
//
//atm:hotpath
func (t *BudgetTree) Regulate(measured []float64) {
	for i := range t.soft {
		s := t.soft[i] + t.ki*(t.grant[i]-measured[i])
		if s > t.chipCap {
			s = t.chipCap
		}
		if s < t.idle[i] {
			s = t.idle[i]
		}
		t.soft[i] = s
	}
}

// clampRequest bounds a chip's request to [idle floor, chip cap].
func (t *BudgetTree) clampRequest(req float64, i int) float64 {
	if req > t.chipCap {
		req = t.chipCap
	}
	if req < t.idle[i] {
		req = t.idle[i]
	}
	return req
}

// waterFill distributes budget over need into out (same length),
// iterative capped fair share: every unsatisfied child gets an equal
// share of the remaining budget, capped at its need; freed residue is
// redistributed until nothing changes. Σ out ≤ budget and out[i] ≤
// need[i] always hold, and the split is deterministic. Bounded by
// len(need)+1 passes (each pass either saturates a child or exhausts
// the budget).
func waterFill(budget float64, need, out []float64) {
	for i := range out {
		out[i] = 0
	}
	remaining := budget
	for pass := 0; pass <= len(need); pass++ {
		active := 0
		for i := range need {
			if need[i]-out[i] > budgetEps {
				active++
			}
		}
		if active == 0 || remaining <= budgetEps {
			return
		}
		share := remaining / float64(active)
		saturated := false
		for i := range need {
			gap := need[i] - out[i]
			if gap <= budgetEps {
				continue
			}
			give := share
			if give >= gap {
				give = gap
				saturated = true
			}
			out[i] += give
			remaining -= give
		}
		if !saturated {
			return // every active child took a full share; budget is spent
		}
	}
}
