package dc

// The hierarchical power budget: rack PDU → chassis → chip. Each tick
// the tree water-fills every level's cap over its children's requests
// (Apportion) and then advances a Chen-style integral controller per
// chip (Regulate, after arXiv:1709.04859): the integral state `soft`
// ramps each chip's admission toward its grant at rate ki·(grant −
// measured), and the effective allowance is min(grant, soft). The min
// makes cap safety structural — water-filling conserves every level's
// cap, so Σ measured ≤ Σ grant ≤ cap at chassis and rack level on
// every tick — while the integral supplies the soft-start dynamics:
// a freshly provisioned chip earns budget over a few ticks instead of
// slamming to its grant.

// budgetEps is the slack under every cap comparison: water-fill
// residues are sums of float64 divisions and land within a few ulp of
// the cap, which must not read as violations.
const budgetEps = 1e-9

// BudgetTree is the three-level budget hierarchy over a fixed
// topology. All per-tick state is preallocated; Apportion and Regulate
// run allocation-free on the sim's hot path.
type BudgetTree struct {
	racks, chassisPerRack, chipsPerChassis int

	rackCap    float64
	chassisCap float64
	chipCap    float64
	ki         float64

	// Effective caps per entity. They start at the configured scalars
	// and diverge only under operational events: a brownout drops a
	// rack or chassis cap for its window, a thermal excursion forces a
	// chip cap below its idle floor. Apportion and Regulate read these,
	// never the base scalars, so degraded-mode water-fill is the same
	// code path as nominal operation.
	rackEff    []float64
	chassisEff []float64
	chipEff    []float64

	// idle is the per-chip admission floor (the power a live chip draws
	// with every core idle; 0 for quarantined chips).
	idle []float64
	// grant is the per-chip water-filled share of this tick's caps.
	grant []float64
	// soft is the per-chip integral state, clamped to [idle, chip cap].
	soft []float64

	// Scratch for the two water-fill levels.
	chassisNeed  []float64
	chassisGrant []float64
	chipNeed     []float64
	chipGrant    []float64
}

// NewBudgetTree builds the hierarchy. idle holds one admission floor
// per chip in topology order (rack-major, then chassis, then slot);
// ki ≤ 0 selects the default integral gain of 0.5. The integral state
// starts at the idle floor, so allowances ramp up from idle.
func NewBudgetTree(racks, chassisPerRack, chipsPerChassis int, rackCapW, chassisCapW, chipCapW, ki float64, idle []float64) *BudgetTree {
	if ki <= 0 {
		ki = 0.5
	}
	n := racks * chassisPerRack * chipsPerChassis
	t := &BudgetTree{
		racks:           racks,
		chassisPerRack:  chassisPerRack,
		chipsPerChassis: chipsPerChassis,
		rackCap:         rackCapW,
		chassisCap:      chassisCapW,
		chipCap:         chipCapW,
		ki:              ki,
		rackEff:         make([]float64, racks),
		chassisEff:      make([]float64, racks*chassisPerRack),
		chipEff:         make([]float64, n),
		idle:            make([]float64, n),
		grant:           make([]float64, n),
		soft:            make([]float64, n),
		chassisNeed:     make([]float64, chassisPerRack),
		chassisGrant:    make([]float64, chassisPerRack),
		chipNeed:        make([]float64, chipsPerChassis),
		chipGrant:       make([]float64, chipsPerChassis),
	}
	copy(t.idle, idle)
	copy(t.soft, idle)
	for i := range t.rackEff {
		t.rackEff[i] = rackCapW
	}
	for i := range t.chassisEff {
		t.chassisEff[i] = chassisCapW
	}
	for i := range t.chipEff {
		t.chipEff[i] = chipCapW
	}
	return t
}

// Chips returns the number of leaf chips in the tree.
func (t *BudgetTree) Chips() int { return len(t.grant) }

// Grant returns chip i's current water-filled grant.
func (t *BudgetTree) Grant(i int) float64 { return t.grant[i] }

// Allowance returns chip i's effective admission this tick: the
// water-filled grant gated by the integral state. min(grant, soft)
// keeps the hierarchy safe by construction while soft supplies the
// controller dynamics.
//
//atm:hotpath
func (t *BudgetTree) Allowance(i int) float64 {
	a := t.grant[i]
	if s := t.soft[i]; s < a {
		a = s
	}
	return a
}

// Apportion water-fills the caps over the requested per-chip power
// draw, top down: each rack's cap over its chassis (a chassis needs
// the sum of its chips' capped requests, itself capped at the chassis
// cap), then each chassis grant over its chips. request is indexed in
// topology order and is clamped to [idle, chipCap] per chip.
//
//atm:hotpath
func (t *BudgetTree) Apportion(request []float64) {
	chip := 0
	for r := 0; r < t.racks; r++ {
		rackBase := chip
		// Chassis needs: sum of capped chip requests, capped at the
		// chassis cap.
		for c := 0; c < t.chassisPerRack; c++ {
			need := 0.0
			for s := 0; s < t.chipsPerChassis; s++ {
				need += t.clampRequest(request[chip], chip)
				chip++
			}
			if cap := t.chassisEff[r*t.chassisPerRack+c]; need > cap {
				need = cap
			}
			t.chassisNeed[c] = need
		}
		waterFill(t.rackEff[r], t.chassisNeed, t.chassisGrant)
		// Chip grants inside each chassis.
		chip = rackBase
		for c := 0; c < t.chassisPerRack; c++ {
			for s := 0; s < t.chipsPerChassis; s++ {
				t.chipNeed[s] = t.clampRequest(request[chip+s], chip+s)
			}
			waterFill(t.chassisGrant[c], t.chipNeed, t.chipGrant)
			for s := 0; s < t.chipsPerChassis; s++ {
				t.grant[chip+s] = t.chipGrant[s]
			}
			chip += t.chipsPerChassis
		}
	}
}

// Regulate advances the per-chip integral controllers one tick:
// soft += ki·(grant − measured), clamped to [idle, chip cap]. The
// idle floor is applied last, matching nominal operation; a chip whose
// effective cap sits below its idle floor (thermal excursion) is still
// forced under idle through its grant, because clampRequest caps the
// request at the effective ceiling before the water-fill runs.
//
//atm:hotpath
func (t *BudgetTree) Regulate(measured []float64) {
	for i := range t.soft {
		s := t.soft[i] + t.ki*(t.grant[i]-measured[i])
		if s > t.chipEff[i] {
			s = t.chipEff[i]
		}
		if s < t.idle[i] {
			s = t.idle[i]
		}
		t.soft[i] = s
	}
}

// clampRequest bounds a chip's request to [idle floor, chip cap].
// When an ops event forces the effective cap below the idle floor the
// ceiling wins: the chip is allowed only its forced cap, the one case
// where an allowance legitimately sits below idle.
func (t *BudgetTree) clampRequest(req float64, i int) float64 {
	if req > t.chipEff[i] {
		req = t.chipEff[i]
	}
	if req < t.idle[i] && t.idle[i] <= t.chipEff[i] {
		req = t.idle[i]
	}
	return req
}

// SetRackCap forces rack r's effective cap (a PDU brownout);
// ResetRackCap restores the configured cap.
func (t *BudgetTree) SetRackCap(r int, capW float64) { t.rackEff[r] = capW }

// ResetRackCap restores rack r's configured cap.
func (t *BudgetTree) ResetRackCap(r int) { t.rackEff[r] = t.rackCap }

// SetChassisCap forces chassis ci's effective cap, ci being the global
// chassis index rack·chassisPerRack + chassis.
func (t *BudgetTree) SetChassisCap(ci int, capW float64) { t.chassisEff[ci] = capW }

// ResetChassisCap restores chassis ci's configured cap.
func (t *BudgetTree) ResetChassisCap(ci int) { t.chassisEff[ci] = t.chassisCap }

// ForceChipCap forces chip i's effective ceiling — a thermal excursion
// may push it below the chip's idle floor, and the clamp chain then
// grants the chip only the forced cap.
func (t *BudgetTree) ForceChipCap(i int, capW float64) { t.chipEff[i] = capW }

// ResetChipCap restores chip i's configured ceiling.
func (t *BudgetTree) ResetChipCap(i int) { t.chipEff[i] = t.chipCap }

// RackCapEff returns rack r's effective cap this tick.
func (t *BudgetTree) RackCapEff(r int) float64 { return t.rackEff[r] }

// ChassisCapEff returns global chassis ci's effective cap this tick.
func (t *BudgetTree) ChassisCapEff(ci int) float64 { return t.chassisEff[ci] }

// ChipCapEff returns chip i's effective ceiling this tick.
func (t *BudgetTree) ChipCapEff(i int) float64 { return t.chipEff[i] }

// Idle returns chip i's admission floor.
func (t *BudgetTree) Idle(i int) float64 { return t.idle[i] }

// SetIdle rewrites chip i's admission floor: 0 for a dead or
// quarantined chip (its draw leaves the hierarchy), the provisioned
// idle watts again on re-admission. The integral state is clamped into
// the new floor's range so a freed chip stops holding budget.
func (t *BudgetTree) SetIdle(i int, idleW float64) {
	t.idle[i] = idleW
	if t.soft[i] < idleW {
		t.soft[i] = idleW
	}
	if idleW == 0 && t.soft[i] > 0 {
		t.soft[i] = 0
	}
}

// ReAdmit restores chip i's admission floor and restarts its integral
// state at that floor — the soft-start: a re-admitted chip earns
// budget back over ticks instead of slamming to its grant.
func (t *BudgetTree) ReAdmit(i int, idleW float64) {
	t.idle[i] = idleW
	t.soft[i] = idleW
}

// waterFill distributes budget over need into out (same length),
// iterative capped fair share: every unsatisfied child gets an equal
// share of the remaining budget, capped at its need; freed residue is
// redistributed until nothing changes. Σ out ≤ budget and out[i] ≤
// need[i] always hold, and the split is deterministic. Bounded by
// len(need)+1 passes (each pass either saturates a child or exhausts
// the budget).
func waterFill(budget float64, need, out []float64) {
	for i := range out {
		out[i] = 0
	}
	remaining := budget
	for pass := 0; pass <= len(need); pass++ {
		active := 0
		for i := range need {
			if need[i]-out[i] > budgetEps {
				active++
			}
		}
		if active == 0 || remaining <= budgetEps {
			return
		}
		share := remaining / float64(active)
		saturated := false
		for i := range need {
			gap := need[i] - out[i]
			if gap <= budgetEps {
				continue
			}
			give := share
			if give >= gap {
				give = gap
				saturated = true
			}
			out[i] += give
			remaining -= give
		}
		if !saturated {
			return // every active child took a full share; budget is spent
		}
	}
}
