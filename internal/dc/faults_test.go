package dc

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseOpsProfilePresets(t *testing.T) {
	for _, name := range OpsPresetNames() {
		p, err := ParseOpsProfile(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if name == "none" {
			if !p.Empty() {
				t.Fatalf("preset none parsed non-empty: %+v", p)
			}
			continue
		}
		if p.Empty() {
			t.Fatalf("preset %q parsed empty", name)
		}
	}
	if p, err := ParseOpsProfile(""); err != nil || !p.Empty() {
		t.Fatalf("empty spec = (%+v, %v), want empty profile", p, err)
	}
}

func TestParseOpsProfileOverridesAndErrors(t *testing.T) {
	p, err := ParseOpsProfile("flaky-links,grace=4,flap-ticks=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.LinkFlaps != 2 || p.GraceTicks != 4 || p.FlapTicks != 9 {
		t.Fatalf("override parse = %+v", p)
	}
	for _, bad := range []string{
		"nope",                    // unknown preset
		"chip-deaths=1,ops-storm", // preset not first
		"chip-deaths=x",           // bad count
		"chip-deaths=-1",          // negative count
		"thermals=1,thermal-frac=1.5", // excursion must land below idle
		"brownouts=1,brownout-frac=2", // frac outside [0,1]
		"wibble=3",                    // unknown key
	} {
		if _, err := ParseOpsProfile(bad); err == nil {
			t.Errorf("ParseOpsProfile(%q) accepted, want error", bad)
		}
	}
}

func TestOpsProfileStringRoundTrip(t *testing.T) {
	specs := append(OpsPresetNames(),
		"chip-deaths=2,link-flaps=1,grace=3",
		"brownouts=1,rack-brownouts=2,brownout-frac=0.4",
		"thermals=3,thermal-frac=0.25,thermal-ticks=9",
	)
	for _, spec := range specs {
		p, err := ParseOpsProfile(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		q, err := ParseOpsProfile(p.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q): %v", p.String(), spec, err)
		}
		if p != q {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p, q)
		}
	}
	if got := (OpsProfile{}).String(); got != "none" {
		t.Fatalf("empty profile String() = %q, want none", got)
	}
}

func TestDrawOpsDeterministicAndBounded(t *testing.T) {
	o := Options{Racks: 2, ChassisPerRack: 2, ChipsPerChassis: 2, Ticks: 24}
	p, err := ParseOpsProfile("ops-storm,rack-brownouts=1")
	if err != nil {
		t.Fatal(err)
	}
	a := DrawOps(p, 7, o, nil)
	b := DrawOps(p, 7, o, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DrawOps is not deterministic for identical inputs")
	}
	if len(a) != 1+2+1+1+1 {
		t.Fatalf("schedule has %d events, want 6", len(a))
	}
	nChips := 2 * 2 * 2
	for i, ev := range a {
		if ev.Tick < 1 || ev.Tick > o.Ticks-1 {
			t.Fatalf("event %d tick %d outside [1,%d]", i, ev.Tick, o.Ticks-1)
		}
		switch ev.Kind {
		case OpsChipDeath, OpsLinkFlap, OpsThermal:
			if ev.Target < 0 || ev.Target >= nChips {
				t.Fatalf("event %d chip target %d out of range", i, ev.Target)
			}
		case OpsBrownout:
			if ev.Target < 0 || ev.Target >= 2*2 {
				t.Fatalf("event %d chassis target %d out of range", i, ev.Target)
			}
		case OpsRackBrownout:
			if ev.Target < 0 || ev.Target >= 2 {
				t.Fatalf("event %d rack target %d out of range", i, ev.Target)
			}
		}
		if i > 0 && a[i-1].Tick > ev.Tick {
			t.Fatal("schedule is not sorted by tick")
		}
	}
	if c := DrawOps(p, 8, o, nil); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical schedules")
	}
}

func TestDrawOpsRespectsLiveMask(t *testing.T) {
	o := Options{Racks: 1, ChassisPerRack: 1, ChipsPerChassis: 4, Ticks: 16}
	p := OpsProfile{ChipDeaths: 4, LinkFlaps: 4, Thermals: 4}
	live := []bool{false, true, true, true}
	for _, ev := range DrawOps(p, 3, o, live) {
		if ev.Target == 0 {
			t.Fatalf("chip-scoped event %v targeted a non-live chip", ev)
		}
	}
}

func TestOpsKindString(t *testing.T) {
	if OpsChipDeath.String() != "chip-death" || OpsKind(99).String() != "invalid" {
		t.Fatal("OpsKind.String mismatch")
	}
}

func FuzzOpsProfile(f *testing.F) {
	f.Add("ops-storm")
	f.Add("none")
	f.Add("chip-deaths=1,link-flaps=2,grace=3")
	f.Add("flaky-links,readmit=5")
	f.Add("thermals=2,thermal-frac=0.9")
	f.Add("brownouts=1,brownout-frac=0.5,brownout-ticks=3,rack-brownouts=2")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseOpsProfile(spec)
		if err != nil {
			return
		}
		// Whatever parses must validate, render canonically, and
		// round-trip to the identical profile.
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parsed profile fails Validate: %v (spec %q)", verr, spec)
		}
		s := p.String()
		q, err := ParseOpsProfile(s)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v (spec %q)", s, err, spec)
		}
		if p != q {
			t.Fatalf("round trip diverged: %+v != %+v (spec %q, canonical %q)", p, q, spec, s)
		}
		if strings.Contains(s, " ") {
			t.Fatalf("canonical form contains spaces: %q", s)
		}
	})
}
