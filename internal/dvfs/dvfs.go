// Package dvfs implements the coarse-grained DVFS layer the POWER7+
// ships with (Sec. II: "efficiency management ... in coarse-grained
// dynamic voltage and frequency scaling (DVFS), which adjusts p-states
// from 2.1 GHz to 4.2 GHz") and the stock OS governors that drive it —
// the paper's static-margin baseline "is running the stock DVFS OS
// governors that already strive to improve system efficiency"
// (Sec. VII-D).
//
// Three classic governors are provided. They map a core's recent
// utilization to a p-state on the ladder; the ATM loop then tunes
// around whatever p-state the governor picked (or the core runs the
// p-state directly under the static margin).
package dvfs

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/units"
)

// Governor maps utilization to a p-state.
type Governor interface {
	// Pick returns the p-state for a core whose recent utilization is
	// util ∈ [0, 1], given its current p-state.
	Pick(util float64, current units.MHz) units.MHz
	// Name is the sysfs-style governor name.
	Name() string
}

// Performance always runs the top p-state.
type Performance struct{}

// Pick implements Governor.
func (Performance) Pick(float64, units.MHz) units.MHz { return chip.PStateMax }

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// Powersave always runs the bottom p-state.
type Powersave struct{}

// Pick implements Governor.
func (Powersave) Pick(float64, units.MHz) units.MHz { return chip.PStateMin }

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// Ondemand jumps to the top p-state above the up-threshold and walks
// down one ladder step at a time when utilization falls below the
// down-threshold — the classic Linux ondemand shape.
type Ondemand struct {
	// UpThreshold (default 0.80) triggers the jump to PStateMax.
	UpThreshold float64
	// DownThreshold (default 0.30) triggers a one-step descent.
	DownThreshold float64
}

// DefaultOndemand returns the stock thresholds.
func DefaultOndemand() Ondemand { return Ondemand{UpThreshold: 0.80, DownThreshold: 0.30} }

// Name implements Governor.
func (Ondemand) Name() string { return "ondemand" }

// Pick implements Governor.
func (g Ondemand) Pick(util float64, current units.MHz) units.MHz {
	up := g.UpThreshold
	if up == 0 {
		up = 0.80
	}
	down := g.DownThreshold
	if down == 0 {
		down = 0.30
	}
	switch {
	case util >= up:
		return chip.PStateMax
	case util < down:
		return stepDown(current)
	default:
		return current
	}
}

// stepDown returns the next p-state below current (or the floor).
func stepDown(current units.MHz) units.MHz {
	prev := chip.PStateMin
	for _, p := range chip.PStates {
		if p >= current {
			break
		}
		prev = p
	}
	return prev
}

// ByName resolves a governor the way the CLI and configs reference them.
func ByName(name string) (Governor, error) {
	switch name {
	case "performance":
		return Performance{}, nil
	case "powersave":
		return Powersave{}, nil
	case "ondemand":
		return DefaultOndemand(), nil
	default:
		return nil, fmt.Errorf("dvfs: unknown governor %q", name)
	}
}

// Apply sets a core's p-state from the governor's decision (the core's
// clocking mode is left untouched: a static core runs the p-state
// directly, an ATM core tunes around it).
func Apply(core *chip.Core, g Governor, util float64) error {
	return core.SetPState(g.Pick(util, core.PState()))
}
