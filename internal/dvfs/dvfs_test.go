package dvfs

import (
	"testing"
	"testing/quick"

	"repro/internal/chip"
	"repro/internal/units"
)

func TestPerformanceAndPowersave(t *testing.T) {
	for _, util := range []float64{0, 0.5, 1} {
		if got := (Performance{}).Pick(util, 2100); got != chip.PStateMax {
			t.Errorf("performance picked %v", got)
		}
		if got := (Powersave{}).Pick(util, 4200); got != chip.PStateMin {
			t.Errorf("powersave picked %v", got)
		}
	}
}

func TestOndemandShape(t *testing.T) {
	g := DefaultOndemand()
	// High utilization: jump straight to the top from anywhere.
	if got := g.Pick(0.9, 2100); got != chip.PStateMax {
		t.Errorf("busy core picked %v", got)
	}
	// Mid utilization: hold.
	if got := g.Pick(0.5, 3300); got != 3300 {
		t.Errorf("mid-util core moved to %v", got)
	}
	// Low utilization: descend exactly one ladder step.
	if got := g.Pick(0.1, 4200); got != 4000 {
		t.Errorf("idle core stepped to %v, want 4000", got)
	}
	if got := g.Pick(0.1, 2100); got != 2100 {
		t.Errorf("idle core at the floor moved to %v", got)
	}
}

func TestOndemandZeroValueUsesDefaults(t *testing.T) {
	var g Ondemand
	if got := g.Pick(0.95, 2100); got != chip.PStateMax {
		t.Errorf("zero-value governor picked %v at 95%% util", got)
	}
}

// TestOndemandConverges: repeated low utilization walks to the floor;
// a burst recovers the top in one decision.
func TestOndemandConverges(t *testing.T) {
	g := DefaultOndemand()
	p := chip.PStateMax
	for i := 0; i < 20; i++ {
		p = g.Pick(0.05, p)
	}
	if p != chip.PStateMin {
		t.Errorf("sustained idle settled at %v", p)
	}
	if got := g.Pick(1.0, p); got != chip.PStateMax {
		t.Errorf("burst from floor picked %v", got)
	}
}

// TestPickAlwaysOnLadder: every governor returns a legal p-state for
// any utilization and any legal current state.
func TestPickAlwaysOnLadder(t *testing.T) {
	onLadder := func(f units.MHz) bool {
		for _, p := range chip.PStates {
			if p == f {
				return true
			}
		}
		return false
	}
	govs := []Governor{Performance{}, Powersave{}, DefaultOndemand()}
	prop := func(utilRaw uint8, curIdx uint8) bool {
		util := float64(utilRaw) / 255
		cur := chip.PStates[int(curIdx)%len(chip.PStates)]
		for _, g := range govs {
			if !onLadder(g.Pick(util, cur)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"performance", "powersave", "ondemand"} {
		g, err := ByName(name)
		if err != nil || g.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, g, err)
		}
	}
	if _, err := ByName("conservative-ondemand"); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestApply(t *testing.T) {
	m := chip.NewReference()
	core, err := m.Core("P0C0")
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(core, Powersave{}, 0.5); err != nil {
		t.Fatal(err)
	}
	if core.PState() != chip.PStateMin {
		t.Errorf("Apply left p-state at %v", core.PState())
	}
	if err := Apply(core, Performance{}, 0.5); err != nil {
		t.Fatal(err)
	}
	if core.PState() != chip.PStateMax {
		t.Errorf("Apply left p-state at %v", core.PState())
	}
}
