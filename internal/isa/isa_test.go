package isa

import (
	"testing"
	"testing/quick"
)

func TestGenerateFullCoverage(t *testing.T) {
	for _, n := range []int{0, 5, 12, 100, 1000} {
		p := Generate(7, n)
		if !p.FullCoverage() {
			t.Errorf("program of %d instructions misses opcodes: %v", n, p.Coverage())
		}
		if len(p.Code) < int(numOps) {
			t.Errorf("program shorter than the opcode count: %d", len(p.Code))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 200)
	b := Generate(42, 200)
	if len(a.Code) != len(b.Code) {
		t.Fatal("lengths differ")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c := Generate(43, 200)
	same := 0
	for i := range c.Code {
		if a.Code[i] == c.Code[i] {
			same++
		}
	}
	if same > len(a.Code)/2 {
		t.Errorf("different seeds produced %d/%d identical instructions", same, len(a.Code))
	}
}

func TestRunDeterministic(t *testing.T) {
	p := Generate(9, 500)
	var m1, m2 Machine
	if m1.Run(p) != m2.Run(p) {
		t.Error("interpreter not deterministic")
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	p := Generate(11, 400)
	var m Machine
	m.Run(p)
	if m.Regs[0] != 0 {
		t.Errorf("r0 = %#x after run", m.Regs[0])
	}
}

func TestChecksumSensitive(t *testing.T) {
	// Programs differing in one (always-executed) instruction produce
	// different sums. Instruction 0 is OpAdd by construction; rewire it
	// to clear a register instead.
	a := Generate(5, 100)
	b := Generate(5, 100)
	b.Code[0] = Inst{Op: OpXor, Rd: 15, Ra: 15, Rb: 15}
	var m Machine
	if m.Run(a) == m.Run(b) {
		t.Error("checksum insensitive to a program change")
	}
}

func TestSuiteVerify(t *testing.T) {
	s := NewSuite(1, 8, 300)
	if len(s.Programs) != 8 || len(s.Golden) != 8 {
		t.Fatalf("suite sized wrong: %d/%d", len(s.Programs), len(s.Golden))
	}
	if i := s.Verify(); i != -1 {
		t.Errorf("clean suite failed verification at program %d", i)
	}
	for _, p := range s.Programs {
		if !p.FullCoverage() {
			t.Error("suite program without full coverage")
		}
	}
}

// TestUpsetVulnerabilityFactor: random single-bit register upsets are
// caught only when the corrupted state is architecturally live — the
// classic AVF observation. Mid-program upsets land in the 20–90% band
// (many registers are overwritten before contributing), which is
// exactly why the methodology insists on *checked* workloads rather
// than assuming every violation is visible.
func TestUpsetVulnerabilityFactor(t *testing.T) {
	s := NewSuite(2, 4, 300)
	caught, total := 0, 0
	for i := range s.Programs {
		for inst := 10; inst < 300; inst += 40 {
			for reg := uint8(1); reg < NumRegs; reg += 3 {
				total++
				if s.ChecksumCatches(i, inst, reg, uint(inst)%64) {
					caught++
				}
			}
		}
	}
	frac := float64(caught) / float64(total)
	if frac < 0.20 || frac > 0.90 {
		t.Errorf("mid-program upset catch rate %.0f%% outside the AVF band (%d/%d)",
			100*frac, caught, total)
	}
}

// TestLateUpsetsAreCaught: upsets just before the program ends sit in
// the final architectural state and the checksum catches nearly all of
// them.
func TestLateUpsetsAreCaught(t *testing.T) {
	s := NewSuite(2, 4, 300)
	caught, total := 0, 0
	for i := range s.Programs {
		last := s.ExecutedCount(i) - 1
		for reg := uint8(1); reg < NumRegs; reg++ {
			total++
			if s.ChecksumCatches(i, last, reg, uint(reg)) {
				caught++
			}
		}
	}
	if frac := float64(caught) / float64(total); frac < 0.9 {
		t.Errorf("late upset catch rate %.0f%% (%d/%d), want ≥90%%", 100*frac, caught, total)
	}
}

// TestCorruptedRunWithoutUpsetMatchesGolden: RunCorrupted with an
// unreachable upset point reproduces the golden checksum (the two
// interpreter bodies agree).
func TestCorruptedRunWithoutUpsetMatchesGolden(t *testing.T) {
	s := NewSuite(3, 4, 200)
	for i := range s.Programs {
		if got := s.RunCorrupted(i, 1<<30, 5, 3); got != s.Golden[i] {
			t.Errorf("program %d: interpreters disagree without an upset", i)
		}
	}
}

// TestInterpreterTerminates: branches only skip forward, so any
// generated program terminates — property-checked over random seeds.
func TestInterpreterTerminates(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := 50 + int(nRaw)
		p := Generate(seed, n)
		var m Machine
		m.Run(p)
		// Every retired instruction is one of the program's; the
		// executed count can be below n (skips) but never above.
		return m.Executed <= len(p.Code) && m.Executed > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpBranch.String() != "branch" {
		t.Error("opcode names wrong")
	}
	if Op(99).String() == "" {
		t.Error("unknown opcode has empty name")
	}
}
