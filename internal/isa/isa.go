// Package isa is the executable substrate behind the deployment
// battery's "ISA test suites" (Sec. VII-A: "chip vendors have tailored
// ISA verification suites that provide wider coverage and execute in
// less time"). It implements a small register machine, a seeded
// generator that emits coverage-oriented test programs, and a
// checksumming interpreter — so the stress battery's path-coverage
// component runs real (synthetic) instruction streams with a
// self-checking result, the same contract the uBench kernels provide.
//
// The machine is deliberately tiny — 16 registers, a few hundred words
// of memory, a compact integer ISA — because its role is coverage
// bookkeeping and SDC detection, not architectural fidelity.
package isa

import (
	"fmt"

	"repro/internal/rng"
)

// Op is an instruction opcode.
type Op uint8

// The instruction set: ALU, multiply, memory, branch and compare ops —
// one per functional-unit class a CPM site guards.
const (
	OpAdd    Op = iota // rd = ra + rb
	OpSub              // rd = ra − rb
	OpXor              // rd = ra ^ rb
	OpAnd              // rd = ra & rb
	OpOr               // rd = ra | rb
	OpShl              // rd = ra << (rb & 63)
	OpShr              // rd = ra >> (rb & 63)
	OpMul              // rd = ra * rb (fixed-point unit path)
	OpLoad             // rd = mem[(ra + imm) % len(mem)]
	OpStore            // mem[(ra + imm) % len(mem)] = rb
	OpBranch           // if ra < rb: skip imm%7 instructions (branch path)
	OpCmp              // rd = 1 if ra < rb else 0
	numOps
)

// String names the opcode.
func (o Op) String() string {
	names := [...]string{"add", "sub", "xor", "and", "or", "shl", "shr", "mul", "load", "store", "branch", "cmp"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Inst is one instruction.
type Inst struct {
	Op         Op
	Rd, Ra, Rb uint8
	Imm        int32
}

// Program is a test program plus its coverage accounting.
type Program struct {
	// Seed regenerates the program exactly.
	Seed uint64
	Code []Inst
}

// NumRegs and MemWords size the machine.
const (
	NumRegs  = 16
	MemWords = 256
)

// Generate emits a coverage-oriented test program of n instructions:
// the generator cycles functional-unit classes so every opcode appears,
// sprinkles short forward branches, and seeds registers with
// non-degenerate values via the interpreter's init.
func Generate(seed uint64, n int) Program {
	if n < int(numOps) {
		n = int(numOps) // at least one of each opcode
	}
	src := rng.New(seed)
	p := Program{Seed: seed, Code: make([]Inst, 0, n)}
	for i := 0; i < n; i++ {
		var op Op
		if i < int(numOps) {
			op = Op(i) // guarantee full opcode coverage up front
		} else {
			op = Op(src.Intn(int(numOps)))
		}
		p.Code = append(p.Code, Inst{
			Op:  op,
			Rd:  uint8(1 + src.Intn(NumRegs-1)), // r0 is a zero register
			Ra:  uint8(src.Intn(NumRegs)),
			Rb:  uint8(src.Intn(NumRegs)),
			Imm: int32(src.Intn(4096)),
		})
	}
	return p
}

// Coverage reports which opcodes the program exercises.
func (p Program) Coverage() map[Op]int {
	out := map[Op]int{}
	for _, in := range p.Code {
		out[in.Op]++
	}
	return out
}

// FullCoverage reports whether every opcode appears at least once.
func (p Program) FullCoverage() bool {
	cov := p.Coverage()
	for op := Op(0); op < numOps; op++ {
		if cov[op] == 0 {
			return false
		}
	}
	return true
}

// Machine is the interpreter state.
type Machine struct {
	Regs [NumRegs]uint64
	Mem  [MemWords]uint64
	// Executed counts retired instructions (branch skips retire the
	// branch only).
	Executed int
	// sig is the running result signature: every retired instruction
	// mixes its operands and destination into it, the way hardware test
	// suites compact results through a MISR. Signatures make the
	// checksum sensitive to any executed-path difference, not just to
	// state that survives to the end.
	sig uint64
}

// Reset initializes the machine to the canonical start state: registers
// and memory filled with a fixed mixing pattern so every path sees
// non-trivial data. r0 stays zero.
func (m *Machine) Reset() {
	for i := range m.Regs {
		m.Regs[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	m.Regs[0] = 0
	for i := range m.Mem {
		m.Mem[i] = uint64(i)*0xBF58476D1CE4E5B9 + 1
	}
	m.Executed = 0
	m.sig = 1469598103934665603
}

// Run executes the program from the canonical start state and returns
// the result checksum (final architectural state plus the per-
// instruction result signature).
func (m *Machine) Run(p Program) uint64 {
	return m.run(p, -1, 0, 0)
}

// run is the interpreter core. When upsetAt ≥ 0, a single-bit register
// upset is injected once the retired-instruction count reaches it.
func (m *Machine) run(p Program, upsetAt int, upsetReg uint8, upsetBit uint) uint64 {
	m.Reset()
	for pc := 0; pc < len(p.Code); pc++ {
		if m.Executed == upsetAt && upsetReg%NumRegs != 0 {
			m.Regs[upsetReg%NumRegs] ^= 1 << (upsetBit % 64)
		}
		in := p.Code[pc]
		m.Executed++
		ra, rb := m.Regs[in.Ra], m.Regs[in.Rb]
		switch in.Op {
		case OpAdd:
			m.set(in.Rd, ra+rb)
		case OpSub:
			m.set(in.Rd, ra-rb)
		case OpXor:
			m.set(in.Rd, ra^rb)
		case OpAnd:
			m.set(in.Rd, ra&rb)
		case OpOr:
			m.set(in.Rd, ra|rb)
		case OpShl:
			m.set(in.Rd, ra<<(rb&63))
		case OpShr:
			m.set(in.Rd, ra>>(rb&63))
		case OpMul:
			m.set(in.Rd, ra*rb)
		case OpLoad:
			m.set(in.Rd, m.Mem[(ra+uint64(in.Imm))%MemWords])
		case OpStore:
			m.Mem[(ra+uint64(in.Imm))%MemWords] = rb
		case OpBranch:
			if ra < rb {
				pc += int(in.Imm % 7)
			}
		case OpCmp:
			if ra < rb {
				m.set(in.Rd, 1)
			} else {
				m.set(in.Rd, 0)
			}
		}
		// Compact this instruction's activity into the signature.
		m.mixSig(uint64(pc)<<48 ^ ra ^ rb<<1 ^ m.Regs[in.Rd])
	}
	return m.checksum()
}

// mixSig folds one value into the running signature.
func (m *Machine) mixSig(v uint64) {
	m.sig ^= v
	m.sig *= 1099511628211
	m.sig ^= m.sig >> 29
}

// set writes a register, preserving the hard-wired zero register.
func (m *Machine) set(rd uint8, v uint64) {
	if rd == 0 {
		return
	}
	m.Regs[rd] = v
}

// checksum mixes the architectural state into a result signature.
func (m *Machine) checksum() uint64 {
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	for _, r := range m.Regs {
		mix(r)
	}
	for _, w := range m.Mem {
		mix(w)
	}
	mix(uint64(m.Executed))
	mix(m.sig)
	return h
}

// Suite is a battery of generated test programs with golden checksums.
type Suite struct {
	Programs []Program
	Golden   []uint64
}

// NewSuite generates count programs of n instructions each and computes
// their golden checksums.
func NewSuite(seed uint64, count, n int) Suite {
	s := Suite{}
	var m Machine
	for i := 0; i < count; i++ {
		p := Generate(seed+uint64(i)*0x9E37, n)
		s.Programs = append(s.Programs, p)
		s.Golden = append(s.Golden, m.Run(p))
	}
	return s
}

// Verify re-runs every program and compares checksums, returning the
// index of the first mismatch (or −1). corrupt, when non-nil, perturbs
// the machine mid-run to emulate a timing-violation upset; Verify then
// confirms the checksum catches it.
func (s Suite) Verify() int {
	var m Machine
	for i, p := range s.Programs {
		if m.Run(p) != s.Golden[i] {
			return i
		}
	}
	return -1
}

// ExecutedCount returns how many instructions program i retires on a
// clean run (branch skips mean this is usually below the program
// length).
func (s Suite) ExecutedCount(i int) int {
	var m Machine
	m.Run(s.Programs[i])
	return m.Executed
}

// RunCorrupted executes program i with a single-bit register upset
// injected once the retired-instruction count reaches afterInst,
// returning the (possibly corrupted) checksum.
func (s Suite) RunCorrupted(i int, afterInst int, reg uint8, bit uint) uint64 {
	var m Machine
	return m.run(s.Programs[i], afterInst, reg, bit)
}

// ChecksumCatches reports whether the given upset in program i changes
// the checksum. With per-instruction signatures, any upset whose value
// is subsequently read — or that survives to the final state — is
// caught; only an upset overwritten before any use escapes.
func (s Suite) ChecksumCatches(i, afterInst int, reg uint8, bit uint) bool {
	return s.RunCorrupted(i, afterInst, reg, bit) != s.Golden[i]
}
