package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4.571428571428571, 1e-12) {
		t.Errorf("Variance = %g", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(4.571428571428571), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance single = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{9}, 73); got != 9 {
		t.Errorf("single-element percentile = %g", got)
	}
	// Out-of-range p clamps.
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("P(-5) = %g", got)
	}
	if got := Percentile(xs, 150); got != 5 {
		t.Errorf("P(150) = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

// TestPercentileBounds: any percentile lies within [min, max].
func TestPercentileBounds(t *testing.T) {
	prop := func(raw []float64, p8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(p8) / 255 * 100
		v := Percentile(raw, p)
		return v >= Min(raw)-1e-9 && v <= Max(raw)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = -2*x + 7
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, -2, 1e-12) || !almost(fit.Intercept, 7, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %g", fit.R2)
	}
	if got := fit.Predict(10); !almost(got, -13, 1e-12) {
		t.Errorf("Predict(10) = %g", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 0.1) {
		t.Errorf("slope = %g", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point fit did not error")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("vertical fit did not error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch did not error")
	}
}

// TestFitLinearRecovers: OLS recovers an exact line for arbitrary
// slope/intercept.
func TestFitLinearRecovers(t *testing.T) {
	prop := func(s8, i8 int8) bool {
		slope := float64(s8) / 16
		icept := float64(i8) / 4
		xs := []float64{-2, -1, 0, 1, 2, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + icept
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return almost(fit.Slope, slope, 1e-9) && almost(fit.Intercept, icept, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if _, ok := h.MinValue(); ok {
		t.Error("empty histogram reported a min")
	}
	for _, v := range []int{5, 5, 6, 5, 4} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Count(5) != 3 || h.Count(9) != 0 {
		t.Errorf("counts wrong: total=%d c5=%d", h.Total(), h.Count(5))
	}
	if got := h.Support(); len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Errorf("Support = %v", got)
	}
	if lo, _ := h.MinValue(); lo != 4 {
		t.Errorf("MinValue = %d", lo)
	}
	if hi, _ := h.MaxValue(); hi != 6 {
		t.Errorf("MaxValue = %d", hi)
	}
	if h.Spread() != 2 {
		t.Errorf("Spread = %d", h.Spread())
	}
	if !almost(h.Frac(5), 0.6, 1e-12) {
		t.Errorf("Frac(5) = %g", h.Frac(5))
	}
	if !almost(h.WeightedMean(), 5.0, 1e-12) {
		t.Errorf("WeightedMean = %g", h.WeightedMean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Spread() != 0 || h.Frac(1) != 0 || h.WeightedMean() != 0 {
		t.Error("empty histogram aggregates non-zero")
	}
}

func TestApproxEqual(t *testing.T) {
	// Runtime arithmetic so the compiler cannot constant-fold the sum
	// exactly; tenth+fifth carries the classic last-ulp residue vs 0.3.
	tenth, fifth := 0.1, 0.2
	sum := tenth + fifth
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 1e-9, true},                   // identical
		{sum, 0.3, 1e-9, true},                   // classic rounding residue
		{sum, 0.3, 1e-18, false},                 // residue exceeds a tiny tol
		{1e9, 1e9 + 1, 1e-6, true},               // relative for large magnitudes
		{1e9, 1.001e9, 1e-6, false},              // relative miss
		{0, 1e-12, 1e-9, true},                   // absolute near zero
		{0, 1e-6, 1e-9, false},                   // absolute miss near zero
		{math.Inf(1), math.Inf(1), 1e-9, true},   // fast path covers infinities
		{math.Inf(1), math.Inf(-1), 1e-9, false}, // opposite infinities differ
		{math.NaN(), math.NaN(), 1e-9, false},    // NaN equals nothing
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
