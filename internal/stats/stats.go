// Package stats provides the small statistical toolkit the experiments
// need: summary statistics, percentiles, histograms and ordinary
// least-squares linear regression (used to fit the paper's Eq. 1 frequency
// predictor and the Fig. 12b performance predictor).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples
// than it was given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ApproxEqual reports whether a and b agree to within tol, absolutely
// for small magnitudes and relatively for large ones. It is the
// epsilon comparison the floatcmp lint rule points at: exact ==/!= on
// computed floats differs in the last ulp between mathematically equal
// expressions.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { //lint:ignore floatcmp fast path; also makes Inf == Inf true
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) || math.IsNaN(diff) {
		return false // unequal infinities, or a NaN operand
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice because a
// missing minimum is always a caller bug in this codebase.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		Max:    Max(xs),
	}
}

// LinearFit is the result of an ordinary least-squares fit y = Slope·x +
// Intercept, with the coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// FitLinear performs an OLS fit of ys on xs. It returns
// ErrInsufficientData when fewer than two distinct x values are present.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: FitLinear length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Histogram is a counting histogram over integer-valued observations,
// used for the limit distributions of Fig. 7 and Fig. 8.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Support returns the sorted distinct values observed.
func (h *Histogram) Support() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// MinValue returns the smallest observed value; ok is false when empty.
func (h *Histogram) MinValue() (v int, ok bool) {
	s := h.Support()
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// MaxValue returns the largest observed value; ok is false when empty.
func (h *Histogram) MaxValue() (v int, ok bool) {
	s := h.Support()
	if len(s) == 0 {
		return 0, false
	}
	return s[len(s)-1], true
}

// Spread returns max − min of the support (0 when fewer than 2 values).
// The paper's "tight distribution" claim is Spread ≤ 1 (covering no more
// than two adjacent configurations).
func (h *Histogram) Spread() int {
	lo, ok := h.MinValue()
	if !ok {
		return 0
	}
	hi, _ := h.MaxValue()
	return hi - lo
}

// Frac returns the fraction of observations equal to v (0 when empty).
func (h *Histogram) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// WeightedMean returns the mean of the observed integer values.
func (h *Histogram) WeightedMean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}
