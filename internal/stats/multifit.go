package stats

import (
	"errors"
	"math"
)

// MultiFit is an ordinary least-squares fit of y on multiple features:
// y ≈ Weights·x + Intercept.
type MultiFit struct {
	Weights   []float64
	Intercept float64
	R2        float64
}

// Predict evaluates the fitted hyperplane at x. It panics when the
// feature count differs from the training width — always a caller bug.
func (f MultiFit) Predict(x []float64) float64 {
	if len(x) != len(f.Weights) {
		panic("stats: MultiFit.Predict feature width mismatch")
	}
	y := f.Intercept
	for i, w := range f.Weights {
		y += w * x[i]
	}
	return y
}

// FitMulti performs OLS over rows of features xs (each of equal width)
// against targets ys, solving the normal equations by Gaussian
// elimination with partial pivoting. A tiny ridge term keeps nearly
// collinear feature sets solvable (the synthetic counter vectors can be
// strongly correlated).
func FitMulti(xs [][]float64, ys []float64) (MultiFit, error) {
	n := len(xs)
	if n != len(ys) {
		return MultiFit{}, errors.New("stats: FitMulti length mismatch")
	}
	if n == 0 {
		return MultiFit{}, ErrInsufficientData
	}
	d := len(xs[0])
	for _, row := range xs {
		if len(row) != d {
			return MultiFit{}, errors.New("stats: FitMulti ragged feature rows")
		}
	}
	if n < d+1 {
		return MultiFit{}, ErrInsufficientData
	}

	// Augment with the intercept column: p = d+1 parameters.
	p := d + 1
	// Normal equations: (XᵀX + λI)·β = Xᵀy.
	ata := make([][]float64, p)
	for i := range ata {
		ata[i] = make([]float64, p)
	}
	aty := make([]float64, p)
	feat := func(row []float64, j int) float64 {
		if j == d {
			return 1 // intercept column
		}
		return row[j]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			fi := feat(xs[r], i)
			aty[i] += fi * ys[r]
			for j := 0; j < p; j++ {
				ata[i][j] += fi * feat(xs[r], j)
			}
		}
	}
	const ridge = 1e-9
	for i := 0; i < d; i++ { // do not regularize the intercept
		ata[i][i] += ridge * float64(n)
	}

	beta, err := solveLinearSystem(ata, aty)
	if err != nil {
		return MultiFit{}, err
	}

	fit := MultiFit{Weights: beta[:d], Intercept: beta[d]}
	// R².
	my := Mean(ys)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		e := ys[r] - fit.Predict(xs[r])
		ssRes += e * e
		dy := ys[r] - my
		ssTot += dy * dy
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// solveLinearSystem solves A·x = b by Gaussian elimination with partial
// pivoting. A is modified in place.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, errors.New("stats: singular system")
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * x[c]
		}
		x[col] = sum / a[col][col]
	}
	return x, nil
}
