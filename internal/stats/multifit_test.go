package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitMultiExactPlane(t *testing.T) {
	xs := [][]float64{
		{1, 2}, {2, 1}, {3, 3}, {0, 1}, {4, 0}, {2, 5},
	}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x[0] - 2*x[1] + 7
	}
	fit, err := FitMulti(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Weights[0]-3) > 1e-6 || math.Abs(fit.Weights[1]+2) > 1e-6 {
		t.Errorf("weights = %v", fit.Weights)
	}
	if math.Abs(fit.Intercept-7) > 1e-6 {
		t.Errorf("intercept = %g", fit.Intercept)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R² = %g", fit.R2)
	}
	if got := fit.Predict([]float64{10, 10}); math.Abs(got-17) > 1e-5 {
		t.Errorf("Predict = %g, want 17", got)
	}
}

func TestFitMultiMatchesSimpleFit(t *testing.T) {
	// One feature: must agree with FitLinear.
	xs1 := []float64{1, 2, 3, 4, 5, 8}
	ys := []float64{2.1, 3.8, 6.2, 8.1, 9.7, 16.4}
	lin, err := FitLinear(xs1, ys)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, len(xs1))
	for i, x := range xs1 {
		rows[i] = []float64{x}
	}
	multi, err := FitMulti(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.Weights[0]-lin.Slope) > 1e-6 ||
		math.Abs(multi.Intercept-lin.Intercept) > 1e-6 {
		t.Errorf("multi %v/%g vs linear %g/%g",
			multi.Weights, multi.Intercept, lin.Slope, lin.Intercept)
	}
}

func TestFitMultiErrors(t *testing.T) {
	if _, err := FitMulti(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitMulti([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitMulti([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	// Underdetermined: 2 samples, 2 features (+ intercept = 3 params).
	if _, err := FitMulti([][]float64{{1, 2}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("underdetermined fit accepted")
	}
}

func TestFitMultiCollinearSurvives(t *testing.T) {
	// Second feature is an exact copy: the ridge term must keep the
	// system solvable, and predictions must still be right.
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	ys := []float64{2, 4, 6, 8, 10}
	fit, err := FitMulti(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Predict([]float64{6, 6}); math.Abs(got-12) > 1e-3 {
		t.Errorf("collinear prediction = %g, want 12", got)
	}
}

func TestPredictPanicsOnWidthMismatch(t *testing.T) {
	fit := MultiFit{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	fit.Predict([]float64{1})
}

// TestFitMultiRecoversRandomPlanes: OLS recovers exact planes for
// arbitrary coefficients.
func TestFitMultiRecoversRandomPlanes(t *testing.T) {
	prop := func(w0, w1, w2, c int8) bool {
		xs := [][]float64{
			{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
			{1, 2, 3}, {3, 1, 2}, {2, 3, 1}, {5, 5, 1},
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = float64(w0)*x[0] + float64(w1)*x[1] + float64(w2)*x[2] + float64(c)
		}
		fit, err := FitMulti(xs, ys)
		if err != nil {
			return false
		}
		for i, want := range []float64{float64(w0), float64(w1), float64(w2)} {
			if math.Abs(fit.Weights[i]-want) > 1e-5 {
				return false
			}
		}
		return math.Abs(fit.Intercept-float64(c)) < 1e-5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
