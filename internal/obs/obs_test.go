package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("trials_total", "stage", "idle")
	c.Inc()
	c.Add(3)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 4 {
		t.Fatalf("counter value = %d, want 4", got)
	}
	if r.Counter("trials_total", "stage", "idle") != c {
		t.Fatalf("re-registration returned a different counter handle")
	}

	g := r.Gauge("stress_limit", "core", "EP00")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge value = %g, want 2", got)
	}

	h := r.Histogram("attempts", []float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); got != 16 {
		t.Fatalf("histogram sum = %g, want 16", got)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("has space") }},
		{"odd labels", func(r *Registry) { r.Counter("c", "k") }},
		{"bad label name", func(r *Registry) { r.Counter("c", "1bad", "v") }},
		{"kind mismatch", func(r *Registry) { r.Counter("m"); r.Gauge("m") }},
		{"empty buckets", func(r *Registry) { r.Histogram("h", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", []float64{2, 1}) }},
		{"bucket mismatch", func(r *Registry) {
			r.Histogram("h", []float64{1, 2})
			r.Histogram("h", []float64{1, 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	// Registration order deliberately scrambled: export must sort.
	r.Gauge("zz_gauge").Set(1.5)
	r.Counter("aa_total", "core", "EP01").Inc()
	r.Counter("aa_total", "core", "EP00").Add(2)
	h := r.Histogram("hh", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE aa_total counter",
		`aa_total{core="EP00"} 2`,
		`aa_total{core="EP01"} 1`,
		"# TYPE hh histogram",
		`hh_bucket{le="1"} 1`,
		`hh_bucket{le="2"} 1`,
		`hh_bucket{le="+Inf"} 2`,
		"hh_sum 5.5",
		"hh_count 2",
		`hh{quantile="0.5"} 1`,
		`hh{quantile="0.95"} 2`,
		`hh{quantile="0.99"} 2`,
		"# TYPE zz_gauge gauge",
		"zz_gauge 1.5",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("WriteProm:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "core", "EP\"0\\0\n").Inc()
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `c{core="EP\"0\\0\n"} 1` + "\n"
	if got := b.String(); !strings.Contains(got, want) {
		t.Fatalf("WriteProm = %q, want to contain %q", got, want)
	}
}

func TestLabelsSortedByKey(t *testing.T) {
	r := NewRegistry()
	// Same series regardless of argument order.
	a := r.Counter("c", "b", "2", "a", "1")
	b := r.Counter("c", "a", "1", "b", "2")
	if a != b {
		t.Fatalf("label order created distinct series")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c{a="1",b="2"} 0`) {
		t.Fatalf("labels not key-sorted: %q", buf.String())
	}
}

func TestSnapshotJSONValidAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total", "core", "EP01").Inc()
		r.Counter("a_total").Add(7)
		r.Gauge("g").Set(0.25)
		h := r.Histogram("h", []float64{1, 10}, "verb", "ping")
		h.Observe(3)
		return r
	}
	s1 := build().SnapshotJSON()
	s2 := build().SnapshotJSON()
	if !bytes.Equal(s1, s2) {
		t.Fatalf("snapshots differ:\n%s\n%s", s1, s2)
	}
	if bytes.ContainsRune(s1, '\n') {
		t.Fatalf("SnapshotJSON is not a single line: %q", s1)
	}
	var doc struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(s1, &doc); err != nil {
		t.Fatalf("SnapshotJSON not valid JSON: %v\n%s", err, s1)
	}
	if len(doc.Metrics) != 4 {
		t.Fatalf("got %d metrics, want 4: %s", len(doc.Metrics), s1)
	}
	if doc.Metrics[0]["name"] != "a_total" {
		t.Fatalf("metrics not sorted by name: %s", s1)
	}
}

func TestNilRegistryExports(t *testing.T) {
	var r *Registry
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteProm = (%q, %v), want empty", b.String(), err)
	}
	if got := string(r.SnapshotJSON()); got != `{"metrics":[]}` {
		t.Fatalf("nil SnapshotJSON = %q", got)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != `{"metrics":[]}`+"\n" {
		t.Fatalf("nil WriteJSON = %q", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []float64{10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// disabledTrialInstrumentation is the exact call sequence an
// instrumented trial hot path pays with the plane disabled: resolved
// nil handles, one span, a few counter bumps, one observation.
func disabledTrialInstrumentation(tr *Tracer, c *Counter, g *Gauge, h *Histogram) {
	sp := tr.Begin("charact", "trial", "EP00")
	c.Inc()
	c.Add(2)
	g.Set(1.5)
	h.Observe(3)
	tr.Instant("charact", "retry", "EP00")
	sp.End()
}

func TestDisabledObsZeroAlloc(t *testing.T) {
	var r *Registry
	var tr *Tracer
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil) // nil registry: bounds never validated
	allocs := testing.AllocsPerRun(100, func() {
		disabledTrialInstrumentation(tr, c, g, h)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs plane allocates: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledTrialInstrumentation(b *testing.B) {
	var r *Registry
	var tr *Tracer
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledTrialInstrumentation(tr, c, g, h)
	}
}

func BenchmarkEnabledTrialInstrumentation(b *testing.B) {
	r := NewRegistry()
	tr := NewTracer()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledTrialInstrumentation(tr, c, g, h)
	}
}
