// Package obs is the deterministic observability plane of the
// reproduction: a metrics registry (counters, gauges, fixed-bucket
// histograms) and a span tracer, both keyed on *simulated or logical*
// time — never the wall clock — so two identically-seeded runs export
// byte-identical metrics snapshots and trace files. It is the software
// counterpart of the telemetry SCOMs the paper's off-chip controller
// reads: the control loop is a measurement system, and this package
// makes the measurement system itself measurable.
//
// Design rules:
//
//   - Disabled is the default and costs ~nothing. Every handle method
//     (Counter.Inc, Histogram.Observe, Tracer.Begin, Span.End, ...)
//     is safe on a nil receiver and allocates nothing; a nil *Registry
//     hands out nil handles, so instrumented hot paths pay one branch
//     per event. TestDisabledObsZeroAlloc enforces 0 allocs/op.
//   - Exports are byte-deterministic: families and series are sorted,
//     label maps are never ranged over, floats are formatted with
//     strconv ('g', -1, 64), and the tracer stamps events from a
//     monotone logical clock the caller advances (SetTimeUS) or that
//     ticks once per event.
//   - No wall clock, no ambient randomness: the package is in
//     atmlint's detrand scope alongside the simulation packages.
//
// Registration (Registry.Counter/Gauge/Histogram) is get-or-create and
// cheap but not free; instrumented code resolves handles once, outside
// its hot loops. Metric and label names are validated at registration
// and panic on misuse — registration happens at setup time, where a
// loud failure beats a silently missing series.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind classifies a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Registry holds metric families keyed by name. The zero value of
// *Registry (nil) is the disabled plane: it hands out nil handles and
// exports nothing. Construct with NewRegistry to enable collection.
// Registration and export lock internally; handle updates are atomic,
// so concurrent sessions (the FSP server) may share one registry.
//
//atm:nilsafe
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name.
type family struct {
	name   string
	kind   kind
	bounds []float64          // histogram bucket upper bounds
	series map[string]*series // keyed by rendered label body
}

// series is one (name, labels) time series.
type series struct {
	labelBody string // `k="v",k2="v2"` or ""
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for (name, labels), creating it on first
// use. labels are alternating key, value pairs. Returns nil (a valid
// no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindGauge, nil, labels).g
}

// Histogram returns the fixed-bucket histogram for (name, labels),
// creating it on first use. bounds are strictly ascending upper bucket
// bounds; a +Inf bucket is implicit. Every series of one family must
// use identical bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindHistogram, bounds, labels).h
}

// getSeries is the shared get-or-create path.
func (r *Registry) getSeries(name string, k kind, bounds []float64, labels []string) *series {
	validateName(name)
	body := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		if k == kindHistogram {
			bounds = validateBounds(name, bounds)
		}
		fam = &family{name: name, kind: k, bounds: bounds, series: map[string]*series{}}
		r.families[name] = fam
	}
	if fam.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, k))
	}
	if k == kindHistogram && !sameBounds(fam.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q registered with mismatched buckets", name))
	}
	s, ok := fam.series[body]
	if !ok {
		s = &series{labelBody: body}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(fam.bounds)
		}
		fam.series[body] = s
	}
	return s
}

// validateName panics unless name is a valid metric/label identifier.
func validateName(name string) {
	if !validIdent(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels sorts the key=value pairs by key and renders the
// canonical label body (`k="v",k2="v2"`). Values are escaped per the
// Prometheus text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validIdent(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline, per the
// Prometheus exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func validateBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	out := append([]float64(nil), bounds...)
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floatcmp bucket bounds are configuration constants compared for identity, never computed values
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- handles ----

// Counter is a monotone event count. All methods are safe on nil (the
// disabled handle) and on concurrent use.
//
//atm:nilsafe
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//atm:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; non-positive n is ignored (counters are monotone).
//
//atm:hotpath
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil handle).
//
//atm:hotpath
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
//
//atm:nilsafe
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//atm:hotpath
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d.
//
//atm:hotpath
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on the nil handle).
//
//atm:hotpath
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative in
// the exposition, non-cumulative internally.
//
//atm:nilsafe
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
//
//atm:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ExportQuantiles is the fixed quantile set every exposition renders
// for a non-empty histogram: the latency percentiles the performance
// plane (atmctl bench/flood, BENCH_fsp.json) reports.
var ExportQuantiles = []float64{0.5, 0.95, 0.99}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// distribution by linear interpolation within the fixed bucket that
// contains the target rank — the same estimator Prometheus's
// histogram_quantile applies server-side, computed here so a
// deterministic simulation can report p50/p95/p99 without a scrape
// stack. Like that estimator it assumes observations spread uniformly
// within a bucket, takes the lower bound of the first bucket as 0 when
// its upper bound is positive, and clamps ranks landing in the +Inf
// bucket to the highest finite bound. NaN is returned on a nil or
// empty histogram and for q outside (0, 1).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q <= 0 || q >= 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		in := float64(h.buckets[i].Load())
		if in == 0 {
			cum += in
			continue
		}
		if cum+in < rank && i < len(h.buckets)-1 {
			cum += in
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		} else if hi <= 0 {
			// No sensible lower bound below a non-positive first bucket.
			return hi
		}
		frac := (rank - cum) / in
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return math.NaN()
}

// Count returns the number of observations (0 on the nil handle).
//
//atm:hotpath
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on the nil handle).
//
//atm:hotpath
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ---- export ----

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	return fams
}

// sortedSeries snapshots one family's series in label order.
func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

// formatFloat renders a float the same way on every run.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName composes name{body,extra} handling the empty pieces.
func seriesName(name, body, extra string) string {
	switch {
	case body == "" && extra == "":
		return name
	case body == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + body + "}"
	default:
		return name + "{" + body + "," + extra + "}"
	}
}

// WriteProm writes the registry in the Prometheus text exposition
// format, byte-identically across runs with identical contents. A nil
// registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b bytes.Buffer
	for _, fam := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.sortedSeries() {
			switch fam.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam.name, s.labelBody, ""), s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam.name, s.labelBody, ""), formatFloat(s.g.Value()))
			case kindHistogram:
				cum := int64(0)
				for i := range s.h.buckets {
					cum += s.h.buckets[i].Load()
					le := "+Inf"
					if i < len(fam.bounds) {
						le = formatFloat(fam.bounds[i])
					}
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(fam.name+"_bucket", s.labelBody, `le="`+le+`"`), cum)
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam.name+"_sum", s.labelBody, ""), formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam.name+"_count", s.labelBody, ""), s.h.Count())
				// Summary-style quantile series, estimated from the fixed
				// buckets (see Histogram.Quantile). Empty histograms skip
				// them — there is no distribution to summarize.
				if s.h.Count() > 0 {
					for _, q := range ExportQuantiles {
						fmt.Fprintf(&b, "%s %s\n",
							seriesName(fam.name, s.labelBody, `quantile="`+formatFloat(q)+`"`),
							formatFloat(s.h.Quantile(q)))
					}
				}
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// SnapshotJSON returns the registry as one compact JSON line (no
// trailing newline) with deterministic ordering — the payload of the
// FSP protocol's in-band "stats" verb. A nil registry snapshots to
// {"metrics":[]}.
func (r *Registry) SnapshotJSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"metrics":[`)
	if r != nil {
		r.mu.Lock()
		first := true
		for _, fam := range r.sortedFamilies() {
			for _, s := range fam.sortedSeries() {
				if !first {
					b.WriteByte(',')
				}
				first = false
				b.WriteString(`{"name":`)
				b.Write(jsonString(fam.name))
				b.WriteString(`,"labels":`)
				b.Write(jsonString(s.labelBody))
				b.WriteString(`,"type":`)
				b.Write(jsonString(fam.kind.String()))
				switch fam.kind {
				case kindCounter:
					fmt.Fprintf(&b, `,"value":%d`, s.c.Value())
				case kindGauge:
					b.WriteString(`,"value":`)
					b.Write(jsonNumber(s.g.Value()))
				case kindHistogram:
					fmt.Fprintf(&b, `,"count":%d,"sum":`, s.h.Count())
					b.Write(jsonNumber(s.h.Sum()))
					b.WriteString(`,"buckets":[`)
					cum := int64(0)
					for i := range s.h.buckets {
						if i > 0 {
							b.WriteByte(',')
						}
						cum += s.h.buckets[i].Load()
						le := "+Inf"
						if i < len(fam.bounds) {
							le = formatFloat(fam.bounds[i])
						}
						b.WriteString(`{"le":`)
						b.Write(jsonString(le))
						fmt.Fprintf(&b, `,"count":%d}`, cum)
					}
					b.WriteByte(']')
					if s.h.Count() > 0 {
						b.WriteString(`,"quantiles":[`)
						for i, q := range ExportQuantiles {
							if i > 0 {
								b.WriteByte(',')
							}
							b.WriteString(`{"q":`)
							b.Write(jsonNumber(q))
							b.WriteString(`,"v":`)
							b.Write(jsonNumber(s.h.Quantile(q)))
							b.WriteByte('}')
						}
						b.WriteByte(']')
					}
				}
				b.WriteByte('}')
			}
		}
		r.mu.Unlock()
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

// WriteJSON writes SnapshotJSON plus a trailing newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	if _, err := w.Write(r.SnapshotJSON()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// jsonString marshals s as a JSON string literal.
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the export total anyway.
		return []byte(`""`)
	}
	return b
}

// jsonNumber renders v as a JSON number, quoting the non-finite values
// JSON cannot carry.
func jsonNumber(v float64) []byte {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return jsonString(formatFloat(v))
	}
	return []byte(formatFloat(v))
}
