package obs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// Tracer collects spans and instants keyed on simulated or logical
// time and writes them as a Chrome trace_event JSON file — openable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. A nil *Tracer is the
// disabled plane: every method no-ops and allocates nothing.
//
// Time is a monotone microsecond clock the tracer owns. Callers with
// real simulated time (the discrete-event scheduler, the transient
// stepper) advance it with SetTimeUS; callers whose work has no
// simulated duration (characterization trials) let it tick once per
// event, which preserves ordering and nesting without inventing fake
// durations. The wall clock is never consulted, so identically-seeded
// runs emit byte-identical trace files.
//
// Tracks (the "threads" of the trace view) are named lanes — one per
// core label, protocol session, or scheduler queue. Track ids are
// assigned in first-use order and announced with thread_name metadata
// events, so the viewer shows the lane names.
//
//atm:nilsafe
type Tracer struct {
	mu     sync.Mutex
	nowUS  int64
	events []traceEvent
	tids   map[string]int64
	order  []string // track names in tid order
}

// traceEvent is one emitted trace_event record.
type traceEvent struct {
	name, cat string
	ph        byte // 'X' complete, 'i' instant
	ts, dur   int64
	tid       int64
	args      []kv
}

type kv struct{ k, v string }

// NewTracer returns an enabled, empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tids: map[string]int64{}}
}

// SetTimeUS advances the trace clock to us microseconds of simulated
// time. Moving backwards is ignored — the clock is monotone so the
// emitted file is deterministic even when instrumentation layers
// disagree about time.
//
//atm:hotpath
func (t *Tracer) SetTimeUS(us int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if us > t.nowUS {
		t.nowUS = us
	}
	t.mu.Unlock()
}

// tick advances the logical clock one microsecond. Caller holds mu.
func (t *Tracer) tick() int64 {
	t.nowUS++
	return t.nowUS
}

// tidFor resolves a track name to its id. Caller holds mu.
func (t *Tracer) tidFor(track string) int64 {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := int64(len(t.order) + 1)
	t.tids[track] = id
	t.order = append(t.order, track)
	return id
}

// Span is one open interval; close it with End. A nil *Span (from a
// disabled tracer) accepts Arg and End as no-ops.
//
//atm:nilsafe
type Span struct {
	t         *Tracer
	name, cat string
	ts        int64
	tid       int64
	args      []kv
}

// Begin opens a span on the named track at the current trace time
// (advancing the logical clock one tick). Returns nil when the tracer
// is disabled — formatting work for Arg should be guarded on that.
func (t *Tracer) Begin(cat, name, track string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Span{t: t, cat: cat, name: name, ts: t.tick(), tid: t.tidFor(track)}
}

// Arg attaches a key/value argument to the span; returns the span for
// chaining.
//
//atm:hotpath
func (sp *Span) Arg(k, v string) *Span {
	if sp == nil {
		return nil
	}
	sp.args = append(sp.args, kv{k, v})
	return sp
}

// End closes the span at the current trace time (advancing the logical
// clock one tick) and emits it.
//
//atm:hotpath
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.t
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.tick()
	t.events = append(t.events, traceEvent{
		name: sp.name, cat: sp.cat, ph: 'X',
		ts: sp.ts, dur: end - sp.ts, tid: sp.tid, args: sp.args,
	})
}

// Instant emits a zero-duration marker on the named track. args are
// alternating key, value pairs (a trailing odd key is dropped).
func (t *Tracer) Instant(cat, name, track string, args ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'i',
		ts: t.tick(), tid: t.tidFor(track), args: pairArgs(args),
	})
}

// Complete emits an already-closed span with explicit simulated
// timestamps (microseconds) — the discrete-event scheduler path, where
// begin and end are known exactly. The trace clock is advanced past the
// span's end so logical events stay ordered after it.
func (t *Tracer) Complete(cat, name, track string, tsUS, durUS int64, args ...string) {
	if t == nil {
		return
	}
	if durUS < 0 {
		durUS = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if end := tsUS + durUS; end > t.nowUS {
		t.nowUS = end
	}
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'X',
		ts: tsUS, dur: durUS, tid: t.tidFor(track), args: pairArgs(args),
	})
}

func pairArgs(args []string) []kv {
	if len(args) < 2 {
		return nil
	}
	out := make([]kv, 0, len(args)/2)
	for i := 0; i+1 < len(args); i += 2 {
		out = append(out, kv{args[i], args[i+1]})
	}
	return out
}

// Events returns the number of emitted events (0 on the nil tracer).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the Chrome trace_event file: thread_name metadata
// for every track in tid order, then the events in emission order.
// Byte-identical across runs with identical contents. A nil tracer
// writes an empty trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(`{"traceEvents":[`)
	if t != nil {
		t.mu.Lock()
		first := true
		for i, track := range t.order {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, `{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":`, i+1)
			b.Write(jsonString(track))
			b.WriteString(`}}`)
		}
		for _, e := range t.events {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(`{"name":`)
			b.Write(jsonString(e.name))
			b.WriteString(`,"cat":`)
			b.Write(jsonString(e.cat))
			fmt.Fprintf(&b, `,"ph":%q,"ts":%d`, string(e.ph), e.ts)
			if e.ph == 'X' {
				fmt.Fprintf(&b, `,"dur":%d`, e.dur)
			}
			if e.ph == 'i' {
				b.WriteString(`,"s":"t"`)
			}
			fmt.Fprintf(&b, `,"pid":1,"tid":%d`, e.tid)
			if len(e.args) > 0 {
				b.WriteString(`,"args":{`)
				for i, a := range e.args {
					if i > 0 {
						b.WriteByte(',')
					}
					b.Write(jsonString(a.k))
					b.WriteByte(':')
					b.Write(jsonString(a.v))
				}
				b.WriteByte('}')
			}
			b.WriteByte('}')
		}
		t.mu.Unlock()
	}
	b.WriteString("]}\n")
	_, err := w.Write(b.Bytes())
	return err
}
