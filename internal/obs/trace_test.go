package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerSpansAndClock(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("charact", "trial", "EP00") // ts=1
	sp.Arg("workload", "idle")
	tr.Instant("fault", "upset", "EP00") // ts=2
	sp.End()                             // end=3, dur=2

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int64             `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 { // metadata + instant + span
		t.Fatalf("got %d events, want 3: %s", len(doc.TraceEvents), b.String())
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Args["name"] != "EP00" {
		t.Fatalf("first event is not thread_name metadata for EP00: %+v", meta)
	}
	inst := doc.TraceEvents[1]
	if inst.Ph != "i" || inst.Name != "upset" || inst.TS != 2 {
		t.Fatalf("instant event wrong: %+v", inst)
	}
	span := doc.TraceEvents[2]
	if span.Ph != "X" || span.TS != 1 || span.Dur != 2 || span.Args["workload"] != "idle" {
		t.Fatalf("span event wrong: %+v", span)
	}
}

func TestTracerSetTimeMonotone(t *testing.T) {
	tr := NewTracer()
	tr.SetTimeUS(1000)
	tr.SetTimeUS(500) // backwards: ignored
	sp := tr.Begin("x", "y", "t")
	sp.End()
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ts":1001`) {
		t.Fatalf("span did not start after SetTimeUS(1000): %s", b.String())
	}
}

func TestTracerComplete(t *testing.T) {
	tr := NewTracer()
	tr.Complete("sched", "job-1", "core-0", 2_000_000, 3_000_000, "class", "batch")
	tr.Instant("sched", "done", "core-0") // must land after the span
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.Contains(s, `"ts":2000000,"dur":3000000`) {
		t.Fatalf("complete span timestamps wrong: %s", s)
	}
	if !strings.Contains(s, `"ts":5000001`) {
		t.Fatalf("instant not ordered after complete span: %s", s)
	}
}

func TestTracerTrackOrderDeterministic(t *testing.T) {
	emit := func() []byte {
		tr := NewTracer()
		for _, track := range []string{"EP03", "EP00", "fsp", "EP03"} {
			tr.Instant("t", "e", track)
		}
		var b bytes.Buffer
		if err := tr.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, bb := emit(), emit()
	if !bytes.Equal(a, bb) {
		t.Fatalf("trace files differ across identical runs:\n%s\n%s", a, bb)
	}
	// First-use order: EP03 → tid 1, EP00 → 2, fsp → 3.
	if !strings.Contains(string(a), `"tid":1,"args":{"name":"EP03"}`) {
		t.Fatalf("track tids not in first-use order: %s", a)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("a", "b", "c")
	sp.Arg("k", "v")
	sp.End()
	tr.Instant("a", "b", "c")
	tr.Complete("a", "b", "c", 1, 2)
	tr.SetTimeUS(5)
	if tr.Events() != 0 {
		t.Fatalf("nil tracer recorded events")
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != `{"traceEvents":[]}`+"\n" {
		t.Fatalf("nil tracer WriteJSON = %q", got)
	}
}
