package obs

import (
	"math"
	"strings"
	"testing"
)

// almostEq compares quantile estimates with a tiny float tolerance.
func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestQuantileUniformDistribution(t *testing.T) {
	// 100 observations spread uniformly over decade buckets: every
	// quantile is exactly recoverable by in-bucket interpolation.
	r := NewRegistry()
	h := r.Histogram("u", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0.5, 50},
		{0.95, 95},
		{0.99, 99},
		{0.10, 10},
		{0.25, 25},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); !almostEq(got, tc.want) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	// One observation in the (0, 100] bucket: the estimator assumes a
	// uniform spread, so every quantile lands proportionally inside it.
	r := NewRegistry()
	h := r.Histogram("one", []float64{100, 200})
	h.Observe(42)
	if got := h.Quantile(0.5); !almostEq(got, 50) {
		t.Fatalf("Quantile(0.5) = %g, want 50 (midpoint of first bucket)", got)
	}
	if got := h.Quantile(0.25); !almostEq(got, 25) {
		t.Fatalf("Quantile(0.25) = %g, want 25", got)
	}
}

func TestQuantileSkewedDistribution(t *testing.T) {
	// 90 fast requests in (0,1], 9 in (1,10], 1 in (10,100]: the p50
	// sits in the first bucket, the p99 in the second, and the tail
	// observation pulls p999-style ranks into the third.
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5)
	}
	h.Observe(50)
	if got := h.Quantile(0.5); !almostEq(got, 50.0/90.0) {
		t.Errorf("p50 = %g, want %g", got, 50.0/90.0)
	}
	// rank 99 → second bucket, cum 90, in 9: 1 + 9·(99−90)/9 = 10.
	if got := h.Quantile(0.99); !almostEq(got, 10) {
		t.Errorf("p99 = %g, want 10", got)
	}
	if got := h.Quantile(0.995); !almostEq(got, 10+90*(99.5-99)/1.0) {
		t.Errorf("p995 = %g, want %g", got, 10+90*(99.5-99)/1.0)
	}
}

func TestQuantileInfBucketClampsToHighestBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over", []float64{1, 2})
	h.Observe(1000)
	h.Observe(2000)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) with all mass in +Inf = %g, want 2 (highest finite bound)", got)
	}
}

func TestQuantileDegenerateInputs(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("nil Quantile = %g, want NaN", got)
	}
	r := NewRegistry()
	h := r.Histogram("e", []float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %g, want NaN", got)
	}
	h.Observe(0.5)
	for _, q := range []float64{0, 1, -1, 2} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%g) = %g, want NaN", q, got)
		}
	}
}

func TestQuantilesRenderedInExpositions(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4}, "verb", "ping")
	for i := 0; i < 4; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`lat{verb="ping",quantile="0.5"}`, `lat{verb="ping",quantile="0.95"}`, `lat{verb="ping",quantile="0.99"}`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("WriteProm missing %q:\n%s", want, b.String())
		}
	}
	snap := string(r.SnapshotJSON())
	if !strings.Contains(snap, `"quantiles":[{"q":0.5,"v":`) {
		t.Errorf("SnapshotJSON missing quantiles: %s", snap)
	}

	// An empty histogram renders no quantile series in either format.
	r2 := NewRegistry()
	r2.Histogram("empty", []float64{1})
	var b2 strings.Builder
	if err := r2.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "quantile") {
		t.Errorf("empty histogram rendered quantiles:\n%s", b2.String())
	}
	if strings.Contains(string(r2.SnapshotJSON()), "quantiles") {
		t.Errorf("empty histogram snapshot rendered quantiles: %s", r2.SnapshotJSON())
	}
}
