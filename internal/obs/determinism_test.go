package obs_test

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// charactOpts is the quick faulted characterization the determinism
// checks run twice.
func charactOpts(reg *obs.Registry, tr *obs.Tracer) charact.Options {
	return charact.Options{
		Trials:        2,
		RunsPerConfig: 2,
		Apps:          workload.Realistic()[:2],
		Obs:           reg,
		Trace:         tr,
	}
}

// runFaulted characterizes a freshly-built reference machine under a
// seeded fault profile with the full observability plane attached, and
// returns the exported metrics snapshot and trace file.
func runFaulted(t *testing.T) (*charact.Report, []byte, []byte) {
	t.Helper()
	p, err := fault.ParseProfile("test-floor,broken=1")
	if err != nil {
		t.Fatal(err)
	}
	m := chip.NewReference()
	inj := fault.New(p, 7)
	inj.ArmMachine(m)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	inj.Observe(reg)
	rep, err := charact.Characterize(m, charactOpts(reg, tr))
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	return rep, reg.SnapshotJSON(), tb.Bytes()
}

// TestFaultedCharacterizeObsDeterministic: two identically-seeded
// faulted characterize runs export byte-identical metrics snapshots and
// trace files — the tentpole's core determinism contract.
func TestFaultedCharacterizeObsDeterministic(t *testing.T) {
	_, snapA, traceA := runFaulted(t)
	_, snapB, traceB := runFaulted(t)
	if !bytes.Equal(snapA, snapB) {
		t.Errorf("metrics snapshots differ across identically-seeded runs:\n%s\n%s", snapA, snapB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Errorf("trace files differ across identically-seeded runs")
	}
}

// TestObsCollectsFaultedRun: the snapshot of a faulted run actually
// carries the events the run paid for — trials, runs, retries, the
// quarantine, and injected trial faults.
func TestObsCollectsFaultedRun(t *testing.T) {
	rep, snap, trace := runFaulted(t)
	quarantined := 0
	for _, c := range rep.Cores {
		if c.Quarantined {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("broken=1 profile produced no quarantine; counters untestable")
	}
	for _, want := range []string{
		`"name":"atm_charact_runs_total"`,
		`"name":"atm_charact_trials_total"`,
		`"name":"atm_charact_transient_retries_total"`,
		`"name":"atm_charact_quarantines_total","labels":"","type":"counter","value":` + strconv.Itoa(quarantined),
		`"name":"fault_trial_broken_total"`,
	} {
		if !bytes.Contains(snap, []byte(want)) {
			t.Errorf("snapshot missing %s:\n%s", want, snap)
		}
	}
	for _, want := range []string{`"quarantine"`, `"stage:idle"`, `"trial"`} {
		if !bytes.Contains(trace, []byte(want)) {
			t.Errorf("trace missing %s event", want)
		}
	}
}

// TestObsPlaneDoesNotPerturbResults: the report of an instrumented run
// is identical to the report of an uninstrumented run — instrumentation
// observes the random streams, it never draws from them.
func TestObsPlaneDoesNotPerturbResults(t *testing.T) {
	m1 := chip.NewReference()
	plain, err := charact.Characterize(m1, charactOpts(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	m2 := chip.NewReference()
	instrumented, err := charact.Characterize(m2, charactOpts(obs.NewRegistry(), obs.NewTracer()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.TableI(), instrumented.TableI()) {
		t.Error("attaching the observability plane changed Table I")
	}
}
