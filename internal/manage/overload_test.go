package manage

import (
	"testing"

	"repro/internal/workload"
)

// Overload edges for the planner: the thermal envelope collapsing to
// (almost) zero budget must drive the balanced plan to its power-gated
// floor — never an error, never an over-budget schedule.

// TestBalancedThermalFloorPowerGates: with the managed chip's junction
// ceiling pinched to a hair above ambient, MaxPower() is a couple of
// watts — below any candidate schedule. The Fig. 13 walk must fall all
// the way through the DVFS ladder to the power-gating floor and report a
// budget clamped to the envelope.
func TestBalancedThermalFloorPowerGates(t *testing.T) {
	mg := manager(t)
	pair := Pair{Critical: workload.MustByName("seq2seq"), Background: workload.MustByName("streamcluster")}
	for _, c := range mg.M.Chips {
		if c.Profile.Label != mg.ChipLabel {
			continue
		}
		prev := c.Thermal.TjMaxC
		c.Thermal.TjMaxC = c.Thermal.AmbientC + 0.5
		defer func() { c.Thermal.TjMaxC = prev }()
		env := c.Thermal.MaxPower()

		ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
		if err != nil {
			t.Fatalf("zero-budget evaluation errored: %v", err)
		}
		if ev.BackgroundSetting != "power-gated" {
			t.Errorf("background setting %q under a %.1f W envelope, want power-gated",
				ev.BackgroundSetting, float64(env))
		}
		if float64(ev.PowerBudget) > float64(env)+1e-9 {
			t.Errorf("planned budget %.2f W exceeds the thermal envelope %.2f W",
				float64(ev.PowerBudget), float64(env))
		}
	}

	// The floor plan must not leak gated cores into later evaluations.
	for _, c := range mg.M.AllCores() {
		if c.Gated() || c.Workload().Name != "idle" {
			t.Fatalf("%s left configured after the zero-budget evaluation", c.Profile.Label)
		}
	}
}

// TestBalancedBudgetClampedToEnvelope: even with a healthy chip the
// QoS-derived budget must never exceed the package thermal envelope.
func TestBalancedBudgetClampedToEnvelope(t *testing.T) {
	mg := manager(t)
	for _, c := range mg.M.Chips {
		if c.Profile.Label != mg.ChipLabel {
			continue
		}
		env := c.Thermal.MaxPower()
		for _, pair := range Fig14Pairs() {
			ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
			if err != nil {
				t.Fatalf("%s: %v", pair.Label(), err)
			}
			if float64(ev.PowerBudget) > float64(env)+1e-9 {
				t.Errorf("%s: budget %.2f W above envelope %.2f W",
					pair.Label(), float64(ev.PowerBudget), float64(env))
			}
		}
	}
}

// TestBalancedRejectsNegativeQoS: a negative target is as degenerate as
// a zero one (the zero case is covered in balanced_test.go).
func TestBalancedRejectsNegativeQoS(t *testing.T) {
	mg := manager(t)
	pair := Fig14Pairs()[0]
	if _, err := mg.Evaluate(ScenarioManagedBalanced, pair, -0.1); err == nil {
		t.Error("negative QoS target accepted")
	}
}
