// Package manage implements the paper's Sec. VII management layer for a
// fine-tuned ATM system: the per-core frequency predictor (Eq. 1), the
// per-application performance predictor (Fig. 12b), the CPM-configuration
// governors, and the scheduler/throttler that places critical
// applications on fast cores and holds total chip power under the budget
// their QoS demands (Fig. 13).
package manage

import (
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// FreqPredictor is one core's Eq. 1 model: the runtime average frequency
// as a linear function of total chip power,
//
//	f ≈ −k′·P + b,
//
// where b encodes the core's static CPM setting and k′·P the dynamic
// variation, dominated by the IR voltage drop on the shared delivery
// path. In practice each core stores its model and indexes it by the
// chip's total power during job scheduling (Sec. VII-B).
type FreqPredictor struct {
	Core string
	Fit  stats.LinearFit // x = chip power (W), y = frequency (MHz)
}

// Predict returns the core's expected frequency at total chip power p.
func (fp FreqPredictor) Predict(p units.Watt) units.MHz {
	return units.MHz(fp.Fit.Predict(float64(p)))
}

// PowerForFreq inverts the model: the total chip power at which the core
// runs at frequency f. The second return is false when the fitted slope
// is (degenerately) non-negative.
func (fp FreqPredictor) PowerForFreq(f units.MHz) (units.Watt, bool) {
	if fp.Fit.Slope >= 0 {
		return 0, false
	}
	return units.Watt((float64(f) - fp.Fit.Intercept) / fp.Fit.Slope), true
}

// MHzPerWatt returns the magnitude of the frequency-vs-power slope (the
// paper measures ≈2 MHz per watt).
func (fp FreqPredictor) MHzPerWatt() float64 { return -fp.Fit.Slope }

// CalibrateFreqPredictor fits a core's Eq. 1 model by sweeping the chip
// through load levels: the target core keeps its current (deployed) CPM
// configuration while the sibling cores step through increasing
// co-runner load, and each steady state contributes one (chip power,
// core frequency) sample.
//
// The machine's workload assignment is restored afterwards.
func CalibrateFreqPredictor(m *chip.Machine, label string) (FreqPredictor, error) {
	ch, err := m.ChipOf(label)
	if err != nil {
		return FreqPredictor{}, err
	}
	// Save and restore sibling state.
	type saved struct {
		w      workload.Profile
		mode   chip.Mode
		pstate units.MHz
	}
	before := map[string]saved{}
	for _, c := range ch.Cores {
		before[c.Profile.Label] = saved{c.Workload(), c.Mode(), c.PState()}
	}
	defer func() {
		for _, c := range ch.Cores {
			s := before[c.Profile.Label]
			c.SetWorkload(s.w)
			c.SetMode(s.mode)
			if err := c.SetPState(s.pstate); err != nil {
				panic(err) // restoring a previously valid p-state cannot fail
			}
		}
	}()

	// Load ladder: idle → k stream co-runners → k daxpy co-runners.
	loads := []workload.Profile{workload.Idle, workload.Stream, workload.Coremark, workload.Daxpy}
	var xs, ys []float64
	for _, load := range loads {
		for n := 0; n < len(ch.Cores); n++ {
			placed := 0
			for _, c := range ch.Cores {
				if c.Profile.Label == label {
					c.SetWorkload(workload.Coremark) // keep the target core busy
					continue
				}
				if placed < n {
					c.SetWorkload(load)
					placed++
				} else {
					c.SetWorkload(workload.Idle)
				}
			}
			st, err := m.Solve()
			if err != nil {
				return FreqPredictor{}, err
			}
			cs, err := st.ChipState(ch.Profile.Label)
			if err != nil {
				return FreqPredictor{}, err
			}
			core, err := st.CoreState(label)
			if err != nil {
				return FreqPredictor{}, err
			}
			xs = append(xs, float64(cs.Power))
			ys = append(ys, float64(core.Freq))
		}
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return FreqPredictor{}, fmt.Errorf("manage: freq predictor for %s: %w", label, err)
	}
	return FreqPredictor{Core: label, Fit: fit}, nil
}

// PerfPredictor is one application's Fig. 12b model: performance
// relative to the static-margin baseline as a linear function of core
// frequency. Memory-bound applications have shallow slopes.
type PerfPredictor struct {
	App string
	Fit stats.LinearFit // x = frequency (MHz), y = relative performance
}

// Predict returns the application's expected relative performance at
// frequency f.
func (pp PerfPredictor) Predict(f units.MHz) float64 {
	return pp.Fit.Predict(float64(f))
}

// FreqForPerf inverts the model: the core frequency needed to reach a
// target relative performance.
func (pp PerfPredictor) FreqForPerf(perf float64) (units.MHz, bool) {
	if pp.Fit.Slope <= 0 {
		return 0, false
	}
	return units.MHz((perf - pp.Fit.Intercept) / pp.Fit.Slope), true
}

// CalibratePerfPredictor fits an application's performance-vs-frequency
// line over the fine-tuned operating range by profiling the workload
// model at swept frequencies (on hardware this is a frequency-pinning
// profiling run per application; Sec. VII-C).
func CalibratePerfPredictor(app workload.Profile, base units.MHz) (PerfPredictor, error) {
	var xs, ys []float64
	for f := float64(base); f <= float64(base)*1.25; f += 50 {
		xs = append(xs, f)
		ys = append(ys, app.RelPerf(f, float64(base)))
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return PerfPredictor{}, fmt.Errorf("manage: perf predictor for %s: %w", app.Name, err)
	}
	return PerfPredictor{App: app.Name, Fit: fit}, nil
}

// PredictorSet bundles the calibrated models the manager consults.
type PredictorSet struct {
	Freq map[string]FreqPredictor
	Perf map[string]PerfPredictor
	Base units.MHz
}

// CalibratePredictors fits the Eq. 1 model for every core of the
// machine and the performance model for every realistic workload.
func CalibratePredictors(m *chip.Machine) (*PredictorSet, error) {
	base := m.Profile().Params().FStatic
	ps := &PredictorSet{
		Freq: map[string]FreqPredictor{},
		Perf: map[string]PerfPredictor{},
		Base: base,
	}
	for _, core := range m.AllCores() {
		fp, err := CalibrateFreqPredictor(m, core.Profile.Label)
		if err != nil {
			return nil, err
		}
		ps.Freq[core.Profile.Label] = fp
	}
	for _, app := range workload.Realistic() {
		pp, err := CalibratePerfPredictor(app, base)
		if err != nil {
			return nil, err
		}
		ps.Perf[app.Name] = pp
	}
	return ps, nil
}

// CoresBySpeed returns the chip's core labels sorted by descending
// predicted frequency at the given chip power.
func (ps *PredictorSet) CoresBySpeed(labels []string, at units.Watt) []string {
	out := append([]string(nil), labels...)
	sort.Slice(out, func(i, j int) bool {
		fi := ps.Freq[out[i]].Predict(at)
		fj := ps.Freq[out[j]].Predict(at)
		//lint:ignore floatcmp comparator tie-break: exact inequality only routes to the secondary key, any consistent order is deterministic
		if fi != fj {
			return fi > fj
		}
		return out[i] < out[j]
	})
	return out
}
