package manage

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/units"
	"repro/internal/workload"
)

// LatencyPoint is one bar of the Fig. 2 study: a latency-critical task
// under one margin setting and co-location schedule.
type LatencyPoint struct {
	Name      string
	Core      string
	Freq      units.MHz
	Perf      float64 // relative to static margin
	LatencyMs float64
	ChipPower units.Watt
}

// LatencyStudy reproduces the Fig. 2 experiment for a latency-critical
// workload (SqueezeNet in the paper): its task latency under
//
//   - the static margin (fixed 4.2 GHz, schedule-independent);
//   - default ATM with idle co-runners;
//   - fine-tuned ATM, worst schedule — the slowest deployed core with
//     high-power co-runners (daxpy) on every other core;
//   - fine-tuned ATM, best schedule — the fastest deployed core with
//     the rest of the chip idle.
func (mg *Manager) LatencyStudy(critical workload.Profile) ([]LatencyPoint, error) {
	if critical.BaselineLatencyMs == 0 {
		return nil, fmt.Errorf("manage: %s has no latency metric", critical.Name)
	}
	cores := mg.fastestOnChip()
	if len(cores) < 2 {
		return nil, fmt.Errorf("manage: chip %s has too few cores", mg.ChipLabel)
	}
	fastest, slowest := cores[0], cores[len(cores)-1]

	type setup struct {
		name     string
		core     string
		coRunner workload.Profile
		mode     bgMode
	}
	setups := []setup{
		{"static margin", fastest, workload.Idle, allStatic},
		{"default ATM, idle co-runners", fastest, workload.Idle, allDefaultATM},
		{"fine-tuned, worst schedule", slowest, workload.Daxpy, allDeployed},
		{"fine-tuned, best schedule", fastest, workload.Idle, allDeployed},
	}

	var out []LatencyPoint
	for _, su := range setups {
		mg.M.ResetAll()
		pair := Pair{Critical: critical, Background: su.coRunner}
		if err := mg.configure(su.mode, su.core, pair, chip.PStateMax); err != nil {
			return nil, err
		}
		st, err := mg.M.Solve()
		if err != nil {
			return nil, err
		}
		cs, err := st.CoreState(su.core)
		if err != nil {
			return nil, err
		}
		chipState, err := st.ChipState(mg.ChipLabel)
		if err != nil {
			return nil, err
		}
		base := float64(mg.Preds.Base)
		out = append(out, LatencyPoint{
			Name:      su.name,
			Core:      su.core,
			Freq:      cs.Freq,
			Perf:      critical.RelPerf(float64(cs.Freq), base),
			LatencyMs: critical.LatencyMs(float64(cs.Freq), base),
			ChipPower: chipState.Power,
		})
	}
	mg.M.ResetAll()
	return out, nil
}
