package manage

import (
	"strings"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// TestImpossibleQoSFallsToGating: a QoS target beyond what even a lone
// critical core can deliver drives the planner through the whole ladder
// to power gating, and the evaluation honestly reports the miss.
func TestImpossibleQoSFallsToGating(t *testing.T) {
	mg := manager(t)
	pair := Pair{Critical: workload.MustByName("squeezenet"), Background: workload.MustByName("lu_cb")}
	ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.60) // +60% is unreachable
	if err != nil {
		t.Fatal(err)
	}
	if ev.MeetsQoS {
		t.Errorf("+60%% QoS reported as met (%.1f%%)", 100*ev.Improvement())
	}
	if ev.BackgroundSetting != "power-gated" {
		t.Errorf("planner chose %q for an impossible target; expected the gating fallback",
			ev.BackgroundSetting)
	}
	// Gated co-runners: background performance is zero.
	if ev.BackgroundPerf != 0 {
		t.Errorf("gated background reports perf %.2f", ev.BackgroundPerf)
	}
	// Gating still yields the best achievable critical frequency.
	evMax, err := mg.Evaluate(ScenarioManagedMax, pair, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CriticalFreq < evMax.CriticalFreq {
		t.Errorf("gated-run critical %v below managed-max %v", ev.CriticalFreq, evMax.CriticalFreq)
	}
}

// TestBalancedRejectsZeroQoS: balanced mode requires a target.
func TestBalancedRejectsZeroQoS(t *testing.T) {
	mg := manager(t)
	pair := Fig14Pairs()[0]
	if _, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0); err == nil {
		t.Error("balanced scheduling without a QoS target accepted")
	}
}

// TestBudgetClampedToThermalEnvelope: the planned budget never exceeds
// what the package can sustain.
func TestBudgetClampedToThermalEnvelope(t *testing.T) {
	mg := manager(t)
	var envelope units.Watt
	for _, c := range mg.M.Chips {
		if c.Profile.Label == mg.ChipLabel {
			envelope = c.Thermal.MaxPower()
		}
	}
	for _, pair := range Fig14Pairs() {
		ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if ev.PowerBudget > envelope+1e-9 {
			t.Errorf("%s: budget %v above envelope %v", pair.Label(), ev.PowerBudget, envelope)
		}
	}
}

// TestCoresBySpeedOrdering: the predictor-based ranking is descending.
func TestCoresBySpeedOrdering(t *testing.T) {
	mg := manager(t)
	labels := mg.chipCores()
	ranked := mg.Preds.CoresBySpeed(labels, 100)
	if len(ranked) != len(labels) {
		t.Fatalf("ranking dropped cores: %d vs %d", len(ranked), len(labels))
	}
	prev := 1e12
	for _, l := range ranked {
		f := float64(mg.Preds.Freq[l].Predict(100))
		if f > prev {
			t.Fatalf("ranking not descending at %s", l)
		}
		prev = f
	}
}

// TestScenarioStringNames pin the CLI-facing scenario names.
func TestScenarioStringNames(t *testing.T) {
	names := map[Scenario]string{
		ScenarioStaticMargin:       "static-margin",
		ScenarioDefaultATM:         "default-atm",
		ScenarioFineTunedUnmanaged: "fine-tuned-unmanaged",
		ScenarioManagedMax:         "managed-max",
		ScenarioManagedBalanced:    "managed-balanced",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	for _, g := range []Governor{GovernorDefault, GovernorConservative, GovernorAggressive} {
		if strings.Contains(g.String(), "governor(") {
			t.Errorf("governor %d has no name", int(g))
		}
	}
}

// TestUnknownScenarioRejected: Evaluate validates the scenario value.
func TestUnknownScenarioRejected(t *testing.T) {
	mg := manager(t)
	if _, err := mg.Evaluate(Scenario(99), Fig14Pairs()[0], 0); err == nil {
		t.Error("unknown scenario accepted")
	}
}
