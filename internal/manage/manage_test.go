package manage

import (
	"math"
	"testing"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// The manager fixture is expensive (deployment + predictor calibration),
// so it is built once per test binary.
var (
	fixtureMgr *Manager
	fixtureRep *charact.Report
)

func manager(t *testing.T) *Manager {
	t.Helper()
	if fixtureMgr != nil {
		return fixtureMgr
	}
	m := chip.NewReference()
	rep, err := charact.Characterize(m, charact.Options{})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	dep, err := tuning.Deploy(m, tuning.Options{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	mg, err := NewManager(m, dep, rep)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	fixtureMgr, fixtureRep = mg, rep
	return mg
}

// TestEq1Slope pins the Fig. 12a measurement: each additional watt of
// chip power costs each core about two MHz, with an excellent linear
// fit.
func TestEq1Slope(t *testing.T) {
	mg := manager(t)
	for label, fp := range mg.Preds.Freq {
		slope := fp.MHzPerWatt()
		if slope < 1.2 || slope > 3.0 {
			t.Errorf("%s Eq.1 slope %.2f MHz/W, want ≈2", label, slope)
		}
		if fp.Fit.R2 < 0.98 {
			t.Errorf("%s Eq.1 fit R² %.4f, want ≈1 (the paper's Fig. 12a is linear)", label, fp.Fit.R2)
		}
	}
}

func TestFreqPredictorInversion(t *testing.T) {
	mg := manager(t)
	fp := mg.Preds.Freq["P0C0"]
	f := fp.Predict(100)
	p, ok := fp.PowerForFreq(f)
	if !ok {
		t.Fatal("inversion failed")
	}
	if math.Abs(float64(p)-100) > 1e-6 {
		t.Errorf("PowerForFreq(Predict(100)) = %v", p)
	}
}

// TestPerfPredictorSlopes pins the Fig. 12b structure: compute-bound
// x264 has a much steeper performance-vs-frequency slope than
// memory-bound mcf, and the fits are linear.
func TestPerfPredictorSlopes(t *testing.T) {
	mg := manager(t)
	x := mg.Preds.Perf["x264"]
	m := mg.Preds.Perf["mcf"]
	if x.Fit.Slope <= 2*m.Fit.Slope {
		t.Errorf("x264 slope %.3g not well above mcf slope %.3g", x.Fit.Slope, m.Fit.Slope)
	}
	for name, pp := range mg.Preds.Perf {
		if pp.Fit.Slope <= 0 {
			t.Errorf("%s has non-positive performance slope", name)
		}
		if pp.Fit.R2 < 0.97 {
			t.Errorf("%s performance fit R² %.4f below 0.97", name, pp.Fit.R2)
		}
	}
}

func TestPerfPredictorInversion(t *testing.T) {
	mg := manager(t)
	pp := mg.Preds.Perf["squeezenet"]
	f, ok := pp.FreqForPerf(1.10)
	if !ok {
		t.Fatal("inversion failed")
	}
	if got := pp.Predict(f); math.Abs(got-1.10) > 1e-9 {
		t.Errorf("Predict(FreqForPerf(1.10)) = %g", got)
	}
	// +10% over static needs well under the fine-tuned ceiling.
	if f < 4400 || f > 4900 {
		t.Errorf("frequency for +10%% squeezenet = %v, expected mid-4000s", f)
	}
}

// TestScenarioLadder is the headline Fig. 14 reproduction: averaged over
// the co-location pairs, the improvement ladder over static margin is
// default ATM ≈ 6%, unmanaged fine-tuned above it, managed-max ≈ 15%.
func TestScenarioLadder(t *testing.T) {
	mg := manager(t)
	pairs := Fig14Pairs()
	avg := map[Scenario]float64{}
	for _, pair := range pairs {
		for _, s := range []Scenario{ScenarioStaticMargin, ScenarioDefaultATM,
			ScenarioFineTunedUnmanaged, ScenarioManagedMax} {
			ev, err := mg.Evaluate(s, pair, 0)
			if err != nil {
				t.Fatalf("%s %s: %v", s, pair.Label(), err)
			}
			avg[s] += ev.Improvement() / float64(len(pairs))
		}
	}
	if avg[ScenarioStaticMargin] != 0 {
		t.Errorf("static margin improvement %.3f, want 0", avg[ScenarioStaticMargin])
	}
	if avg[ScenarioDefaultATM] < 0.045 || avg[ScenarioDefaultATM] > 0.08 {
		t.Errorf("default ATM improvement %.1f%%, paper ≈6.1%%", 100*avg[ScenarioDefaultATM])
	}
	if avg[ScenarioFineTunedUnmanaged] <= avg[ScenarioDefaultATM] {
		t.Error("fine-tuning without management did not beat default ATM")
	}
	if avg[ScenarioManagedMax] < 0.13 || avg[ScenarioManagedMax] > 0.18 {
		t.Errorf("managed-max improvement %.1f%%, paper ≈15.2%%", 100*avg[ScenarioManagedMax])
	}
	if avg[ScenarioManagedMax] <= avg[ScenarioFineTunedUnmanaged] {
		t.Error("management did not beat unmanaged fine-tuning")
	}
}

// TestBalancedMeetsQoS: the balanced scheduler guarantees the 10%
// improvement goal for every pair (Sec. VII-D).
func TestBalancedMeetsQoS(t *testing.T) {
	mg := manager(t)
	for _, pair := range Fig14Pairs() {
		ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
		if err != nil {
			t.Fatalf("%s: %v", pair.Label(), err)
		}
		if !ev.MeetsQoS {
			t.Errorf("%s: balanced schedule missed QoS (%.1f%% < 10%%, bg=%s)",
				pair.Label(), 100*ev.Improvement(), ev.BackgroundSetting)
		}
		if ev.PowerBudget <= 0 {
			t.Errorf("%s: no power budget planned", pair.Label())
		}
	}
}

// TestBalancedBeatsMaxOnBackground: balanced mode trades critical
// headroom for background throughput — background performance must be at
// least managed-max's, and strictly better for pairs where ATM/bg
// headroom exists.
func TestBalancedBeatsMaxOnBackground(t *testing.T) {
	mg := manager(t)
	strictlyBetter := 0
	for _, pair := range Fig14Pairs() {
		evMax, err := mg.Evaluate(ScenarioManagedMax, pair, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		evBal, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if evBal.BackgroundPerf < evMax.BackgroundPerf-1e-9 {
			t.Errorf("%s: balanced background perf %.3f below managed-max %.3f",
				pair.Label(), evBal.BackgroundPerf, evMax.BackgroundPerf)
		}
		if evBal.BackgroundPerf > evMax.BackgroundPerf+1e-9 {
			strictlyBetter++
		}
	}
	if strictlyBetter == 0 {
		t.Error("balanced mode never improved background throughput")
	}
}

// TestStreamclusterKeepsATM: the Sec. VII-D observation — streamcluster
// draws so little power that seq2seq meets its QoS with the co-runner at
// full fine-tuned ATM speed, no throttling needed.
func TestStreamclusterKeepsATM(t *testing.T) {
	mg := manager(t)
	pair := Pair{Critical: workload.MustByName("seq2seq"), Background: workload.MustByName("streamcluster")}
	ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.BackgroundSetting != "fine-tuned ATM" {
		t.Errorf("seq2seq:streamcluster throttled to %q; paper leaves it at full ATM", ev.BackgroundSetting)
	}
	if !ev.MeetsQoS {
		t.Error("seq2seq:streamcluster missed QoS at full ATM")
	}
}

// TestX264CoRunnerGetsThrottled: the heavy co-runners of Sec. VII-D
// (x264 for fluidanimate) are throttled to a p-state to protect the
// critical job's budget.
func TestX264CoRunnerGetsThrottled(t *testing.T) {
	mg := manager(t)
	pair := Pair{Critical: workload.MustByName("fluidanimate"), Background: workload.MustByName("x264")}
	ev, err := mg.Evaluate(ScenarioManagedBalanced, pair, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.BackgroundSetting == "fine-tuned ATM" {
		t.Error("x264 co-runner left unthrottled under a 10% QoS")
	}
	if !ev.MeetsQoS {
		t.Errorf("fluidanimate:x264 missed QoS: %.1f%%", 100*ev.Improvement())
	}
}

func TestPairValidation(t *testing.T) {
	bad := Pair{Critical: workload.MustByName("resnet"), Background: workload.MustByName("mcf")}
	if err := bad.Valid(); err == nil {
		t.Error("two memory-intensive workloads co-located")
	}
	if _, err := manager(t).Evaluate(ScenarioManagedMax, bad, 0); err == nil {
		t.Error("Evaluate accepted an invalid pair")
	}
	for _, p := range Fig14Pairs() {
		if err := p.Valid(); err != nil {
			t.Errorf("evaluation pair %s invalid: %v", p.Label(), err)
		}
	}
}

// TestLatencyStudyShape reproduces Fig. 2's ordering for SqueezeNet:
// static 80 ms; every ATM schedule beats it; the best schedule beats the
// worst by roughly 2× the improvement.
func TestLatencyStudyShape(t *testing.T) {
	mg := manager(t)
	pts, err := mg.LatencyStudy(workload.MustByName("squeezenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("latency study has %d points", len(pts))
	}
	static, def, worst, best := pts[0], pts[1], pts[2], pts[3]
	if math.Abs(static.LatencyMs-80) > 0.01 {
		t.Errorf("static latency %.1f ms, want 80", static.LatencyMs)
	}
	for _, p := range pts[1:] {
		if p.LatencyMs >= static.LatencyMs {
			t.Errorf("%s latency %.1f not below static 80", p.Name, p.LatencyMs)
		}
	}
	if !(best.LatencyMs < def.LatencyMs && best.LatencyMs < worst.LatencyMs) {
		t.Error("best schedule is not the fastest")
	}
	// Fig. 2: improvements range ~7.5% to ~15%, best ≈ 2× worst.
	gainWorst := 80/worst.LatencyMs - 1
	gainBest := 80/best.LatencyMs - 1
	if gainWorst < 0.04 || gainWorst > 0.11 {
		t.Errorf("worst-schedule gain %.1f%%, paper ≈7.5%%", 100*gainWorst)
	}
	if gainBest < 0.12 || gainBest > 0.20 {
		t.Errorf("best-schedule gain %.1f%%, paper ≈15%%", 100*gainBest)
	}
	if ratio := gainBest / gainWorst; ratio < 1.5 || ratio > 3.5 {
		t.Errorf("best/worst gain ratio %.1f, paper ≈2", ratio)
	}
	if best.LatencyMs < 65 || best.LatencyMs > 72 {
		t.Errorf("best latency %.1f ms, paper ≈68", best.LatencyMs)
	}
}

func TestLatencyStudyRejectsNonLatencyApps(t *testing.T) {
	if _, err := manager(t).LatencyStudy(workload.MustByName("gcc")); err == nil {
		t.Error("latency study accepted a workload with no latency metric")
	}
}

// TestGovernors: conservative never exceeds default reductions;
// aggressive never goes below default (it exploits per-app headroom).
func TestGovernors(t *testing.T) {
	mg := manager(t)
	pair := Fig14Pairs()[0]

	evDefault, err := mg.Evaluate(ScenarioManagedMax, pair, 0)
	if err != nil {
		t.Fatal(err)
	}

	mg.Governor = GovernorConservative
	evCons, err := mg.Evaluate(ScenarioManagedMax, pair, 0)
	if err != nil {
		t.Fatal(err)
	}
	mg.Governor = GovernorAggressive
	evAggr, err := mg.Evaluate(ScenarioManagedMax, pair, 0)
	if err != nil {
		t.Fatal(err)
	}
	mg.Governor = GovernorDefault

	if evCons.CriticalPerf > evDefault.CriticalPerf+1e-9 {
		t.Errorf("conservative governor (%.3f) outperformed default (%.3f)",
			evCons.CriticalPerf, evDefault.CriticalPerf)
	}
	if evAggr.CriticalPerf < evDefault.CriticalPerf-1e-9 {
		t.Errorf("aggressive governor (%.3f) underperformed default (%.3f)",
			evAggr.CriticalPerf, evDefault.CriticalPerf)
	}
}

func TestRobustCores(t *testing.T) {
	_ = manager(t) // populate fixtureRep
	robust := RobustCores(fixtureRep)
	if len(robust) == 0 {
		t.Fatal("no robust cores found; Fig. 10 shows several")
	}
	// Robust cores have thread-worst == uBench limit in Table I.
	for _, label := range robust {
		cr, ok := fixtureRep.Core(label)
		if !ok {
			t.Fatal("missing report row")
		}
		if cr.ThreadWorst != cr.UBenchLimit {
			t.Errorf("%s marked robust but rolls back %d steps",
				label, cr.UBenchLimit-cr.ThreadWorst)
		}
	}
	if RobustCores(nil) != nil {
		t.Error("RobustCores(nil) should be empty")
	}
}

func TestSwapCoRunner(t *testing.T) {
	mg := manager(t)
	pair := Pair{Critical: workload.MustByName("seq2seq"), Background: workload.MustByName("streamcluster")}
	// With a generous budget the swap should find a more power-hungry
	// co-runner (the paper swaps streamcluster for lu_cb).
	got := mg.SwapCoRunner(mg.fastestOnChip()[0], pair, 200, 4200)
	if got.CdynRel <= pair.Background.CdynRel {
		t.Errorf("swap kept %s; expected a hungrier co-runner", got.Name)
	}
	// With no budget headroom the swap keeps the current co-runner.
	got = mg.SwapCoRunner(mg.fastestOnChip()[0], pair, 10, 4200)
	if got.Name != "streamcluster" {
		t.Errorf("swap upgraded under an impossible budget: %s", got.Name)
	}
}

func TestEvaluateScenarioMetadata(t *testing.T) {
	mg := manager(t)
	pair := Fig14Pairs()[0]
	ev, err := mg.Evaluate(ScenarioManagedMax, pair, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CriticalCore == "" || ev.ChipPower <= 0 || ev.Supply <= 0 {
		t.Errorf("evaluation metadata incomplete: %+v", ev)
	}
	if ev.CriticalLatencyMs <= 0 {
		t.Error("squeezenet evaluation missing latency")
	}
	if ev.Scenario.String() == "" || ev.Pair.Label() == "" {
		t.Error("labels empty")
	}
}

// TestMachineRestoredAfterEvaluate: Evaluate must leave the machine in
// the reset state so successive evaluations are independent.
func TestMachineRestoredAfterEvaluate(t *testing.T) {
	mg := manager(t)
	if _, err := mg.Evaluate(ScenarioManagedMax, Fig14Pairs()[0], 0.10); err != nil {
		t.Fatal(err)
	}
	for _, c := range mg.M.AllCores() {
		if c.Workload().Name != "idle" || c.Gated() || c.Reduction() != 0 {
			t.Errorf("%s not reset after Evaluate", c.Profile.Label)
		}
	}
}
