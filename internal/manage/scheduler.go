package manage

import (
	"fmt"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scenario is one of the system configurations Fig. 14 compares.
type Scenario int

// Scenarios.
const (
	// ScenarioStaticMargin: ATM off, every core fixed at the 4.2 GHz
	// p-state — the predictable-but-slow baseline.
	ScenarioStaticMargin Scenario = iota
	// ScenarioDefaultATM: the unmanaged stock system — every core in
	// default ATM (reduction 0), background co-runners at full speed,
	// critical application on an arbitrary core.
	ScenarioDefaultATM
	// ScenarioFineTunedUnmanaged: cores fine-tuned to their deployed
	// limits but no management — the critical application may land on
	// the slowest core and co-runners run unthrottled, raising chip
	// power and eroding everyone's frequency.
	ScenarioFineTunedUnmanaged
	// ScenarioManagedMax: the managed system maximizing critical
	// performance — critical on the fastest core, background cores
	// throttled to the lowest p-state.
	ScenarioManagedMax
	// ScenarioManagedBalanced: the managed system meeting the critical
	// QoS target with minimal background throttling (the budget flow of
	// Fig. 13).
	ScenarioManagedBalanced
)

func (s Scenario) String() string {
	switch s {
	case ScenarioStaticMargin:
		return "static-margin"
	case ScenarioDefaultATM:
		return "default-atm"
	case ScenarioFineTunedUnmanaged:
		return "fine-tuned-unmanaged"
	case ScenarioManagedMax:
		return "managed-max"
	case ScenarioManagedBalanced:
		return "managed-balanced"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// ScenarioByName resolves the CLI-facing scenario names
// (static-margin, default-atm, fine-tuned-unmanaged, managed-max,
// managed-balanced).
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range []Scenario{
		ScenarioStaticMargin, ScenarioDefaultATM, ScenarioFineTunedUnmanaged,
		ScenarioManagedMax, ScenarioManagedBalanced,
	} {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("manage: unknown scenario %q", name)
}

// Pair is one ⟨critical : background⟩ co-location of Fig. 14.
type Pair struct {
	Critical   workload.Profile
	Background workload.Profile
}

// Label renders the pair the way the paper's figure does.
func (p Pair) Label() string { return p.Critical.Name + ":" + p.Background.Name }

// Valid enforces the Table II co-location rule: two memory-intensive
// workloads are never co-located (memory interference is out of scope).
func (p Pair) Valid() error {
	if p.Critical.MemIntensive() && p.Background.MemIntensive() {
		return fmt.Errorf("manage: pair %s co-locates two memory-intensive workloads", p.Label())
	}
	return nil
}

// Fig14Pairs returns the ⟨critical : background⟩ pairs the evaluation
// runs, following the paper's named combinations (squeezenet with lu_cb,
// ferret with raytrace, vgg19 with swaptions, fluidanimate with x264,
// seq2seq with streamcluster) plus the remaining Table II criticals.
func Fig14Pairs() []Pair {
	mk := func(c, b string) Pair {
		return Pair{Critical: workload.MustByName(c), Background: workload.MustByName(b)}
	}
	return []Pair{
		mk("squeezenet", "lu_cb"),
		mk("ferret", "raytrace"),
		mk("vgg19", "swaptions"),
		mk("fluidanimate", "x264"),
		mk("seq2seq", "streamcluster"),
		mk("resnet", "blackscholes"),
		mk("babi", "mlp"),
		mk("bodytrack", "gcc"),
		mk("vips", "facesim"),
	}
}

// Evaluation is the measured outcome of one scenario for one pair.
type Evaluation struct {
	Scenario Scenario
	Pair     Pair

	CriticalCore string
	CriticalFreq units.MHz
	// CriticalPerf is relative to the static-margin baseline (1.0).
	CriticalPerf float64
	// CriticalLatencyMs is the task latency when the workload has one.
	CriticalLatencyMs float64

	// BackgroundSetting describes how co-runners were clocked.
	BackgroundSetting string
	// BackgroundPerf is the co-runners' mean performance relative to
	// running at the static baseline.
	BackgroundPerf float64

	ChipPower units.Watt
	Supply    units.Volt
	TempC     units.Celsius

	// QoSTarget and MeetsQoS report the balanced-mode contract.
	QoSTarget float64
	MeetsQoS  bool
	// PowerBudget is the planned chip-power budget (balanced mode).
	PowerBudget units.Watt
}

// Improvement returns the critical application's gain over static margin
// (0.10 = +10%).
func (e Evaluation) Improvement() float64 { return e.CriticalPerf - 1 }

// Manager owns the managed-ATM scheduling state for one chip.
type Manager struct {
	M     *chip.Machine
	Dep   *tuning.Deployment
	Preds *PredictorSet
	// Rep enables the conservative and aggressive governors; optional
	// for the default governor.
	Rep *charact.Report
	// ChipLabel selects the chip workloads are co-located on (the
	// paper uses P0).
	ChipLabel string
	// Governor selects the CPM policy for the managed scenarios.
	Governor Governor
	// Obs, when non-nil, counts evaluations by scenario, critical-core
	// placements, and background throttle decisions. Nil (the default)
	// disables collection.
	Obs *obs.Registry
	// Trace, when non-nil, records placement decisions as instants on
	// the logical clock.
	Trace *obs.Tracer
}

// NewManager wires a manager over a deployed machine. Predictors are
// calibrated on construction (at the deployed configuration).
func NewManager(m *chip.Machine, dep *tuning.Deployment, rep *charact.Report) (*Manager, error) {
	// Calibration must observe the deployed configuration.
	if err := applyGovernor(m, GovernorDefault, dep, rep, nil); err != nil {
		return nil, err
	}
	preds, err := CalibratePredictors(m)
	if err != nil {
		return nil, err
	}
	return &Manager{
		M: m, Dep: dep, Preds: preds, Rep: rep,
		ChipLabel: m.Chips[0].Profile.Label,
		Governor:  GovernorDefault,
	}, nil
}

// chipCores returns the labels of the managed chip's cores.
func (mg *Manager) chipCores() []string {
	for _, c := range mg.M.Chips {
		if c.Profile.Label == mg.ChipLabel {
			labels := make([]string, len(c.Cores))
			for i, core := range c.Cores {
				labels[i] = core.Profile.Label
			}
			return labels
		}
	}
	return nil
}

// fastestOnChip returns the managed chip's cores ordered by descending
// deployed idle frequency.
func (mg *Manager) fastestOnChip() []string {
	var out []string
	for _, label := range mg.Dep.FastestCores() {
		for _, l := range mg.chipCores() {
			if l == label {
				out = append(out, label)
			}
		}
	}
	return out
}

// Evaluate configures the machine for the scenario, solves the steady
// state and reports the outcome. qosTarget (e.g. 0.10 for +10% over
// static margin) is only consulted by ScenarioManagedBalanced.
func (mg *Manager) Evaluate(s Scenario, pair Pair, qosTarget float64) (Evaluation, error) {
	if err := pair.Valid(); err != nil {
		return Evaluation{}, err
	}
	mg.M.ResetAll()
	defer mg.M.ResetAll()

	cores := mg.fastestOnChip()
	if len(cores) < 2 {
		return Evaluation{}, fmt.Errorf("manage: chip %s has too few cores", mg.ChipLabel)
	}

	ev := Evaluation{Scenario: s, Pair: pair, QoSTarget: qosTarget}

	switch s {
	case ScenarioStaticMargin:
		ev.CriticalCore = cores[0]
		if err := mg.configure(allStatic, ev.CriticalCore, pair, chip.PStateMax); err != nil {
			return Evaluation{}, err
		}
		ev.BackgroundSetting = "static 4.2 GHz"

	case ScenarioDefaultATM:
		// Unmanaged: arbitrary placement. Default ATM is uniform by
		// design, so any core is representative; co-runners run at
		// full ATM speed.
		ev.CriticalCore = cores[len(cores)/2]
		if err := mg.configure(allDefaultATM, ev.CriticalCore, pair, 0); err != nil {
			return Evaluation{}, err
		}
		ev.BackgroundSetting = "default ATM, unthrottled"

	case ScenarioFineTunedUnmanaged:
		// Careless placement: the slowest fine-tuned core gets the
		// critical job; co-runners unthrottled at fine-tuned ATM.
		ev.CriticalCore = cores[len(cores)-1]
		if err := mg.configure(allDeployed, ev.CriticalCore, pair, 0); err != nil {
			return Evaluation{}, err
		}
		ev.BackgroundSetting = "fine-tuned ATM, unthrottled"

	case ScenarioManagedMax:
		ev.CriticalCore = cores[0]
		if err := mg.configure(managedBG, ev.CriticalCore, pair, chip.PStateMin); err != nil {
			return Evaluation{}, err
		}
		ev.BackgroundSetting = fmt.Sprintf("static %.1f GHz (lowest p-state)", chip.PStateMin.GHz())

	case ScenarioManagedBalanced:
		var err error
		ev, err = mg.planBalanced(pair, qosTarget)
		if err != nil {
			return Evaluation{}, err
		}

	default:
		return Evaluation{}, fmt.Errorf("manage: unknown scenario %v", s)
	}

	mg.Obs.Counter("manage_evaluations_total", "scenario", s.String()).Inc()
	mg.Obs.Counter("manage_placements_total", "core", ev.CriticalCore).Inc()
	if mg.Trace != nil {
		mg.Trace.Instant("manage", "placement", ev.CriticalCore,
			"scenario", s.String(), "pair", pair.Label())
	}
	return mg.measure(ev, pair, qosTarget)
}

// bgMode describes how a scenario clocks cores.
type bgMode int

const (
	allStatic bgMode = iota
	allDefaultATM
	allDeployed
	managedBG // critical fine-tuned ATM, background static at given p-state
)

// configure programs CPMs, modes and workloads for a scenario.
// bgPState is consulted by allStatic (critical too) and managedBG.
func (mg *Manager) configure(mode bgMode, criticalCore string, pair Pair, bgPState units.MHz) error {
	for _, label := range mg.chipCores() {
		core, err := mg.M.Core(label)
		if err != nil {
			return err
		}
		isCrit := label == criticalCore
		if isCrit {
			core.SetWorkload(pair.Critical)
		} else {
			core.SetWorkload(pair.Background)
		}

		switch mode {
		case allStatic:
			core.SetMode(chip.ModeStatic)
			if err := core.SetPState(chip.PStateMax); err != nil {
				return err
			}
		case allDefaultATM:
			core.SetMode(chip.ModeATM)
			if err := mg.M.ProgramCPM(label, 0); err != nil {
				return err
			}
		case allDeployed, managedBG:
			cfg, ok := mg.Dep.Config(label)
			if !ok {
				return fmt.Errorf("manage: no deployment for %s", label)
			}
			if mode == managedBG && !isCrit {
				core.SetMode(chip.ModeStatic)
				if err := core.SetPState(bgPState); err != nil {
					return err
				}
				mg.Obs.Counter("manage_throttles_total").Inc()
			} else {
				core.SetMode(chip.ModeATM)
				if err := mg.M.ProgramCPM(label, cfg.Reduction); err != nil {
					return err
				}
			}
		}
	}
	// Governor overrides for the managed scenarios (conservative /
	// aggressive placement policies).
	if mode == managedBG || mode == allDeployed {
		if mg.Governor != GovernorDefault {
			perCore := map[string]workload.Profile{}
			for _, label := range mg.chipCores() {
				if label == criticalCore {
					perCore[label] = pair.Critical
				} else {
					perCore[label] = pair.Background
				}
			}
			if err := applyGovernor(mg.M, mg.Governor, mg.Dep, mg.Rep, perCore); err != nil {
				return err
			}
		}
	}
	return nil
}

// measure solves the configured machine and fills in the evaluation.
func (mg *Manager) measure(ev Evaluation, pair Pair, qosTarget float64) (Evaluation, error) {
	st, err := mg.M.Solve()
	if err != nil {
		return Evaluation{}, err
	}
	cs, err := st.ChipState(mg.ChipLabel)
	if err != nil {
		return Evaluation{}, err
	}
	crit, err := st.CoreState(ev.CriticalCore)
	if err != nil {
		return Evaluation{}, err
	}
	base := float64(mg.Preds.Base)
	ev.CriticalFreq = crit.Freq
	ev.CriticalPerf = pair.Critical.RelPerf(float64(crit.Freq), base)
	ev.CriticalLatencyMs = pair.Critical.LatencyMs(float64(crit.Freq), base)
	ev.ChipPower = cs.Power
	ev.Supply = cs.Supply
	ev.TempC = cs.TempC

	var bgSum float64
	var bgN int
	for _, c := range cs.Cores {
		if c.Label == ev.CriticalCore || c.Gated {
			continue
		}
		bgSum += pair.Background.RelPerf(float64(c.Freq), base)
		bgN++
	}
	if bgN > 0 {
		ev.BackgroundPerf = bgSum / float64(bgN)
	}
	ev.MeetsQoS = qosTarget <= 0 || ev.Improvement() >= qosTarget-1e-9
	return ev, nil
}
