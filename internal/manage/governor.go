package manage

import (
	"fmt"

	"repro/internal/charact"
	"repro/internal/chip"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Governor selects how aggressively the per-core CPM configurations are
// set before scheduling (the user-facing policy knob of Fig. 13).
type Governor int

// Governors.
const (
	// GovernorDefault programs each core at its test-time stress-test
	// limit (thread-worst equivalent): worst-case-verified reliability
	// with high performance. The paper's management scheme runs here.
	GovernorDefault Governor = iota
	// GovernorConservative restricts foreground scheduling to the
	// robust cores (those whose control loops tolerated every profiled
	// application without rollback) and adds a safety rollback
	// elsewhere. Best for unknown applications.
	GovernorConservative
	// GovernorAggressive programs, per scheduled application, the
	// core's most aggressive configuration known to run that
	// application correctly (from characterization profiling). Highest
	// performance, profiling-dependent safety — the paper sketches it
	// and defers evaluation; implemented here as the extension.
	GovernorAggressive
)

func (g Governor) String() string {
	switch g {
	case GovernorDefault:
		return "default"
	case GovernorConservative:
		return "conservative"
	case GovernorAggressive:
		return "aggressive"
	default:
		return fmt.Sprintf("governor(%d)", int(g))
	}
}

// conservativeRollback is the extra safety margin the conservative
// governor applies to non-robust cores.
const conservativeRollback = 2

// applyGovernor programs the machine's CPM configurations for the given
// governor. The aggressive governor needs the characterization report
// and the application being placed per core; the others ignore them.
func applyGovernor(m *chip.Machine, g Governor, dep *tuning.Deployment,
	rep *charact.Report, perCoreApp map[string]workload.Profile) error {
	switch g {
	case GovernorDefault:
		for _, cfg := range dep.Configs {
			if err := m.ProgramCPM(cfg.Core, cfg.Reduction); err != nil {
				return err
			}
		}
		return nil

	case GovernorConservative:
		for _, cfg := range dep.Configs {
			red := cfg.Reduction
			if !coreIsRobust(rep, cfg.Core) {
				red -= conservativeRollback
				if red < 0 {
					red = 0
				}
			}
			if err := m.ProgramCPM(cfg.Core, red); err != nil {
				return err
			}
		}
		return nil

	case GovernorAggressive:
		if rep == nil {
			return fmt.Errorf("manage: aggressive governor needs a characterization report")
		}
		for _, cfg := range dep.Configs {
			red := cfg.Reduction
			if app, ok := perCoreApp[cfg.Core]; ok {
				cr, found := rep.Core(cfg.Core)
				if !found {
					return fmt.Errorf("manage: no characterization for %s", cfg.Core)
				}
				if lim, ok := cr.AppLimit[app.Name]; ok {
					red = lim
				}
			}
			if err := m.ProgramCPM(cfg.Core, red); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("manage: unknown governor %v", g)
	}
}

// coreIsRobust reports whether characterization saw the core tolerate
// every profiled application at its uBench limit (zero rollback — the
// right-hand columns of Fig. 10). Without a report no core is
// considered robust.
func coreIsRobust(rep *charact.Report, label string) bool {
	if rep == nil {
		return false
	}
	cr, ok := rep.Core(label)
	if !ok {
		return false
	}
	for _, rb := range cr.AppRollbackMean {
		if rb > 0.05 {
			return false
		}
	}
	return true
}

// RobustCores lists the cores the conservative governor schedules
// foreground work on.
func RobustCores(rep *charact.Report) []string {
	if rep == nil {
		return nil
	}
	var out []string
	for _, c := range rep.Cores {
		if coreIsRobust(rep, c.Core) {
			out = append(out, c.Core)
		}
	}
	return out
}
