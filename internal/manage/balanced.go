package manage

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/units"
	"repro/internal/workload"
)

// planBalanced implements the Fig. 13 budget flow for the balanced
// objective: let the critical application just meet its QoS target and
// maximize background performance under that promise.
//
//  1. invert the critical application's performance predictor to the
//     frequency its QoS needs;
//  2. invert the critical core's Eq. 1 frequency predictor to the total
//     chip power budget that frequency allows;
//  3. walk candidate background settings from fastest to slowest
//     (fine-tuned ATM, then the DVFS ladder downward, then power
//     gating) and pick the first whose *estimated* chip power fits the
//     budget.
//
// The estimate uses the calibrated predictors and the power model — not
// the steady-state solver — because the real manager plans before it
// runs; Evaluate then measures the actual outcome.
func (mg *Manager) planBalanced(pair Pair, qosTarget float64) (Evaluation, error) {
	if qosTarget <= 0 {
		return Evaluation{}, fmt.Errorf("manage: balanced scheduling needs a positive QoS target")
	}
	cores := mg.fastestOnChip()
	criticalCore := cores[0]
	ev := Evaluation{
		Scenario:     ScenarioManagedBalanced,
		Pair:         pair,
		QoSTarget:    qosTarget,
		CriticalCore: criticalCore,
	}

	pp, ok := mg.Preds.Perf[pair.Critical.Name]
	if !ok {
		return Evaluation{}, fmt.Errorf("manage: no performance predictor for %s", pair.Critical.Name)
	}
	fNeed, ok := pp.FreqForPerf(1 + qosTarget)
	if !ok {
		return Evaluation{}, fmt.Errorf("manage: degenerate performance model for %s", pair.Critical.Name)
	}
	fp, ok := mg.Preds.Freq[criticalCore]
	if !ok {
		return Evaluation{}, fmt.Errorf("manage: no frequency predictor for %s", criticalCore)
	}
	budget, ok := fp.PowerForFreq(fNeed)
	if !ok {
		return Evaluation{}, fmt.Errorf("manage: degenerate frequency model for %s", criticalCore)
	}
	// The QoS-derived budget can exceed what the package may sustain;
	// the thermal envelope is the second, unconditional constraint.
	for _, c := range mg.M.Chips {
		if c.Profile.Label == mg.ChipLabel {
			if env := c.Thermal.MaxPower(); budget > env {
				budget = env
			}
		}
	}
	ev.PowerBudget = budget

	// Candidate background settings, fastest first.
	type candidate struct {
		name   string
		atm    bool
		pstate units.MHz
		gated  bool
	}
	cands := []candidate{{name: "fine-tuned ATM", atm: true}}
	for i := len(chip.PStates) - 1; i >= 0; i-- {
		ps := chip.PStates[i]
		cands = append(cands, candidate{
			name:   fmt.Sprintf("static %.1f GHz", ps.GHz()),
			pstate: ps,
		})
	}
	cands = append(cands, candidate{name: "power-gated", gated: true})

	chosen := cands[len(cands)-1]
	for _, cand := range cands {
		if mg.estimateChipPower(criticalCore, pair, cand.atm, cand.pstate, cand.gated) <= budget {
			chosen = cand
			break
		}
	}
	ev.BackgroundSetting = chosen.name

	// Apply the chosen plan.
	switch {
	case chosen.gated:
		if err := mg.configure(managedBG, criticalCore, pair, chip.PStateMin); err != nil {
			return Evaluation{}, err
		}
		for _, label := range mg.chipCores() {
			if label == criticalCore {
				continue
			}
			core, err := mg.M.Core(label)
			if err != nil {
				return Evaluation{}, err
			}
			core.SetGated(true)
		}
	case chosen.atm:
		if err := mg.configure(allDeployed, criticalCore, pair, 0); err != nil {
			return Evaluation{}, err
		}
		// allDeployed places the critical job on the slowest core by
		// convention; here the manager chose the fastest, so configure
		// explicitly: swap workloads accordingly.
		for _, label := range mg.chipCores() {
			core, err := mg.M.Core(label)
			if err != nil {
				return Evaluation{}, err
			}
			if label == criticalCore {
				core.SetWorkload(pair.Critical)
			} else {
				core.SetWorkload(pair.Background)
			}
		}
	default:
		if err := mg.configure(managedBG, criticalCore, pair, chosen.pstate); err != nil {
			return Evaluation{}, err
		}
	}
	return ev, nil
}

// estimateChipPower is the manager's planning estimate of total chip
// power for one background setting: the critical core at its deployed
// frequency, each background core at the candidate clock, all through
// the power model at nominal supply (a deliberately slightly
// conservative estimate — the planner must not overshoot the budget).
func (mg *Manager) estimateChipPower(criticalCore string, pair Pair,
	bgATM bool, bgPState units.MHz, bgGated bool) units.Watt {
	p := mg.M.Profile().Params()
	var ch *chip.Chip
	for _, c := range mg.M.Chips {
		if c.Profile.Label == mg.ChipLabel {
			ch = c
		}
	}
	if ch == nil {
		return 0
	}
	pm := mg.M.Power()
	// Plan leakage at the thermal ceiling: the estimate must hold at the
	// worst sustained operating point, not a mild one.
	t := ch.Thermal.TjMaxC
	total := pm.UncoreW
	for _, core := range ch.Cores {
		label := core.Profile.Label
		if label == criticalCore {
			cfg, _ := mg.Dep.Config(label)
			total += pm.CorePower(pair.Critical, cfg.IdleFreq, p.VRef, ch.Thermal, t, false)
			continue
		}
		switch {
		case bgGated:
			total += pm.CorePower(pair.Background, 0, p.VRef, ch.Thermal, t, true)
		case bgATM:
			cfg, _ := mg.Dep.Config(label)
			total += pm.CorePower(pair.Background, cfg.IdleFreq, p.VRef, ch.Thermal, t, false)
		default:
			total += pm.CorePower(pair.Background, bgPState, p.VRef, ch.Thermal, t, false)
		}
	}
	return total
}

// SwapCoRunner suggests the paper's final optimization (Sec. VII-D): when
// a critical application exceeds its QoS with headroom under the chosen
// background setting, the spare power budget can host a more power-hungry
// co-runner instead. It returns the highest-power background workload
// from the Table II background set whose estimated chip power still fits
// the budget at the throttled setting, or the current one if none fits
// better.
func (mg *Manager) SwapCoRunner(criticalCore string, pair Pair, budget units.Watt,
	bgPState units.MHz) workload.Profile {
	best := pair.Background
	for _, cand := range workload.Background() {
		if cand.MemIntensive() && pair.Critical.MemIntensive() {
			continue // Table II co-location rule
		}
		if cand.CdynRel <= best.CdynRel {
			continue
		}
		test := Pair{Critical: pair.Critical, Background: cand}
		if mg.estimateChipPower(criticalCore, test, false, bgPState, false) <= budget {
			best = cand
		}
	}
	return best
}
