package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilSafe enforces the nil-safe-handle contract documented by
// internal/obs and internal/guard: a nil *Counter, *Breaker, etc. is a
// valid "disabled" handle, so every exported pointer-receiver method
// on a type annotated //atm:nilsafe must compare the receiver against
// nil before the first receiver field access or dereference. Calling
// another pointer-receiver method on the receiver is allowed — that
// method guards itself — but a value-receiver method call dereferences
// and counts as an access. Methods that never touch receiver state
// pass vacuously.
//
// The check is structural (a nil comparison lexically precedes the
// first access), which is exactly the shape every handle in obs/guard
// uses: `if x == nil { return }` as the first statement.
var NilSafe = &Analyzer{
	Name:     "nilsafe",
	Doc:      "require nil-receiver guards in exported methods of //atm:nilsafe handle types",
	Severity: SeverityError,
	Run:      runNilSafe,
}

// nilSafeDirective marks a handle type whose methods must guard nil.
const nilSafeDirective = "//atm:nilsafe"

func runNilSafe(pass *Pass) {
	handles := nilSafeTypes(pass)
	if len(handles) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, isPtr := receiverType(pass, fd)
			if !isPtr || !handles[recvName] {
				continue
			}
			checkNilSafeMethod(pass, fd)
		}
	}
}

// nilSafeTypes collects the names of types annotated //atm:nilsafe in
// this package, from either the type's own doc group or the enclosing
// GenDecl's.
func nilSafeTypes(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, nilSafeDirective) || (len(gd.Specs) == 1 && hasDirective(gd.Doc, nilSafeDirective)) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// receiverType resolves a method's receiver type name and whether the
// receiver is a pointer.
func receiverType(pass *Pass, fd *ast.FuncDecl) (string, bool) {
	if len(fd.Recv.List) != 1 {
		return "", false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// checkNilSafeMethod verifies one method: the first receiver state
// access must be lexically preceded by a receiver nil comparison.
func checkNilSafeMethod(pass *Pass, fd *ast.FuncDecl) {
	recv := receiverObject(pass, fd)
	if recv == nil {
		return // unnamed receiver cannot be accessed at all
	}
	guardPos := token.Pos(0)
	var firstAccess ast.Node
	var accessWhat string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if (e.Op == token.EQL || e.Op == token.NEQ) && isNilCompare(pass, e, recv) {
				if guardPos == 0 || e.Pos() < guardPos {
					guardPos = e.Pos()
				}
			}
		case *ast.SelectorExpr:
			ident, ok := e.X.(*ast.Ident)
			if !ok || pass.Info.ObjectOf(ident) != recv {
				return true
			}
			sel, ok := pass.Info.Selections[e]
			if !ok {
				return true
			}
			switch obj := sel.Obj().(type) {
			case *types.Var:
				recordAccess(&firstAccess, &accessWhat, e, "field "+obj.Name())
			case *types.Func:
				// A pointer-receiver method guards itself; a
				// value-receiver method dereferences the handle.
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
						recordAccess(&firstAccess, &accessWhat, e, "value-receiver method "+obj.Name())
					}
				}
			}
		case *ast.StarExpr:
			if ident, ok := e.X.(*ast.Ident); ok && pass.Info.ObjectOf(ident) == recv {
				recordAccess(&firstAccess, &accessWhat, e, "dereference")
			}
		}
		return true
	})
	if firstAccess == nil {
		return // never touches receiver state
	}
	if guardPos == 0 || guardPos > firstAccess.Pos() {
		pass.Reportf(firstAccess.Pos(),
			"exported method %s on nil-safe handle %s touches %s before a nil-receiver guard; start with `if %s == nil { ... }`",
			fd.Name.Name, recvTypeString(pass, fd), accessWhat, recv.Name())
	}
}

// recordAccess keeps the lexically first receiver access.
func recordAccess(first *ast.Node, what *string, n ast.Node, desc string) {
	if *first == nil || n.Pos() < (*first).Pos() {
		*first = n
		*what = desc
	}
}

// receiverObject returns the receiver's types.Object, or nil for an
// anonymous receiver.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

// isNilCompare reports whether e compares the receiver object to nil.
func isNilCompare(pass *Pass, e *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(x ast.Expr) bool {
		ident, ok := x.(*ast.Ident)
		return ok && pass.Info.ObjectOf(ident) == recv
	}
	isNil := func(x ast.Expr) bool {
		ident, ok := x.(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := pass.Info.ObjectOf(ident).(*types.Nil)
		return isNilObj
	}
	return (isRecv(e.X) && isNil(e.Y)) || (isNil(e.X) && isRecv(e.Y))
}

// recvTypeString renders the receiver type for messages ("(*Counter)").
func recvTypeString(pass *Pass, fd *ast.FuncDecl) string {
	name, _ := receiverType(pass, fd)
	return "(*" + name + ")"
}
