package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// The callgraph fixture is two packages exercising the shapes the
// builder must model: a mutual-recursion cycle, a method value
// (reference edge), an interface whose implementations straddle the
// package boundary (dispatch fan-out), and a package-level var
// initializer (init pseudo-node).
const (
	cgA = "repro/internal/lint/testdata/src/callgraph/a"
	cgB = "repro/internal/lint/testdata/src/callgraph/b"
)

func loadCallGraphFixture(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range []string{"callgraph/a", "callgraph/b"} {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return loader, pkgs
}

func TestCallGraphEdges(t *testing.T) {
	loader, pkgs := loadCallGraphFixture(t)
	g := BuildCallGraph(loader.Fset(), pkgs)

	hasEdge := func(from, to string, kind EdgeKind) bool {
		n := g.Nodes[from]
		if n == nil {
			return false
		}
		for _, e := range n.Edges {
			if e.Callee == to && e.Kind == kind {
				return true
			}
		}
		return false
	}
	cases := []struct {
		from, to string
		kind     EdgeKind
		why      string
	}{
		{cgA + ".Ping", cgA + ".Pong", EdgeCall, "cycle forward edge"},
		{cgA + ".Pong", cgA + ".Ping", EdgeCall, "cycle back edge"},
		{cgA + ".Drive", cgA + ".(Runner).Run", EdgeCall, "interface call targets the abstract method node"},
		{cgA + ".(Runner).Run", cgA + ".(Fast).Run", EdgeDispatch, "dispatch fans out to the local value-receiver impl"},
		{cgA + ".(Runner).Run", cgB + ".(*Slow).Run", EdgeDispatch, "dispatch fans out across the package boundary"},
		{cgB + ".(*Slow).Run", cgA + ".Ping", EdgeCall, "cross-package call"},
		{cgB + ".Handle", cgB + ".(*Slow).Run", EdgeRef, "method value is a reference, not a call"},
		{cgB + ".init", cgA + ".Ping", EdgeCall, "package-level var initializer folds into the init pseudo-node"},
	}
	for _, c := range cases {
		if !hasEdge(c.from, c.to, c.kind) {
			t.Errorf("missing %s edge %s -> %s (%s)", c.kind, c.from, c.to, c.why)
		}
	}
	// The method value must not be recorded as a call.
	if hasEdge(cgB+".Handle", cgB+".(*Slow).Run", EdgeCall) {
		t.Errorf("method value in %s.Handle wrongly recorded as a call edge", cgB)
	}
}

func TestCallGraphAttribution(t *testing.T) {
	loader, pkgs := loadCallGraphFixture(t)
	g := BuildCallGraph(loader.Fset(), pkgs)

	// A position inside a declared function attributes to its node.
	ping := g.Nodes[cgA+".Ping"]
	if ping == nil {
		t.Fatalf("node %s.Ping missing", cgA)
	}
	if got := g.NodeAt(ping.Pos); got != cgA+".Ping" {
		t.Errorf("NodeAt(Ping decl) = %q, want %s.Ping", got, cgA)
	}
	// A position inside a package-level var initializer attributes to
	// the init pseudo-node.
	boot := pkgs[1].Types.Scope().Lookup("boot")
	if boot == nil {
		t.Fatal("var boot not found in fixture package b")
	}
	if got := g.NodeAt(boot.Pos()); got != cgB+".init" {
		t.Errorf("NodeAt(var boot) = %q, want %s.init", got, cgB)
	}
	// NodeAtLine round-trips through the (file, line) form findings use.
	pos := loader.Fset().Position(ping.Pos)
	if got := g.NodeAtLine(pos.Filename, pos.Line+1); got != cgA+".Ping" {
		t.Errorf("NodeAtLine(%s:%d) = %q, want %s.Ping", filepath.Base(pos.Filename), pos.Line+1, got, cgA)
	}
	// A package-scope position outside every extent attributes nowhere.
	if got := g.NodeAtLine(pos.Filename, 1); got != "" {
		t.Errorf("NodeAtLine(line 1) = %q, want \"\"", got)
	}
}

// TestCallGraphDeterministic builds the graph twice from fresh loaders
// and demands identical node sets and adjacency — the flow rules'
// chains and findings inherit their stability from this.
func TestCallGraphDeterministic(t *testing.T) {
	render := func() string {
		loader, pkgs := loadCallGraphFixture(t)
		g := BuildCallGraph(loader.Fset(), pkgs)
		var b strings.Builder
		for _, id := range g.SortedIDs() {
			fmt.Fprintf(&b, "%s:", id)
			for _, e := range g.Nodes[id].Edges {
				fmt.Fprintf(&b, " %s(%s)", e.Callee, e.Kind)
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("call graph differs between two fresh builds:\n--- build 1\n%s\n--- build 2\n%s", first, second)
	}
}

// TestDetFlowCrossPackage loads the detflowx fixture pair: the sink
// hides in an unexported interface implementation in helper, reachable
// only through dispatch from the sim package. Analyzing both packages
// must produce exactly one finding, on the sink line, with a chain
// that crosses the boundary.
func TestDetFlowCrossPackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	helper, err := loader.LoadDir(filepath.Join("testdata", "src", "detflowx", "helper"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := loader.LoadDir(filepath.Join("testdata", "src", "detflowx", "sim"))
	if err != nil {
		t.Fatal(err)
	}

	findings := Analyze(loader, []*Package{helper, sim}, DefaultConfig(), []*Analyzer{DetFlow})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 cross-package finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != "detflow" {
		t.Errorf("finding rule = %q, want detflow", f.Rule)
	}
	if filepath.Base(f.File) != "helper.go" {
		t.Errorf("finding lands in %s, want the sink file helper.go", f.File)
	}
	for _, substr := range []string{"time.Now", "sim.Step", "(wall).Next", "(Source).Next"} {
		if !strings.Contains(f.Message, substr) {
			t.Errorf("finding message missing %q:\n%s", substr, f.Message)
		}
	}

	// The helper package alone is a partial program: nothing reaches
	// the sink, so detflow stays quiet rather than guessing.
	if got := Analyze(loader, []*Package{helper}, DefaultConfig(), []*Analyzer{DetFlow}); len(got) != 0 {
		t.Errorf("helper alone should produce no findings, got %v", got)
	}
}
