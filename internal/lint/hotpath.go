package lint

import (
	"go/ast"
	"go/types"
)

// HotPath checks functions annotated //atm:hotpath — the per-trial
// CPM/DPLL/PDN step path and the obs/guard disabled fast paths whose
// 0 allocs/op benchmark pins ROADMAP item 2 turns into a static gate —
// for allocation- and dispatch-inducing constructs:
//
//   - function literals (closures escape to the heap when captured);
//   - go statements (goroutine spawn) and defer (scheduling cost),
//     except the pervasive `defer mu.Unlock()` on sync mutexes, which
//     the compiler open-codes and every nil-safe handle relies on;
//   - range over a map (hashes every key, nondeterministic order);
//   - fmt calls and strings.Builder methods (both allocate);
//   - interface conversions — explicit, argument boxing at call sites,
//     assignment or return of a concrete value into an interface;
//   - append to a local slice not pre-sized with make(len, cap).
//
// The annotation sits in the function's doc comment; a finding is
// silenced the usual way with //lint:ignore hotpath <reason> when the
// construct is deliberate (e.g. a cold error path).
var HotPath = &Analyzer{
	Name:     "hotpath",
	Doc:      "forbid allocation- and dispatch-inducing constructs in //atm:hotpath functions",
	Severity: SeverityWarn,
	Run:      runHotPath,
}

// hotPathDirective marks a function as hot-path-checked.
const hotPathDirective = "//atm:hotpath"

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotPathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// hasDirective reports whether a comment group contains the given
// machine directive as a whole comment line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(s.Pos(), "hot path: function literal may escape to the heap")
			return false // the literal itself is the finding; don't double-report its body
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "hot path: go statement spawns a goroutine")
		case *ast.DeferStmt:
			if !isMutexUnlockDefer(pass, s) {
				pass.Reportf(s.Pos(), "hot path: defer schedules a deferred call")
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(s.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(s.Pos(), "hot path: range over map hashes every key in nondeterministic order")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, s)
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					checkBoxing(pass, s.Lhs[i], rhs, "assignment")
				}
			}
		case *ast.ReturnStmt:
			checkHotReturn(pass, fd, s)
		}
		return true
	})
}

// isMutexUnlockDefer recognizes `defer x.Unlock()` / `defer
// x.RUnlock()` on a sync.Mutex or sync.RWMutex receiver.
func isMutexUnlockDefer(pass *Pass, d *ast.DeferStmt) bool {
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync"
}

// checkHotCall flags fmt calls, strings.Builder methods, explicit
// interface conversions, and call-argument boxing.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Explicit conversion I(x)?
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && isConcrete(pass.Info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "hot path: conversion boxes %s into interface %s",
				types.TypeString(pass.Info.TypeOf(call.Args[0]), types.RelativeTo(pass.Pkg)),
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// fmt.* call?
		if ident, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (reflect-based formatting)", sel.Sel.Name)
				return
			}
		}
		// strings.Builder method?
		if selection, ok := pass.Info.Selections[sel]; ok {
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "strings" && named.Obj().Name() == "Builder" {
				pass.Reportf(call.Pos(), "hot path: strings.Builder.%s allocates", sel.Sel.Name)
				return
			}
		}
	}
	// append to an un-presized local slice?
	if isBuiltinAppend(pass, call) {
		checkHotAppend(pass, fd, call)
		return
	}
	// Argument boxing into interface parameters.
	funT := pass.Info.TypeOf(call.Fun)
	if funT == nil {
		return
	}
	sig, ok := funT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue // s... spread of a named slice type
			}
			param = slice.Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if isInterface(param) && isConcrete(pass.Info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "hot path: argument boxes %s into interface %s",
				types.TypeString(pass.Info.TypeOf(arg), types.RelativeTo(pass.Pkg)),
				types.TypeString(param, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkHotReturn flags concrete values returned through interface
// results.
func checkHotReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fd.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range fd.Type.Results.List {
		t := pass.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // bare return or single multi-value call
	}
	for i, res := range ret.Results {
		if isInterface(resultTypes[i]) && isConcrete(pass.Info.TypeOf(res)) {
			pass.Reportf(res.Pos(), "hot path: return boxes %s into interface %s",
				types.TypeString(pass.Info.TypeOf(res), types.RelativeTo(pass.Pkg)),
				types.TypeString(resultTypes[i], types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkBoxing flags a concrete rhs assigned into an interface-typed
// lhs. lhs may be nil (handled by the caller's own target check).
func checkBoxing(pass *Pass, lhs, rhs ast.Expr, context string) {
	if lhs == nil {
		return
	}
	lt := pass.Info.TypeOf(lhs)
	rt := pass.Info.TypeOf(rhs)
	if isInterface(lt) && isConcrete(rt) {
		pass.Reportf(rhs.Pos(), "hot path: %s boxes %s into interface %s", context,
			types.TypeString(rt, types.RelativeTo(pass.Pkg)),
			types.TypeString(lt, types.RelativeTo(pass.Pkg)))
	}
}

// checkHotAppend flags append into a slice variable declared in this
// function without a capacity-carrying make. Appends to parameters,
// fields or package state are the caller's sizing problem and skipped.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.ObjectOf(target)
	if obj == nil || !insideNode(obj.Pos(), fd) {
		return
	}
	if madeWithCapacity(pass, fd, obj) {
		return
	}
	pass.Reportf(call.Pos(), "hot path: append to %q, which was not pre-sized with make(len, cap), may reallocate",
		target.Name)
}

// madeWithCapacity reports whether obj is initialized somewhere in fd
// by a make call carrying an explicit capacity argument.
func madeWithCapacity(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			ident, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.ObjectOf(ident) != obj || i >= len(assign.Rhs) {
				continue
			}
			mk, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok || len(mk.Args) < 3 {
				continue
			}
			if fn, ok := mk.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.ObjectOf(fn).(*types.Builtin); ok && b.Name() == "make" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isInterface reports whether t is a non-nil interface type.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.IsInterface(t)
}

// isConcrete reports whether t is a non-interface, non-untyped-nil
// type (the cases whose conversion into an interface boxes a value).
func isConcrete(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return true
}
