package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DetFlow is the whole-program companion to detrand: instead of
// banning nondeterminism sources inside simulation packages only, it
// walks the cross-package call graph and flags every function
// reachable from a simulation entry point — exported functions and
// package initialization of the Config.SimPackages — whose chain
// reaches a wall-clock read, an environment read, an ambient-RNG
// package, or map-order-dependent output, through any helper in any
// package. Intentional edges (CLI wiring, crash-point arming) live in
// a reviewed baseline file, one `<function-id> <sink> -- <reason>`
// line each; whole-module runs additionally flag stale entries so the
// baseline can only shrink.
var DetFlow = &Analyzer{
	Name:     "detflow",
	Doc:      "forbid call chains from simulation entry points to wall-clock, environment, RNG or map-order sinks",
	Severity: SeverityError,
	RunProgram: runDetFlow,
}

// mapOrderSink is the baseline token for map-order-dependent output
// reached through a helper (the per-package maporder rule names the
// precise construct).
const mapOrderSink = "map-order"

// sinkUse is one direct use of a nondeterminism sink inside a
// function body.
type sinkUse struct {
	fn   string // containing call-graph node
	sink string // sink token: "time.Now", "math/rand", "map-order", ...
	file string
	line int
	col  int
}

func runDetFlow(p *ProgramPass) {
	graph := BuildCallGraph(p.Fset, p.Pkgs)
	uses := collectSinkUses(p, graph)
	entries := simEntries(p, graph)

	// Deterministic BFS over sorted entries and sorted adjacency:
	// first-visit parents give one stable example chain per node.
	visited := map[string]bool{}
	parent := map[string]string{}
	queue := make([]string, 0, len(entries))
	for _, e := range entries {
		if graph.Nodes[e] != nil && !visited[e] {
			visited[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, edge := range graph.Nodes[id].Edges {
			if visited[edge.Callee] || graph.Nodes[edge.Callee] == nil {
				continue
			}
			visited[edge.Callee] = true
			parent[edge.Callee] = id
			queue = append(queue, edge.Callee)
		}
	}

	baseline, baselinePath := loadDetflowBaseline(p)
	usedBaseline := map[string]bool{}

	// One finding per (tainted function, sink token), at the first
	// sink site in deterministic order.
	sort.Slice(uses, func(i, j int) bool {
		a, b := uses[i], uses[j]
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		if a.sink != b.sink {
			return a.sink < b.sink
		}
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	seen := map[string]bool{}
	for _, u := range uses {
		if !visited[u.fn] {
			continue
		}
		key := u.fn + " " + u.sink
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := baseline[key]; ok {
			usedBaseline[key] = true
			continue
		}
		p.report(Finding{
			Rule:     p.Analyzer.Name,
			Severity: p.Analyzer.Severity,
			File:     u.file,
			Line:     u.line,
			Col:      u.col,
			Message: fmt.Sprintf(
				"determinism taint: %s reaches %s (chain %s); fix the helper or baseline %q with a reason in %s",
				u.fn, u.sink, taintChain(parent, u.fn), key, p.Config.DetflowBaseline),
		})
	}

	// Completeness: a baseline entry nothing matches is stale. Only a
	// whole-module run can prove absence, so partial (-changed or
	// fixture) runs skip this.
	if p.WholeProgram && baselinePath != "" {
		keys := make([]string, 0, len(baseline))
		for k := range baseline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !usedBaseline[k] {
				p.ReportFile(p.Config.DetflowBaseline, baseline[k].line,
					"stale detflow baseline entry %q: no call chain reaches it any more; delete the line", k)
			}
		}
	}
}

// simEntries returns the sorted, deduplicated entry set: package
// initialization plus every exported non-test function/method of the
// simulation packages.
func simEntries(p *ProgramPass, graph *CallGraph) []string {
	var entries []string
	for _, pkg := range p.Pkgs {
		if p.Config.isSimPackage(pkg.Path) {
			entries = append(entries, initID(pkg.Path))
		}
	}
	for _, id := range graph.SortedIDs() {
		n := graph.Nodes[id]
		if n.Exported && !n.TestOnly && p.Config.isSimPackage(n.Pkg) {
			entries = append(entries, id)
		}
	}
	sort.Strings(entries)
	return entries
}

// collectSinkUses finds every direct sink use in every analyzed
// package: selector uses of the detrand banned functions, any selector
// into a banned-import package, and map-order hazards detected by
// re-running the maporder rule with a capturing reporter. The blessed
// RNG package is exempt — it is the seeded source the rest of the
// tree is directed to.
func collectSinkUses(p *ProgramPass, graph *CallGraph) []sinkUse {
	var uses []sinkUse
	add := func(fn, sink, file string, line, col int) {
		if fn == "" {
			return
		}
		uses = append(uses, sinkUse{fn: fn, sink: sink, file: file, line: line, col: col})
	}
	for _, pkg := range p.Pkgs {
		if pkg.Path == p.Config.RNGPackage {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pkg.Info.Uses[ident].(*types.PkgName)
				if !ok {
					return true
				}
				path := pkgName.Imported().Path()
				var sink string
				if banned, ok := bannedFuncs[path]; ok && banned[sel.Sel.Name] {
					sink = path + "." + sel.Sel.Name
				} else if _, ok := bannedImports[path]; ok {
					sink = path
				} else {
					return true
				}
				pos := p.Fset.Position(sel.Pos())
				add(graph.NodeAt(sel.Pos()), sink, pos.Filename, pos.Line, pos.Column)
				return true
			})
		}
		// Map-order hazards: reuse the per-package rule's detection
		// verbatim, attributing each raw finding to its function.
		capture := func(f Finding) {
			add(graph.NodeAtLine(f.File, f.Line), mapOrderSink, f.File, f.Line, f.Col)
		}
		runMapOrder(&Pass{
			Analyzer: MapOrder,
			Fset:     p.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Config:   p.Config,
			report:   capture,
		})
	}
	return uses
}

// taintChain renders the example path entry -> ... -> fn recorded by
// the BFS parent map.
func taintChain(parent map[string]string, fn string) string {
	chain := []string{fn}
	for {
		prev, ok := parent[fn]
		if !ok {
			break
		}
		chain = append(chain, prev)
		fn = prev
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// baselineLine is one parsed detflow baseline entry.
type baselineLine struct {
	reason string
	line   int
}

// loadDetflowBaseline parses the reviewed baseline. Missing files are
// an empty baseline (fresh tree); malformed lines are findings against
// the baseline file itself. Returns the map keyed by
// "<function-id> <sink>" and the absolute path ("" when disabled).
func loadDetflowBaseline(p *ProgramPass) (map[string]baselineLine, string) {
	out := map[string]baselineLine{}
	if p.Config.DetflowBaseline == "" {
		return out, ""
	}
	path := filepath.Join(p.Root, filepath.FromSlash(p.Config.DetflowBaseline))
	data, err := os.ReadFile(path)
	if err != nil {
		return out, ""
	}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, reason, found := strings.Cut(line, " -- ")
		fields := strings.Fields(entry)
		reason = strings.TrimSpace(reason)
		if !found || len(fields) != 2 || reason == "" {
			p.ReportFile(p.Config.DetflowBaseline, i+1,
				"malformed detflow baseline line: want \"<function-id> <sink> -- <reason>\"")
			continue
		}
		out[fields[0]+" "+fields[1]] = baselineLine{reason: reason, line: i + 1}
	}
	return out, path
}
