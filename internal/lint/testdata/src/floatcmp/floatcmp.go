// Package floatcmp is a lint fixture: exact float comparisons the
// rule must flag, and the idioms it must allow.
package floatcmp

import "repro/internal/units"

// Bad: computed-value equality in all its costumes.
func Bad(a, b float64, f units.MHz, g units.MHz) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a/3*3 != b { // want "floating-point != comparison"
		return false
	}
	return f == g // want "floating-point == comparison"
}

// GoodZero: the unset-sentinel / division-guard idiom is allowed.
func GoodZero(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// GoodNaN: the self-comparison NaN check is allowed.
func GoodNaN(x float64) bool { return x != x }

// GoodOrdered: ordered comparisons degrade gracefully and pass.
func GoodOrdered(a, b float64) bool { return a <= b }

// GoodInts: integer equality is not this rule's business.
func GoodInts(a, b int) bool { return a == b }
