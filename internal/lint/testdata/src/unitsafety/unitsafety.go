// Package unitsafety is a lint fixture: the two unit leaks Go's type
// system permits, and the legitimate patterns around them.
package unitsafety

import "repro/internal/units"

// BadTransmute: converting one unit directly into another compiles
// (both are float64 underneath) and silently changes dimension.
func BadTransmute(v units.Volt) units.MHz {
	return units.MHz(v) // want "transmutes units"
}

func BadTransmuteDelay(f units.MHz) units.Picosecond {
	return units.Picosecond(f) // want "transmutes units"
}

// BadMix: additive arithmetic across stripped units is dimensionally
// invalid.
func BadMix(v units.Volt, d units.Picosecond) float64 {
	return float64(v) + float64(d) // want "mixes stripped Volt and Picosecond"
}

func BadMixSub(w units.Watt, c units.Celsius) float64 {
	return float64(w) - float64(c) // want "mixes stripped Watt and Celsius"
}

// GoodSameUnit: stripping both sides of one dimension is fine.
func GoodSameUnit(a, b units.Volt) float64 {
	return float64(a) - float64(b)
}

// GoodProduct: multiplicative arithmetic legitimately changes
// dimension (loadline: volts drop = ohms x watts / volts).
func GoodProduct(r float64, p units.Watt, v units.Volt) units.Volt {
	return units.Volt(r * float64(p) / float64(v))
}

// GoodConstruct: building a unit from a plain float is the normal way
// quantities enter the system.
func GoodConstruct(mhz float64) units.MHz { return units.MHz(mhz) }

// GoodExplicit: the blessed cross-domain conversion goes through the
// physical relation, not a cast.
func GoodExplicit(f units.MHz) units.Picosecond { return f.CycleTime() }
