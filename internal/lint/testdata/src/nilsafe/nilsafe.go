// Package nilsafe is the fixture for the //atm:nilsafe handle
// contract: exported pointer-receiver methods of annotated types must
// guard the receiver against nil before touching receiver state.
package nilsafe

// Handle is a nil-safe handle: the nil *Handle is the disabled form.
//
//atm:nilsafe
type Handle struct {
	n    int
	next *Handle
}

// Good guards first — the canonical shape.
func (h *Handle) Good() int {
	if h == nil {
		return 0
	}
	return h.n
}

// Bad touches a field with no guard at all.
func (h *Handle) Bad() int {
	return h.n // want "touches field n before a nil-receiver guard"
}

// Late guards only after the first access — too late.
func (h *Handle) Late() int {
	v := h.n // want "touches field n before a nil-receiver guard"
	if h == nil {
		return 0
	}
	return v
}

// Chained calls another pointer-receiver method unguarded: allowed,
// the callee guards itself.
func (h *Handle) Chained() int {
	return h.Good()
}

// Vacuous never touches receiver state.
func (h *Handle) Vacuous() int { return 42 }

// bump is unexported: internal helpers run under the caller's guard.
func (h *Handle) bump() { h.n++ }

// Probe is a second annotated handle exercising the dereference and
// value-receiver-method access kinds.
//
//atm:nilsafe
type Probe struct {
	id int
}

// label has a value receiver: calling it dereferences the handle.
func (p Probe) label() int { return p.id }

// Deref calls a value-receiver method unguarded.
func (p *Probe) Deref() int {
	return p.label() // want "value-receiver method label"
}

// Clone dereferences the receiver unguarded.
func (p *Probe) Clone() Probe {
	return *p // want "touches dereference before a nil-receiver guard"
}

// Plain is not annotated: unguarded access is fine here.
type Plain struct{ n int }

// Get needs no guard on an unannotated type.
func (p *Plain) Get() int { return p.n }
