// Package hotpath is the fixture for the //atm:hotpath allocation
// lint: one annotated function with one of every flagged construct, an
// annotated function that is clean because it pre-sizes, and an
// unannotated function where anything goes.
package hotpath

import (
	"fmt"
	"strings"
	"sync"
)

func cleanup() {}

// takeAny boxes its argument at every concrete call site.
func takeAny(v any) any { return v }

// Hot carries the directive and one of every flagged construct.
//
//atm:hotpath
func Hot(vals []float64, m map[string]int) float64 {
	defer cleanup() // want "defer schedules a deferred call"
	go cleanup()    // want "go statement spawns a goroutine"
	f := func() {}  // want "function literal may escape"
	f()
	for k := range m { // want "range over map"
		_ = k
	}
	var out []float64
	out = append(out, vals...) // want "not pre-sized with make"
	_ = out
	var sink any
	sink = vals[0] // want "assignment boxes float64"
	_ = sink
	takeAny(vals[0])    // want "argument boxes float64"
	c := any(vals[0])   // want "conversion boxes float64"
	_ = c
	fmt.Println(vals) // want "fmt.Println allocates"
	var b strings.Builder
	b.WriteString("x") // want "strings.Builder.WriteString allocates"
	return vals[0]
}

type hotErr struct{}

func (hotErr) Error() string { return "hot" }

// HotErr boxes its concrete error into the interface result.
//
//atm:hotpath
func HotErr() error {
	return &hotErr{} // want "return boxes *hotErr"
}

// HotOK pre-sizes its slice with make(len, cap): clean.
//
//atm:hotpath
func HotOK(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	out = append(out, vals...)
	return out
}

type locked struct {
	mu sync.Mutex
	n  int
}

// Bump holds the lock across the update; `defer mu.Unlock()` is the
// one allowed defer (the compiler open-codes it).
//
//atm:hotpath
func (l *locked) Bump() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	return l.n
}

// Cold has no directive: the same constructs pass unremarked.
func Cold(vals []float64) any {
	var sink any
	sink = vals[0]
	return sink
}
