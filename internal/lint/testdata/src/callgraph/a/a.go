// Package a is half of the synthetic call-graph fixture: a mutual
// recursion cycle, an interface with one local implementation, and a
// dispatcher whose interface call must fan out to implementations in
// both packages.
package a

// Ping and Pong form a cross-function cycle.
func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

// Pong calls back into Ping.
func Pong(n int) int {
	if n <= 0 {
		return 1
	}
	return Ping(n - 1)
}

// Runner is dispatched through in Drive.
type Runner interface {
	Run() int
}

// Fast is the value-receiver implementation local to this package.
type Fast struct{}

// Run returns immediately.
func (Fast) Run() int { return 1 }

// Drive calls through the interface: the graph must record a call to
// the abstract a.(Runner).Run node, which fans out to every
// implementation.
func Drive(r Runner) int {
	return r.Run()
}
