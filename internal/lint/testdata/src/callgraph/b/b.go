// Package b is the other half of the call-graph fixture: a
// pointer-receiver implementation of a.Runner that calls back into
// package a, a function returning a bound method value, and a
// package-level var initializer that must fold into b.init.
package b

import "repro/internal/lint/testdata/src/callgraph/a"

// Slow is the pointer-receiver implementation living across the
// package boundary from the Runner interface.
type Slow struct {
	depth int
}

// Run crosses back into package a.
func (s *Slow) Run() int {
	return a.Ping(s.depth)
}

// Handle returns a bound method value: a reference edge, not a call.
func Handle(s *Slow) func() int {
	return s.Run
}

// boot's initializer calls a.Ping and must hang off the b.init
// pseudo-node.
var boot = a.Ping(3)

// Boot exposes the initialized value.
func Boot() int { return boot }
